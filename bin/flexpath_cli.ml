(* flexpath — command-line interface.

   Subcommands:
     query     run a top-K query against a document
     relax     show the penalty-ordered relaxation chain of a query
     stats     show document statistics
     generate  emit synthetic XMark-style or article-collection XML
     index     build / verify a checksummed environment snapshot
     serve     run the multi-domain TCP query server
     client    drive a running server over the line protocol
     bench     load-test a server, persist the latency trajectory *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Exit codes: 0 success, 1 usage / I/O / internal errors, 2 parse
   errors (document or query), 3 budget exhausted (partial results were
   printed; for the client, its retry budget ran out), 4 snapshot
   corruption (a saved environment failed its integrity checks),
   5 server overloaded (the client's retries were all answered
   OVERLOADED), 6 query quarantined (the server fast-rejects this
   query shape; retrying cannot help), 7 store read-only (a disk fault
   degraded the write path; the server's retry-after-ms hint says when
   the probation re-probe opens).

   Write idempotency under retries: the server fsyncs an INGEST into
   its WAL before acking, so a connection that dies mid-request leaves
   the write's fate ambiguous.  An INGEST with an explicit id is an
   upsert — retrying it converges — but without one each resend could
   mint a fresh doc-N, so the client never retries it past that
   ambiguity (it fails with exit code 1); pass --ingest-id whenever
   --retries is nonzero.  OVERLOADED (exit 5) and QUARANTINED (exit 6)
   are definitive server verdicts, never ambiguous, for writes and
   queries alike.  READONLY (exit 7) is retried with the hint only for
   idempotent writes (an INGEST with id=, a DELETE); an anonymous
   INGEST fails fast under the same policy as ambiguous outcomes — a
   resend that later dies mid-flight could double-ingest once the
   store recovers.  Everything that is not an answer goes to
   stderr. *)

let exit_usage = 1
let exit_budget = 3
let exit_snapshot = 4
let exit_overloaded = 5
let exit_quarantined = 6
let exit_readonly = 7

module Error = Flexpath.Error

(* ------------------------------------------------------------------ *)
(* Document sources *)

let load_doc ~file ~xmark_items ~articles_count =
  match (file, xmark_items, articles_count) with
  | Some path, None, None -> (
    match Xmldom.Doc.of_file path with
    | Ok doc -> Ok doc
    | Error e when e.Xmldom.Xml_parser.line = 0 ->
      (* I/O errors already carry the path *)
      Error (Error.Io_error { path = ""; message = e.message })
    | Error e ->
      Error
        (Error.Xml_error
           { path = Some path; line = e.line; column = e.column; message = e.message }))
  | None, Some items, None -> Ok (Xmark.Auction.doc ~items ())
  | None, None, Some count -> Ok (Xmark.Articles.doc ~count ())
  | None, None, None ->
    Error (Error.Config_error { what = "input"; message = "pass --file, --xmark or --articles" })
  | _ ->
    Error
      (Error.Config_error
         { what = "input"; message = "pass exactly one of --file, --xmark, --articles" })

let load_hierarchy = function
  | None -> Ok Tpq.Hierarchy.empty
  | Some path ->
    Result.map_error
      (fun message -> Error.Config_error { what = "hierarchy"; message })
      (Tpq.Hierarchy.parse_file path)

let load_thesaurus = function
  | None -> Ok Fulltext.Thesaurus.empty
  | Some path ->
    Result.map_error
      (fun message -> Error.Config_error { what = "thesaurus"; message })
      (Fulltext.Thesaurus.parse_file path)

(* Rewrite every contains predicate of the query through the
   thesaurus. *)
let expand_query thesaurus q =
  if Fulltext.Thesaurus.is_empty thesaurus then q
  else
    List.fold_left
      (fun q v ->
        Tpq.Query.update_node q v (fun n ->
            { n with contains = List.map (Fulltext.Thesaurus.expand thesaurus) n.contains }))
      q (Tpq.Query.vars q)

let file_arg =
  Arg.(value & opt (some string) None & info [ "f"; "file" ] ~docv:"PATH" ~doc:"XML document to query.")

let hierarchy_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "hierarchy" ] ~docv:"PATH"
        ~doc:"Type hierarchy file: one 'sub < super' declaration per line (enables tag generalization).")

let thesaurus_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "thesaurus" ] ~docv:"PATH"
        ~doc:"Thesaurus file: one comma-separated synonym ring per line (expands keywords).")

let weights_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "weights" ] ~docv:"SPEC"
        ~doc:"Predicate weights, e.g. 'structural=2,contains=0.5,var3=4'.")

let load_weights = function
  | None -> Ok Relax.Weights.uniform
  | Some spec ->
    Result.map_error
      (fun message -> Error.Config_error { what = "weights"; message })
      (Relax.Weights.parse spec)

let xmark_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "xmark" ] ~docv:"ITEMS" ~doc:"Generate an XMark-style document with $(docv) items.")

let articles_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "articles" ] ~docv:"COUNT" ~doc:"Generate an article collection with $(docv) articles.")

(* ------------------------------------------------------------------ *)
(* query *)

let conv_of_parser name parse to_string =
  let parser s = match parse s with Ok v -> Ok v | Error msg -> Error (`Msg msg) in
  let printer fmt v = Format.pp_print_string fmt (to_string v) in
  Arg.conv ~docv:name (parser, printer)

let algo_conv =
  conv_of_parser "ALGO" Flexpath.algorithm_of_string Flexpath.algorithm_to_string

(* Shared by query and serve: the in-process plan/answer cache
   (DESIGN.md §4f). *)
let cache_mb_arg =
  Arg.(
    value & opt int 64
    & info [ "cache-mb" ] ~docv:"MB"
        ~doc:
          "Budget of the in-process query cache (memoized relaxation chains, compiled join plans \
           and complete top-K answers), in MiB.")

let no_cache_arg =
  Arg.(value & flag & info [ "no-cache" ] ~doc:"Disable the query cache entirely.")

let cache_of ~cache_mb ~no_cache =
  if no_cache || cache_mb <= 0 then None else Some cache_mb

let scheme_conv =
  conv_of_parser "SCHEME" Flexpath.Ranking.of_string Flexpath.Ranking.to_string

let query_cmd =
  let query_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"XPATH" ~doc:"Query expression.")
  in
  let k_arg = Arg.(value & opt int 10 & info [ "k" ] ~doc:"Number of answers.") in
  let algo_arg =
    Arg.(value & opt algo_conv Flexpath.Hybrid & info [ "algo" ] ~doc:"dpo, sso or hybrid.")
  in
  let scheme_arg =
    Arg.(
      value
      & opt scheme_conv Flexpath.Ranking.Structure_first
      & info [ "scheme" ] ~doc:"structure-first, keyword-first or combined.")
  in
  let verbose_arg = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print metrics.") in
  let text_arg =
    Arg.(value & flag & info [ "text" ] ~doc:"Print the matched element's text content.")
  in
  let env_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "env" ] ~docv:"PATH" ~doc:"Load a saved environment (see the index subcommand).")
  in
  let timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:
            "Wall-clock budget in milliseconds; on expiry the best answers found so far are \
             printed and the exit code is 3.")
  in
  let tuple_budget_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "tuple-budget" ] ~docv:"N"
          ~doc:"Executor tuple budget (cumulative over all passes); exceeded means exit code 3.")
  in
  let step_budget_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "step-budget" ] ~docv:"N"
          ~doc:"Relaxation steps (evaluation passes) allowed before truncating.")
  in
  let restart_cap_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "restart-cap" ] ~docv:"N"
          ~doc:
            "SSO/Hybrid restarts allowed after an underestimated cut before falling back to \
             DPO's per-step evaluation.")
  in
  let run file xmark articles query k algo scheme verbose text hierarchy_file thesaurus_file
      weights_spec env_file timeout_ms tuple_budget step_budget restart_cap cache_mb no_cache =
    let ( let* ) r f =
      match r with
      | Error e ->
        Printf.eprintf "error: %s\n" (Error.to_string e);
        Error.exit_code e
      | Ok v -> f v
    in
    let* thesaurus = load_thesaurus thesaurus_file in
    let* weights = load_weights weights_spec in
    let env_result =
      match env_file with
      | Some path ->
        Result.map
          (fun (env, outcome) ->
            (match outcome with
            | Flexpath.Storage.Intact -> ()
            | Flexpath.Storage.Recovered { rebuilt = [] } ->
              Printf.eprintf "warning: %s: snapshot footer damaged; all sections verified\n" path
            | Flexpath.Storage.Recovered { rebuilt } ->
              Printf.eprintf
                "warning: %s: corrupt snapshot recovered; rebuilt from the document section: %s\n"
                path (String.concat ", " rebuilt)
            | Flexpath.Storage.Migrated { version } ->
              Printf.eprintf
                "warning: %s: deprecated format v%d (no integrity protection); re-run 'flexpath \
                 index' to upgrade\n"
                path version);
            env)
          (Flexpath.Storage.load ~weights path)
      | None ->
        Result.bind (load_doc ~file ~xmark_items:xmark ~articles_count:articles) (fun doc ->
            Result.bind (load_hierarchy hierarchy_file) (fun hierarchy ->
                Flexpath.Env.build ~weights ~hierarchy doc))
    in
    let* env = env_result in
    let doc = env.Flexpath.Env.doc in
    match Tpq.Xpath.parse query with
    | Error { offset; message } ->
      let e = Error.Query_error { offset; message } in
      Printf.eprintf "query error: %s\n" (Error.to_string e);
      Error.exit_code e
    | Ok q -> (
      let q = expand_query thesaurus q in
      let budget =
        match (timeout_ms, tuple_budget, step_budget, restart_cap) with
        | None, None, None, None -> None
        | deadline_ms, tuple_budget, step_budget, restart_cap ->
          Some { Flexpath.Guard.deadline_ms; tuple_budget; step_budget; restart_cap }
      in
      let cache =
        Option.map
          (fun mb -> Flexpath.Qcache.create ~max_bytes:(mb * 1024 * 1024) ())
          (cache_of ~cache_mb ~no_cache)
      in
      match Flexpath.run ~algorithm:algo ~scheme ?budget ?cache env ~k q with
      | Error e ->
        Printf.eprintf "error: %s\n" (Error.to_string e);
        Error.exit_code e
      | Ok result ->
        List.iteri
          (fun i (a : Flexpath.Answer.t) ->
            Format.printf "%2d. %a@." (i + 1) (Flexpath.Answer.pp doc) a;
            if text then begin
              let body = Xmldom.Doc.deep_text doc a.node in
              let body =
                if String.length body > 160 then String.sub body 0 160 ^ "..." else body
              in
              Format.printf "      %s@." body
            end)
          result.answers;
        if verbose then
          Format.printf
            "-- %d answers; %d relaxations; %d passes; %d restarts; %d tuples (%d pruned, %d \
             score-sorted)%s@."
            (List.length result.answers)
            result.relaxations_evaluated result.passes result.restarts
            result.metrics.tuples_produced result.metrics.tuples_pruned
            result.metrics.score_sorted_tuples
            (if result.degraded then "; degraded to dpo" else "");
        (match result.completeness with
        | Flexpath.Common.Complete -> 0
        | Flexpath.Common.Truncated { reason; score_bound } ->
          Format.pp_print_flush Format.std_formatter ();
          flush stdout;
          Printf.eprintf
            "budget exceeded (%s): %d partial answers shown; unreported answers score at most \
             %.4f\n"
            (Flexpath.Guard.reason_to_string reason)
            (List.length result.answers) score_bound;
          exit_budget))
  in
  let term =
    Term.(
      const run $ file_arg $ xmark_arg $ articles_arg $ query_arg $ k_arg $ algo_arg $ scheme_arg
      $ verbose_arg $ text_arg $ hierarchy_arg $ thesaurus_arg $ weights_arg $ env_arg
      $ timeout_arg $ tuple_budget_arg $ step_budget_arg $ restart_cap_arg $ cache_mb_arg
      $ no_cache_arg)
  in
  Cmd.v (Cmd.info "query" ~doc:"Run a top-K query with structural relaxation.") term

(* ------------------------------------------------------------------ *)
(* relax *)

let relax_cmd =
  let query_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"XPATH" ~doc:"Query expression.")
  in
  let steps_arg = Arg.(value & opt int 16 & info [ "steps" ] ~doc:"Maximum chain length.") in
  let run file xmark articles query steps hierarchy_file =
    let ( let* ) r f =
      match r with
      | Error e ->
        Printf.eprintf "error: %s\n" (Error.to_string e);
        Error.exit_code e
      | Ok v -> f v
    in
    let* doc = load_doc ~file ~xmark_items:xmark ~articles_count:articles in
    match Tpq.Xpath.parse query with
    | Error { offset; message } ->
      let e = Error.Query_error { offset; message } in
      Printf.eprintf "query error: %s\n" (Error.to_string e);
      Error.exit_code e
    | Ok q ->
      let* hierarchy = load_hierarchy hierarchy_file in
      let* env = Flexpath.Env.build ~hierarchy doc in
      let penv = Flexpath.Env.penalty_env env q in
      let chain = Relax.Space.sequence ~max_steps:steps penv in
      List.iteri
        (fun i (entry : Relax.Space.entry) ->
          let ops =
            match entry.ops with
            | [] -> "(original)"
            | ops -> String.concat "; " (List.map Relax.Op.to_string ops)
          in
          Format.printf "%2d. score=%.4f penalty=%.4f  %s@.    %s@." i entry.score
            entry.penalty ops
            (Tpq.Xpath.to_string entry.query))
        chain;
      0
  in
  let term =
    Term.(const run $ file_arg $ xmark_arg $ articles_arg $ query_arg $ steps_arg $ hierarchy_arg)
  in
  Cmd.v (Cmd.info "relax" ~doc:"Show the penalty-ordered relaxation chain.") term

(* ------------------------------------------------------------------ *)
(* stats *)

let stats_cmd =
  let run file xmark articles =
    match load_doc ~file ~xmark_items:xmark ~articles_count:articles with
    | Error e ->
      Printf.eprintf "error: %s\n" (Error.to_string e);
      Error.exit_code e
    | Ok doc -> (
      match
        let stats = Stats.build doc in
        let idx = Fulltext.Index.build doc in
        (stats, idx)
      with
      | exception Flexpath.Failpoint.Injected point ->
        let e = Error.Fault point in
        Printf.eprintf "error: %s\n" (Error.to_string e);
        Error.exit_code e
      | stats, idx ->
        Format.printf "%a@." Stats.pp stats;
        Format.printf "elements: %d@." (Xmldom.Doc.size doc);
        Format.printf "serialized size: %d bytes@." (Xmldom.Doc.serialized_size doc);
        Format.printf "indexed tokens: %d (%d distinct terms)@." (Fulltext.Index.n_tokens idx)
          (Fulltext.Index.distinct_terms idx);
        0)
  in
  let term = Term.(const run $ file_arg $ xmark_arg $ articles_arg) in
  Cmd.v (Cmd.info "stats" ~doc:"Show document statistics.") term

(* ------------------------------------------------------------------ *)
(* generate *)

let generate_cmd =
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"PATH" ~doc:"Output file.")
  in
  let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Generator seed.") in
  let run xmark articles out seed =
    let tree =
      match (xmark, articles) with
      | Some items, None -> Some (Xmark.Auction.site ~seed ~items ())
      | None, Some count -> Some (Xmark.Articles.collection ~seed ~count ())
      | _ -> None
    in
    match tree with
    | None ->
      Printf.eprintf "error: pass exactly one of --xmark ITEMS, --articles COUNT\n";
      exit_usage
    | Some tree -> (
      let s = Xmldom.Xml.to_string ~decl:true tree in
      match out with
      | None ->
        print_string s;
        0
      | Some path ->
        let oc = open_out path in
        output_string oc s;
        close_out oc;
        Printf.printf "wrote %d bytes to %s\n" (String.length s) path;
        0)
  in
  let term = Term.(const run $ xmark_arg $ articles_arg $ out_arg $ seed_arg) in
  Cmd.v (Cmd.info "generate" ~doc:"Emit synthetic XML.") term

(* ------------------------------------------------------------------ *)
(* index: build and save an environment *)

let index_cmd =
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"PATH" ~doc:"Where to write the environment.")
  in
  let verify_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "verify" ] ~docv:"PATH"
          ~doc:
            "Verify an existing snapshot instead of building one: recompute every checksum and \
             report per-section status.  Exit code 0 when intact, 4 on any corruption.")
  in
  let verify path =
    match Flexpath.Storage.verify path with
    | Error e ->
      Printf.eprintf "error: %s\n" (Error.to_string e);
      Error.exit_code e
    | Ok report ->
      Format.printf "%s:@.%a@." path Flexpath.Storage.pp_report report;
      if report.Flexpath.Storage.intact then 0 else exit_snapshot
  in
  let run file xmark articles hierarchy_file out verify_file =
    let ( let* ) r f =
      match r with
      | Error e ->
        Printf.eprintf "error: %s\n" (Error.to_string e);
        Error.exit_code e
      | Ok v -> f v
    in
    match (verify_file, out) with
    | Some path, None -> verify path
    | Some _, Some _ ->
      Printf.eprintf "error: pass either --verify or -o, not both\n";
      exit_usage
    | None, None ->
      Printf.eprintf "error: pass -o PATH to build a snapshot or --verify PATH to check one\n";
      exit_usage
    | None, Some out ->
      let* doc = load_doc ~file ~xmark_items:xmark ~articles_count:articles in
      let* hierarchy = load_hierarchy hierarchy_file in
      let* env = Flexpath.Env.build ~hierarchy doc in
      let* () = Flexpath.Storage.save env out in
      Printf.printf "indexed %d elements into %s\n" (Xmldom.Doc.size doc) out;
      0
  in
  let term =
    Term.(const run $ file_arg $ xmark_arg $ articles_arg $ hierarchy_arg $ out_arg $ verify_arg)
  in
  Cmd.v
    (Cmd.info "index"
       ~doc:
         "Build the index and statistics once, save them as a checksummed snapshot for later \
          queries; or verify an existing snapshot's integrity (--verify).")
    term

(* ------------------------------------------------------------------ *)
(* serve: the long-lived multi-domain query server *)

module Server = Flexpath_server.Server
module Protocol = Flexpath_server.Protocol

let serve_cmd =
  let env_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "env" ] ~docv:"PATH"
          ~doc:
            "Serve a saved environment snapshot (see the index subcommand); also the target of a \
             bare RELOAD.")
  in
  let host_arg =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR" ~doc:"Listen address.")
  in
  let port_arg =
    Arg.(
      value & opt int 7625
      & info [ "p"; "port" ] ~docv:"PORT" ~doc:"Listen port; 0 picks an ephemeral port.")
  in
  let port_file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "port-file" ] ~docv:"PATH"
          ~doc:"Write the actually bound port here once listening (for scripts with --port 0).")
  in
  let workers_arg =
    Arg.(value & opt int 4 & info [ "workers" ] ~docv:"N" ~doc:"Worker domains executing queries.")
  in
  let queue_arg =
    Arg.(
      value & opt int 64
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:
            "Admission queue capacity: connections waiting for a worker beyond it are \
             fast-rejected with OVERLOADED.")
  in
  let max_conns_arg =
    Arg.(
      value & opt int 256
      & info [ "max-conns" ] ~docv:"N" ~doc:"Cap on connections admitted and not yet closed.")
  in
  let read_timeout_arg =
    Arg.(
      value & opt float 30000.0
      & info [ "read-timeout-ms" ] ~docv:"MS"
          ~doc:"Idle limit while waiting for a request line; expired connections are dropped.")
  in
  let write_timeout_arg =
    Arg.(
      value & opt float 30000.0
      & info [ "write-timeout-ms" ] ~docv:"MS" ~doc:"Send-buffer stall limit per response.")
  in
  let k_arg =
    Arg.(value & opt int 10 & info [ "k" ] ~doc:"Default answer count for QUERY without k=.")
  in
  let timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:
            "Default per-request wall-clock budget; a request's timeout_ms= option overrides it.")
  in
  let tuple_budget_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "tuple-budget" ] ~docv:"N" ~doc:"Default per-request executor tuple budget.")
  in
  let step_budget_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "step-budget" ] ~docv:"N" ~doc:"Default per-request relaxation-step budget.")
  in
  let restart_cap_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "restart-cap" ] ~docv:"N" ~doc:"Default per-request SSO/Hybrid restart cap.")
  in
  let hard_wall_arg =
    Arg.(
      value & opt float 5000.0
      & info [ "hard-wall-ms" ] ~docv:"MS"
          ~doc:
            "Supervision hard wall: a worker busy on one request for longer is declared lost and \
             replaced.  Set it above the largest legitimate request budget.")
  in
  let no_supervise_arg =
    Arg.(
      value & flag
      & info [ "no-supervise" ]
          ~doc:
            "Disable worker supervision: a wedged or dead worker then shrinks the pool \
             permanently.")
  in
  let quarantine_arg =
    Arg.(
      value & opt int 2
      & info [ "quarantine-strikes" ] ~docv:"N"
          ~doc:
            "Worker losses a query fingerprint may cause before matching queries are \
             fast-rejected QUARANTINED; 0 disables quarantining.")
  in
  let queue_deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "queue-deadline-ms" ] ~docv:"MS"
          ~doc:
            "Bound on a connection's admission-queue sojourn: older entries are shed with \
             OVERLOADED retry-after-ms instead of being served.")
  in
  let ingest_wal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "ingest-wal" ] ~docv:"PATH"
          ~doc:
            "Enable live ingestion: write-ahead log at $(docv) (created if absent, replayed if \
             not).  Requires --env as the merge target; the snapshot need not exist yet — the \
             first merge creates it.  INGEST/DELETE/MERGE become live and RELOAD is refused (the \
             store owns the snapshot).")
  in
  let merge_interval_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "merge-interval-ms" ] ~docv:"MS"
          ~doc:
            "Cadence of the background merge domain folding acknowledged deltas into the \
             snapshot (default 2000); <= 0 disables it — deltas then accumulate until a MERGE \
             request.")
  in
  let max_doc_bytes_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-doc-bytes" ] ~docv:"N"
          ~doc:"Per-document byte budget for INGEST (default 8 MiB).")
  in
  let max_doc_elems_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-doc-elems" ] ~docv:"N"
          ~doc:
            "Per-document element budget for INGEST, enforced by a streaming pre-pass (default \
             262144).")
  in
  let write_lane_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "write-lane" ] ~docv:"N"
          ~doc:
            "Write admission class: INGEST/DELETE beyond this many concurrent writers are \
             answered OVERLOADED immediately (default 4; 0 rejects every write).")
  in
  let shards_arg =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Serve a fault-isolated sharded corpus: $(docv) independent WAL-backed shards at \
             <env>.shard<i>, documents routed by a stable hash of their id, queries \
             scatter-gathered over the live shards.  A shard that cannot answer degrades the \
             response to PARTIAL (shards=served/total, sound score_bound) instead of failing \
             it; SHARDS reports per-shard health and RELOAD <i> swaps one shard.  Requires \
             --env (the per-shard file prefix); implies live ingestion (--ingest-wal is not \
             needed — each shard has its own WAL).  Default 1: a single unsharded store.")
  in
  let replicas_arg =
    Arg.(
      value & opt int 1
      & info [ "replicas" ] ~docv:"R"
          ~doc:
            "Keep $(docv) copies of each shard (DESIGN.md §4l): a primary plus followers, each \
             a full WAL-backed store (follower j at <env>.shard<i>.r<j>), kept in sync by WAL \
             shipping.  Queries fail over to the next in-sync replica, so losing one copy still \
             yields Complete answers; SHARDS/STATS gain per-replica lines and RELOAD \
             <shard>.<replica> catches one copy up from its primary.  Works with --shards 1 \
             too (a replicated single shard).  Default 1: unreplicated.")
  in
  let ack_mode_arg =
    Arg.(
      value
      & opt (enum [ ("sync", Flexpath.Corpus.Sync); ("async", Flexpath.Corpus.Async) ])
          Flexpath.Corpus.Sync
      & info [ "ack-mode" ] ~docv:"sync|async"
          ~doc:
            "Replication ack mode.  $(b,sync) (default): acked records reach every in-sync \
             follower (through its own WAL and fsync) before the ack returns.  $(b,async): \
             ships queue per follower and drain on the background tick — lower write latency, \
             bounded follower lag (a lagging follower is excluded from the queryable view \
             until drained).")
  in
  let probation_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "probation-ms" ] ~docv:"MS"
          ~doc:
            "Read-only probation after a disk fault (ENOSPC/EIO on the durability path): \
             writes are answered READONLY with a retry-after-ms hint until a post-probation \
             write re-probes the disk successfully (default 2000).")
  in
  let run file xmark articles hierarchy_file weights_spec env_file host port port_file workers
      queue_depth max_conns read_timeout_ms write_timeout_ms k timeout_ms tuple_budget step_budget
      restart_cap cache_mb no_cache hard_wall_ms no_supervise quarantine_strikes queue_deadline_ms
      ingest_wal merge_interval_ms max_doc_bytes max_doc_elems write_lane shards replicas ack_mode
      probation_ms =
    let ( let* ) r f =
      match r with
      | Error e ->
        Printf.eprintf "error: %s\n" (Error.to_string e);
        Error.exit_code e
      | Ok v -> f v
    in
    let* weights = load_weights weights_spec in
    let* env =
      match
        ((if shards > 1 || replicas > 1 then Some () else Option.map ignore ingest_wal), env_file)
      with
      | Some _, _ ->
        (* The ingest store (opened inside Server.create) loads the
           snapshot and replays the WAL itself; this env only donates
           weights and hierarchy for a store starting from nothing, so
           the snapshot file is allowed not to exist yet. *)
        Result.bind (load_hierarchy hierarchy_file) (fun hierarchy ->
            Result.map Flexpath.Ingest.env (Flexpath.Ingest.empty ~weights ~hierarchy ()))
      | None, Some path ->
        Result.map
          (fun (env, outcome) ->
            (match outcome with
            | Flexpath.Storage.Intact -> ()
            | outcome ->
              Printf.eprintf "warning: %s: %s\n" path (Flexpath.Storage.outcome_to_string outcome));
            env)
          (Flexpath.Storage.load ~weights path)
      | None, None ->
        Result.bind (load_doc ~file ~xmark_items:xmark ~articles_count:articles) (fun doc ->
            Result.bind (load_hierarchy hierarchy_file) (fun hierarchy ->
                Flexpath.Env.build ~weights ~hierarchy doc))
    in
    let cfg =
      {
        Server.host;
        port;
        workers;
        queue_depth;
        max_connections = max_conns;
        read_timeout_s = read_timeout_ms /. 1000.0;
        write_timeout_s = write_timeout_ms /. 1000.0;
        default_k = k;
        default_budget =
          { Flexpath.Guard.deadline_ms = timeout_ms; tuple_budget; step_budget; restart_cap };
        snapshot = env_file;
        cache_mb = cache_of ~cache_mb ~no_cache;
        supervise = not no_supervise;
        hard_wall_ms;
        quarantine_strikes;
        queue_deadline_ms;
        ingest =
          (* --shards N (N > 1) or --replicas R (R > 1) enables the
             sharded/replicated corpus even without --ingest-wal: every
             replica owns its own WAL, so the single WAL path is unused
             there. *)
          (match (ingest_wal, shards > 1 || replicas > 1) with
          | None, false -> None
          | wal_opt, _ ->
            let wal = Option.value wal_opt ~default:"" in
            let d = Server.ingest_defaults ~wal in
            Some
              {
                Server.wal;
                merge_interval_ms =
                  Option.value merge_interval_ms ~default:d.Server.merge_interval_ms;
                max_doc_bytes = Option.value max_doc_bytes ~default:d.Server.max_doc_bytes;
                max_doc_elems = Option.value max_doc_elems ~default:d.Server.max_doc_elems;
                write_lane = Option.value write_lane ~default:d.Server.write_lane;
                shards;
                replicas;
                ack_mode;
                probation_ms = Option.value probation_ms ~default:d.Server.probation_ms;
              });
      }
    in
    match Server.create cfg ~env with
    | Error e ->
      Printf.eprintf "error: %s\n" (Error.to_string e);
      Error.exit_code e
    | Ok srv ->
      let graceful _ = Server.stop srv in
      Sys.set_signal Sys.sigterm (Sys.Signal_handle graceful);
      Sys.set_signal Sys.sigint (Sys.Signal_handle graceful);
      let bound = Server.port srv in
      (match port_file with
      | None -> ()
      | Some path ->
        let oc = open_out path in
        output_string oc (string_of_int bound);
        close_out oc);
      Printf.eprintf "flexpath: listening on %s:%d (workers=%d, queue=%d, max-conns=%d)\n%!" host
        bound workers queue_depth max_conns;
      Server.serve srv;
      Printf.eprintf "flexpath: server stopped\n%!";
      0
  in
  let term =
    Term.(
      const run $ file_arg $ xmark_arg $ articles_arg $ hierarchy_arg $ weights_arg $ env_arg
      $ host_arg $ port_arg $ port_file_arg $ workers_arg $ queue_arg $ max_conns_arg
      $ read_timeout_arg $ write_timeout_arg $ k_arg $ timeout_arg $ tuple_budget_arg
      $ step_budget_arg $ restart_cap_arg $ cache_mb_arg $ no_cache_arg $ hard_wall_arg
      $ no_supervise_arg $ quarantine_arg $ queue_deadline_arg $ ingest_wal_arg
      $ merge_interval_arg $ max_doc_bytes_arg $ max_doc_elems_arg $ write_lane_arg
      $ shards_arg $ replicas_arg $ ack_mode_arg $ probation_arg)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve queries over TCP from a resident environment: newline-delimited \
          PING/QUERY/RELAX/STATS/RELOAD/SHUTDOWN requests, length-framed responses, a domain \
          worker pool with heartbeat supervision (lost workers are replaced, poison queries \
          quarantined), admission control with queue-deadline shedding and per-request budgets \
          (DESIGN.md §4e, §4g).  With --ingest-wal, the corpus is writable: framed INGEST plus \
          DELETE/MERGE, WAL-durable acks, and a background delta-merge domain (DESIGN.md §4h).  \
          With --shards N, the corpus is sharded into independent failure domains: queries \
          scatter-gather over the live shards, a lost shard degrades answers to PARTIAL with a \
          sound bound instead of failing them, and SHARDS/RELOAD <i> expose per-shard health \
          and recovery (DESIGN.md §4i).  With --replicas R, each shard is a replica set kept \
          in sync by WAL shipping: probes fail over to the next in-sync copy (losing one \
          replica keeps answers Complete), RELOAD <i>.<j> catches one copy up from its \
          primary, and a disk fault degrades the store to READONLY instead of crashing \
          (DESIGN.md §4l).")
    term

(* ------------------------------------------------------------------ *)
(* client: drive a running server over the line protocol *)

module Client = Flexpath_server.Client

let client_cmd =
  let host_arg =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR" ~doc:"Server address.")
  in
  let port_arg =
    Arg.(required & opt (some int) None & info [ "p"; "port" ] ~docv:"PORT" ~doc:"Server port.")
  in
  let cmd_arg =
    Arg.(
      value & opt_all string []
      & info [ "e" ] ~docv:"REQUEST"
          ~doc:"Request line to send (repeatable, in order).  Without -e, stdin lines are sent.")
  in
  let retries_arg =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Additional attempts per request after the first, with full-jitter exponential \
             backoff, honoring the server's retry-after-ms hint.  Connect failures, dead or \
             timed-out connections and OVERLOADED are retried; QUARANTINED is not (it is \
             deterministic), and neither is an INGEST without --ingest-id once its connection \
             dies mid-request (the write may already be durable; see the exit-code notes).")
  in
  let ingest_file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "ingest-file" ] ~docv:"PATH"
          ~doc:
            "Send the file's bytes ('-' reads stdin) as one framed INGEST, after any -e \
             requests.  With --ingest-file, stdin is never interpreted as request lines.")
  in
  let ingest_id_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "ingest-id" ] ~docv:"ID"
          ~doc:
            "Document id for --ingest-file, making the write an idempotent upsert; required when \
             --retries is nonzero so an ambiguous outcome can be retried safely.")
  in
  let budget_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "retry-budget-ms" ] ~docv:"MS"
          ~doc:
            "End-to-end deadline over the whole run, attempts and backoff included.  Each QUERY \
             is sent with timeout_ms set to the remaining budget (an explicit timeout_ms is \
             tightened, never loosened), so no server-side work outlives this client.")
  in
  let run host port commands retries budget_ms ingest_file ingest_id =
    let slurp_bytes ic =
      let buf = Buffer.create 65536 in
      let chunk = Bytes.create 65536 in
      let rec go () =
        let n = input ic chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          go ()
        end
      in
      go ();
      Buffer.contents buf
    in
    let lines =
      match (commands, ingest_file) with
      | [], None ->
        let rec slurp acc =
          match input_line stdin with
          | line -> slurp (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        slurp []
      | cs, _ -> cs
    in
    let print_response (status, body) =
      print_string (Protocol.status_to_string status);
      print_newline ();
      if body <> "" then begin
        print_string body;
        print_newline ()
      end
    in
    let retry = { Client.default_retry with retries; budget_ms } in
    let code_of responses =
      if List.exists (fun (s, _) -> s = Protocol.Quarantined) responses then exit_quarantined
      else 0
    in
    match (ingest_file, ingest_id, retries) with
    | None, Some _, _ ->
      Printf.eprintf "error: --ingest-id needs --ingest-file\n";
      exit_usage
    | Some _, None, r when r > 0 ->
      Printf.eprintf
        "error: --retries with --ingest-file needs --ingest-id (an anonymous INGEST cannot be \
         retried safely: the write may already be durable)\n";
      exit_usage
    | _ -> (
      let requests = List.map (fun line -> { Client.line; body = None }) lines in
      let requests =
        match ingest_file with
        | None -> requests
        | Some path ->
          let xml =
            if path = "-" then slurp_bytes stdin
            else begin
              let ic = open_in_bin path in
              Fun.protect ~finally:(fun () -> close_in ic) (fun () -> slurp_bytes ic)
            end
          in
          requests @ [ Client.ingest_request ?id:ingest_id xml ]
      in
      match Client.run_requests ~host ~port ~retry requests with
      | Ok responses ->
        List.iter print_response responses;
        code_of responses
      | Error (failure, completed) ->
        List.iter print_response completed;
        Printf.eprintf "error: %s\n" (Client.failure_to_string failure);
        let code =
          match failure with
          | Client.Overloaded -> exit_overloaded
          | Client.Budget_exhausted -> exit_budget
          | Client.Store_readonly -> exit_readonly
          | Client.Connect_failed _ | Client.No_response -> exit_usage
        in
        (* A quarantined response earlier in the run still names the more
           actionable condition. *)
        let quarantine = code_of completed in
        if quarantine <> 0 then quarantine else code)
  in
  let term =
    Term.(
      const run $ host_arg $ port_arg $ cmd_arg $ retries_arg $ budget_arg $ ingest_file_arg
      $ ingest_id_arg)
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send request lines to a running flexpath server and print each framed response \
          (status line, then body), optionally retrying with jittered backoff under an \
          end-to-end deadline propagated to the server.")
    term

(* ------------------------------------------------------------------ *)
(* bench: the open-loop load generator and its artifact gate *)

module Loadgen = Flexpath_loadgen.Loadgen
module Ljson = Flexpath_loadgen.Json

let bench_serve_cmd =
  let scales_arg =
    Arg.(
      value & opt string "8,256,1024"
      & info [ "scales" ] ~docv:"N,N,..."
          ~doc:
            "Comma-separated connection-pool sizes, one measured run per size.  The smallest is \
             the baseline the summary's p99 ratio compares against.")
  in
  let rate_arg =
    Arg.(
      value & opt float 150.0
      & info [ "rate" ] ~docv:"RPS"
          ~doc:
            "Offered load in requests/second at every scale (open loop: arrivals are scheduled \
             by a Poisson process and never wait for capacity, so latency includes any \
             client-side queueing — no coordinated omission).")
  in
  let duration_arg =
    Arg.(value & opt float 5.0 & info [ "duration-s" ] ~docv:"S" ~doc:"Measured window per scale.")
  in
  let warmup_arg =
    Arg.(
      value & opt float 1.0
      & info [ "warmup-s" ] ~docv:"S" ~doc:"Uncounted lead-in per scale (cache and JIT warm).")
  in
  let zipf_arg =
    Arg.(
      value & opt float 1.1
      & info [ "zipf" ] ~docv:"S" ~doc:"Zipf exponent of the query-popularity mix; 0 is uniform.")
  in
  let ping_frac_arg =
    Arg.(
      value & opt float 0.2
      & info [ "ping-frac" ] ~docv:"F" ~doc:"Fraction of arrivals that are PING.")
  in
  let ingest_frac_arg =
    Arg.(
      value & opt float 0.0
      & info [ "ingest-frac" ] ~docv:"F"
          ~doc:
            "Fraction of arrivals that are framed idempotent INGEST upserts (in-process mode \
             enables live ingestion automatically when nonzero).")
  in
  let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Workload PRNG seed.") in
  let out_arg =
    Arg.(
      value & opt string "BENCH_serve.json"
      & info [ "o"; "output" ] ~docv:"PATH" ~doc:"Artifact path; '-' writes to stdout.")
  in
  let port_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "p"; "port" ] ~docv:"PORT"
          ~doc:
            "Drive an already-running server on $(docv) instead of spawning one in-process \
             (needed to push past half the fd budget, e.g. 10k connections).")
  in
  let host_arg =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR" ~doc:"Server address.")
  in
  let articles_arg =
    Arg.(
      value & opt int 200
      & info [ "articles" ] ~docv:"COUNT"
          ~doc:"Size of the synthetic article corpus served in in-process mode.")
  in
  let workers_arg =
    Arg.(value & opt int 4 & info [ "workers" ] ~docv:"N" ~doc:"In-process server worker domains.")
  in
  let queue_arg =
    Arg.(
      value & opt int 64
      & info [ "queue-depth" ] ~docv:"N" ~doc:"In-process server admission-queue capacity.")
  in
  let run scales_s rate duration_s warmup_s zipf ping_frac ingest_frac seed out port host articles
      workers queue_depth =
    let scales =
      List.filter_map
        (fun s -> match String.trim s with "" -> None | s -> Some (int_of_string_opt s))
        (String.split_on_char ',' scales_s)
    in
    let all_some opts =
      List.fold_right
        (fun o acc -> Option.bind acc (fun xs -> Option.map (fun x -> x :: xs) o))
        opts (Some [])
    in
    match all_some scales with
    | None | Some [] ->
      Printf.eprintf "error: --scales wants a comma-separated list of positive integers\n";
      exit_usage
    | Some scales when List.exists (fun n -> n <= 0) scales ->
      Printf.eprintf "error: --scales wants a comma-separated list of positive integers\n";
      exit_usage
    | Some scales -> (
      let top = List.fold_left max 0 scales in
      (* Each client connection costs this process one fd; in-process
         mode the server end costs another. *)
      let need = (match port with Some _ -> top + 64 | None -> (2 * top) + 64) in
      let eff = Flexpath_server.Poller.raise_nofile need in
      if eff < need then begin
        Printf.eprintf
          "error: need %d fds for %d connections but the limit allows %d; lower --scales or \
           split client and server across processes (--port)\n"
          need top eff;
        exit_usage
      end
      else begin
        let workload =
          {
            Loadgen.default_workload with
            rate;
            duration_s;
            warmup_s;
            zipf_s = zipf;
            ping_fraction = ping_frac;
            ingest_fraction = ingest_frac;
            seed;
          }
        in
        let with_target f =
          match port with
          | Some p -> f p
          | None -> (
            (* In-process server over a synthetic article corpus. *)
            let build =
              if ingest_frac <= 0.0 then
                Result.map
                  (fun env -> (env, None, None))
                  (Flexpath.Env.build ~weights:Relax.Weights.uniform
                     ~hierarchy:Tpq.Hierarchy.empty
                     (Xmark.Articles.doc ~count:articles ()))
              else begin
                (* Live ingestion serves the store's own corpus, so seed
                   it: build an ingest corpus from the article trees and
                   persist it as the snapshot the store will load. *)
                let article_trees =
                  List.filter
                    (fun t -> Xmldom.Xml.tag t = Some "article")
                    (Xmldom.Xml.children (Xmark.Articles.collection ~count:articles ()))
                in
                let docs =
                  List.mapi (fun i t -> (Printf.sprintf "article%d" i, t)) article_trees
                in
                let dir =
                  Filename.concat (Filename.get_temp_dir_name ())
                    (Printf.sprintf "flexpath-bench-%d" (Unix.getpid ()))
                in
                (try Unix.mkdir dir 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
                let snap = Filename.concat dir "corpus.snap" in
                let wal = Filename.concat dir "corpus.wal" in
                Result.bind (Flexpath.Ingest.of_docs docs) (fun corpus ->
                    let env = Flexpath.Ingest.env corpus in
                    Result.map
                      (fun () -> (env, Some snap, Some (Server.ingest_defaults ~wal)))
                      (Flexpath.Storage.save env snap))
              end
            in
            match build with
            | Error e ->
              Printf.eprintf "error: %s\n" (Error.to_string e);
              Error.exit_code e
            | Ok (env, snapshot, ingest) -> (
              let cfg =
                {
                  Server.default_config with
                  host;
                  port = 0;
                  workers;
                  queue_depth;
                  max_connections = top + 64;
                  read_timeout_s = 120.0;
                  snapshot;
                  ingest;
                }
              in
              match Server.create cfg ~env with
              | Error e ->
                Printf.eprintf "error: %s\n" (Error.to_string e);
                Error.exit_code e
              | Ok srv ->
                let d = Domain.spawn (fun () -> Server.serve srv) in
                Fun.protect
                  ~finally:(fun () ->
                    Server.stop srv;
                    Domain.join d)
                  (fun () -> f (Server.port srv))))
        in
        with_target (fun bound_port ->
            Printf.eprintf "bench serve: %s:%d, %.0f req/s offered, scales %s\n%!" host bound_port
              rate
              (String.concat "," (List.map string_of_int scales));
            let rec measure acc = function
              | [] -> Ok (List.rev acc)
              | conns :: rest -> (
                Printf.eprintf "bench serve: scale %d...\n%!" conns;
                match Loadgen.run ~host ~port:bound_port ~connections:conns workload with
                | Error msg -> Result.Error msg
                | Ok r ->
                  Printf.eprintf
                    "bench serve: scale %d: goodput %.1f rps, p50 %.2f ms, p99 %.2f ms, p999 \
                     %.2f ms (ok=%d partial=%d overloaded=%d quarantined=%d err=%d dropped=%d \
                     reconnects=%d)\n\
                     %!"
                    conns r.Loadgen.goodput_rps r.Loadgen.p50_ms r.Loadgen.p99_ms
                    r.Loadgen.p999_ms r.Loadgen.ok r.Loadgen.partial r.Loadgen.overloaded
                    r.Loadgen.quarantined r.Loadgen.errors r.Loadgen.dropped
                    r.Loadgen.reconnects;
                  measure (r :: acc) rest)
            in
            match measure [] scales with
            | Error msg ->
              Printf.eprintf "error: %s\n" msg;
              exit_usage
            | Ok results ->
              let config =
                [
                  ("mode", Ljson.Str (match port with Some _ -> "external" | None -> "in-process"));
                  ("rate_rps", Ljson.Num rate);
                  ("duration_s", Ljson.Num duration_s);
                  ("warmup_s", Ljson.Num warmup_s);
                  ("zipf_s", Ljson.Num zipf);
                  ("ping_fraction", Ljson.Num ping_frac);
                  ("ingest_fraction", Ljson.Num ingest_frac);
                  ("seed", Ljson.Num (float_of_int seed));
                  ("articles", Ljson.Num (float_of_int articles));
                  ("workers", Ljson.Num (float_of_int workers));
                  ("queue_depth", Ljson.Num (float_of_int queue_depth));
                ]
              in
              let body = Ljson.to_string (Loadgen.report ~config ~results) ^ "\n" in
              (match out with
              | "-" -> print_string body
              | path ->
                let oc = open_out path in
                output_string oc body;
                close_out oc;
                Printf.eprintf "bench serve: wrote %s\n%!" path);
              0)
      end)
  in
  let term =
    Term.(
      const run $ scales_arg $ rate_arg $ duration_arg $ warmup_arg $ zipf_arg $ ping_frac_arg
      $ ingest_frac_arg $ seed_arg $ out_arg $ port_arg $ host_arg $ articles_arg $ workers_arg
      $ queue_arg)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Load-test a flexpath server with open-loop Poisson arrivals over a fixed connection \
          pool, one measured run per --scales entry, and persist goodput and latency \
          percentiles (p50/p99/p999) as a JSON artifact (DESIGN.md §4j).  By default a server \
          is spawned in-process over a synthetic article corpus; --port drives an external one.")
    term

let bench_check_cmd =
  let file_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"PATH" ~doc:"Artifact to check.")
  in
  let run path =
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | exception Sys_error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit_usage
    | text -> (
      match Result.bind (Ljson.parse text) Loadgen.check_report with
      | Error msg ->
        Printf.eprintf "error: %s: %s\n" path msg;
        exit_usage
      | Ok () ->
        let count key =
          match Result.to_option (Ljson.parse text) with
          | Some json ->
            List.length (Ljson.to_list (Option.value ~default:Ljson.Null (Ljson.member key json)))
          | None -> 0
        in
        (match count "scales" with
        | 0 -> Printf.printf "%s: ok (%d series entries)\n" path (count "series")
        | n -> Printf.printf "%s: ok (%d scales)\n" path n);
        0)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Validate a bench artifact's schema.  Serve artifacts need a version, non-empty scales, \
          goodput and p50/p99/p999 on every scale; twig ablation artifacts (bench = \"twig\") a \
          non-empty series with per-query binary/holistic timings; replication artifacts (bench \
          = \"replica\") healthy/replica-lost percentiles with zero lost-pass partials, sync and \
          async ingest rates, and a catch-up measurement.  Exit 0 when well-formed; CI gates on \
          this.")
    Term.(const run $ file_arg)

let bench_cmd =
  Cmd.group
    (Cmd.info "bench"
       ~doc:
         "Load-generation benchmarks and their persisted artifacts: 'serve' measures the query \
          server's latency/goodput trajectory across connection scales, 'check' validates an \
          artifact's schema.")
    [ bench_serve_cmd; bench_check_cmd ]

let () =
  let info =
    Cmd.info "flexpath" ~version:"1.0.0"
      ~doc:"Flexible structure and full-text querying for XML (FleXPath, SIGMOD 2004)."
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ query_cmd; relax_cmd; stats_cmd; generate_cmd; index_cmd; serve_cmd; client_cmd; bench_cmd ]))
