The query server end to end: index a snapshot, serve it, drive a
client session over TCP, hot-reload the snapshot, and shut down
cleanly.

  $ flexpath_cli generate --articles 5 --seed 3 -o articles.xml
  wrote 3106 bytes to articles.xml
  $ flexpath_cli index --file articles.xml -o articles.env
  indexed 61 elements into articles.env

Port 0 asks the kernel for an ephemeral port; the server publishes the
one it got through --port-file once it is actually listening, so there
is no race between startup and the first client:

  $ flexpath_cli serve --env articles.env --port 0 --port-file port 2> serve.log &
  $ for _ in $(seq 1 100); do test -s port && break; sleep 0.1; done
  $ PORT=$(cat port)

PING answers pong; queries run against the resident environment with
the same answers the offline CLI gives:

  $ flexpath_cli client -p $PORT -e PING
  OK
  pong
  $ flexpath_cli client -p $PORT -e 'QUERY k=3 //article[.contains("xml" and "streaming")]'
  OK
   1. collection[1]/article[2]  ss=0.0000 ks=0.6203  exact
   2. collection[1]/article[3]  ss=0.0000 ks=0.5983  exact
   3. collection[1]/article[4]  ss=0.0000 ks=0.4833  exact

Repeating the query answers from the in-process cache — same body,
and STATS counts the hit (the first query was one answer-tier and one
plan-tier miss):

  $ flexpath_cli client -p $PORT -e 'QUERY k=3 //article[.contains("xml" and "streaming")]'
  OK
   1. collection[1]/article[2]  ss=0.0000 ks=0.6203  exact
   2. collection[1]/article[3]  ss=0.0000 ks=0.5983  exact
   3. collection[1]/article[4]  ss=0.0000 ks=0.4833  exact
  $ flexpath_cli client -p $PORT -e STATS | grep -E 'cache_(hits|misses|evictions)'
  cache_hits: 1
  cache_misses: 2
  cache_evictions: 0

A request-level budget that cannot be met yields a PARTIAL answer with
the truncation reason, not an error:

  $ flexpath_cli client -p $PORT -e 'QUERY k=3 steps=0 //article[.contains("xml" and "streaming")]'
  PARTIAL
  # truncated reason=step budget score_bound=0.0000

Hot reload swaps the snapshot in place and bumps the generation:

  $ flexpath_cli client -p $PORT -e 'RELOAD articles.env'
  OK
  reloaded articles.env (intact); generation 2
  $ flexpath_cli client -p $PORT -e STATS | grep -E 'snapshot_generation|reloads'
  snapshot_generation: 2
  reloads: 1

The swap installed a fresh cache for the new generation — no stale
entries, counters back to zero:

  $ flexpath_cli client -p $PORT -e STATS | grep -E 'cache_(hits|misses)'
  cache_hits: 0
  cache_misses: 0

SHUTDOWN drains and stops the server, which exits 0:

  $ flexpath_cli client -p $PORT -e SHUTDOWN
  BYE
  $ wait $!
  $ sed 's/127\.0\.0\.1:[0-9]*/127.0.0.1:PORT/' serve.log
  flexpath: listening on 127.0.0.1:PORT (workers=4, queue=64, max-conns=256)
  flexpath: server stopped

After shutdown the port no longer accepts connections:

  $ flexpath_cli client -p $PORT -e PING > refused.out 2>&1
  [1]
  $ sed "s/:$PORT/:PORT/" refused.out
  error: cannot connect to 127.0.0.1:PORT: Connection refused

Self-healing (DESIGN.md §4g): worker_wedge:2 arms the wedge failpoint
for exactly two hits, so the first two attempts at the query each
wedge a worker past the 400 ms hard wall — the supervisor declares the
worker lost, replaces it, and gives the query's fingerprint a strike.
The retrying client reconnects after each loss; at two strikes the
third attempt is fast-rejected QUARANTINED (exit 6) without reaching
evaluation:

  $ FLEXPATH_FAILPOINTS=worker_wedge:2 flexpath_cli serve --env articles.env --port 0 --port-file port2 --hard-wall-ms 400 2> serve2.log &
  $ for _ in $(seq 1 100); do test -s port2 && break; sleep 0.1; done
  $ PORT=$(cat port2)
  $ flexpath_cli client -p $PORT --retries 3 --retry-budget-ms 20000 -e 'QUERY k=2 //article[./title]'
  QUARANTINED
  query quarantined after 2 worker loss(es); not executed
  [6]

Other query shapes are unaffected — the replacement workers serve them:

  $ flexpath_cli client -p $PORT --retries 3 --retry-budget-ms 20000 -e 'QUERY k=3 //article[.contains("xml" and "streaming")]'
  OK
   1. collection[1]/article[2]  ss=0.0000 ks=0.6203  exact
   2. collection[1]/article[3]  ss=0.0000 ks=0.5983  exact
   3. collection[1]/article[4]  ss=0.0000 ks=0.4833  exact

STATS accounts for both losses, both replacements and the quarantine
reject:

  $ flexpath_cli client -p $PORT -e STATS | grep -E 'workers_lost|workers_respawned|quarantined'
  workers_lost: 2
  workers_respawned: 2
  quarantined: 1
  $ flexpath_cli client -p $PORT -e SHUTDOWN
  BYE
  $ wait $!
