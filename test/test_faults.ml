(* Robustness tests: resource-governed execution (budgets, graceful
   degradation), typed errors for every user-provocable failure, and
   deterministic fault injection through every registered failpoint.

   These are the acceptance tests of the governance subsystem:
   - a budget-exceeded query returns [Truncated] with a non-empty,
     correctly ordered partial top-K and a sound score bound;
   - no exception escapes [Flexpath.run] on user input;
   - every failpoint in [Failpoint.catalog] yields a typed [Error.t]. *)

module Xpath = Tpq.Xpath
module Ranking = Flexpath.Ranking
module Answer = Flexpath.Answer
module Common = Flexpath.Common
module Env = Flexpath.Env
module Error = Flexpath.Error
module Guard = Flexpath.Guard
module Failpoint = Flexpath.Failpoint

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let q1_str =
  "//article[./section[./algorithm and ./paragraph[.contains(\"XML\" and \"streaming\")]]]"

let xmark_q2 = "//item[./description/parlist and ./mailbox/mail/text]"

let article_env = lazy (Env.make (Xmark.Articles.doc ~seed:21 ~count:80 ()))
let auction_env = lazy (Env.make (Xmark.Auction.doc ~seed:22 ~items:100 ()))

let scheme = Ranking.Structure_first

let answer_key (a : Answer.t) =
  (a.Answer.node, Float.round (a.Answer.sscore *. 1e6), Float.round (a.Answer.kscore *. 1e6))

let is_sorted answers =
  let rec go = function
    | a :: (b :: _ as rest) ->
      Ranking.compare_desc scheme (Answer.score a) (Answer.score b) <= 0 && go rest
    | _ -> true
  in
  go answers

(* ------------------------------------------------------------------ *)
(* Budget truncation: graceful degradation with sound bounds. *)

(* One-pass DPO via the step budget: the original query's pass
   completes, the second pass is denied — the anytime contract says the
   answers collected so far come back ordered and bounded. *)
let test_step_budget_truncates () =
  let env = Lazy.force article_env in
  let q = Xpath.parse_exn q1_str in
  let k = 100 in
  let full = Flexpath.run_exn ~algorithm:Flexpath.DPO ~scheme env ~k q in
  check_bool "fixture needs several passes" true (full.Common.passes > 1);
  let r =
    Flexpath.run_exn ~algorithm:Flexpath.DPO ~scheme
      ~budget:(Guard.budget ~step_budget:1 ())
      env ~k q
  in
  check_int "exactly one pass ran" 1 r.Common.passes;
  (match r.Common.completeness with
  | Common.Truncated { reason = Guard.Steps; score_bound } ->
    check_bool "partial top-K is non-empty" true (r.Common.answers <> []);
    check_bool "partial top-K is correctly ordered" true (is_sorted r.Common.answers);
    (* Soundness: every answer of the full run that the truncated run
       missed scores no better than the reported bound. *)
    let partial = List.map answer_key r.Common.answers in
    List.iter
      (fun (a : Answer.t) ->
        if not (List.mem (answer_key a) partial) then
          check_bool "missed answer is within the reported bound" true
            (Ranking.total scheme (Answer.score a) <= score_bound +. 1e-9))
      full.Common.answers
  | c ->
    Alcotest.failf "expected Truncated Steps, got %s"
      (match c with Common.Complete -> "Complete" | _ -> "Truncated (other reason)"));
  (* The partial answers are exactly what one pass can know: they all
     reappear in the full run. *)
  let full_keys = List.map answer_key full.Common.answers in
  List.iter
    (fun a -> check_bool "partial answer appears in the full top-K" true
        (List.mem (answer_key a) full_keys))
    r.Common.answers

(* Tuple budget: measure pass 1's exact guard-counted tuple consumption,
   then allow exactly one tuple more — pass 1 completes, pass 2 trips at
   its first poll, and pass 1's answers survive. *)
let test_tuple_budget_truncates () =
  let env = Lazy.force article_env in
  let q = Xpath.parse_exn q1_str in
  let k = 100 in
  let probe = Guard.start (Guard.budget ~tuple_budget:max_int ~step_budget:1 ()) in
  let r1 = Flexpath.Dpo.run ~guard:probe env ~scheme ~k q in
  let pass1_tuples = Guard.tuples_consumed probe in
  check_bool "pass 1 consumed tuples" true (pass1_tuples > 0);
  let r =
    Flexpath.run_exn ~algorithm:Flexpath.DPO ~scheme
      ~budget:(Guard.budget ~tuple_budget:(pass1_tuples + 1) ())
      env ~k q
  in
  (match r.Common.completeness with
  | Common.Truncated { reason = Guard.Tuples; _ } -> ()
  | _ -> Alcotest.fail "expected Truncated Tuples");
  check_bool "pass 1 answers survive the mid-pass-2 trip" true (r.Common.answers <> []);
  check_bool "same answers as the one-pass run" true
    (List.map answer_key r.Common.answers = List.map answer_key r1.Common.answers)

(* A hopeless budget never raises and reports honestly, for every
   algorithm and axis. *)
let test_hopeless_budgets_never_raise () =
  let env = Lazy.force article_env in
  let q = Xpath.parse_exn q1_str in
  List.iter
    (fun algorithm ->
      List.iter
        (fun (name, budget, reason) ->
          match Flexpath.run ~algorithm ~scheme ~budget env ~k:5 q with
          | Error e -> Alcotest.failf "%s: unexpected error %s" name (Error.to_string e)
          | Ok r -> (
            match r.Common.completeness with
            | Common.Truncated { reason = got; score_bound } ->
              check_string (name ^ ": trip reason") (Guard.reason_to_string reason)
                (Guard.reason_to_string got);
              check_bool (name ^ ": bound is finite and meaningful") true
                (Float.is_finite score_bound)
            | Common.Complete -> Alcotest.failf "%s: expected truncation" name))
        [
          ("deadline=0", Guard.budget ~deadline_ms:0.0 (), Guard.Deadline);
          ("tuples=1", Guard.budget ~tuple_budget:1 (), Guard.Tuples);
          ("steps=0", Guard.budget ~step_budget:0 (), Guard.Steps);
        ])
    Flexpath.all_algorithms

(* ------------------------------------------------------------------ *)
(* SSO/Hybrid restart cap and fallback to DPO. *)

let test_restart_cap_degrades () =
  let env = Lazy.force auction_env in
  let q = Xpath.parse_exn xmark_q2 in
  let k = 20 in
  (* Fixture property: on this document SSO's estimator underestimates
     and the uncapped run needs several restarts. *)
  let free = Flexpath.run_exn ~algorithm:Flexpath.SSO ~scheme env ~k q in
  check_bool "fixture forces restarts" true (free.Common.restarts > 0);
  check_bool "uncapped run is complete" true (free.Common.completeness = Common.Complete);
  let dpo = Flexpath.run_exn ~algorithm:Flexpath.DPO ~scheme env ~k q in
  List.iter
    (fun algorithm ->
      let r =
        Flexpath.run_exn ~algorithm ~scheme ~budget:(Guard.budget ~restart_cap:0 ()) env ~k q
      in
      let name = Flexpath.algorithm_to_string algorithm in
      check_bool (name ^ " fell back to DPO") true r.Common.degraded;
      check_bool (name ^ " fallback is complete") true
        (r.Common.completeness = Common.Complete);
      check_bool (name ^ " fallback answers match DPO") true
        (List.map answer_key r.Common.answers = List.map answer_key dpo.Common.answers))
    [ Flexpath.SSO; Flexpath.Hybrid ];
  (* A cap the run fits under changes nothing. *)
  let roomy =
    Flexpath.run_exn ~algorithm:Flexpath.SSO ~scheme
      ~budget:(Guard.budget ~restart_cap:(free.Common.restarts + 1) ())
      env ~k q
  in
  check_bool "roomy cap: no degradation" true (not roomy.Common.degraded);
  check_bool "roomy cap: same answers" true
    (List.map answer_key roomy.Common.answers = List.map answer_key free.Common.answers)

(* ------------------------------------------------------------------ *)
(* Capacity: the executor's closure limit is a typed error, not a
   crash. *)

let test_capacity_error () =
  let env = Lazy.force article_env in
  (* A 12-step path closes into 11 parent-child + 66 ancestor-descendant
     scored predicates — past the executor's 62-bit score mask. *)
  let q = Xpath.parse_exn "//a/b/c/d/e/f/g/h/i/j/k/l" in
  match Flexpath.run env ~k:5 q with
  | Ok _ -> Alcotest.fail "expected a capacity error"
  | Error (Error.Capacity { what = _; limit; actual }) ->
    check_int "limit is the scored-predicate capacity" Joins.Exec.max_scored_preds limit;
    check_bool "actual exceeds the limit" true (actual > limit);
    check_int "capacity errors are internal-limit failures (exit 1)" 1
      (Error.exit_code (Error.Capacity { what = ""; limit; actual }))
  | Error e -> Alcotest.failf "expected Capacity, got %s" (Error.to_string e)

(* ------------------------------------------------------------------ *)
(* Fault injection: every registered point surfaces as Error.Fault. *)

let with_failpoint point f =
  (match Failpoint.activate point with
  | Ok () -> ()
  | Error e -> Alcotest.failf "cannot activate %s: %s" point e);
  Fun.protect ~finally:Failpoint.reset f

let test_query_failpoints () =
  let env = Lazy.force article_env in
  let q = Xpath.parse_exn q1_str in
  List.iter
    (fun point ->
      with_failpoint point (fun () ->
          List.iter
            (fun algorithm ->
              match Flexpath.run ~algorithm env ~k:5 q with
              | Error (Error.Fault p) -> check_string ("fault point via run") point p
              | Ok _ -> Alcotest.failf "%s: fault did not fire" point
              | Error e ->
                Alcotest.failf "%s: expected Fault, got %s" point (Error.to_string e))
            Flexpath.all_algorithms))
    [ "exec.compile"; "exec.run"; "exec.stage"; "chain.build" ]

let test_env_failpoints () =
  List.iter
    (fun point ->
      with_failpoint point (fun () ->
          match Env.of_string "<a><b>text</b></a>" with
          | Error (Error.Fault p) -> check_string "fault point via of_string" point p
          | Ok _ -> Alcotest.failf "%s: fault did not fire" point
          | Error e -> Alcotest.failf "%s: expected Fault, got %s" point (Error.to_string e)))
    [ "env.make"; "index.build" ]

let test_failpoint_registry () =
  (* Unknown names are rejected, not silently armed. *)
  check_bool "unknown point rejected" true (Result.is_error (Failpoint.activate "no.such"));
  check_bool "nothing armed" true (Failpoint.active () = []);
  (* Activation is visible and reversible. *)
  with_failpoint "exec.run" (fun () ->
      check_bool "armed point listed" true (Failpoint.is_active "exec.run");
      Failpoint.deactivate "exec.run";
      check_bool "deactivated" false (Failpoint.is_active "exec.run");
      (* A disarmed point is free to pass. *)
      Failpoint.hit "exec.run");
  check_bool "reset disarms" true (Failpoint.active () = []);
  (* Every catalog point can be armed. *)
  List.iter
    (fun p -> check_bool ("catalog point " ^ p) true (Result.is_ok (Failpoint.activate p)))
    Failpoint.catalog;
  check_int "all armed" (List.length Failpoint.catalog) (List.length (Failpoint.active ()));
  Failpoint.reset ()

(* Counted arming: [activate_n p n] fires exactly [n] times, then the
   point disarms itself.  This is what keeps the loss-injection points
   ([worker_wedge], [worker_die]) from also wedging every replacement
   worker the supervisor spawns. *)
let test_counted_arming () =
  (match Failpoint.activate_n "exec.run" 2 with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  check_bool "unknown names rejected" true (Result.is_error (Failpoint.activate_n "no.such" 1));
  let fires p = match Failpoint.hit p with () -> false | exception Failpoint.Injected _ -> true in
  check_bool "first hit fires" true (fires "exec.run");
  check_bool "still armed after one of two" true (Failpoint.is_active "exec.run");
  check_bool "second hit fires" true (fires "exec.run");
  check_bool "exhausted point self-disarms" false (Failpoint.is_active "exec.run");
  check_bool "third hit passes" false (fires "exec.run");
  (* Re-arming replaces the remaining count rather than accumulating. *)
  (match Failpoint.activate_n "exec.run" 5 with Ok () -> () | Error m -> Alcotest.fail m);
  (match Failpoint.activate_n "exec.run" 1 with Ok () -> () | Error m -> Alcotest.fail m);
  check_bool "re-armed count fires" true (fires "exec.run");
  check_bool "and is spent" false (fires "exec.run");
  (* Plain [activate] stays unlimited. *)
  (match Failpoint.activate "exec.run" with Ok () -> () | Error m -> Alcotest.fail m);
  check_bool "unlimited fires" true (fires "exec.run");
  check_bool "unlimited keeps firing" true (fires "exec.run");
  Failpoint.reset ()

(* After a fault fired, the engine is not poisoned: the same query
   succeeds once the point is disarmed. *)
let test_fault_then_recover () =
  let env = Lazy.force article_env in
  let q = Xpath.parse_exn q1_str in
  with_failpoint "exec.run" (fun () ->
      check_bool "fault fires" true (Result.is_error (Flexpath.run env ~k:5 q)));
  match Flexpath.run env ~k:5 q with
  | Ok r -> check_bool "recovered: answers flow again" true (r.Common.answers <> [])
  | Error e -> Alcotest.failf "did not recover: %s" (Error.to_string e)

(* ------------------------------------------------------------------ *)
(* Malformed XML: structured errors with positions, never exceptions. *)

let test_malformed_xml_corpus () =
  let cases =
    [
      ("unclosed tag", "<a>\n  <b></a>", 2, 9, "mismatched closing tag: expected </b>, got </a>");
      ("bad entity", "<a>&nosuch;</a>", 1, 12, "unknown entity &nosuch;");
      ("truncated input", "<a><b>text", 1, 11, "unterminated element <b>");
      ("non-element root", "hello", 1, 1, "expected document element");
      ("empty input", "", 1, 1, "expected document element");
      ("two roots", "<a/><b/>", 1, 5, "trailing content after document element");
    ]
  in
  List.iter
    (fun (name, input, line, column, message) ->
      match Env.of_string input with
      | Ok _ -> Alcotest.failf "%s: accepted malformed input" name
      | Error (Error.Xml_error e) ->
        check_int (name ^ ": line") line e.line;
        check_int (name ^ ": column") column e.column;
        check_string (name ^ ": message") message e.message;
        check_int (name ^ ": parse errors exit 2") 2 (Error.exit_code (Error.Xml_error e))
      | Error e -> Alcotest.failf "%s: expected Xml_error, got %s" name (Error.to_string e))
    cases

let test_missing_file_is_io_error () =
  match Env.of_file "/no/such/flexpath-test-file.xml" with
  | Ok _ -> Alcotest.fail "accepted a missing file"
  | Error (Error.Io_error _) -> ()
  | Error e -> Alcotest.failf "expected Io_error, got %s" (Error.to_string e)

let test_query_error_offsets () =
  let env = Lazy.force article_env in
  (match Flexpath.top_k_xpath env ~k:3 "//[" with
  | Error (Error.Query_error { offset; _ }) -> check_int "offset points at the hole" 2 offset
  | Error e -> Alcotest.failf "expected Query_error, got %s" (Error.to_string e)
  | Ok _ -> Alcotest.fail "accepted a malformed query");
  (* An FTExp error inside a predicate is rebased into the whole query
     string. *)
  match Flexpath.top_k_xpath env ~k:3 "//article[.contains(\"a\" and)]" with
  | Error (Error.Query_error { offset; _ }) ->
    check_bool "offset is inside the contains(...)" true (offset > 10)
  | Error e -> Alcotest.failf "expected Query_error, got %s" (Error.to_string e)
  | Ok _ -> Alcotest.fail "accepted a malformed full-text expression"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "faults"
    [
      ( "budget",
        [
          Alcotest.test_case "step budget truncates soundly" `Quick test_step_budget_truncates;
          Alcotest.test_case "tuple budget keeps completed passes" `Quick
            test_tuple_budget_truncates;
          Alcotest.test_case "hopeless budgets never raise" `Quick
            test_hopeless_budgets_never_raise;
        ] );
      ( "fallback",
        [ Alcotest.test_case "restart cap degrades to DPO" `Quick test_restart_cap_degrades ] );
      ( "errors",
        [
          Alcotest.test_case "closure capacity is typed" `Quick test_capacity_error;
          Alcotest.test_case "malformed XML corpus" `Quick test_malformed_xml_corpus;
          Alcotest.test_case "missing file" `Quick test_missing_file_is_io_error;
          Alcotest.test_case "query error offsets" `Quick test_query_error_offsets;
        ] );
      ( "failpoints",
        [
          Alcotest.test_case "query-path points" `Quick test_query_failpoints;
          Alcotest.test_case "env-build points" `Quick test_env_failpoints;
          Alcotest.test_case "registry" `Quick test_failpoint_registry;
          Alcotest.test_case "counted arming" `Quick test_counted_arming;
          Alcotest.test_case "fault then recover" `Quick test_fault_then_recover;
        ] );
    ]
