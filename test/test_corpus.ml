(* Sharded corpus: scatter-gather equivalence and shard-loss chaos.

   Acceptance tests of the fault-isolated sharded corpus:
   - a healthy N-shard corpus answers byte-identically (paths, float
     bits, ordering, tie-breaks) to a 1-shard corpus and to a plain
     single-env corpus over the same documents, across DPO/SSO/Hybrid
     and all ranking schemes;
   - the threshold-algorithm cutoff skips shards only when skipping is
     exact (tie-breaks included);
   - chaos: a shard whose snapshot is bit-flipped opens down, a shard
     lost mid-query (shard_probe failpoint) is struck, and in both
     cases the merged answer is PARTIAL with shards=N-1/N attribution
     and a sound score bound (>= the true score of every answer the
     lost shard held); repeated losses quarantine the shard; RELOAD
     restores COMPLETE;
   - the answer cache is scoped by the full per-shard generation
     vector: a write to any one shard invalidates cached merges;
   - replication (R = 2): WAL shipping keeps followers holding the
     acked set (sync before the ack, async within a bounded drain), a
     replica lost mid-query or corrupt at load fails over so the
     answer stays COMPLETE and byte-identical to the healthy run, a
     torn follower WAL catches up from the primary (snapshot copy +
     WAL tail replay), and killing the primary mid-soak drops no acked
     write and degrades no answer;
   - disk faults (ENOSPC/EIO on the durability path) degrade the store
     to explicit read-only — typed refusal with a retry hint, reads
     unaffected — and a post-probation write or merge recovers it. *)

module Xml = Xmldom.Xml
module Doc = Xmldom.Doc
module Corpus = Flexpath.Corpus
module Ingest = Flexpath.Ingest
module Env = Flexpath.Env
module Error = Flexpath.Error
module Failpoint = Flexpath.Failpoint
module Answer = Flexpath.Answer
module Ranking = Flexpath.Ranking
module Guard = Flexpath.Guard

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let ok_exn what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s failed: %s" what (Error.to_string e)

let temp_prefix =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "flexpath_corpus_%d_%d" (Unix.getpid ()) !n)

let remove_quiet path = try Sys.remove path with Sys_error _ -> ()

let with_corpus_paths ?(replicas = 1) ~shards f =
  let prefix = temp_prefix () in
  Fun.protect
    ~finally:(fun () ->
      for i = 0 to shards - 1 do
        remove_quiet (Printf.sprintf "%s.shard%d" prefix i);
        remove_quiet (Printf.sprintf "%s.shard%d.wal" prefix i);
        for j = 1 to replicas - 1 do
          remove_quiet (Printf.sprintf "%s.shard%d.r%d" prefix i j);
          remove_quiet (Printf.sprintf "%s.shard%d.r%d.wal" prefix i j)
        done
      done)
    (fun () -> f prefix)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

(* ------------------------------------------------------------------ *)
(* Fixtures *)

let article seed =
  let rng = Xmark.Prng.create seed in
  let archetype =
    Xmark.Prng.pick rng
      [|
        Xmark.Articles.Exact;
        Xmark.Articles.Title_keywords;
        Xmark.Articles.Algo_elsewhere;
        Xmark.Articles.No_algorithm;
        Xmark.Articles.Keywords_only;
        Xmark.Articles.Irrelevant;
      |]
  in
  Xmark.Articles.article rng archetype seed

(* Bodies as strings so corpus and baseline parse the same bytes. *)
let bodies n seed0 =
  List.init n (fun i -> (Printf.sprintf "d%d" i, Xml.to_string (article (seed0 + i))))

let queries =
  [
    "//article[.contains(\"xml\")]";
    "//article[./section[./algorithm and ./paragraph[.contains(\"xml\" and \"streaming\")]]]";
    "//section[./title]";
  ]

let parse_query s =
  match Tpq.Xpath.parse s with
  | Ok q -> q
  | Error { Tpq.Xpath.offset; message } -> Alcotest.failf "parse %s: %d: %s" s offset message

let fill corpus docs =
  List.iter (fun (id, body) -> ignore (ok_exn ("ingest " ^ id) (Corpus.ingest corpus ~id body))) docs

let schemes = [ Ranking.Structure_first; Ranking.Keyword_first; Ranking.Combined ]
let algorithms = [ Corpus.DPO; Corpus.SSO; Corpus.Hybrid ]

(* Byte-exact fingerprint of a corpus: rendered lines plus float bits
   and global tie-break ids, across algorithms x schemes x queries. *)
let corpus_fingerprint corpus =
  let b = Buffer.create 1024 in
  List.iter
    (fun algorithm ->
      List.iter
        (fun scheme ->
          List.iter
            (fun qs ->
              let q = parse_query qs in
              let r = ok_exn ("query " ^ qs) (Corpus.query corpus ~algorithm ~scheme ~k:10 q) in
              (match r.Corpus.completeness with
              | Corpus.Complete -> ()
              | Corpus.Partial _ -> Alcotest.failf "healthy corpus returned PARTIAL for %s" qs);
              check_int ("served " ^ qs) (Corpus.shard_count corpus) r.Corpus.served;
              List.iter
                (fun (a : Corpus.answer) ->
                  Buffer.add_string b
                    (Printf.sprintf "%s|%s|%s|%d|%Lx|%Lx\n"
                       (Corpus.algorithm_to_string algorithm)
                       (Ranking.to_string scheme) (Corpus.answer_line a) a.Corpus.a_node
                       (Int64.bits_of_float a.Corpus.a_sscore)
                       (Int64.bits_of_float a.Corpus.a_kscore))
                  )
                r.Corpus.answers)
            queries)
        schemes)
    algorithms;
  Buffer.contents b

(* The same fingerprint computed from a plain single-environment
   corpus (no sharding machinery at all), rendering answers through
   the same doc-relative convention. *)
let plain_fingerprint docs =
  let trees = List.map (fun (id, body) -> (id, ok_exn "parse_doc" (Ingest.parse_doc body))) docs in
  let env = Ingest.env (ok_exn "of_docs" (Ingest.of_docs trees)) in
  let doc = env.Env.doc in
  let spans =
    Doc.children doc (Doc.root doc)
    |> List.map (fun w ->
           (w, Doc.subtree_end doc w, Option.get (Doc.attribute doc w "id")))
  in
  let render (a : Answer.t) =
    let w, _, id =
      List.find (fun (w, e, _) -> w <= a.Answer.node && a.Answer.node < e) spans
    in
    let full = Doc.path_to_root doc a.Answer.node in
    let rel =
      if a.Answer.node = w then ""
      else
        (* strip "fx-corpus[1]/fx-doc[j]/" *)
        let i = String.index full '/' in
        let j = String.index_from full (i + 1) '/' in
        String.sub full (j + 1) (String.length full - j - 1)
    in
    let loc = if rel = "" then id else id ^ "/" ^ rel in
    let suffix =
      if a.Answer.dropped_predicates = 0 then "  exact"
      else Printf.sprintf "  (%d predicates relaxed)" a.Answer.dropped_predicates
    in
    Printf.sprintf "%s  ss=%.4f ks=%.4f%s" loc a.Answer.sscore a.Answer.kscore suffix
  in
  let b = Buffer.create 1024 in
  List.iter
    (fun algorithm ->
      List.iter
        (fun scheme ->
          List.iter
            (fun qs ->
              let falgo =
                match algorithm with
                | Corpus.DPO -> Flexpath.DPO
                | Corpus.SSO -> Flexpath.SSO
                | Corpus.Hybrid -> Flexpath.Hybrid
              in
              match Flexpath.run ~algorithm:falgo ~scheme env ~k:10 (parse_query qs) with
              | Error e -> Alcotest.failf "plain query %s failed: %s" qs (Error.to_string e)
              | Ok r ->
                List.iter
                  (fun (a : Answer.t) ->
                    Buffer.add_string b
                      (Printf.sprintf "%s|%s|%s|%d|%Lx|%Lx\n"
                         (Corpus.algorithm_to_string algorithm)
                         (Ranking.to_string scheme) (render a) a.Answer.node
                         (Int64.bits_of_float a.Answer.sscore)
                         (Int64.bits_of_float a.Answer.kscore)))
                  r.Flexpath.Common.answers)
            queries)
        schemes)
    algorithms;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Scatter-gather equivalence *)

let test_sharded_equals_plain () =
  let docs = bodies 10 500 in
  let fp_plain = plain_fingerprint docs in
  List.iter
    (fun shards ->
      with_corpus_paths ~shards (fun prefix ->
          let c = ok_exn "open" (Corpus.open_corpus ~shards ~prefix ()) in
          Fun.protect
            ~finally:(fun () -> Corpus.close c)
            (fun () ->
              fill c docs;
              check_string
                (Printf.sprintf "%d-shard == plain single-env" shards)
                fp_plain (corpus_fingerprint c))))
    [ 1; 4 ]

let test_parallel_scatter_equals_sequential () =
  (* The taskpool scatter (probe_domains > 0) must be answer-invisible:
     healthy merged results are byte-identical — float bits, ordering,
     tie-breaks — to the strictly sequential scatter over the same
     on-disk corpus.  The threshold-algorithm floor is shared across
     concurrent probes, so a stale floor may only reduce pruning. *)
  let docs = bodies 12 1100 in
  let shards = 4 in
  with_corpus_paths ~shards (fun prefix ->
      (* Persist once; both corpora then open the same on-disk state
         (a reopen reconstructs cross-shard arrival order, so comparing
         pre-restart against post-restart would conflate that with the
         scatter strategy under test). *)
      (let c = ok_exn "open to fill" (Corpus.open_corpus ~shards ~prefix ()) in
       Fun.protect ~finally:(fun () -> Corpus.close c) (fun () -> fill c docs));
      let fp_sequential =
        let c = ok_exn "open sequential" (Corpus.open_corpus ~shards ~prefix ()) in
        Fun.protect
          ~finally:(fun () -> Corpus.close c)
          (fun () ->
            check_int "sequential scatter" 1 (Corpus.probe_parallelism c);
            corpus_fingerprint c)
      in
      let c =
        ok_exn "open parallel" (Corpus.open_corpus ~probe_domains:3 ~shards ~prefix ())
      in
      Fun.protect
        ~finally:(fun () -> Corpus.close c)
        (fun () ->
          check_int "parallel scatter" (min 3 (shards - 1) + 1) (Corpus.probe_parallelism c);
          check_string "parallel scatter == sequential" fp_sequential (corpus_fingerprint c)))

let test_upsert_delete_equivalence () =
  (* Upserts move documents to the end of the global arrival order and
     deletes remove them — same as the unsharded corpus. *)
  let d1 = bodies 6 700 in
  with_corpus_paths ~shards:3 (fun prefix ->
      let c = ok_exn "open" (Corpus.open_corpus ~shards:3 ~prefix ()) in
      Fun.protect
        ~finally:(fun () -> Corpus.close c)
        (fun () ->
          fill c d1;
          let replacement = Xml.to_string (article 999) in
          ignore (ok_exn "upsert" (Corpus.ingest c ~id:"d2" replacement));
          ok_exn "delete" (Corpus.delete c ~id:"d4");
          let final =
            List.filter (fun (id, _) -> id <> "d2" && id <> "d4") d1 @ [ ("d2", replacement) ]
          in
          check_bool "arrival order" true (Corpus.ids c = List.map fst final);
          check_string "post-upsert/delete == plain" (plain_fingerprint final)
            (corpus_fingerprint c)))

let test_auto_ids_route_and_persist () =
  with_corpus_paths ~shards:4 (fun prefix ->
      let c = ok_exn "open" (Corpus.open_corpus ~shards:4 ~prefix ()) in
      let id1 = ok_exn "ingest" (Corpus.ingest c (Xml.to_string (article 1))) in
      let id2 = ok_exn "ingest" (Corpus.ingest c (Xml.to_string (article 2))) in
      check_string "first auto id" "doc-1" id1;
      check_string "second auto id" "doc-2" id2;
      check_int "routed shard" (Corpus.route ~shards:4 id1) (Corpus.shard_of_id c id1);
      Corpus.close c;
      (* Restart recovers both documents from the per-shard WALs and
         re-seeds the auto-id counter past them. *)
      let c = ok_exn "reopen" (Corpus.open_corpus ~shards:4 ~prefix ()) in
      Fun.protect
        ~finally:(fun () -> Corpus.close c)
        (fun () ->
          check_int "docs after restart" 2 (Corpus.doc_count c);
          let id3 = ok_exn "ingest" (Corpus.ingest c (Xml.to_string (article 3))) in
          check_string "auto id continues" "doc-3" id3))

(* The exact cutoff: K exact structural matches gathered from
   early-arrival documents let later-arrival shards be skipped, and
   the skip never changes the answer bytes. *)
let test_threshold_skip_exact () =
  let exact_doc = "<section><title>t</title></section>" in
  with_corpus_paths ~shards:2 (fun prefix ->
      let c = ok_exn "open" (Corpus.open_corpus ~shards:2 ~prefix ()) in
      Fun.protect
        ~finally:(fun () -> Corpus.close c)
        (fun () ->
          (* three early docs on shard 0, two late docs on shard 1 *)
          let on_shard s =
            let rec find i n acc =
              if n = 0 then List.rev acc
              else
                let id = Printf.sprintf "s%d-%d" s i in
                if Corpus.route ~shards:2 id = s then find (i + 1) (n - 1) (id :: acc)
                else find (i + 1) n acc
            in
            find 0 3 []
          in
          let early = on_shard 0 and late = List.filteri (fun i _ -> i < 2) (on_shard 1) in
          List.iter (fun id -> ignore (ok_exn "ingest" (Corpus.ingest c ~id exact_doc))) early;
          List.iter (fun id -> ignore (ok_exn "ingest" (Corpus.ingest c ~id exact_doc))) late;
          let q = parse_query "//section[./title]" in
          let r = ok_exn "query" (Corpus.query c ~k:3 q) in
          check_bool "complete" true (r.Corpus.completeness = Corpus.Complete);
          check_int "served counts skipped" 2 r.Corpus.served;
          let status_of ord =
            (List.find (fun rep -> rep.Corpus.r_ord = ord) r.Corpus.reports).Corpus.r_status
          in
          check_bool "shard 0 served" true (status_of 0 = Corpus.Served);
          check_bool "shard 1 skipped" true (status_of 1 = Corpus.Skipped);
          (* the three answers are the early-arrival documents *)
          check_bool "answers from early docs" true
            (List.for_all
               (fun (a : Corpus.answer) -> List.mem a.Corpus.a_doc early)
               r.Corpus.answers);
          check_int "k answers" 3 (List.length r.Corpus.answers)))

(* ------------------------------------------------------------------ *)
(* Chaos: shard loss *)

(* True per-answer scores over the full healthy corpus, for soundness
   checks: every answer the lost shard held must score at most the
   reported bound. *)
let true_scores corpus scheme qs =
  let r = ok_exn "healthy query" (Corpus.query corpus ~scheme ~use_cache:false ~k:50 (parse_query qs)) in
  List.map
    (fun (a : Corpus.answer) ->
      (a.Corpus.a_doc, Ranking.total scheme { sscore = a.Corpus.a_sscore; kscore = a.Corpus.a_kscore }))
    r.Corpus.answers

let check_partial_sound ~what ~lost_ord corpus r truth =
  let shards = Corpus.shard_count corpus in
  (match r.Corpus.completeness with
  | Corpus.Partial { reason = "shard-loss"; score_bound } ->
    (* sound: no answer living on the lost shard scores above the bound *)
    List.iter
      (fun (doc, total) ->
        if Corpus.shard_of_id corpus doc = lost_ord && total > score_bound +. 1e-9 then
          Alcotest.failf "%s: bound %.6f unsound, %s on lost shard scores %.6f" what score_bound
            doc total)
      truth
  | Corpus.Partial { reason; _ } -> Alcotest.failf "%s: unexpected partial reason %s" what reason
  | Corpus.Complete -> Alcotest.failf "%s: expected PARTIAL" what);
  check_int (what ^ ": served") (shards - 1) r.Corpus.served;
  check_int (what ^ ": total") shards r.Corpus.total;
  (* every returned answer comes from a surviving shard *)
  List.iter
    (fun (a : Corpus.answer) ->
      if Corpus.shard_of_id corpus a.Corpus.a_doc = lost_ord then
        Alcotest.failf "%s: answer %s from lost shard" what a.Corpus.a_doc)
    r.Corpus.answers

let test_corrupt_shard_snapshot () =
  let docs = bodies 12 900 in
  let shards = 3 in
  with_corpus_paths ~shards (fun prefix ->
      let c = ok_exn "open" (Corpus.open_corpus ~shards ~prefix ()) in
      fill c docs;
      for i = 0 to shards - 1 do
        ok_exn "merge" (Corpus.merge c i)
      done;
      let truth = true_scores c Ranking.Structure_first (List.hd queries) in
      Corpus.close c;
      (* bit-flip shard 1's snapshot inside the primary document
         section: integrity checking must fail the load *)
      let victim = Printf.sprintf "%s.shard%d" prefix 1 in
      let good = read_file victim in
      let pos = min 100 (String.length good - 1) in
      let flipped =
        String.mapi (fun i ch -> if i = pos then Char.chr (Char.code ch lxor 0x40) else ch) good
      in
      write_file victim flipped;
      let c = ok_exn "reopen with corrupt shard" (Corpus.open_corpus ~shards ~prefix ()) in
      Fun.protect
        ~finally:(fun () -> Corpus.close c)
        (fun () ->
          let h = Corpus.health c in
          check_bool "shard 1 down" false h.(1).Corpus.h_live;
          check_bool "shard 0 live" true h.(0).Corpus.h_live;
          check_bool "load error recorded" true (h.(1).Corpus.h_last_error <> None);
          let r =
            ok_exn "query over degraded corpus"
              (Corpus.query c ~use_cache:false ~k:10 (parse_query (List.hd queries)))
          in
          check_partial_sound ~what:"corrupt shard" ~lost_ord:1 c r truth;
          (* surviving shards still accept writes at full goodput;
             writes routed to the dead shard are refused cleanly *)
          let rec pick_id ~on i =
            let id = Printf.sprintf "w%d" i in
            if Corpus.shard_of_id c id = 1 = on then id else pick_id ~on (i + 1)
          in
          ignore
            (ok_exn "ingest while degraded"
               (Corpus.ingest c ~id:(pick_id ~on:false 0) (Xml.to_string (article 77))));
          (match Corpus.ingest c ~id:(pick_id ~on:true 0) (Xml.to_string (article 78)) with
          | Error (Error.Io_error _) -> ()
          | Error e -> Alcotest.failf "unexpected refusal: %s" (Error.to_string e)
          | Ok _ -> Alcotest.fail "write to a down shard must be refused");
          (* repair the snapshot, RELOAD the one shard: COMPLETE again *)
          write_file victim good;
          ok_exn "reload" (Corpus.reload c 1);
          let r2 =
            ok_exn "query after reload"
              (Corpus.query c ~use_cache:false ~k:10 (parse_query (List.hd queries)))
          in
          check_bool "complete after reload" true (r2.Corpus.completeness = Corpus.Complete);
          check_int "all shards served" shards r2.Corpus.served))

let test_shard_lost_mid_query_and_quarantine () =
  let docs = bodies 12 1100 in
  let shards = 3 in
  with_corpus_paths ~shards (fun prefix ->
      let c = ok_exn "open" (Corpus.open_corpus ~shards ~prefix ()) in
      Fun.protect
        ~finally:(fun () ->
          Failpoint.reset ();
          Corpus.close c)
        (fun () ->
          fill c docs;
          let qs = List.nth queries 2 in
          let truth = true_scores c Ranking.Structure_first qs in
          (* the first probe of the scatter dies: shard 0 is lost for
             this query only *)
          (match Failpoint.activate_n "shard_probe" 1 with
          | Ok () -> ()
          | Error m -> Alcotest.fail m);
          let r = ok_exn "query with lost probe" (Corpus.query c ~use_cache:false ~k:10 (parse_query qs)) in
          check_partial_sound ~what:"probe loss" ~lost_ord:0 c r truth;
          let h = Corpus.health c in
          check_int "strike recorded" 1 h.(0).Corpus.h_strikes;
          check_bool "not yet quarantined" false h.(0).Corpus.h_quarantined;
          (* a healthy query clears the strike *)
          ignore (ok_exn "healthy query" (Corpus.query c ~use_cache:false ~k:10 (parse_query qs)));
          check_int "strikes cleared" 0 (Corpus.health c).(0).Corpus.h_strikes;
          (* three consecutive losses trip the quarantine *)
          for _ = 1 to 3 do
            (match Failpoint.activate_n "shard_probe" 1 with
            | Ok () -> ()
            | Error m -> Alcotest.fail m);
            ignore (ok_exn "lossy query" (Corpus.query c ~use_cache:false ~k:10 (parse_query qs)))
          done;
          let h = Corpus.health c in
          check_bool "quarantined" true h.(0).Corpus.h_quarantined;
          check_bool "quarantined shard not live" false h.(0).Corpus.h_live;
          (* quarantined shard contributes a bound, not an error — and
             no failpoint is armed anymore *)
          let r = ok_exn "query under quarantine" (Corpus.query c ~use_cache:false ~k:10 (parse_query qs)) in
          check_partial_sound ~what:"quarantine" ~lost_ord:0 c r truth;
          (* writes to the quarantined shard are refused *)
          (match Corpus.ingest c ~id:"s0-0" "<a/>" with
          | Error (Error.Io_error _) when Corpus.shard_of_id c "s0-0" = 0 -> ()
          | Error e -> Alcotest.failf "unexpected refusal: %s" (Error.to_string e)
          | Ok _ ->
            if Corpus.shard_of_id c "s0-0" = 0 then Alcotest.fail "write to quarantined shard");
          (* RELOAD restores the shard and the COMPLETE answer *)
          ok_exn "reload" (Corpus.reload c 0);
          let r2 = ok_exn "query after reload" (Corpus.query c ~use_cache:false ~k:10 (parse_query qs)) in
          check_bool "complete after reload" true (r2.Corpus.completeness = Corpus.Complete)))

let test_all_shards_down () =
  with_corpus_paths ~shards:2 (fun prefix ->
      (* both snapshots are garbage *)
      write_file (prefix ^ ".shard0") "not a snapshot";
      write_file (prefix ^ ".shard1") "not a snapshot either";
      let c = ok_exn "open" (Corpus.open_corpus ~shards:2 ~prefix ()) in
      Fun.protect
        ~finally:(fun () -> Corpus.close c)
        (fun () ->
          let r = ok_exn "query" (Corpus.query c ~k:5 (parse_query (List.hd queries))) in
          check_int "nothing served" 0 r.Corpus.served;
          check_bool "no answers" true (r.Corpus.answers = []);
          match r.Corpus.completeness with
          | Corpus.Partial { reason = "shard-loss"; score_bound } ->
            (* //article has no structural predicates, so the
               data-independent maximum is exactly 0 — still sound *)
            check_bool "sound bound" true (score_bound >= 0.)
          | _ -> Alcotest.fail "expected shard-loss PARTIAL"))

(* ------------------------------------------------------------------ *)
(* Replication: WAL shipping, failover, catch-up, read-only degrade *)

let replica_of c ~ord ~idx = (Corpus.health c).(ord).Corpus.h_replicas.(idx)

let must = function Ok () -> () | Error m -> Alcotest.fail m

let test_replicated_equals_plain () =
  let docs = bodies 10 1700 in
  let fp_plain = plain_fingerprint docs in
  List.iter
    (fun ack_mode ->
      with_corpus_paths ~replicas:2 ~shards:3 (fun prefix ->
          let c =
            ok_exn "open" (Corpus.open_corpus ~replicas:2 ~ack_mode ~shards:3 ~prefix ())
          in
          Fun.protect
            ~finally:(fun () -> Corpus.close c)
            (fun () ->
              fill c docs;
              (match ack_mode with
              | Corpus.Sync ->
                (* sync shipping: every follower already holds the acked
                   set when the ack returns *)
                Array.iter
                  (fun h ->
                    Array.iter
                      (fun rh ->
                        check_bool "synced" true rh.Corpus.rh_synced;
                        check_int "docs agree" h.Corpus.h_docs rh.Corpus.rh_docs)
                      h.Corpus.h_replicas)
                  (Corpus.health c)
              | Corpus.Async ->
                (* async shipping: a follower with queued records is
                   excluded from the view ([!] in the vector) until
                   drained, so failover can never serve a stale copy *)
                check_bool "lagging follower excluded" true
                  (String.contains (Corpus.generation_vector c) '!');
                for ord = 0 to Corpus.shard_count c - 1 do
                  Corpus.ship_pending c ord
                done;
                Array.iter
                  (fun h ->
                    Array.iter
                      (fun rh ->
                        check_bool "drained and synced" true
                          (rh.Corpus.rh_lag = 0 && rh.Corpus.rh_synced))
                      h.Corpus.h_replicas)
                  (Corpus.health c));
              check_string
                (Printf.sprintf "replicated (%s) == plain single-env"
                   (Corpus.ack_mode_to_string ack_mode))
                fp_plain (corpus_fingerprint c))))
    [ Corpus.Sync; Corpus.Async ]

let test_probe_loss_failover_complete () =
  let docs = bodies 12 1900 in
  let shards = 2 in
  with_corpus_paths ~replicas:2 ~shards (fun prefix ->
      let c = ok_exn "open" (Corpus.open_corpus ~replicas:2 ~shards ~prefix ()) in
      Fun.protect
        ~finally:(fun () ->
          Failpoint.reset ();
          Corpus.close c)
        (fun () ->
          fill c docs;
          let q = parse_query (List.nth queries 2) in
          let healthy = ok_exn "healthy" (Corpus.query c ~use_cache:false ~k:10 q) in
          check_bool "healthy complete" true (healthy.Corpus.completeness = Corpus.Complete);
          (* the first probe attempt (shard 0's primary) dies mid-query:
             the probe retries on the follower under the same guard *)
          must (Failpoint.activate_n "shard_probe" 1);
          let r = ok_exn "failover query" (Corpus.query c ~use_cache:false ~k:10 q) in
          check_bool "still complete" true (r.Corpus.completeness = Corpus.Complete);
          check_int "all sets served" shards r.Corpus.served;
          check_int "one failover" 1 r.Corpus.failovers;
          check_bool "answers byte-identical to healthy" true
            (r.Corpus.answers = healthy.Corpus.answers);
          let rep0 = List.find (fun rep -> rep.Corpus.r_ord = 0) r.Corpus.reports in
          check_bool "shard 0 served" true (rep0.Corpus.r_status = Corpus.Served);
          check_int "served by the follower" 1 rep0.Corpus.r_replica;
          check_int "primary struck" 1 (replica_of c ~ord:0 ~idx:0).Corpus.rh_strikes;
          (* a healthy probe served by the primary clears its strike *)
          ignore (ok_exn "healthy again" (Corpus.query c ~use_cache:false ~k:10 q));
          check_int "strike cleared" 0 (replica_of c ~ord:0 ~idx:0).Corpus.rh_strikes))

let test_corrupt_primary_failover_and_catchup () =
  let docs = bodies 12 2100 in
  let shards = 2 in
  with_corpus_paths ~replicas:2 ~shards (fun prefix ->
      (* fill + merge so every replica owns a snapshot, then capture the
         healthy post-restart fingerprint (a reopen reconstructs
         cross-shard arrival order, so the baseline must be a reopen
         too) *)
      (let c = ok_exn "open to fill" (Corpus.open_corpus ~replicas:2 ~shards ~prefix ()) in
       Fun.protect
         ~finally:(fun () -> Corpus.close c)
         (fun () ->
           fill c docs;
           for i = 0 to shards - 1 do
             ok_exn "merge" (Corpus.merge c i)
           done));
      let fp_healthy =
        let c = ok_exn "reopen healthy" (Corpus.open_corpus ~replicas:2 ~shards ~prefix ()) in
        Fun.protect ~finally:(fun () -> Corpus.close c) (fun () -> corpus_fingerprint c)
      in
      (* bit-flip the PRIMARY's snapshot of shard 0: integrity checking
         fails its load, the follower is promoted, and the corpus still
         answers COMPLETE, byte-identical to the healthy run *)
      let victim = prefix ^ ".shard0" in
      let good = read_file victim in
      let pos = min 100 (String.length good - 1) in
      write_file victim
        (String.mapi (fun i ch -> if i = pos then Char.chr (Char.code ch lxor 0x40) else ch) good);
      let c = ok_exn "reopen corrupt" (Corpus.open_corpus ~replicas:2 ~shards ~prefix ()) in
      Fun.protect
        ~finally:(fun () -> Corpus.close c)
        (fun () ->
          let r0 = replica_of c ~ord:0 ~idx:0 and r1 = replica_of c ~ord:0 ~idx:1 in
          check_bool "replica 0 down" false r0.Corpus.rh_live;
          check_bool "load error recorded" true (r0.Corpus.rh_last_error <> None);
          check_bool "follower promoted" true (r1.Corpus.rh_role = Corpus.Primary);
          check_bool "set still live" true (Corpus.health c).(0).Corpus.h_live;
          check_string "one replica lost == healthy" fp_healthy (corpus_fingerprint c);
          (* writes routed to shard 0 keep flowing through the promoted
             primary *)
          let rec pick i =
            let id = Printf.sprintf "p%d" i in
            if Corpus.shard_of_id c id = 0 then id else pick (i + 1)
          in
          ignore
            (ok_exn "write to promoted primary"
               (Corpus.ingest c ~id:(pick 0) (Xml.to_string (article 321))));
          (* catch the dead replica up from the promoted primary: a real
             snapshot copy + WAL tail replay, past both the corruption
             and the write it missed *)
          ok_exn "reload replica" (Corpus.reload c ~replica:0 0);
          let r0 = replica_of c ~ord:0 ~idx:0 in
          check_bool "replica 0 back" true (r0.Corpus.rh_live && r0.Corpus.rh_synced);
          check_int "caught up past the corruption"
            (replica_of c ~ord:0 ~idx:1).Corpus.rh_docs r0.Corpus.rh_docs))

let test_torn_follower_wal_catchup () =
  let docs = bodies 8 2300 in
  with_corpus_paths ~replicas:2 ~shards:1 (fun prefix ->
      (let c = ok_exn "open" (Corpus.open_corpus ~replicas:2 ~shards:1 ~prefix ()) in
       Fun.protect ~finally:(fun () -> Corpus.close c) (fun () -> fill c docs));
      (* tear the follower's WAL mid-record: replay recovers the valid
         prefix, so the follower reopens live but behind the primary *)
      let fwal = prefix ^ ".shard0.r1.wal" in
      let bytes = read_file fwal in
      write_file fwal (String.sub bytes 0 (String.length bytes / 2));
      let c = ok_exn "reopen" (Corpus.open_corpus ~replicas:2 ~shards:1 ~prefix ()) in
      Fun.protect
        ~finally:(fun () -> Corpus.close c)
        (fun () ->
          let prim = replica_of c ~ord:0 ~idx:0 and rf = replica_of c ~ord:0 ~idx:1 in
          check_int "primary has all docs" (List.length docs) prim.Corpus.rh_docs;
          check_bool "follower live but behind" true
            (rf.Corpus.rh_live
            && (not rf.Corpus.rh_synced)
            && rf.Corpus.rh_docs < List.length docs);
          check_bool "out-of-sync marked in the vector" true
            (String.contains (Corpus.generation_vector c) '!');
          (* queries keep serving COMPLETE from the primary *)
          let r =
            ok_exn "query" (Corpus.query c ~use_cache:false ~k:10 (parse_query (List.hd queries)))
          in
          check_bool "complete" true (r.Corpus.completeness = Corpus.Complete);
          (* catch-up: primary snapshot copy + WAL tail replay to the
             primary's acked set *)
          ok_exn "catch up" (Corpus.reload c ~replica:1 0);
          let rf = replica_of c ~ord:0 ~idx:1 in
          check_bool "follower synced" true (rf.Corpus.rh_synced && rf.Corpus.rh_live);
          check_int "doc counts agree" (List.length docs) rf.Corpus.rh_docs;
          (* shipping resumes: a new write reaches both copies before ack *)
          ignore (ok_exn "ingest" (Corpus.ingest c ~id:"post" (Xml.to_string (article 77))));
          check_int "primary ahead" (List.length docs + 1)
            (replica_of c ~ord:0 ~idx:0).Corpus.rh_docs;
          check_int "follower keeps pace" (List.length docs + 1)
            (replica_of c ~ord:0 ~idx:1).Corpus.rh_docs))

let test_kill_primary_mid_soak () =
  let docs = bodies 10 2500 in
  let shards = 2 in
  with_corpus_paths ~replicas:2 ~shards (fun prefix ->
      let c = ok_exn "open" (Corpus.open_corpus ~replicas:2 ~shards ~prefix ()) in
      Fun.protect
        ~finally:(fun () ->
          Failpoint.reset ();
          Corpus.close c)
        (fun () ->
          fill c docs;
          let q = parse_query (List.nth queries 2) in
          (* three mid-query losses quarantine shard 0's primary — the
             permanent-kill model — and every one of them is absorbed by
             failover, never surfacing as PARTIAL *)
          for _ = 1 to 3 do
            must (Failpoint.activate_n "shard_probe" 1);
            let r = ok_exn "query during kill" (Corpus.query c ~use_cache:false ~k:10 q) in
            check_bool "complete during kill" true (r.Corpus.completeness = Corpus.Complete)
          done;
          check_bool "primary quarantined" true (replica_of c ~ord:0 ~idx:0).Corpus.rh_quarantined;
          check_bool "follower promoted" true
            ((replica_of c ~ord:0 ~idx:1).Corpus.rh_role = Corpus.Primary);
          (* soak: interleaved writes and queries against the one-copy
             set — zero PARTIAL, zero dropped writes *)
          let written = ref [] in
          for i = 0 to 9 do
            let id = Printf.sprintf "soak%d" i in
            ignore (ok_exn ("ingest " ^ id) (Corpus.ingest c ~id (Xml.to_string (article (3000 + i)))));
            written := id :: !written;
            let r = ok_exn "soak query" (Corpus.query c ~use_cache:false ~k:10 q) in
            check_bool "soak complete" true (r.Corpus.completeness = Corpus.Complete);
            check_int "soak served" shards r.Corpus.served
          done;
          let ids = Corpus.ids c in
          List.iter (fun id -> check_bool ("retained " ^ id) true (List.mem id ids)) !written;
          check_int "zero dropped" (List.length docs + 10) (Corpus.doc_count c);
          (* RELOAD the set: the quarantined replica reopens, catches up
             from the survivor, and the set is fully redundant again *)
          ok_exn "reload" (Corpus.reload c 0);
          let r0 = replica_of c ~ord:0 ~idx:0 and r1 = replica_of c ~ord:0 ~idx:1 in
          check_bool "replica 0 recovered" true
            (r0.Corpus.rh_live && r0.Corpus.rh_synced && not r0.Corpus.rh_quarantined);
          check_int "replica doc counts agree" r1.Corpus.rh_docs r0.Corpus.rh_docs;
          let r = ok_exn "query after reload" (Corpus.query c ~use_cache:false ~k:10 q) in
          check_bool "complete after reload" true (r.Corpus.completeness = Corpus.Complete)))

let test_disk_fault_readonly_degrade () =
  with_corpus_paths ~shards:1 (fun prefix ->
      let c = ok_exn "open" (Corpus.open_corpus ~probation_ms:300.0 ~shards:1 ~prefix ()) in
      Fun.protect
        ~finally:(fun () ->
          Failpoint.reset ();
          Corpus.close c)
        (fun () ->
          ignore (ok_exn "seed" (Corpus.ingest c ~id:"a" (Xml.to_string (article 1))));
          (* ENOSPC on the WAL append: the failing write reports Io_error
             and is in neither the corpus nor the log — never a silent
             non-durable ack *)
          must (Failpoint.activate_errno "wal_append" Unix.ENOSPC 1);
          (match Corpus.ingest c ~id:"b" (Xml.to_string (article 2)) with
          | Error (Error.Io_error _) -> ()
          | Error e -> Alcotest.failf "expected Io_error, got %s" (Error.to_string e)
          | Ok _ -> Alcotest.fail "ENOSPC write must fail");
          check_bool "failed write absent" false (List.mem "b" (Corpus.ids c));
          (* the store is now explicitly read-only: the typed refusal
             with a retry hint (wire READONLY, exit code 7) *)
          (match Corpus.ingest c ~id:"b" (Xml.to_string (article 2)) with
          | Error (Error.Readonly { retry_after_ms; _ } as e) ->
            check_bool "positive hint" true (retry_after_ms >= 1);
            check_int "exit code" 7 (Error.exit_code e)
          | Error e -> Alcotest.failf "expected Readonly, got %s" (Error.to_string e)
          | Ok _ -> Alcotest.fail "degraded store must refuse writes");
          check_bool "hint surfaced" true (Corpus.readonly_hint c 0 <> None);
          check_bool "health flag" true (replica_of c ~ord:0 ~idx:0).Corpus.rh_readonly;
          (* reads keep serving the acked corpus *)
          let r =
            ok_exn "read while degraded"
              (Corpus.query c ~use_cache:false ~k:5 (parse_query (List.hd queries)))
          in
          check_bool "reads complete" true (r.Corpus.completeness = Corpus.Complete);
          (* after probation the next write is the automatic re-probe;
             the healthy disk clears the degrade *)
          Unix.sleepf 0.4;
          ignore (ok_exn "re-probe write" (Corpus.ingest c ~id:"b" (Xml.to_string (article 2))));
          check_bool "degrade cleared" true (Corpus.readonly_hint c 0 = None);
          check_bool "health cleared" false (replica_of c ~ord:0 ~idx:0).Corpus.rh_readonly;
          (* EIO on the snapshot-publishing rename during a merge arms
             the same degrade; a post-probation merge recovers *)
          must (Failpoint.activate_errno "storage_rename" Unix.EIO 1);
          (match Corpus.merge c 0 with
          | Error (Error.Io_error _) -> ()
          | Error e -> Alcotest.failf "expected Io_error, got %s" (Error.to_string e)
          | Ok () -> Alcotest.fail "EIO merge must fail");
          (match Corpus.ingest c ~id:"d" (Xml.to_string (article 3)) with
          | Error (Error.Readonly _) -> ()
          | Error e -> Alcotest.failf "expected Readonly, got %s" (Error.to_string e)
          | Ok _ -> Alcotest.fail "degraded store must refuse writes");
          Unix.sleepf 0.4;
          ok_exn "recovered merge" (Corpus.merge c 0);
          check_bool "cleared after merge" true (Corpus.readonly_hint c 0 = None)))

(* ------------------------------------------------------------------ *)
(* Budget and cache *)

let test_budget_partial_is_sound () =
  let docs = bodies 10 1300 in
  with_corpus_paths ~shards:2 (fun prefix ->
      let c = ok_exn "open" (Corpus.open_corpus ~shards:2 ~prefix ()) in
      Fun.protect
        ~finally:(fun () -> Corpus.close c)
        (fun () ->
          fill c docs;
          let qs = List.nth queries 1 in
          let full = ok_exn "full" (Corpus.query c ~use_cache:false ~k:10 (parse_query qs)) in
          let budget = Guard.budget ~tuple_budget:1 () in
          let r = ok_exn "tiny budget" (Corpus.query c ~budget ~use_cache:false ~k:10 (parse_query qs)) in
          match r.Corpus.completeness with
          | Corpus.Complete -> Alcotest.fail "expected budget PARTIAL"
          | Corpus.Partial { score_bound; _ } ->
            (* every full answer missing from the truncated result
               scores at most the bound *)
            let kept = List.map (fun a -> a.Corpus.a_node) r.Corpus.answers in
            List.iter
              (fun (a : Corpus.answer) ->
                if not (List.mem a.Corpus.a_node kept) then begin
                  let total =
                    Ranking.total Ranking.Structure_first
                      { sscore = a.Corpus.a_sscore; kscore = a.Corpus.a_kscore }
                  in
                  if total > score_bound +. 1e-9 then
                    Alcotest.failf "unsound budget bound %.6f < %.6f" score_bound total
                end)
              full.Corpus.answers))

let test_cache_scoped_by_generation_vector () =
  let docs = bodies 6 1500 in
  with_corpus_paths ~shards:3 (fun prefix ->
      let c = ok_exn "open" (Corpus.open_corpus ~shards:3 ~prefix ()) in
      Fun.protect
        ~finally:(fun () -> Corpus.close c)
        (fun () ->
          fill c docs;
          let q = parse_query "//section[./title]" in
          let r1 = ok_exn "q1" (Corpus.query c ~k:20 q) in
          let r2 = ok_exn "q2" (Corpus.query c ~k:20 q) in
          let hits_after_repeat = (Corpus.cache_counters c).Flexpath.Qcache.hits in
          check_bool "repeat hits the cache" true (hits_after_repeat > 0);
          check_bool "cached answer identical" true (r1 = r2);
          let v1 = Corpus.generation_vector c in
          (* a write to ONE shard must change the vector and miss *)
          ignore (ok_exn "ingest" (Corpus.ingest c (Xml.to_string (article 42))));
          let v2 = Corpus.generation_vector c in
          check_bool "generation vector changed" true (v1 <> v2);
          let r3 = ok_exn "q3" (Corpus.query c ~k:20 q) in
          check_bool "post-write result is fresh" true
            (List.length r3.Corpus.answers >= List.length r1.Corpus.answers)))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "corpus"
    [
      ( "equivalence",
        [
          Alcotest.test_case "sharded == plain single-env (1 and 4 shards)" `Slow
            test_sharded_equals_plain;
          Alcotest.test_case "parallel scatter == sequential scatter" `Slow
            test_parallel_scatter_equals_sequential;
          Alcotest.test_case "upsert/delete keeps equivalence" `Slow test_upsert_delete_equivalence;
          Alcotest.test_case "auto ids route and persist" `Quick test_auto_ids_route_and_persist;
          Alcotest.test_case "threshold-algorithm skip is exact" `Quick test_threshold_skip_exact;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "corrupt snapshot: PARTIAL then RELOAD" `Slow
            test_corrupt_shard_snapshot;
          Alcotest.test_case "probe loss, strikes, quarantine, RELOAD" `Slow
            test_shard_lost_mid_query_and_quarantine;
          Alcotest.test_case "all shards down" `Quick test_all_shards_down;
        ] );
      ( "replication",
        [
          Alcotest.test_case "replicated (sync and async) == plain single-env" `Slow
            test_replicated_equals_plain;
          Alcotest.test_case "probe loss fails over: COMPLETE, byte-identical" `Slow
            test_probe_loss_failover_complete;
          Alcotest.test_case "corrupt primary: promotion, then catch-up" `Slow
            test_corrupt_primary_failover_and_catchup;
          Alcotest.test_case "torn follower WAL: catch-up resyncs" `Quick
            test_torn_follower_wal_catchup;
          Alcotest.test_case "kill primary mid-soak: zero PARTIAL, zero dropped" `Slow
            test_kill_primary_mid_soak;
          Alcotest.test_case "ENOSPC/EIO: read-only degrade and recovery" `Quick
            test_disk_fault_readonly_degrade;
        ] );
      ( "budget+cache",
        [
          Alcotest.test_case "budget PARTIAL bound is sound" `Quick test_budget_partial_is_sound;
          Alcotest.test_case "cache scoped by generation vector" `Quick
            test_cache_scoped_by_generation_vector;
        ] );
    ]
