(* Sharded corpus: scatter-gather equivalence and shard-loss chaos.

   Acceptance tests of the fault-isolated sharded corpus:
   - a healthy N-shard corpus answers byte-identically (paths, float
     bits, ordering, tie-breaks) to a 1-shard corpus and to a plain
     single-env corpus over the same documents, across DPO/SSO/Hybrid
     and all ranking schemes;
   - the threshold-algorithm cutoff skips shards only when skipping is
     exact (tie-breaks included);
   - chaos: a shard whose snapshot is bit-flipped opens down, a shard
     lost mid-query (shard_probe failpoint) is struck, and in both
     cases the merged answer is PARTIAL with shards=N-1/N attribution
     and a sound score bound (>= the true score of every answer the
     lost shard held); repeated losses quarantine the shard; RELOAD
     restores COMPLETE;
   - the answer cache is scoped by the full per-shard generation
     vector: a write to any one shard invalidates cached merges. *)

module Xml = Xmldom.Xml
module Doc = Xmldom.Doc
module Corpus = Flexpath.Corpus
module Ingest = Flexpath.Ingest
module Env = Flexpath.Env
module Error = Flexpath.Error
module Failpoint = Flexpath.Failpoint
module Answer = Flexpath.Answer
module Ranking = Flexpath.Ranking
module Guard = Flexpath.Guard

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let ok_exn what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s failed: %s" what (Error.to_string e)

let temp_prefix =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "flexpath_corpus_%d_%d" (Unix.getpid ()) !n)

let remove_quiet path = try Sys.remove path with Sys_error _ -> ()

let with_corpus_paths ~shards f =
  let prefix = temp_prefix () in
  Fun.protect
    ~finally:(fun () ->
      for i = 0 to shards - 1 do
        remove_quiet (Printf.sprintf "%s.shard%d" prefix i);
        remove_quiet (Printf.sprintf "%s.shard%d.wal" prefix i)
      done)
    (fun () -> f prefix)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

(* ------------------------------------------------------------------ *)
(* Fixtures *)

let article seed =
  let rng = Xmark.Prng.create seed in
  let archetype =
    Xmark.Prng.pick rng
      [|
        Xmark.Articles.Exact;
        Xmark.Articles.Title_keywords;
        Xmark.Articles.Algo_elsewhere;
        Xmark.Articles.No_algorithm;
        Xmark.Articles.Keywords_only;
        Xmark.Articles.Irrelevant;
      |]
  in
  Xmark.Articles.article rng archetype seed

(* Bodies as strings so corpus and baseline parse the same bytes. *)
let bodies n seed0 =
  List.init n (fun i -> (Printf.sprintf "d%d" i, Xml.to_string (article (seed0 + i))))

let queries =
  [
    "//article[.contains(\"xml\")]";
    "//article[./section[./algorithm and ./paragraph[.contains(\"xml\" and \"streaming\")]]]";
    "//section[./title]";
  ]

let parse_query s =
  match Tpq.Xpath.parse s with
  | Ok q -> q
  | Error { Tpq.Xpath.offset; message } -> Alcotest.failf "parse %s: %d: %s" s offset message

let fill corpus docs =
  List.iter (fun (id, body) -> ignore (ok_exn ("ingest " ^ id) (Corpus.ingest corpus ~id body))) docs

let schemes = [ Ranking.Structure_first; Ranking.Keyword_first; Ranking.Combined ]
let algorithms = [ Corpus.DPO; Corpus.SSO; Corpus.Hybrid ]

(* Byte-exact fingerprint of a corpus: rendered lines plus float bits
   and global tie-break ids, across algorithms x schemes x queries. *)
let corpus_fingerprint corpus =
  let b = Buffer.create 1024 in
  List.iter
    (fun algorithm ->
      List.iter
        (fun scheme ->
          List.iter
            (fun qs ->
              let q = parse_query qs in
              let r = ok_exn ("query " ^ qs) (Corpus.query corpus ~algorithm ~scheme ~k:10 q) in
              (match r.Corpus.completeness with
              | Corpus.Complete -> ()
              | Corpus.Partial _ -> Alcotest.failf "healthy corpus returned PARTIAL for %s" qs);
              check_int ("served " ^ qs) (Corpus.shard_count corpus) r.Corpus.served;
              List.iter
                (fun (a : Corpus.answer) ->
                  Buffer.add_string b
                    (Printf.sprintf "%s|%s|%s|%d|%Lx|%Lx\n"
                       (Corpus.algorithm_to_string algorithm)
                       (Ranking.to_string scheme) (Corpus.answer_line a) a.Corpus.a_node
                       (Int64.bits_of_float a.Corpus.a_sscore)
                       (Int64.bits_of_float a.Corpus.a_kscore))
                  )
                r.Corpus.answers)
            queries)
        schemes)
    algorithms;
  Buffer.contents b

(* The same fingerprint computed from a plain single-environment
   corpus (no sharding machinery at all), rendering answers through
   the same doc-relative convention. *)
let plain_fingerprint docs =
  let trees = List.map (fun (id, body) -> (id, ok_exn "parse_doc" (Ingest.parse_doc body))) docs in
  let env = Ingest.env (ok_exn "of_docs" (Ingest.of_docs trees)) in
  let doc = env.Env.doc in
  let spans =
    Doc.children doc (Doc.root doc)
    |> List.map (fun w ->
           (w, Doc.subtree_end doc w, Option.get (Doc.attribute doc w "id")))
  in
  let render (a : Answer.t) =
    let w, _, id =
      List.find (fun (w, e, _) -> w <= a.Answer.node && a.Answer.node < e) spans
    in
    let full = Doc.path_to_root doc a.Answer.node in
    let rel =
      if a.Answer.node = w then ""
      else
        (* strip "fx-corpus[1]/fx-doc[j]/" *)
        let i = String.index full '/' in
        let j = String.index_from full (i + 1) '/' in
        String.sub full (j + 1) (String.length full - j - 1)
    in
    let loc = if rel = "" then id else id ^ "/" ^ rel in
    let suffix =
      if a.Answer.dropped_predicates = 0 then "  exact"
      else Printf.sprintf "  (%d predicates relaxed)" a.Answer.dropped_predicates
    in
    Printf.sprintf "%s  ss=%.4f ks=%.4f%s" loc a.Answer.sscore a.Answer.kscore suffix
  in
  let b = Buffer.create 1024 in
  List.iter
    (fun algorithm ->
      List.iter
        (fun scheme ->
          List.iter
            (fun qs ->
              let falgo =
                match algorithm with
                | Corpus.DPO -> Flexpath.DPO
                | Corpus.SSO -> Flexpath.SSO
                | Corpus.Hybrid -> Flexpath.Hybrid
              in
              match Flexpath.run ~algorithm:falgo ~scheme env ~k:10 (parse_query qs) with
              | Error e -> Alcotest.failf "plain query %s failed: %s" qs (Error.to_string e)
              | Ok r ->
                List.iter
                  (fun (a : Answer.t) ->
                    Buffer.add_string b
                      (Printf.sprintf "%s|%s|%s|%d|%Lx|%Lx\n"
                         (Corpus.algorithm_to_string algorithm)
                         (Ranking.to_string scheme) (render a) a.Answer.node
                         (Int64.bits_of_float a.Answer.sscore)
                         (Int64.bits_of_float a.Answer.kscore)))
                  r.Flexpath.Common.answers)
            queries)
        schemes)
    algorithms;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Scatter-gather equivalence *)

let test_sharded_equals_plain () =
  let docs = bodies 10 500 in
  let fp_plain = plain_fingerprint docs in
  List.iter
    (fun shards ->
      with_corpus_paths ~shards (fun prefix ->
          let c = ok_exn "open" (Corpus.open_corpus ~shards ~prefix ()) in
          Fun.protect
            ~finally:(fun () -> Corpus.close c)
            (fun () ->
              fill c docs;
              check_string
                (Printf.sprintf "%d-shard == plain single-env" shards)
                fp_plain (corpus_fingerprint c))))
    [ 1; 4 ]

let test_parallel_scatter_equals_sequential () =
  (* The taskpool scatter (probe_domains > 0) must be answer-invisible:
     healthy merged results are byte-identical — float bits, ordering,
     tie-breaks — to the strictly sequential scatter over the same
     on-disk corpus.  The threshold-algorithm floor is shared across
     concurrent probes, so a stale floor may only reduce pruning. *)
  let docs = bodies 12 1100 in
  let shards = 4 in
  with_corpus_paths ~shards (fun prefix ->
      (* Persist once; both corpora then open the same on-disk state
         (a reopen reconstructs cross-shard arrival order, so comparing
         pre-restart against post-restart would conflate that with the
         scatter strategy under test). *)
      (let c = ok_exn "open to fill" (Corpus.open_corpus ~shards ~prefix ()) in
       Fun.protect ~finally:(fun () -> Corpus.close c) (fun () -> fill c docs));
      let fp_sequential =
        let c = ok_exn "open sequential" (Corpus.open_corpus ~shards ~prefix ()) in
        Fun.protect
          ~finally:(fun () -> Corpus.close c)
          (fun () ->
            check_int "sequential scatter" 1 (Corpus.probe_parallelism c);
            corpus_fingerprint c)
      in
      let c =
        ok_exn "open parallel" (Corpus.open_corpus ~probe_domains:3 ~shards ~prefix ())
      in
      Fun.protect
        ~finally:(fun () -> Corpus.close c)
        (fun () ->
          check_int "parallel scatter" (min 3 (shards - 1) + 1) (Corpus.probe_parallelism c);
          check_string "parallel scatter == sequential" fp_sequential (corpus_fingerprint c)))

let test_upsert_delete_equivalence () =
  (* Upserts move documents to the end of the global arrival order and
     deletes remove them — same as the unsharded corpus. *)
  let d1 = bodies 6 700 in
  with_corpus_paths ~shards:3 (fun prefix ->
      let c = ok_exn "open" (Corpus.open_corpus ~shards:3 ~prefix ()) in
      Fun.protect
        ~finally:(fun () -> Corpus.close c)
        (fun () ->
          fill c d1;
          let replacement = Xml.to_string (article 999) in
          ignore (ok_exn "upsert" (Corpus.ingest c ~id:"d2" replacement));
          ok_exn "delete" (Corpus.delete c ~id:"d4");
          let final =
            List.filter (fun (id, _) -> id <> "d2" && id <> "d4") d1 @ [ ("d2", replacement) ]
          in
          check_bool "arrival order" true (Corpus.ids c = List.map fst final);
          check_string "post-upsert/delete == plain" (plain_fingerprint final)
            (corpus_fingerprint c)))

let test_auto_ids_route_and_persist () =
  with_corpus_paths ~shards:4 (fun prefix ->
      let c = ok_exn "open" (Corpus.open_corpus ~shards:4 ~prefix ()) in
      let id1 = ok_exn "ingest" (Corpus.ingest c (Xml.to_string (article 1))) in
      let id2 = ok_exn "ingest" (Corpus.ingest c (Xml.to_string (article 2))) in
      check_string "first auto id" "doc-1" id1;
      check_string "second auto id" "doc-2" id2;
      check_int "routed shard" (Corpus.route ~shards:4 id1) (Corpus.shard_of_id c id1);
      Corpus.close c;
      (* Restart recovers both documents from the per-shard WALs and
         re-seeds the auto-id counter past them. *)
      let c = ok_exn "reopen" (Corpus.open_corpus ~shards:4 ~prefix ()) in
      Fun.protect
        ~finally:(fun () -> Corpus.close c)
        (fun () ->
          check_int "docs after restart" 2 (Corpus.doc_count c);
          let id3 = ok_exn "ingest" (Corpus.ingest c (Xml.to_string (article 3))) in
          check_string "auto id continues" "doc-3" id3))

(* The exact cutoff: K exact structural matches gathered from
   early-arrival documents let later-arrival shards be skipped, and
   the skip never changes the answer bytes. *)
let test_threshold_skip_exact () =
  let exact_doc = "<section><title>t</title></section>" in
  with_corpus_paths ~shards:2 (fun prefix ->
      let c = ok_exn "open" (Corpus.open_corpus ~shards:2 ~prefix ()) in
      Fun.protect
        ~finally:(fun () -> Corpus.close c)
        (fun () ->
          (* three early docs on shard 0, two late docs on shard 1 *)
          let on_shard s =
            let rec find i n acc =
              if n = 0 then List.rev acc
              else
                let id = Printf.sprintf "s%d-%d" s i in
                if Corpus.route ~shards:2 id = s then find (i + 1) (n - 1) (id :: acc)
                else find (i + 1) n acc
            in
            find 0 3 []
          in
          let early = on_shard 0 and late = List.filteri (fun i _ -> i < 2) (on_shard 1) in
          List.iter (fun id -> ignore (ok_exn "ingest" (Corpus.ingest c ~id exact_doc))) early;
          List.iter (fun id -> ignore (ok_exn "ingest" (Corpus.ingest c ~id exact_doc))) late;
          let q = parse_query "//section[./title]" in
          let r = ok_exn "query" (Corpus.query c ~k:3 q) in
          check_bool "complete" true (r.Corpus.completeness = Corpus.Complete);
          check_int "served counts skipped" 2 r.Corpus.served;
          let status_of ord =
            (List.find (fun rep -> rep.Corpus.r_ord = ord) r.Corpus.reports).Corpus.r_status
          in
          check_bool "shard 0 served" true (status_of 0 = Corpus.Served);
          check_bool "shard 1 skipped" true (status_of 1 = Corpus.Skipped);
          (* the three answers are the early-arrival documents *)
          check_bool "answers from early docs" true
            (List.for_all
               (fun (a : Corpus.answer) -> List.mem a.Corpus.a_doc early)
               r.Corpus.answers);
          check_int "k answers" 3 (List.length r.Corpus.answers)))

(* ------------------------------------------------------------------ *)
(* Chaos: shard loss *)

(* True per-answer scores over the full healthy corpus, for soundness
   checks: every answer the lost shard held must score at most the
   reported bound. *)
let true_scores corpus scheme qs =
  let r = ok_exn "healthy query" (Corpus.query corpus ~scheme ~use_cache:false ~k:50 (parse_query qs)) in
  List.map
    (fun (a : Corpus.answer) ->
      (a.Corpus.a_doc, Ranking.total scheme { sscore = a.Corpus.a_sscore; kscore = a.Corpus.a_kscore }))
    r.Corpus.answers

let check_partial_sound ~what ~lost_ord corpus r truth =
  let shards = Corpus.shard_count corpus in
  (match r.Corpus.completeness with
  | Corpus.Partial { reason = "shard-loss"; score_bound } ->
    (* sound: no answer living on the lost shard scores above the bound *)
    List.iter
      (fun (doc, total) ->
        if Corpus.shard_of_id corpus doc = lost_ord && total > score_bound +. 1e-9 then
          Alcotest.failf "%s: bound %.6f unsound, %s on lost shard scores %.6f" what score_bound
            doc total)
      truth
  | Corpus.Partial { reason; _ } -> Alcotest.failf "%s: unexpected partial reason %s" what reason
  | Corpus.Complete -> Alcotest.failf "%s: expected PARTIAL" what);
  check_int (what ^ ": served") (shards - 1) r.Corpus.served;
  check_int (what ^ ": total") shards r.Corpus.total;
  (* every returned answer comes from a surviving shard *)
  List.iter
    (fun (a : Corpus.answer) ->
      if Corpus.shard_of_id corpus a.Corpus.a_doc = lost_ord then
        Alcotest.failf "%s: answer %s from lost shard" what a.Corpus.a_doc)
    r.Corpus.answers

let test_corrupt_shard_snapshot () =
  let docs = bodies 12 900 in
  let shards = 3 in
  with_corpus_paths ~shards (fun prefix ->
      let c = ok_exn "open" (Corpus.open_corpus ~shards ~prefix ()) in
      fill c docs;
      for i = 0 to shards - 1 do
        ok_exn "merge" (Corpus.merge c i)
      done;
      let truth = true_scores c Ranking.Structure_first (List.hd queries) in
      Corpus.close c;
      (* bit-flip shard 1's snapshot inside the primary document
         section: integrity checking must fail the load *)
      let victim = Printf.sprintf "%s.shard%d" prefix 1 in
      let good = read_file victim in
      let pos = min 100 (String.length good - 1) in
      let flipped =
        String.mapi (fun i ch -> if i = pos then Char.chr (Char.code ch lxor 0x40) else ch) good
      in
      write_file victim flipped;
      let c = ok_exn "reopen with corrupt shard" (Corpus.open_corpus ~shards ~prefix ()) in
      Fun.protect
        ~finally:(fun () -> Corpus.close c)
        (fun () ->
          let h = Corpus.health c in
          check_bool "shard 1 down" false h.(1).Corpus.h_live;
          check_bool "shard 0 live" true h.(0).Corpus.h_live;
          check_bool "load error recorded" true (h.(1).Corpus.h_last_error <> None);
          let r =
            ok_exn "query over degraded corpus"
              (Corpus.query c ~use_cache:false ~k:10 (parse_query (List.hd queries)))
          in
          check_partial_sound ~what:"corrupt shard" ~lost_ord:1 c r truth;
          (* surviving shards still accept writes at full goodput;
             writes routed to the dead shard are refused cleanly *)
          let rec pick_id ~on i =
            let id = Printf.sprintf "w%d" i in
            if Corpus.shard_of_id c id = 1 = on then id else pick_id ~on (i + 1)
          in
          ignore
            (ok_exn "ingest while degraded"
               (Corpus.ingest c ~id:(pick_id ~on:false 0) (Xml.to_string (article 77))));
          (match Corpus.ingest c ~id:(pick_id ~on:true 0) (Xml.to_string (article 78)) with
          | Error (Error.Io_error _) -> ()
          | Error e -> Alcotest.failf "unexpected refusal: %s" (Error.to_string e)
          | Ok _ -> Alcotest.fail "write to a down shard must be refused");
          (* repair the snapshot, RELOAD the one shard: COMPLETE again *)
          write_file victim good;
          ok_exn "reload" (Corpus.reload c 1);
          let r2 =
            ok_exn "query after reload"
              (Corpus.query c ~use_cache:false ~k:10 (parse_query (List.hd queries)))
          in
          check_bool "complete after reload" true (r2.Corpus.completeness = Corpus.Complete);
          check_int "all shards served" shards r2.Corpus.served))

let test_shard_lost_mid_query_and_quarantine () =
  let docs = bodies 12 1100 in
  let shards = 3 in
  with_corpus_paths ~shards (fun prefix ->
      let c = ok_exn "open" (Corpus.open_corpus ~shards ~prefix ()) in
      Fun.protect
        ~finally:(fun () ->
          Failpoint.reset ();
          Corpus.close c)
        (fun () ->
          fill c docs;
          let qs = List.nth queries 2 in
          let truth = true_scores c Ranking.Structure_first qs in
          (* the first probe of the scatter dies: shard 0 is lost for
             this query only *)
          (match Failpoint.activate_n "shard_probe" 1 with
          | Ok () -> ()
          | Error m -> Alcotest.fail m);
          let r = ok_exn "query with lost probe" (Corpus.query c ~use_cache:false ~k:10 (parse_query qs)) in
          check_partial_sound ~what:"probe loss" ~lost_ord:0 c r truth;
          let h = Corpus.health c in
          check_int "strike recorded" 1 h.(0).Corpus.h_strikes;
          check_bool "not yet quarantined" false h.(0).Corpus.h_quarantined;
          (* a healthy query clears the strike *)
          ignore (ok_exn "healthy query" (Corpus.query c ~use_cache:false ~k:10 (parse_query qs)));
          check_int "strikes cleared" 0 (Corpus.health c).(0).Corpus.h_strikes;
          (* three consecutive losses trip the quarantine *)
          for _ = 1 to 3 do
            (match Failpoint.activate_n "shard_probe" 1 with
            | Ok () -> ()
            | Error m -> Alcotest.fail m);
            ignore (ok_exn "lossy query" (Corpus.query c ~use_cache:false ~k:10 (parse_query qs)))
          done;
          let h = Corpus.health c in
          check_bool "quarantined" true h.(0).Corpus.h_quarantined;
          check_bool "quarantined shard not live" false h.(0).Corpus.h_live;
          (* quarantined shard contributes a bound, not an error — and
             no failpoint is armed anymore *)
          let r = ok_exn "query under quarantine" (Corpus.query c ~use_cache:false ~k:10 (parse_query qs)) in
          check_partial_sound ~what:"quarantine" ~lost_ord:0 c r truth;
          (* writes to the quarantined shard are refused *)
          (match Corpus.ingest c ~id:"s0-0" "<a/>" with
          | Error (Error.Io_error _) when Corpus.shard_of_id c "s0-0" = 0 -> ()
          | Error e -> Alcotest.failf "unexpected refusal: %s" (Error.to_string e)
          | Ok _ ->
            if Corpus.shard_of_id c "s0-0" = 0 then Alcotest.fail "write to quarantined shard");
          (* RELOAD restores the shard and the COMPLETE answer *)
          ok_exn "reload" (Corpus.reload c 0);
          let r2 = ok_exn "query after reload" (Corpus.query c ~use_cache:false ~k:10 (parse_query qs)) in
          check_bool "complete after reload" true (r2.Corpus.completeness = Corpus.Complete)))

let test_all_shards_down () =
  with_corpus_paths ~shards:2 (fun prefix ->
      (* both snapshots are garbage *)
      write_file (prefix ^ ".shard0") "not a snapshot";
      write_file (prefix ^ ".shard1") "not a snapshot either";
      let c = ok_exn "open" (Corpus.open_corpus ~shards:2 ~prefix ()) in
      Fun.protect
        ~finally:(fun () -> Corpus.close c)
        (fun () ->
          let r = ok_exn "query" (Corpus.query c ~k:5 (parse_query (List.hd queries))) in
          check_int "nothing served" 0 r.Corpus.served;
          check_bool "no answers" true (r.Corpus.answers = []);
          match r.Corpus.completeness with
          | Corpus.Partial { reason = "shard-loss"; score_bound } ->
            (* //article has no structural predicates, so the
               data-independent maximum is exactly 0 — still sound *)
            check_bool "sound bound" true (score_bound >= 0.)
          | _ -> Alcotest.fail "expected shard-loss PARTIAL"))

(* ------------------------------------------------------------------ *)
(* Budget and cache *)

let test_budget_partial_is_sound () =
  let docs = bodies 10 1300 in
  with_corpus_paths ~shards:2 (fun prefix ->
      let c = ok_exn "open" (Corpus.open_corpus ~shards:2 ~prefix ()) in
      Fun.protect
        ~finally:(fun () -> Corpus.close c)
        (fun () ->
          fill c docs;
          let qs = List.nth queries 1 in
          let full = ok_exn "full" (Corpus.query c ~use_cache:false ~k:10 (parse_query qs)) in
          let budget = Guard.budget ~tuple_budget:1 () in
          let r = ok_exn "tiny budget" (Corpus.query c ~budget ~use_cache:false ~k:10 (parse_query qs)) in
          match r.Corpus.completeness with
          | Corpus.Complete -> Alcotest.fail "expected budget PARTIAL"
          | Corpus.Partial { score_bound; _ } ->
            (* every full answer missing from the truncated result
               scores at most the bound *)
            let kept = List.map (fun a -> a.Corpus.a_node) r.Corpus.answers in
            List.iter
              (fun (a : Corpus.answer) ->
                if not (List.mem a.Corpus.a_node kept) then begin
                  let total =
                    Ranking.total Ranking.Structure_first
                      { sscore = a.Corpus.a_sscore; kscore = a.Corpus.a_kscore }
                  in
                  if total > score_bound +. 1e-9 then
                    Alcotest.failf "unsound budget bound %.6f < %.6f" score_bound total
                end)
              full.Corpus.answers))

let test_cache_scoped_by_generation_vector () =
  let docs = bodies 6 1500 in
  with_corpus_paths ~shards:3 (fun prefix ->
      let c = ok_exn "open" (Corpus.open_corpus ~shards:3 ~prefix ()) in
      Fun.protect
        ~finally:(fun () -> Corpus.close c)
        (fun () ->
          fill c docs;
          let q = parse_query "//section[./title]" in
          let r1 = ok_exn "q1" (Corpus.query c ~k:20 q) in
          let r2 = ok_exn "q2" (Corpus.query c ~k:20 q) in
          let hits_after_repeat = (Corpus.cache_counters c).Flexpath.Qcache.hits in
          check_bool "repeat hits the cache" true (hits_after_repeat > 0);
          check_bool "cached answer identical" true (r1 = r2);
          let v1 = Corpus.generation_vector c in
          (* a write to ONE shard must change the vector and miss *)
          ignore (ok_exn "ingest" (Corpus.ingest c (Xml.to_string (article 42))));
          let v2 = Corpus.generation_vector c in
          check_bool "generation vector changed" true (v1 <> v2);
          let r3 = ok_exn "q3" (Corpus.query c ~k:20 q) in
          check_bool "post-write result is fresh" true
            (List.length r3.Corpus.answers >= List.length r1.Corpus.answers)))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "corpus"
    [
      ( "equivalence",
        [
          Alcotest.test_case "sharded == plain single-env (1 and 4 shards)" `Slow
            test_sharded_equals_plain;
          Alcotest.test_case "parallel scatter == sequential scatter" `Slow
            test_parallel_scatter_equals_sequential;
          Alcotest.test_case "upsert/delete keeps equivalence" `Slow test_upsert_delete_equivalence;
          Alcotest.test_case "auto ids route and persist" `Quick test_auto_ids_route_and_persist;
          Alcotest.test_case "threshold-algorithm skip is exact" `Quick test_threshold_skip_exact;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "corrupt snapshot: PARTIAL then RELOAD" `Slow
            test_corrupt_shard_snapshot;
          Alcotest.test_case "probe loss, strikes, quarantine, RELOAD" `Slow
            test_shard_lost_mid_query_and_quarantine;
          Alcotest.test_case "all shards down" `Quick test_all_shards_down;
        ] );
      ( "budget+cache",
        [
          Alcotest.test_case "budget PARTIAL bound is sound" `Quick test_budget_partial_is_sound;
          Alcotest.test_case "cache scoped by generation vector" `Quick
            test_cache_scoped_by_generation_vector;
        ] );
    ]
