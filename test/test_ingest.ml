(* Live ingestion: WAL durability and merge equivalence.

   Acceptance tests of the ingest subsystem:
   - an incrementally grown corpus (Doc.append_trees + Index.extend +
     Stats.extend) answers queries identically — same nodes, same
     float bits — to an env rebuilt offline over the union corpus,
     across DPO/SSO/Hybrid and cached/uncached paths, including under
     random add/upsert/delete interleavings (QCheck);
   - the WAL corruption corpus: truncating the log at every byte and
     flipping a bit in every byte region (magic, record header, body,
     CRC) makes replay stop at the last valid record — never a resync,
     never an exception;
   - a store killed at any wal_*/merge_*/storage_* failpoint and
     reopened from disk recovers exactly the acknowledged document
     set. *)

module Xml = Xmldom.Xml
module Doc = Xmldom.Doc
module Ingest = Flexpath.Ingest
module Wal = Flexpath.Wal
module Env = Flexpath.Env
module Error = Flexpath.Error
module Failpoint = Flexpath.Failpoint
module Answer = Flexpath.Answer
module Qcache = Flexpath.Qcache

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let ok_exn what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s failed: %s" what (Error.to_string e)

let temp_name =
  let n = ref 0 in
  fun suffix ->
    incr n;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "flexpath_ingest_%d_%d%s" (Unix.getpid ()) !n suffix)

let write_file path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let remove_quiet path = try Sys.remove path with Sys_error _ -> ()

(* A store on fresh temp paths; [f] gets the paths so it can close and
   reopen to simulate restarts. *)
let with_store_paths f =
  let snapshot = temp_name ".env" in
  let wal = temp_name ".wal" in
  Fun.protect
    ~finally:(fun () ->
      remove_quiet snapshot;
      remove_quiet wal)
    (fun () -> f ~snapshot ~wal)

(* ------------------------------------------------------------------ *)
(* Fixture documents: small articles featuring the paper's keywords. *)

let article seed =
  let rng = Xmark.Prng.create seed in
  let archetype =
    Xmark.Prng.pick rng
      [|
        Xmark.Articles.Exact;
        Xmark.Articles.Title_keywords;
        Xmark.Articles.Algo_elsewhere;
        Xmark.Articles.No_algorithm;
        Xmark.Articles.Keywords_only;
        Xmark.Articles.Irrelevant;
      |]
  in
  Xmark.Articles.article rng archetype seed

let queries =
  [
    "//article[.contains(\"xml\")]";
    "//article[./section[./algorithm and ./paragraph[.contains(\"xml\" and \"streaming\")]]]";
    "//section[./title]";
  ]

(* Byte-exact fingerprint of query results over an env: node paths,
   exact float bits, across every algorithm, uncached and cached (the
   second cached run hits the answer tier). *)
let fingerprint env =
  let b = Buffer.create 256 in
  List.iter
    (fun algorithm ->
      let cache = Qcache.create () in
      List.iter
        (fun q ->
          List.iter
            (fun cache ->
              match Flexpath.top_k_xpath ?cache ~algorithm env ~k:10 q with
              | Error e -> Alcotest.failf "query %s failed: %s" q (Error.to_string e)
              | Ok answers ->
                List.iter
                  (fun (a : Answer.t) ->
                    Buffer.add_string b
                      (Printf.sprintf "%s|%s|%Lx|%Lx|%d\n"
                         (Flexpath.algorithm_to_string algorithm)
                         (Doc.path_to_root env.Env.doc a.node)
                         (Int64.bits_of_float a.sscore) (Int64.bits_of_float a.kscore)
                         a.dropped_predicates))
                  answers)
            [ None; Some cache; Some cache ])
        queries)
    Flexpath.all_algorithms;
  Buffer.contents b

let check_corpus_equal what fresh incr =
  check_bool (what ^ ": ids") true (Ingest.ids fresh = Ingest.ids incr);
  check_string
    (what ^ ": corpus tree")
    (Xml.to_string (Doc.to_tree (Ingest.env fresh).Env.doc))
    (Xml.to_string (Doc.to_tree (Ingest.env incr).Env.doc));
  check_string (what ^ ": query fingerprint") (fingerprint (Ingest.env fresh))
    (fingerprint (Ingest.env incr))

(* ------------------------------------------------------------------ *)
(* Merge equivalence. *)

let test_incremental_equals_rebuild () =
  let docs = List.init 6 (fun i -> (Printf.sprintf "d%d" i, article (100 + i))) in
  let incr =
    List.fold_left
      (fun corpus (id, tree) -> ok_exn "add" (Ingest.add corpus ~id tree))
      (ok_exn "empty" (Ingest.empty ()))
      docs
  in
  let fresh = ok_exn "of_docs" (Ingest.of_docs docs) in
  check_corpus_equal "incremental growth" fresh incr

(* The extended index is value-identical to a fresh one, not merely
   equivalent on sampled queries: token counts, posting lists and every
   element's subtree token range agree. *)
let test_extend_internals () =
  let module Index = Fulltext.Index in
  let docs = List.init 4 (fun i -> (Printf.sprintf "d%d" i, article (200 + i))) in
  let incr =
    List.fold_left
      (fun corpus (id, tree) -> ok_exn "add" (Ingest.add corpus ~id tree))
      (ok_exn "empty" (Ingest.empty ()))
      docs
  in
  let fresh = ok_exn "of_docs" (Ingest.of_docs docs) in
  let fi = (Ingest.env fresh).Env.index and ii = (Ingest.env incr).Env.index in
  check_int "n_tokens" (Index.n_tokens fi) (Index.n_tokens ii);
  check_int "distinct terms" (Index.distinct_terms fi) (Index.distinct_terms ii);
  List.iter
    (fun w ->
      check_bool ("postings for " ^ w) true (Index.term_positions fi w = Index.term_positions ii w))
    [ "xml"; "streaming"; "algorithm"; "the"; "absent-term" ];
  let fd = (Ingest.env fresh).Env.doc in
  check_int "doc size" (Doc.size fd) (Doc.size (Ingest.env incr).Env.doc);
  for e = 0 to Doc.size fd - 1 do
    if Index.tok_range fi e <> Index.tok_range ii e then
      Alcotest.failf "tok_range differs at element %d" e
  done;
  let fs = (Ingest.env fresh).Env.stats and is_ = (Ingest.env incr).Env.stats in
  List.iter
    (fun t ->
      check_int ("#(" ^ t ^ ")") (Stats.count_tag fs t) (Stats.count_tag is_ t);
      List.iter
        (fun t2 ->
          check_int
            (Printf.sprintf "#pc(%s,%s)" t t2)
            (Stats.count_pc fs t t2) (Stats.count_pc is_ t t2);
          check_int
            (Printf.sprintf "#ad(%s,%s)" t t2)
            (Stats.count_ad fs t t2) (Stats.count_ad is_ t t2))
        [ "article"; "section"; "paragraph"; "title" ])
    [ "fx-corpus"; "fx-doc"; "article"; "section"; "paragraph"; "algorithm" ]

let test_upsert_delete_equivalence () =
  let t1 = article 301 and t2 = article 302 and t3 = article 303 and t4 = article 304 in
  let corpus = ok_exn "empty" (Ingest.empty ()) in
  let corpus = ok_exn "add a" (Ingest.add corpus ~id:"a" t1) in
  let corpus = ok_exn "add b" (Ingest.add corpus ~id:"b" t2) in
  let corpus = ok_exn "upsert a" (Ingest.add corpus ~id:"a" t3) in
  let corpus = ok_exn "delete b" (Ingest.remove corpus ~id:"b") in
  let corpus = ok_exn "add c" (Ingest.add corpus ~id:"c" t4) in
  (* Upsert moves the document to the end, delete removes it. *)
  let fresh = ok_exn "of_docs" (Ingest.of_docs [ ("a", t3); ("c", t4) ]) in
  check_corpus_equal "upsert/delete" fresh corpus

(* Random op interleavings against an assoc-list model. *)
let prop_random_ops =
  let open QCheck2.Gen in
  let gen_ops = list_size (1 -- 10) (pair (0 -- 3) (pair bool (0 -- 1000))) in
  QCheck2.Test.make ~name:"random add/upsert/delete == offline rebuild" ~count:12 gen_ops
    (fun ops ->
      let ids = [| "a"; "b"; "c"; "d" |] in
      let corpus = ref (ok_exn "empty" (Ingest.empty ())) in
      let model = ref [] in
      List.iter
        (fun (i, (is_delete, seed)) ->
          let id = ids.(i) in
          if is_delete then begin
            if List.mem_assoc id !model then begin
              corpus := ok_exn "remove" (Ingest.remove !corpus ~id);
              model := List.filter (fun (x, _) -> x <> id) !model
            end
          end
          else begin
            let tree = article seed in
            corpus := ok_exn "add" (Ingest.add !corpus ~id tree);
            model := List.filter (fun (x, _) -> x <> id) !model @ [ (id, tree) ]
          end)
        ops;
      let fresh = ok_exn "of_docs" (Ingest.of_docs !model) in
      Ingest.ids fresh = Ingest.ids !corpus
      && fingerprint (Ingest.env fresh) = fingerprint (Ingest.env !corpus))

(* ------------------------------------------------------------------ *)
(* WAL codec and corruption corpus. *)

let sample_records =
  [
    Wal.Add { id = "a"; xml = "<article><title>XML streaming</title></article>" };
    Wal.Delete { id = "a" };
    Wal.Add { id = "doc-0"; xml = "<r><p>hello world</p></r>" };
    Wal.Add { id = "b.2_x"; xml = "<r/>" };
  ]

let image records = Wal.magic ^ String.concat "" (List.map Wal.encode records)

let test_wal_codec_roundtrip () =
  let replay =
    match Wal.decode (image sample_records) with
    | Ok r -> r
    | Error c -> Alcotest.failf "decode failed: %s" (Error.corruption_to_string c)
  in
  check_int "record count" (List.length sample_records) (List.length replay.Wal.records);
  check_bool "records roundtrip" true (replay.Wal.records = sample_records);
  check_int "no dropped bytes" 0 replay.Wal.dropped_bytes;
  check_int "valid bytes" (String.length (image sample_records)) replay.Wal.valid_bytes

(* Number of [sample_records] whose encoding ends within the first
   [len] bytes of the image. *)
let records_within len =
  let pos = ref (String.length Wal.magic) in
  let count = ref 0 in
  let stopped = ref false in
  List.iter
    (fun r ->
      let e = !pos + String.length (Wal.encode r) in
      if (not !stopped) && e <= len then begin
        incr count;
        pos := e
      end
      else stopped := true)
    sample_records;
  !count

let test_wal_truncation_every_byte () =
  let img = image sample_records in
  for len = 0 to String.length img - 1 do
    let s = String.sub img 0 len in
    match Wal.decode s with
    | Error c ->
      Alcotest.failf "truncation at %d: unexpected error %s" len (Error.corruption_to_string c)
    | Ok replay ->
      let expected = records_within len in
      if List.length replay.Wal.records <> expected then
        Alcotest.failf "truncation at %d: replayed %d records, expected %d" len
          (List.length replay.Wal.records)
          expected
  done

let test_wal_bitflip_every_byte () =
  let img = image sample_records in
  let magic_len = String.length Wal.magic in
  for p = 0 to String.length img - 1 do
    let bit = 1 lsl (p mod 8) in
    let flipped =
      String.mapi (fun i c -> if i = p then Char.chr (Char.code c lxor bit) else c) img
    in
    match Wal.decode flipped with
    | Error Error.Bad_magic when p < magic_len -> ()
    | Error c -> Alcotest.failf "flip at %d: unexpected error %s" p (Error.corruption_to_string c)
    | Ok _ when p < magic_len -> Alcotest.failf "flip at %d: damaged magic accepted" p
    | Ok replay ->
      (* The flip lands in some record; every record before it must
         replay, the damaged one and everything after must not. *)
      let expected = records_within p in
      if List.length replay.Wal.records <> expected then
        Alcotest.failf "flip at %d: replayed %d records, expected %d" p
          (List.length replay.Wal.records)
          expected
  done

(* A truncated-on-disk log replays the surviving prefix and the store
   serves exactly those documents. *)
let test_wal_truncated_store_recovers_prefix () =
  let img = image sample_records in
  (* After replaying all four records the corpus is [doc-0; b.2_x] with
     "a" deleted; check a few cut points with their expected id sets. *)
  let boundaries =
    let pos = ref (String.length Wal.magic) in
    List.map
      (fun r ->
        pos := !pos + String.length (Wal.encode r);
        !pos)
      sample_records
  in
  let expected_ids_at cut =
    match List.length (List.filter (fun b -> b <= cut) boundaries) with
    | 0 -> []
    | 1 -> [ "a" ]
    | 2 -> []
    | 3 -> [ "doc-0" ]
    | _ -> [ "doc-0"; "b.2_x" ]
  in
  List.iter
    (fun cut ->
      with_store_paths (fun ~snapshot ~wal ->
          write_file wal (String.sub img 0 cut);
          let store = ok_exn "open_store" (Ingest.open_store ~snapshot ~wal ()) in
          let ids = Ingest.store_ids store in
          Ingest.close store;
          if ids <> expected_ids_at cut then
            Alcotest.failf "cut at %d: recovered ids [%s], expected [%s]" cut
              (String.concat "; " ids)
              (String.concat "; " (expected_ids_at cut))))
    (List.filter
       (fun cut -> cut >= 0 && cut <= String.length img)
       (0 :: 5 :: List.concat_map (fun b -> [ b - 1; b; b + 3 ]) boundaries))

(* ------------------------------------------------------------------ *)
(* Store lifecycle: replay, merge, crash-at-failpoint restarts. *)

let test_store_replay_roundtrip () =
  with_store_paths (fun ~snapshot ~wal ->
      let store = ok_exn "open" (Ingest.open_store ~snapshot ~wal ()) in
      let id0 = ok_exn "ingest" (Ingest.ingest store (Xml.to_string (article 400))) in
      let id1 = ok_exn "ingest" (Ingest.ingest store (Xml.to_string (article 401))) in
      let _id2 = ok_exn "ingest" (Ingest.ingest store ~id:"named" (Xml.to_string (article 402))) in
      check_string "auto id 0" "doc-0" id0;
      check_string "auto id 1" "doc-1" id1;
      ok_exn "delete" (Ingest.delete store ~id:id1);
      check_int "unmerged" 4 (Ingest.unmerged_records store);
      check_bool "staleness > 0" true (Ingest.staleness_ms store >= 0.0);
      let ids = Ingest.store_ids store in
      let fp = fingerprint (Ingest.store_env store) in
      Ingest.close store;
      (* Restart without any merge: everything comes from the WAL. *)
      let store = ok_exn "reopen" (Ingest.open_store ~snapshot ~wal ()) in
      check_int "replayed" 4 (Ingest.replayed_records store);
      check_bool "ids survive" true (Ingest.store_ids store = ids);
      check_string "results survive" fp (fingerprint (Ingest.store_env store));
      (* Auto ids derive from the live corpus: doc-1 was deleted, so
         its slot is reusable, and a restart assigns the same id a
         continuous run would. *)
      let id3 = ok_exn "ingest" (Ingest.ingest store (Xml.to_string (article 403))) in
      check_string "auto id continues" "doc-1" id3;
      Ingest.close store)

let test_store_merge_truncates_wal () =
  with_store_paths (fun ~snapshot ~wal ->
      let store = ok_exn "open" (Ingest.open_store ~snapshot ~wal ()) in
      let _ = ok_exn "ingest" (Ingest.ingest store (Xml.to_string (article 500))) in
      let _ = ok_exn "ingest" (Ingest.ingest store (Xml.to_string (article 501))) in
      let fp = fingerprint (Ingest.store_env store) in
      ok_exn "merge" (Ingest.merge store);
      check_int "nothing unmerged" 0 (Ingest.unmerged_records store);
      check_bool "staleness reset" true (Ingest.staleness_ms store = 0.0);
      check_int "wal reset to magic" (String.length Wal.magic) (Ingest.wal_bytes store);
      Ingest.close store;
      let store = ok_exn "reopen" (Ingest.open_store ~snapshot ~wal ()) in
      check_int "no replay after merge" 0 (Ingest.replayed_records store);
      check_string "results survive merge" fp (fingerprint (Ingest.store_env store));
      Ingest.close store)

(* Crash simulation: arm a failpoint, drive the store into it, then
   reopen from disk and verify the recovered corpus is exactly the
   acked set. *)
let test_kill_at_every_failpoint () =
  with_store_paths (fun ~snapshot ~wal ->
      let store = ref (ok_exn "open" (Ingest.open_store ~snapshot ~wal ())) in
      let acked = ref [] in
      let ingest_ok seed =
        let id = ok_exn "ingest" (Ingest.ingest !store (Xml.to_string (article seed))) in
        acked := !acked @ [ (id, article seed) ]
      in
      let restart () =
        Ingest.close !store;
        store := ok_exn "restart" (Ingest.open_store ~snapshot ~wal ());
        let fresh = ok_exn "of_docs" (Ingest.of_docs !acked) in
        check_bool "recovered = acked" true (Ingest.store_ids !store = List.map fst !acked);
        check_string "recovered results = acked results" (fingerprint (Ingest.env fresh))
          (fingerprint (Ingest.store_env !store))
      in
      ingest_ok 600;
      ingest_ok 601;
      (* wal_append: fails before any byte is written. *)
      Result.get_ok (Failpoint.activate_n "wal_append" 1);
      (match Ingest.ingest !store (Xml.to_string (article 602)) with
      | Error (Error.Fault "wal_append") -> ()
      | Ok _ | Error _ -> Alcotest.fail "wal_append did not inject");
      restart ();
      (* wal_fsync: fails after the write; the partial record must be
         rolled back so the unacked document never reappears. *)
      Result.get_ok (Failpoint.activate_n "wal_fsync" 1);
      (match Ingest.ingest !store (Xml.to_string (article 603)) with
      | Error (Error.Fault "wal_fsync") -> ()
      | Ok _ | Error _ -> Alcotest.fail "wal_fsync did not inject");
      restart ();
      ingest_ok 604;
      (* storage_rename: the merge's snapshot never publishes; the WAL
         still covers everything. *)
      Result.get_ok (Failpoint.activate_n "storage_rename" 1);
      (match Ingest.merge !store with
      | Error (Error.Fault "storage_rename") -> ()
      | Ok () | Error _ -> Alcotest.fail "storage_rename did not inject");
      restart ();
      check_bool "wal survived failed merge" true (Ingest.replayed_records !store > 0);
      (* merge_publish: snapshot renamed, WAL not yet truncated — the
         crash window where replay must be idempotent over the merged
         snapshot. *)
      Result.get_ok (Failpoint.activate_n "merge_publish" 1);
      (match Ingest.merge !store with
      | exception Failpoint.Injected "merge_publish" -> ()
      | Ok () | Error _ -> Alcotest.fail "merge_publish did not inject");
      restart ();
      check_bool "wal replayed over snapshot" true (Ingest.replayed_records !store > 0);
      (* A clean merge after all that chaos converges to snapshot-only. *)
      ok_exn "merge" (Ingest.merge !store);
      restart ();
      check_int "wal empty after clean merge" 0 (Ingest.replayed_records !store);
      Ingest.close !store;
      Failpoint.reset ())

let test_budget_and_validation () =
  with_store_paths (fun ~snapshot ~wal ->
      let limits = { Ingest.max_bytes = 200; max_elems = 5 } in
      let store = ok_exn "open" (Ingest.open_store ~limits ~snapshot ~wal ()) in
      (match Ingest.ingest store (String.make 201 'x') with
      | Error (Error.Capacity { what = "ingest document bytes"; _ }) -> ()
      | Ok _ | Error _ -> Alcotest.fail "oversized bytes accepted");
      (match Ingest.ingest store "<a><b/><b/><b/><b/><b/></a>" with
      | Error (Error.Capacity { what = "ingest document elements"; _ }) -> ()
      | Ok _ | Error _ -> Alcotest.fail "oversized element count accepted");
      (match Ingest.ingest store "<a><unclosed></a>" with
      | Error (Error.Xml_error _) -> ()
      | Ok _ | Error _ -> Alcotest.fail "malformed XML accepted");
      (match Ingest.ingest store ~id:"bad id!" "<a/>" with
      | Error (Error.Config_error { what = "document id"; _ }) -> ()
      | Ok _ | Error _ -> Alcotest.fail "invalid id accepted");
      (match Ingest.delete store ~id:"absent" with
      | Error (Error.Config_error _) -> ()
      | Ok _ | Error _ -> Alcotest.fail "delete of unknown id accepted");
      (* Nothing above was acked; the log must still be pristine. *)
      check_int "wal still empty" (String.length Wal.magic) (Ingest.wal_bytes store);
      let id = ok_exn "ingest" (Ingest.ingest store "<a><b>hi</b></a>") in
      check_string "auto id" "doc-0" id;
      Ingest.close store)

(* A foreign file where the WAL should be is an error, not a clobber. *)
let test_wal_refuses_foreign_file () =
  with_store_paths (fun ~snapshot ~wal ->
      write_file wal "this is not a WAL at all";
      (match Ingest.open_store ~snapshot ~wal () with
      | Error (Error.Snapshot_error { corruption = Error.Bad_magic; _ }) -> ()
      | Ok store ->
        Ingest.close store;
        Alcotest.fail "foreign file accepted as WAL"
      | Error e -> Alcotest.failf "unexpected error: %s" (Error.to_string e));
      check_string "foreign file untouched" "this is not a WAL at all" (read_file wal))

let () =
  Alcotest.run "ingest"
    [
      ( "equivalence",
        [
          Alcotest.test_case "incremental growth == offline rebuild" `Quick
            test_incremental_equals_rebuild;
          Alcotest.test_case "extended index/stats internals identical" `Quick
            test_extend_internals;
          Alcotest.test_case "upsert and delete == offline rebuild" `Quick
            test_upsert_delete_equivalence;
          QCheck_alcotest.to_alcotest prop_random_ops;
        ] );
      ( "wal",
        [
          Alcotest.test_case "codec roundtrip" `Quick test_wal_codec_roundtrip;
          Alcotest.test_case "truncation at every byte" `Quick test_wal_truncation_every_byte;
          Alcotest.test_case "bit flip at every byte" `Quick test_wal_bitflip_every_byte;
          Alcotest.test_case "truncated log: store serves acked prefix" `Quick
            test_wal_truncated_store_recovers_prefix;
          Alcotest.test_case "foreign file refused" `Quick test_wal_refuses_foreign_file;
        ] );
      ( "store",
        [
          Alcotest.test_case "replay roundtrip" `Quick test_store_replay_roundtrip;
          Alcotest.test_case "merge truncates wal" `Quick test_store_merge_truncates_wal;
          Alcotest.test_case "kill at every failpoint, restart recovers acked set" `Quick
            test_kill_at_every_failpoint;
          Alcotest.test_case "parse budget and id validation" `Quick test_budget_and_validation;
        ] );
    ]
