(* The load generator and its persisted artifact (DESIGN.md §4j):

   - a real open-loop run against an in-process server completes, its
     counters add up (sent = completed + dropped) and percentiles are
     ordered;
   - the emitted BENCH_serve.json round-trips through the JSON
     emitter/parser and passes the schema gate [bench check] enforces;
   - the gate actually rejects: a missing percentile key, an empty
     scales array and malformed JSON all fail with a pointed error;
   - the JSON module itself round-trips escapes and numbers. *)

module Loadgen = Flexpath_loadgen.Loadgen
module Json = Flexpath_loadgen.Json
module Server = Flexpath_server.Server
module Env = Flexpath.Env
module Error = Flexpath.Error

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let ok_exn what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s failed: %s" what (Error.to_string e)

let with_server cfg f =
  let env = Env.make (Xmark.Articles.doc ~seed:7 ~count:20 ()) in
  let srv = ok_exn "create" (Server.create cfg ~env) in
  let d = Domain.spawn (fun () -> Server.serve srv) in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      Domain.join d)
    (fun () -> f srv)

(* ------------------------------------------------------------------ *)

let tiny_workload =
  {
    Loadgen.default_workload with
    rate = 80.0;
    duration_s = 1.0;
    warmup_s = 0.3;
    ping_fraction = 0.3;
  }

let test_run_and_artifact () =
  with_server { Server.default_config with port = 0; workers = 2 } (fun srv ->
      let port = Server.port srv in
      let results =
        List.map
          (fun connections ->
            match Loadgen.run ~host:"127.0.0.1" ~port ~connections tiny_workload with
            | Ok r -> r
            | Error msg -> Alcotest.failf "loadgen run (%d conns): %s" connections msg)
          [ 2; 8 ]
      in
      List.iter
        (fun (r : Loadgen.result) ->
          check_bool "some requests measured" true (r.sent > 0);
          check_int "conservation: sent = completed + dropped" r.sent (r.completed + r.dropped);
          check_int "samples = ok + partial" r.samples (r.ok + r.partial);
          check_bool "mostly served" true (r.ok > 0);
          check_bool "percentiles ordered" true
            (r.p50_ms <= r.p90_ms && r.p90_ms <= r.p99_ms && r.p99_ms <= r.p999_ms
           && r.p999_ms <= r.max_ms))
        results;
      (* The artifact round-trips and passes the gate. *)
      let report =
        Loadgen.report
          ~config:[ ("mode", Json.Str "test"); ("rate_rps", Json.Num tiny_workload.Loadgen.rate) ]
          ~results
      in
      let text = Json.to_string report in
      let parsed =
        match Json.parse text with
        | Ok v -> v
        | Error msg -> Alcotest.failf "emitted artifact does not parse: %s" msg
      in
      (match Loadgen.check_report parsed with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "emitted artifact fails its own gate: %s" msg);
      (* Required keys, spelled out. *)
      let scales = Json.to_list (Option.get (Json.member "scales" parsed)) in
      check_int "one scale entry per run" 2 (List.length scales);
      List.iter
        (fun entry ->
          let lat = Option.get (Json.member "latency_ms" entry) in
          List.iter
            (fun key ->
              check_bool (key ^ " present and numeric") true
                (Option.bind (Json.member key lat) Json.to_float <> None))
            [ "p50"; "p90"; "p99"; "p999" ];
          check_bool "goodput numeric" true
            (Option.bind (Json.member "goodput_rps" entry) Json.to_float <> None))
        scales;
      check_bool "summary has baseline ratio" true
        (Option.bind (Json.member "summary" parsed) (Json.member "top_p99_over_baseline") <> None))

(* ------------------------------------------------------------------ *)

let minimal_valid =
  Json.Obj
    [
      ("schema_version", Json.Num 1.0);
      ( "scales",
        Json.List
          [
            Json.Obj
              [
                ("connections", Json.Num 8.0);
                ("goodput_rps", Json.Num 100.0);
                ( "latency_ms",
                  Json.Obj
                    [ ("p50", Json.Num 1.0); ("p99", Json.Num 2.0); ("p999", Json.Num 3.0) ] );
              ];
          ] );
    ]

let expect_reject what json affix =
  match Loadgen.check_report json with
  | Ok () -> Alcotest.failf "%s was accepted" what
  | Error msg ->
    check_bool
      (Printf.sprintf "%s error mentions %s (got %S)" what affix msg)
      true
      (let n = String.length affix and m = String.length msg in
       let rec go i = i + n <= m && (String.sub msg i n = affix || go (i + 1)) in
       n = 0 || go 0)

let test_schema_gate () =
  (match Loadgen.check_report minimal_valid with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "minimal valid artifact rejected: %s" msg);
  expect_reject "empty scales" (Json.Obj [ ("schema_version", Json.Num 1.0); ("scales", Json.List []) ])
    "non-empty";
  expect_reject "missing schema_version" (Json.Obj [ ("scales", Json.List [ Json.Obj [] ]) ])
    "schema_version";
  (let dropped_p999 =
     Json.Obj
       [
         ("schema_version", Json.Num 1.0);
         ( "scales",
           Json.List
             [
               Json.Obj
                 [
                   ("connections", Json.Num 8.0);
                   ("goodput_rps", Json.Num 100.0);
                   ("latency_ms", Json.Obj [ ("p50", Json.Num 1.0); ("p99", Json.Num 2.0) ]);
                 ];
             ] );
       ]
   in
   expect_reject "missing p999" dropped_p999 "p999");
  match Json.parse "{\"scales\": [" with
  | Ok _ -> Alcotest.fail "malformed JSON parsed"
  | Error msg -> check_bool "parse error carries offset" true (msg <> "")

(* The gate dispatches on the "bench" tag: twig artifacts carry a
   series of per-query binary/holistic timings instead of scales. *)
let twig_entry ?(drop = "") name =
  Json.Obj
    (List.filter
       (fun (k, _) -> k <> drop)
       [
         ("query", Json.Str name);
         ("binary_ms", Json.Num 10.0);
         ("holistic_ms", Json.Num 4.0);
         ("speedup", Json.Num 2.5);
       ])

let twig_artifact entries =
  Json.Obj
    [ ("schema_version", Json.Num 1.0); ("bench", Json.Str "twig"); ("series", Json.List entries) ]

let test_schema_gate_twig () =
  (match Loadgen.check_report (twig_artifact [ twig_entry "Q1"; twig_entry "Q2" ]) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "valid twig artifact rejected: %s" msg);
  expect_reject "empty series" (twig_artifact []) "non-empty";
  expect_reject "missing speedup" (twig_artifact [ twig_entry ~drop:"speedup" "Q1" ]) "speedup";
  expect_reject "missing query label" (twig_artifact [ twig_entry ~drop:"query" "Q1" ]) "query";
  (* a twig tag does not exempt an artifact from the serve rules *)
  expect_reject "twig artifact without series"
    (Json.Obj [ ("schema_version", Json.Num 1.0); ("bench", Json.Str "twig") ])
    "series"

(* Replica artifacts encode the §4l failover guarantee in the schema:
   the replica-lost pass must report exactly zero PARTIAL answers. *)
let replica_artifact ?(drop = "") ?(lost_partials = 0.0) () =
  let pass partials =
    Json.Obj
      [
        ("p50_ms", Json.Num 0.3);
        ("p99_ms", Json.Num 4.0);
        ("partials", Json.Num partials);
        ("failovers", Json.Num 60.0);
      ]
  in
  Json.Obj
    (List.filter
       (fun (k, _) -> k <> drop)
       [
         ("schema_version", Json.Num 1.0);
         ("bench", Json.Str "replica");
         ("query", Json.Obj [ ("healthy", pass 0.0); ("replica_lost", pass lost_partials) ]);
         ( "ingest",
           Json.Obj
             [ ("sync_docs_per_s", Json.Num 1300.0); ("async_docs_per_s", Json.Num 1400.0) ] );
         ("catchup", Json.Obj [ ("records_behind", Json.Num 20.0); ("ms", Json.Num 11.0) ]);
       ])

let test_schema_gate_replica () =
  (match Loadgen.check_report (replica_artifact ()) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "valid replica artifact rejected: %s" msg);
  (* one lost replica leaking a PARTIAL is a broken failover, not a datapoint *)
  expect_reject "nonzero lost partials" (replica_artifact ~lost_partials:3.0 ()) "partials";
  expect_reject "missing query passes" (replica_artifact ~drop:"query" ()) "query";
  expect_reject "missing ingest rates" (replica_artifact ~drop:"ingest" ()) "ingest";
  expect_reject "missing catchup" (replica_artifact ~drop:"catchup" ()) "catchup"

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("s", Json.Str "a\"b\\c\nd\te\r<>&");
        ("n", Json.Num 1234.5678);
        ("i", Json.Num 42.0);
        ("neg", Json.Num (-0.25));
        ("b", Json.Bool true);
        ("nil", Json.Null);
        ("l", Json.List [ Json.Num 1.0; Json.Str ""; Json.Obj [] ]);
      ]
  in
  (* Pretty and compact renderings both round-trip structurally. *)
  List.iter
    (fun indent ->
      match Json.parse (Json.to_string ~indent v) with
      | Ok v' -> check_bool (Printf.sprintf "round-trip indent=%d" indent) true (v = v')
      | Error msg -> Alcotest.failf "round-trip indent=%d: %s" indent msg)
    [ 0; 2 ];
  (* Escapes parse back to the bytes they encode. *)
  (match Json.parse "\"a\\u0041\\n\\\"\"" with
  | Ok (Json.Str s) -> check_string "escape decoding" "aA\n\"" s
  | Ok _ | Error _ -> Alcotest.fail "escape string did not parse");
  match Json.parse "[1, 2.5, -3e2, true, false, null]" with
  | Ok (Json.List [ Json.Num 1.0; Json.Num 2.5; Json.Num -300.0; Json.Bool true; Json.Bool false; Json.Null ])
    -> ()
  | Ok other -> Alcotest.failf "number array mis-parsed: %s" (Json.to_string ~indent:0 other)
  | Error msg -> Alcotest.failf "number array: %s" msg

let () =
  Alcotest.run "loadgen"
    [
      ( "artifact",
        [
          Alcotest.test_case "open-loop run emits a valid artifact" `Quick test_run_and_artifact;
          Alcotest.test_case "schema gate accepts and rejects" `Quick test_schema_gate;
          Alcotest.test_case "schema gate: twig artifacts" `Quick test_schema_gate_twig;
          Alcotest.test_case "schema gate: replica artifacts" `Quick test_schema_gate_replica;
        ] );
      ("json", [ Alcotest.test_case "emit/parse round-trip" `Quick test_json_roundtrip ]);
    ]
