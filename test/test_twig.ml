(* Differential tests for the holistic twig operator (DESIGN.md §4k).

   The claim under test: [Joins.Exec.run ~executor:Binary] and the
   holistic twig operator ([Auto]/[Holistic] on conjunctive plans)
   produce byte-identical results — same targets, same float bits,
   same satisfied/failed predicate sets — at every level of the stack:
   the raw executor, the three top-K algorithms under every ranking
   scheme, the governed (budget-truncated) paths that are
   executor-deterministic, armed failpoints, and the sharded Corpus
   scatter-gather.  Tuple budgets and deadlines are deliberately out
   of scope: their truncation points legitimately differ per physical
   operator (the answer cache keys on the executor for exactly this
   reason). *)

module Xml = Xmldom.Xml
module Doc = Xmldom.Doc
module Ftexp = Fulltext.Ftexp
module Index = Fulltext.Index
module Query = Tpq.Query
module Xpath = Tpq.Xpath
module Op = Relax.Op
module Penalty = Relax.Penalty
module Encoded = Joins.Encoded
module Exec = Joins.Exec
module Twig = Joins.Twig
module Env = Flexpath.Env
module Ranking = Flexpath.Ranking
module Answer = Flexpath.Answer
module Common = Flexpath.Common
module Guard = Flexpath.Guard
module Error = Flexpath.Error
module Failpoint = Flexpath.Failpoint
module Corpus = Flexpath.Corpus

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let kw = Ftexp.(Term "xml" &&& Term "streaming")

let q1 () =
  Xpath.parse_exn
    "//article[./section[./algorithm and ./paragraph[.contains(\"XML\" and \"streaming\")]]]"

let parse s =
  match Xpath.parse s with
  | Ok q -> q
  | Error { Xpath.offset; message } -> Alcotest.failf "parse %s: %d: %s" s offset message

(* ------------------------------------------------------------------ *)
(* Executor level: raw [Exec.run] answers, exact and relaxed encodings *)

let make_env d =
  let idx = Index.build d in
  let st = Stats.build d in
  Stats.set_index st idx;
  (d, idx, st)

let exec_env d idx st q = { Exec.doc = d; index = idx; penalty = Penalty.make st Penalty.uniform q }

(* Everything executor-independent in an answer.  [bindings] is
   excluded by contract: the holistic fast path lists only the
   distinguished variable (no embedding witness). *)
let answer_fingerprint (a : Exec.answer) =
  Printf.sprintf "%d|%Lx|%Lx|[%s]|[%s]" a.Exec.target
    (Int64.bits_of_float a.Exec.sscore)
    (Int64.bits_of_float a.Exec.kscore)
    (String.concat ";" (List.map Tpq.Pred.to_string a.Exec.satisfied))
    (String.concat ";" (List.map Tpq.Pred.to_string a.Exec.failed))

let sorted_fingerprints answers = List.sort compare (List.map answer_fingerprint answers)

let op_sets =
  [
    [];
    [ Op.Axis_generalization 2 ];
    [ Op.Contains_promotion (4, kw) ];
    [ Op.Subtree_promotion 3 ];
    [ Op.Contains_promotion (4, kw); Op.Subtree_promotion 3 ];
    (* leaf deletions make the plan non-conjunctive: the holistic
       request must fall back, still byte-identical *)
    [ Op.Contains_promotion (4, kw); Op.Leaf_deletion 3 ];
    [ Op.Contains_promotion (4, kw); Op.Leaf_deletion 3; Op.Leaf_deletion 4 ];
  ]

let strategies k =
  [
    ("exact", Exec.exact_strategy);
    ("sso", { Exec.sort_on_score = true; bucketize = false; prune_k = Some k; prune_slack = 0.0 });
    ("hybrid", { Exec.sort_on_score = false; bucketize = true; prune_k = Some k; prune_slack = 0.0 });
  ]

let test_exec_differential () =
  let d, idx, st = make_env (Xmark.Articles.doc ~seed:21 ~count:50 ()) in
  let q = q1 () in
  let env = exec_env d idx st q in
  List.iter
    (fun ops ->
      let enc = Encoded.of_ops_exn q ops in
      List.iter
        (fun (sname, strategy) ->
          let run executor = sorted_fingerprints (Exec.run ~executor env enc strategy) in
          let label =
            Printf.sprintf "%s / %s" sname (String.concat ";" (List.map Op.to_string ops))
          in
          let binary = run Exec.Binary in
          check_bool (label ^ ": answers nonempty or both empty") true
            (binary = run Exec.Auto && binary = run Exec.Holistic))
        (strategies 10))
    op_sets

let test_exec_metrics_and_fallback () =
  let d, idx, st = make_env (Xmark.Articles.doc ~seed:21 ~count:30 ()) in
  let q = q1 () in
  let env = exec_env d idx st q in
  let run executor enc =
    let m = Exec.fresh_metrics () in
    ignore (Exec.run ~metrics:m ~executor env enc Exec.exact_strategy);
    m
  in
  let conj = Encoded.of_ops_exn q [] in
  check_bool "conjunctive plan is twig-applicable" true (Twig.applicable conj);
  let m_auto = run Exec.Auto conj in
  check_int "auto takes holistic" 1 m_auto.Exec.holistic_runs;
  check_int "exact conjunctive hits the fast path" 1 m_auto.Exec.holistic_fast_paths;
  check_bool "streams carry elements" true (m_auto.Exec.stream_elements > 0);
  let m_bin = run Exec.Binary conj in
  check_int "forced binary never twig-joins" 0 m_bin.Exec.holistic_runs;
  (* relaxed but still conjunctive: holistic runs, fast path does not *)
  let relaxed = Encoded.of_ops_exn q [ Op.Contains_promotion (4, kw) ] in
  let m_rel = run Exec.Auto relaxed in
  check_int "relaxed conjunctive still holistic" 1 m_rel.Exec.holistic_runs;
  check_int "relaxed encoding skips the fast path" 0 m_rel.Exec.holistic_fast_paths;
  (* optional spec (leaf deletion): even a forced Holistic falls back *)
  let optional = Encoded.of_ops_exn q [ Op.Contains_promotion (4, kw); Op.Leaf_deletion 4 ] in
  check_bool "optional spec not twig-applicable" false (Twig.applicable optional);
  let m_opt = run Exec.Holistic optional in
  check_int "forced holistic falls back on optional specs" 0 m_opt.Exec.holistic_runs

let test_fast_path_preserves_failpoint_schedule () =
  (* the fast path fires "exec.stage" once per join stage so counted
     fault schedules are executor-independent *)
  let d, idx, st = make_env (Xmark.Articles.doc ~seed:7 ~count:20 ()) in
  let q = q1 () in
  let env = exec_env d idx st q in
  let enc = Encoded.of_ops_exn q [] in
  let stage_hits executor =
    let m = Exec.fresh_metrics () in
    ignore (Exec.run ~metrics:m ~executor env enc Exec.exact_strategy);
    m.Exec.stages
  in
  check_int "same stage count" (stage_hits Exec.Binary) (stage_hits Exec.Auto)

(* ------------------------------------------------------------------ *)
(* Algorithm level: Flexpath.run across DPO/SSO/Hybrid x schemes *)

let algorithms = [ Flexpath.DPO; Flexpath.SSO; Flexpath.Hybrid ]
let schemes = [ Ranking.Structure_first; Ranking.Keyword_first; Ranking.Combined ]

let completeness_tag = function
  | Common.Complete -> "C"
  | Common.Truncated { reason; _ } -> "T:" ^ Guard.reason_to_string reason

let result_fingerprint (r : Common.result) =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "rex=%d passes=%d restarts=%d deg=%b %s\n" r.Common.relaxations_evaluated
       r.Common.passes r.Common.restarts r.Common.degraded
       (completeness_tag r.Common.completeness));
  List.iter
    (fun (a : Answer.t) ->
      Buffer.add_string b
        (Printf.sprintf "%d|%Lx|%Lx|%d\n" a.Answer.node
           (Int64.bits_of_float a.Answer.sscore)
           (Int64.bits_of_float a.Answer.kscore)
           a.Answer.dropped_predicates))
    r.Common.answers;
  Buffer.contents b

let run_fingerprint ?budget env ~algorithm ~scheme ~k ~executor q =
  match Flexpath.run ~algorithm ~scheme ?budget ~executor env ~k q with
  | Ok r -> result_fingerprint r
  | Error e -> "error:" ^ Error.to_string e

let diff_env = lazy (Env.make (Xmark.Articles.doc ~seed:77 ~count:25 ()))

(* Same generator as test_flexpath's cross-algorithm property: random
   1-4 variable twigs over the Articles vocabulary. *)
let gen_random_query =
  let open QCheck2.Gen in
  let tag_gen = oneofl [ "article"; "section"; "paragraph"; "algorithm"; "title"; "abstract" ] in
  let kw_gen = oneofl [ "xml"; "streaming"; "algorithm"; "query" ] in
  let node_gen =
    let* t = tag_gen in
    let* n_kw = oneofl [ 0; 0; 1 ] in
    let* ws = list_repeat n_kw kw_gen in
    return (Query.node_spec ~tag:t ~contains:(List.map Ftexp.term ws) ())
  in
  let* n_nodes = 1 -- 4 in
  let* nodes = list_repeat n_nodes node_gen in
  let* axes = list_repeat n_nodes (oneofl [ Query.Child; Query.Descendant ]) in
  let* parents =
    flatten_l (List.init n_nodes (fun i -> if i = 0 then return 0 else 0 -- (i - 1)))
  in
  let nodes = List.mapi (fun i n -> (i + 1, n)) nodes in
  let edges =
    List.concat
      (List.mapi
         (fun i (p, a) -> if i = 0 then [] else [ (p + 1, i + 1, a) ])
         (List.combine parents axes))
  in
  let* dist = 1 -- n_nodes in
  match Query.make ~root:1 ~nodes ~edges ~distinguished:dist with
  | Ok q -> return q
  | Error _ -> assert false

let prop_executors_agree =
  QCheck2.Test.make ~name:"holistic = binary on random twigs, all algorithms and schemes"
    ~count:30
    (QCheck2.Gen.pair gen_random_query (QCheck2.Gen.oneofl [ 3; 10 ]))
    (fun (q, k) ->
      let env = Lazy.force diff_env in
      List.for_all
        (fun algorithm ->
          List.for_all
            (fun scheme ->
              let fp executor = run_fingerprint env ~algorithm ~scheme ~k ~executor q in
              fp Exec.Binary = fp Exec.Auto)
            schemes)
        algorithms)

(* Budget truncation that IS executor-deterministic: step budgets and
   restart caps cut at pass boundaries, which both executors cross at
   the same points. *)
let prop_executors_agree_truncated =
  QCheck2.Test.make ~name:"holistic = binary under step budgets and restart caps" ~count:20
    (QCheck2.Gen.pair gen_random_query (QCheck2.Gen.oneofl [ 1; 2; 4 ]))
    (fun (q, steps) ->
      let env = Lazy.force diff_env in
      let budget =
        { Guard.deadline_ms = None; tuple_budget = None; step_budget = Some steps;
          restart_cap = Some 0 }
      in
      List.for_all
        (fun algorithm ->
          List.for_all
            (fun scheme ->
              let fp executor =
                run_fingerprint ~budget env ~algorithm ~scheme ~k:5 ~executor q
              in
              fp Exec.Binary = fp Exec.Auto)
            schemes)
        algorithms)

let test_executors_agree_under_failpoints () =
  (* identically armed counted faults must surface identically: the
     fast path preserves the per-stage and per-run hit schedule *)
  let env = Lazy.force diff_env in
  let q = q1 () in
  List.iter
    (fun (point, hits) ->
      let outcome executor =
        Failpoint.reset ();
        (match Failpoint.activate_n point hits with
        | Ok () -> ()
        | Error e -> Alcotest.failf "arm %s: %s" point e);
        let r =
          List.map
            (fun algorithm ->
              run_fingerprint env ~algorithm ~scheme:Ranking.Structure_first ~k:5
                ~executor q)
            algorithms
        in
        Failpoint.reset ();
        r
      in
      List.iter2
        (fun b a -> check_string (Printf.sprintf "%s:%d" point hits) b a)
        (outcome Exec.Binary) (outcome Exec.Auto))
    [ ("exec.run", 1); ("exec.run", 3); ("exec.stage", 1); ("exec.stage", 5); ("chain.build", 1) ]

(* ------------------------------------------------------------------ *)
(* Corpus level: scatter-gather over shards, healthy and with a shard
   lost mid-query *)

let ok_exn what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s failed: %s" what (Error.to_string e)

let temp_prefix =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "flexpath_twig_%d_%d" (Unix.getpid ()) !n)

let remove_quiet path = try Sys.remove path with Sys_error _ -> ()

let with_corpus ~shards f =
  let prefix = temp_prefix () in
  Fun.protect
    ~finally:(fun () ->
      for i = 0 to shards - 1 do
        remove_quiet (Printf.sprintf "%s.shard%d" prefix i);
        remove_quiet (Printf.sprintf "%s.shard%d.wal" prefix i)
      done)
    (fun () ->
      let c = ok_exn "open_corpus" (Corpus.open_corpus ~shards ~prefix ()) in
      Fun.protect ~finally:(fun () -> Corpus.close c) (fun () -> f c))

let article seed =
  let rng = Xmark.Prng.create seed in
  let archetype =
    Xmark.Prng.pick rng
      [|
        Xmark.Articles.Exact;
        Xmark.Articles.Title_keywords;
        Xmark.Articles.Algo_elsewhere;
        Xmark.Articles.No_algorithm;
        Xmark.Articles.Keywords_only;
        Xmark.Articles.Irrelevant;
      |]
  in
  Xmark.Articles.article rng archetype seed

let fill corpus n =
  List.iter
    (fun i ->
      let body = Xml.to_string (article (500 + i)) in
      ignore (ok_exn "ingest" (Corpus.ingest corpus ~id:(Printf.sprintf "d%d" i) body)))
    (List.init n Fun.id)

let corpus_queries =
  [
    "//article[.contains(\"xml\")]";
    "//article[./section[./algorithm and ./paragraph[.contains(\"xml\" and \"streaming\")]]]";
    "//section[./title]";
  ]

let corpus_completeness_tag = function
  | Corpus.Complete -> "C"
  | Corpus.Partial { reason; score_bound } ->
    Printf.sprintf "P:%s:%Lx" reason (Int64.bits_of_float score_bound)

let corpus_fingerprint (r : Corpus.result) =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "served=%d/%d %s deg=%b\n" r.Corpus.served r.Corpus.total
       (corpus_completeness_tag r.Corpus.completeness)
       r.Corpus.degraded);
  List.iter
    (fun (a : Corpus.answer) ->
      Buffer.add_string b
        (Printf.sprintf "%s|%d|%Lx|%Lx|%d\n" (Corpus.answer_line a) a.Corpus.a_node
           (Int64.bits_of_float a.Corpus.a_sscore)
           (Int64.bits_of_float a.Corpus.a_kscore)
           a.Corpus.a_dropped))
    r.Corpus.answers;
  Buffer.contents b

let test_corpus_scatter_differential () =
  with_corpus ~shards:3 (fun corpus ->
      fill corpus 9;
      List.iter
        (fun algorithm ->
          List.iter
            (fun qs ->
              let q = parse qs in
              let fp executor =
                corpus_fingerprint
                  (ok_exn ("query " ^ qs)
                     (Corpus.query corpus ~algorithm ~use_cache:false ~executor ~k:10 q))
              in
              check_string
                (Printf.sprintf "%s %s" (Corpus.algorithm_to_string algorithm) qs)
                (fp Exec.Binary) (fp Exec.Auto))
            corpus_queries)
        [ Corpus.DPO; Corpus.SSO; Corpus.Hybrid ])

let test_corpus_shard_loss_differential () =
  (* a shard lost mid-scatter produces the same sound PARTIAL under
     either executor.  Two identically filled corpora so the strike
     bookkeeping of one run cannot leak into the other. *)
  let q = parse "//article[./section[./algorithm]]" in
  let result_of executor =
    with_corpus ~shards:3 (fun corpus ->
        fill corpus 9;
        Failpoint.reset ();
        (match Failpoint.activate_n "shard_probe" 1 with
        | Ok () -> ()
        | Error e -> Alcotest.failf "arm shard_probe: %s" e);
        let r =
          ok_exn "query under loss"
            (Corpus.query corpus ~use_cache:false ~executor ~k:10 q)
        in
        Failpoint.reset ();
        r)
  in
  let binary = result_of Exec.Binary and auto = result_of Exec.Auto in
  check_int "one shard lost" 2 binary.Corpus.served;
  (match binary.Corpus.completeness with
  | Corpus.Partial _ -> ()
  | Corpus.Complete -> Alcotest.fail "loss must report PARTIAL");
  check_string "identical partial merge" (corpus_fingerprint binary) (corpus_fingerprint auto)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "twig"
    [
      ( "executor",
        [
          Alcotest.test_case "binary = holistic on exact and relaxed encodings" `Quick
            test_exec_differential;
          Alcotest.test_case "planner selection and fallback metrics" `Quick
            test_exec_metrics_and_fallback;
          Alcotest.test_case "fast path keeps the stage schedule" `Quick
            test_fast_path_preserves_failpoint_schedule;
        ] );
      ( "algorithms",
        [
          QCheck_alcotest.to_alcotest prop_executors_agree;
          QCheck_alcotest.to_alcotest prop_executors_agree_truncated;
          Alcotest.test_case "identical fault surfacing" `Quick
            test_executors_agree_under_failpoints;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "scatter-gather differential" `Quick
            test_corpus_scatter_differential;
          Alcotest.test_case "shard-loss differential" `Quick
            test_corpus_shard_loss_differential;
        ] );
    ]
