(* Tests for the relaxation operators, penalties and the relaxation
   space — the formal core of the paper (§3, §4.3.1). *)

module Xml = Xmldom.Xml
module Doc = Xmldom.Doc
module Ftexp = Fulltext.Ftexp
module Index = Fulltext.Index
module Pred = Tpq.Pred
module Query = Tpq.Query
module Xpath = Tpq.Xpath
module Semantics = Tpq.Semantics
module Containment = Tpq.Containment
module Op = Relax.Op
module Penalty = Relax.Penalty
module Space = Relax.Space

let el = Xml.element
let txt = Xml.text
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let kw = Ftexp.(Term "xml" &&& Term "streaming")

let q1 () =
  Xpath.parse_exn
    "//article[./section[./algorithm and ./paragraph[.contains(\"XML\" and \"streaming\")]]]"

(* In Q1's parse, $1=article, $2=section, $3=algorithm, $4=paragraph. *)

let shape_equal a b = String.equal (Query.canonical_key a) (Query.canonical_key b)

(* ------------------------------------------------------------------ *)
(* Operators: the Figure 1 derivations *)

let test_axis_generalization () =
  let q = Op.apply_exn (q1 ()) (Op.Axis_generalization 2) in
  check_bool "pc became ad" true (Query.parent q 2 = Some (1, Query.Descendant));
  check_bool "inapplicable on ad edge" true (Result.is_error (Op.apply q (Op.Axis_generalization 2)));
  check_bool "inapplicable on root" true (Result.is_error (Op.apply q (Op.Axis_generalization 1)))

let test_contains_promotion_is_q2 () =
  (* κ_$4(Q1) = Q2 (Figure 1b) *)
  let q2 = Op.apply_exn (q1 ()) (Op.Contains_promotion (4, kw)) in
  let expected =
    Xpath.parse_exn
      "//article[./section[./algorithm and ./paragraph and .contains(\"XML\" and \"streaming\")]]"
  in
  check_bool "Q2 shape" true (shape_equal q2 expected)

let test_subtree_promotion_is_q3 () =
  (* σ_$3(Q1) = Q3 (Figure 1c) *)
  let q3 = Op.apply_exn (q1 ()) (Op.Subtree_promotion 3) in
  let expected =
    Xpath.parse_exn
      "//article[.//algorithm and ./section[./paragraph[.contains(\"XML\" and \"streaming\")]]]"
  in
  check_bool "Q3 shape" true (shape_equal q3 expected)

let test_leaf_deletion_is_q5 () =
  (* λ_$3(Q2) = Q5 (Figure 1e) *)
  let q2 = Op.apply_exn (q1 ()) (Op.Contains_promotion (4, kw)) in
  let q5 = Op.apply_exn q2 (Op.Leaf_deletion 3) in
  let expected =
    Xpath.parse_exn "//article[./section[./paragraph and .contains(\"XML\" and \"streaming\")]]"
  in
  check_bool "Q5 shape" true (shape_equal q5 expected)

let test_q6_reachable () =
  (* Repeated application reaches Q6 (keywords anywhere in article). *)
  let q = q1 () in
  let q = Op.apply_exn q (Op.Contains_promotion (4, kw)) in
  let q = Op.apply_exn q (Op.Leaf_deletion 3) in
  let q = Op.apply_exn q (Op.Leaf_deletion 4) in
  let q = Op.apply_exn q (Op.Contains_promotion (2, kw)) in
  let q = Op.apply_exn q (Op.Leaf_deletion 2) in
  let expected = Xpath.parse_exn "//article[.contains(\"XML\" and \"streaming\")]" in
  check_bool "Q6 shape" true (shape_equal q expected);
  check_int "single variable" 1 (Query.size q)

let test_op_errors () =
  let q = q1 () in
  check_bool "delete non-leaf" true (Result.is_error (Op.apply q (Op.Leaf_deletion 2)));
  check_bool "promote without grandparent" true
    (Result.is_error (Op.apply q (Op.Subtree_promotion 2)));
  check_bool "promote root contains" true
    (Result.is_error (Op.apply q (Op.Contains_promotion (1, kw))));
  check_bool "promote missing contains" true
    (Result.is_error (Op.apply q (Op.Contains_promotion (3, kw))))

let test_applicable_q1 () =
  let ops = Op.applicable (q1 ()) in
  (* 3 axis generalizations + 2 leaf deletions + 2 subtree promotions +
     1 contains promotion *)
  check_bool "axis gen $2" true (List.mem (Op.Axis_generalization 2) ops);
  check_bool "axis gen $3" true (List.mem (Op.Axis_generalization 3) ops);
  check_bool "axis gen $4" true (List.mem (Op.Axis_generalization 4) ops);
  check_bool "delete $3" true (List.mem (Op.Leaf_deletion 3) ops);
  check_bool "delete $4" true (List.mem (Op.Leaf_deletion 4) ops);
  check_bool "promote $3" true (List.mem (Op.Subtree_promotion 3) ops);
  check_bool "promote $4" true (List.mem (Op.Subtree_promotion 4) ops);
  check_bool "promote contains $4" true (List.mem (Op.Contains_promotion (4, kw)) ops);
  check_int "exactly these" 8 (List.length ops)

let test_applicable_excludes_equivalent () =
  (* a[b and b]: deleting either b leaf yields an equivalent query, so
     leaf deletion must not be offered. *)
  let q =
    Query.make_exn ~root:1
      ~nodes:
        [
          (1, Query.node_spec ~tag:"a" ());
          (2, Query.node_spec ~tag:"b" ());
          (3, Query.node_spec ~tag:"b" ());
        ]
      ~edges:[ (1, 2, Query.Child); (1, 3, Query.Child) ]
      ~distinguished:1
  in
  let ops = Op.applicable q in
  check_bool "no equivalent deletion" false
    (List.mem (Op.Leaf_deletion 2) ops || List.mem (Op.Leaf_deletion 3) ops)

(* Soundness (Theorem 2, first half): operators produce relaxations,
   i.e. strictly containing queries. *)
let test_ops_sound_containment () =
  let q = q1 () in
  List.iter
    (fun op ->
      let q' = Op.apply_exn q op in
      check_bool (Op.to_string op ^ " contains original") true (Containment.contained q q');
      check_bool (Op.to_string op ^ " strict") false (Containment.contained q' q))
    (Op.applicable q)

(* Independence: no operator's effect is reproducible by the others.
   We verify the four canonical instances on Q1 produce four pairwise
   non-equivalent queries, none equal to any single application of a
   different operator kind. *)
let test_ops_independent () =
  let q = q1 () in
  let results =
    List.map
      (fun op -> (op, Op.apply_exn q op))
      [
        Op.Axis_generalization 2;
        Op.Leaf_deletion 3;
        Op.Subtree_promotion 3;
        Op.Contains_promotion (4, kw);
      ]
  in
  List.iter
    (fun (op1, r1) ->
      List.iter
        (fun (op2, r2) ->
          if Op.compare op1 op2 <> 0 then
            check_bool
              (Op.to_string op1 ^ " vs " ^ Op.to_string op2)
              false (shape_equal r1 r2))
        results)
    results

(* ------------------------------------------------------------------ *)
(* Penalties (§4.3.1, Example 1) *)

(* Article data where the counts are easy to verify by hand. *)
let article_doc () =
  Doc.of_tree
    (el "collection"
       [
         el "article"
           [ el "section" [ el "algorithm" []; el "paragraph" [ txt "xml streaming" ] ] ];
         el "article"
           [
             el "section" [ el "paragraph" [ txt "xml streaming" ] ];
             el "section" [ el "subsection" [ el "algorithm" [] ] ];
           ];
       ])

let penalty_env () =
  let d = article_doc () in
  let idx = Index.build d in
  let st = Stats.build d in
  Stats.set_index st idx;
  Penalty.make st Penalty.uniform (q1 ())

let test_penalty_pc () =
  let env = penalty_env () in
  (* #pc(section,algorithm) = 1, #ad(section,algorithm) = 2 *)
  check_float "pc penalty" 0.5 (Penalty.predicate_penalty env (Pred.Pc (2, 3)))

let test_penalty_ad () =
  let env = penalty_env () in
  (* #ad(section,algorithm) = 2, #section = 3, #algorithm = 2 *)
  check_float "ad penalty" (2.0 /. 6.0) (Penalty.predicate_penalty env (Pred.Ad (2, 3)))

let test_penalty_contains () =
  let env = penalty_env () in
  (* #contains(paragraph, kw) = 2, parent of $4 is $2 (section):
     #contains(section, kw) = 2 *)
  check_float "contains penalty" 1.0 (Penalty.predicate_penalty env (Pred.Contains (4, kw)))

let test_penalty_value_preds_zero () =
  let env = penalty_env () in
  check_float "tag penalty" 0.0 (Penalty.predicate_penalty env (Pred.Tag_eq (1, "article")))

let test_base_and_keyword_score () =
  let env = penalty_env () in
  check_float "base = 3 structural preds" 3.0 (Penalty.base_score env);
  check_float "one contains pred" 1.0 (Penalty.max_keyword_score env)

let test_dropped_preds_contains_promotion () =
  let env = penalty_env () in
  let q2 = Op.apply_exn (q1 ()) (Op.Contains_promotion (4, kw)) in
  let dropped = Penalty.dropped_preds env q2 in
  check_bool "only contains($4) dropped" true
    (dropped = [ Pred.Contains (4, kw) ])

let test_dropped_preds_subtree_promotion () =
  let env = penalty_env () in
  let q3 = Op.apply_exn (q1 ()) (Op.Subtree_promotion 3) in
  let dropped = Penalty.dropped_preds env q3 in
  check_bool "pc and ad (2,3) dropped" true
    (List.sort Pred.compare dropped
    = List.sort Pred.compare [ Pred.Pc (2, 3); Pred.Ad (2, 3) ])

let test_structural_score_decreases () =
  let env = penalty_env () in
  let q = q1 () in
  let s0 = Penalty.structural_score env q in
  List.iter
    (fun op ->
      let q' = Op.apply_exn q op in
      let s1 = Penalty.structural_score env q' in
      check_bool (Op.to_string op ^ " lowers score") true (s1 < s0 +. 1e-12))
    (Op.applicable q)

(* Order invariance (Theorem 3): the score of a relaxation does not
   depend on the order its operators were applied in. *)
let test_order_invariance () =
  let env = penalty_env () in
  let q = q1 () in
  let path1 =
    Op.apply_exn (Op.apply_exn q (Op.Contains_promotion (4, kw))) (Op.Subtree_promotion 3)
  in
  let path2 =
    Op.apply_exn (Op.apply_exn q (Op.Subtree_promotion 3)) (Op.Contains_promotion (4, kw))
  in
  check_float "same score both orders"
    (Penalty.structural_score env path1)
    (Penalty.structural_score env path2)

(* ------------------------------------------------------------------ *)
(* Relaxation space *)

let test_enumerate_includes_figure1 () =
  let space = Space.enumerate ~max_queries:400 (q1 ()) in
  let keys = List.map (fun (q, _) -> Query.canonical_key q) space in
  let has s = List.mem (Query.canonical_key (Xpath.parse_exn s)) keys in
  check_bool "Q2 in space" true
    (has "//article[./section[./algorithm and ./paragraph and .contains(\"xml\" and \"streaming\")]]");
  check_bool "Q3 in space" true
    (has "//article[.//algorithm and ./section[./paragraph[.contains(\"xml\" and \"streaming\")]]]");
  check_bool "Q5 in space" true
    (has "//article[./section[./paragraph and .contains(\"xml\" and \"streaming\")]]");
  check_bool "Q6 in space" true (has "//article[.contains(\"xml\" and \"streaming\")]")

let test_enumerate_dedups () =
  let space = Space.enumerate ~max_queries:400 (q1 ()) in
  let keys = List.map (fun (q, _) -> Query.canonical_key q) space in
  let sorted = List.sort String.compare keys in
  let rec no_dup = function
    | a :: (b :: _ as rest) -> a <> b && no_dup rest
    | _ -> true
  in
  check_bool "no duplicate shapes" true (no_dup sorted)

let test_enumerate_all_sound () =
  let q = q1 () in
  let space = Space.enumerate ~max_queries:100 q in
  List.iter
    (fun (q', ops) ->
      if ops <> [] then
        check_bool "is relaxation" true (Containment.contained q q'))
    space

let test_sequence_monotone () =
  let env = penalty_env () in
  let chain = Space.sequence ~max_steps:20 env in
  check_bool "starts at original" true (chain <> [] && (List.hd chain).Space.ops = []);
  let rec check_pairs = function
    | (a : Space.entry) :: (b : Space.entry) :: rest ->
      check_bool "penalty non-decreasing" true (b.penalty >= a.penalty -. 1e-9);
      check_bool "score non-increasing" true (b.score <= a.score +. 1e-9);
      check_bool "one more op" true (List.length b.ops = List.length a.ops + 1);
      check_pairs (b :: rest)
    | _ -> ()
  in
  check_pairs chain

let test_sequence_reaches_full_relaxation () =
  let env = penalty_env () in
  let chain = Space.sequence ~max_steps:32 env in
  let last = List.nth chain (List.length chain - 1) in
  (* the chain ends at the single-node fully relaxed query (Q6 form) *)
  check_int "one variable left" 1 (Query.size last.Space.query);
  check_bool "no further op" true (Space.cheapest_next env last.Space.query = None)

let test_sequence_answers_grow () =
  let d = article_doc () in
  let idx = Index.build d in
  let st = Stats.build d in
  Stats.set_index st idx;
  let env = Penalty.make st Penalty.uniform (q1 ()) in
  let chain = Space.sequence ~max_steps:32 env in
  let rec check_pairs = function
    | (a : Space.entry) :: (b : Space.entry) :: rest ->
      let aa = Semantics.answers d idx a.Space.query in
      let bb = Semantics.answers d idx b.Space.query in
      check_bool "answers monotone" true (List.for_all (fun x -> List.mem x bb) aa);
      check_pairs (b :: rest)
    | _ -> ()
  in
  check_pairs chain

(* Completeness spot check (Theorem 2, second half): dropping
   pc(2,3)+ad(2,3) from the closure — a valid structural relaxation —
   is reachable via the operators. *)
let test_completeness_q3 () =
  let q = q1 () in
  let target =
    Xpath.parse_exn
      "//article[.//algorithm and ./section[./paragraph[.contains(\"xml\" and \"streaming\")]]]"
  in
  let space = Space.enumerate ~max_queries:400 q in
  check_bool "Q3 reachable" true
    (List.exists (fun (q', _) -> shape_equal q' target) space)

(* ------------------------------------------------------------------ *)
(* Weights *)

let test_weights_by_kind () =
  let w = Relax.Weights.by_kind ~structural:2.0 ~contains:0.5 () in
  check_float "pc" 2.0 (w (Pred.Pc (1, 2)));
  check_float "ad" 2.0 (w (Pred.Ad (1, 2)));
  check_float "contains" 0.5 (w (Pred.Contains (1, kw)));
  check_float "tag default" 1.0 (w (Pred.Tag_eq (1, "a")))

let test_weights_per_var () =
  let w = Relax.Weights.per_var [ (2, 3.0) ] Relax.Weights.uniform in
  check_float "mentions var" 3.0 (w (Pred.Pc (1, 2)));
  check_float "does not" 1.0 (w (Pred.Pc (1, 3)));
  check_float "both endpoints" 9.0
    (Relax.Weights.per_var [ (1, 3.0); (2, 3.0) ] Relax.Weights.uniform (Pred.Pc (1, 2)))

let test_weights_parse () =
  (match Relax.Weights.parse "structural=2, contains=0.5, var3=4" with
  | Error e -> Alcotest.fail e
  | Ok w ->
    check_float "structural" 2.0 (w (Pred.Pc (1, 2)));
    check_float "contains" 0.5 (w (Pred.Contains (1, kw)));
    check_float "var scaled" 8.0 (w (Pred.Pc (1, 3))));
  let bad s =
    match Relax.Weights.parse s with
    | Ok _ -> Alcotest.failf "expected parse error: %S" s
    | Error _ -> ()
  in
  bad "structural";
  bad "structural=x";
  bad "nope=2";
  bad "var=2";
  bad "contains=-1"

let test_weights_affect_scores () =
  (* doubling structural weights doubles the base score and scales
     penalties accordingly *)
  let d = article_doc () in
  let idx = Index.build d in
  let st = Stats.build d in
  Stats.set_index st idx;
  let env1 = Penalty.make st Relax.Weights.uniform (q1 ()) in
  let env2 = Penalty.make st (Relax.Weights.by_kind ~structural:2.0 ()) (q1 ()) in
  check_float "base doubles" (2.0 *. Penalty.base_score env1) (Penalty.base_score env2);
  let q2 = Op.apply_exn (q1 ()) (Op.Subtree_promotion 3) in
  check_float "penalty doubles"
    (2.0 *. Penalty.relaxation_penalty env1 q2)
    (Penalty.relaxation_penalty env2 q2)

(* ------------------------------------------------------------------ *)
(* Properties *)

let gen_query =
  let open QCheck2.Gen in
  let tag_gen = oneofl [ "a"; "b"; "c"; "d" ] in
  let node_gen =
    let* t = tag_gen in
    let* has_kw = bool in
    return (Query.node_spec ~tag:t ~contains:(if has_kw then [ Ftexp.Term "xml" ] else []) ())
  in
  let* n_nodes = 2 -- 5 in
  let* nodes = list_repeat n_nodes node_gen in
  let* axes = list_repeat n_nodes (oneofl [ Query.Child; Query.Descendant ]) in
  let* parents = flatten_l (List.init n_nodes (fun i -> if i = 0 then return 0 else 0 -- (i - 1))) in
  let nodes = List.mapi (fun i n -> (i + 1, n)) nodes in
  let edges =
    List.concat
      (List.mapi
         (fun i (p, a) -> if i = 0 then [] else [ (p + 1, i + 1, a) ])
         (List.combine parents axes))
  in
  match Query.make ~root:1 ~nodes ~edges ~distinguished:1 with
  | Ok q -> return q
  | Error _ -> assert false

let gen_doc =
  let open QCheck2.Gen in
  let tag_gen = oneofl [ "a"; "b"; "c"; "d" ] in
  sized @@ fix (fun self n ->
      let* t = tag_gen in
      let* kw = bool in
      let body = if kw then [ Xml.Text "xml" ] else [] in
      if n <= 0 then return (Xml.Element (t, [], body))
      else
        let* kids = list_size (1 -- 3) (self (n / 3)) in
        return (Xml.Element (t, [], body @ kids)))

let prop_ops_enlarge_answers =
  QCheck2.Test.make ~name:"operators only add answers on data" ~count:60
    (QCheck2.Gen.pair gen_query gen_doc) (fun (q, tree) ->
      let d = Doc.of_tree tree in
      let idx = Index.build d in
      let before = Semantics.answers d idx q in
      List.for_all
        (fun op ->
          let q' = Op.apply_exn q op in
          let after = Semantics.answers d idx q' in
          List.for_all (fun x -> List.mem x after) before)
        (Op.applicable q))

let prop_sequence_scores_sorted =
  QCheck2.Test.make ~name:"greedy chain scores are non-increasing" ~count:30
    (QCheck2.Gen.pair gen_query gen_doc) (fun (q, tree) ->
      let d = Doc.of_tree tree in
      let st = Stats.build d in
      Stats.set_index st (Index.build d);
      let env = Penalty.make st Penalty.uniform q in
      let chain = Space.sequence ~max_steps:12 env in
      let rec ok = function
        | (a : Space.entry) :: (b : Space.entry) :: rest ->
          b.score <= a.score +. 1e-9 && ok (b :: rest)
        | _ -> true
      in
      ok chain)

(* Rebuild [q] with every variable id mapped through the injection [f].
   The result is isomorphic to [q], so its canonical key must not
   change — the query cache keys plans and answers by shape, not by
   variable numbering. *)
let remap_vars f q =
  let vars = Query.vars q in
  let nodes = List.map (fun v -> (f v, Query.node q v)) vars in
  let edges =
    List.filter_map
      (fun v -> Option.map (fun (p, a) -> (f p, f v, a)) (Query.parent q v))
      vars
  in
  match
    Query.make ~root:(f (Query.root q)) ~nodes ~edges
      ~distinguished:(f (Query.distinguished q))
  with
  | Ok q' -> q'
  | Error msg -> failwith msg

let prop_canonical_key_isomorphic =
  QCheck2.Test.make ~name:"canonical_key invariant under variable renaming" ~count:200 gen_query
    (fun q ->
      (* 100 - v reverses sibling order, exercising the child-key sort. *)
      shape_equal q (remap_vars (fun v -> (v * 7) + 3) q)
      && shape_equal q (remap_vars (fun v -> 100 - v) q))

let prop_canonical_key_separates =
  (* Every applicable operator yields a non-equivalent query (that is
     what [applicable] guarantees), and non-equivalent implies
     non-isomorphic — so the relaxed query must get a distinct key. *)
  QCheck2.Test.make ~name:"canonical_key distinct across applicable relaxations" ~count:200
    gen_query (fun q ->
      List.for_all (fun op -> not (shape_equal q (Op.apply_exn q op))) (Op.applicable q))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "relax"
    [
      ( "operators",
        [
          Alcotest.test_case "axis generalization" `Quick test_axis_generalization;
          Alcotest.test_case "contains promotion = Q2" `Quick test_contains_promotion_is_q2;
          Alcotest.test_case "subtree promotion = Q3" `Quick test_subtree_promotion_is_q3;
          Alcotest.test_case "leaf deletion = Q5" `Quick test_leaf_deletion_is_q5;
          Alcotest.test_case "Q6 reachable" `Quick test_q6_reachable;
          Alcotest.test_case "errors" `Quick test_op_errors;
          Alcotest.test_case "applicable on Q1" `Quick test_applicable_q1;
          Alcotest.test_case "equivalent results excluded" `Quick test_applicable_excludes_equivalent;
          Alcotest.test_case "soundness (containment)" `Quick test_ops_sound_containment;
          Alcotest.test_case "independence" `Quick test_ops_independent;
        ] );
      ( "penalties",
        [
          Alcotest.test_case "pc penalty" `Quick test_penalty_pc;
          Alcotest.test_case "ad penalty" `Quick test_penalty_ad;
          Alcotest.test_case "contains penalty" `Quick test_penalty_contains;
          Alcotest.test_case "value preds zero" `Quick test_penalty_value_preds_zero;
          Alcotest.test_case "base and keyword scores" `Quick test_base_and_keyword_score;
          Alcotest.test_case "dropped: contains promotion" `Quick test_dropped_preds_contains_promotion;
          Alcotest.test_case "dropped: subtree promotion" `Quick test_dropped_preds_subtree_promotion;
          Alcotest.test_case "scores decrease" `Quick test_structural_score_decreases;
          Alcotest.test_case "order invariance" `Quick test_order_invariance;
        ] );
      ( "space",
        [
          Alcotest.test_case "figure 1 queries reachable" `Quick test_enumerate_includes_figure1;
          Alcotest.test_case "deduplication" `Quick test_enumerate_dedups;
          Alcotest.test_case "all entries sound" `Quick test_enumerate_all_sound;
          Alcotest.test_case "sequence monotone" `Quick test_sequence_monotone;
          Alcotest.test_case "sequence reaches full relaxation" `Quick test_sequence_reaches_full_relaxation;
          Alcotest.test_case "answers grow along chain" `Quick test_sequence_answers_grow;
          Alcotest.test_case "completeness: Q3 reachable" `Quick test_completeness_q3;
        ] );
      ( "weights",
        [
          Alcotest.test_case "by kind" `Quick test_weights_by_kind;
          Alcotest.test_case "per var" `Quick test_weights_per_var;
          Alcotest.test_case "parse" `Quick test_weights_parse;
          Alcotest.test_case "affect scores" `Quick test_weights_affect_scores;
        ] );
      ( "properties",
        [
          q prop_ops_enlarge_answers;
          q prop_sequence_scores_sorted;
          q prop_canonical_key_isomorphic;
          q prop_canonical_key_separates;
        ] );
    ]
