(* Crash-safe snapshot storage: the corruption corpus.

   Acceptance tests of the storage subsystem:
   - a clean save/load round-trip is Intact and answer-preserving;
   - every corrupted input — truncation at and around every section
     boundary, a single-bit flip at every byte of the file, trailing
     garbage, legacy v1 files — yields a typed [Error.t] or a
     [Recovered] environment, never an exception and never a silent
     [Intact];
   - damage confined to derived sections is repaired from the document
     section and the repaired environment answers queries identically;
   - a fault injected at any [storage_*] failpoint during [save] leaves
     a pre-existing snapshot byte-identical and checksum-valid, with no
     temp-file debris. *)

module Storage = Flexpath.Storage
module Error = Flexpath.Error
module Env = Flexpath.Env
module Answer = Flexpath.Answer
module Failpoint = Flexpath.Failpoint
module Xpath = Tpq.Xpath

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Fixture *)

let hierarchy = Tpq.Hierarchy.of_list_exn [ ("algorithm", "section"); ("paragraph", "section") ]
let fixture_doc = lazy (Xmark.Articles.doc ~seed:7 ~count:3 ())
let fixture_env = lazy (Env.make ~hierarchy (Lazy.force fixture_doc))
let query = "//article[.contains(\"xml\")]"

let answer_keys env =
  match Flexpath.top_k_xpath env ~k:10 query with
  | Ok answers ->
    List.map (fun (a : Answer.t) -> (a.node, Float.round (a.sscore *. 1e6))) answers
  | Error e -> Alcotest.failf "fixture query failed: %s" (Error.to_string e)

let fixture_keys = lazy (answer_keys (Lazy.force fixture_env))

let temp_name =
  let n = ref 0 in
  fun suffix ->
    incr n;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "flexpath_storage_%d_%d%s" (Unix.getpid ()) !n suffix)

let with_snapshot f =
  let path = temp_name ".env" in
  (match Storage.save (Lazy.force fixture_env) path with
  | Ok () -> ()
  | Error e -> Alcotest.failf "save failed: %s" (Error.to_string e));
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

let with_bytes data f =
  let path = temp_name ".env" in
  write_file path data;
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let sections_of path =
  match Storage.verify path with
  | Ok report -> report.Storage.sections
  | Error e -> Alcotest.failf "verify failed: %s" (Error.to_string e)

(* The corpus invariant: a corrupted file must come back as a typed
   snapshot error or a recovered (and queryable) environment — never an
   exception, never a clean [Intact]/[Migrated]. *)
let assert_detected ~name path =
  match Storage.load path with
  | exception e -> Alcotest.failf "%s: load raised %s" name (Printexc.to_string e)
  | Error (Error.Snapshot_error _) -> ()
  | Error e -> Alcotest.failf "%s: unexpected error class: %s" name (Error.to_string e)
  | Ok (env, Storage.Recovered _) ->
    check_bool (name ^ ": recovered env answers the fixture query") true
      (answer_keys env = Lazy.force fixture_keys)
  | Ok (_, Storage.Intact) -> Alcotest.failf "%s: corruption loaded as Intact" name
  | Ok (_, Storage.Migrated _) -> Alcotest.failf "%s: corruption loaded as Migrated" name

let flip_bit data i bit =
  let b = Bytes.of_string data in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
  Bytes.to_string b

(* ------------------------------------------------------------------ *)
(* Round trip *)

let test_roundtrip () =
  with_snapshot (fun path ->
      match Storage.load path with
      | Error e -> Alcotest.fail (Error.to_string e)
      | Ok (env, outcome) ->
        check_string "outcome" "intact" (Storage.outcome_to_string outcome);
        check_bool "answers preserved" true (answer_keys env = Lazy.force fixture_keys);
        check_bool "hierarchy preserved" true
          (Tpq.Hierarchy.supertype env.Env.hierarchy "algorithm" = Some "section");
        let report =
          match Storage.verify path with Ok r -> r | Error e -> Alcotest.fail (Error.to_string e)
        in
        check_int "format version" 2 report.Storage.version;
        check_int "four sections" 4 (List.length report.Storage.sections);
        check_bool "verify: intact" true report.Storage.intact;
        check_bool "verify: recoverable" true report.Storage.recoverable;
        check_bool "every section ok" true
          (List.for_all (fun s -> s.Storage.ok) report.Storage.sections))

(* ------------------------------------------------------------------ *)
(* Truncation at (and around) every structural boundary *)

let test_truncation_corpus () =
  with_snapshot (fun path ->
      let data = read_file path in
      let len = String.length data in
      let boundaries =
        (* header landmarks, every section start/end +- 1, footer *)
        [ 0; 1; 11; 12; 13; 16; 17 ]
        @ List.concat_map
            (fun (s : Storage.section_report) ->
              [ s.offset - 1; s.offset; s.offset + 1; s.offset + s.bytes ])
            (sections_of path)
        @ [ len - 9; len - 8; len - 4; len - 1 ]
      in
      List.iter
        (fun cut ->
          if cut >= 0 && cut < len then
            with_bytes (String.sub data 0 cut) (fun p ->
                assert_detected ~name:(Printf.sprintf "truncated at byte %d" cut) p))
        boundaries;
      (* Truncation that spares the document section must recover, not
         fail: cut right at the end of the document payload. *)
      let doc_section = List.find (fun s -> s.Storage.name = "document") (sections_of path) in
      with_bytes (String.sub data 0 (doc_section.offset + doc_section.bytes)) (fun p ->
          match Storage.load p with
          | Ok (env, Storage.Recovered { rebuilt }) ->
            check_bool "all derived sections rebuilt" true
              (rebuilt = [ "index"; "statistics"; "hierarchy" ]);
            check_bool "document survived the cut" true
              (answer_keys env = Lazy.force fixture_keys);
            check_bool "hierarchy reset to empty" true (Tpq.Hierarchy.is_empty env.Env.hierarchy)
          | Ok _ -> Alcotest.fail "expected Recovered"
          | Error e -> Alcotest.failf "expected recovery, got %s" (Error.to_string e)))

(* ------------------------------------------------------------------ *)
(* A single-bit flip at every byte of the file *)

let test_bit_flip_sweep () =
  with_snapshot (fun path ->
      let data = read_file path in
      for i = 0 to String.length data - 1 do
        with_bytes (flip_bit data i (i mod 8)) (fun p ->
            assert_detected ~name:(Printf.sprintf "bit %d of byte %d flipped" (i mod 8) i) p)
      done)

(* ------------------------------------------------------------------ *)
(* Trailing garbage *)

let test_trailing_garbage () =
  with_snapshot (fun path ->
      let data = read_file path in
      List.iter
        (fun garbage ->
          with_bytes (data ^ garbage) (fun p ->
              match Storage.load p with
              | Error (Error.Snapshot_error { corruption = Error.Trailing_garbage { bytes }; _ })
                -> check_int "garbage byte count" (String.length garbage) bytes
              | Error e -> Alcotest.failf "expected Trailing_garbage, got %s" (Error.to_string e)
              | Ok _ -> Alcotest.fail "trailing garbage accepted"))
        [ "x"; "garbage"; String.make 4096 '\x00' ])

(* ------------------------------------------------------------------ *)
(* Per-section damage and recovery *)

let test_section_recovery () =
  with_snapshot (fun path ->
      let data = read_file path in
      List.iter
        (fun (s : Storage.section_report) ->
          let corrupted = flip_bit data (s.offset + (s.bytes / 2)) 3 in
          with_bytes corrupted (fun p ->
              match (s.name, Storage.load p) with
              | "document", Error (Error.Snapshot_error { corruption = Error.Checksum_mismatch { section = "document" }; _ }) -> ()
              | "document", r ->
                Alcotest.failf "document damage: expected checksum error, got %s"
                  (match r with
                  | Ok (_, o) -> Storage.outcome_to_string o
                  | Error e -> Error.to_string e)
              | name, Ok (env, Storage.Recovered { rebuilt }) ->
                check_bool (name ^ " is the one rebuilt section") true (rebuilt = [ name ]);
                check_bool (name ^ " recovery preserves answers") true
                  (answer_keys env = Lazy.force fixture_keys);
                (* The verify report localizes the damage without loading. *)
                let report =
                  match Storage.verify p with
                  | Ok r -> r
                  | Error e -> Alcotest.fail (Error.to_string e)
                in
                check_bool (name ^ " flagged by verify") true
                  (List.exists
                     (fun (s' : Storage.section_report) -> s'.name = name && not s'.ok)
                     report.Storage.sections);
                check_bool "verify: not intact" false report.Storage.intact;
                check_bool "verify: recoverable" true report.Storage.recoverable
              | name, Ok (_, o) ->
                Alcotest.failf "%s damage: unexpected outcome %s" name (Storage.outcome_to_string o)
              | name, Error e ->
                Alcotest.failf "%s damage: unexpected error %s" name (Error.to_string e)))
        (sections_of path);
      (* Footer-only damage: everything verifies except the footer. *)
      with_bytes (flip_bit data (String.length data - 2) 0) (fun p ->
          match Storage.load p with
          | Ok (env, Storage.Recovered { rebuilt = [] }) ->
            check_bool "footer damage: env unaffected" true
              (answer_keys env = Lazy.force fixture_keys)
          | Ok (_, o) -> Alcotest.failf "footer damage: outcome %s" (Storage.outcome_to_string o)
          | Error e -> Alcotest.failf "footer damage: error %s" (Error.to_string e)))

(* ------------------------------------------------------------------ *)
(* Version handling *)

let test_version_skew () =
  with_snapshot (fun path ->
      let data = read_file path in
      let b = Bytes.of_string data in
      Bytes.set b 12 '\x07';
      with_bytes (Bytes.to_string b) (fun p ->
          match Storage.load p with
          | Error (Error.Snapshot_error { corruption = Error.Version_skew { found; newest }; _ })
            ->
            check_int "found version" 7 found;
            check_int "newest version" Storage.format_version newest;
            check_int "snapshot errors exit 4" 4
              (Error.exit_code
                 (Error.Snapshot_error
                    { path = p; corruption = Error.Version_skew { found; newest } }))
          | Error e -> Alcotest.failf "expected Version_skew, got %s" (Error.to_string e)
          | Ok _ -> Alcotest.fail "future version accepted"))

let test_v1_migration () =
  let path = temp_name ".env" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      (match Storage.save_v1 (Lazy.force fixture_env) path with
      | Ok () -> ()
      | Error e -> Alcotest.failf "save_v1 failed: %s" (Error.to_string e));
      (match Storage.load path with
      | Ok (env, Storage.Migrated { version }) ->
        check_int "migrated from v1" 1 version;
        check_bool "v1 answers preserved" true (answer_keys env = Lazy.force fixture_keys);
        check_bool "v1 hierarchy preserved" true
          (Tpq.Hierarchy.supertype env.Env.hierarchy "algorithm" = Some "section")
      | Ok (_, o) -> Alcotest.failf "expected Migrated, got %s" (Storage.outcome_to_string o)
      | Error e -> Alcotest.failf "v1 load failed: %s" (Error.to_string e));
      (match Storage.verify path with
      | Ok report ->
        check_int "v1 version reported" 1 report.Storage.version;
        check_bool "v1 payload deserializes" true report.Storage.intact;
        check_bool "v1 is not recoverable" false report.Storage.recoverable
      | Error e -> Alcotest.failf "v1 verify failed: %s" (Error.to_string e));
      (* Truncated v1 payloads are typed errors, not crashes. *)
      let data = read_file path in
      List.iter
        (fun cut ->
          with_bytes (String.sub data 0 cut) (fun p ->
              match Storage.load p with
              | exception e -> Alcotest.failf "truncated v1: raised %s" (Printexc.to_string e)
              | Error (Error.Snapshot_error _) -> ()
              | Error e -> Alcotest.failf "truncated v1: %s" (Error.to_string e)
              | Ok _ -> Alcotest.fail "truncated v1 accepted"))
        [ 5; 13; 14; 13 + 19; String.length data / 2; String.length data - 1 ];
      (* A v1 file with bytes appended is not silently accepted either. *)
      with_bytes (data ^ "junk") (fun p ->
          match Storage.load p with
          | Error (Error.Snapshot_error { corruption = Error.Trailing_garbage { bytes = 4 }; _ })
            -> ()
          | Error e -> Alcotest.failf "v1 trailing: %s" (Error.to_string e)
          | Ok _ -> Alcotest.fail "v1 trailing garbage accepted"))

let test_not_a_snapshot () =
  List.iter
    (fun (name, content) ->
      with_bytes content (fun p ->
          match Storage.load p with
          | Error (Error.Snapshot_error { corruption; _ }) ->
            let expected =
              if String.length content <= 12
                 && content = String.sub Storage.magic 0 (String.length content)
              then "truncated"
              else "bad magic"
            in
            let got =
              match corruption with
              | Error.Bad_magic -> "bad magic"
              | Error.Truncated _ -> "truncated"
              | c -> Error.corruption_to_string c
            in
            check_string name expected got
          | Error e -> Alcotest.failf "%s: %s" name (Error.to_string e)
          | Ok _ -> Alcotest.failf "%s: accepted" name))
    [
      ("empty file", "");
      ("partial magic", "FLEXPA");
      ("full magic, no version", "FLEXPATH-ENV");
      ("xml file", "<xml>not an env</xml>");
      ("random binary", "\x7fELF\x02\x01\x01\x00\x00\x00\x00\x00");
    ]

(* ------------------------------------------------------------------ *)
(* Crash-safety: a fault at any storage failpoint during save leaves
   the previous snapshot byte-identical, checksum-valid, and the
   directory free of temp debris. *)

let test_crash_during_save () =
  (* A dedicated directory so "no temp debris" is an exact statement:
     after every injected crash the directory holds the snapshot and
     nothing else. *)
  let dir = temp_name ".d" in
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "snap.env" in
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () ->
      (match Storage.save (Lazy.force fixture_env) path with
      | Ok () -> ()
      | Error e -> Alcotest.failf "save failed: %s" (Error.to_string e));
      let before = read_file path in
      List.iter
        (fun point ->
          (match Failpoint.activate point with
          | Ok () -> ()
          | Error msg -> Alcotest.failf "cannot arm %s: %s" point msg);
          Fun.protect ~finally:Failpoint.reset (fun () ->
              match Storage.save (Lazy.force fixture_env) path with
              | Error (Error.Fault p) -> check_string "fault surfaced" point p
              | Error e -> Alcotest.failf "%s: expected Fault, got %s" point (Error.to_string e)
              | Ok () -> Alcotest.failf "%s: fault did not fire" point);
          check_bool (point ^ ": snapshot byte-identical") true (read_file path = before);
          (match Storage.verify path with
          | Ok r -> check_bool (point ^ ": snapshot checksum-valid") true r.Storage.intact
          | Error e -> Alcotest.failf "%s: verify failed: %s" point (Error.to_string e));
          check_bool (point ^ ": no temp debris") true (Sys.readdir dir = [| "snap.env" |]))
        [ "storage_write"; "storage_fsync"; "storage_rename" ];
      (* The read-side failpoint makes load and verify fail typed. *)
      (match Failpoint.activate "storage_read_section" with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg);
      Fun.protect ~finally:Failpoint.reset (fun () ->
          (match Storage.load path with
          | Error (Error.Fault "storage_read_section") -> ()
          | Error e -> Alcotest.failf "load: expected Fault, got %s" (Error.to_string e)
          | Ok _ -> Alcotest.fail "load: read fault did not fire");
          match Storage.verify path with
          | Error (Error.Fault "storage_read_section") -> ()
          | Error e -> Alcotest.failf "verify: expected Fault, got %s" (Error.to_string e)
          | Ok _ -> Alcotest.fail "verify: read fault did not fire"))

let test_save_io_errors () =
  (* Unwritable destination: typed Io_error, no exception, no debris. *)
  (match Storage.save (Lazy.force fixture_env) "/nonexistent-dir/deep/snapshot.env" with
  | Error (Error.Io_error _) -> ()
  | Error e -> Alcotest.failf "expected Io_error, got %s" (Error.to_string e)
  | Ok () -> Alcotest.fail "saved into a nonexistent directory");
  match Storage.load "/nonexistent-dir/deep/snapshot.env" with
  | Error (Error.Io_error _) -> ()
  | Error e -> Alcotest.failf "expected Io_error, got %s" (Error.to_string e)
  | Ok _ -> Alcotest.fail "loaded a nonexistent file"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "storage"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "save/load is intact and answer-preserving" `Quick test_roundtrip;
        ] );
      ( "corruption corpus",
        [
          Alcotest.test_case "truncation at every boundary" `Quick test_truncation_corpus;
          Alcotest.test_case "single-bit flip at every byte" `Quick test_bit_flip_sweep;
          Alcotest.test_case "trailing garbage" `Quick test_trailing_garbage;
          Alcotest.test_case "per-section damage and recovery" `Quick test_section_recovery;
          Alcotest.test_case "not-a-snapshot inputs" `Quick test_not_a_snapshot;
        ] );
      ( "versions",
        [
          Alcotest.test_case "future version is typed skew" `Quick test_version_skew;
          Alcotest.test_case "v1 migration path" `Quick test_v1_migration;
        ] );
      ( "crash safety",
        [
          Alcotest.test_case "fault during save keeps old snapshot" `Quick test_crash_during_save;
          Alcotest.test_case "io errors are typed" `Quick test_save_io_errors;
        ] );
    ]
