(* The two-tier query cache (DESIGN.md §4f): LRU eviction at the byte
   bound, the cacheability rules, and transparency — a hit returns
   exactly what a cold run returns, without touching the executor. *)

module Env = Flexpath.Env
module Common = Flexpath.Common
module Qcache = Flexpath.Qcache
module Failpoint = Flexpath.Failpoint
module Query = Tpq.Query
module Xpath = Tpq.Xpath

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let make_env ?(seed = 7) ?(count = 30) () = Env.make (Xmark.Articles.doc ~seed ~count ())

let q () =
  Xpath.parse_exn "//article[./section[./paragraph[.contains(\"xml\" and \"streaming\")]]]"

let result ?(completeness = Common.Complete) ?(degraded = false) () =
  {
    Common.answers = [];
    metrics = Joins.Exec.fresh_metrics ();
    relaxations_evaluated = 1;
    passes = 1;
    restarts = 0;
    completeness;
    degraded;
  }

let with_failpoint name f =
  (match Failpoint.activate name with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  Fun.protect ~finally:(fun () -> Failpoint.deactivate name) f

let run_ok ?algorithm ?cache ?k env query =
  let k = Option.value k ~default:5 in
  match Flexpath.run ?algorithm ?cache env ~k query with
  | Ok r -> r
  | Error e -> Alcotest.fail (Flexpath.Error.to_string e)

(* ------------------------------------------------------------------ *)
(* LRU mechanics *)

let test_lru_eviction_at_byte_bound () =
  (* An empty-answer entry is estimated at 196 bytes (namespaced key
     "A:kN" + the fixed result overhead), so a 500-byte budget holds
     exactly two. *)
  let c = Qcache.create ~max_bytes:500 () in
  Qcache.store_answer c "k1" (result ());
  Qcache.store_answer c "k2" (result ());
  let ctr = Qcache.counters c in
  check_int "two resident" 2 ctr.Qcache.entries;
  check_int "no evictions yet" 0 ctr.Qcache.evictions;
  check_bool "bytes within budget" true (ctr.Qcache.bytes <= 500);
  (* Touch k1 so k2 becomes the least recently used. *)
  check_bool "k1 hit" true (Option.is_some (Qcache.find_answer c "k1"));
  Qcache.store_answer c "k3" (result ());
  let ctr = Qcache.counters c in
  check_int "one eviction at the byte bound" 1 ctr.Qcache.evictions;
  check_int "still two resident" 2 ctr.Qcache.entries;
  check_bool "bytes still within budget" true (ctr.Qcache.bytes <= 500);
  check_bool "LRU victim evicted" true (Qcache.find_answer c "k2" = None);
  check_bool "recently used survives" true (Option.is_some (Qcache.find_answer c "k1"));
  check_bool "new entry resident" true (Option.is_some (Qcache.find_answer c "k3"))

let test_oversized_entry_refused () =
  (* An entry that alone exceeds the whole budget must not flush the
     cache to make room it can never get. *)
  let c = Qcache.create ~max_bytes:250 () in
  Qcache.store_answer c "small" (result ());
  let answer = { Flexpath.Answer.node = 1; sscore = 1.0; kscore = 0.0; dropped_predicates = 0 } in
  let big = { (result ()) with Common.answers = List.init 8 (fun _ -> answer) } in
  Qcache.store_answer c "big" big;
  let ctr = Qcache.counters c in
  check_bool "oversized entry refused" true (Qcache.find_answer c "big" = None);
  check_bool "resident entry untouched" true (Option.is_some (Qcache.find_answer c "small"));
  check_int "no evictions" 0 ctr.Qcache.evictions

(* ------------------------------------------------------------------ *)
(* Cacheability *)

let test_truncated_never_cached () =
  let c = Qcache.create () in
  let truncated =
    result ~completeness:(Common.Truncated { reason = Flexpath.Guard.Steps; score_bound = 1.0 }) ()
  in
  check_bool "not cacheable" false (Qcache.cacheable truncated);
  Qcache.store_answer c "t" truncated;
  check_bool "store was a no-op" true (Qcache.find_answer c "t" = None);
  check_int "no entry" 0 (Qcache.counters c).Qcache.entries

let test_degraded_never_cached () =
  let c = Qcache.create () in
  let degraded = result ~degraded:true () in
  check_bool "not cacheable" false (Qcache.cacheable degraded);
  Qcache.store_answer c "d" degraded;
  check_bool "store was a no-op" true (Qcache.find_answer c "d" = None);
  Qcache.store_answer c "ok" (result ());
  check_bool "complete result cached" true (Option.is_some (Qcache.find_answer c "ok"))

(* ------------------------------------------------------------------ *)
(* End-to-end transparency *)

let test_hit_matches_cold_run () =
  let env = make_env () in
  let cache = Qcache.create () in
  List.iter
    (fun algorithm ->
      let cold = run_ok ~algorithm env (q ()) in
      let miss = run_ok ~algorithm ~cache env (q ()) in
      let hit = run_ok ~algorithm ~cache env (q ()) in
      check_bool "miss matches cold answers" true (cold.Common.answers = miss.Common.answers);
      check_bool "hit matches cold answers" true (cold.Common.answers = hit.Common.answers);
      check_bool "hit is complete" true (hit.Common.completeness = Common.Complete))
    Flexpath.all_algorithms;
  (* Per algorithm: the first cached run misses both tiers (answer then
     plan), the second hits the answer tier. *)
  let ctr = Qcache.counters cache in
  check_int "answer hits" 3 ctr.Qcache.hits;
  check_int "tier misses" 6 ctr.Qcache.misses;
  check_bool "resident bytes accounted" true (ctr.Qcache.bytes > 0)

(* Rebuild [q] with variable ids mapped through [f]: isomorphic, so it
   must share the cached plan and answers. *)
let remap f query =
  let vars = Query.vars query in
  let nodes = List.map (fun v -> (f v, Query.node query v)) vars in
  let edges =
    List.filter_map
      (fun v -> Option.map (fun (p, a) -> (f p, f v, a)) (Query.parent query v))
      vars
  in
  Query.make_exn
    ~root:(f (Query.root query))
    ~nodes ~edges
    ~distinguished:(f (Query.distinguished query))

let test_isomorphic_hit_skips_executor () =
  let env = make_env () in
  let cache = Qcache.create () in
  let qa = q () in
  let qb = remap (fun v -> 40 - v) qa in
  let cold = run_ok ~cache env qa in
  with_failpoint "exec.run" (fun () ->
      (* The isomorphic repeat is served from the answer tier: the armed
         executor failpoint is never reached. *)
      let warm = run_ok ~cache env qb in
      check_bool "isomorphic hit equals cold answers" true
        (cold.Common.answers = warm.Common.answers);
      (* A shape not in the cache does reach the executor and faults. *)
      let other = Xpath.parse_exn "//section[./algorithm]" in
      match Flexpath.run ~cache env ~k:5 other with
      | Error (Flexpath.Error.Fault "exec.run") -> ()
      | Ok _ -> Alcotest.fail "uncached query bypassed the executor"
      | Error e -> Alcotest.fail (Flexpath.Error.to_string e))

let test_plan_tier_skips_chain_build () =
  let env = make_env () in
  let cache = Qcache.create () in
  let _ = run_ok ~cache env ~k:5 (q ()) in
  with_failpoint "chain.build" (fun () ->
      (* Same shape, different k: an answer-tier miss that finds the
         plan tier populated — the chain is not rebuilt. *)
      let r = run_ok ~cache env ~k:7 (q ()) in
      check_bool "served via cached plan" true (r.Common.completeness = Common.Complete);
      (* Without the cache the same call must rebuild the chain and
         trip the failpoint. *)
      match Flexpath.run env ~k:7 (q ()) with
      | Error (Flexpath.Error.Fault "chain.build") -> ()
      | Ok _ -> Alcotest.fail "uncached run did not rebuild the chain"
      | Error e -> Alcotest.fail (Flexpath.Error.to_string e))

let () =
  Alcotest.run "qcache"
    [
      ( "lru",
        [
          Alcotest.test_case "eviction at the byte bound" `Quick test_lru_eviction_at_byte_bound;
          Alcotest.test_case "oversized entry refused" `Quick test_oversized_entry_refused;
        ] );
      ( "cacheability",
        [
          Alcotest.test_case "truncated never cached" `Quick test_truncated_never_cached;
          Alcotest.test_case "degraded never cached" `Quick test_degraded_never_cached;
        ] );
      ( "transparency",
        [
          Alcotest.test_case "hit matches cold run" `Quick test_hit_matches_cold_run;
          Alcotest.test_case "isomorphic hit skips executor" `Quick
            test_isomorphic_hit_skips_executor;
          Alcotest.test_case "plan tier skips chain build" `Quick test_plan_tier_skips_chain_build;
        ] );
    ]
