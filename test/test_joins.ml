(* Tests for the structural-join engine: the Al-Khalifa primitive, the
   relaxation-encoded specs and the scored tuple executor. *)

module Xml = Xmldom.Xml
module Doc = Xmldom.Doc
module Ftexp = Fulltext.Ftexp
module Index = Fulltext.Index
module Pred = Tpq.Pred
module Query = Tpq.Query
module Xpath = Tpq.Xpath
module Semantics = Tpq.Semantics
module Op = Relax.Op
module Penalty = Relax.Penalty
module Sj = Joins.Structural_join
module Encoded = Joins.Encoded
module Exec = Joins.Exec

let el = Xml.element
let txt = Xml.text
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_ilist = Alcotest.(check (list int))

let kw = Ftexp.(Term "xml" &&& Term "streaming")

(* ------------------------------------------------------------------ *)
(* Structural join primitive *)

let pairs_naive doc anc desc ~pc =
  let out = ref [] in
  Array.iter
    (fun a ->
      Array.iter
        (fun d ->
          let ok = if pc then Doc.is_parent doc a d else Doc.is_ancestor doc a d in
          if ok then out := (a, d) :: !out)
        desc)
    anc;
  List.sort compare !out

let random_doc seed =
  Xmark.Articles.doc ~seed ~count:6 ()

let test_ad_pairs_match_naive () =
  let d = random_doc 3 in
  let anc = Doc.by_tag_name d "section" in
  let desc = Doc.by_tag_name d "paragraph" in
  let fast = List.sort compare (Sj.ad_pairs d ~anc ~desc) in
  check_bool "same pairs" true (fast = pairs_naive d anc desc ~pc:false)

let test_pc_pairs_match_naive () =
  let d = random_doc 4 in
  let anc = Doc.by_tag_name d "article" in
  let desc = Doc.by_tag_name d "section" in
  let fast = List.sort compare (Sj.pc_pairs d ~anc ~desc) in
  check_bool "same pairs" true (fast = pairs_naive d anc desc ~pc:true)

let test_ad_pairs_nested_ancestors () =
  (* parlist under parlist: the stack must report both ancestors *)
  let d =
    Doc.of_tree
      (el "r" [ el "p" [ el "p" [ el "x" [] ] ] ])
  in
  let anc = Doc.by_tag_name d "p" in
  let desc = Doc.by_tag_name d "x" in
  check_int "two ancestors" 2 (List.length (Sj.ad_pairs d ~anc ~desc))

let test_ad_pairs_empty_inputs () =
  let d = random_doc 1 in
  check_int "no anc" 0 (List.length (Sj.ad_pairs d ~anc:[||] ~desc:(Doc.by_tag_name d "section")));
  check_int "no desc" 0 (List.length (Sj.ad_pairs d ~anc:(Doc.by_tag_name d "section") ~desc:[||]))

let test_subtree_slice () =
  let d =
    Doc.of_tree (el "r" [ el "a" [ el "x" []; el "x" [] ]; el "a" [ el "x" [] ] ])
  in
  let xs = Doc.by_tag_name d "x" in
  let a1 = (Doc.by_tag_name d "a").(0) in
  let lo, hi = Sj.subtree_slice d xs a1 in
  check_int "two x under first a" 2 (hi - lo);
  let a2 = (Doc.by_tag_name d "a").(1) in
  let lo2, hi2 = Sj.subtree_slice d xs a2 in
  check_int "one x under second a" 1 (hi2 - lo2)

let test_children_with_tag () =
  let d = Doc.of_tree (el "r" [ el "x" [ el "x" [] ]; el "x" [] ]) in
  let xs = Doc.by_tag_name d "x" in
  check_int "two x children of root" 2 (List.length (Sj.children_with_tag d xs 0))

(* Regression: on a deep recursive document the ancestor-descendant
   pair list is quadratic while the parent-child answer is linear.
   [pc_pairs] must produce the linear answer without materializing the
   quadratic intermediate (with the old filter-over-[ad_pairs]
   implementation this test would allocate ~4.5M pairs). *)
let test_pc_pairs_deep_recursive () =
  let depth = 3000 in
  let rec nest n = if n = 0 then el "leaf" [] else el "p" [ nest (n - 1) ] in
  let d = Doc.of_tree (el "r" [ nest depth ]) in
  let ps = Doc.by_tag_name d "p" in
  let pairs = Sj.pc_pairs d ~anc:ps ~desc:ps in
  check_int "linear pc answer" (depth - 1) (List.length pairs);
  check_bool "each pair is parent-child" true
    (List.for_all (fun (a, c) -> Doc.is_parent d a c) pairs);
  (* order contract: sorted by (descendant, ancestor) preorder id *)
  let sorted = List.sort (fun (a1, d1) (a2, d2) -> compare (d1, a1) (d2, a2)) pairs in
  check_bool "sweep order preserved" true (pairs = sorted)

let test_pc_pairs_shared_element_in_both_inputs () =
  (* an element present in both inputs sits on top of its own stack
     entry when it is visited as a descendant; the parent underneath
     must still be found *)
  let d = Doc.of_tree (el "r" [ el "p" [ el "p" [ el "p" [] ] ] ]) in
  let ps = Doc.by_tag_name d "p" in
  let fast = List.sort compare (Sj.pc_pairs d ~anc:ps ~desc:ps) in
  check_bool "matches naive" true (fast = pairs_naive d ps ps ~pc:true)

(* Regression: [children_with_tag] must skip whole subtrees using the
   level column instead of testing [is_parent] on every slice element —
   and stay correct when the same tag nests arbitrarily. *)
let test_children_with_tag_nested_same_tag () =
  let rec nest n = if n = 0 then el "y" [] else el "x" [ nest (n - 1) ] in
  let d =
    Doc.of_tree
      (el "r" [ nest 40; el "x" [ nest 10; el "x" [] ]; el "y" [ el "x" [ nest 5 ] ] ])
  in
  let xs = Doc.by_tag_name d "x" in
  let naive e =
    let lo, hi = Sj.subtree_slice d xs e in
    let out = ref [] in
    for i = hi - 1 downto lo do
      if Doc.is_parent d e xs.(i) then out := xs.(i) :: !out
    done;
    !out
  in
  Doc.iter_elements d (fun e ->
      check_bool
        (Printf.sprintf "children of %d" e)
        true
        (Sj.children_with_tag d xs e = naive e))

(* ------------------------------------------------------------------ *)
(* Encoded queries *)

let q1 () =
  Xpath.parse_exn
    "//article[./section[./algorithm and ./paragraph[.contains(\"XML\" and \"streaming\")]]]"

let test_encoded_exact () =
  let enc = Encoded.of_ops_exn (q1 ()) [] in
  check_int "four specs" 4 (Encoded.var_count enc);
  let specs = Encoded.specs enc in
  check_bool "root first" true ((List.hd specs).Encoded.var = 1);
  check_bool "none optional" true (List.for_all (fun s -> not s.Encoded.optional) specs);
  check_int "distinguished" 1 (Encoded.distinguished enc)

let test_encoded_axis_gen () =
  let enc = Encoded.of_ops_exn (q1 ()) [ Op.Axis_generalization 2 ] in
  let s2 = Encoded.spec enc 2 in
  check_bool "ad anchor" true (s2.Encoded.anchor = Some (1, Query.Descendant))

let test_encoded_leaf_deletion_is_optional () =
  let enc = Encoded.of_ops_exn (q1 ()) [ Op.Leaf_deletion 3 ] in
  let s3 = Encoded.spec enc 3 in
  check_bool "optional" true s3.Encoded.optional;
  check_bool "keeps anchor" true (s3.Encoded.anchor = Some (2, Query.Child));
  check_bool "keeps tag" true (s3.Encoded.tag = Some "algorithm");
  check_int "still four specs" 4 (Encoded.var_count enc)

let test_encoded_subtree_promotion () =
  let enc = Encoded.of_ops_exn (q1 ()) [ Op.Subtree_promotion 3 ] in
  let s3 = Encoded.spec enc 3 in
  check_bool "anchored at grandparent" true (s3.Encoded.anchor = Some (1, Query.Descendant))

let test_encoded_contains_promotion () =
  let enc = Encoded.of_ops_exn (q1 ()) [ Op.Contains_promotion (4, kw) ] in
  let s4 = Encoded.spec enc 4 in
  let s2 = Encoded.spec enc 2 in
  check_bool "contains gone from $4" true (s4.Encoded.required_contains = []);
  check_bool "contains now on $2" true (s2.Encoded.required_contains = [ kw ])

let test_encoded_deleted_distinguished () =
  (* deleting the distinguished variable is not a relaxation (the
     answers would bind a different variable), so the encoding rejects
     it *)
  let q = Xpath.parse_exn "//a/b" in
  check_bool "rejected" true (Result.is_error (Encoded.of_ops q [ Op.Leaf_deletion 2 ]))

let test_encoded_bad_ops () =
  check_bool "inapplicable op rejected" true
    (Result.is_error (Encoded.of_ops (q1 ()) [ Op.Leaf_deletion 2 ]))

(* ------------------------------------------------------------------ *)
(* Executor vs reference semantics *)

let make_env d =
  let idx = Index.build d in
  let st = Stats.build d in
  Stats.set_index st idx;
  (d, idx, st)

let exec_env d idx st q =
  { Exec.doc = d; index = idx; penalty = Penalty.make st Penalty.uniform q }

let targets answers = List.sort Int.compare (List.map (fun (a : Exec.answer) -> a.Exec.target) answers)

let test_exec_exact_matches_semantics () =
  let d, idx, st = make_env (Xmark.Articles.doc ~seed:8 ~count:40 ()) in
  List.iter
    (fun s ->
      let q = Xpath.parse_exn s in
      let env = exec_env d idx st q in
      let enc = Encoded.of_ops_exn q [] in
      let got = targets (Exec.run env enc Exec.exact_strategy) in
      let want = Semantics.answers d idx q in
      check_ilist ("exact: " ^ s) want got)
    [
      "//article";
      "//article[./section[./algorithm]]";
      "//article[./section[./algorithm and ./paragraph[.contains(\"XML\" and \"streaming\")]]]";
      "//article[.//algorithm]";
      "//section[./paragraph and .contains(\"xml\")]";
    ]

let test_exec_relaxed_matches_semantics () =
  (* evaluating with ops encoded must return exactly the answers of the
     relaxed query *)
  let d, idx, st = make_env (Xmark.Articles.doc ~seed:9 ~count:40 ()) in
  let q = q1 () in
  let env = exec_env d idx st q in
  List.iter
    (fun ops ->
      let relaxed = List.fold_left Op.apply_exn q ops in
      let enc = Encoded.of_ops_exn q ops in
      let got = targets (Exec.run env enc Exec.exact_strategy) in
      let want = Semantics.answers d idx relaxed in
      check_ilist
        (String.concat ";" (List.map Op.to_string ops))
        want got)
    [
      [ Op.Axis_generalization 2 ];
      [ Op.Contains_promotion (4, kw) ];
      [ Op.Subtree_promotion 3 ];
      [ Op.Contains_promotion (4, kw); Op.Leaf_deletion 3 ];
      [ Op.Contains_promotion (4, kw); Op.Leaf_deletion 3; Op.Leaf_deletion 4 ];
    ]

let test_exec_scores_exact_answers_full () =
  let d, idx, st = make_env (Xmark.Articles.doc ~seed:8 ~count:40 ()) in
  let q = q1 () in
  let env = exec_env d idx st q in
  let enc = Encoded.of_ops_exn q [] in
  let answers = Exec.run env enc Exec.exact_strategy in
  check_bool "nonempty" true (answers <> []);
  List.iter
    (fun (a : Exec.answer) ->
      check_bool "exact answers score base" true (Float.abs (a.Exec.sscore -. 3.0) < 1e-9);
      check_bool "keyword score in [0,1]" true (a.Exec.kscore >= 0.0 && a.Exec.kscore <= 1.0 +. 1e-9))
    answers

let test_exec_relaxed_scores_lower () =
  let d, idx, st = make_env (Xmark.Articles.doc ~seed:8 ~count:60 ()) in
  let q = q1 () in
  let env = exec_env d idx st q in
  let exact = Exec.run env (Encoded.of_ops_exn q []) Exec.exact_strategy in
  let exact_targets = targets exact in
  let relaxed =
    Exec.run env (Encoded.of_ops_exn q [ Op.Contains_promotion (4, kw) ]) Exec.exact_strategy
  in
  check_bool "relaxed superset" true
    (List.for_all (fun t -> List.mem t (targets relaxed)) exact_targets);
  List.iter
    (fun (a : Exec.answer) ->
      if not (List.mem a.Exec.target exact_targets) then
        check_bool "new answers scored lower" true (a.Exec.sscore < 3.0 -. 1e-9))
    relaxed

let test_exec_satisfied_sets () =
  let d, idx, st =
    make_env
      (Doc.of_tree
         (el "c"
            [
              el "article"
                [ el "section" [ el "algorithm" []; el "paragraph" [ txt "xml streaming" ] ] ];
              el "article"
                [ el "section" [ el "title" [ txt "xml streaming" ]; el "algorithm" []; el "paragraph" [ txt "none" ] ] ];
            ]))
  in
  let q = q1 () in
  let env = exec_env d idx st q in
  let enc = Encoded.of_ops_exn q [ Op.Contains_promotion (4, kw) ] in
  let answers = Exec.run env enc Exec.exact_strategy in
  check_int "both articles" 2 (List.length answers);
  List.iter
    (fun (a : Exec.answer) ->
      let has p = List.exists (Pred.equal p) a.Exec.satisfied in
      check_bool "structural preds satisfied" true (has (Pred.Pc (1, 2)) && has (Pred.Pc (2, 3)));
      (* first article satisfies contains($4), second only contains($2) *)
      if a.Exec.target = 1 then check_bool "contains $4 held" true (has (Pred.Contains (4, kw)))
      else check_bool "contains $4 failed" false (has (Pred.Contains (4, kw))))
    answers

let all_strategies k =
  [
    ("exact", Exec.exact_strategy);
    ("sso", { Exec.sort_on_score = true; bucketize = false; prune_k = Some k; prune_slack = 0.0 });
    ("hybrid", { Exec.sort_on_score = false; bucketize = true; prune_k = Some k; prune_slack = 0.0 });
  ]

let test_strategies_agree_on_topk () =
  let d, idx, st = make_env (Xmark.Articles.doc ~seed:12 ~count:60 ()) in
  let q = q1 () in
  let env = exec_env d idx st q in
  let k = 10 in
  let enc = Encoded.of_ops_exn q [ Op.Contains_promotion (4, kw); Op.Subtree_promotion 3 ] in
  let top answers =
    answers
    |> List.sort (fun (a : Exec.answer) b ->
           match Float.compare b.Exec.sscore a.Exec.sscore with
           | 0 -> Int.compare a.Exec.target b.Exec.target
           | c -> c)
    |> List.filteri (fun i _ -> i < k)
    |> List.map (fun (a : Exec.answer) -> (a.Exec.target, Float.round (a.Exec.sscore *. 1e6)))
  in
  let reference = top (Exec.run env enc Exec.exact_strategy) in
  List.iter
    (fun (name, strategy) ->
      let got = top (Exec.run env enc strategy) in
      check_bool (name ^ " agrees") true (got = reference))
    (all_strategies k)

let test_metrics_reflect_strategy () =
  let d, idx, st = make_env (Xmark.Articles.doc ~seed:12 ~count:60 ()) in
  let q = q1 () in
  let env = exec_env d idx st q in
  let enc = Encoded.of_ops_exn q [ Op.Contains_promotion (4, kw) ] in
  let run strategy =
    let m = Exec.fresh_metrics () in
    ignore (Exec.run ~metrics:m env enc strategy);
    m
  in
  let m_exact = run Exec.exact_strategy in
  let m_sso = run { Exec.sort_on_score = true; bucketize = false; prune_k = Some 5; prune_slack = 0.0 } in
  let m_hyb = run { Exec.sort_on_score = false; bucketize = true; prune_k = Some 5; prune_slack = 0.0 } in
  check_int "exact does not sort" 0 m_exact.Exec.score_sorted_tuples;
  check_bool "sso sorts" true (m_sso.Exec.score_sorted_tuples > 0);
  check_int "hybrid does not sort" 0 m_hyb.Exec.score_sorted_tuples;
  check_bool "hybrid buckets" true (m_hyb.Exec.buckets_touched > 0);
  check_bool "pruning happens" true (m_sso.Exec.tuples_pruned > 0 || m_hyb.Exec.tuples_pruned > 0)

let test_pruning_preserves_topk_scores () =
  (* with prune_k = K, the best K answers must survive with unchanged
     scores *)
  let d, idx, st = make_env (Xmark.Auction.doc ~seed:5 ~items:60 ()) in
  let q = Xpath.parse_exn "//item[./description/parlist and ./mailbox/mail/text]" in
  let env = exec_env d idx st q in
  let enc = Encoded.of_ops_exn q [ Op.Axis_generalization 3 ] in
  let k = 8 in
  let sorted answers =
    answers
    |> List.sort (fun (a : Exec.answer) b ->
           match Float.compare b.Exec.sscore a.Exec.sscore with
           | 0 -> Int.compare a.Exec.target b.Exec.target
           | c -> c)
  in
  let full = sorted (Exec.run env enc Exec.exact_strategy) in
  let pruned =
    sorted (Exec.run env enc { Exec.sort_on_score = false; bucketize = false; prune_k = Some k; prune_slack = 0.0 })
  in
  let take n l = List.filteri (fun i _ -> i < n) l in
  let key (a : Exec.answer) = (a.Exec.target, Float.round (a.Exec.sscore *. 1e6)) in
  check_bool "top-k preserved" true
    (List.map key (take k full) = List.map key (take k pruned))

(* ------------------------------------------------------------------ *)
(* Edge cases *)

let test_exec_wildcard_root () =
  let d, idx, st = make_env (Doc.of_tree (el "r" [ el "a" [ el "b" [] ]; el "b" [] ])) in
  let q = Xpath.parse_exn "//*[./b]" in
  let env = exec_env d idx st q in
  let got = targets (Exec.run env (Encoded.of_ops_exn q []) Exec.exact_strategy) in
  check_ilist "wildcard root" (Semantics.answers d idx q) got

let test_exec_single_var_query () =
  let d, idx, st = make_env (Doc.of_tree (el "r" [ el "a" []; el "a" [] ])) in
  let q = Xpath.parse_exn "//a" in
  let env = exec_env d idx st q in
  check_int "two answers" 2 (List.length (Exec.run env (Encoded.of_ops_exn q []) Exec.exact_strategy))

let test_exec_no_matches () =
  let d, idx, st = make_env (Doc.of_tree (el "r" [ el "a" [] ])) in
  let q = Xpath.parse_exn "//zzz[./a]" in
  let env = exec_env d idx st q in
  check_int "empty" 0 (List.length (Exec.run env (Encoded.of_ops_exn q []) Exec.exact_strategy))

let test_exec_nested_optional_chain () =
  (* delete a whole branch bottom-up: both vars become optional and the
     child stays anchored under the (optional) parent *)
  let d, idx, st =
    make_env
      (Doc.of_tree
         (el "r"
            [
              el "a" [ el "b" [ el "c" [] ] ];
              el "a" [ el "b" [] ];
              el "a" [];
            ]))
  in
  let q = Xpath.parse_exn "//a[./b/c]" in
  let env = exec_env d idx st q in
  let enc = Encoded.of_ops_exn q [ Op.Leaf_deletion 3; Op.Leaf_deletion 2 ] in
  let answers = Exec.run env enc Exec.exact_strategy in
  check_int "all three a's" 3 (List.length answers);
  (* the a with the full chain scores highest, bare a lowest *)
  let score_of target =
    (List.find (fun (a : Exec.answer) -> a.Exec.target = target) answers).Exec.sscore
  in
  check_bool "full chain best" true (score_of 1 > score_of 4 && score_of 4 > score_of 6)

let test_exec_same_tag_parent_child () =
  (* parlist under parlist: query and document share tags *)
  let d, idx, st =
    make_env (Doc.of_tree (el "r" [ el "p" [ el "p" [ el "p" [] ] ] ]))
  in
  let q = Xpath.parse_exn "//p[./p]" in
  let env = exec_env d idx st q in
  let got = targets (Exec.run env (Encoded.of_ops_exn q []) Exec.exact_strategy) in
  check_ilist "self-nested tags" (Semantics.answers d idx q) got

let test_exec_attr_filter () =
  let d, idx, st =
    make_env
      (Doc.of_tree
         (el "r" [ el "x" ~attrs:[ ("v", "3") ] []; el "x" ~attrs:[ ("v", "30") ] [] ]))
  in
  let q = Xpath.parse_exn "//x[@v < 10]" in
  let env = exec_env d idx st q in
  check_int "attr filtered" 1 (List.length (Exec.run env (Encoded.of_ops_exn q []) Exec.exact_strategy))

let () =
  Alcotest.run "joins"
    [
      ( "structural-join",
        [
          Alcotest.test_case "ad pairs vs naive" `Quick test_ad_pairs_match_naive;
          Alcotest.test_case "pc pairs vs naive" `Quick test_pc_pairs_match_naive;
          Alcotest.test_case "nested ancestors" `Quick test_ad_pairs_nested_ancestors;
          Alcotest.test_case "empty inputs" `Quick test_ad_pairs_empty_inputs;
          Alcotest.test_case "subtree slice" `Quick test_subtree_slice;
          Alcotest.test_case "children with tag" `Quick test_children_with_tag;
          Alcotest.test_case "pc pairs deep recursion stays linear" `Quick
            test_pc_pairs_deep_recursive;
          Alcotest.test_case "pc pairs shared element" `Quick
            test_pc_pairs_shared_element_in_both_inputs;
          Alcotest.test_case "children with tag, nested same tag" `Quick
            test_children_with_tag_nested_same_tag;
        ] );
      ( "encoded",
        [
          Alcotest.test_case "exact" `Quick test_encoded_exact;
          Alcotest.test_case "axis generalization" `Quick test_encoded_axis_gen;
          Alcotest.test_case "leaf deletion optional" `Quick test_encoded_leaf_deletion_is_optional;
          Alcotest.test_case "subtree promotion" `Quick test_encoded_subtree_promotion;
          Alcotest.test_case "contains promotion" `Quick test_encoded_contains_promotion;
          Alcotest.test_case "deleted distinguished" `Quick test_encoded_deleted_distinguished;
          Alcotest.test_case "bad ops" `Quick test_encoded_bad_ops;
        ] );
      ( "exec",
        [
          Alcotest.test_case "exact = reference semantics" `Quick test_exec_exact_matches_semantics;
          Alcotest.test_case "relaxed = reference semantics" `Quick test_exec_relaxed_matches_semantics;
          Alcotest.test_case "exact answers score base" `Quick test_exec_scores_exact_answers_full;
          Alcotest.test_case "relaxed answers score lower" `Quick test_exec_relaxed_scores_lower;
          Alcotest.test_case "satisfied predicate sets" `Quick test_exec_satisfied_sets;
          Alcotest.test_case "strategies agree on top-k" `Quick test_strategies_agree_on_topk;
          Alcotest.test_case "metrics reflect strategy" `Quick test_metrics_reflect_strategy;
          Alcotest.test_case "pruning preserves top-k" `Quick test_pruning_preserves_topk_scores;
        ] );
      ( "edge-cases",
        [
          Alcotest.test_case "wildcard root" `Quick test_exec_wildcard_root;
          Alcotest.test_case "single variable" `Quick test_exec_single_var_query;
          Alcotest.test_case "no matches" `Quick test_exec_no_matches;
          Alcotest.test_case "nested optional chain" `Quick test_exec_nested_optional_chain;
          Alcotest.test_case "self-nested tags" `Quick test_exec_same_tag_parent_child;
          Alcotest.test_case "attribute filter" `Quick test_exec_attr_filter;
        ] );
    ]
