(* The query server end to end, over real sockets:

   - lifecycle: start from a snapshot, PING/QUERY/STATS, graceful
     SHUTDOWN with the listener actually released;
   - admission control: a full queue answers OVERLOADED immediately
     instead of hanging the client;
   - per-request governance: budgets truncate to PARTIAL with a sound
     bound, request options override server defaults per axis;
   - hot reload: RELOAD swaps the environment mid-traffic with zero
     failed in-flight requests, and a corrupt snapshot never replaces
     the serving one;
   - concurrent determinism: parallel connections over the shared
     environment produce byte-identical answers to a sequential run;
   - the server_accept / server_read / server_worker failpoints each
     exercise their error path without killing the server;
   - self-healing (DESIGN.md §4g): a wedged or dead worker is declared
     lost and replaced within the hard wall, a query shape that keeps
     costing workers is quarantined, queued connections past their
     sojourn deadline are shed with a retry hint, the retrying client
     survives injected faults and overload within its budget, and a
     randomized chaos soak proves none of it leaks capacity;
   - live ingestion (DESIGN.md §4h): framed INGEST/DELETE/MERGE over
     the wire, WAL-durable acks visible to the next QUERY, restart
     replay to exactly the acked set, the wal_append / wal_fsync /
     merge_publish failpoints each leaving a consistent store, and a
     mixed query+write chaos soak whose quiesced corpus answers
     byte-identically to an offline rebuild of the acked documents. *)

module Server = Flexpath_server.Server
module Protocol = Flexpath_server.Protocol
module Admission = Flexpath_server.Admission
module Reservoir = Flexpath_server.Reservoir
module Metrics = Flexpath_server.Metrics
module Client = Flexpath_server.Client
module Env = Flexpath.Env
module Error = Flexpath.Error
module Guard = Flexpath.Guard
module Failpoint = Flexpath.Failpoint
module Monotime = Flexpath.Monotime

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* [String.is_infix]/[is_prefix] without an [Astring] dependency. *)
let has_prefix ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let has_infix ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let make_env ?(seed = 7) ?(count = 30) () = Env.make (Xmark.Articles.doc ~seed ~count ())

let save_snapshot env =
  let path = Filename.temp_file "flexpath_server_test" ".env" in
  (match Flexpath.Storage.save env path with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Error.to_string e));
  path

let with_server ?(cfg = Server.default_config) env f =
  match Server.create cfg ~env with
  | Error e -> Alcotest.fail (Error.to_string e)
  | Ok srv ->
    let d = Domain.spawn (fun () -> Server.serve srv) in
    Fun.protect
      ~finally:(fun () ->
        Server.stop srv;
        Domain.join d)
      (fun () -> f srv)

(* ------------------------------------------------------------------ *)
(* A minimal blocking client *)

type client = { fd : Unix.file_descr; ic : in_channel }

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  { fd; ic = Unix.in_channel_of_descr fd }

let send c line =
  let s = line ^ "\n" in
  let n = String.length s in
  let rec go off = if off < n then go (off + Unix.write_substring c.fd s off (n - off)) in
  go 0

(* A dropped connection may arrive as EOF or, when the server closed
   with our request bytes unread, as a reset ([Sys_error]); both mean
   "no response". *)
let recv c =
  let read_line () =
    match input_line c.ic with
    | l -> Some l
    | exception (End_of_file | Sys_error _) -> None
  in
  let read_bytes n =
    let b = Bytes.create n in
    match really_input c.ic b 0 n with
    | () -> Some (Bytes.to_string b)
    | exception (End_of_file | Sys_error _) -> None
  in
  Protocol.read_response ~read_line ~read_bytes

let request c line =
  send c line;
  recv c

let request_exn c line =
  match request c line with
  | Some r -> r
  | None -> Alcotest.fail (Printf.sprintf "connection closed before a response to %S" line)

(* [in_channel_of_descr] owns the descriptor: closing the channel
   closes the socket. *)
let close c = try close_in c.ic with Sys_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Substrate units: the admission queue and the latency reservoir *)

let test_admission_queue () =
  let q = Admission.create ~capacity:2 in
  check_bool "push 1" true (Admission.try_push q 1 = `Admitted);
  check_bool "push 2" true (Admission.try_push q 2 = `Admitted);
  check_bool "push over capacity is rejected" true (Admission.try_push q 3 = `Full);
  check_int "depth" 2 (Admission.length q);
  Admission.close q;
  check_bool "push after close" true (Admission.try_push q 4 = `Closed);
  check_bool "drain 1" true (Admission.pop q = Some 1);
  check_bool "drain 2" true (Admission.pop q = Some 2);
  check_bool "drained queue reports closed" true (Admission.pop q = None)

let test_reservoir () =
  let r = Reservoir.create ~capacity:128 () in
  check_bool "empty percentile is nan" true (Float.is_nan (Reservoir.percentile r 50.0));
  for i = 1 to 100 do
    Reservoir.add r (float_of_int i)
  done;
  check_int "count" 100 (Reservoir.count r);
  check_bool "p0 is the minimum" true (Reservoir.percentile r 0.0 = 1.0);
  check_bool "p100 is the maximum" true (Reservoir.percentile r 100.0 = 100.0);
  let p50 = Reservoir.percentile r 50.0 in
  check_bool "p50 is central" true (p50 > 45.0 && p50 < 56.0);
  (* Overflow the capacity: percentiles stay in range, memory stays
     fixed. *)
  for i = 101 to 10_000 do
    Reservoir.add r (float_of_int i)
  done;
  let p50 = Reservoir.percentile r 50.0 in
  check_bool "sampled p50 within the stream's range" true (p50 >= 1.0 && p50 <= 10_000.0)

let test_reservoir_divergence () =
  (* Each reservoir seeds its own sampler: two instances fed the same
     over-capacity stream must keep different samples — identical
     percentiles across endpoints under identical load would mean the
     old shared-state bias is back. *)
  let a = Reservoir.create ~capacity:128 () in
  let b = Reservoir.create ~capacity:128 () in
  for i = 1 to 10_000 do
    let x = float_of_int i in
    Reservoir.add a x;
    Reservoir.add b x
  done;
  let differs =
    List.exists
      (fun p -> Reservoir.percentile a p <> Reservoir.percentile b p)
      [ 10.0; 25.0; 50.0; 75.0; 90.0 ]
  in
  check_bool "independently seeded reservoirs sample differently" true differs

(* ------------------------------------------------------------------ *)
(* Lifecycle *)

let query_line = "QUERY k=3 //article[.contains(\"xml\" and \"streaming\")]"

let test_lifecycle () =
  let env = make_env () in
  let snap = save_snapshot env in
  let env, _ = Result.get_ok (Flexpath.Storage.load snap) in
  let cfg = { Server.default_config with workers = 2; snapshot = Some snap } in
  let port = ref 0 in
  with_server ~cfg env (fun srv ->
      port := Server.port srv;
      let c = connect !port in
      let status, body = request_exn c "PING" in
      check_string "ping status" "OK" (Protocol.status_to_string status);
      check_string "ping body" "pong" body;
      let status, body = request_exn c query_line in
      check_string "query status" "OK" (Protocol.status_to_string status);
      check_bool "query body has answers" true (String.length body > 0);
      let status, body = request_exn c "STATS" in
      check_string "stats status" "OK" (Protocol.status_to_string status);
      check_bool "stats reports served requests" true
        (String.length body > 0
        && has_infix ~affix:"requests_served" body
        && has_infix ~affix:"latency_ms query" body);
      (* Endpoints with no samples yet render a bare count, never nan
         percentiles. *)
      check_bool "unsampled endpoint renders count=0" true
        (has_infix ~affix:"latency_ms relax count=0" body);
      check_bool "stats is nan-free" false (has_infix ~affix:"nan" body);
      let status, _ = request_exn c "SHUTDOWN" in
      check_string "shutdown status" "BYE" (Protocol.status_to_string status);
      close c);
  (* [with_server]'s finally joined the serve domain, so the listener
     is released: a fresh connection must be refused, not served. *)
  (match connect !port with
  | c ->
    close c;
    Alcotest.fail "connection accepted after shutdown"
  | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> ());
  Sys.remove snap

let test_protocol_errors () =
  with_server (make_env ()) (fun srv ->
      let c = connect (Server.port srv) in
      let status, body = request_exn c "NONSENSE" in
      check_string "unknown verb is ERR" "ERR" (Protocol.status_to_string status);
      check_bool "names the verb" true (has_infix ~affix:"NONSENSE" body);
      let status, body = request_exn c "QUERY //[" in
      check_string "bad xpath is ERR" "ERR" (Protocol.status_to_string status);
      check_bool "query error names the offset" true
        (has_infix ~affix:"offset" body);
      let status, _ = request_exn c "QUERY k=nope //a" in
      check_string "bad option is ERR" "ERR" (Protocol.status_to_string status);
      let status, _ = request_exn c "PING extra" in
      check_string "ping with arguments is ERR" "ERR" (Protocol.status_to_string status);
      (* The connection survives protocol errors. *)
      let status, _ = request_exn c "PING" in
      check_string "still serving" "OK" (Protocol.status_to_string status);
      close c)

(* ------------------------------------------------------------------ *)
(* Governance: per-request budgets and server defaults *)

let test_budget_truncation () =
  with_server (make_env ()) (fun srv ->
      let c = connect (Server.port srv) in
      let status, body = request_exn c "QUERY steps=0 //article[./section/paragraph]" in
      check_string "exhausted budget is PARTIAL" "PARTIAL" (Protocol.status_to_string status);
      check_bool "PARTIAL opens with the truncation header" true
        (has_prefix ~prefix:"# truncated reason=" body);
      check_bool "reports a score bound" true
        (has_infix ~affix:"score_bound=" body);
      close c)

let test_budget_override () =
  (* Server default: step budget 0, so every query truncates — unless
     the request raises its own step budget, which must win. *)
  let cfg =
    {
      Server.default_config with
      default_budget = Guard.budget ~step_budget:0 ();
      workers = 1;
    }
  in
  with_server ~cfg (make_env ()) (fun srv ->
      let c = connect (Server.port srv) in
      let status, _ = request_exn c "QUERY //article[./section/paragraph]" in
      check_string "server default budget applies" "PARTIAL" (Protocol.status_to_string status);
      let status, _ = request_exn c "QUERY steps=64 //article[./section/paragraph]" in
      check_string "request override wins" "OK" (Protocol.status_to_string status);
      close c)

(* ------------------------------------------------------------------ *)
(* Admission control *)

let test_overload_fast_reject () =
  (* Under the event loop an idle connection costs nothing — requests,
     not connections, occupy workers.  Saturate deterministically:
     [a]'s request wedges the only worker, [b]'s request fills the
     queue, and [c]'s request must then be told OVERLOADED immediately
     rather than hang.  Supervision later clears the wedge so [b]'s
     queued request still drains. *)
  let cfg =
    {
      Server.default_config with
      workers = 1;
      queue_depth = 1;
      hard_wall_ms = 1000.0;
      quarantine_strikes = 0;
    }
  in
  with_server ~cfg (make_env ()) (fun srv ->
      let port = Server.port srv in
      (match Failpoint.activate_n "worker_wedge" 1 with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg);
      let a = connect port in
      send a query_line;
      (* Let the worker pop and wedge on [a]'s request before [b]
         queues, so the roles cannot swap. *)
      Unix.sleepf 0.2;
      let b = connect port in
      send b "PING";
      let c = connect port in
      send c "PING";
      (match recv c with
      | Some (Protocol.Overloaded, _) -> ()
      | Some (status, _) ->
        Alcotest.fail ("expected OVERLOADED, got " ^ Protocol.status_to_string status)
      | None -> Alcotest.fail "expected an OVERLOADED response, got EOF");
      check_bool "rejected connection is closed" true (recv c = None);
      close c;
      (* The supervisor claims the wedged worker ([a]'s connection is
         dropped) and its replacement drains [b]'s queued request. *)
      check_bool "wedged connection is closed unanswered" true (recv a = None);
      close a;
      (match recv b with
      | Some (Protocol.Ok_, body) -> check_string "queued connection drains" "pong" body
      | Some (status, _) ->
        Alcotest.fail ("expected the queued PING served, got " ^ Protocol.status_to_string status)
      | None -> Alcotest.fail "queued connection was dropped instead of served");
      let status, body = request_exn b "STATS" in
      check_string "stats ok" "OK" (Protocol.status_to_string status);
      check_bool "the reject was counted" true
        (has_infix ~affix:"connections_rejected: 1" body);
      check_bool "the loop gauges are rendered" true
        (has_infix ~affix:"open_connections:" body && has_infix ~affix:"loop_lag_ms" body);
      close b)

(* ------------------------------------------------------------------ *)
(* Concurrent determinism: N parallel connections issuing the same
   query set must produce byte-identical bodies to a sequential run. *)

let determinism_queries =
  [
    "QUERY k=5 //article[.contains(\"xml\" and \"streaming\")]";
    "QUERY k=3 algo=dpo //article[./section/paragraph]";
    "QUERY k=3 algo=sso //article[./section/paragraph]";
    "QUERY k=10 scheme=combined //article[./section[./algorithm]]";
    "RELAX steps=3 //article[./section/paragraph]";
    "QUERY k=4 steps=1 //article[./section[./paragraph[.contains(\"query\")]]]";
  ]

let run_query_set port =
  let c = connect port in
  let results =
    List.map
      (fun q ->
        let status, body = request_exn c q in
        Protocol.status_to_string status ^ "\n" ^ body)
      determinism_queries
  in
  close c;
  results

let test_concurrent_determinism () =
  let cfg = { Server.default_config with workers = 4 } in
  with_server ~cfg (make_env ~count:60 ()) (fun srv ->
      let port = Server.port srv in
      let sequential = run_query_set port in
      let domains = Array.init 4 (fun _ -> Domain.spawn (fun () -> run_query_set port)) in
      let parallel = Array.map Domain.join domains in
      Array.iteri
        (fun d results ->
          List.iteri
            (fun i (expected, got) ->
              check_string (Printf.sprintf "domain %d, query %d" d i) expected got)
            (List.combine sequential results))
        parallel)

(* ------------------------------------------------------------------ *)
(* Hot reload *)

let test_reload_mid_traffic () =
  let env1 = make_env ~seed:7 ~count:30 () in
  let env2 = make_env ~seed:8 ~count:50 () in
  let snap1 = save_snapshot env1 in
  let snap2 = save_snapshot env2 in
  let cfg = { Server.default_config with workers = 3; snapshot = Some snap1 } in
  with_server ~cfg env1 (fun srv ->
      let port = Server.port srv in
      (* Three domains of continuous traffic; the main thread swaps the
         environment twice underneath them.  Every in-flight request
         must complete with OK or PARTIAL — never an error, never a
         dropped connection. *)
      let traffic () =
        let c = connect port in
        let failures = ref 0 in
        for _ = 1 to 25 do
          match request c query_line with
          | Some ((Protocol.Ok_ | Protocol.Partial), _) -> ()
          | Some _ | None -> incr failures
        done;
        close c;
        !failures
      in
      let domains = Array.init 3 (fun _ -> Domain.spawn traffic) in
      let ctl = connect port in
      let status, body = request_exn ctl (Printf.sprintf "RELOAD %s" snap2) in
      check_string "reload to snap2" "OK" (Protocol.status_to_string status);
      check_bool "reload reports its generation" true
        (has_infix ~affix:"generation 2" body);
      (* A bare RELOAD re-reads the snapshot the server started from. *)
      let status, body = request_exn ctl "RELOAD" in
      check_string "bare reload" "OK" (Protocol.status_to_string status);
      check_bool "bare reload targets the origin snapshot" true
        (has_infix ~affix:snap1 body);
      let failed = Array.fold_left (fun acc d -> acc + Domain.join d) 0 domains in
      check_int "zero failed in-flight requests across both reloads" 0 failed;
      check_int "generation reflects both reloads" 3 (Server.generation srv);
      (* A corrupt snapshot is rejected and the serving environment
         survives. *)
      let garbage = Filename.temp_file "flexpath_server_test" ".env" in
      let oc = open_out garbage in
      output_string oc "not a snapshot";
      close_out oc;
      let status, _ = request_exn ctl (Printf.sprintf "RELOAD %s" garbage) in
      check_string "corrupt snapshot is ERR" "ERR" (Protocol.status_to_string status);
      check_int "generation unchanged after failed reload" 3 (Server.generation srv);
      let status, _ = request_exn ctl query_line in
      check_string "still serving after failed reload" "OK" (Protocol.status_to_string status);
      Sys.remove garbage);
  Sys.remove snap1;
  Sys.remove snap2

(* ------------------------------------------------------------------ *)
(* Failpoints: every server error path, deterministically *)

let with_failpoint name f =
  (match Failpoint.activate name with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  Fun.protect ~finally:(fun () -> Failpoint.deactivate name) f

(* ------------------------------------------------------------------ *)
(* The query cache behind the server *)

let test_cache_serves_repeat_without_executor () =
  let cfg = { Server.default_config with workers = 1 } in
  with_server ~cfg (make_env ()) (fun srv ->
      let c = connect (Server.port srv) in
      let status, cold = request_exn c query_line in
      check_string "cold query" "OK" (Protocol.status_to_string status);
      (* With the executor failpoint armed, the repeated query can only
         succeed if it never reaches the executor — i.e. it is served
         from the answer tier. *)
      with_failpoint "exec.run" (fun () ->
          let status, warm = request_exn c query_line in
          check_string "repeat served from the cache" "OK" (Protocol.status_to_string status);
          check_string "cached body is byte-identical" cold warm;
          let status, body = request_exn c "QUERY k=3 //section[./algorithm]" in
          check_string "uncached shape does reach the executor" "ERR"
            (Protocol.status_to_string status);
          check_bool "and trips the armed failpoint" true (has_infix ~affix:"exec.run" body));
      let status, body = request_exn c "STATS" in
      check_string "stats ok" "OK" (Protocol.status_to_string status);
      check_bool "the hit was counted" true (has_infix ~affix:"cache_hits: 1" body);
      close c)

let test_reload_invalidates_cache () =
  let env1 = make_env ~seed:7 ~count:30 () in
  let env2 = make_env ~seed:8 ~count:50 () in
  let snap1 = save_snapshot env1 in
  let snap2 = save_snapshot env2 in
  let cfg = { Server.default_config with workers = 1; snapshot = Some snap1 } in
  with_server ~cfg env1 (fun srv ->
      let c = connect (Server.port srv) in
      let status, body1 = request_exn c query_line in
      check_string "query against snap1" "OK" (Protocol.status_to_string status);
      let _, warm = request_exn c query_line in
      check_string "repeat is the cached answer" body1 warm;
      let _, body = request_exn c "STATS" in
      check_bool "warm hit counted before the reload" true
        (has_infix ~affix:"cache_hits: 1" body);
      let status, _ = request_exn c (Printf.sprintf "RELOAD %s" snap2) in
      check_string "reload" "OK" (Protocol.status_to_string status);
      (* Same query line, new snapshot: the answer must come from the
         new environment, not the old generation's cache. *)
      let status, body2 = request_exn c query_line in
      check_string "query against snap2" "OK" (Protocol.status_to_string status);
      check_bool "answers reflect the new snapshot" true (body1 <> body2);
      let _, body = request_exn c "STATS" in
      check_bool "zero stale hits after the swap" true (has_infix ~affix:"cache_hits: 0" body);
      close c);
  Sys.remove snap1;
  Sys.remove snap2

let test_failpoint_worker () =
  with_server (make_env ()) (fun srv ->
      let port = Server.port srv in
      with_failpoint "server_worker" (fun () ->
          let c = connect port in
          let status, body = request_exn c "PING" in
          check_string "dispatch fault is ERR" "ERR" (Protocol.status_to_string status);
          check_bool "names the failpoint" true
            (has_infix ~affix:"server_worker" body);
          close c);
      let c = connect port in
      let status, _ = request_exn c "PING" in
      check_string "recovers once disarmed" "OK" (Protocol.status_to_string status);
      close c)

let test_failpoint_read () =
  with_server (make_env ()) (fun srv ->
      let port = Server.port srv in
      with_failpoint "server_read" (fun () ->
          let c = connect port in
          send c "PING";
          check_bool "connection is dropped" true (recv c = None);
          close c);
      let c = connect port in
      let status, _ = request_exn c "PING" in
      check_string "recovers once disarmed" "OK" (Protocol.status_to_string status);
      close c)

let test_failpoint_accept () =
  with_server (make_env ()) (fun srv ->
      let port = Server.port srv in
      with_failpoint "server_accept" (fun () ->
          let c = connect port in
          send c "PING";
          check_bool "connection is closed unserved" true (recv c = None);
          close c);
      let c = connect port in
      let status, _ = request_exn c "PING" in
      check_string "accept loop survives" "OK" (Protocol.status_to_string status);
      close c)

(* ------------------------------------------------------------------ *)
(* Self-healing: supervision, quarantine, shedding (DESIGN.md §4g) *)

let arm_n point n =
  match Failpoint.activate_n point n with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let wait_for ?(timeout_ms = 5000.0) pred =
  let clock = Monotime.create () in
  let rec go () =
    pred ()
    ||
    if Monotime.elapsed_ms clock > timeout_ms then false
    else begin
      Unix.sleepf 0.01;
      go ()
    end
  in
  go ()

let snapshot srv = Metrics.snapshot (Server.metrics srv)

(* One worker loss, end to end: the wedged worker's connection is
   closed unanswered, the supervisor claims the worker within the hard
   wall and a replacement restores full pool capacity. *)
let test_wedge_recovery () =
  let cfg =
    {
      Server.default_config with
      workers = 2;
      hard_wall_ms = 500.0;
      quarantine_strikes = 0 (* isolate supervision from quarantining *);
    }
  in
  with_server ~cfg (make_env ()) (fun srv ->
      let port = Server.port srv in
      arm_n "worker_wedge" 1;
      let clock = Monotime.create () in
      let c = connect port in
      send c query_line;
      (* The wedged worker notices it was superseded and closes this
         connection; the client must never be left hanging. *)
      check_bool "wedged connection is closed unanswered" true (recv c = None);
      close c;
      check_bool "lost worker replaced within 2x the hard wall" true
        (wait_for
           ~timeout_ms:(Float.max 0.0 ((2.0 *. cfg.hard_wall_ms) -. Monotime.elapsed_ms clock))
           (fun () ->
             let s = snapshot srv in
             s.lost = 1 && s.respawned = 1));
      (* Full capacity: both pool positions serve simultaneously held
         connections. *)
      let a = connect port in
      let b = connect port in
      send a "PING";
      send b "PING";
      check_bool "slot 1 serves" true (recv a <> None);
      check_bool "slot 2 serves" true (recv b <> None);
      close a;
      close b;
      check_bool "admission capacity drains" true
        (wait_for (fun () -> Server.active_connections srv = 0)))

(* A dying worker domain (uncaught-crash mode) is recovered without
   waiting out the hard wall: Dead heartbeats are claimed on the next
   scan. *)
let test_worker_die_recovery () =
  let cfg = { Server.default_config with workers = 1; hard_wall_ms = 400.0 } in
  with_server ~cfg (make_env ()) (fun srv ->
      let port = Server.port srv in
      arm_n "worker_die" 1;
      let c = connect port in
      send c query_line;
      check_bool "dying worker's connection is closed unanswered" true (recv c = None);
      close c;
      check_bool "dead domain claimed and replaced" true
        (wait_for (fun () ->
             let s = snapshot srv in
             s.lost = 1 && s.respawned = 1));
      (* With a one-worker pool, any service at all proves the
         replacement took the position. *)
      let c = connect port in
      let status, _ = request_exn c "PING" in
      check_string "replacement serves" "OK" (Protocol.status_to_string status);
      close c;
      check_bool "admission capacity drains" true
        (wait_for (fun () -> Server.active_connections srv = 0)))

(* The same query shape costing [quarantine_strikes] workers is then
   fast-rejected QUARANTINED — provably before evaluation: with the
   executor failpoint armed, the quarantined shape still answers
   QUARANTINED while a different shape trips the injected fault. *)
let test_quarantine () =
  let cfg =
    { Server.default_config with workers = 1; hard_wall_ms = 300.0; quarantine_strikes = 2 }
  in
  with_server ~cfg (make_env ()) (fun srv ->
      let port = Server.port srv in
      arm_n "worker_wedge" 2;
      for i = 1 to 2 do
        let c = connect port in
        send c query_line;
        check_bool (Printf.sprintf "loss %d closes the connection" i) true (recv c = None);
        close c;
        check_bool
          (Printf.sprintf "loss %d repaired" i)
          true
          (wait_for (fun () -> (snapshot srv).respawned = i))
      done;
      with_failpoint "exec.run" (fun () ->
          let c = connect port in
          let status, body = request_exn c query_line in
          check_string "third attempt is QUARANTINED" "QUARANTINED"
            (Protocol.status_to_string status);
          check_bool "body reports the strike count" true
            (has_infix ~affix:"2 worker loss" body);
          (* The connection survives a quarantine reject, and a
             different shape still reaches the (faulted) executor. *)
          let status, body = request_exn c "QUERY k=3 //section[./algorithm]" in
          check_string "different shape reaches evaluation" "ERR"
            (Protocol.status_to_string status);
          check_bool "and trips the armed executor fault" true (has_infix ~affix:"exec.run" body);
          close c);
      check_int "quarantine reject counted" 1 (snapshot srv).quarantine_rejects)

(* Queue-deadline shedding: a connection whose queue sojourn exceeded
   the bound is answered OVERLOADED with a retry hint instead of being
   served — the worker never spends execution on it. *)
let test_queue_deadline_shed () =
  let cfg =
    {
      Server.default_config with
      workers = 1;
      queue_depth = 4;
      queue_deadline_ms = Some 100.0;
      hard_wall_ms = 400.0;
      quarantine_strikes = 0;
    }
  in
  with_server ~cfg (make_env ()) (fun srv ->
      let port = Server.port srv in
      (* [a]'s request wedges the only worker; [b]'s request queues and
         goes stale behind it.  The replacement worker spawned after
         the hard wall finds [b]'s job over its sojourn bound and sheds
         it instead of serving it. *)
      (match Failpoint.activate_n "worker_wedge" 1 with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg);
      let a = connect port in
      send a query_line;
      Unix.sleepf 0.15;
      let b = connect port in
      send b "PING";
      check_bool "wedged connection is closed unanswered" true (recv a = None);
      close a;
      (match recv b with
      | Some (Protocol.Overloaded, body) -> (
        match Protocol.parse_retry_after body with
        | Some ms -> check_bool "retry hint is positive" true (ms > 0)
        | None -> Alcotest.fail "shed response carries no retry-after-ms")
      | Some (status, _) ->
        Alcotest.fail ("expected OVERLOADED, got " ^ Protocol.status_to_string status)
      | None -> Alcotest.fail "expected an OVERLOADED response, got EOF");
      check_bool "shed connection is closed" true (recv b = None);
      close b;
      (* A fresh connection is served promptly afterwards. *)
      let c = connect port in
      let status, _ = request_exn c "PING" in
      check_string "fresh connection served" "OK" (Protocol.status_to_string status);
      close c;
      check_int "the shed was counted" 1 (snapshot srv).shed;
      check_bool "admission capacity drains" true
        (wait_for (fun () -> Server.active_connections srv = 0)))

(* ------------------------------------------------------------------ *)
(* The retrying client *)

let test_client_deadline_rewrite () =
  check_string "inserted when absent" "QUERY timeout_ms=500.000 k=3 //a"
    (Client.with_deadline "QUERY k=3 //a" 500.0);
  check_string "loose explicit value tightened" "QUERY timeout_ms=200.000 //a"
    (Client.with_deadline "QUERY timeout_ms=9000 //a" 200.0);
  check_string "tighter explicit value kept" "QUERY timeout_ms=50.000 //a"
    (Client.with_deadline "QUERY timeout_ms=50 //a" 200.0);
  check_string "xpath internals untouched"
    "QUERY timeout_ms=100.000 //a[.contains(\"x\" and \"y\")]"
    (Client.with_deadline "QUERY //a[.contains(\"x\" and \"y\")]" 100.0);
  check_string "non-QUERY lines verbatim" "PING" (Client.with_deadline "PING" 100.0);
  check_string "RELAX lines verbatim" "RELAX steps=2 //a"
    (Client.with_deadline "RELAX steps=2 //a" 100.0)

(* An injected send fault costs one attempt, not the run: the client
   reconnects, retries, and the retry is counted. *)
let test_client_send_retry () =
  with_server (make_env ()) (fun srv ->
      arm_n "client_send" 1;
      let retry =
        { Client.default_retry with retries = 2; budget_ms = Some 5000.0; base_backoff_ms = 5.0 }
      in
      (match
         Client.run ~metrics:(Server.metrics srv)
           ~rng:(Random.State.make [| 42 |])
           ~port:(Server.port srv) ~retry [ "PING"; "PING" ]
       with
      | Ok [ (s1, b1); (s2, b2) ] ->
        check_string "first response" "OK" (Protocol.status_to_string s1);
        check_string "first body" "pong" b1;
        check_string "second response" "OK" (Protocol.status_to_string s2);
        check_string "second body" "pong" b2
      | Ok rs -> Alcotest.failf "expected 2 responses, got %d" (List.length rs)
      | Error (f, _) -> Alcotest.fail (Client.failure_to_string f));
      check_int "exactly one retry" 1 (snapshot srv).retries)

(* OVERLOADED is retried with backoff honoring the server's hint: once
   the saturation clears, the same run completes successfully. *)
let test_client_overload_retry () =
  let cfg =
    {
      Server.default_config with
      workers = 1;
      queue_depth = 1;
      hard_wall_ms = 400.0;
      quarantine_strikes = 0;
    }
  in
  with_server ~cfg (make_env ()) (fun srv ->
      let port = Server.port srv in
      (* [a]'s request wedges the only worker, [b]'s request fills the
         queue: the client's first attempt is fast-rejected.
         Supervision clears the saturation (replacement worker drains
         [b]) while the client is backing off. *)
      (match Failpoint.activate_n "worker_wedge" 1 with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg);
      let a = connect port in
      send a query_line;
      Unix.sleepf 0.2;
      let b = connect port in
      send b "PING";
      let retry =
        {
          Client.retries = 8;
          budget_ms = Some 8000.0;
          base_backoff_ms = 20.0;
          max_backoff_ms = 200.0;
        }
      in
      (match
         Client.run ~metrics:(Server.metrics srv)
           ~rng:(Random.State.make [| 7 |])
           ~port ~retry [ "PING" ]
       with
      | Ok [ (s, body) ] ->
        check_string "eventually served" "OK" (Protocol.status_to_string s);
        check_string "served body" "pong" body
      | Ok _ -> Alcotest.fail "expected exactly one response"
      | Error (f, _) -> Alcotest.fail (Client.failure_to_string f));
      check_bool "wedged connection is closed unanswered" true (recv a = None);
      close a;
      close b;
      check_bool "the overloaded attempts were counted as retries" true
        ((snapshot srv).retries >= 1))

(* A budget with no capacity fails fast as Budget_exhausted rather
   than hanging or spinning. *)
let test_client_budget_exhausted () =
  with_server (make_env ()) (fun srv ->
      let retry = { Client.default_retry with retries = 5; budget_ms = Some 0.0 } in
      match Client.run ~port:(Server.port srv) ~retry [ "PING" ] with
      | Ok _ -> Alcotest.fail "a zero budget must not complete"
      | Error (Client.Budget_exhausted, completed) ->
        check_int "nothing completed" 0 (List.length completed)
      | Error (f, _) -> Alcotest.failf "expected Budget_exhausted, got %s"
                          (Client.failure_to_string f))

(* ------------------------------------------------------------------ *)
(* Chaos soak: randomized worker losses, read faults and snapshot
   faults under 500+ concurrent requests.  The assertions are about
   what must never happen — a hang, leaked admission capacity, a
   permanently shrunk pool, or a loss without a replacement. *)

let test_chaos_soak () =
  let env = make_env ~count:40 () in
  let snap_path = save_snapshot env in
  let cfg =
    {
      Server.default_config with
      workers = 4;
      queue_depth = 64;
      max_connections = 256;
      hard_wall_ms = 300.0;
      quarantine_strikes = 3;
      queue_deadline_ms = Some 2000.0;
      read_timeout_s = 5.0;
      snapshot = Some snap_path;
    }
  in
  with_server ~cfg env (fun srv ->
      let port = Server.port srv in
      let stop_inject = Atomic.make false in
      (* Counted arming (one hit per activation) is what keeps an
         injected wedge from also wedging the replacement worker. *)
      let injector =
        Domain.spawn (fun () ->
            let rng = Random.State.make [| 0xC0FFEE |] in
            let points =
              [| "worker_wedge"; "worker_die"; "server_read"; "storage_read_section" |]
            in
            while not (Atomic.get stop_inject) do
              Unix.sleepf (0.02 +. Random.State.float rng 0.08);
              ignore (Failpoint.activate_n points.(Random.State.int rng 4) 1)
            done)
      in
      let request_pool =
        [|
          query_line;
          "QUERY k=3 algo=dpo //article[./section/paragraph]";
          "RELAX steps=2 //article[./section/paragraph]";
          "PING";
          "RELOAD";
        |]
      in
      let drive seed () =
        let rng = Random.State.make [| seed |] in
        let settled = ref 0 in
        for _ = 1 to 64 do
          let line = request_pool.(Random.State.int rng (Array.length request_pool)) in
          match connect port with
          | exception Unix.Unix_error _ -> incr settled (* refused is a deterministic end too *)
          | c ->
            (* Any framed response — or a clean close — is acceptable;
               what is not acceptable is hanging (the run would never
               finish) or a protocol-level corruption (recv would
               produce garbage statuses, caught below as None). *)
            (match request c line with Some _ | None -> incr settled);
            close c
        done;
        !settled
      in
      let drivers = Array.init 8 (fun i -> Domain.spawn (drive (100 + i))) in
      let settled = Array.fold_left (fun acc d -> acc + Domain.join d) 0 drivers in
      Atomic.set stop_inject true;
      Domain.join injector;
      Failpoint.reset ();
      check_int "all 512 concurrent requests reached a deterministic end" 512 settled;
      (* Conservation: once traffic drains, no admitted connection may
         still be counted — sheds, losses and serves all settle the
         accounting exactly once. *)
      check_bool "admission capacity drains to zero" true
        (wait_for ~timeout_ms:10_000.0 (fun () -> Server.active_connections srv = 0));
      check_bool "every lost worker was replaced" true
        (wait_for ~timeout_ms:10_000.0 (fun () ->
             let s = snapshot srv in
             s.lost = s.respawned));
      (* Pool capacity is fully restored: [workers] simultaneously held
         connections must all be served. *)
      let held = Array.init cfg.workers (fun _ -> connect port) in
      Array.iter (fun c -> send c "PING") held;
      Array.iter
        (fun c ->
          match recv c with
          | Some (Protocol.Ok_, "pong") -> ()
          | _ -> Alcotest.fail "a worker position did not survive the soak")
        held;
      Array.iter close held;
      (* Deterministic quarantine coda on a shape the soak never used:
         three injected losses in a row, then the shape is refused. *)
      let poison = "QUERY k=2 //article[./title]" in
      for i = 1 to 3 do
        let before = (snapshot srv).respawned in
        arm_n "worker_wedge" 1;
        let c = connect port in
        send c poison;
        check_bool (Printf.sprintf "poison loss %d closes the connection" i) true (recv c = None);
        close c;
        check_bool
          (Printf.sprintf "poison loss %d repaired" i)
          true
          (wait_for (fun () -> (snapshot srv).respawned = before + 1))
      done;
      let c = connect port in
      let status, _ = request_exn c poison in
      check_string "poison shape quarantined" "QUARANTINED" (Protocol.status_to_string status);
      close c;
      let s = snapshot srv in
      check_bool "quarantine fired" true (s.quarantine_rejects >= 1);
      check_bool "losses and respawns balance after the coda" true (s.lost = s.respawned);
      check_bool "soak actually served traffic" true (s.served > 0);
      check_bool "final drain leaves zero active connections" true
        (wait_for (fun () -> Server.active_connections srv = 0)));
  Sys.remove snap_path

(* ------------------------------------------------------------------ *)
(* Live ingestion over the wire (DESIGN.md §4h) *)

module Ingest = Flexpath.Ingest

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let with_ingest_dir f =
  let dir = Filename.temp_file "flexpath_ingest_srv" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () -> f ~snap:(Filename.concat dir "snap.fxe") ~wal:(Filename.concat dir "wal.log"))

let ingest_cfg ?(merge_interval_ms = 0.0) ?(write_lane = 4) ~snap ~wal () =
  {
    Server.default_config with
    workers = 2;
    snapshot = Some snap;
    ingest = Some { (Server.ingest_defaults ~wal) with Server.merge_interval_ms; write_lane };
  }

let placeholder_env () =
  match Ingest.empty () with
  | Ok c -> Ingest.env c
  | Error e -> Alcotest.fail (Error.to_string e)

(* A framed INGEST, raw on the wire: the line, then the body and its
   framing newline ([send] appends exactly one). *)
let request_ingest c ?id xml =
  let id_tok = match id with None -> "" | Some i -> " id=" ^ i in
  send c (Printf.sprintf "INGEST %d%s" (String.length xml) id_tok);
  send c xml;
  recv c

let request_ingest_exn c ?id xml =
  match request_ingest c ?id xml with
  | Some r -> r
  | None -> Alcotest.fail "connection closed before a response to INGEST"

let article body =
  Printf.sprintf "<article><title>live</title><section><paragraph>%s</paragraph></section></article>"
    body

let test_ingest_wire () =
  with_ingest_dir (fun ~snap ~wal ->
      with_server ~cfg:(ingest_cfg ~snap ~wal ()) (placeholder_env ()) (fun srv ->
          let c = connect (Server.port srv) in
          (* An acked write is visible to the very next QUERY. *)
          let status, body = request_ingest_exn c ~id:"a" (article "xml streaming") in
          check_string "ingest acked" "OK" (Protocol.status_to_string status);
          check_bool "ack names the id and generation" true
            (has_infix ~affix:"ingested a" body && has_infix ~affix:"generation 2" body);
          let status, body = request_exn c "QUERY k=3 //article[.contains(\"streaming\")]" in
          check_string "query sees the new document" "OK" (Protocol.status_to_string status);
          check_bool "the answer is inside the ingested wrapper" true
            (has_infix ~affix:"fx-doc" body);
          (* Anonymous ingest auto-assigns doc-N. *)
          let status, body = request_ingest_exn c (article "anonymous") in
          check_string "anonymous ingest acked" "OK" (Protocol.status_to_string status);
          check_bool "auto id assigned" true (has_infix ~affix:"ingested doc-" body);
          (* Upsert: re-ingesting an id replaces its content. *)
          let _ = request_ingest_exn c ~id:"a" (article "replacement text") in
          let status, body = request_exn c "QUERY k=3 //article[.contains(\"streaming\")]" in
          check_string "upsert query ok" "OK" (Protocol.status_to_string status);
          check_bool "old content no longer matches exactly" true
            (body = "" || not (has_infix ~affix:"exact" body));
          (* DELETE. *)
          let status, _ = request_exn c "DELETE doc-0" in
          check_string "delete acked" "OK" (Protocol.status_to_string status);
          let status, body = request_exn c "DELETE nope" in
          check_string "unknown id is ERR" "ERR" (Protocol.status_to_string status);
          check_bool "delete error names the id" true (has_infix ~affix:"nope" body);
          (* STATS gauges (satellite: generation, staleness_ms,
             wal_replayed_records). *)
          let _, body = request_exn c "STATS" in
          List.iter
            (fun needle ->
              check_bool (Printf.sprintf "stats has %s" needle) true (has_infix ~affix:needle body))
            [
              "generation: ";
              "staleness_ms: ";
              "wal_replayed_records: 0";
              "delta_docs: 4";
              "wal_bytes: ";
              "corpus_docs: 1";
              "ingests: 3";
              "deletes: 1";
            ];
          (* RELOAD is refused while the store owns the snapshot. *)
          let status, body = request_exn c "RELOAD" in
          check_string "reload refused under ingestion" "ERR" (Protocol.status_to_string status);
          check_bool "refusal points at MERGE" true (has_infix ~affix:"MERGE" body);
          (* MERGE folds the deltas and truncates the WAL. *)
          let status, body = request_exn c "MERGE" in
          check_string "merge ok" "OK" (Protocol.status_to_string status);
          check_bool "merge reports the folded records" true
            (has_infix ~affix:"4 delta record(s)" body);
          let _, body = request_exn c "STATS" in
          check_bool "no deltas after merge" true (has_infix ~affix:"delta_docs: 0" body);
          check_bool "snapshot exists after merge" true (Sys.file_exists snap);
          (* Merged state serves identically. *)
          let status, _ = request_exn c "QUERY k=3 //article[.contains(\"replacement\")]" in
          check_string "post-merge query ok" "OK" (Protocol.status_to_string status);
          close c))

let test_ingest_not_enabled () =
  with_server (make_env ()) (fun srv ->
      let c = connect (Server.port srv) in
      (* The body is read and discarded even though the write is
         refused, so the connection stays line-synchronized. *)
      let status, body = request_ingest_exn c ~id:"a" "<doc/>" in
      check_string "ingest without a store is ERR" "ERR" (Protocol.status_to_string status);
      check_bool "error names the flag" true (has_infix ~affix:"ingest-wal" body);
      let status, _ = request_exn c "MERGE" in
      check_string "merge without a store is ERR" "ERR" (Protocol.status_to_string status);
      let status, _ = request_exn c "PING" in
      check_string "connection survives in sync" "OK" (Protocol.status_to_string status);
      close c)

let test_ingest_write_lane_zero () =
  with_ingest_dir (fun ~snap ~wal ->
      with_server ~cfg:(ingest_cfg ~write_lane:0 ~snap ~wal ()) (placeholder_env ()) (fun srv ->
          let c = connect (Server.port srv) in
          (match request_ingest c ~id:"a" "<doc/>" with
          | Some (Protocol.Overloaded, body) ->
            check_bool "write reject carries a retry hint" true
              (Protocol.parse_retry_after body <> None)
          | Some (status, _) ->
            Alcotest.fail ("expected OVERLOADED, got " ^ Protocol.status_to_string status)
          | None -> Alcotest.fail "expected an OVERLOADED response, got EOF");
          let status, _ = request_exn c "PING" in
          check_string "reads unaffected by the write lane" "OK"
            (Protocol.status_to_string status);
          check_int "the reject was counted" 1 (snapshot srv).writes_rejected;
          close c))

let test_ingest_restart_replay () =
  with_ingest_dir (fun ~snap ~wal ->
      let cfg = ingest_cfg ~snap ~wal () in
      with_server ~cfg (placeholder_env ()) (fun srv ->
          let c = connect (Server.port srv) in
          let _ = request_ingest_exn c ~id:"a" (article "first") in
          let _ = request_ingest_exn c ~id:"b" (article "second") in
          let _ = request_exn c "DELETE a" in
          close c);
      (* No merge ran: every acked write lives only in the WAL.  A
         fresh server over the same paths must replay to exactly the
         acked set. *)
      with_server ~cfg (placeholder_env ()) (fun srv ->
          let c = connect (Server.port srv) in
          let _, body = request_exn c "STATS" in
          check_bool "all three records replayed" true
            (has_infix ~affix:"wal_replayed_records: 3" body);
          check_bool "replay reaches the acked document set" true
            (has_infix ~affix:"corpus_docs: 1" body);
          let store =
            match Server.ingest_store srv with
            | Some s -> s
            | None -> Alcotest.fail "ingest store missing"
          in
          check_bool "only b survives" true (Ingest.store_ids store = [ "b" ]);
          let status, body = request_exn c "QUERY k=3 //article[.contains(\"second\")]" in
          check_string "replayed document serves" "OK" (Protocol.status_to_string status);
          check_bool "replayed document matches" true (has_infix ~affix:"fx-doc" body);
          close c))

let test_ingest_failpoints () =
  with_ingest_dir (fun ~snap ~wal ->
      with_server ~cfg:(ingest_cfg ~snap ~wal ()) (placeholder_env ()) (fun srv ->
          let c = connect (Server.port srv) in
          let _ = request_ingest_exn c ~id:"keep" (article "durable baseline") in
          (* A WAL fault fails the write — and MUST leave it out of both
             the corpus and the log (the ack is the commit point). *)
          List.iter
            (fun point ->
              arm_n point 1;
              let status, body = request_ingest_exn c ~id:"ghost" (article "never lands") in
              check_string (point ^ " fails the write") "ERR" (Protocol.status_to_string status);
              check_bool (point ^ " is named") true (has_infix ~affix:point body);
              let status, body = request_exn c "QUERY k=5 //article[.contains(\"never\")]" in
              check_string "rejected write is invisible" "OK" (Protocol.status_to_string status);
              check_bool "no ghost answers" true (not (has_infix ~affix:"fx-doc" body)))
            [ "wal_append"; "wal_fsync" ];
          (* A merge-publish fault loses nothing: the snapshot/WAL
             overlap window is replay-idempotent, and the next merge
             completes. *)
          arm_n "merge_publish" 1;
          let status, _ = request_exn c "MERGE" in
          check_string "faulted merge is ERR" "ERR" (Protocol.status_to_string status);
          let status, body = request_exn c "QUERY k=3 //article[.contains(\"durable\")]" in
          check_string "corpus intact after the faulted merge" "OK"
            (Protocol.status_to_string status);
          check_bool "baseline still answers" true (has_infix ~affix:"fx-doc" body);
          let status, _ = request_exn c "MERGE" in
          check_string "retried merge succeeds" "OK" (Protocol.status_to_string status);
          let _, body = request_exn c "STATS" in
          check_bool "merge failure was counted" true (has_infix ~affix:"merge_failures: 1" body);
          check_bool "wal empty after the retried merge" true
            (has_infix ~affix:"delta_docs: 0" body);
          close c;
          Failpoint.reset ()))

(* The write-idempotency rule, end to end: after an ambiguous outcome
   (connection died before any response), an anonymous INGEST must
   fail fast — only an explicit id may be retried. *)
let test_ingest_retry_idempotency () =
  with_ingest_dir (fun ~snap ~wal ->
      with_server ~cfg:(ingest_cfg ~snap ~wal ()) (placeholder_env ()) (fun srv ->
          let port = Server.port srv in
          let retry =
            { Client.default_retry with retries = 3; budget_ms = Some 5000.0; base_backoff_ms = 5.0 }
          in
          arm_n "server_read" 1;
          (match
             Client.run_requests ~metrics:(Server.metrics srv)
               ~rng:(Random.State.make [| 3 |])
               ~port ~retry
               [ Client.ingest_request (article "anonymous") ]
           with
          | Ok _ -> Alcotest.fail "an ambiguous anonymous INGEST must not be retried"
          | Error (Client.No_response, completed) ->
            check_int "nothing completed" 0 (List.length completed)
          | Error (f, _) ->
            Alcotest.failf "expected No_response, got %s" (Client.failure_to_string f));
          check_int "no retry was attempted" 0 (snapshot srv).retries;
          arm_n "server_read" 1;
          (match
             Client.run_requests ~metrics:(Server.metrics srv)
               ~rng:(Random.State.make [| 4 |])
               ~port ~retry
               [ Client.ingest_request ~id:"idem" (article "retried upsert") ]
           with
          | Ok [ (Protocol.Ok_, body) ] ->
            check_bool "retried upsert acked" true (has_infix ~affix:"ingested idem" body)
          | Ok _ -> Alcotest.fail "expected exactly one OK response"
          | Error (f, _) -> Alcotest.fail (Client.failure_to_string f));
          check_bool "the identified write was retried" true ((snapshot srv).retries >= 1)))

(* ------------------------------------------------------------------ *)
(* Mixed query+write chaos soak (the PR's acceptance gate): writers
   upserting and deleting under WAL/merge/worker faults, readers
   querying throughout, for FLEXPATH_SOAK_S seconds (default 60).
   Nothing may be dropped or answered ERR; after quiescing, the served
   corpus must answer byte-identically to an offline rebuild of its
   own acked document set, and every certainly-acked write must be
   present (and every certainly-acked delete absent). *)

let soak_seconds () =
  match Sys.getenv_opt "FLEXPATH_SOAK_S" with
  | Some s -> ( match float_of_string_opt s with Some v when v > 0.0 -> v | _ -> 60.0)
  | None -> 60.0

let fingerprint answers =
  String.concat ";"
    (List.map
       (fun (a : Flexpath.Answer.t) ->
         Printf.sprintf "%d:%Lx:%Lx" (a.node :> int)
           (Int64.bits_of_float a.sscore)
           (Int64.bits_of_float a.kscore))
       answers)

let soak_queries =
  [
    "QUERY k=5 //article[.contains(\"xml\" and \"soak\")]";
    "QUERY k=3 algo=dpo //article[./section/paragraph]";
    "QUERY k=3 algo=sso //article[./section/paragraph]";
    "QUERY k=4 scheme=combined //article[./title]";
    "PING";
    "STATS";
  ]

let test_ingest_chaos_soak () =
  with_ingest_dir (fun ~snap ~wal ->
      let cfg =
        {
          (ingest_cfg ~merge_interval_ms:300.0 ~write_lane:8 ~snap ~wal ()) with
          Server.workers = 4;
          queue_depth = 64;
          max_connections = 256;
          hard_wall_ms = 500.0;
          quarantine_strikes = 0;
          read_timeout_s = 5.0;
        }
      in
      with_server ~cfg (placeholder_env ()) (fun srv ->
          let port = Server.port srv in
          let deadline = soak_seconds () *. 1000.0 in
          let clock = Monotime.create () in
          let running () = Monotime.elapsed_ms clock < deadline in
          let stop_inject = Atomic.make false in
          let injector =
            Domain.spawn (fun () ->
                let rng = Random.State.make [| 0xFEED |] in
                let points =
                  [| "wal_append"; "wal_fsync"; "merge_publish"; "worker_wedge"; "worker_die" |]
                in
                while not (Atomic.get stop_inject) do
                  Unix.sleepf (0.05 +. Random.State.float rng 0.15);
                  ignore (Failpoint.activate_n points.(Random.State.int rng (Array.length points)) 1)
                done)
          in
          (* Each writer owns a disjoint id pool, so its own sequential
             acks are the ground truth for those ids.  [certain] maps
             id -> Some xml (last acked content) / None (acked delete);
             an exhausted retry run leaves the fate ambiguous, so the
             id moves to [uncertain] and is excluded from the final
             presence check (the equivalence check below covers it
             regardless, since it rebuilds from the server's own
             corpus). *)
          let writer w () =
            let rng = Random.State.make [| 0xAB + w |] in
            let certain : (string, string option) Hashtbl.t = Hashtbl.create 16 in
            let uncertain : (string, unit) Hashtbl.t = Hashtbl.create 16 in
            let retry =
              {
                Client.retries = 6;
                budget_ms = Some 8000.0;
                base_backoff_ms = 10.0;
                max_backoff_ms = 200.0;
              }
            in
            let n = ref 0 in
            while running () do
              incr n;
              let id = Printf.sprintf "w%d-%d" w (Random.State.int rng 8) in
              let delete = Hashtbl.mem certain id && Random.State.int rng 4 = 0 in
              if delete then begin
                match
                  Client.run_requests ~metrics:(Server.metrics srv) ~rng ~port ~retry
                    [ { Client.line = "DELETE " ^ id; body = None } ]
                with
                | Ok [ (Protocol.Ok_, _) ] -> Hashtbl.replace certain id None
                | Ok _ -> () (* ERR: definitive, nothing changed *)
                | Error _ ->
                  Hashtbl.remove certain id;
                  Hashtbl.replace uncertain id ()
              end
              else begin
                let xml = article (Printf.sprintf "xml soak writer %d revision %d" w !n) in
                match
                  Client.run_requests ~metrics:(Server.metrics srv) ~rng ~port ~retry
                    [ Client.ingest_request ~id xml ]
                with
                | Ok [ (Protocol.Ok_, _) ] -> Hashtbl.replace certain id (Some xml)
                | Ok _ -> () (* ERR (e.g. an injected WAL fault): not applied *)
                | Error _ ->
                  Hashtbl.remove certain id;
                  Hashtbl.replace uncertain id ()
              end
            done;
            (certain, uncertain)
          in
          (* Readers: every query must settle OK or PARTIAL — an ERR or
             an exhausted retry run is a dropped query, and the soak
             fails. *)
          let reader r () =
            let rng = Random.State.make [| 0xCD + r |] in
            let retry =
              {
                Client.retries = 6;
                budget_ms = Some 8000.0;
                base_backoff_ms = 10.0;
                max_backoff_ms = 200.0;
              }
            in
            let bad = ref 0 and done_ = ref 0 in
            while running () do
              let q = List.nth soak_queries (Random.State.int rng (List.length soak_queries)) in
              (match Client.run ~metrics:(Server.metrics srv) ~rng ~port ~retry [ q ] with
              | Ok [ ((Protocol.Ok_ | Protocol.Partial), _) ] -> incr done_
              | Ok _ | Error _ -> incr bad);
              Unix.sleepf 0.002
            done;
            (!done_, !bad)
          in
          (* Staleness monitor: sample the gauge through the soak. *)
          let max_staleness = Atomic.make 0.0 in
          let monitor () =
            let store = Option.get (Server.ingest_store srv) in
            while running () do
              let s = Ingest.staleness_ms store in
              if s > Atomic.get max_staleness then Atomic.set max_staleness s;
              Unix.sleepf 0.05
            done
          in
          let writers = Array.init 3 (fun w -> Domain.spawn (writer w)) in
          let readers = Array.init 3 (fun r -> Domain.spawn (reader r)) in
          let mon = Domain.spawn monitor in
          let states = Array.map Domain.join writers in
          let reads = Array.map Domain.join readers in
          Domain.join mon;
          Atomic.set stop_inject true;
          Domain.join injector;
          Failpoint.reset ();
          (* Zero dropped or erroneous queries, and real coverage. *)
          let served = Array.fold_left (fun acc (d, _) -> acc + d) 0 reads in
          let bad = Array.fold_left (fun acc (_, b) -> acc + b) 0 reads in
          check_int "zero dropped or erroneous queries" 0 bad;
          check_bool "the soak actually served queries" true (served > 50);
          (* Quiesce: a final MERGE must land and zero the lag. *)
          let c = connect port in
          let status, _ = request_exn c "MERGE" in
          check_string "quiescing merge" "OK" (Protocol.status_to_string status);
          let store = Option.get (Server.ingest_store srv) in
          check_int "no deltas after the quiescing merge" 0 (Ingest.unmerged_records store);
          check_bool "staleness returns to zero" true (Ingest.staleness_ms store = 0.0);
          (* Staleness stayed bounded while the merge domain was under
             fault injection: well under the soak length, and within a
             modest multiple of the merge interval + the write burst. *)
          check_bool "staleness bounded through the soak" true
            (Atomic.get max_staleness < Float.min deadline 20_000.0);
          (* Every certainly-acked write present with its last content;
             every certainly-acked delete absent — unless a later
             outcome for that id was ambiguous. *)
          let docs = Ingest.docs (Result.get_ok (Ingest.of_env (Server.ingest_store srv |> Option.get |> Ingest.store_env))) in
          let served_tbl = Hashtbl.create 64 in
          List.iter (fun (id, tree) -> Hashtbl.replace served_tbl id tree) docs;
          Array.iter
            (fun (certain, uncertain) ->
              Hashtbl.iter
                (fun id fate ->
                  if not (Hashtbl.mem uncertain id) then
                    match fate with
                    | Some xml ->
                      let expected =
                        Xmldom.Xml.to_string (Result.get_ok (Ingest.parse_doc xml))
                      in
                      (match Hashtbl.find_opt served_tbl id with
                      | None -> Alcotest.failf "acked document %s missing after the soak" id
                      | Some tree ->
                        check_string
                          (Printf.sprintf "acked content of %s" id)
                          expected (Xmldom.Xml.to_string tree))
                    | None ->
                      check_bool
                        (Printf.sprintf "deleted document %s absent" id)
                        false (Hashtbl.mem served_tbl id))
                certain)
            states;
          (* Merge-equivalence at full scale: the incrementally grown,
             fault-injected, merged corpus must answer byte-identically
             to an offline rebuild of the same documents. *)
          let live_env = Ingest.store_env store in
          let rebuilt =
            match Ingest.of_docs docs with
            | Ok c -> Ingest.env c
            | Error e -> Alcotest.fail (Error.to_string e)
          in
          List.iter
            (fun q ->
              match Tpq.Xpath.parse q with
              | Error _ -> Alcotest.fail "bad soak query"
              | Ok query ->
                List.iter
                  (fun algorithm ->
                    let run env =
                      match Flexpath.run ~algorithm env ~k:5 query with
                      | Ok r -> fingerprint r.Flexpath.Common.answers
                      | Error e -> Alcotest.fail (Error.to_string e)
                    in
                    check_string
                      (Printf.sprintf "offline rebuild equivalence (%s)"
                         (Flexpath.algorithm_to_string algorithm))
                      (run rebuilt) (run live_env))
                  [ Flexpath.DPO; Flexpath.SSO; Flexpath.Hybrid ])
            [
              "//article[.contains(\"xml\" and \"soak\")]";
              "//article[./section/paragraph]";
              "//article[./title]";
            ];
          close c;
          (* The standing robustness invariants hold here too. *)
          let s = snapshot srv in
          check_bool "every lost worker was replaced" true
            (wait_for (fun () ->
                 let s = snapshot srv in
                 s.lost = s.respawned));
          check_bool "soak exercised the write path" true (s.ingests > 10);
          check_bool "admission capacity drains to zero" true
            (wait_for ~timeout_ms:10_000.0 (fun () -> Server.active_connections srv = 0))))

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Sharded corpus over the wire (DESIGN.md §4i): scatter-gather
   serving, SHARDS health, per-shard RELOAD, the PARTIAL shards=s/t
   wire contract under shard loss, and write-lane retry hints that
   reflect the routed shard's merge backlog. *)

module Corpus = Flexpath.Corpus

let shard_cfg ?(merge_interval_ms = 0.0) ?(write_lane = 4) ?(shards = 3) ?(replicas = 1)
    ?probation_ms ~prefix () =
  let d = Server.ingest_defaults ~wal:"" in
  {
    Server.default_config with
    workers = 2;
    snapshot = Some prefix;
    ingest =
      Some
        {
          d with
          Server.merge_interval_ms;
          write_lane;
          shards;
          replicas;
          probation_ms = Option.value probation_ms ~default:d.Server.probation_ms;
        };
  }

let with_shard_dir f =
  let dir = Filename.temp_file "flexpath_shard_srv" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f ~prefix:(Filename.concat dir "corpus"))

(* An id that the 3-shard router places on [shard]. *)
let id_on ?(shards = 3) shard =
  let rec go i =
    let id = Printf.sprintf "w%d" i in
    if Corpus.route ~shards id = shard then id else go (i + 1)
  in
  go 0

let arm_probe n =
  match Failpoint.activate_n "shard_probe" n with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let shard_article i =
  Printf.sprintf
    "<article><title>shard</title><section><paragraph>xml payload %d</paragraph></section></article>"
    i

let test_shard_wire () =
  with_shard_dir (fun ~prefix ->
      with_server ~cfg:(shard_cfg ~prefix ()) (placeholder_env ()) (fun srv ->
          let c = connect (Server.port srv) in
          (* Writes route by id; the ack names the shard and the
             generation vector. *)
          for i = 0 to 8 do
            let id = Printf.sprintf "w%d" i in
            let status, body = request_ingest_exn c ~id (shard_article i) in
            check_string (Printf.sprintf "ingest %s acked" id) "OK"
              (Protocol.status_to_string status);
            check_bool "ack names the routed shard" true
              (has_infix ~affix:(Printf.sprintf "shard %d" (Corpus.route ~shards:3 id)) body)
          done;
          (* A healthy scatter-gather is COMPLETE: plain OK, no header. *)
          let status, answers1 = request_exn c "QUERY k=5 //article[.contains(\"xml\")]" in
          check_string "healthy query is OK" "OK" (Protocol.status_to_string status);
          check_bool "no partial header" true (not (has_infix ~affix:"# partial" answers1));
          check_bool "answers carry doc-relative locations" true (has_infix ~affix:"w" answers1);
          (* SHARDS: one health line per shard, all live. *)
          let status, body = request_exn c "SHARDS" in
          check_string "shards verb ok" "OK" (Protocol.status_to_string status);
          List.iter
            (fun ord ->
              check_bool
                (Printf.sprintf "shard %d reported live" ord)
                true
                (has_infix ~affix:(Printf.sprintf "shard %d: live" ord) body))
            [ 0; 1; 2 ];
          (* STATS grows the shard gauges. *)
          let _, body = request_exn c "STATS" in
          List.iter
            (fun needle ->
              check_bool (Printf.sprintf "stats has %s" needle) true (has_infix ~affix:needle body))
            [ "shards: 3/3"; "generation_vector: "; "shard 0: live"; "corpus_docs: 9" ];
          (* MERGE compacts every shard with a backlog, independently. *)
          let status, body = request_exn c "MERGE" in
          check_string "merge ok" "OK" (Protocol.status_to_string status);
          check_bool "merge reports records and shards" true
            (has_infix ~affix:"9 delta record(s)" body && has_infix ~affix:"3 shard(s)" body);
          check_bool "per-shard snapshots exist" true
            (Sys.file_exists (prefix ^ ".shard0") && Sys.file_exists (prefix ^ ".shard2"));
          (* RELOAD <ord> swaps exactly one shard. *)
          let status, body = request_exn c "RELOAD 1" in
          check_string "single-shard reload ok" "OK" (Protocol.status_to_string status);
          check_bool "reload names the shard" true (has_infix ~affix:"reloaded shard(s) 1" body);
          let status, _ = request_exn c "RELOAD 99" in
          check_string "out-of-range shard is ERR" "ERR" (Protocol.status_to_string status);
          (* The reloaded corpus serves identically. *)
          let status, answers2 = request_exn c "QUERY k=5 //article[.contains(\"xml\")]" in
          check_string "post-reload query ok" "OK" (Protocol.status_to_string status);
          check_string "post-reload answers unchanged" answers1 answers2;
          close c))

let test_shard_loss_partial_wire () =
  with_shard_dir (fun ~prefix ->
      with_server ~cfg:(shard_cfg ~prefix ()) (placeholder_env ()) (fun srv ->
          let c = connect (Server.port srv) in
          for i = 0 to 8 do
            ignore (request_ingest_exn c ~id:(Printf.sprintf "w%d" i) (shard_article i))
          done;
          (* Lose the first probed shard (ord 0) mid-query: the answer
             degrades to PARTIAL with attribution and a sound bound —
             never an error.  Distinct k values keep each armed query
             off the answer cache. *)
          arm_probe 1;
          let status, body = request_exn c "QUERY k=6 //article[.contains(\"xml\")]" in
          check_string "shard loss is PARTIAL, not ERR" "PARTIAL"
            (Protocol.status_to_string status);
          List.iter
            (fun needle ->
              check_bool (Printf.sprintf "partial header has %s" needle) true
                (has_infix ~affix:needle body))
            [ "# partial"; "reason=shard-loss"; "score_bound="; "shards=2/3" ];
          (* A healthy query afterwards is COMPLETE again (the loss was
             transient) and clears the strike. *)
          let status, _ = request_exn c "QUERY k=6 //article[.contains(\"xml\")]" in
          check_string "next query complete" "OK" (Protocol.status_to_string status);
          (* Three consecutive losses quarantine the shard. *)
          List.iter
            (fun k ->
              arm_probe 1;
              let status, _ =
                request_exn c (Printf.sprintf "QUERY k=%d //article[.contains(\"xml\")]" k)
              in
              check_string "strike query is PARTIAL" "PARTIAL" (Protocol.status_to_string status))
            [ 2; 3; 4 ];
          let _, body = request_exn c "SHARDS" in
          check_bool "shard 0 quarantined after repeated losses" true
            (has_infix ~affix:"shard 0: quarantined" body);
          (* Quarantined: queries stay PARTIAL without any failpoint,
             writes routed to the shard are refused, other shards'
             writes are unaffected. *)
          let status, body = request_exn c "QUERY k=7 //article[.contains(\"xml\")]" in
          check_string "quarantined shard degrades queries" "PARTIAL"
            (Protocol.status_to_string status);
          check_bool "quarantine attributed" true (has_infix ~affix:"shards=2/3" body);
          let status, _ = request_ingest_exn c ~id:(id_on 0) (shard_article 90) in
          check_string "write to the quarantined shard refused" "ERR"
            (Protocol.status_to_string status);
          let status, _ = request_ingest_exn c ~id:(id_on 1) (shard_article 91) in
          check_string "write to a live shard unaffected" "OK" (Protocol.status_to_string status);
          (* RELOAD <ord> restores the quarantined shard to service. *)
          let status, _ = request_exn c "RELOAD 0" in
          check_string "reload clears quarantine" "OK" (Protocol.status_to_string status);
          let status, body = request_exn c "QUERY k=8 //article[.contains(\"xml\")]" in
          check_string "complete after recovery" "OK" (Protocol.status_to_string status);
          check_bool "no partial header after recovery" true
            (not (has_infix ~affix:"# partial" body));
          close c))

let test_shard_corrupt_at_load () =
  with_shard_dir (fun ~prefix ->
      (* Build a merged 3-shard corpus, then stop the server. *)
      with_server ~cfg:(shard_cfg ~prefix ()) (placeholder_env ()) (fun srv ->
          let c = connect (Server.port srv) in
          for i = 0 to 8 do
            ignore (request_ingest_exn c ~id:(Printf.sprintf "w%d" i) (shard_article i))
          done;
          let status, _ = request_exn c "MERGE" in
          check_string "merge ok" "OK" (Protocol.status_to_string status);
          close c);
      (* Bit-flip one byte of shard 1's snapshot. *)
      let path = prefix ^ ".shard1" in
      let bytes =
        let ic = open_in_bin path in
        let n = in_channel_length ic in
        let b = really_input_string ic n in
        close_in ic;
        Bytes.of_string b
      in
      let off = min 100 (Bytes.length bytes - 1) in
      Bytes.set bytes off (Char.chr (Char.code (Bytes.get bytes off) lxor 0x40));
      let oc = open_out_bin path in
      output_bytes oc bytes;
      close_out oc;
      (* The server still starts: the corrupt shard is down, the rest
         serve, and queries are PARTIAL with attribution. *)
      with_server ~cfg:(shard_cfg ~prefix ()) (placeholder_env ()) (fun srv ->
          let c = connect (Server.port srv) in
          let _, body = request_exn c "SHARDS" in
          check_bool "corrupt shard reported down with its error" true
            (has_infix ~affix:"shard 1: down" body && has_infix ~affix:"error=" body);
          let status, body = request_exn c "QUERY k=6 //article[.contains(\"xml\")]" in
          check_string "query under shard loss is PARTIAL" "PARTIAL"
            (Protocol.status_to_string status);
          check_bool "loss attributed" true
            (has_infix ~affix:"shards=2/3" body && has_infix ~affix:"reason=shard-loss" body);
          check_bool "surviving shards still answer" true (has_infix ~affix:"ss=" body);
          close c))

let test_shard_write_hint_tracks_backlog () =
  with_shard_dir (fun ~prefix ->
      with_server
        ~cfg:(shard_cfg ~shards:2 ~write_lane:0 ~prefix ())
        (placeholder_env ())
        (fun srv ->
          let corpus =
            match Server.corpus srv with
            | Some c -> c
            | None -> Alcotest.fail "sharded server exposes its corpus"
          in
          (* Build a 3-record backlog on shard 0 directly (the wire
             write lane is closed), none on shard 1. *)
          for i = 0 to 2 do
            match Corpus.ingest corpus ~id:(id_on ~shards:2 0) (shard_article i) with
            | Ok _ -> ()
            | Error e -> Alcotest.fail (Error.to_string e)
          done;
          let hint_for id =
            let c = connect (Server.port srv) in
            Fun.protect
              ~finally:(fun () -> close c)
              (fun () ->
                match request_ingest c ~id (shard_article 9) with
                | Some (Protocol.Overloaded, body) -> (
                  match Protocol.parse_retry_after body with
                  | Some ms -> ms
                  | None -> Alcotest.fail "write reject carries no retry hint")
                | Some (status, _) ->
                  Alcotest.fail ("expected OVERLOADED, got " ^ Protocol.status_to_string status)
                | None -> Alcotest.fail "expected OVERLOADED, got EOF")
          in
          (* Satellite fix: the hint reflects the routed shard's merge
             backlog — 3 records behind on shard 0, clear on shard 1 —
             not the (idle) global connection queue. *)
          check_int "hint scales with the routed shard's backlog" (50 * (1 + 3))
            (hint_for (id_on ~shards:2 0));
          check_int "a clear shard's hint is the floor" 50 (hint_for (id_on ~shards:2 1))))

(* Replication over the wire (DESIGN.md §4l): per-replica SHARDS/STATS
   lines, RELOAD <ord>.<replica>, probe failover keeping queries
   COMPLETE, and the READONLY disk-fault degrade with its retry hint
   and recovery. *)
let test_replica_wire () =
  with_shard_dir (fun ~prefix ->
      with_server
        ~cfg:(shard_cfg ~shards:2 ~replicas:2 ~probation_ms:400.0 ~prefix ())
        (placeholder_env ())
        (fun srv ->
          Fun.protect ~finally:Failpoint.reset (fun () ->
              let c = connect (Server.port srv) in
              for i = 0 to 5 do
                let id = Printf.sprintf "w%d" i in
                let status, _ = request_ingest_exn c ~id (shard_article i) in
                check_string "ingest acked" "OK" (Protocol.status_to_string status)
              done;
              (* SHARDS: each shard line is followed by per-replica lines
                 with role, sync state and read-only flag. *)
              let _, body = request_exn c "SHARDS" in
              List.iter
                (fun needle ->
                  check_bool
                    (Printf.sprintf "SHARDS has %s" needle)
                    true (has_infix ~affix:needle body))
                [
                  "replica 0.0: primary synced";
                  "replica 0.1: follower synced";
                  "replica 1.0: primary synced";
                  "readonly=no";
                ];
              (* STATS gains the same per-replica gauges. *)
              let _, body = request_exn c "STATS" in
              List.iter
                (fun needle ->
                  check_bool
                    (Printf.sprintf "STATS has %s" needle)
                    true (has_infix ~affix:needle body))
                [
                  "shard 0 replica 0: primary synced";
                  "shard 0 replica 1: follower synced";
                  "readonly: no";
                ];
              (* RELOAD <ord>.<replica> addresses one replica (the
                 catch-up path); a bad replica ordinal is refused. *)
              let status, body = request_exn c "RELOAD 0.1" in
              check_string "replica reload ok" "OK" (Protocol.status_to_string status);
              check_bool "reload names the replica" true
                (has_infix ~affix:"reloaded replica 0.1" body);
              let status, _ = request_exn c "RELOAD 0.7" in
              check_string "out-of-range replica is ERR" "ERR" (Protocol.status_to_string status);
              (* A replica lost mid-query fails over inside the probe:
                 the response stays OK with no partial header. *)
              arm_probe 1;
              let status, body = request_exn c "QUERY k=6 //article[.contains(\"xml\")]" in
              check_string "failover keeps the query COMPLETE" "OK"
                (Protocol.status_to_string status);
              check_bool "no partial header" true (not (has_infix ~affix:"# partial" body));
              (* ENOSPC on the primary's WAL: the failing write is ERR
                 (in neither the corpus nor the log), the store degrades,
                 and the next write gets READONLY with a retry hint — on
                 a connection that stays open. *)
              let ord0_id = id_on ~shards:2 0 in
              (match Failpoint.activate_errno "wal_append" Unix.ENOSPC 1 with
              | Ok () -> ()
              | Error e -> Alcotest.fail e);
              let status, _ = request_ingest_exn c ~id:ord0_id (shard_article 90) in
              check_string "ENOSPC write is ERR" "ERR" (Protocol.status_to_string status);
              let status, body = request_ingest_exn c ~id:ord0_id (shard_article 90) in
              check_string "degraded write is READONLY" "READONLY"
                (Protocol.status_to_string status);
              (match Protocol.parse_retry_after body with
              | Some ms -> check_bool "positive retry hint" true (ms >= 1)
              | None -> Alcotest.fail "READONLY carries no retry-after-ms hint");
              (* the connection survived the refusal; reads still serve *)
              let status, _ = request_exn c "QUERY k=5 //article[.contains(\"xml\")]" in
              check_string "reads unaffected" "OK" (Protocol.status_to_string status);
              let _, body = request_exn c "STATS" in
              check_bool "STATS flags the degrade" true (has_infix ~affix:"readonly: yes" body);
              check_bool "STATS counts degraded stores" true
                (has_infix ~affix:"readonly_stores: 1" body);
              let _, body = request_exn c "SHARDS" in
              check_bool "SHARDS shows the degraded replica" true
                (has_infix ~affix:"readonly=yes retry_after_ms=" body);
              (* past probation the next write is the re-probe; recovery
                 is visible in STATS *)
              Unix.sleepf 0.5;
              let status, _ = request_ingest_exn c ~id:ord0_id (shard_article 90) in
              check_string "post-probation write recovers" "OK" (Protocol.status_to_string status);
              let _, body = request_exn c "STATS" in
              check_bool "degrade cleared" true (has_infix ~affix:"readonly: no" body);
              close c)))

(* The client's READONLY policy (DESIGN.md §4l): an id= upsert retries
   with the server's hint as its backoff floor and converges after
   probation; an anonymous INGEST fails fast — never auto-resent, since
   a resend dying mid-flight after recovery could double-ingest. *)
let test_client_readonly_policy () =
  with_shard_dir (fun ~prefix ->
      with_server
        ~cfg:(shard_cfg ~shards:1 ~replicas:2 ~probation_ms:250.0 ~prefix ())
        (placeholder_env ())
        (fun srv ->
          Fun.protect ~finally:Failpoint.reset (fun () ->
              let port = Server.port srv in
              let rng = Random.State.make [| 42 |] in
              (* trip the degrade with a direct armed write *)
              (match Server.corpus srv with
              | None -> Alcotest.fail "replicated server exposes its corpus"
              | Some corpus -> (
                (match Failpoint.activate_errno "wal_append" Unix.ENOSPC 1 with
                | Ok () -> ()
                | Error e -> Alcotest.fail e);
                match Corpus.ingest corpus ~id:"seed" (shard_article 1) with
                | Error (Error.Io_error _) -> ()
                | Error e -> Alcotest.failf "expected Io_error, got %s" (Error.to_string e)
                | Ok _ -> Alcotest.fail "armed write must fail"));
              let retry = { Client.default_retry with retries = 5; base_backoff_ms = 5.0 } in
              (match
                 Client.run_requests ~rng ~port ~retry [ Client.ingest_request (shard_article 2) ]
               with
              | Error (Client.Store_readonly, done_) ->
                check_int "nothing completed before the fail-fast" 0 (List.length done_)
              | Error (f, _) ->
                Alcotest.fail ("expected Store_readonly, got " ^ Client.failure_to_string f)
              | Ok _ -> Alcotest.fail "anonymous INGEST must fail fast on READONLY");
              match
                Client.run_requests ~rng ~port ~retry
                  [ Client.ingest_request ~id:"retry-doc" (shard_article 3) ]
              with
              | Ok [ (Protocol.Ok_, _) ] -> ()
              | Ok rs -> Alcotest.failf "unexpected responses (%d)" (List.length rs)
              | Error (f, _) ->
                Alcotest.fail ("idempotent upsert should converge: " ^ Client.failure_to_string f))))

let test_shards_verb_unsharded () =
  with_server (make_env ()) (fun srv ->
      let c = connect (Server.port srv) in
      let status, body = request_exn c "SHARDS" in
      check_string "SHARDS on an unsharded server is ERR" "ERR"
        (Protocol.status_to_string status);
      check_bool "error names the flag" true (has_infix ~affix:"--shards" body);
      close c)

(* ------------------------------------------------------------------ *)
(* The event loop at scale (DESIGN.md §4j): a thousand mostly-idle
   connections against a two-worker pool — each costs the server an fd
   and a buffer, never a domain — while interleaved requests keep
   getting correct per-connection responses, including under injected
   read faults and a wedged worker. *)

let stats_gauge body key =
  let prefix = key ^ ": " in
  List.find_map
    (fun line ->
      if has_prefix ~prefix line then
        int_of_string_opt (String.sub line (String.length prefix) (String.length line - String.length prefix))
      else None)
    (String.split_on_char '\n' body)

let test_thousand_idle_connections () =
  ignore (Flexpath_server.Poller.raise_nofile 8192);
  let n = 1024 in
  let cfg =
    {
      Server.default_config with
      workers = 2;
      queue_depth = 64;
      max_connections = n + 32;
      hard_wall_ms = 1000.0;
      quarantine_strikes = 0;
    }
  in
  with_server ~cfg (make_env ()) (fun srv ->
      let port = Server.port srv in
      let conns = Array.init n (fun _ -> connect port) in
      check_bool "all connections admitted" true
        (wait_for ~timeout_ms:20_000.0 (fun () -> Server.active_connections srv >= n));
      (* Interleaved batches from connections scattered across the pool:
         every response must come back on the connection that asked —
         pings get pong, queries get answers. *)
      for batch = 0 to 5 do
        let idxs = List.init 8 (fun i -> ((batch * 131) + (i * 127)) mod n) in
        List.iter
          (fun i ->
            if i mod 2 = 0 then send conns.(i) "PING" else send conns.(i) query_line)
          idxs;
        List.iter
          (fun i ->
            match recv conns.(i) with
            | None -> Alcotest.fail (Printf.sprintf "conn %d dropped mid-batch" i)
            | Some (status, body) ->
              check_string
                (Printf.sprintf "conn %d status" i)
                "OK" (Protocol.status_to_string status);
              if i mod 2 = 0 then check_string (Printf.sprintf "conn %d pong" i) "pong" body
              else check_bool (Printf.sprintf "conn %d answers" i) true (body <> ""))
          idxs
      done;
      (* The STATS gauges see the pool: >= n open connections, and the
         loop-lag reservoir has samples. *)
      let _, stats_body = request_exn conns.(7) "STATS" in
      (match stats_gauge stats_body "open_connections" with
      | None -> Alcotest.fail "open_connections gauge missing from STATS"
      | Some open_conns -> check_bool "open_connections >= pool" true (open_conns >= n));
      check_bool "loop lag gauge present" true (has_infix ~affix:"loop_lag_ms" stats_body);
      (* Chaos 1: injected read faults drop exactly the connections they
         hit; the rest of the pool is untouched. *)
      arm_n "server_read" 2;
      send conns.(100) "PING";
      check_bool "faulted conn 100 dropped" true (recv conns.(100) = None);
      send conns.(200) "PING";
      check_bool "faulted conn 200 dropped" true (recv conns.(200) = None);
      let status, body = request_exn conns.(300) "PING" in
      check_string "pool survives read faults" "OK" (Protocol.status_to_string status);
      check_string "pong after read faults" "pong" body;
      (* Chaos 2: a wedged worker is declared lost within the hard wall;
         its connection is dropped, the replacement keeps serving. *)
      let before = (snapshot srv).respawned in
      arm_n "worker_wedge" 1;
      send conns.(400) query_line;
      check_bool "replacement spawned" true
        (wait_for (fun () -> (snapshot srv).respawned = before + 1));
      check_bool "wedged conn dropped" true (recv conns.(400) = None);
      let status, body = request_exn conns.(500) query_line in
      check_string "replacement serves" "OK" (Protocol.status_to_string status);
      check_bool "replacement answers" true (body <> "");
      Array.iter close conns;
      check_bool "pool drains to zero" true
        (wait_for ~timeout_ms:20_000.0 (fun () -> Server.active_connections srv = 0)))

let () =
  Alcotest.run "server"
    [
      ( "substrate",
        [
          Alcotest.test_case "admission queue" `Quick test_admission_queue;
          Alcotest.test_case "latency reservoir" `Quick test_reservoir;
          Alcotest.test_case "reservoirs seed independently" `Quick test_reservoir_divergence;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "snapshot start, query, stats, shutdown" `Quick test_lifecycle;
          Alcotest.test_case "protocol errors" `Quick test_protocol_errors;
        ] );
      ( "governance",
        [
          Alcotest.test_case "budget truncation is PARTIAL" `Quick test_budget_truncation;
          Alcotest.test_case "request overrides server default" `Quick test_budget_override;
        ] );
      ( "admission",
        [ Alcotest.test_case "full queue fast-rejects" `Quick test_overload_fast_reject ] );
      ( "determinism",
        [
          Alcotest.test_case "parallel connections match sequential" `Quick
            test_concurrent_determinism;
        ] );
      ( "reload",
        [ Alcotest.test_case "hot swap mid-traffic" `Quick test_reload_mid_traffic ] );
      ( "cache",
        [
          Alcotest.test_case "repeat query skips the executor" `Quick
            test_cache_serves_repeat_without_executor;
          Alcotest.test_case "reload invalidates the cache" `Quick test_reload_invalidates_cache;
        ] );
      ( "failpoints",
        [
          Alcotest.test_case "server_worker" `Quick test_failpoint_worker;
          Alcotest.test_case "server_read" `Quick test_failpoint_read;
          Alcotest.test_case "server_accept" `Quick test_failpoint_accept;
        ] );
      ( "supervision",
        [
          Alcotest.test_case "wedged worker is lost and replaced" `Quick test_wedge_recovery;
          Alcotest.test_case "dead worker domain is recovered" `Quick test_worker_die_recovery;
          Alcotest.test_case "poison query is quarantined" `Quick test_quarantine;
          Alcotest.test_case "stale queued connections are shed" `Quick test_queue_deadline_shed;
        ] );
      ( "client",
        [
          Alcotest.test_case "deadline propagation rewrite" `Quick test_client_deadline_rewrite;
          Alcotest.test_case "send fault is retried" `Quick test_client_send_retry;
          Alcotest.test_case "overload is retried with backoff" `Quick test_client_overload_retry;
          Alcotest.test_case "zero budget fails fast" `Quick test_client_budget_exhausted;
        ] );
      ("chaos", [ Alcotest.test_case "randomized loss soak" `Quick test_chaos_soak ]);
      ( "ingestion",
        [
          Alcotest.test_case "framed INGEST/DELETE/MERGE over the wire" `Quick test_ingest_wire;
          Alcotest.test_case "writes refused without a store" `Quick test_ingest_not_enabled;
          Alcotest.test_case "write lane zero rejects deterministically" `Quick
            test_ingest_write_lane_zero;
          Alcotest.test_case "restart replays to the acked set" `Quick test_ingest_restart_replay;
          Alcotest.test_case "wal and merge failpoints leave a consistent store" `Quick
            test_ingest_failpoints;
          Alcotest.test_case "anonymous INGEST is never retried past ambiguity" `Quick
            test_ingest_retry_idempotency;
        ] );
      ( "ingestion-chaos",
        [ Alcotest.test_case "mixed query+write soak" `Slow test_ingest_chaos_soak ] );
      ( "eventloop",
        [
          Alcotest.test_case "a thousand idle connections cost fds, not domains" `Quick
            test_thousand_idle_connections;
        ] );
      ( "sharding",
        [
          Alcotest.test_case "scatter-gather lifecycle over the wire" `Quick test_shard_wire;
          Alcotest.test_case "shard loss degrades to PARTIAL with attribution" `Quick
            test_shard_loss_partial_wire;
          Alcotest.test_case "corrupt shard is isolated at load" `Quick
            test_shard_corrupt_at_load;
          Alcotest.test_case "write hints track the routed shard's backlog" `Quick
            test_shard_write_hint_tracks_backlog;
          Alcotest.test_case "SHARDS refused unsharded" `Quick test_shards_verb_unsharded;
        ] );
      ( "replication",
        [
          Alcotest.test_case "replica wire: SHARDS/STATS, RELOAD ord.replica, READONLY" `Quick
            test_replica_wire;
          Alcotest.test_case "client READONLY policy: retry upserts, fail-fast anonymous" `Quick
            test_client_readonly_policy;
        ] );
    ]
