(** Interned element names.

    Query processing compares tags constantly; interning turns those
    comparisons into integer equality and lets {!Doc} index elements by
    tag with plain arrays. *)

type t = int
(** An interned tag.  Valid only with respect to the {!table} that
    produced it. *)

type table
(** A mutable intern table. *)

val create : unit -> table

val intern : table -> string -> t
(** [intern tbl name] returns the id for [name], allocating one on first
    use.  Ids are dense, starting at 0. *)

val copy : table -> table
(** An independent table with the same name-to-id mapping.  Interning
    into the copy never affects the original, so ids remain stable in
    documents that share the original — the primitive {!Doc.append_trees}
    needs to grow a corpus without mutating the generation being
    served. *)

val find : table -> string -> t option
(** [find tbl name] returns the id for [name] if already interned. *)

val name : table -> t -> string
(** [name tbl id] is the string for [id].
    @raise Invalid_argument if [id] was not allocated by [tbl]. *)

val count : table -> int
(** Number of distinct tags interned so far. *)
