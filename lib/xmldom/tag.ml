type t = int

type table = {
  by_name : (string, int) Hashtbl.t;
  mutable names : string array;
  mutable n : int;
}

let create () = { by_name = Hashtbl.create 64; names = Array.make 64 ""; n = 0 }

let intern tbl name =
  match Hashtbl.find_opt tbl.by_name name with
  | Some id -> id
  | None ->
    let id = tbl.n in
    if id = Array.length tbl.names then begin
      let grown = Array.make (2 * id) "" in
      Array.blit tbl.names 0 grown 0 id;
      tbl.names <- grown
    end;
    tbl.names.(id) <- name;
    tbl.n <- id + 1;
    Hashtbl.add tbl.by_name name id;
    id

let copy tbl =
  {
    by_name = Hashtbl.copy tbl.by_name;
    names = Array.copy tbl.names;
    n = tbl.n;
  }

let find tbl name = Hashtbl.find_opt tbl.by_name name

let name tbl id =
  if id < 0 || id >= tbl.n then invalid_arg "Tag.name: unknown tag id";
  tbl.names.(id)

let count tbl = tbl.n
