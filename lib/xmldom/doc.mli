(** Arena representation of an XML document.

    Elements are numbered by pre-order position ([0 .. size - 1]); the
    classic (pre, post, level) numbering supports O(1) containment tests,
    which is the interface the structural-join algorithms of Al-Khalifa
    et al. (ICDE 2002) require.  Character data is kept as a flat array of
    (owner, text) chunks in document order, so full-text indexing can
    assign globally increasing token positions whose per-subtree ranges
    are contiguous. *)

type elem = int
(** An element id: the pre-order rank of the element. *)

type t

val of_tree : Xml.t -> t
(** [of_tree t] builds the arena for the tree rooted at [t].
    @raise Invalid_argument if the root is a text node. *)

val of_string : string -> (t, Xml_parser.error) result
(** Parse then build. *)

val of_file : string -> (t, Xml_parser.error) result

val size : t -> int
(** Number of elements. *)

val root : t -> elem
(** The document element (always [0]). *)

val tags : t -> Tag.table
(** The intern table used by this document. *)

val tag : t -> elem -> Tag.t
val tag_name : t -> elem -> string
val post : t -> elem -> int
val level : t -> elem -> int
(** [level d e] is the depth of [e]; the root has level 0. *)

val parent : t -> elem -> elem option
val first_child : t -> elem -> elem option
val next_sibling : t -> elem -> elem option
val children : t -> elem -> elem list
val attributes : t -> elem -> Xml.attr list
val attribute : t -> elem -> string -> string option

val subtree_end : t -> elem -> int
(** [subtree_end d e] is one past the last pre-order id in the subtree of
    [e]; descendants of [e] are exactly [e + 1 .. subtree_end d e - 1]. *)

val is_ancestor : t -> elem -> elem -> bool
(** [is_ancestor d a b] — strict: [a <> b]. *)

val is_parent : t -> elem -> elem -> bool

val ancestors : t -> elem -> elem list
(** Ancestors of [e], nearest first, excluding [e]. *)

val by_tag : t -> Tag.t -> elem array
(** [by_tag d t] is the array of elements with tag [t], sorted by
    pre-order id.  The returned array is shared: do not mutate. *)

val by_tag_name : t -> string -> elem array
(** Like {!by_tag}, resolving the name first; [||] for unknown tags. *)

val levels : t -> int array
(** The packed level column, indexed by element id.  Shared with the
    document: do not mutate.  For join inner loops that cannot afford a
    call per node. *)

val parents : t -> int array
(** The packed parent column ([-1] for the root).  Shared: do not
    mutate. *)

val subtree_ends : t -> int array
(** The packed subtree-end column (see {!subtree_end}).  Shared: do not
    mutate. *)

(** Cursor-style access to sorted posting arrays (per-tag element
    streams, or any pre-order-sorted element array).  A cursor only
    moves forward; {!Postings.seek_geq} gallops, so a monotone sequence
    of seeks costs O(n) over the whole stream regardless of how far the
    individual jumps are.  This is the access path the holistic twig
    join uses: branch-light sequential scans, no per-tuple list
    allocation. *)
module Postings : sig
  type cursor

  val of_array : elem array -> cursor
  (** Cursor at the start of the (borrowed, not copied) array. *)

  val length : cursor -> int
  val at_end : cursor -> bool

  val peek : cursor -> elem
  (** The element under the cursor.  Undefined when [at_end]. *)

  val advance : cursor -> unit

  val seek_geq : cursor -> elem -> unit
  (** Move forward to the first element [>= x] (or the end).  Never
      moves backward: seeking below the current position is a no-op. *)
end

val chunk_count : t -> int
val chunk_owner : t -> int -> elem
val chunk_text : t -> int -> string

val direct_text : t -> elem -> string
(** Concatenated character data directly under [e]. *)

val deep_text : t -> elem -> string
(** Concatenated character data in the subtree of [e], document order. *)

val iter_elements : t -> (elem -> unit) -> unit

val append_trees : t -> Xml.t list -> t
(** [append_trees d kids] is the arena [of_tree] would produce for [d]'s
    tree with [kids] appended, in order, as the root's last children —
    every array is element-for-element identical to that fresh build.
    [d] itself is untouched (its intern table is copied first), so a
    generation still being served and its successor can coexist; the
    cost is O(size of result), but old posting and content arrays are
    shared wherever the append leaves them unchanged.
    @raise Invalid_argument if any of [kids] is a text node. *)

val to_tree : t -> Xml.t
(** Rebuild an {!Xml.t}.  Direct text chunks are emitted in document
    order relative to element children. *)

val tree_of : t -> elem -> Xml.t
(** Like {!to_tree} but for the subtree rooted at the given element. *)

val serialized_size : t -> int
(** Byte length of [Xml.to_string (to_tree d)] — used by benchmarks to
    report document sizes. *)

val path_to_root : t -> elem -> string
(** Human-readable location like ["article[3]/section[1]/p[2]"]. *)
