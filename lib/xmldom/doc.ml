type elem = int

type t = {
  tags : Tag.table;
  n : int;
  tag : int array;
  post : int array;
  level : int array;
  parent : int array; (* -1 for the root *)
  subtree_end : int array;
  attrs : Xml.attr list array;
  (* Per-element content in document order: item >= 0 is a child element
     id, item < 0 is chunk index [-item - 1].  Preserves the interleaving
     of text and element children for faithful reconstruction. *)
  content : int array array;
  chunk_owner : int array;
  chunk_text : string array;
  by_tag : elem array array;
}

let count_chunks tree =
  let rec go acc = function
    | Xml.Text _ -> acc + 1
    | Xml.Element (_, _, kids) -> List.fold_left go acc kids
  in
  go 0 tree

let of_tree tree =
  (match tree with
  | Xml.Text _ -> invalid_arg "Doc.of_tree: root must be an element"
  | Xml.Element _ -> ());
  let n = Xml.count_elements tree in
  let n_chunks = count_chunks tree in
  let tags = Tag.create () in
  let tag = Array.make n 0 in
  let post = Array.make n 0 in
  let level = Array.make n 0 in
  let parent = Array.make n (-1) in
  let subtree_end = Array.make n 0 in
  let attrs = Array.make n [] in
  let content = Array.make n [||] in
  let chunk_owner = Array.make (max 1 n_chunks) 0 in
  let chunk_text = Array.make (max 1 n_chunks) "" in
  let next_pre = ref 0 in
  let next_post = ref 0 in
  let next_chunk = ref 0 in
  let rec build node par lvl =
    match node with
    | Xml.Text _ -> assert false
    | Xml.Element (name, ats, kids) ->
      let id = !next_pre in
      incr next_pre;
      tag.(id) <- Tag.intern tags name;
      level.(id) <- lvl;
      parent.(id) <- par;
      attrs.(id) <- ats;
      let items =
        List.map
          (fun kid ->
            match kid with
            | Xml.Text s ->
              let c = !next_chunk in
              incr next_chunk;
              chunk_owner.(c) <- id;
              chunk_text.(c) <- s;
              -c - 1
            | Xml.Element _ -> build kid id (lvl + 1))
          kids
      in
      content.(id) <- Array.of_list items;
      post.(id) <- !next_post;
      incr next_post;
      subtree_end.(id) <- !next_pre;
      id
  in
  let root = build tree (-1) 0 in
  assert (root = 0);
  let counts = Array.make (Tag.count tags) 0 in
  Array.iter (fun t -> counts.(t) <- counts.(t) + 1) tag;
  let by_tag = Array.map (fun c -> Array.make c 0) counts in
  let fill = Array.make (Tag.count tags) 0 in
  for e = 0 to n - 1 do
    let t = tag.(e) in
    by_tag.(t).(fill.(t)) <- e;
    fill.(t) <- fill.(t) + 1
  done;
  {
    tags;
    n;
    tag;
    post;
    level;
    parent;
    subtree_end;
    attrs;
    content;
    chunk_owner = (if n_chunks = 0 then [||] else chunk_owner);
    chunk_text = (if n_chunks = 0 then [||] else chunk_text);
    by_tag;
  }

(* Append [new_kids] as the last children of the root, producing the
   arena [of_tree] would build for the widened tree.  Everything about
   the old elements survives verbatim — ids, posts, levels, contents,
   chunk numbers — except the root, which still closes last (post and
   subtree_end move to the new end) and gains the new child ids at the
   end of its content.  New elements take pre-order ids from [n], posts
   from [n - 1] (the slot the root vacates), chunks from the old chunk
   count; per-tag posting arrays stay sorted because every new id is
   larger than every old one.  The input document is not mutated: the
   intern table is copied before the new trees introduce tags. *)
let append_trees d new_kids =
  List.iter
    (fun t ->
      match t with
      | Xml.Text _ -> invalid_arg "Doc.append_trees: appended trees must be elements"
      | Xml.Element _ -> ())
    new_kids;
  if new_kids = [] then d
  else begin
    let m = List.fold_left (fun acc t -> acc + Xml.count_elements t) 0 new_kids in
    let m_chunks = List.fold_left (fun acc t -> acc + count_chunks t) 0 new_kids in
    let n = d.n in
    let n' = n + m in
    let old_chunks = Array.length d.chunk_text in
    let chunks' = old_chunks + m_chunks in
    let tags = Tag.copy d.tags in
    let extend src len init =
      let g = Array.make len init in
      Array.blit src 0 g 0 (Array.length src);
      g
    in
    let tag = extend d.tag n' 0 in
    let post = extend d.post n' 0 in
    let level = extend d.level n' 0 in
    let parent = extend d.parent n' (-1) in
    let subtree_end = extend d.subtree_end n' 0 in
    let attrs = extend d.attrs n' [] in
    let content = extend d.content n' [||] in
    let chunk_owner = extend d.chunk_owner chunks' 0 in
    let chunk_text = extend d.chunk_text chunks' "" in
    let next_pre = ref n in
    let next_post = ref (n - 1) in
    let next_chunk = ref old_chunks in
    let rec build node par lvl =
      match node with
      | Xml.Text _ -> assert false
      | Xml.Element (name, ats, kids) ->
        let id = !next_pre in
        incr next_pre;
        tag.(id) <- Tag.intern tags name;
        level.(id) <- lvl;
        parent.(id) <- par;
        attrs.(id) <- ats;
        let items =
          List.map
            (fun kid ->
              match kid with
              | Xml.Text s ->
                let c = !next_chunk in
                incr next_chunk;
                chunk_owner.(c) <- id;
                chunk_text.(c) <- s;
                -c - 1
              | Xml.Element _ -> build kid id (lvl + 1))
            kids
        in
        content.(id) <- Array.of_list items;
        post.(id) <- !next_post;
        incr next_post;
        subtree_end.(id) <- !next_pre;
        id
    in
    let new_ids = List.map (fun t -> build t 0 1) new_kids in
    post.(0) <- n' - 1;
    subtree_end.(0) <- n';
    content.(0) <- Array.append d.content.(0) (Array.of_list new_ids);
    let nt = Tag.count tags in
    let old_arr t = if t < Array.length d.by_tag then d.by_tag.(t) else [||] in
    let counts = Array.make nt 0 in
    for e = n to n' - 1 do
      counts.(tag.(e)) <- counts.(tag.(e)) + 1
    done;
    let by_tag =
      Array.init nt (fun t ->
          if counts.(t) = 0 then old_arr t
          else extend (old_arr t) (Array.length (old_arr t) + counts.(t)) 0)
    in
    let fill = Array.init nt (fun t -> Array.length (old_arr t)) in
    for e = n to n' - 1 do
      let t = tag.(e) in
      by_tag.(t).(fill.(t)) <- e;
      fill.(t) <- fill.(t) + 1
    done;
    { tags; n = n'; tag; post; level; parent; subtree_end; attrs; content; chunk_owner; chunk_text; by_tag }
  end

let of_string s = Result.map of_tree (Xml_parser.parse s)
let of_file path = Result.map of_tree (Xml_parser.parse_file path)

let size d = d.n
let root _ = 0
let tags d = d.tags
let tag d e = d.tag.(e)
let tag_name d e = Tag.name d.tags d.tag.(e)
let post d e = d.post.(e)
let level d e = d.level.(e)
let parent d e = if d.parent.(e) < 0 then None else Some d.parent.(e)

let first_child d e =
  let items = d.content.(e) in
  let rec go i =
    if i >= Array.length items then None
    else if items.(i) >= 0 then Some items.(i)
    else go (i + 1)
  in
  go 0

let children d e =
  Array.fold_right (fun item acc -> if item >= 0 then item :: acc else acc) d.content.(e) []

let next_sibling d e =
  match parent d e with
  | None -> None
  | Some p ->
    let items = d.content.(p) in
    let rec go i seen =
      if i >= Array.length items then None
      else if items.(i) = e then go (i + 1) true
      else if seen && items.(i) >= 0 then Some items.(i)
      else go (i + 1) seen
    in
    go 0 false

let attributes d e = d.attrs.(e)
let attribute d e name = List.assoc_opt name d.attrs.(e)
let subtree_end d e = d.subtree_end.(e)
let is_ancestor d a b = a < b && b < d.subtree_end.(a)
let is_parent d a b = b >= 0 && d.parent.(b) = a

let ancestors d e =
  let rec go acc e =
    match parent d e with
    | None -> List.rev acc
    | Some p -> go (p :: acc) p
  in
  go [] e

let by_tag d t = if t < 0 || t >= Array.length d.by_tag then [||] else d.by_tag.(t)

let by_tag_name d name =
  match Tag.find d.tags name with
  | None -> [||]
  | Some t -> by_tag d t

let levels d = d.level
let parents d = d.parent
let subtree_ends d = d.subtree_end

module Postings = struct
  type cursor = { arr : elem array; mutable pos : int }

  let of_array arr = { arr; pos = 0 }
  let length c = Array.length c.arr
  let at_end c = c.pos >= Array.length c.arr
  let peek c = c.arr.(c.pos)
  let advance c = c.pos <- c.pos + 1

  (* Gallop forward to the first element >= x: exponential probe from
     the current position, then binary search inside the bracketed run.
     O(log gap), so a full sweep of monotone seeks stays linear in the
     posting array even when individual seeks jump far ahead. *)
  let seek_geq c x =
    let a = c.arr in
    let n = Array.length a in
    if c.pos < n && a.(c.pos) < x then begin
      let step = ref 1 in
      let base = c.pos in
      while base + !step < n && a.(base + !step) < x do
        step := !step * 2
      done;
      let lo = ref (base + (!step / 2) + 1) and hi = ref (min n (base + !step + 1)) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if a.(mid) < x then lo := mid + 1 else hi := mid
      done;
      c.pos <- !lo
    end
end

let chunk_count d = Array.length d.chunk_text
let chunk_owner d c = d.chunk_owner.(c)
let chunk_text d c = d.chunk_text.(c)

let direct_text d e =
  let b = Buffer.create 16 in
  Array.iter (fun item -> if item < 0 then Buffer.add_string b d.chunk_text.(-item - 1)) d.content.(e);
  Buffer.contents b

let deep_text d e =
  let b = Buffer.create 64 in
  let rec go e =
    Array.iter
      (fun item -> if item < 0 then Buffer.add_string b d.chunk_text.(-item - 1) else go item)
      d.content.(e)
  in
  go e;
  Buffer.contents b

let iter_elements d f =
  for e = 0 to d.n - 1 do
    f e
  done

let tree_of d start =
  let rec rebuild e =
    let kids =
      Array.to_list d.content.(e)
      |> List.map (fun item ->
             if item < 0 then Xml.Text d.chunk_text.(-item - 1) else rebuild item)
    in
    Xml.Element (tag_name d e, d.attrs.(e), kids)
  in
  rebuild start

let to_tree d = tree_of d 0

let serialized_size d = String.length (Xml.to_string (to_tree d))

let path_to_root d e =
  let sibling_rank e =
    (* 1-based rank of [e] among same-tag siblings. *)
    match parent d e with
    | None -> 1
    | Some p ->
      let rank = ref 0 in
      let found = ref 1 in
      List.iter
        (fun c ->
          if d.tag.(c) = d.tag.(e) then begin
            incr rank;
            if c = e then found := !rank
          end)
        (children d p);
      !found
  in
  let rec go e acc =
    let step = Printf.sprintf "%s[%d]" (tag_name d e) (sibling_rank e) in
    match parent d e with
    | None -> step :: acc
    | Some p -> go p (step :: acc)
  in
  String.concat "/" (go e [])
