type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Emission *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let number_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else
    (* Shortest representation that round-trips reliably for the
       latency/rate magnitudes the bench emits. *)
    let s = Printf.sprintf "%.12g" f in
    s

let to_string ?(indent = 2) t =
  let b = Buffer.create 1024 in
  let pad depth = if indent > 0 then Buffer.add_string b (String.make (depth * indent) ' ') in
  let nl () = if indent > 0 then Buffer.add_char b '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Num f -> Buffer.add_string b (number_string f)
    | Str s -> escape_string b s
    | List [] -> Buffer.add_string b "[]"
    | List items ->
      Buffer.add_char b '[';
      nl ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char b ',';
            nl ()
          end;
          pad (depth + 1);
          go (depth + 1) item)
        items;
      nl ();
      pad depth;
      Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
      Buffer.add_char b '{';
      nl ();
      List.iteri
        (fun i (k, v) ->
          if i > 0 then begin
            Buffer.add_char b ',';
            nl ()
          end;
          pad (depth + 1);
          escape_string b k;
          Buffer.add_string b (if indent > 0 then ": " else ":");
          go (depth + 1) v)
        fields;
      nl ();
      pad depth;
      Buffer.add_char b '}'
  in
  go 0 t;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing: plain recursive descent over a byte offset. *)

exception Bad of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Bad (!pos, msg)) in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char b '"'; advance ()
             | '\\' -> Buffer.add_char b '\\'; advance ()
             | '/' -> Buffer.add_char b '/'; advance ()
             | 'n' -> Buffer.add_char b '\n'; advance ()
             | 't' -> Buffer.add_char b '\t'; advance ()
             | 'r' -> Buffer.add_char b '\r'; advance ()
             | 'b' -> Buffer.add_char b '\b'; advance ()
             | 'f' -> Buffer.add_char b '\012'; advance ()
             | 'u' ->
               advance ();
               if !pos + 4 > n then fail "truncated \\u escape";
               let hex = String.sub s !pos 4 in
               let code =
                 try int_of_string ("0x" ^ hex) with Failure _ -> fail "bad \\u escape"
               in
               pos := !pos + 4;
               (* Encode the code point as UTF-8; unpaired surrogates
                  come out as-is (the bench never writes them). *)
               if code < 0x80 then Buffer.add_char b (Char.chr code)
               else if code < 0x800 then begin
                 Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                 Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
               end
               else begin
                 Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                 Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                 Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
               end
             | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
          go ()
        | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with Some f -> f | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        elements ();
        List (List.rev !items)
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> Num (parse_number ())
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) -> Error (Printf.sprintf "json: at byte %d: %s" at msg)

(* ------------------------------------------------------------------ *)
(* Accessors *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function Num f -> Some f | _ -> None

let to_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_list = function List items -> items | _ -> []
let string_value = function Str s -> Some s | _ -> None
