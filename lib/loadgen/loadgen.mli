(** The [flexpath bench serve] engine: an open-loop load generator for
    the {!Flexpath_server} wire protocol (DESIGN.md §4j).

    One domain multiplexes every client connection over a {!Poller}
    (the same readiness layer the server's event loop uses), so
    thousands of mostly-idle connections cost the generator an fd and
    a buffer each — mirroring what they cost the server.  Arrivals
    are an open-loop Poisson process at the target rate: each request
    is stamped with its {e scheduled} arrival time and its latency is
    measured from that stamp, not from the moment a connection came
    free, so a stalling server inflates the tail instead of silently
    throttling the generator (no coordinated omission).

    The request mix is Zipf-weighted over a fixed query set, with
    optional [PING] and framed idempotent-[INGEST] fractions.  A
    connection the server closes (request-level [OVERLOADED] reject,
    read-timeout drop, chaos) is transparently reopened while the
    measurement window is live, so the pool size — the knob under
    test — stays constant. *)

type workload = {
  rate : float;  (** Offered load in requests/second (open loop). *)
  duration_s : float;  (** Measured window, after warmup. *)
  warmup_s : float;
      (** Requests scheduled before the window opens are sent and
          settled but never counted. *)
  queries : string list;
      (** [QUERY]/[RELAX]/... request lines, most-popular first; drawn
          with Zipf([zipf_s]) weights by rank. *)
  zipf_s : float;  (** Zipf exponent; [0.0] is uniform. *)
  ping_fraction : float;  (** Share of arrivals that are [PING]. *)
  ingest_fraction : float;
      (** Share of arrivals that are framed [INGEST] upserts over a
          small rotating id set (so the corpus stays bounded);
          requires a write-enabled server, otherwise they count as
          [errors]. *)
  seed : int;  (** PRNG seed: arrivals and mix are reproducible. *)
}

val default_workload : workload
(** 100 req/s for 5 s after 1 s of warmup, the {!default_queries}
    mix, Zipf 1.1, 20% [PING], no ingest, seed 42. *)

val default_queries : string list
(** A rank-ordered query set over the synthetic article collection
    ({!Xmark.Articles}): mixed selectivity, some with budgets, one
    [STATS] probe. *)

type result = {
  connections : int;  (** Pool size this scale ran with. *)
  target_rate : float;
  duration_s : float;
  sent : int;  (** Requests scheduled inside the measured window. *)
  completed : int;  (** Responses received for measured requests. *)
  ok : int;
  partial : int;
  overloaded : int;
  quarantined : int;
  errors : int;  (** [ERR] responses. *)
  dropped : int;
      (** Measured requests whose connection died before a response
          (plus any still unsettled when the drain deadline hit). *)
  reconnects : int;  (** Connections reopened during the whole run. *)
  achieved_rps : float;  (** [completed / duration_s]. *)
  goodput_rps : float;  (** [(ok + partial) / duration_s]. *)
  samples : int;  (** Latency samples = [ok + partial]. *)
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  p999_ms : float;
  max_ms : float;
  mean_ms : float;  (** All 0 when [samples = 0]. *)
}

val run :
  host:string -> port:int -> connections:int -> workload -> (result, string) Stdlib.result
(** Open the pool, run warmup + the measured window, drain in-flight
    requests (10 s bound), close everything.  [Error] only for setup
    failures (connect refused, fd budget); server-side misbehavior is
    data, reported in the counters. *)

(** {2 The [BENCH_serve.json] artifact} *)

val result_to_json : result -> Json.t

val report : config:(string * Json.t) list -> results:result list -> Json.t
(** The full artifact: [schema_version], [bench], [created_unix_s],
    the [config] fields verbatim, one [scales] entry per result, and
    a [summary] comparing the largest scale's p99 against the
    smallest's (the depth-8 baseline ratio the roadmap tracks). *)

val check_report : Json.t -> (unit, string) Stdlib.result
(** The schema gate [flexpath bench check] and CI enforce.  Dispatches
    on the artifact's ["bench"] tag: a serve artifact (or any untagged
    one) needs a positive [schema_version], non-empty [scales], and for
    every scale a positive [connections], numeric [goodput_rps] and a
    [latency_ms] object with numeric [p50]/[p99]/[p999]; a ["twig"]
    artifact ([BENCH_twig.json], the holistic-vs-binary ablation) needs
    a non-empty [series] whose entries carry a [query] label and
    numeric [binary_ms]/[holistic_ms]/[speedup]; a ["replica"] artifact
    ([BENCH_replica.json], the §4l replication ablation) needs
    [query.healthy]/[query.replica_lost] latency percentiles — with
    [replica_lost.partials] exactly 0, the failover guarantee encoded
    as schema — numeric [ingest.sync_docs_per_s]/[async_docs_per_s],
    and a [catchup] object with [records_behind] and [ms]. *)
