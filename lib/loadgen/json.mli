(** A minimal JSON tree, emitter and parser — just enough for the
    bench artifacts ([BENCH_serve.json]) to be written, re-read and
    schema-checked without an external dependency.

    Numbers are floats (JSON's own model); integral values are
    rendered without a decimal point.  The parser accepts the full
    JSON grammar except that [\uXXXX] escapes outside the BMP's
    surrogate range are decoded to UTF-8 and surrogate pairs are not
    combined (the bench never emits them). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:int -> t -> string
(** Render with [indent]-space pretty-printing (default 2); [0] emits
    compact single-line JSON. *)

val parse : string -> (t, string) result
(** Parse one JSON document; the error message carries a byte offset.
    Trailing whitespace is allowed, trailing garbage is not. *)

(** {2 Accessors} (all total: [None]/[[]] on shape mismatch) *)

val member : string -> t -> t option
val to_float : t -> float option
val to_int : t -> int option
val to_list : t -> t list
val string_value : t -> string option
