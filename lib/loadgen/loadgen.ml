module Poller = Flexpath_server.Poller
module Protocol = Flexpath_server.Protocol

let now = Unix.gettimeofday

(* ------------------------------------------------------------------ *)
(* Workload *)

type workload = {
  rate : float;
  duration_s : float;
  warmup_s : float;
  queries : string list;
  zipf_s : float;
  ping_fraction : float;
  ingest_fraction : float;
  seed : int;
}

let default_queries =
  [
    "QUERY k=3 //article[.contains(\"xml\" and \"streaming\")]";
    "QUERY k=5 //article[./section/title and .contains(\"query\")]";
    "QUERY k=3 //section[./algorithm]/title";
    "QUERY k=10 //article[.contains(\"database\" and \"index\")]";
    "QUERY k=3 timeout_ms=200 //article[./abstract and .contains(\"ranking\")]";
    "QUERY k=5 //article/title[.contains(\"retrieval\")]";
    "RELAX steps=4 //article[./section/algorithm]";
    "STATS";
  ]

let default_workload =
  {
    rate = 100.0;
    duration_s = 5.0;
    warmup_s = 1.0;
    queries = default_queries;
    zipf_s = 1.1;
    ping_fraction = 0.2;
    ingest_fraction = 0.0;
    seed = 42;
  }

(* ------------------------------------------------------------------ *)
(* Results *)

type result = {
  connections : int;
  target_rate : float;
  duration_s : float;
  sent : int;
  completed : int;
  ok : int;
  partial : int;
  overloaded : int;
  quarantined : int;
  errors : int;
  dropped : int;
  reconnects : int;
  achieved_rps : float;
  goodput_rps : float;
  samples : int;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  p999_ms : float;
  max_ms : float;
  mean_ms : float;
}

(* ------------------------------------------------------------------ *)
(* Connection state: the generator mirrors the server's event loop in
   miniature — one domain, one poller, nonblocking everything. *)

type phase =
  | Connecting
  | Idle
  | Busy  (** A request is written (or being written); its response is owed. *)

(* An in-flight request: when it was scheduled to arrive (the
   latency origin) and whether it falls inside the measured window. *)
type inflight = { scheduled : float; measured : bool }

type conn = {
  mutable fd : Unix.file_descr;
  mutable phase : phase;
  mutable out : string;  (** Unsent bytes of the current request. *)
  mutable opos : int;
  mutable inb : string;  (** Received, not yet deframed. *)
  mutable cur : inflight option;
  mutable alive : bool;
}

let fd_int (fd : Unix.file_descr) : int = Obj.magic fd

(* ------------------------------------------------------------------ *)
(* Sampling *)

type kind = Kping | Kquery of int | Kingest

let make_sampler w =
  let queries = Array.of_list w.queries in
  let nq = Array.length queries in
  (* Zipf CDF by rank: weight(i) = 1 / (i+1)^s. *)
  let cdf =
    if nq = 0 then [||]
    else begin
      let weights = Array.init nq (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) w.zipf_s) in
      let total = Array.fold_left ( +. ) 0.0 weights in
      let acc = ref 0.0 in
      Array.map
        (fun wt ->
          acc := !acc +. (wt /. total);
          !acc)
        weights
    end
  in
  let ingest_serial = ref 0 in
  fun rng ->
    let u = Random.State.float rng 1.0 in
    if u < w.ping_fraction || nq = 0 then Kping
    else if u < w.ping_fraction +. w.ingest_fraction then begin
      incr ingest_serial;
      Kingest
    end
    else begin
      let v = Random.State.float rng 1.0 in
      let rec find i = if i >= nq - 1 || cdf.(i) >= v then i else find (i + 1) in
      Kquery (find 0)
    end

let ingest_ids = 64

let render_request w rng kind serial =
  match kind with
  | Kping -> "PING\n"
  | Kquery i -> List.nth w.queries i ^ "\n"
  | Kingest ->
    (* A rotating id set keeps the corpus bounded: retransmissions of
       the same id are upserts, so the bench never grows the server
       without bound. *)
    let id = Printf.sprintf "bench-%d" (serial mod ingest_ids) in
    let filler = Random.State.int rng 1000 in
    let body =
      Printf.sprintf
        "<article><title>bench %d</title><abstract><paragraph>xml streaming bench \
         document</paragraph></abstract></article>"
        filler
    in
    Printf.sprintf "INGEST %d id=%s\n%s\n" (String.length body) id body

(* ------------------------------------------------------------------ *)
(* Percentiles over the full sample set (bench windows are short
   enough that exact beats a reservoir here). *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else begin
    let idx = int_of_float (Float.ceil (p /. 100.0 *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) idx))
  end

(* ------------------------------------------------------------------ *)
(* The run *)

type counters = {
  mutable c_sent : int;
  mutable c_ok : int;
  mutable c_partial : int;
  mutable c_overloaded : int;
  mutable c_quarantined : int;
  mutable c_errors : int;
  mutable c_dropped : int;
  mutable c_reconnects : int;
}

let drain_timeout_s = 10.0
let setup_timeout_s = 30.0
let connect_window = 256

let run ~host ~port ~connections w =
  if w.rate <= 0.0 then Error "rate must be positive"
  else if connections <= 0 then Error "connections must be positive"
  else begin
    let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
    let poller = Poller.create () in
    let conns : (int, conn) Hashtbl.t = Hashtbl.create (2 * connections) in
    let rng = Random.State.make [| w.seed; connections |] in
    let sample = make_sampler w in
    let counters =
      {
        c_sent = 0;
        c_ok = 0;
        c_partial = 0;
        c_overloaded = 0;
        c_quarantined = 0;
        c_errors = 0;
        c_dropped = 0;
        c_reconnects = 0;
      }
    in
    let latencies = ref (Array.make 4096 0.0) in
    let n_lat = ref 0 in
    let add_latency ms =
      if !n_lat >= Array.length !latencies then begin
        let bigger = Array.make (2 * Array.length !latencies) 0.0 in
        Array.blit !latencies 0 bigger 0 !n_lat;
        latencies := bigger
      end;
      !latencies.(!n_lat) <- ms;
      incr n_lat
    in
    let idle : conn Queue.t = Queue.create () in
    let scratch = Bytes.create 65536 in
    let outstanding = ref 0 in
    let ingest_serial = ref 0 in
    (* -------------------------------------------------------------- *)
    let start_connect c =
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.set_nonblock fd;
      c.fd <- fd;
      c.phase <- Connecting;
      c.out <- "";
      c.opos <- 0;
      c.inb <- "";
      c.cur <- None;
      c.alive <- true;
      Hashtbl.replace conns (fd_int fd) c;
      match Unix.connect fd addr with
      | () ->
        c.phase <- Idle;
        Poller.set poller fd ~read:true ~write:false;
        Queue.push c idle;
        true
      | exception Unix.Unix_error (Unix.EINPROGRESS, _, _) ->
        Poller.set poller fd ~read:false ~write:true;
        true
      | exception Unix.Unix_error _ ->
        Hashtbl.remove conns (fd_int fd);
        (try Unix.close fd with Unix.Unix_error _ -> ());
        c.alive <- false;
        false
    in
    let kill c =
      if c.alive then begin
        c.alive <- false;
        Hashtbl.remove conns (fd_int c.fd);
        (try Poller.remove poller c.fd with _ -> ());
        try Unix.close c.fd with Unix.Unix_error _ -> ()
      end
    in
    let settle_lost c =
      (* The connection died with a request owed: the request is lost,
         never retried (open loop). *)
      match c.cur with
      | None -> ()
      | Some infl ->
        c.cur <- None;
        decr outstanding;
        if infl.measured then counters.c_dropped <- counters.c_dropped + 1
    in
    (* Flush as much of c.out as the socket takes; false = conn died. *)
    let rec flush_out c =
      let remaining = String.length c.out - c.opos in
      if remaining = 0 then true
      else
        match Unix.write_substring c.fd c.out c.opos remaining with
        | 0 -> true
        | n ->
          c.opos <- c.opos + n;
          flush_out c
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> true
        | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> false
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> flush_out c
    in
    let start_request c infl line =
      c.cur <- Some infl;
      c.phase <- Busy;
      c.out <- line;
      c.opos <- 0;
      incr outstanding;
      if infl.measured then counters.c_sent <- counters.c_sent + 1;
      if flush_out c then
        Poller.set poller c.fd ~read:true ~write:(c.opos < String.length c.out)
      else begin
        settle_lost c;
        kill c;
        counters.c_reconnects <- counters.c_reconnects + 1;
        ignore (start_connect c)
      end
    in
    let record_response c status =
      match c.cur with
      | None -> () (* unsolicited frame (accept-level reject); close follows *)
      | Some infl ->
        c.cur <- None;
        decr outstanding;
        if infl.measured then begin
          let lat_ms = (now () -. infl.scheduled) *. 1000.0 in
          (match (status : Protocol.status) with
          | Ok_ ->
            counters.c_ok <- counters.c_ok + 1;
            add_latency lat_ms
          | Partial ->
            counters.c_partial <- counters.c_partial + 1;
            add_latency lat_ms
          | Overloaded | Readonly ->
            (* Both are retry-with-hint shed classes: admission backoff
               and the disk-fault read-only degrade. *)
            counters.c_overloaded <- counters.c_overloaded + 1
          | Quarantined -> counters.c_quarantined <- counters.c_quarantined + 1
          | Err | Bye -> counters.c_errors <- counters.c_errors + 1)
        end
    in
    (* Deframe complete responses out of c.inb; false = protocol
       violation (treated like a dead conn). *)
    let max_status_line = 256 in
    let rec consume_responses c =
      match String.index_opt c.inb '\n' with
      | None -> String.length c.inb <= max_status_line
      | Some nl -> (
        let line = String.sub c.inb 0 nl in
        let line =
          if String.length line > 0 && line.[String.length line - 1] = '\r' then
            String.sub line 0 (String.length line - 1)
          else line
        in
        match String.index_opt line ' ' with
        | None -> false
        | Some sp -> (
          let status_s = String.sub line 0 sp in
          let len_s = String.sub line (sp + 1) (String.length line - sp - 1) in
          match (Protocol.status_of_string status_s, int_of_string_opt len_s) with
          | Error _, _ | _, None -> false
          | Ok status, Some len ->
            if len < 0 then false
            else begin
              let frame_end = nl + 1 + len + 1 in
              if String.length c.inb < frame_end then true (* need more bytes *)
              else begin
                c.inb <- String.sub c.inb frame_end (String.length c.inb - frame_end);
                record_response c status;
                c.phase <- Idle;
                Queue.push c idle;
                Poller.set poller c.fd ~read:true ~write:false;
                consume_responses c
              end
            end))
    in
    let reconnect ?(quiet = false) c =
      settle_lost c;
      kill c;
      if not quiet then counters.c_reconnects <- counters.c_reconnects + 1;
      ignore (start_connect c)
    in
    let handle_readable c =
      match Unix.read c.fd scratch 0 (Bytes.length scratch) with
      | 0 -> reconnect c
      | n ->
        c.inb <- c.inb ^ Bytes.sub_string scratch 0 n;
        if c.phase = Busy then begin
          if not (consume_responses c) then reconnect c
        end
        else
          (* Data on an idle conn is an accept-level reject's farewell
             frame; drop it, the EOF follows. *)
          c.inb <- ""
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
      | exception Unix.Unix_error _ -> reconnect c
    in
    let handle_writable c =
      match c.phase with
      | Connecting -> (
        match Unix.getsockopt_error c.fd with
        | None ->
          c.phase <- Idle;
          Poller.set poller c.fd ~read:true ~write:false;
          Queue.push c idle
        | Some _ ->
          kill c;
          counters.c_reconnects <- counters.c_reconnects + 1;
          ignore (start_connect c))
      | Busy ->
        if flush_out c then begin
          if c.opos >= String.length c.out then
            Poller.set poller c.fd ~read:true ~write:false
        end
        else reconnect c
      | Idle -> ()
    in
    (* -------------------------------------------------------------- *)
    (* Phase 1: establish the pool, a bounded window at a time so the
       listener's backlog is never swamped. *)
    let pool = Array.init connections (fun _ ->
        { fd = Unix.stdin; phase = Connecting; out = ""; opos = 0; inb = ""; cur = None;
          alive = false })
    in
    let setup_deadline = now () +. setup_timeout_s in
    let next_to_start = ref 0 in
    let established () =
      Array.for_all (fun c -> c.alive && c.phase <> Connecting) pool
    in
    let setup_error = ref None in
    while (not (established ())) && !setup_error = None do
      if now () > setup_deadline then
        setup_error := Some (Printf.sprintf "could not establish %d connections in %.0fs"
                               connections setup_timeout_s)
      else begin
        let connecting =
          Array.fold_left (fun n c -> if c.alive && c.phase = Connecting then n + 1 else n) 0 pool
        in
        let budget = ref (connect_window - connecting) in
        while !budget > 0 && !next_to_start < connections do
          let c = pool.(!next_to_start) in
          incr next_to_start;
          if start_connect c then decr budget
          else setup_error := Some "connect failed during pool setup";
          if !setup_error <> None then budget := 0
        done;
        (* Retry conns whose nonblocking connect failed asynchronously. *)
        Array.iter
          (fun c ->
            if (not c.alive) && !next_to_start >= connections && !setup_error = None then
              if not (start_connect c) then
                setup_error := Some "connect failed during pool setup")
          pool;
        if !setup_error = None then
          Array.iter
            (fun ev ->
              match Hashtbl.find_opt conns (fd_int ev.Poller.fd) with
              | None -> ()
              | Some c ->
                if ev.Poller.error && c.phase = Connecting then begin
                  kill c;
                  counters.c_reconnects <- counters.c_reconnects + 1
                end
                else if ev.Poller.writable then handle_writable c
                else if ev.Poller.readable then handle_readable c)
            (Poller.wait poller ~timeout_ms:100)
      end
    done;
    match !setup_error with
    | Some msg ->
      Hashtbl.iter (fun _ c -> kill c) (Hashtbl.copy conns);
      Poller.close poller;
      Error msg
    | None ->
      (* ------------------------------------------------------------ *)
      (* Phase 2: warmup + measured window + drain. *)
      let t0 = now () in
      let warm_from = t0 +. w.warmup_s in
      let t_gen_end = warm_from +. w.duration_s in
      let drain_by = t_gen_end +. drain_timeout_s in
      let pending : (inflight * string) Queue.t = Queue.create () in
      let next_arrival = ref (t0 +. (-.log (Random.State.float rng 1.0 +. epsilon_float) /. w.rate)) in
      let finished = ref false in
      while not !finished do
        let t = now () in
        (* Generate every arrival now due (open loop: the schedule
           never waits for capacity). *)
        while !next_arrival <= t && !next_arrival < t_gen_end do
          let scheduled = !next_arrival in
          let kind = sample rng in
          (match kind with Kingest -> incr ingest_serial | _ -> ());
          let line = render_request w rng kind !ingest_serial in
          Queue.push ({ scheduled; measured = scheduled >= warm_from }, line) pending;
          next_arrival :=
            !next_arrival +. (-.log (Random.State.float rng 1.0 +. epsilon_float) /. w.rate)
        done;
        (* Assign pendings to idle conns (FIFO: latency includes the
           client-side queue wait). *)
        let rec assign () =
          if not (Queue.is_empty pending) then
            match Queue.take_opt idle with
            | None -> ()
            | Some c ->
              if c.alive && c.phase = Idle then begin
                let infl, line = Queue.pop pending in
                start_request c infl line
              end;
              (* Stale queue entries (reconnected or busy conns) are
                 simply skipped. *)
              assign ()
        in
        assign ();
        let t = now () in
        if t >= t_gen_end && Queue.is_empty pending && !outstanding = 0 then finished := true
        else if t > drain_by then begin
          (* Give up on stragglers: they count as dropped. *)
          Queue.iter
            (fun ((infl : inflight), _) ->
              if infl.measured then counters.c_dropped <- counters.c_dropped + 1)
            pending;
          Queue.clear pending;
          Array.iter (fun c -> if c.cur <> None then settle_lost c) pool;
          finished := true
        end
        else begin
          let timeout_ms =
            if t >= t_gen_end then 100
            else max 0 (min 100 (int_of_float (Float.ceil ((!next_arrival -. t) *. 1000.0))))
          in
          Array.iter
            (fun ev ->
              match Hashtbl.find_opt conns (fd_int ev.Poller.fd) with
              | None -> ()
              | Some c ->
                if c.alive then begin
                  if ev.Poller.writable then handle_writable c;
                  if c.alive && (ev.Poller.readable || ev.Poller.error) then handle_readable c
                end)
            (Poller.wait poller ~timeout_ms)
        end
      done;
      (* ------------------------------------------------------------ *)
      Array.iter kill pool;
      Poller.close poller;
      let sorted = Array.sub !latencies 0 !n_lat in
      Array.sort compare sorted;
      let samples = !n_lat in
      let completed =
        counters.c_ok + counters.c_partial + counters.c_overloaded + counters.c_quarantined
        + counters.c_errors
      in
      let mean =
        if samples = 0 then 0.0
        else Array.fold_left ( +. ) 0.0 sorted /. float_of_int samples
      in
      Ok
        {
          connections;
          target_rate = w.rate;
          duration_s = w.duration_s;
          sent = counters.c_sent;
          completed;
          ok = counters.c_ok;
          partial = counters.c_partial;
          overloaded = counters.c_overloaded;
          quarantined = counters.c_quarantined;
          errors = counters.c_errors;
          dropped = counters.c_dropped;
          reconnects = counters.c_reconnects;
          achieved_rps = float_of_int completed /. w.duration_s;
          goodput_rps = float_of_int (counters.c_ok + counters.c_partial) /. w.duration_s;
          samples;
          p50_ms = percentile sorted 50.0;
          p90_ms = percentile sorted 90.0;
          p99_ms = percentile sorted 99.0;
          p999_ms = percentile sorted 99.9;
          max_ms = (if samples = 0 then 0.0 else sorted.(samples - 1));
          mean_ms = mean;
        }
  end

(* ------------------------------------------------------------------ *)
(* The artifact *)

let result_to_json r =
  Json.Obj
    [
      ("connections", Json.Num (float_of_int r.connections));
      ("target_rate_rps", Json.Num r.target_rate);
      ("duration_s", Json.Num r.duration_s);
      ("sent", Json.Num (float_of_int r.sent));
      ("completed", Json.Num (float_of_int r.completed));
      ("ok", Json.Num (float_of_int r.ok));
      ("partial", Json.Num (float_of_int r.partial));
      ("overloaded", Json.Num (float_of_int r.overloaded));
      ("quarantined", Json.Num (float_of_int r.quarantined));
      ("errors", Json.Num (float_of_int r.errors));
      ("dropped", Json.Num (float_of_int r.dropped));
      ("reconnects", Json.Num (float_of_int r.reconnects));
      ("achieved_rps", Json.Num r.achieved_rps);
      ("goodput_rps", Json.Num r.goodput_rps);
      ( "latency_ms",
        Json.Obj
          [
            ("samples", Json.Num (float_of_int r.samples));
            ("p50", Json.Num r.p50_ms);
            ("p90", Json.Num r.p90_ms);
            ("p99", Json.Num r.p99_ms);
            ("p999", Json.Num r.p999_ms);
            ("max", Json.Num r.max_ms);
            ("mean", Json.Num r.mean_ms);
          ] );
    ]

let report ~config ~results =
  let summary =
    match results with
    | [] -> []
    | _ ->
      let by_conns = List.sort (fun a b -> compare a.connections b.connections) results in
      let baseline = List.hd by_conns in
      let top = List.hd (List.rev by_conns) in
      let ratio = if baseline.p99_ms > 0.0 then top.p99_ms /. baseline.p99_ms else 0.0 in
      [
        ( "summary",
          Json.Obj
            [
              ("baseline_connections", Json.Num (float_of_int baseline.connections));
              ("baseline_p99_ms", Json.Num baseline.p99_ms);
              ("top_connections", Json.Num (float_of_int top.connections));
              ("top_p99_ms", Json.Num top.p99_ms);
              ("top_p99_over_baseline", Json.Num ratio);
            ] );
      ]
  in
  Json.Obj
    ([
       ("schema_version", Json.Num 1.0);
       ("bench", Json.Str "serve");
       ("created_unix_s", Json.Num (Float.of_int (int_of_float (Unix.time ()))));
       ("config", Json.Obj config);
       ("scales", Json.List (List.map result_to_json results));
     ]
    @ summary)

(* The twig ablation's artifact ([BENCH_twig.json], bench "twig"):
   non-empty [series], and per entry a query label plus numeric
   binary/holistic timings and the speedup ratio. *)
let check_twig_report json =
  let ( let* ) = Result.bind in
  let require what = function Some v -> Ok v | None -> Error ("missing or mistyped " ^ what) in
  let* series = require "series array" (Json.member "series" json) in
  let entries = Json.to_list series in
  let* () = if entries <> [] then Ok () else Error "series must be non-empty" in
  let check_entry i entry =
    let at what = Printf.sprintf "series[%d].%s" i what in
    let* _ =
      require (at "query")
        (match Json.member "query" entry with Some (Json.Str s) -> Some s | _ -> None)
    in
    let num what = require (at what) (Option.bind (Json.member what entry) Json.to_float) in
    let* _ = num "binary_ms" in
    let* _ = num "holistic_ms" in
    let* _ = num "speedup" in
    Ok ()
  in
  let rec all i = function
    | [] -> Ok ()
    | entry :: rest ->
      let* () = check_entry i entry in
      all (i + 1) rest
  in
  all 0 entries

(* The replication ablation's artifact ([BENCH_replica.json], bench
   "replica"): healthy and replica-lost latency percentiles with their
   partial/failover counts, sync/async ingest rates, and the follower
   catch-up measurement.  The failover claim is part of the schema:
   losing one replica per query must report zero partials. *)
let check_replica_report json =
  let ( let* ) = Result.bind in
  let require what = function Some v -> Ok v | None -> Error ("missing or mistyped " ^ what) in
  let num obj what path = require path (Option.bind (Json.member what obj) Json.to_float) in
  let* query = require "query object" (Json.member "query" json) in
  let pass name =
    let* p = require ("query." ^ name) (Json.member name query) in
    let* _ = num p "p50_ms" (Printf.sprintf "query.%s.p50_ms" name) in
    let* _ = num p "p99_ms" (Printf.sprintf "query.%s.p99_ms" name) in
    let* partials =
      require
        (Printf.sprintf "query.%s.partials" name)
        (Option.bind (Json.member "partials" p) Json.to_int)
    in
    Ok partials
  in
  let* _ = pass "healthy" in
  let* lost_partials = pass "replica_lost" in
  let* () =
    if lost_partials = 0 then Ok ()
    else Error "query.replica_lost.partials must be 0 (failover must absorb the loss)"
  in
  let* ingest = require "ingest object" (Json.member "ingest" json) in
  let* _ = num ingest "sync_docs_per_s" "ingest.sync_docs_per_s" in
  let* _ = num ingest "async_docs_per_s" "ingest.async_docs_per_s" in
  let* catchup = require "catchup object" (Json.member "catchup" json) in
  let* _ = num catchup "ms" "catchup.ms" in
  let* _ =
    require "catchup.records_behind"
      (Option.bind (Json.member "records_behind" catchup) Json.to_int)
  in
  Ok ()

let check_serve_report json =
  let ( let* ) = Result.bind in
  let require what = function Some v -> Ok v | None -> Error ("missing or mistyped " ^ what) in
  let* scales = require "scales array" (Json.member "scales" json) in
  let entries = Json.to_list scales in
  let* () = if entries <> [] then Ok () else Error "scales must be non-empty" in
  let check_scale i entry =
    let at what = Printf.sprintf "scales[%d].%s" i what in
    let* conns = require (at "connections") (Option.bind (Json.member "connections" entry) Json.to_int) in
    let* () = if conns > 0 then Ok () else Error (at "connections must be positive") in
    let* _ = require (at "goodput_rps") (Option.bind (Json.member "goodput_rps" entry) Json.to_float) in
    let* lat = require (at "latency_ms") (Json.member "latency_ms" entry) in
    let* _ = require (at "latency_ms.p50") (Option.bind (Json.member "p50" lat) Json.to_float) in
    let* _ = require (at "latency_ms.p99") (Option.bind (Json.member "p99" lat) Json.to_float) in
    let* _ = require (at "latency_ms.p999") (Option.bind (Json.member "p999" lat) Json.to_float) in
    Ok ()
  in
  let rec all i = function
    | [] -> Ok ()
    | entry :: rest ->
      let* () = check_scale i entry in
      all (i + 1) rest
  in
  all 0 entries

(* The public gate dispatches on the artifact's [bench] tag: the twig
   and replica ablations have their own shapes; everything else
   (including untagged legacy artifacts) is held to the serve schema. *)
let check_report json =
  let ( let* ) = Result.bind in
  let require what = function Some v -> Ok v | None -> Error ("missing or mistyped " ^ what) in
  let* version = require "schema_version" (Option.bind (Json.member "schema_version" json) Json.to_int) in
  let* () = if version >= 1 then Ok () else Error "schema_version must be >= 1" in
  match Json.member "bench" json with
  | Some (Json.Str "twig") -> check_twig_report json
  | Some (Json.Str "replica") -> check_replica_report json
  | Some _ | None -> check_serve_report json
