(** Inverted index over a document, and evaluation of {!Ftexp}
    expressions.

    Indexing walks the document's text chunks in document order and
    assigns each indexed token a globally increasing position, so the
    tokens of any element's subtree form a contiguous position range
    [tok_range].  [contains(e, f)] then reduces to range queries on
    posting lists.  Stopwords are not indexed (positions are assigned
    only to indexed tokens, so phrases match across elided stopwords);
    terms are stemmed with {!Stemmer}.

    Following the paper (§5.1), [matches] returns the {e most specific}
    elements satisfying an expression — as in XRANK [20] and nearest
    concept queries [29] — with scores normalized to [0, 1]. *)

type t

val failpoint : (string -> unit) ref
(** Fault-injection hook, consulted as "index.build" on entry to
    {!build}.  A no-op until the FleXPath failpoint registry installs
    itself here; an installed hook raises to simulate the failure. *)

val build : ?scorer:Scorer.t -> Xmldom.Doc.t -> t
(** [scorer] selects the keyword-evidence function (default
    {!Scorer.Tf_idf}; see {!Scorer}). *)

val extend : t -> Xmldom.Doc.t -> first_new:int -> t
(** [extend idx doc ~first_new] re-covers an index after the document
    grew by {!Xmldom.Doc.append_trees}: [doc] must share elements
    [0 .. first_new - 1] (and all previously indexed chunks) with the
    document [idx] was built over, with [first_new] equal to that
    document's size.  Only the new chunks are tokenized; the result is
    value-identical to [build doc] — same term ids, posting lists,
    token maps, subtree ranges and (bit-for-bit) [avg_scope_len] — so
    delta ingestion scores exactly like an offline rebuild.  Posting
    lists of terms absent from the new text are shared with [idx].
    @raise Invalid_argument when [first_new] is not the size of [idx]'s
    document. *)

val doc : t -> Xmldom.Doc.t
val scorer : t -> Scorer.t

(** {2 Persistence} *)

type portable
(** The index without its document: posting lists, token maps and
    scorer only — a closure-free value safe to [Marshal], sized so the
    document is not duplicated when both are persisted side by side. *)

val to_portable : t -> portable

val of_portable : Xmldom.Doc.t -> portable -> t
(** Re-attaches the document [to_portable] stripped.
    @raise Invalid_argument when the portable index does not cover
    exactly the document's elements (it was built from a different
    document). *)

val n_tokens : t -> int
(** Number of indexed (non-stopword) tokens. *)

val distinct_terms : t -> int

val term_positions : t -> string -> int array
(** [term_positions idx w] is the sorted posting list of [stem w];
    [[||]] for unknown terms.  Shared: do not mutate. *)

val tok_range : t -> Xmldom.Doc.elem -> int * int
(** [(lo, hi)]: the subtree of the element covers token positions
    [lo .. hi - 1]. *)

val satisfies : t -> Ftexp.t -> Xmldom.Doc.elem -> bool
(** [satisfies idx f e]: does the subtree text of [e] satisfy [f]? *)

val all_satisfying : t -> Ftexp.t -> Xmldom.Doc.elem list
(** All elements satisfying [f], sorted by pre-order id.  For positive
    expressions this set is closed under ancestors. *)

val most_specific : t -> Ftexp.t -> Xmldom.Doc.elem list
(** Elements satisfying [f] with no satisfying descendant, sorted by
    pre-order id. *)

val raw_score : t -> Ftexp.t -> Xmldom.Doc.elem -> float
(** tf·idf evidence for [f] within [e]'s subtree; 0 when [e] does not
    satisfy [f].  Monotone along ancestor paths for positive [f]. *)

val normalized_score : t -> Ftexp.t -> Xmldom.Doc.elem -> float
(** [raw_score] divided by the document root's raw score (the maximum
    for positive expressions); always in [0, 1]. *)

val matches : t -> Ftexp.t -> (Xmldom.Doc.elem * float) list
(** Most specific elements with normalized scores, best first — the
    ranked (node, score) list the paper's architecture expects from the
    IR engine. *)

val count_satisfying_with_tag : t -> Ftexp.t -> Xmldom.Tag.t -> int
(** [#contains] statistic of §4.3.1: how many elements with the given
    tag satisfy the expression. *)

(** {2 Corpus-global scoring (sharded corpora)} *)

type overlay
(** Corpus-global scoring statistics — total df per term, total token
    count, global average scope length and the combined root's raw
    score — substituted into shard-local indexes so that every shard
    scores answers exactly as one combined index over all shards would.
    Thread-safe: one overlay is shared by all worker domains serving a
    corpus view. *)

val overlay_of : t list -> overlay
(** Builds the global view over the given shard indexes.  All indexes
    must use the same scorer (the first one's is taken).  Value
    equivalence with a single combined index is exact for {!Scorer}
    functions and holds for every expression whose phrase/window
    matches do not straddle a document boundary (such matches are
    artifacts of corpus concatenation).
    @raise Invalid_argument on an empty list. *)

val with_overlay : t -> overlay -> t
(** A view of [t] whose {!normalized_score} (and the term evidence
    inside {!raw_score}) uses the overlay's global statistics; all
    element-local operations are unchanged.  The result is a scoring
    view: do not persist or {!extend} it. *)

val overlay_n_tokens : overlay -> int
val overlay_df : overlay -> string -> int
(** Corpus-wide occurrence count of (the stem of) a word. *)
