module Doc = Xmldom.Doc
module Tag = Xmldom.Tag

(* Corpus-global scoring statistics substituted into a shard-local
   index: term evidence normally uses this index's own df / token count
   / average scope length and normalizes by this document's root score,
   but a sharded corpus needs every shard to score against the counts
   of the WHOLE corpus or per-shard answers diverge from a single
   combined index.  The overlay carries exactly the four global inputs
   scoring consumes; everything element-local (occurrences, ranges,
   satisfaction) stays with the shard. *)
type overlay = {
  ov_n_tokens : int;
  ov_avg_scope_len : float;
  ov_gdf : string -> int; (* word -> corpus-wide occurrence count (stems inside) *)
  ov_root_raw : Ftexp.t -> float; (* raw score of the virtual corpus root *)
}

type t = {
  doc : Doc.t;
  term_ids : (string, int) Hashtbl.t; (* stemmed term -> tid *)
  postings : int array array; (* tid -> sorted token positions *)
  tok_term : int array; (* token position -> tid *)
  tok_owner : int array; (* token position -> innermost element *)
  tok_start : int array; (* element -> first subtree token *)
  tok_end : int array; (* element -> one past last subtree token *)
  n_tokens : int;
  scorer : Scorer.t;
  avg_scope_len : float; (* mean token-range length of text-bearing elements *)
  overlay : overlay option; (* global scoring stats; [None] = self-contained *)
}

let failpoint : (string -> unit) ref = ref (fun _ -> ())

let build ?(scorer = Scorer.default) doc =
  !failpoint "index.build";
  let term_ids = Hashtbl.create 1024 in
  let next_tid = ref 0 in
  let tid_of term =
    match Hashtbl.find_opt term_ids term with
    | Some tid -> tid
    | None ->
      let tid = !next_tid in
      incr next_tid;
      Hashtbl.add term_ids term tid;
      tid
  in
  (* First pass over chunks: assign positions, record term and owner. *)
  let terms_rev = ref [] in
  let owners_rev = ref [] in
  let n_tokens = ref 0 in
  let n = Doc.size doc in
  let own_start = Array.make n max_int in
  let own_end = Array.make n min_int in
  for c = 0 to Doc.chunk_count doc - 1 do
    let owner = Doc.chunk_owner doc c in
    Tokenizer.iter (Doc.chunk_text doc c) (fun w ->
        if not (Stopwords.is_stopword w) then begin
          let tid = tid_of (Stemmer.stem w) in
          let pos = !n_tokens in
          incr n_tokens;
          terms_rev := tid :: !terms_rev;
          owners_rev := owner :: !owners_rev;
          if pos < own_start.(owner) then own_start.(owner) <- pos;
          if pos + 1 > own_end.(owner) then own_end.(owner) <- pos + 1
        end)
  done;
  let n_tok = !n_tokens in
  let tok_term = Array.make (max 1 n_tok) 0 in
  let tok_owner = Array.make (max 1 n_tok) 0 in
  List.iteri (fun i tid -> tok_term.(n_tok - 1 - i) <- tid) !terms_rev;
  List.iteri (fun i owner -> tok_owner.(n_tok - 1 - i) <- owner) !owners_rev;
  terms_rev := [];
  owners_rev := [];
  (* Subtree token ranges: chunks were visited in document order, so each
     subtree covers a contiguous position range.  Merge child ranges into
     parents in reverse pre-order. *)
  let tok_start = own_start and tok_end = own_end in
  for e = n - 1 downto 1 do
    match Doc.parent doc e with
    | None -> ()
    | Some p ->
      if tok_start.(e) < tok_start.(p) then tok_start.(p) <- tok_start.(e);
      if tok_end.(e) > tok_end.(p) then tok_end.(p) <- tok_end.(e)
  done;
  for e = 0 to n - 1 do
    if tok_start.(e) = max_int then begin
      tok_start.(e) <- 0;
      tok_end.(e) <- 0
    end
  done;
  (* Postings: counting sort by term id, positions stay ascending. *)
  let n_terms = !next_tid in
  let counts = Array.make (max 1 n_terms) 0 in
  Array.iter (fun tid -> counts.(tid) <- counts.(tid) + 1) (Array.sub tok_term 0 n_tok);
  let postings = Array.init n_terms (fun tid -> Array.make counts.(tid) 0) in
  let fill = Array.make (max 1 n_terms) 0 in
  for pos = 0 to n_tok - 1 do
    let tid = tok_term.(pos) in
    postings.(tid).(fill.(tid)) <- pos;
    fill.(tid) <- fill.(tid) + 1
  done;
  let text_bearing = ref 0 in
  let total_len = ref 0 in
  for e = 0 to n - 1 do
    let len = tok_end.(e) - tok_start.(e) in
    if len > 0 then begin
      incr text_bearing;
      total_len := !total_len + len
    end
  done;
  let avg_scope_len =
    if !text_bearing = 0 then 0.0 else float_of_int !total_len /. float_of_int !text_bearing
  in
  {
    doc;
    term_ids;
    postings;
    tok_term;
    tok_owner;
    tok_start;
    tok_end;
    n_tokens = n_tok;
    scorer;
    avg_scope_len;
    overlay = None;
  }

(* Extend an index over a document that grew by [Doc.append_trees]: the
   elements of [doc] below [first_new] — and every chunk the old index
   already tokenized — are exactly those of [idx]'s document, so only
   the new chunks are tokenized, with positions continuing from
   [idx.n_tokens].  Every derived structure is value-identical to
   [build doc]: term ids are dense in first-occurrence order (old terms
   keep theirs, new terms appear for the first time in the new text in
   the same order a fresh pass would meet them); posting lists for
   untouched terms are shared with the old index; subtree ranges of old
   non-root elements are unchanged because new tokens live entirely in
   the appended subtrees. *)
let extend idx doc ~first_new =
  let n = Doc.size doc in
  if first_new <> Doc.size idx.doc then
    invalid_arg
      (Printf.sprintf "Index.extend: index covers %d elements, extension starts at %d"
         (Doc.size idx.doc) first_new);
  if n = first_new then { idx with doc; overlay = None }
  else begin
    let term_ids = Hashtbl.copy idx.term_ids in
    let next_tid = ref (Array.length idx.postings) in
    let tid_of term =
      match Hashtbl.find_opt term_ids term with
      | Some tid -> tid
      | None ->
        let tid = !next_tid in
        incr next_tid;
        Hashtbl.add term_ids term tid;
        tid
    in
    let terms_rev = ref [] in
    let owners_rev = ref [] in
    let n_tokens = ref idx.n_tokens in
    let tok_start = Array.make n max_int in
    let tok_end = Array.make n min_int in
    Array.blit idx.tok_start 0 tok_start 0 first_new;
    Array.blit idx.tok_end 0 tok_end 0 first_new;
    for c = Doc.chunk_count idx.doc to Doc.chunk_count doc - 1 do
      let owner = Doc.chunk_owner doc c in
      Tokenizer.iter (Doc.chunk_text doc c) (fun w ->
          if not (Stopwords.is_stopword w) then begin
            let tid = tid_of (Stemmer.stem w) in
            let pos = !n_tokens in
            incr n_tokens;
            terms_rev := tid :: !terms_rev;
            owners_rev := owner :: !owners_rev;
            if pos < tok_start.(owner) then tok_start.(owner) <- pos;
            if pos + 1 > tok_end.(owner) then tok_end.(owner) <- pos + 1
          end)
    done;
    let n_tok = !n_tokens in
    let tok_term = Array.make (max 1 n_tok) 0 in
    let tok_owner = Array.make (max 1 n_tok) 0 in
    Array.blit idx.tok_term 0 tok_term 0 idx.n_tokens;
    Array.blit idx.tok_owner 0 tok_owner 0 idx.n_tokens;
    List.iteri (fun i tid -> tok_term.(n_tok - 1 - i) <- tid) !terms_rev;
    List.iteri (fun i owner -> tok_owner.(n_tok - 1 - i) <- owner) !owners_rev;
    terms_rev := [];
    owners_rev := [];
    (* New subtrees hang directly under the root, so upward merging stays
       within [first_new ..]; the root is then pinned to the full token
       span, as a fresh build would leave it. *)
    for e = n - 1 downto first_new do
      match Doc.parent doc e with
      | None -> ()
      | Some p ->
        if p >= first_new then begin
          if tok_start.(e) < tok_start.(p) then tok_start.(p) <- tok_start.(e);
          if tok_end.(e) > tok_end.(p) then tok_end.(p) <- tok_end.(e)
        end
    done;
    for e = first_new to n - 1 do
      if tok_start.(e) = max_int then begin
        tok_start.(e) <- 0;
        tok_end.(e) <- 0
      end
    done;
    if n_tok > 0 then begin
      tok_start.(0) <- 0;
      tok_end.(0) <- n_tok
    end;
    let n_terms = !next_tid in
    let counts = Array.make (max 1 n_terms) 0 in
    for pos = idx.n_tokens to n_tok - 1 do
      counts.(tok_term.(pos)) <- counts.(tok_term.(pos)) + 1
    done;
    let postings =
      Array.init n_terms (fun tid ->
          let old = if tid < Array.length idx.postings then idx.postings.(tid) else [||] in
          if counts.(tid) = 0 then old
          else begin
            let a = Array.make (Array.length old + counts.(tid)) 0 in
            Array.blit old 0 a 0 (Array.length old);
            a
          end)
    in
    let fill =
      Array.init (max 1 n_terms) (fun tid ->
          if tid < Array.length idx.postings then Array.length idx.postings.(tid) else 0)
    in
    for pos = idx.n_tokens to n_tok - 1 do
      let tid = tok_term.(pos) in
      postings.(tid).(fill.(tid)) <- pos;
      fill.(tid) <- fill.(tid) + 1
    done;
    let text_bearing = ref 0 in
    let total_len = ref 0 in
    for e = 0 to n - 1 do
      let len = tok_end.(e) - tok_start.(e) in
      if len > 0 then begin
        incr text_bearing;
        total_len := !total_len + len
      end
    done;
    let avg_scope_len =
      if !text_bearing = 0 then 0.0 else float_of_int !total_len /. float_of_int !text_bearing
    in
    {
      doc;
      term_ids;
      postings;
      tok_term;
      tok_owner;
      tok_start;
      tok_end;
      n_tokens = n_tok;
      scorer = idx.scorer;
      avg_scope_len;
      overlay = None;
    }
  end

(* The index minus its document: what snapshot storage persists.  The
   document is stored once in its own snapshot section; [of_portable]
   re-attaches it.  No field is a closure, so the whole record is
   Marshal-safe. *)
type portable = {
  p_term_ids : (string, int) Hashtbl.t;
  p_postings : int array array;
  p_tok_term : int array;
  p_tok_owner : int array;
  p_tok_start : int array;
  p_tok_end : int array;
  p_n_tokens : int;
  p_scorer : Scorer.t;
  p_avg_scope_len : float;
}

let to_portable idx =
  {
    p_term_ids = idx.term_ids;
    p_postings = idx.postings;
    p_tok_term = idx.tok_term;
    p_tok_owner = idx.tok_owner;
    p_tok_start = idx.tok_start;
    p_tok_end = idx.tok_end;
    p_n_tokens = idx.n_tokens;
    p_scorer = idx.scorer;
    p_avg_scope_len = idx.avg_scope_len;
  }

let of_portable doc p =
  if Array.length p.p_tok_start <> Doc.size doc then
    invalid_arg
      (Printf.sprintf "Index.of_portable: index covers %d elements, document has %d"
         (Array.length p.p_tok_start) (Doc.size doc));
  {
    doc;
    term_ids = p.p_term_ids;
    postings = p.p_postings;
    tok_term = p.p_tok_term;
    tok_owner = p.p_tok_owner;
    tok_start = p.p_tok_start;
    tok_end = p.p_tok_end;
    n_tokens = p.p_n_tokens;
    scorer = p.p_scorer;
    avg_scope_len = p.p_avg_scope_len;
    overlay = None;
  }

let doc idx = idx.doc
let scorer idx = idx.scorer
let n_tokens idx = idx.n_tokens
let distinct_terms idx = Array.length idx.postings

let tid_opt idx w = Hashtbl.find_opt idx.term_ids (Stemmer.stem w)

let term_positions idx w =
  match tid_opt idx w with
  | None -> [||]
  | Some tid -> idx.postings.(tid)

let tok_range idx e = (idx.tok_start.(e), idx.tok_end.(e))

(* Index of the first element of [a] that is >= x, in [0 .. length a]. *)
let lower_bound a x =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) < x then lo := mid + 1 else hi := mid
  done;
  !lo

let count_in_range a lo hi =
  if hi <= lo then 0 else lower_bound a hi - lower_bound a lo

let occurrences idx w lo hi = count_in_range (term_positions idx w) lo hi

let phrase_at idx ws =
  (* Precompute term ids; None means a word absent from the index. *)
  match
    List.fold_right
      (fun w acc ->
        match (acc, tid_opt idx w) with
        | Some tids, Some tid -> Some (tid :: tids)
        | _ -> None)
      ws (Some [])
  with
  | None -> None
  | Some tids -> Some (Array.of_list tids)

let phrase_in_range idx ws lo hi =
  match phrase_at idx ws with
  | None -> false
  | Some tids ->
    let k = Array.length tids in
    if k = 0 then false
    else begin
      let first = idx.postings.(tids.(0)) in
      let start = lower_bound first lo in
      let rec try_pos i =
        if i >= Array.length first then false
        else
          let p = first.(i) in
          if p + k > hi then false
          else begin
            let rec all j = j = k || (idx.tok_term.(p + j) = tids.(j) && all (j + 1)) in
            if all 1 then true else try_pos (i + 1)
          end
      in
      try_pos start
    end

let window_in_range idx width ws lo hi =
  let lists = List.map (fun w -> term_positions idx w) ws in
  if List.exists (fun a -> Array.length a = 0) lists then false
  else begin
    let lists = Array.of_list lists in
    let k = Array.length lists in
    let ptr = Array.map (fun a -> lower_bound a lo) lists in
    let in_bounds i = ptr.(i) < Array.length lists.(i) && lists.(i).(ptr.(i)) < hi in
    let rec go () =
      if not (Array.for_all Fun.id (Array.init k in_bounds)) then false
      else begin
        let min_i = ref 0 and min_p = ref max_int and max_p = ref min_int in
        for i = 0 to k - 1 do
          let p = lists.(i).(ptr.(i)) in
          if p < !min_p then begin
            min_p := p;
            min_i := i
          end;
          if p > !max_p then max_p := p
        done;
        if !max_p - !min_p < width then true
        else begin
          ptr.(!min_i) <- ptr.(!min_i) + 1;
          go ()
        end
      end
    in
    go ()
  end

let rec satisfies_range idx f lo hi =
  match f with
  | Ftexp.Term w -> occurrences idx w lo hi > 0
  | Ftexp.And (a, b) -> satisfies_range idx a lo hi && satisfies_range idx b lo hi
  | Ftexp.Or (a, b) -> satisfies_range idx a lo hi || satisfies_range idx b lo hi
  | Ftexp.Not a -> not (satisfies_range idx a lo hi)
  | Ftexp.Phrase ws -> phrase_in_range idx ws lo hi
  | Ftexp.Window (width, ws) -> window_in_range idx width ws lo hi

let satisfies idx f e = satisfies_range idx f idx.tok_start.(e) idx.tok_end.(e)

module Int_set = Set.Make (Int)

(* Candidate elements for a positive expression: owners of occurrences of
   positive keywords, plus all their ancestors. *)
let positive_candidates idx f =
  let words = Ftexp.positive_keywords f in
  let acc = ref Int_set.empty in
  List.iter
    (fun w ->
      Array.iter
        (fun pos ->
          let e = idx.tok_owner.(pos) in
          if not (Int_set.mem e !acc) then begin
            acc := Int_set.add e !acc;
            List.iter
              (fun a -> acc := Int_set.add a !acc)
              (Doc.ancestors idx.doc e)
          end)
        (term_positions idx w))
    words;
  !acc

let all_satisfying idx f =
  if Ftexp.is_positive f then
    Int_set.elements (positive_candidates idx f) |> List.filter (fun e -> satisfies idx f e)
  else begin
    let out = ref [] in
    for e = Doc.size idx.doc - 1 downto 0 do
      if satisfies idx f e then out := e :: !out
    done;
    !out
  end

let most_specific idx f =
  let sat = Array.of_list (all_satisfying idx f) in
  let n = Array.length sat in
  let keep = ref [] in
  (* sat is sorted by pre; e is minimal iff the next satisfying element
     after it does not lie in its subtree. *)
  for i = n - 1 downto 0 do
    let e = sat.(i) in
    let minimal = i + 1 >= n || sat.(i + 1) >= Doc.subtree_end idx.doc e in
    if minimal then keep := e :: !keep
  done;
  !keep

let term_evidence idx w ~tf lo hi =
  match idx.overlay with
  | None ->
    let df = Array.length (term_positions idx w) in
    Scorer.term_score idx.scorer ~tf ~df ~n_tokens:idx.n_tokens ~scope_len:(hi - lo)
      ~avg_scope_len:idx.avg_scope_len
  | Some ov ->
    Scorer.term_score idx.scorer ~tf ~df:(ov.ov_gdf w) ~n_tokens:ov.ov_n_tokens
      ~scope_len:(hi - lo) ~avg_scope_len:ov.ov_avg_scope_len

let rec raw_score_range idx f lo hi =
  match f with
  | Ftexp.Term w ->
    let c = occurrences idx w lo hi in
    if c = 0 then 0.0 else term_evidence idx w ~tf:c lo hi
  | Ftexp.And (a, b) ->
    if satisfies_range idx a lo hi && satisfies_range idx b lo hi then
      raw_score_range idx a lo hi +. raw_score_range idx b lo hi
    else 0.0
  | Ftexp.Or (a, b) ->
    let sa = raw_score_range idx a lo hi and sb = raw_score_range idx b lo hi in
    if satisfies_range idx a lo hi || satisfies_range idx b lo hi then Float.max sa sb +. (0.25 *. Float.min sa sb)
    else 0.0
  | Ftexp.Not a -> if satisfies_range idx a lo hi then 0.0 else 1.0
  | Ftexp.Phrase ws ->
    if phrase_in_range idx ws lo hi then
      List.fold_left (fun acc w -> acc +. term_evidence idx w ~tf:1 lo hi) 0.0 ws
    else 0.0
  | Ftexp.Window (width, ws) ->
    if window_in_range idx width ws lo hi then
      List.fold_left (fun acc w -> acc +. term_evidence idx w ~tf:1 lo hi) 0.0 ws
    else 0.0

let raw_score idx f e =
  let lo, hi = tok_range idx e in
  if satisfies_range idx f lo hi then raw_score_range idx f lo hi else 0.0

let normalized_score idx f e =
  let denom =
    match idx.overlay with
    | None -> raw_score idx f (Doc.root idx.doc)
    | Some ov -> ov.ov_root_raw f
  in
  if denom <= 0.0 then if satisfies idx f e then 1.0 else 0.0
  else Float.min 1.0 (raw_score idx f e /. denom)

let matches idx f =
  let nodes = most_specific idx f in
  let scored = List.map (fun e -> (e, raw_score idx f e)) nodes in
  let max_raw = List.fold_left (fun acc (_, s) -> Float.max acc s) 0.0 scored in
  let norm = if max_raw <= 0.0 then fun s -> s else fun s -> s /. max_raw in
  List.map (fun (e, s) -> (e, norm s)) scored
  |> List.sort (fun (e1, s1) (e2, s2) ->
         match Float.compare s2 s1 with 0 -> Int.compare e1 e2 | c -> c)

let count_satisfying_with_tag idx f tag =
  Array.fold_left
    (fun acc e -> if satisfies idx f e then acc + 1 else acc)
    0
    (Doc.by_tag idx.doc tag)

(* ------------------------------------------------------------------ *)
(* Overlay construction: corpus-global scoring over shard-local indexes.

   [overlay_of idxs] mirrors what one combined index over the
   concatenation of the shards' documents would compute:

   - df per term is additive (each shard counts its own occurrences);
   - the token count is additive;
   - the average scope length is additive up to one correction: each
     shard's synthetic root is a text-bearing scope of its own, where
     the combined document has a single root covering all tokens;
   - the root raw score (the normalization denominator) is recomputed
     by the [raw_score_range] recursion over the virtual global root:
     leaves (terms, phrases, windows) are evaluated per shard and
     summed / OR-ed, boolean structure is composed globally — so an
     [And] satisfied by two different shards is satisfied at the global
     root even though no single shard satisfies it, exactly as the
     combined index would see it.

   One caveat is inherent to sharding: a phrase or window whose match
   straddles two shard documents' token ranges is visible to a combined
   index (token positions are contiguous across document boundaries)
   but to no shard.  Such cross-document matches are artifacts of the
   synthetic corpus concatenation, not of any real document. *)

let scope_stats idx =
  let text_bearing = ref 0 and total_len = ref 0 in
  for e = 0 to Doc.size idx.doc - 1 do
    let len = idx.tok_end.(e) - idx.tok_start.(e) in
    if len > 0 then begin
      incr text_bearing;
      total_len := !total_len + len
    end
  done;
  (!text_bearing, !total_len)

let overlay_of idxs =
  match idxs with
  | [] -> invalid_arg "Index.overlay_of: at least one index required"
  | first :: _ ->
    let scorer = first.scorer in
    let ov_n_tokens = List.fold_left (fun acc i -> acc + i.n_tokens) 0 idxs in
    let gdf_tbl : (string, int) Hashtbl.t = Hashtbl.create 4096 in
    List.iter
      (fun idx ->
        Hashtbl.iter
          (fun term tid ->
            let c = Array.length idx.postings.(tid) in
            if c > 0 then
              Hashtbl.replace gdf_tbl term
                (c + Option.value ~default:0 (Hashtbl.find_opt gdf_tbl term)))
          idx.term_ids)
      idxs;
    let ov_gdf w = Option.value ~default:0 (Hashtbl.find_opt gdf_tbl (Stemmer.stem w)) in
    (* Each shard root is one text-bearing scope spanning that shard's
       tokens; the combined document has a single such root. *)
    let tb, tl =
      List.fold_left
        (fun (tb, tl) idx ->
          let b, l = scope_stats idx in
          ((tb + b) - (if idx.n_tokens > 0 then 1 else 0), tl + l - idx.n_tokens))
        (0, 0) idxs
    in
    let tb = tb + (if ov_n_tokens > 0 then 1 else 0) and tl = tl + ov_n_tokens in
    let ov_avg_scope_len = if tb = 0 then 0.0 else float_of_int tl /. float_of_int tb in
    let g_evidence w ~tf =
      Scorer.term_score scorer ~tf ~df:(ov_gdf w) ~n_tokens:ov_n_tokens ~scope_len:ov_n_tokens
        ~avg_scope_len:ov_avg_scope_len
    in
    let at_root idx pred =
      let lo, hi = tok_range idx (Doc.root idx.doc) in
      pred idx lo hi
    in
    let rec g_sat f =
      match f with
      | Ftexp.Term w -> ov_gdf w > 0
      | Ftexp.And (a, b) -> g_sat a && g_sat b
      | Ftexp.Or (a, b) -> g_sat a || g_sat b
      | Ftexp.Not a -> not (g_sat a)
      | Ftexp.Phrase ws ->
        List.exists (fun idx -> at_root idx (fun i lo hi -> phrase_in_range i ws lo hi)) idxs
      | Ftexp.Window (width, ws) ->
        List.exists
          (fun idx -> at_root idx (fun i lo hi -> window_in_range i width ws lo hi))
          idxs
    in
    let rec g_raw f =
      match f with
      | Ftexp.Term w ->
        let c = ov_gdf w in
        if c = 0 then 0.0 else g_evidence w ~tf:c
      | Ftexp.And (a, b) -> if g_sat a && g_sat b then g_raw a +. g_raw b else 0.0
      | Ftexp.Or (a, b) ->
        let sa = g_raw a and sb = g_raw b in
        if g_sat a || g_sat b then Float.max sa sb +. (0.25 *. Float.min sa sb) else 0.0
      | Ftexp.Not a -> if g_sat a then 0.0 else 1.0
      | Ftexp.Phrase ws ->
        if g_sat f then List.fold_left (fun acc w -> acc +. g_evidence w ~tf:1) 0.0 ws else 0.0
      | Ftexp.Window (_, ws) ->
        if g_sat f then List.fold_left (fun acc w -> acc +. g_evidence w ~tf:1) 0.0 ws else 0.0
    in
    (* Memoized: the denominator is consulted once per (answer,
       predicate) pair on the scoring hot path, and worker domains share
       one overlay per published corpus view. *)
    let memo : (Ftexp.t, float) Hashtbl.t = Hashtbl.create 64 in
    let memo_lock = Mutex.create () in
    let ov_root_raw f =
      Mutex.lock memo_lock;
      match Hashtbl.find_opt memo f with
      | Some v ->
        Mutex.unlock memo_lock;
        v
      | None ->
        Mutex.unlock memo_lock;
        let v = if g_sat f then g_raw f else 0.0 in
        Mutex.lock memo_lock;
        Hashtbl.replace memo f v;
        Mutex.unlock memo_lock;
        v
    in
    { ov_n_tokens; ov_avg_scope_len; ov_gdf; ov_root_raw }

let with_overlay idx ov = { idx with overlay = Some ov }
let overlay_n_tokens ov = ov.ov_n_tokens
let overlay_df ov w = ov.ov_gdf w
