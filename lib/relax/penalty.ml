module Pred = Tpq.Pred
module Query = Tpq.Query
module Closure = Tpq.Closure
module Hierarchy = Tpq.Hierarchy

type weights = Pred.t -> float

let uniform _ = 1.0
let scaled c _ = c

type t = {
  stats : Stats.t;
  weights : weights;
  orig : Query.t;
  hierarchy : Hierarchy.t;
  closure_set : Pred.Set.t;
  tag_of : int -> string option; (* variable tags in the original query *)
  parent_of : int -> int option;
}

let make ?(hierarchy = Hierarchy.empty) stats weights orig =
  let closure_set = Closure.closure_set (Pred.Set.of_list (Query.to_preds orig)) in
  let tag_of v = if Query.mem orig v then (Query.node orig v).tag else None in
  let parent_of v =
    if Query.mem orig v then Option.map fst (Query.parent orig v) else None
  in
  { stats; weights; orig; hierarchy; closure_set; tag_of; parent_of }

let original env = env.orig
let hierarchy env = env.hierarchy
let closure env = Pred.Set.elements env.closure_set

(* A predicate participates in scoring when a relaxation can drop it:
   structural and contains predicates always, tag predicates only when
   the hierarchy offers a supertype to generalize to. *)
let is_scored env p =
  match p with
  | Pred.Pc _ | Pred.Ad _ | Pred.Contains _ -> true
  | Pred.Tag_eq (_, t) -> Hierarchy.supertype env.hierarchy t <> None
  | Pred.Attr _ -> false

let scored_preds env = List.filter (is_scored env) (closure env)

(* Counts for possibly-wildcard tags; a missing tag behaves like a
   wildcard (total counts), which only makes penalties conservative. *)
let count_tag env = function
  | Some t -> Stats.count_tag env.stats t
  | None -> Stats.total_elems env.stats

(* Extension of a tag under the hierarchy: its own elements plus those
   of all transitive subtypes. *)
let count_extension env t =
  List.fold_left
    (fun acc sub -> acc + Stats.count_tag env.stats sub)
    (Stats.count_tag env.stats t)
    (Hierarchy.subtypes env.hierarchy t)

let count_pc env t1 t2 =
  match (t1, t2) with
  | Some a, Some b -> Stats.count_pc env.stats a b
  | _ -> count_tag env t2 (* loose upper bound for wildcards *)

let count_ad env t1 t2 =
  match (t1, t2) with
  | Some a, Some b -> Stats.count_ad env.stats a b
  | _ -> count_tag env t2

let predicate_penalty env p =
  let w = env.weights p in
  match p with
  | Pred.Pc (i, j) ->
    let ti = env.tag_of i and tj = env.tag_of j in
    let ad = count_ad env ti tj in
    if ad = 0 then w else float_of_int (count_pc env ti tj) /. float_of_int ad *. w
  | Pred.Ad (i, j) ->
    let ti = env.tag_of i and tj = env.tag_of j in
    let ni = count_tag env ti and nj = count_tag env tj in
    if ni = 0 || nj = 0 then w
    else float_of_int (count_ad env ti tj) /. (float_of_int ni *. float_of_int nj) *. w
  | Pred.Contains (i, f) -> (
    match (env.tag_of i, env.parent_of i) with
    | Some ti, Some l -> (
      match env.tag_of l with
      | Some tl ->
        let child = Stats.count_contains env.stats ti f in
        let parent = Stats.count_contains env.stats tl f in
        if parent = 0 then w else Float.min 1.0 (float_of_int child /. float_of_int parent) *. w
      | None -> w)
    | _ -> w)
  | Pred.Tag_eq (_, t) -> (
    (* Generalizing tag t to its supertype broadens the extension; the
       penalty mirrors the pc/ad style: the larger the share of the
       supertype's extension t already covers, the fewer new answers
       the relaxation admits and the heavier the penalty. *)
    match Hierarchy.supertype env.hierarchy t with
    | None -> 0.0
    | Some super ->
      let ext = count_extension env super in
      if ext = 0 then w
      else float_of_int (Stats.count_tag env.stats t) /. float_of_int ext *. w)
  | Pred.Attr _ -> 0.0

let dropped_preds env relaxed =
  let relaxed_closure = Closure.closure_set (Pred.Set.of_list (Query.to_preds relaxed)) in
  Pred.Set.elements (Pred.Set.diff env.closure_set relaxed_closure)
  |> List.filter (is_scored env)

let base_score env =
  List.fold_left
    (fun acc p -> acc +. env.weights p)
    0.0
    (Query.structural_preds env.orig)

let max_keyword_score env =
  List.fold_left
    (fun acc (v, f) -> acc +. env.weights (Pred.Contains (v, f)))
    0.0
    (Query.contains_preds env.orig)

let score_of_dropped env dropped =
  base_score env -. List.fold_left (fun acc p -> acc +. predicate_penalty env p) 0.0 dropped

let relaxation_penalty env relaxed =
  List.fold_left (fun acc p -> acc +. predicate_penalty env p) 0.0 (dropped_preds env relaxed)

let structural_score env relaxed = base_score env -. relaxation_penalty env relaxed
