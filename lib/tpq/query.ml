module Imap = Map.Make (Int)
module Ftexp = Fulltext.Ftexp

type axis = Child | Descendant

type node = { tag : string option; attrs : Pred.attr_pred list; contains : Ftexp.t list }

type t = {
  root : int;
  nodes : node Imap.t;
  edges : (int * axis) Imap.t; (* child var -> (parent var, axis) *)
  distinguished : int;
}

let node_spec ?tag ?(attrs = []) ?(contains = []) () = { tag; attrs; contains }

let validate q =
  if not (Imap.mem q.root q.nodes) then Error "root is not a node"
  else if not (Imap.mem q.distinguished q.nodes) then Error "distinguished is not a node"
  else if Imap.mem q.root q.edges then Error "root has a parent edge"
  else begin
    let bad_edge =
      Imap.exists
        (fun child (parent, _) ->
          (not (Imap.mem child q.nodes)) || not (Imap.mem parent q.nodes))
        q.edges
    in
    if bad_edge then Error "edge mentions an unknown variable"
    else begin
      (* Every non-root node needs a parent, and following parents must
         reach the root (no cycles). *)
      let ok_node v _ =
        if v = q.root then true
        else begin
          let rec walk v steps =
            if steps > Imap.cardinal q.nodes then false
            else if v = q.root then true
            else
              match Imap.find_opt v q.edges with
              | None -> false
              | Some (p, _) -> walk p (steps + 1)
          in
          Imap.mem v q.edges && walk v 0
        end
      in
      if Imap.for_all ok_node q.nodes then Ok q else Error "edges do not form a tree rooted at root"
    end
  end

let make ~root ~nodes ~edges ~distinguished =
  let nodes =
    List.fold_left (fun acc (v, info) -> Imap.add v info acc) Imap.empty nodes
  in
  let edges =
    List.fold_left (fun acc (p, c, a) -> Imap.add c (p, a) acc) Imap.empty edges
  in
  validate { root; nodes; edges; distinguished }

let make_exn ~root ~nodes ~edges ~distinguished =
  match make ~root ~nodes ~edges ~distinguished with
  | Ok q -> q
  | Error msg -> invalid_arg ("Query.make_exn: " ^ msg)

let root q = q.root
let distinguished q = q.distinguished
let vars q = Imap.bindings q.nodes |> List.map fst
let size q = Imap.cardinal q.nodes
let mem q v = Imap.mem v q.nodes

let node q v =
  match Imap.find_opt v q.nodes with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Query.node: unknown variable $%d" v)

let parent q v = Imap.find_opt v q.edges

let children q v =
  Imap.fold (fun c (p, a) acc -> if p = v then (c, a) :: acc else acc) q.edges []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let rec descendant_vars q v =
  v :: List.concat_map (fun (c, _) -> descendant_vars q c) (children q v)

let is_leaf q v = children q v = []
let leaves q = List.filter (is_leaf q) (vars q)

let depth q v =
  let rec go v acc = match parent q v with None -> acc | Some (p, _) -> go p (acc + 1) in
  go v 0

let fresh_var q = 1 + Imap.fold (fun v _ acc -> max v acc) q.nodes 0

let set_axis q v a =
  match Imap.find_opt v q.edges with
  | None -> invalid_arg "Query.set_axis: variable has no incoming edge"
  | Some (p, _) -> { q with edges = Imap.add v (p, a) q.edges }

let delete_leaf q v =
  if v = q.root then Error "cannot delete the root"
  else if not (mem q v) then Error "unknown variable"
  else if not (is_leaf q v) then Error "not a leaf"
  else begin
    let distinguished =
      if q.distinguished = v then fst (Imap.find v q.edges) else q.distinguished
    in
    Ok { q with nodes = Imap.remove v q.nodes; edges = Imap.remove v q.edges; distinguished }
  end

let reparent q v p a =
  if v = q.root then Error "cannot reparent the root"
  else if not (mem q v && mem q p) then Error "unknown variable"
  else if List.mem p (descendant_vars q v) then Error "new parent lies inside the subtree"
  else Ok { q with edges = Imap.add v (p, a) q.edges }

let update_node q v f =
  match Imap.find_opt v q.nodes with
  | None -> invalid_arg "Query.update_node: unknown variable"
  | Some n -> { q with nodes = Imap.add v (f n) q.nodes }

let move_contains q ~from_var ~to_var e =
  if not (mem q from_var && mem q to_var) then Error "unknown variable"
  else begin
    let src = node q from_var in
    if not (List.exists (Ftexp.equal e) src.contains) then
      Error "contains predicate not present on source variable"
    else begin
      let remove_once lst =
        let rec go = function
          | [] -> []
          | x :: rest -> if Ftexp.equal x e then rest else x :: go rest
        in
        go lst
      in
      let q = update_node q from_var (fun n -> { n with contains = remove_once n.contains }) in
      let q = update_node q to_var (fun n -> { n with contains = n.contains @ [ e ] }) in
      Ok q
    end
  end

let to_preds q =
  let structural =
    Imap.fold
      (fun c (p, a) acc ->
        (match a with Child -> Pred.Pc (p, c) | Descendant -> Pred.Ad (p, c)) :: acc)
      q.edges []
  in
  let value_based =
    Imap.fold
      (fun v n acc ->
        let tag = match n.tag with Some t -> [ Pred.Tag_eq (v, t) ] | None -> [] in
        let attrs = List.map (fun p -> Pred.Attr (v, p)) n.attrs in
        let conts = List.map (fun e -> Pred.Contains (v, e)) n.contains in
        tag @ attrs @ conts @ acc)
      q.nodes []
  in
  List.sort Pred.compare (structural @ value_based)

let structural_preds q = List.filter Pred.is_structural (to_preds q)

let contains_preds q =
  Imap.fold (fun v n acc -> List.map (fun e -> (v, e)) n.contains @ acc) q.nodes []
  |> List.sort compare

let of_preds ~distinguished preds =
  let vars =
    List.fold_left (fun acc p -> List.fold_left (fun acc v -> Imap.add v () acc) acc (Pred.vars p))
      Imap.empty preds
    |> Imap.bindings |> List.map fst
  in
  if vars = [] then Error "no variables"
  else begin
    (* Incoming structural edges per variable; Pc wins over Ad on the
       same (parent, child) pair. *)
    let edges = Hashtbl.create 16 in
    let conflict = ref None in
    List.iter
      (fun p ->
        match p with
        | Pred.Pc (x, y) -> (
          match Hashtbl.find_opt edges y with
          | None -> Hashtbl.replace edges y (x, Child)
          | Some (x', Descendant) when x' = x -> Hashtbl.replace edges y (x, Child)
          | Some (x', _) when x' = x -> ()
          | Some _ -> conflict := Some y)
        | Pred.Ad (x, y) -> (
          match Hashtbl.find_opt edges y with
          | None -> Hashtbl.replace edges y (x, Descendant)
          | Some (x', _) when x' = x -> ()
          | Some _ -> conflict := Some y)
        | Pred.Tag_eq _ | Pred.Attr _ | Pred.Contains _ -> ())
      preds;
    match !conflict with
    | Some v -> Error (Printf.sprintf "variable $%d has two distinct parents" v)
    | None ->
      let roots = List.filter (fun v -> not (Hashtbl.mem edges v)) vars in
      (match roots with
      | [ root ] ->
        let info v =
          let tag =
            List.find_map (function Pred.Tag_eq (x, t) when x = v -> Some t | _ -> None) preds
          in
          let attrs =
            List.filter_map (function Pred.Attr (x, p) when x = v -> Some p | _ -> None) preds
          in
          let contains =
            List.filter_map (function Pred.Contains (x, e) when x = v -> Some e | _ -> None) preds
          in
          { tag; attrs; contains }
        in
        let nodes = List.map (fun v -> (v, info v)) vars in
        let edge_list = Hashtbl.fold (fun c (p, a) acc -> (p, c, a) :: acc) edges [] in
        if not (List.mem distinguished vars) then Error "distinguished variable was dropped"
        else make ~root ~nodes ~edges:edge_list ~distinguished
      | [] -> Error "no root (cyclic structural predicates)"
      | _ -> Error "disconnected pattern: multiple roots")
  end

let equal a b =
  a.root = b.root && a.distinguished = b.distinguished
  && Imap.equal (fun (n : node) m -> n = m) a.nodes b.nodes
  && Imap.equal (fun e f -> e = f) a.edges b.edges

let canonical_key q =
  (* Each subtree writes into its own buffer, so a node's key costs only
     its own bytes plus its (already materialized) children's keys — the
     whole key is built in time linear in its length, which matters now
     that it doubles as a cache key on the query hot path. *)
  let rec emit b v =
    let n = node q v in
    Buffer.add_char b '(';
    Buffer.add_string b (match n.tag with Some t -> t | None -> "*");
    if v = q.distinguished then Buffer.add_char b '!';
    List.iter
      (fun (p : Pred.attr_pred) ->
        Buffer.add_char b '@';
        Buffer.add_string b (Pred.to_string (Pred.Attr (0, p))))
      (List.sort compare n.attrs);
    List.iter
      (fun e ->
        Buffer.add_char b '~';
        Buffer.add_string b (Ftexp.to_string e))
      (List.sort Ftexp.compare n.contains);
    let kid_keys =
      List.map
        (fun (c, a) ->
          let kb = Buffer.create 64 in
          Buffer.add_string kb (match a with Child -> "/" | Descendant -> "//");
          emit kb c;
          Buffer.contents kb)
        (children q v)
    in
    List.iter (Buffer.add_string b) (List.sort String.compare kid_keys);
    Buffer.add_char b ')'
  in
  let b = Buffer.create 128 in
  emit b q.root;
  Buffer.contents b

let pp fmt q =
  let rec pp_tree indent v =
    let n = node q v in
    let axis_str =
      match parent q v with
      | None -> ""
      | Some (_, Child) -> "/"
      | Some (_, Descendant) -> "//"
    in
    Format.fprintf fmt "%s%s$%d:%s%s@."
      (String.make indent ' ')
      axis_str v
      (match n.tag with Some t -> t | None -> "*")
      (if v = q.distinguished then "  <answer>" else "");
    List.iter
      (fun (p : Pred.attr_pred) ->
        Format.fprintf fmt "%s  where %s@." (String.make indent ' ')
          (Pred.to_string (Pred.Attr (v, p))))
      n.attrs;
    List.iter
      (fun e ->
        Format.fprintf fmt "%s  where contains($%d, %s)@." (String.make indent ' ') v
          (Ftexp.to_string e))
      n.contains;
    List.iter (fun (c, _) -> pp_tree (indent + 2) c) (children q v)
  in
  pp_tree 0 q.root

let to_string q = Format.asprintf "%a" pp q
