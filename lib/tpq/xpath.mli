(** Concrete syntax for tree pattern queries — the XPath fragment of the
    paper (child/descendant axes, branching predicates, attribute
    comparisons and [contains]).

    Grammar (informal):
    {v
    query   ::= ('/' | '//') step (('/' | '//') step)*
    step    ::= (name | '*') ('[' pred (and pred)* ']')?
    pred    ::= relpath
              | 'contains(' ('.' | relpath) ',' ftexp ')'
              | relpath? '.contains(' ftexp ')'        (paper style)
              | '@' name relop literal
    relpath ::= '.' (('/' | '//') step)*
    v}

    The distinguished (answer) node is the last step of the outermost
    path, as in [//article[...]] returning articles.  A leading '/' or
    '//' both mean "anywhere in the document": the data model has a
    single document, and the paper's queries all start with '//'.

    Variables are numbered $1, $2, ... in the order steps appear, so the
    examples of Figure 1 parse to the same numbering used in the
    paper. *)

type error = { offset : int; message : string }
(** A syntax error at a 0-based byte offset into the query string.
    Errors inside an embedded full-text expression carry the offset of
    the offending character within the whole query, not within the
    expression. *)

val error_to_string : error -> string
(** ["at offset %d: %s"]. *)

val parse : string -> (Query.t, error) result

val parse_exn : string -> Query.t
(** @raise Invalid_argument on syntax errors. *)

val to_string : Query.t -> string
(** Renders back to the XPath fragment, using the paper's
    [.contains(...)] style for full-text predicates.  Parsing the output
    yields a query isomorphic to the input. *)
