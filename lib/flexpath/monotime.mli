(** A monotonic elapsed-time source without C stubs.

    [Unix.gettimeofday] is wall-clock time: NTP steps and
    suspend/resume make it jump, forward or backward, so a deadline
    armed against it can fire early or never.  The standard fix is
    [clock_gettime(CLOCK_MONOTONIC)], which the OCaml stdlib does not
    expose; rather than add a C stub (or an [Mtime] dependency the
    container does not have), this module {e monotonizes} the wall
    clock: a clock accumulates only the non-negative deltas between
    consecutive readings.  Backward jumps — the failure mode that makes
    a deadline never fire — contribute zero elapsed time instead of a
    negative amount; the reading never decreases.  Forward steps still
    count as elapsed time, which is the desired behaviour for a
    wall-clock budget across a suspend (the user did wait that long).

    A clock is single-owner mutable state: one {!t} per measured
    activity (one per {!Guard.t}, one per server request), not shared
    across domains.  Resolution is that of [Unix.gettimeofday]
    (microseconds). *)

type t

val create : unit -> t
(** A clock reading 0 now. *)

val elapsed_ms : t -> float
(** Milliseconds accumulated since {!create}; never decreases. *)

val elapsed_s : t -> float
(** Seconds accumulated since {!create}; never decreases. *)

val now_ms : unit -> float
(** A process-wide monotonized clock, safe to read from any domain
    (readings are serialized behind a mutex — cheap at per-request
    frequency, not meant for per-tuple polling).  Timestamps from
    different domains are comparable: worker heartbeats, the
    supervisor's staleness scans and admission-queue enqueue stamps
    all read this one clock.  The origin is the first read after
    program start; only differences are meaningful. *)
