(** FleXPath: flexible structure and full-text querying for XML
    (Amer-Yahia, Lakshmanan, Pandit — SIGMOD 2004).

    The façade for the whole system.  Typical use:

    {[
      let env = Flexpath.Env.of_string xml_text |> Result.get_ok in
      let result =
        Flexpath.top_k_xpath env ~k:10
          "//article[./section[./algorithm and \
           ./paragraph[.contains(\"XML\" and \"streaming\")]]]"
        |> Result.get_ok
      in
      List.iter
        (fun a -> Format.printf "%a@." (Flexpath.Answer.pp env.doc) a)
        result.answers
    ]}

    The structural part of the query is a template: answers matching it
    exactly come first, answers matching a relaxation follow with
    scores discounted by data-derived penalties (§3, §4).

    {2 Robustness}

    Every failure a user input can provoke is a value of
    {!Error.t} — {!run} never raises on user input.  An optional
    {!Guard.budget} bounds a query's wall-clock time, executor tuples
    and relaxation steps; exhausting it yields a best-effort,
    correctly ordered partial top-K marked
    {!Common.completeness.Truncated}, never an exception
    (§5's early-termination bound makes the truncation sound).
    {!Failpoint} injects deterministic faults for testing every
    failure path. *)

module Ranking = Ranking
module Env = Env
module Answer = Answer
module Common = Common
module Dpo = Dpo
module Sso = Sso
module Hybrid = Hybrid
module Storage = Storage
module Error = Error
module Guard = Guard
module Failpoint = Failpoint
module Monotime = Monotime
module Qcache = Qcache
module Wal = Wal
module Ingest = Ingest
module Corpus = Corpus

exception Failed of Error.t
(** Raised only by the [_exn] conveniences ({!run_exn}, {!top_k}). *)

type algorithm = DPO | SSO | Hybrid

val algorithm_to_string : algorithm -> string
val algorithm_of_string : string -> (algorithm, string) result
val all_algorithms : algorithm list

val plan_key : algorithm:algorithm -> scheme:Ranking.scheme -> ?max_steps:int -> Tpq.Query.t -> string
(** The {!Qcache} plan-tier key {!run} uses: canonical shape plus
    everything that shapes the chain and its evaluation
    ([algorithm], [scheme], effective [max_steps]). *)

val answer_key :
  plan_key:string ->
  k:int ->
  budget:Guard.budget option ->
  executor:Joins.Exec.executor ->
  string
(** The {!Qcache} answer-tier key: the plan key extended with [k], the
    budget class and the executor (truncation points under a budget
    can differ per physical operator, so governed results must not
    cross executors; un-truncated results are identical either way). *)

val run :
  ?algorithm:algorithm ->
  ?scheme:Ranking.scheme ->
  ?max_steps:int ->
  ?budget:Guard.budget ->
  ?cache:Qcache.t ->
  ?executor:Joins.Exec.executor ->
  Env.t ->
  k:int ->
  Tpq.Query.t ->
  (Common.result, Error.t) result
(** Top-K evaluation.  Defaults: [Hybrid], [Structure_first], no
    budget.  Never raises on user input: closure-capacity overflows and
    injected faults come back as [Error], budget exhaustion as a
    [Truncated] {!Common.result}.

    With [cache], the answer tier is consulted first (a hit returns the
    memoized [Complete] result without touching the executor at all);
    on a miss the plan tier supplies — or is populated with — the
    penalty environment, relaxation chain and compiled join plans, and
    a [Complete], non-degraded result is stored back.  The cache must
    have been created for {e this} [env] (see {!Qcache}).

    [executor] (default [Auto]) selects the physical join operator per
    evaluation pass — see {!Joins.Exec.executor}.  Results are
    byte-identical across executors; the executor is still part of the
    answer-cache key because budget truncation points can differ. *)

val run_exn :
  ?algorithm:algorithm ->
  ?scheme:Ranking.scheme ->
  ?max_steps:int ->
  ?budget:Guard.budget ->
  ?cache:Qcache.t ->
  ?executor:Joins.Exec.executor ->
  Env.t ->
  k:int ->
  Tpq.Query.t ->
  Common.result
(** {!run}, raising {!Failed}. *)

val top_k :
  ?algorithm:algorithm ->
  ?scheme:Ranking.scheme ->
  ?max_steps:int ->
  ?budget:Guard.budget ->
  ?cache:Qcache.t ->
  ?executor:Joins.Exec.executor ->
  Env.t ->
  k:int ->
  Tpq.Query.t ->
  Answer.t list
(** The answers of {!run_exn}. *)

val top_k_xpath :
  ?algorithm:algorithm ->
  ?scheme:Ranking.scheme ->
  ?max_steps:int ->
  ?budget:Guard.budget ->
  ?cache:Qcache.t ->
  ?executor:Joins.Exec.executor ->
  Env.t ->
  k:int ->
  string ->
  (Answer.t list, Error.t) result
(** Parse the XPath fragment, then {!run}; syntax errors come back as
    [Error.Query_error] with a byte offset. *)

val exact_answers : Env.t -> Tpq.Query.t -> Xmldom.Doc.elem list
(** Classical exact-match semantics (no relaxation) — the baseline the
    flexible semantics consistently extends. *)
