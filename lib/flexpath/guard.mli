(** Resource governance for query execution.

    A {!budget} bounds what one top-K evaluation may consume: wall-clock
    time, tuples produced by the join executor, and relaxation steps
    (evaluation passes).  A running query carries a guard — the mutable
    runtime state of its budget — and the executor polls it
    cooperatively from its hot join loop (amortized, every
    {!poll_interval} tuples, so ungoverned runs pay nothing).

    Exhausting a budget is {e not} an error: the §5 top-K algorithms
    degrade gracefully, returning the best-effort top-K collected so
    far, marked [Truncated] and accompanied by a sound bound on what any
    unreported answer could still score (see {!Common.completeness}).
    Early termination over the penalty-ordered relaxation chain is
    already part of the algorithms' soundness argument
    ({!Common.unseen_bound}); a budget merely forces the cut earlier. *)

type budget = {
  deadline_ms : float option;
      (** Elapsed-time limit from {!start}, in milliseconds, measured on
          the monotonized clock of {!Monotime} (immune to backward
          wall-clock jumps). *)
  tuple_budget : int option;
      (** Limit on tuples produced by the executor, cumulative over
          every pass of the evaluation. *)
  step_budget : int option;
      (** Limit on relaxation steps (evaluation passes) started. *)
  restart_cap : int option;
      (** SSO/Hybrid restarts allowed after an underestimated cut before
          the engine falls back to DPO's exact per-step evaluation. *)
}

val unlimited : budget

val budget :
  ?deadline_ms:float ->
  ?tuple_budget:int ->
  ?step_budget:int ->
  ?restart_cap:int ->
  unit ->
  budget

type reason = Deadline | Tuples | Steps  (** Which budget tripped first. *)

val reason_to_string : reason -> string

type t
(** A budget plus its runtime state: start time, cumulative tuple count
    and the first trip, if any.  One guard governs one evaluation
    end-to-end (all passes and restarts share it). *)

val none : t
(** The permanent unlimited guard: never trips, costs nothing. *)

val start : budget -> t
(** Arms [budget] now; the deadline counts from this call. *)

val tripped : t -> reason option
(** The first recorded trip. *)

val tuples_consumed : t -> int

val cancel_fn : t -> (int -> bool) option
(** The cooperative cancellation callback for {!Joins.Exec.run}: called
    with the number of tuples produced since the previous call, it
    accumulates them, re-checks the deadline and the tuple budget, and
    returns [true] (recording the trip) when either is exhausted.
    [None] when the guard can never trip on those axes, so the executor
    skips polling entirely. *)

val pass_allowed : t -> passes:int -> reason option
(** Checked before starting an evaluation pass: [passes] passes have
    already run.  Returns the blocking reason — a previously recorded
    trip, an exhausted step budget, a passed deadline or an exhausted
    tuple budget — or [None] to proceed.  A returned reason is
    recorded. *)

val restart_exhausted : t -> restarts:int -> bool
(** Would one more SSO/Hybrid restart exceed the cap? *)

val poll_interval : int
(** Tuples between two cancellation checks in the executor (4096). *)
