(** A size-bounded LRU cache over repeated query shapes (DESIGN.md §4f).

    FleXPath's workload re-derives the same closure, relaxation chain
    and compiled join plans for every repetition of a query shape.
    {!Tpq.Query.canonical_key} identifies shapes up to variable
    renaming, and answers carry no variable ids, so memoization at the
    shape level is sound.  Two tiers share one byte budget and one
    recency list:

    - the {b plan tier} holds {!Common.plan} values — the penalty
      environment, the greedy relaxation chain, and (filled in lazily
      by the algorithms) the relaxation-encoded join plan per chain
      entry.  Callers key it by canonical key + ranking scheme +
      algorithm + chain length;
    - the {b answer tier} holds complete {!Common.result} values,
      keyed additionally by [k] and the effective budget class.

    {b Cacheability}: only results that are [Complete] and not
    [degraded] are ever stored — a [Truncated] (wire [PARTIAL]) or
    degraded result reflects the budget of the run that produced it,
    not the query, and must never be replayed ({!store_answer} on one
    is a no-op).

    A cache is bound to one environment: entries embed penalties and
    statistics derived from it.  The server creates a fresh cache per
    snapshot generation, so [RELOAD] invalidates atomically with the
    snapshot swap (see [Flexpath_server.Server]).

    All operations are mutex-serialized; one cache may be shared by
    every worker domain. *)

type t

type counters = {
  hits : int;  (** Lookups answered from either tier. *)
  misses : int;  (** Lookups that found nothing. *)
  evictions : int;  (** Entries dropped to respect the byte budget. *)
  bytes : int;  (** Estimated resident size of live entries. *)
  entries : int;  (** Live entries across both tiers. *)
}

val create : ?max_bytes:int -> unit -> t
(** Default budget 64 MiB.  Sizes are deterministic per-entry estimates
    of retained structures (the shared environment is not charged). *)

val max_bytes : t -> int

val find_plan : t -> string -> Common.plan option
(** Plan-tier lookup; a hit refreshes recency. *)

val store_plan : t -> string -> Common.plan -> unit
(** Insert or replace; evicts least-recently-used entries (either tier)
    until the budget holds.  An entry larger than the whole budget is
    refused. *)

val find_answer : t -> string -> Common.result option
(** Answer-tier lookup; every result returned is [Complete] and not
    [degraded]. *)

val store_answer : t -> string -> Common.result -> unit
(** No-op unless {!cacheable}. *)

val cacheable : Common.result -> bool
(** [Complete] and not [degraded]. *)

type ext = ..
(** The {b extension tier}: layers above the single-environment engine
    (the sharded corpus) extend this type with their own cached values
    and share the same byte budget and recency list.  Extension keys
    live in their own namespace and never collide with plan or answer
    keys. *)

val find_ext : t -> string -> ext option
(** Extension-tier lookup; a hit refreshes recency. *)

val store_ext : t -> string -> ext -> size:int -> unit
(** Insert or replace; [size] is the caller's deterministic estimate in
    bytes of the retained value (the key is charged on top).  Same
    eviction rules as {!store_plan}. *)

val counters : t -> counters
