(* A small persistent domain pool for intra-query parallelism.

   The pool exists for fan-out work whose unit cost is large relative
   to a mutex round-trip — shard probes, not tuple joins.  Domains are
   spawned once at {!create} and live until {!shutdown}: spawning a
   domain costs milliseconds, far too much to pay per query.

   [run] is a structured fork-join: the caller donates its own domain
   to the work instead of blocking idle, so a pool of [n] domains
   gives [n+1]-way parallelism and — crucially — a pool of zero
   domains degrades to plain sequential execution with no deadlock
   and no waiting.  Tasks never return values through the pool;
   callers communicate through closures over their own (locked)
   state, which keeps this module free of any marshalling policy.

   An exception escaping a task is caught, remembered, and re-raised
   from [run] in the caller's domain after every task of that batch
   has settled — the batch always joins fully, so caller-side cleanup
   code never races a still-running task. *)

type task = { thunk : unit -> unit; batch : batch }

and batch = {
  mutable remaining : int;
  mutable failure : exn option;  (* first exception; re-raised by [run] *)
}

type t = {
  lock : Mutex.t;
  work : Condition.t;  (* signaled on push and on shutdown *)
  settled : Condition.t;  (* broadcast when any batch counter reaches 0 *)
  queue : task Queue.t;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

let exec pool task =
  (match task.thunk () with
  | () -> ()
  | exception e ->
    Mutex.lock pool.lock;
    if task.batch.failure = None then task.batch.failure <- Some e;
    Mutex.unlock pool.lock);
  Mutex.lock pool.lock;
  task.batch.remaining <- task.batch.remaining - 1;
  if task.batch.remaining = 0 then Condition.broadcast pool.settled;
  Mutex.unlock pool.lock

let worker pool () =
  let rec loop () =
    Mutex.lock pool.lock;
    while Queue.is_empty pool.queue && not pool.stop do
      Condition.wait pool.work pool.lock
    done;
    if Queue.is_empty pool.queue then (
      Mutex.unlock pool.lock (* stop && drained *))
    else begin
      let task = Queue.pop pool.queue in
      Mutex.unlock pool.lock;
      exec pool task;
      loop ()
    end
  in
  loop ()

let create ~domains =
  let pool =
    {
      lock = Mutex.create ();
      work = Condition.create ();
      settled = Condition.create ();
      queue = Queue.create ();
      stop = false;
      domains = [];
    }
  in
  pool.domains <- List.init (max 0 domains) (fun _ -> Domain.spawn (worker pool));
  pool

let size pool = List.length pool.domains

let run pool thunks =
  match thunks with
  | [] -> ()
  | thunks ->
    let batch = { remaining = List.length thunks; failure = None } in
    Mutex.lock pool.lock;
    List.iter
      (fun thunk ->
        Queue.push { thunk; batch } pool.queue;
        Condition.signal pool.work)
      thunks;
    Mutex.unlock pool.lock;
    (* Donate the calling domain: drain whatever is queued (tasks from
       a concurrent batch are fine — work-conserving either way), then
       wait for this batch's own counter. *)
    let rec help () =
      Mutex.lock pool.lock;
      if Queue.is_empty pool.queue then Mutex.unlock pool.lock
      else begin
        let task = Queue.pop pool.queue in
        Mutex.unlock pool.lock;
        exec pool task;
        help ()
      end
    in
    help ();
    Mutex.lock pool.lock;
    while batch.remaining > 0 do
      Condition.wait pool.settled pool.lock
    done;
    let failure = batch.failure in
    Mutex.unlock pool.lock;
    (match failure with Some e -> raise e | None -> ())

let shutdown pool =
  Mutex.lock pool.lock;
  pool.stop <- true;
  Condition.broadcast pool.work;
  Mutex.unlock pool.lock;
  List.iter Domain.join pool.domains;
  pool.domains <- []
