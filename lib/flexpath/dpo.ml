(* Answer nodes are preorder ranks ([Xmldom.Doc.elem = int]): key the
   best-score table with monomorphic integer hashing instead of the
   polymorphic default. *)
module Itbl = Hashtbl.Make (Int)

let run ?max_steps ?(guard = Guard.none) ?metrics ?plan ?floor ?executor env ~scheme ~k q =
  let plan = match plan with Some p -> p | None -> Common.build_plan env ?max_steps q in
  let penv = plan.Common.penv in
  let metrics = match metrics with Some m -> m | None -> Joins.Exec.fresh_metrics () in
  let cancel = Guard.cancel_fn guard in
  (* An answer node can gain a better-scoring embedding once a deeper
     relaxation widens the embedding space, so keep the best score seen
     per node.  The stopping bound covers improvements too: an
     embedding invalid under the current relaxation scores at most
     [unseen_bound]. *)
  let best : Answer.t Itbl.t = Itbl.create 64 in
  let passes = ref 0 in
  (* The deepest entry whose pass ran to completion: budget truncation
     reports [unseen_bound] of this entry as the sound score bound for
     whatever was not collected. *)
  let last_completed = ref None in
  let completeness = ref Common.Complete in
  let truncate reason =
    completeness :=
      Common.Truncated { reason; score_bound = Common.truncation_bound scheme penv !last_completed }
  in
  let n = Array.length plan.Common.chain in
  let rec go i =
    if i < n then begin
      let entry = plan.Common.chain.(i) in
      match Guard.pass_allowed guard ~passes:!passes with
      | Some reason -> truncate reason
      | None -> (
        incr passes;
        match Common.evaluate_entry ~metrics ?cancel ?executor env plan i Joins.Exec.exact_strategy with
        | exception Joins.Exec.Cancelled ->
          (* The pass was abandoned mid-join: nothing of it is kept, the
             bound stays that of the last completed entry. *)
          truncate
            (match Guard.tripped guard with Some r -> r | None -> Guard.Deadline)
        | answers ->
          List.iter
            (fun (a : Answer.t) ->
              match Itbl.find_opt best a.node with
              | None -> Itbl.replace best a.node a
              | Some prev ->
                if Ranking.compare_desc scheme (Answer.score a) (Answer.score prev) < 0 then
                  Itbl.replace best a.node a)
            answers;
          last_completed := Some entry;
          let collected = Itbl.fold (fun _ a acc -> a :: acc) best [] in
          (* The scatter-gather executor passes an external [floor] —
             the k-th total already guaranteed by other shards.  Any
             answer this evaluation has not yet produced is bounded by
             [unseen_bound], so once that bound cannot beat the floor
             the rest of the chain is provably outside the global
             top-K, even if fewer than k answers were found here. *)
          let finished =
            match (Common.kth_total scheme k collected, floor) with
            | None, None -> false
            | kth, fl ->
              let cur =
                Float.max
                  (Option.value kth ~default:neg_infinity)
                  (match fl with None -> neg_infinity | Some f -> f ())
              in
              cur >= Common.unseen_bound scheme penv entry -. 1e-9
          in
          if not finished then go (i + 1))
    end
  in
  go 0;
  Common.Log.debug (fun m -> m "DPO: %d passes, %d distinct answers" !passes (Itbl.length best));
  let collected = Itbl.fold (fun _ a acc -> a :: acc) best [] in
  {
    Common.answers = Answer.sort_and_truncate scheme k collected;
    metrics;
    relaxations_evaluated = !passes;
    passes = !passes;
    restarts = 0;
    completeness = !completeness;
    degraded = false;
  }
