(** Unified structured errors for the whole engine.

    Every failure mode a user-supplied input can provoke — malformed
    XML, bad query syntax, missing files, unusable configuration,
    executor capacity limits, corrupted snapshots and injected faults —
    surfaces as a value of this one type.  {!Flexpath.run} and the
    environment constructors return [('a, t) result] and never raise on
    user input; the CLI maps constructors to distinct exit codes. *)

type corruption =
  | Bad_magic  (** The file does not start with the snapshot magic. *)
  | Version_skew of { found : int; newest : int }
      (** The format version byte names a version this build cannot
          read. *)
  | Truncated of { at : string }
      (** The file ends before the named structure ([header], a section
          name, or [footer]) is complete — the signature of a crash
          while a non-atomic writer was at work, which the atomic
          {!Storage.save} never produces. *)
  | Checksum_mismatch of { section : string }
      (** The named component's stored CRC-32 does not match its bytes
          (bit rot, torn write, manual editing). *)
  | Trailing_garbage of { bytes : int }
      (** Well-formed snapshot followed by extra bytes — the file was
          appended to or two files were concatenated. *)
  | Malformed_section of { section : string; message : string }
      (** The section's bytes checksum correctly but do not deserialize
          to a value of the expected shape. *)

type t =
  | Xml_error of { path : string option; line : int; column : int; message : string }
      (** The document is not well-formed XML.  [line]/[column] are
          1-based and point at the offending input; [path] is present
          when the document came from a file. *)
  | Query_error of { offset : int; message : string }
      (** The XPath fragment (or a full-text expression inside it)
          failed to parse; [offset] is a 0-based byte offset into the
          query string. *)
  | Capacity of { what : string; limit : int; actual : int }
      (** A structural limit of the engine was exceeded (for example the
          62-predicate closure capacity of the scored executor). *)
  | Io_error of { path : string; message : string }
      (** A file could not be read or written.  [path] may be [""] when
          [message] already names it (system error strings do). *)
  | Config_error of { what : string; message : string }
      (** A hierarchy, thesaurus or weights input was unusable; [what]
          names the input kind. *)
  | Snapshot_error of { path : string; corruption : corruption }
      (** A saved environment failed a {!Storage.load}/{!Storage.verify}
          integrity check; [corruption] classifies the damage.  Damage
          confined to derived sections is repaired in place (see
          {!Storage.outcome}) and does not surface as an error. *)
  | Fault of string
      (** An activated {!Failpoint} fired; the payload is the failpoint
          name. *)
  | Readonly of { path : string; retry_after_ms : int }
      (** The store refused a write because it degraded to read-only
          after a disk fault ([ENOSPC]/[EIO] on a WAL append, fsync or
          snapshot rename — see {!Ingest}).  Reads still serve;
          [retry_after_ms] is the probation interval after which the
          store re-probes the disk.  Distinct from [Io_error]: that is
          the fault itself, this is the refusal-to-risk-it that
          follows. *)

val corruption_to_string : corruption -> string
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val exit_code : t -> int
(** CLI conventions: 2 for parse errors ([Xml_error], [Query_error]),
    4 for snapshot corruption ([Snapshot_error]), 7 for a read-only
    store ([Readonly]), 1 for everything else.  (Exit code 3 is
    reserved for budget exhaustion, which is a truncated result, not an
    error; 5/6 are the client's overload/quarantine codes.) *)
