module Ranking = Ranking
module Env = Env
module Answer = Answer
module Common = Common
module Dpo = Dpo
module Sso = Sso
module Hybrid = Hybrid
module Storage = Storage
module Error = Error
module Guard = Guard
module Failpoint = Failpoint
module Monotime = Monotime
module Qcache = Qcache
module Wal = Wal
module Ingest = Ingest
module Corpus = Corpus
module Taskpool = Taskpool

(* Plant the fault-injection registry into the lower layers (and arm
   FLEXPATH_FAILPOINTS) as soon as the library is initialized. *)
let () = Failpoint.install ()

exception Failed of Error.t

type algorithm = DPO | SSO | Hybrid

let algorithm_to_string = function DPO -> "dpo" | SSO -> "sso" | Hybrid -> "hybrid"

let algorithm_of_string s =
  match String.lowercase_ascii s with
  | "dpo" -> Ok DPO
  | "sso" -> Ok SSO
  | "hybrid" -> Ok Hybrid
  | other -> Error (Printf.sprintf "unknown algorithm %S (expected dpo, sso or hybrid)" other)

let all_algorithms = [ DPO; SSO; Hybrid ]

(* Cache keys.  The plan tier is keyed by everything that shapes the
   chain and its evaluation order (canonical shape, scheme, algorithm,
   chain length); the answer tier adds [k] and the budget class, so a
   governed request never sees a result computed under laxer limits —
   conservative, since a [Complete] result is budget-independent, but
   it keeps every cached entry explainable from its key alone. *)

let budget_class = function
  | None -> "-"
  | Some (b : Guard.budget) ->
    let f = function None -> "-" | Some x -> Printf.sprintf "%g" x in
    let i = function None -> "-" | Some x -> string_of_int x in
    Printf.sprintf "%s,%s,%s,%s" (f b.Guard.deadline_ms) (i b.Guard.tuple_budget)
      (i b.Guard.step_budget) (i b.Guard.restart_cap)

let plan_key ~algorithm ~scheme ?max_steps q =
  Printf.sprintf "%s|%s|%d|%s" (algorithm_to_string algorithm) (Ranking.to_string scheme)
    (Option.value max_steps ~default:32)
    (Tpq.Query.canonical_key q)

(* The executor is part of the answer key, not the plan key: plans are
   executor-independent, and while executors agree byte-for-byte on
   un-truncated results, a tuple budget or deadline can trip at a
   different point under each, so a governed request must not see a
   truncation computed under the other operator. *)
let answer_key ~plan_key ~k ~budget ~executor =
  Printf.sprintf "%s|k=%d|b=%s|x=%s" plan_key k (budget_class budget)
    (Joins.Exec.executor_to_string executor)

let run ?(algorithm = Hybrid) ?(scheme = Ranking.Structure_first) ?max_steps ?budget ?cache
    ?(executor = Joins.Exec.Auto) env ~k q =
  let keys =
    lazy
      (let pk = plan_key ~algorithm ~scheme ?max_steps q in
       (pk, answer_key ~plan_key:pk ~k ~budget ~executor))
  in
  let answer_hit =
    match cache with
    | None -> None
    | Some c -> Qcache.find_answer c (snd (Lazy.force keys))
  in
  match answer_hit with
  | Some result -> Ok result
  | None -> (
    let guard = match budget with None -> Guard.none | Some b -> Guard.start b in
    let eval () =
      let plan =
        match cache with
        | None -> None
        | Some c -> (
          let pk = fst (Lazy.force keys) in
          match Qcache.find_plan c pk with
          | Some p -> Some p
          | None ->
            let p = Common.build_plan env ?max_steps q in
            Qcache.store_plan c pk p;
            Some p)
      in
      match algorithm with
      | DPO -> Dpo.run ?max_steps ?plan ~guard ~executor env ~scheme ~k q
      | SSO -> Sso.run ?max_steps ?plan ~guard ~executor env ~scheme ~k q
      | Hybrid -> Hybrid.run ?max_steps ?plan ~guard ~executor env ~scheme ~k q
    in
    match eval () with
    | result ->
      (match cache with
      | Some c -> Qcache.store_answer c (snd (Lazy.force keys)) result
      | None -> ());
      Ok result
    | exception Joins.Exec.Capacity_exceeded { what; limit; actual } ->
      Error (Error.Capacity { what; limit; actual })
    | exception Failpoint.Injected point -> Error (Error.Fault point))

let run_exn ?algorithm ?scheme ?max_steps ?budget ?cache ?executor env ~k q =
  match run ?algorithm ?scheme ?max_steps ?budget ?cache ?executor env ~k q with
  | Ok result -> result
  | Error e -> raise (Failed e)

let top_k ?algorithm ?scheme ?max_steps ?budget ?cache ?executor env ~k q =
  (run_exn ?algorithm ?scheme ?max_steps ?budget ?cache ?executor env ~k q).Common.answers

let top_k_xpath ?algorithm ?scheme ?max_steps ?budget ?cache ?executor env ~k s =
  match Tpq.Xpath.parse s with
  | Error { offset; message } -> Error (Error.Query_error { offset; message })
  | Ok q ->
    Result.map
      (fun r -> r.Common.answers)
      (run ?algorithm ?scheme ?max_steps ?budget ?cache ?executor env ~k q)

let exact_answers (env : Env.t) q =
  Tpq.Semantics.answers ~hierarchy:env.hierarchy env.doc env.index q
