module Ranking = Ranking
module Env = Env
module Answer = Answer
module Common = Common
module Dpo = Dpo
module Sso = Sso
module Hybrid = Hybrid
module Storage = Storage
module Error = Error
module Guard = Guard
module Failpoint = Failpoint
module Monotime = Monotime

(* Plant the fault-injection registry into the lower layers (and arm
   FLEXPATH_FAILPOINTS) as soon as the library is initialized. *)
let () = Failpoint.install ()

exception Failed of Error.t

type algorithm = DPO | SSO | Hybrid

let algorithm_to_string = function DPO -> "dpo" | SSO -> "sso" | Hybrid -> "hybrid"

let algorithm_of_string s =
  match String.lowercase_ascii s with
  | "dpo" -> Ok DPO
  | "sso" -> Ok SSO
  | "hybrid" -> Ok Hybrid
  | other -> Error (Printf.sprintf "unknown algorithm %S (expected dpo, sso or hybrid)" other)

let all_algorithms = [ DPO; SSO; Hybrid ]

let run ?(algorithm = Hybrid) ?(scheme = Ranking.Structure_first) ?max_steps ?budget env ~k q =
  let guard = match budget with None -> Guard.none | Some b -> Guard.start b in
  match
    match algorithm with
    | DPO -> Dpo.run ?max_steps ~guard env ~scheme ~k q
    | SSO -> Sso.run ?max_steps ~guard env ~scheme ~k q
    | Hybrid -> Hybrid.run ?max_steps ~guard env ~scheme ~k q
  with
  | result -> Ok result
  | exception Joins.Exec.Capacity_exceeded { what; limit; actual } ->
    Error (Error.Capacity { what; limit; actual })
  | exception Failpoint.Injected point -> Error (Error.Fault point)

let run_exn ?algorithm ?scheme ?max_steps ?budget env ~k q =
  match run ?algorithm ?scheme ?max_steps ?budget env ~k q with
  | Ok result -> result
  | Error e -> raise (Failed e)

let top_k ?algorithm ?scheme ?max_steps ?budget env ~k q =
  (run_exn ?algorithm ?scheme ?max_steps ?budget env ~k q).Common.answers

let top_k_xpath ?algorithm ?scheme ?max_steps ?budget env ~k s =
  match Tpq.Xpath.parse s with
  | Error { offset; message } -> Error (Error.Query_error { offset; message })
  | Ok q -> Result.map (fun r -> r.Common.answers) (run ?algorithm ?scheme ?max_steps ?budget env ~k q)

let exact_answers (env : Env.t) q =
  Tpq.Semantics.answers ~hierarchy:env.hierarchy env.doc env.index q
