(** A persistent domain pool for coarse-grained fork-join parallelism
    (the shard scatter of {!Corpus.query}, DESIGN.md §4i/§4j).

    Domains are spawned once and reused; {!run} executes a batch of
    thunks with the {e caller participating} — a pool of [n] domains
    yields [n+1]-way parallelism, and [domains:0] degrades to plain
    sequential execution in the caller with no blocking.  Thunks
    communicate results through closures over caller-owned state; the
    pool imposes no result-passing discipline of its own.

    The join is total: {!run} returns (or re-raises) only after every
    thunk of its batch has finished, so caller cleanup never races a
    live task.  The first exception a thunk raises is re-raised from
    {!run} after the join. *)

type t

val create : domains:int -> t
(** Spawn [domains] worker domains ([0] is legal and means all work
    runs in the caller). *)

val size : t -> int
(** The number of pool domains (excluding the donated caller). *)

val run : t -> (unit -> unit) list -> unit
(** Execute every thunk, on pool domains and the calling domain;
    return once all have settled.  Re-raises the first escaped
    exception after the full join. *)

val shutdown : t -> unit
(** Stop and join the pool domains.  Pending batches are drained
    first; calling {!run} after shutdown executes caller-side only. *)
