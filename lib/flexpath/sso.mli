(** SSO — Static Selectivity Order (§5.1.2, Algorithm 1).

    Uses the selectivity estimator to decide {e before evaluation} how
    many relaxations to encode into a single plan, then evaluates that
    plan once, keeping intermediate results sorted on score and pruning
    with threshold + maxScoreGrowth.  When the estimate was too
    optimistic and fewer than K answers come back, it deepens the
    encoding and restarts (pseudocode lines 11-12).

    Under a {!Guard}, the restart loop is capped
    ([budget.restart_cap]); past the cap — or when a budget trips in
    the middle of the single plan, which cannot yield partial answers —
    the engine degrades to {!Dpo}'s exact per-step evaluation with
    whatever budget remains and marks the result [degraded]. *)

val run :
  ?max_steps:int ->
  ?guard:Guard.t ->
  ?plan:Common.plan ->
  ?floor:(unit -> float) ->
  ?executor:Joins.Exec.executor ->
  Env.t ->
  scheme:Ranking.scheme ->
  k:int ->
  Tpq.Query.t ->
  Common.result
(** [floor] as in {!Dpo.run}: an external lower bound on the global
    k-th total, folded into the enough-answers stopping test.
    [executor] as in {!Dpo.run}. *)

val pick_cut :
  Env.t -> scheme:Ranking.scheme -> k:int -> Relax.Space.entry list -> int
(** Index into the chain of the first entry whose estimated answer
    count reaches K (keyword-first always encodes the full chain, as
    §5.1 requires).  Exposed for the estimator ablation bench. *)

val run_with :
  ?max_steps:int ->
  ?guard:Guard.t ->
  ?plan:Common.plan ->
  ?floor:(unit -> float) ->
  ?executor:Joins.Exec.executor ->
  sort_on_score:bool ->
  bucketize:bool ->
  Env.t ->
  scheme:Ranking.scheme ->
  k:int ->
  Tpq.Query.t ->
  Common.result
(** The SSO skeleton with a custom execution strategy — Hybrid is this
    skeleton with bucketization instead of score sorting.  Pruning
    strength is derived from the ranking scheme (§5.1).  [plan] reuses
    a prebuilt {!Common.plan} (see {!Dpo.run}). *)
