(** Query-processing environment: a document with its full-text index,
    statistics and predicate weights — everything Figure 7's
    architecture shares between the XPath engine, the IR engine and the
    relaxation machinery. *)

type t = {
  doc : Xmldom.Doc.t;
  index : Fulltext.Index.t;
  stats : Stats.t;
  weights : Relax.Penalty.weights;
  hierarchy : Tpq.Hierarchy.t;
}

val make :
  ?weights:Relax.Penalty.weights ->
  ?hierarchy:Tpq.Hierarchy.t ->
  ?scorer:Fulltext.Scorer.t ->
  Xmldom.Doc.t ->
  t
(** Builds the index and statistics (and attaches the index to the
    statistics for [#contains] counting).  Default weights are uniform
    1, as in Example 1; the default hierarchy is empty (tags match
    exactly); the default scorer is tf-idf.
    @raise Failpoint.Injected when an env-build failpoint is armed —
    use {!build} for the result-typed construction path. *)

val build :
  ?weights:Relax.Penalty.weights ->
  ?hierarchy:Tpq.Hierarchy.t ->
  ?scorer:Fulltext.Scorer.t ->
  Xmldom.Doc.t ->
  (t, Error.t) result
(** {!make} with injected faults reified as [Error.Fault]; never
    raises. *)

val of_parts :
  ?weights:Relax.Penalty.weights ->
  doc:Xmldom.Doc.t ->
  index:Fulltext.Index.t ->
  stats:Stats.t ->
  hierarchy:Tpq.Hierarchy.t ->
  unit ->
  t
(** Assembles an environment from already-built parts (attaching the
    index to the statistics), without re-indexing — the constructor
    snapshot {!Storage} uses when every section of a saved environment
    deserialized cleanly. *)

val rebuild :
  ?weights:Relax.Penalty.weights ->
  ?scorer:Fulltext.Scorer.t ->
  ?index:Fulltext.Index.t ->
  ?stats:Stats.t ->
  ?hierarchy:Tpq.Hierarchy.t ->
  Xmldom.Doc.t ->
  t
(** {!of_parts} with holes: any part not supplied is rebuilt from the
    document ([index] and [stats] by a fresh indexing pass, [hierarchy]
    falling back to empty).  Snapshot recovery hands the surviving
    sections here and lets the damaged ones be recomputed. *)

val of_tree :
  ?weights:Relax.Penalty.weights ->
  ?hierarchy:Tpq.Hierarchy.t ->
  ?scorer:Fulltext.Scorer.t ->
  Xmldom.Xml.t ->
  t

val of_string :
  ?weights:Relax.Penalty.weights ->
  ?hierarchy:Tpq.Hierarchy.t ->
  ?scorer:Fulltext.Scorer.t ->
  string ->
  (t, Error.t) result
(** Parses, indexes and never raises: malformed XML becomes
    [Error.Xml_error] with the parser's 1-based line/column. *)

val of_file :
  ?weights:Relax.Penalty.weights ->
  ?hierarchy:Tpq.Hierarchy.t ->
  ?scorer:Fulltext.Scorer.t ->
  string ->
  (t, Error.t) result
(** Like {!of_string} from a file; unreadable files become
    [Error.Io_error]. *)

val penalty_env : t -> Tpq.Query.t -> Relax.Penalty.t
(** Penalty environment for one original query. *)

val exec_env : t -> Relax.Penalty.t -> Joins.Exec.env
