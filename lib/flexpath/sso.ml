let pick_cut env ~scheme ~k chain =
  let n = List.length chain in
  match scheme with
  | Ranking.Keyword_first -> n - 1
  | Ranking.Structure_first | Ranking.Combined ->
    let rec go i = function
      | [] -> n - 1
      | (entry : Relax.Space.entry) :: rest ->
        if Stats.estimate_answers env.Env.stats entry.query >= float_of_int k then i
        else go (i + 1) rest
    in
    go 0 chain

(* Pruning per §5.1: full strength for structure-first, slack of [m]
   (the weight of the contains predicates) for Combined, and none at
   all for keyword-first — "an answer with the worst structural score
   might still make it to the top-K". *)
let prune_for scheme penv k =
  match scheme with
  | Ranking.Structure_first -> (Some k, 0.0)
  | Ranking.Combined -> (Some k, Relax.Penalty.max_keyword_score penv)
  | Ranking.Keyword_first -> (None, 0.0)

let run_with ?max_steps ?(guard = Guard.none) ?plan ?floor ?executor ~sort_on_score ~bucketize env
    ~scheme ~k q =
  let plan = match plan with Some p -> p | None -> Common.build_plan env ?max_steps q in
  let penv = plan.Common.penv in
  let chain_arr = plan.Common.chain in
  let chain = Array.to_list chain_arr in
  let metrics = Joins.Exec.fresh_metrics () in
  let cancel = Guard.cancel_fn guard in
  let cut = pick_cut env ~scheme ~k chain in
  (* §5.1: having estimated that relaxations up to [cut] yield K
     answers, also encode every further relaxation that could still
     contribute a top-K answer — the smallest j with score bound below
     the K-th score the [cut]-level answers guarantee.  This keeps the
     evaluation to a single plan unless the estimate itself was bad. *)
  let cut =
    let floor_score = chain_arr.(cut).Relax.Space.score in
    let rec extend j =
      if j >= Array.length chain_arr - 1 then j
      else if Common.unseen_bound scheme penv chain_arr.(j) <= floor_score +. 1e-9 then j
      else extend (j + 1)
    in
    extend cut
  in
  let prune_k, prune_slack = prune_for scheme penv k in
  let strategy = { Joins.Exec.sort_on_score; bucketize; prune_k; prune_slack } in
  (* Fallback (graceful degradation): hand the rest of the budget to
     DPO's exact per-step evaluation, which can surface partial answers
     at every pass boundary.  Reached when the restart cap is exhausted
     or when a budget trips mid-plan — a single-plan evaluation that
     dies before its last stage has produced no answers at all, so
     per-step evaluation is the only way to salvage anything from
     whatever budget remains. *)
  let degrade restarts passes =
    Common.Log.debug (fun m ->
        m "SSO/Hybrid: degrading to DPO per-step evaluation after %d restarts" restarts);
    let r = Dpo.run ~guard ~metrics ~plan ?floor ?executor env ~scheme ~k q in
    { r with Common.restarts; passes = passes + r.Common.passes; degraded = true }
  in
  (* [done_] counts completed evaluation passes; the pass about to run
     is [done_ + 1]. *)
  let rec attempt cut restarts done_ =
    match Guard.pass_allowed guard ~passes:done_ with
    | Some reason ->
      {
        Common.answers = [];
        metrics;
        relaxations_evaluated = 0;
        passes = done_;
        restarts;
        completeness =
          Common.Truncated { reason; score_bound = Common.truncation_bound scheme penv None };
        degraded = false;
      }
    | None -> (
      let entry = chain_arr.(cut) in
      Common.Log.debug (fun m ->
          m "SSO/Hybrid: evaluating cut %d (%d relaxations, score floor %.3f), attempt %d" cut
            (List.length entry.Relax.Space.ops)
            entry.Relax.Space.score (restarts + 1));
      match Common.evaluate_entry ~metrics ?cancel ?executor env plan cut strategy with
      | exception Joins.Exec.Cancelled -> degrade restarts (done_ + 1)
      | answers ->
        (* As in DPO, an external floor from the scatter-gather merge
           counts toward the stopping bound. *)
        let enough =
          match (Common.kth_total scheme k answers, floor) with
          | None, None -> false
          | kth, fl ->
            let cur =
              Float.max
                (Option.value kth ~default:neg_infinity)
                (match fl with None -> neg_infinity | Some f -> f ())
            in
            cur >= Common.unseen_bound scheme penv entry -. 1e-9
        in
        if enough || cut >= Array.length chain_arr - 1 then
          {
            Common.answers = Answer.sort_and_truncate scheme k answers;
            metrics;
            relaxations_evaluated = List.length entry.ops;
            passes = done_ + 1;
            restarts;
            completeness = Common.Complete;
            degraded = false;
          }
        else if Guard.restart_exhausted guard ~restarts then degrade restarts (done_ + 1)
        else attempt (cut + 1) (restarts + 1) (done_ + 1))
  in
  attempt cut 0 0

let run ?max_steps ?guard ?plan ?floor ?executor env ~scheme ~k q =
  run_with ?max_steps ?guard ?plan ?floor ?executor ~sort_on_score:true ~bucketize:false env
    ~scheme ~k q
