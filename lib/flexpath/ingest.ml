module Xml = Xmldom.Xml
module Doc = Xmldom.Doc
module Index = Fulltext.Index

(* The live corpus is one document: a synthetic [fx-corpus] root whose
   children are [fx-doc id="..."] wrappers, one per ingested document.
   One document means one index and one statistics table, so scores and
   penalties use corpus-global df / avg_scope_len / #pc / #ad counts —
   which is what makes an incrementally extended corpus answer queries
   {e identically} to an offline rebuild over the same document set
   (the merge-equivalence property the test suite checks).  The
   registry of document ids is carried by the wrapper attributes, so a
   Storage v2 snapshot of the corpus env persists everything: no format
   change, and crash recovery of the registry comes free with DOCM. *)

let corpus_tag = "fx-corpus"
let doc_tag = "fx-doc"
let id_attr = "id"

type corpus = { env : Env.t; ids : string list }

(* ------------------------------------------------------------------ *)
(* Document ids.

   Ids travel on the wire verb line, in WAL payloads and in XML
   attributes; a conservative charset keeps them safe in all three. *)

let valid_id id =
  let ok c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '-' || c = '_' || c = '.'
  in
  id <> "" && String.length id <= 128 && String.for_all ok id

let check_id id =
  if valid_id id then Ok id
  else
    Error
      (Error.Config_error
         {
           what = "document id";
           message =
             Printf.sprintf "invalid id %S (1-128 chars from [A-Za-z0-9._-])" id;
         })

(* ------------------------------------------------------------------ *)
(* Parse budget.

   Ingested bytes are untrusted: a streaming SAX pre-pass enforces the
   element cap without materializing a tree, so an oversized document
   costs one scan, not its memory. *)

type limits = { max_bytes : int; max_elems : int }

let default_limits = { max_bytes = 8 * 1024 * 1024; max_elems = 262144 }

exception Over_elems of int

let xml_error (e : Xmldom.Xml_parser.error) =
  Error.Xml_error { path = None; line = e.line; column = e.column; message = e.message }

let parse_doc ?(limits = default_limits) s =
  if String.length s > limits.max_bytes then
    Error
      (Error.Capacity
         { what = "ingest document bytes"; limit = limits.max_bytes; actual = String.length s })
  else begin
    match
      Xmldom.Xml_sax.fold s ~init:0 ~f:(fun n ev ->
          match ev with
          | Xmldom.Xml_sax.Start_element _ ->
            if n + 1 > limits.max_elems then raise (Over_elems (n + 1)) else n + 1
          | _ -> n)
    with
    | exception Over_elems actual ->
      Error (Error.Capacity { what = "ingest document elements"; limit = limits.max_elems; actual })
    | Error e -> Error (xml_error e)
    | Ok _ -> (
      match Xmldom.Xml_parser.parse s with
      | Error e -> Error (xml_error e)
      | Ok (Xml.Text _) ->
        Error (Error.Config_error { what = "ingest document"; message = "root must be an element" })
      | Ok tree -> Ok tree)
  end

(* ------------------------------------------------------------------ *)
(* Corpus construction. *)

let wrap id tree = Xml.Element (doc_tag, [ (id_attr, id) ], [ tree ])

let corpus_tree docs = Xml.Element (corpus_tag, [], List.map (fun (id, t) -> wrap id t) docs)

let of_docs ?weights ?hierarchy ?scorer docs =
  match Env.build ?weights ?hierarchy ?scorer (Doc.of_tree (corpus_tree docs)) with
  | Ok env -> Ok { env; ids = List.map fst docs }
  | Error e -> Error e

let empty ?weights ?hierarchy ?scorer () = of_docs ?weights ?hierarchy ?scorer []

let ids corpus = corpus.ids
let env corpus = corpus.env
let mem corpus id = List.mem id corpus.ids

(* Extract the wrapped tree of each document from the corpus document
   itself — the corpus is its own registry. *)
let docs corpus =
  let doc = corpus.env.Env.doc in
  Doc.children doc (Doc.root doc)
  |> List.map (fun w ->
         let id = Option.value ~default:"" (Doc.attribute doc w id_attr) in
         match Doc.children doc w with
         | [ c ] -> (id, Doc.tree_of doc c)
         | _ -> (id, Doc.tree_of doc w))

let of_env env =
  let doc = env.Env.doc in
  if Doc.tag_name doc (Doc.root doc) <> corpus_tag then
    Error
      (Error.Config_error
         {
           what = "ingest snapshot";
           message =
             Printf.sprintf "snapshot root is <%s>, expected <%s> (not a live-ingest corpus)"
               (Doc.tag_name doc (Doc.root doc))
               corpus_tag;
         })
  else begin
    let kids = Doc.children doc (Doc.root doc) in
    let rec collect acc = function
      | [] -> Ok (List.rev acc)
      | w :: rest -> (
        match Doc.attribute doc w id_attr with
        | Some id when valid_id id && not (List.mem id acc) -> collect (id :: acc) rest
        | Some id ->
          Error
            (Error.Config_error
               {
                 what = "ingest snapshot";
                 message = Printf.sprintf "bad or duplicate document id %S in corpus" id;
               })
        | None ->
          Error
            (Error.Config_error
               { what = "ingest snapshot"; message = "corpus entry without an id attribute" }))
    in
    match collect [] kids with
    | Error e -> Error e
    | Ok ids -> Ok { env; ids }
  end

(* Incremental append: extend document, index and statistics in place
   of a rebuild.  Each extension is value-identical to a fresh build
   over the widened corpus (see the respective modules), so this is
   pure speed, not approximation. *)
let append_new corpus ~id tree =
  let env = corpus.env in
  let first_new = Doc.size env.Env.doc in
  let doc = Doc.append_trees env.Env.doc [ wrap id tree ] in
  let index = Index.extend env.Env.index doc ~first_new in
  let stats = Stats.extend env.Env.stats doc ~first_new in
  let env =
    Env.of_parts ~weights:env.Env.weights ~doc ~index ~stats ~hierarchy:env.Env.hierarchy ()
  in
  { env; ids = corpus.ids @ [ id ] }

(* Rebuild from a document list, inheriting tuning from the old env. *)
let rebuild_as corpus docs_list =
  of_docs ~weights:corpus.env.Env.weights ~hierarchy:corpus.env.Env.hierarchy
    ~scorer:(Index.scorer corpus.env.Env.index)
    docs_list

let add corpus ~id tree =
  match check_id id with
  | Error e -> Error e
  | Ok id ->
    if mem corpus id then
      (* Upsert: the replaced document moves to the end, as if deleted
         and re-ingested — replay of a WAL [Add] is therefore
         idempotent and order-preserving. *)
      rebuild_as corpus (List.filter (fun (i, _) -> i <> id) (docs corpus) @ [ (id, tree) ])
    else Ok (append_new corpus ~id tree)

let remove corpus ~id =
  if not (mem corpus id) then
    Error (Error.Config_error { what = "document id"; message = Printf.sprintf "no document %S" id })
  else rebuild_as corpus (List.filter (fun (i, _) -> i <> id) (docs corpus))

(* ------------------------------------------------------------------ *)
(* WAL-backed store. *)

type store = {
  mutable corpus : corpus;
  wal : Wal.t;
  snapshot : string;
  limits : limits;
  mutable unmerged : int;  (* acked records not yet folded into the snapshot *)
  mutable oldest_unmerged_ms : float option;  (* Monotime.now_ms of the oldest *)
  replayed : int;  (* WAL records replayed when this store was opened *)
  probation_ms : float;
  mutable readonly_since_ms : float option;
      (* [Some t]: a WAL append/fsync or snapshot write returned a disk
         error ([Error.Io_error]) at [t] and the store refuses writes
         until the probation interval passes; the first write attempted
         after that is the re-probe — success clears the flag, another
         disk error re-arms it. *)
}

let apply_record corpus r =
  match r with
  | Wal.Add { id; xml } -> (
    match Xmldom.Xml_parser.parse xml with
    | Error e -> Error (xml_error e)
    | Ok (Xml.Text _) ->
      Error (Error.Config_error { what = "WAL record"; message = "text node as document root" })
    | Ok tree -> add corpus ~id tree)
  | Wal.Delete { id } -> if mem corpus id then remove corpus ~id else Ok corpus

(* Smallest auto id suffix past every existing [doc-N] id — computed
   from the corpus itself so a restart assigns the same ids a
   continuous run would. *)
let next_auto_of ids =
  List.fold_left
    (fun acc id ->
      match
        if String.length id > 4 && String.sub id 0 4 = "doc-" then
          int_of_string_opt (String.sub id 4 (String.length id - 4))
        else None
      with
      | Some n when n >= acc -> n + 1
      | _ -> acc)
    0 ids

let default_probation_ms = 2_000.0

let open_store ?weights ?hierarchy ?scorer ?(limits = default_limits)
    ?(probation_ms = default_probation_ms) ~snapshot ~wal:wal_path () =
  let base =
    if Sys.file_exists snapshot then
      match Storage.load ?weights snapshot with
      | Error e -> Error e
      | Ok (env, _outcome) -> of_env env
    else empty ?weights ?hierarchy ?scorer ()
  in
  match base with
  | Error e -> Error e
  | Ok corpus0 -> (
    match Wal.open_ wal_path with
    | Error e -> Error e
    | Ok (wal, replay) -> (
      let rec replay_all corpus = function
        | [] -> Ok corpus
        | r :: rest -> (
          match apply_record corpus r with
          | Ok corpus -> replay_all corpus rest
          | Error e -> Error e)
      in
      match replay_all corpus0 replay.Wal.records with
      | Error e ->
        Wal.close wal;
        Error e
      | Ok corpus ->
        let replayed = List.length replay.Wal.records in
        Ok
          {
            corpus;
            wal;
            snapshot;
            limits;
            unmerged = replayed;
            oldest_unmerged_ms = (if replayed = 0 then None else Some (Monotime.now_ms ()));
            replayed;
            probation_ms;
            readonly_since_ms = None;
          }))

let store_env st = st.corpus.env
let store_ids st = st.corpus.ids
let doc_count st = List.length st.corpus.ids
let unmerged_records st = st.unmerged
let replayed_records st = st.replayed
let wal_bytes st = Wal.bytes st.wal
let limits st = st.limits

let staleness_ms st =
  match st.oldest_unmerged_ms with None -> 0.0 | Some t -> Float.max 0.0 (Monotime.now_ms () -. t)

let record_acked st =
  st.unmerged <- st.unmerged + 1;
  if st.oldest_unmerged_ms = None then st.oldest_unmerged_ms <- Some (Monotime.now_ms ())

(* ------------------------------------------------------------------ *)
(* Read-only degrade.

   A disk that returns ENOSPC/EIO on the durability path (WAL append,
   fsync, snapshot rename) cannot be trusted to honor an ack, so the
   store stops accepting writes *explicitly* — [Error.Readonly] with a
   retry hint — rather than crashing or acking non-durably.  Reads are
   unaffected: the in-memory corpus is still exactly the acked set.
   The flag is time-scoped: once [probation_ms] has passed, the next
   write attempt goes through and acts as the re-probe — success
   clears the degrade, another [Io_error] refreshes it.  Only
   [Io_error] (a syscall that actually failed) arms the flag;
   [Error.Fault] stays transient by contract (the PR-6 suite asserts
   writes succeed immediately after an injected fault). *)

let readonly st = st.readonly_since_ms <> None
let probation_ms st = st.probation_ms

let readonly_retry_after_ms st =
  match st.readonly_since_ms with
  | None -> 0
  | Some t ->
    int_of_float (Float.max 1.0 (st.probation_ms -. (Monotime.now_ms () -. t)))

(* [Ok ()] when writes may proceed (healthy, or probation expired and
   this write is the re-probe); [Error Readonly] inside probation. *)
let readonly_gate st =
  match st.readonly_since_ms with
  | None -> Ok ()
  | Some t ->
    let age = Monotime.now_ms () -. t in
    if age >= st.probation_ms then Ok ()
    else
      Error
        (Error.Readonly
           {
             path = st.snapshot;
             retry_after_ms = int_of_float (Float.max 1.0 (st.probation_ms -. age));
           })

(* Classify a durability-path result: a disk error arms (or refreshes)
   the read-only flag, success clears it. *)
let note_disk st = function
  | Error (Error.Io_error _) as e ->
    st.readonly_since_ms <- Some (Monotime.now_ms ());
    e
  | Ok _ as ok ->
    st.readonly_since_ms <- None;
    ok
  | other -> other

(* Apply first (building the successor corpus; the served one is
   untouched), then log, then commit and ack — an error anywhere
   leaves both the store and the log describing exactly the acked
   prefix. *)
let ingest st ?id xml =
  match readonly_gate st with
  | Error e -> Error e
  | Ok () -> (
    match parse_doc ~limits:st.limits xml with
    | Error e -> Error e
    | Ok tree -> (
      let id =
        match id with
        | Some id -> check_id id
        | None -> Ok (Printf.sprintf "doc-%d" (next_auto_of st.corpus.ids))
      in
      match id with
      | Error e -> Error e
      | Ok id -> (
        match add st.corpus ~id tree with
        | Error e -> Error e
        | exception Failpoint.Injected p -> Error (Error.Fault p)
        | Ok corpus -> (
          match note_disk st (Wal.append st.wal (Wal.Add { id; xml })) with
          | Error e -> Error e
          | Ok () ->
            st.corpus <- corpus;
            record_acked st;
            Ok id))))

let delete st ~id =
  match readonly_gate st with
  | Error e -> Error e
  | Ok () -> (
    match
      if not (mem st.corpus id) then
        Error
          (Error.Config_error { what = "document id"; message = Printf.sprintf "no document %S" id })
      else remove st.corpus ~id
    with
    | Error e -> Error e
    | Ok corpus -> (
      match note_disk st (Wal.append st.wal (Wal.Delete { id })) with
      | Error e -> Error e
      | Ok () ->
        st.corpus <- corpus;
        record_acked st;
        Ok ()))

(* Replication: apply one already-acked WAL record shipped from a
   primary.  Same apply-then-log-then-commit order as [ingest]/[delete]
   — the follower's own WAL and fsync give it independent durability —
   but no parse budget (the primary already enforced it) and deletes of
   unknown ids are no-ops (replay semantics, not user requests), so a
   follower converges to the primary's acked set no matter where its
   own recovery left off. *)
let apply_shipped st r =
  match readonly_gate st with
  | Error e -> Error e
  | Ok () -> (
    match apply_record st.corpus r with
    | Error e -> Error e
    | exception Failpoint.Injected p -> Error (Error.Fault p)
    | Ok corpus -> (
      match note_disk st (Wal.append st.wal r) with
      | Error e -> Error e
      | Ok () ->
        st.corpus <- corpus;
        record_acked st;
        Ok ()))

(* Durable compaction: snapshot the whole corpus atomically, then — and
   only then — truncate the log.  The [merge_publish] failpoint sits in
   the window where both the snapshot and the log describe the acked
   corpus; a crash there replays the full log over the new snapshot,
   which the upsert semantics of [apply_record] make a no-op.  The
   injected exception escapes deliberately (it simulates the merge
   domain dying mid-publish; the server's supervisor handles it). *)
let merge st =
  if st.unmerged = 0 && Sys.file_exists st.snapshot then Ok ()
  else begin
    match readonly_gate st with
    | Error e -> Error e
    | Ok () -> (
      match note_disk st (Storage.save st.corpus.env st.snapshot) with
      | Error e -> Error e
      | Ok () ->
        Failpoint.hit "merge_publish";
        (match note_disk st (Wal.truncate st.wal) with
        | Error e -> Error e
        | Ok () ->
          st.unmerged <- 0;
          st.oldest_unmerged_ms <- None;
          Ok ()))
  end

let close st = Wal.close st.wal
