type corruption =
  | Bad_magic
  | Version_skew of { found : int; newest : int }
  | Truncated of { at : string }
  | Checksum_mismatch of { section : string }
  | Trailing_garbage of { bytes : int }
  | Malformed_section of { section : string; message : string }

type t =
  | Xml_error of { path : string option; line : int; column : int; message : string }
  | Query_error of { offset : int; message : string }
  | Capacity of { what : string; limit : int; actual : int }
  | Io_error of { path : string; message : string }
  | Config_error of { what : string; message : string }
  | Snapshot_error of { path : string; corruption : corruption }
  | Fault of string
  | Readonly of { path : string; retry_after_ms : int }

let corruption_to_string = function
  | Bad_magic -> "not a FleXPath snapshot (bad magic)"
  | Version_skew { found; newest } ->
    Printf.sprintf "snapshot format version %d not supported (newest known: %d)" found newest
  | Truncated { at } -> Printf.sprintf "truncated snapshot (%s cut short)" at
  | Checksum_mismatch { section } -> Printf.sprintf "checksum mismatch in %s" section
  | Trailing_garbage { bytes } ->
    Printf.sprintf "%d byte%s of trailing garbage after the snapshot footer" bytes
      (if bytes = 1 then "" else "s")
  | Malformed_section { section; message } ->
    Printf.sprintf "malformed %s section: %s" section message

let to_string = function
  | Xml_error { path = Some p; line; column; message } ->
    Printf.sprintf "%s: line %d, column %d: %s" p line column message
  | Xml_error { path = None; line; column; message } ->
    Printf.sprintf "line %d, column %d: %s" line column message
  | Query_error { offset; message } -> Printf.sprintf "at offset %d: %s" offset message
  | Capacity { what; limit; actual } ->
    Printf.sprintf "capacity exceeded: %s (%d > limit %d)" what actual limit
  | Io_error { path = ""; message } -> message
  | Io_error { path; message } -> Printf.sprintf "%s: %s" path message
  | Config_error { what; message } -> Printf.sprintf "bad %s: %s" what message
  | Snapshot_error { path; corruption } ->
    Printf.sprintf "%s: %s" path (corruption_to_string corruption)
  | Fault point -> Printf.sprintf "injected fault at %s" point
  | Readonly { path; retry_after_ms } ->
    Printf.sprintf "%s: store is read-only after a disk fault (retry in %d ms)" path retry_after_ms

let pp fmt e = Format.pp_print_string fmt (to_string e)

let exit_code = function
  | Xml_error _ | Query_error _ -> 2
  | Snapshot_error _ -> 4
  | Readonly _ -> 7
  | Capacity _ | Io_error _ | Config_error _ | Fault _ -> 1
