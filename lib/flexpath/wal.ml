(* Write-ahead log for live ingestion.

   An append-only file of CRC-guarded records, one per acknowledged
   write.  The byte layout (DESIGN.md §4h) keeps every record
   independently verifiable:

     file   := magic record*
     magic  := "FXWAL001"                      (8 bytes)
     record := len:u32le kind:u8 payload CRC:u32le
     kind 1 := add     payload = id_len:u16le id xml
     kind 2 := delete  payload = id

   [len] counts the payload bytes; the CRC covers len, kind and
   payload, so truncation, a torn tail and bit rot are all caught
   before a payload is interpreted.  Replay scans from the start and
   stops at the first record that is short, oversized, checksum-bad or
   malformed: everything before that point was written by a completed
   [append] (records are written with a single [write] and fsynced
   before the caller acknowledges), everything after it is at most one
   torn record from a crash mid-append, which by the ack contract was
   never acknowledged and is safe to drop. *)

type record = Add of { id : string; xml : string } | Delete of { id : string }

type replay = { records : record list; valid_bytes : int; dropped_bytes : int }

type t = {
  path : string;
  fd : Unix.file_descr;
  mutable size : int;
  (* Set when an append failed after bytes may have reached the file
     and the rollback truncation also failed: the tail is no longer
     trusted, so further appends must not be acknowledged. *)
  mutable broken : bool;
}

let magic = "FXWAL001"
let max_payload = 1 lsl 30

let put_u32 b v =
  Buffer.add_char b (Char.chr (v land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xFF))

let put_u16 b v =
  Buffer.add_char b (Char.chr (v land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xFF))

let get_u32 s pos =
  Char.code s.[pos]
  lor (Char.code s.[pos + 1] lsl 8)
  lor (Char.code s.[pos + 2] lsl 16)
  lor (Char.code s.[pos + 3] lsl 24)

let get_u16 s pos = Char.code s.[pos] lor (Char.code s.[pos + 1] lsl 8)

let encode r =
  let payload = Buffer.create 256 in
  let kind =
    match r with
    | Add { id; xml } ->
      put_u16 payload (String.length id);
      Buffer.add_string payload id;
      Buffer.add_string payload xml;
      1
    | Delete { id } ->
      Buffer.add_string payload id;
      2
  in
  let payload = Buffer.contents payload in
  let b = Buffer.create (String.length payload + 16) in
  put_u32 b (String.length payload);
  Buffer.add_char b (Char.chr kind);
  Buffer.add_string b payload;
  let body = Buffer.contents b in
  put_u32 b (Crc32.string body);
  Buffer.contents b

let decode_payload kind payload =
  match kind with
  | 1 ->
    if String.length payload < 2 then None
    else begin
      let id_len = get_u16 payload 0 in
      if 2 + id_len > String.length payload then None
      else
        Some
          (Add
             {
               id = String.sub payload 2 id_len;
               xml = String.sub payload (2 + id_len) (String.length payload - 2 - id_len);
             })
    end
  | 2 -> Some (Delete { id = payload })
  | _ -> None

(* Scan the record region of [s] (which must start with the magic).
   Returns the records of the longest valid prefix. *)
let scan s =
  let len = String.length s in
  let records = ref [] in
  let pos = ref (String.length magic) in
  let stop = ref false in
  while not !stop do
    if !pos + 4 + 1 + 4 > len then stop := true
    else begin
      let p_len = get_u32 s !pos in
      if p_len < 0 || p_len > max_payload || !pos + 4 + 1 + p_len + 4 > len then stop := true
      else begin
        let crc = get_u32 s (!pos + 4 + 1 + p_len) in
        if Crc32.string ~pos:!pos ~len:(4 + 1 + p_len) s <> crc then stop := true
        else begin
          match decode_payload (Char.code s.[!pos + 4]) (String.sub s (!pos + 5) p_len) with
          | None -> stop := true
          | Some r ->
            records := r :: !records;
            pos := !pos + 4 + 1 + p_len + 4
        end
      end
    end
  done;
  { records = List.rev !records; valid_bytes = !pos; dropped_bytes = len - !pos }

let decode s =
  let len = String.length s in
  let m = String.length magic in
  if len < m then
    if String.equal s (String.sub magic 0 len) then
      (* Torn header: a crash during log creation, before any record
         could have been acknowledged. *)
      Ok { records = []; valid_bytes = 0; dropped_bytes = len }
    else Error Error.Bad_magic
  else if not (String.equal (String.sub s 0 m) magic) then Error Error.Bad_magic
  else Ok (scan s)

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> Ok s
  | exception Sys_error message -> Error (Error.Io_error { path; message })

let io path fn e =
  Error (Error.Io_error { path; message = Printf.sprintf "%s: %s" fn (Unix.error_message e) })

let write_all fd s =
  let len = String.length s in
  let b = Bytes.unsafe_of_string s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd b !off (len - !off)
  done

let open_ path =
  let contents = if Sys.file_exists path then read_file path else Ok "" in
  match contents with
  | Error e -> Error e
  | Ok s -> (
    let replay =
      match decode s with
      | Ok r -> Ok r
      | Error c -> Error (Error.Snapshot_error { path; corruption = c })
    in
    match replay with
    | Error e -> Error e
    | Ok replay -> (
      match Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 with
      | exception Unix.Unix_error (e, fn, _) -> io path fn e
      | fd -> (
        try
          if replay.valid_bytes = 0 then begin
            (* Fresh or torn-header log: (re)initialize. *)
            Unix.ftruncate fd 0;
            write_all fd magic;
            Unix.fsync fd
          end
          else if replay.dropped_bytes > 0 then begin
            (* Drop the torn tail in place so the next append starts at
               a record boundary. *)
            Unix.ftruncate fd replay.valid_bytes;
            ignore (Unix.lseek fd replay.valid_bytes Unix.SEEK_SET);
            Unix.fsync fd
          end
          else ignore (Unix.lseek fd 0 Unix.SEEK_END);
          let size = max replay.valid_bytes (String.length magic) in
          Ok ({ path; fd; size; broken = false }, replay)
        with Unix.Unix_error (e, fn, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          io path fn e)))

let bytes t = t.size
let path t = t.path

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

(* Undo a partially durable append so an error return implies the
   record is absent from the log — without this, a failed fsync would
   leave an unacknowledged record that a later restart replays. *)
let rollback t old_size =
  try
    Unix.ftruncate t.fd old_size;
    ignore (Unix.lseek t.fd old_size Unix.SEEK_SET);
    t.size <- old_size
  with Unix.Unix_error _ -> t.broken <- true

let append t r =
  if t.broken then
    Error (Error.Io_error { path = t.path; message = "WAL handle poisoned by earlier failure" })
  else begin
    let old_size = t.size in
    let bytes = encode r in
    match
      Failpoint.hit "wal_append";
      write_all t.fd bytes;
      Failpoint.hit "wal_fsync";
      Unix.fsync t.fd
    with
    | () ->
      t.size <- old_size + String.length bytes;
      Ok ()
    | exception Failpoint.Injected p ->
      rollback t old_size;
      Error (Error.Fault p)
    | exception Unix.Unix_error (e, fn, _) ->
      rollback t old_size;
      io t.path fn e
  end

let truncate t =
  try
    Unix.ftruncate t.fd (String.length magic);
    ignore (Unix.lseek t.fd (String.length magic) Unix.SEEK_SET);
    Unix.fsync t.fd;
    t.size <- String.length magic;
    t.broken <- false;
    Ok ()
  with Unix.Unix_error (e, fn, _) -> io t.path fn e
