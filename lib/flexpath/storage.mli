(** Crash-safe saving and loading of indexed environments.

    Building the index and statistics is a full pass over the document;
    for repeated querying of the same collection, [save] persists the
    arena document, inverted index, statistics and type hierarchy so
    [load] restores them without re-parsing or re-indexing.

    The on-disk format (v2) is sectioned and checksummed: a header with
    a CRC-protected table of contents, one independent length-prefixed
    CRC-32-guarded section per component, and a checksummed footer (the
    byte layout is in DESIGN.md §4d).  Every checksum is verified
    {e before} any byte reaches [Marshal], so corrupted or adversarial
    snapshots yield typed {!Error.t} values instead of undefined
    unmarshaling behaviour.  [save] writes atomically (temp file +
    fsync + rename): a crash at any point leaves a pre-existing
    snapshot byte-identical.

    Damage confined to the {e derived} sections — index, statistics,
    hierarchy — is repaired: [load] rebuilds them from the intact
    document section and reports {!Recovered}.  A rebuilt hierarchy
    falls back to empty (it is user input, not derivable from the
    document); re-index to restore it.  Format-v1 files (a bare
    Marshal payload) are still read, reported as {!Migrated} — re-save
    to upgrade; v1 is deprecated and has no integrity protection.

    Predicate weights are functions and cannot be persisted; supply
    them again at load time (default uniform).

    The [storage_write]/[storage_fsync]/[storage_rename]/
    [storage_read_section] failpoints make every failure mode of these
    paths deterministically testable (see {!Failpoint}). *)

type outcome =
  | Intact  (** Every checksum verified; nothing was rebuilt. *)
  | Recovered of { rebuilt : string list }
      (** Corruption was found but confined to recoverable parts; the
          named derived sections (["index"], ["statistics"],
          ["hierarchy"]) were rebuilt from the document section.  An
          empty list means only the footer was damaged. *)
  | Migrated of { version : int }
      (** The file uses a deprecated older format that this build still
          reads; re-save to upgrade. *)

val outcome_to_string : outcome -> string

val save : Env.t -> string -> (unit, Error.t) result
(** [save env path] writes a v2 snapshot atomically: serialize in
    memory, write [path.tmp.<pid>], fsync, rename over [path], fsync
    the directory.  On any failure — I/O error, unmarshalable value,
    injected fault — the temp file is removed and an existing [path] is
    untouched.  Never raises (out-of-memory and other asynchronous
    exceptions excepted, and even those leave no debris). *)

val load : ?weights:Relax.Penalty.weights -> string -> (Env.t * outcome, Error.t) result
(** [load path] verifies the whole container before deserializing
    anything.  Typed failures: [Io_error] (unreadable file) and
    [Snapshot_error] with a {!Error.corruption} classifying bad magic,
    version skew, truncation, checksum mismatches and trailing
    garbage.  Damage limited to derived sections degrades to a rebuild
    ({!Recovered}), not an error.  Never raises on any file content. *)

val load_env : ?weights:Relax.Penalty.weights -> string -> (Env.t, Error.t) result
(** {!load} without the outcome, for callers that do not report
    recovery. *)

(** {2 Verification} *)

type section_report = { name : string; offset : int; bytes : int; ok : bool }

type report = {
  version : int;
  sections : section_report list;
  footer_ok : bool;
  intact : bool;  (** every checksum verifies *)
  recoverable : bool;  (** the document section is intact, so {!load} would succeed *)
}

val verify : string -> (report, Error.t) result
(** Integrity check without deserializing (and without the memory cost
    of materializing the environment): parses the container, recomputes
    every CRC and reports per-section status.  Structural damage that
    leaves nothing to report (bad magic, version skew, header damage,
    trailing garbage) comes back as [Error], like {!load}.  For v1
    files the only possible check — does the payload deserialize — is
    performed instead. *)

val pp_report : Format.formatter -> report -> unit

(** {2 Format constants and legacy} *)

val magic : string
(** First 12 bytes of every snapshot, any version: ["FLEXPATH-ENV"].
    The byte after it is the format version. *)

val format_version : int
(** The version [save] writes: 2. *)

val save_v1 : Env.t -> string -> (unit, Error.t) result
(** Writes the deprecated v1 format (bare Marshal, no checksums, no
    atomicity).  Kept only so migration and corruption tests can
    fabricate legacy files; do not use in new code. *)
