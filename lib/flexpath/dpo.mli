(** DPO — Dynamic Penalty Order (§5.1.1).

    Evaluates the relaxation chain one query at a time, in increasing
    penalty order, re-running a full evaluation pass per step, and stops
    as soon as the collected top-K can no longer change.  Its strength
    is exact knowledge (no estimates, no wasted relaxations); its
    weakness is the repeated passes over the data, which the experiments
    of §6 measure against SSO and Hybrid.

    DPO is the engine's {e anytime} algorithm: pass boundaries are
    natural budget checkpoints, so under a {!Guard} it returns the
    best-effort top-K of the passes that completed, marked
    [Truncated].  SSO/Hybrid degrade to it when their restart cap is
    exhausted. *)

val run :
  ?max_steps:int ->
  ?guard:Guard.t ->
  ?metrics:Joins.Exec.metrics ->
  ?plan:Common.plan ->
  ?floor:(unit -> float) ->
  ?executor:Joins.Exec.executor ->
  Env.t ->
  scheme:Ranking.scheme ->
  k:int ->
  Tpq.Query.t ->
  Common.result
(** [guard] governs the whole run (default {!Guard.none}); [metrics]
    lets a caller that already accumulated executor metrics (the
    SSO/Hybrid fallback path) keep one running total; [plan] reuses a
    previously built {!Common.plan} for an isomorphic query (the cached
    path) instead of rebuilding chain and penalties, in which case
    [max_steps] is ignored.  [floor], consulted at each pass boundary,
    is an external lower bound on the k-th total score (the
    scatter-gather merge passes the global top-K floor): the chain walk
    stops as soon as [max(local kth, floor ())] meets [unseen_bound],
    which is sound because both are lower bounds on the true global
    k-th score.  [executor] selects the physical operator per pass
    (default [Auto]: holistic twig operator on conjunctive chain
    entries, binary pipeline otherwise); results are byte-identical
    across executors. *)
