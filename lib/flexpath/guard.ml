type budget = {
  deadline_ms : float option;
  tuple_budget : int option;
  step_budget : int option;
  restart_cap : int option;
}

let unlimited = { deadline_ms = None; tuple_budget = None; step_budget = None; restart_cap = None }

let budget ?deadline_ms ?tuple_budget ?step_budget ?restart_cap () =
  { deadline_ms; tuple_budget; step_budget; restart_cap }

type reason = Deadline | Tuples | Steps

let reason_to_string = function
  | Deadline -> "deadline"
  | Tuples -> "tuple budget"
  | Steps -> "step budget"

type t = {
  budget : budget;
  clock : Monotime.t;
  mutable tuples : int;
  mutable trip : reason option;
}

(* [none]'s clock is never consulted: every deadline check tests
   [budget.deadline_ms = None] first, so the shared unlimited guard
   stays immutable and safe to use from any domain. *)
let none = { budget = unlimited; clock = Monotime.create (); tuples = 0; trip = None }
let start budget = { budget; clock = Monotime.create (); tuples = 0; trip = None }
let tripped g = g.trip
let tuples_consumed g = g.tuples
let poll_interval = 4096

let past_deadline g =
  match g.budget.deadline_ms with
  | None -> false
  | Some ms -> Monotime.elapsed_ms g.clock >= ms

let over_tuples g =
  match g.budget.tuple_budget with None -> false | Some b -> g.tuples >= b

let record g r =
  (match g.trip with None -> g.trip <- Some r | Some _ -> ());
  true

let cancel_fn g =
  match (g.budget.deadline_ms, g.budget.tuple_budget) with
  | None, None -> None
  | _ ->
    Some
      (fun produced ->
        g.tuples <- g.tuples + produced;
        match g.trip with
        | Some _ -> true
        | None ->
          if over_tuples g then record g Tuples
          else if past_deadline g then record g Deadline
          else false)

let pass_allowed g ~passes =
  match g.trip with
  | Some r -> Some r
  | None ->
    let blocked r = ignore (record g r) in
    (match g.budget.step_budget with
    | Some b when passes >= b -> blocked Steps
    | _ ->
      if over_tuples g then blocked Tuples else if past_deadline g then blocked Deadline);
    g.trip

let restart_exhausted g ~restarts =
  match g.budget.restart_cap with None -> false | Some cap -> restarts >= cap
