exception Injected of string

let catalog =
  [
    "exec.compile";
    "exec.run";
    "exec.stage";
    "index.build";
    "env.make";
    "chain.build";
    "storage_write";
    "storage_fsync";
    "storage_rename";
    "storage_read_section";
    "wal_append";
    "wal_fsync";
    "merge_publish";
    "server_accept";
    "server_read";
    "server_worker";
    "worker_wedge";
    "worker_die";
    "client_send";
    "shard_probe";
  ]

(* Remaining hit count per armed point; [-1] is unlimited.  The mutex
   makes arming and triggering safe from any domain (the server's
   worker pool and its supervisor both pass through here). *)
let armed : (string, int) Hashtbl.t = Hashtbl.create 8
let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let arm name count =
  if List.mem name catalog then begin
    with_lock (fun () -> Hashtbl.replace armed name count);
    Ok ()
  end
  else Error (Printf.sprintf "unknown failpoint %S (known: %s)" name (String.concat ", " catalog))

let activate name = arm name (-1)

let activate_n name n =
  if n < 1 then Error (Printf.sprintf "failpoint %s: hit count must be at least 1" name)
  else arm name n

let deactivate name = with_lock (fun () -> Hashtbl.remove armed name)
let reset () = with_lock (fun () -> Hashtbl.reset armed)
let is_active name = with_lock (fun () -> Hashtbl.mem armed name)
let active () = List.filter is_active catalog

let hit name =
  let fire =
    with_lock (fun () ->
        match Hashtbl.find_opt armed name with
        | None -> false
        | Some n ->
          if n = 1 then Hashtbl.remove armed name
          else if n > 1 then Hashtbl.replace armed name (n - 1);
          true)
  in
  if fire then raise (Injected name)

(* One spec item: [name] arms unlimited, [name:N] arms N hits,
   [name:once] is [name:1]. *)
let activate_spec item =
  match String.index_opt item ':' with
  | None -> activate item
  | Some i -> (
    let name = String.sub item 0 i in
    let count = String.sub item (i + 1) (String.length item - i - 1) in
    match (count, int_of_string_opt count) with
    | "once", _ -> activate_n name 1
    | _, Some n -> activate_n name n
    | _, None ->
      Error (Printf.sprintf "failpoint %s: bad hit count %S (expected an integer or 'once')" name count))

let installed = ref false

let install () =
  if not !installed then begin
    installed := true;
    Joins.Exec.failpoint := hit;
    Fulltext.Index.failpoint := hit;
    match Sys.getenv_opt "FLEXPATH_FAILPOINTS" with
    | None | Some "" -> ()
    | Some spec ->
      String.split_on_char ',' spec
      |> List.iter (fun item ->
             let item = String.trim item in
             if item <> "" then
               match activate_spec item with
               | Ok () -> ()
               | Error msg -> Printf.eprintf "warning: FLEXPATH_FAILPOINTS: %s\n%!" msg)
  end
