exception Injected of string

let catalog =
  [
    "exec.compile";
    "exec.run";
    "exec.stage";
    "index.build";
    "env.make";
    "chain.build";
    "storage_write";
    "storage_fsync";
    "storage_rename";
    "storage_read_section";
    "server_accept";
    "server_read";
    "server_worker";
  ]

let armed : (string, unit) Hashtbl.t = Hashtbl.create 8

let activate name =
  if List.mem name catalog then begin
    Hashtbl.replace armed name ();
    Ok ()
  end
  else Error (Printf.sprintf "unknown failpoint %S (known: %s)" name (String.concat ", " catalog))

let deactivate name = Hashtbl.remove armed name
let reset () = Hashtbl.reset armed
let is_active name = Hashtbl.mem armed name
let active () = List.filter is_active catalog
let hit name = if is_active name then raise (Injected name)

let installed = ref false

let install () =
  if not !installed then begin
    installed := true;
    Joins.Exec.failpoint := hit;
    Fulltext.Index.failpoint := hit;
    match Sys.getenv_opt "FLEXPATH_FAILPOINTS" with
    | None | Some "" -> ()
    | Some spec ->
      String.split_on_char ',' spec
      |> List.iter (fun name ->
             let name = String.trim name in
             if name <> "" then
               match activate name with
               | Ok () -> ()
               | Error msg -> Printf.eprintf "warning: FLEXPATH_FAILPOINTS: %s\n%!" msg)
  end
