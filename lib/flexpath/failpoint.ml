exception Injected of string

let catalog =
  [
    "exec.compile";
    "exec.run";
    "exec.stage";
    "index.build";
    "env.make";
    "chain.build";
    "storage_write";
    "storage_fsync";
    "storage_rename";
    "storage_read_section";
    "wal_append";
    "wal_fsync";
    "merge_publish";
    "server_accept";
    "server_read";
    "server_worker";
    "worker_wedge";
    "worker_die";
    "client_send";
    "shard_probe";
    "replica_ship";
  ]

(* What an armed point raises when it fires.  [Inject] is the classic
   transient fault ({!Injected}, mapped to [Error.Fault] by the façade);
   [Errno e] simulates a disk fault — the point raises
   [Unix.Unix_error (e, name, "")], which flows through the same
   [Unix_error -> Error.Io_error] conversions real syscall failures
   take.  The distinction matters downstream: only [Io_error] (a disk
   that actually said no) trips the ingest store's read-only degrade. *)
type flavor = Inject | Errno of Unix.error

(* Remaining hit count per armed point ([-1] is unlimited) plus its
   flavor.  The mutex makes arming and triggering safe from any domain
   (the server's worker pool and its supervisor both pass through
   here). *)
let armed : (string, int * flavor) Hashtbl.t = Hashtbl.create 8
let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let arm ?(flavor = Inject) name count =
  if List.mem name catalog then begin
    with_lock (fun () -> Hashtbl.replace armed name (count, flavor));
    Ok ()
  end
  else Error (Printf.sprintf "unknown failpoint %S (known: %s)" name (String.concat ", " catalog))

let activate name = arm name (-1)

let activate_n ?flavor name n =
  if n < 1 then Error (Printf.sprintf "failpoint %s: hit count must be at least 1" name)
  else arm ?flavor name n

let activate_errno name errno n = activate_n ~flavor:(Errno errno) name n
let deactivate name = with_lock (fun () -> Hashtbl.remove armed name)
let reset () = with_lock (fun () -> Hashtbl.reset armed)
let is_active name = with_lock (fun () -> Hashtbl.mem armed name)
let active () = List.filter is_active catalog

let hit name =
  let fire =
    with_lock (fun () ->
        match Hashtbl.find_opt armed name with
        | None -> None
        | Some (n, flavor) ->
          if n = 1 then Hashtbl.remove armed name
          else if n > 1 then Hashtbl.replace armed name (n - 1, flavor);
          Some flavor)
  in
  match fire with
  | None -> ()
  | Some Inject -> raise (Injected name)
  | Some (Errno e) -> raise (Unix.Unix_error (e, name, ""))

let errno_of_string = function
  | "enospc" -> Some Unix.ENOSPC
  | "eio" -> Some Unix.EIO
  | _ -> None

(* One spec item: [name] arms unlimited, [name:N] arms N hits,
   [name:once] is [name:1].  A flavor keyword may precede the count:
   [name:enospc] / [name:eio] arm one errno-flavored hit,
   [name:enospc:N] arms N of them. *)
let activate_spec item =
  match String.split_on_char ':' item with
  | [ name ] -> activate name
  | [ name; "once" ] -> activate_n name 1
  | [ name; part ] -> (
    match (errno_of_string part, int_of_string_opt part) with
    | Some e, _ -> activate_errno name e 1
    | None, Some n -> activate_n name n
    | None, None ->
      Error
        (Printf.sprintf "failpoint %s: bad hit count %S (expected an integer, 'once', 'enospc' or 'eio')"
           name part))
  | [ name; part; count ] -> (
    match errno_of_string part with
    | None -> Error (Printf.sprintf "failpoint %s: unknown errno flavor %S (expected 'enospc' or 'eio')" name part)
    | Some e -> (
      match (count, int_of_string_opt count) with
      | "once", _ -> activate_errno name e 1
      | _, Some n -> activate_errno name e n
      | _, None ->
        Error (Printf.sprintf "failpoint %s: bad hit count %S (expected an integer or 'once')" name count)))
  | _ -> Error (Printf.sprintf "failpoint spec %S: too many ':' separators" item)

let installed = ref false

let install () =
  if not !installed then begin
    installed := true;
    Joins.Exec.failpoint := hit;
    Fulltext.Index.failpoint := hit;
    match Sys.getenv_opt "FLEXPATH_FAILPOINTS" with
    | None | Some "" -> ()
    | Some spec ->
      String.split_on_char ',' spec
      |> List.iter (fun item ->
             let item = String.trim item in
             if item <> "" then
               match activate_spec item with
               | Ok () -> ()
               | Error msg -> Printf.eprintf "warning: FLEXPATH_FAILPOINTS: %s\n%!" msg)
  end
