(** Write-ahead log for live ingestion.

    Each acknowledged write ([INGEST]/[DELETE]) is appended as one
    CRC-32-guarded record and fsynced {e before} the acknowledgment is
    sent, so the log always covers at least the acked document set;
    {!Ingest} replays it on startup and truncates it only after a
    durable snapshot merge.  The byte format (DESIGN.md §4h) is an
    8-byte magic ["FXWAL001"] followed by records
    [len:u32le kind:u8 payload crc:u32le], the CRC covering
    [len]+[kind]+[payload].

    Crash contract: replay stops at the first short, oversized,
    checksum-bad or malformed record.  A crash at {e any} byte of an
    in-flight append leaves a torn tail after a valid prefix; the torn
    record was never acknowledged, so dropping it (which {!open_} does
    in place) recovers exactly the acknowledged history.  [append]
    conversely guarantees that an error return means the record is
    {e not} in the log (a partially durable write is rolled back), so
    the set of records equals the set of acks — with one classic
    exception: a crash after fsync but before the ack reaches the
    client leaves a durable record the client never saw confirmed,
    which is why client retries must be idempotent (upsert by id).

    Handles are not thread-safe; the server serializes all writers. *)

type record =
  | Add of { id : string; xml : string }
      (** Upsert of document [id] with serialized content [xml]. *)
  | Delete of { id : string }

type replay = {
  records : record list;  (** The valid prefix, oldest first. *)
  valid_bytes : int;  (** Byte length of that prefix (0: torn header). *)
  dropped_bytes : int;  (** Torn/corrupt bytes past it, discarded. *)
}

type t

val magic : string

val open_ : string -> (t * replay, Error.t) result
(** Open (creating if absent) and scan the log.  A torn tail — or a
    torn magic from a crash during creation — is truncated away in
    place; a file that does not even begin with a prefix of the magic
    is someone else's data and comes back as [Snapshot_error]
    [Bad_magic] rather than being clobbered. *)

val append : t -> record -> (unit, Error.t) result
(** Encode, write, fsync.  Consults the [wal_append] failpoint before
    the write and [wal_fsync] before the fsync; on any failure the
    partial write is rolled back (truncated) so [Error] implies the
    record is absent.  If even the rollback fails the handle is
    poisoned and all further appends fail. *)

val truncate : t -> (unit, Error.t) result
(** Reset to the bare magic — called only after the merged snapshot
    rename is durable.  Un-poisons a handle whose rollback had
    failed. *)

val bytes : t -> int
(** Current log size in bytes (the [wal_bytes] STATS gauge). *)

val path : t -> string
val close : t -> unit

(** {2 Pure codec (exposed for the corruption test corpus)} *)

val encode : record -> string

val decode : string -> (replay, Error.corruption) result
(** Scan a full log image, magic included. *)
