(** Deterministic fault injection.

    A failpoint is a named place in the engine where a failure can be
    provoked on demand: the executor's plan compiler, its join loop, the
    index builder, environment construction, relaxation-chain building.
    Activating a point makes the next passage through it raise
    {!Injected}; the façade converts that into [Error.Fault], so every
    registered failure path is provable to return a typed error (the
    fault-injection test suite does exactly that).

    Points live below the façade in libraries that cannot depend on this
    module ({!Joins.Exec}, {!Fulltext.Index}); they expose a hook
    reference into which {!install} plants the registry's trigger.
    [install] runs automatically when the [Flexpath] library is
    initialized, and also activates every point named in the
    [FLEXPATH_FAILPOINTS] environment variable (comma-separated), which
    is how the CLI's failure paths are exercised end-to-end. *)

exception Injected of string
(** Raised when execution passes an activated failpoint. *)

val catalog : string list
(** Every registered point:
    ["exec.compile"; "exec.run"; "exec.stage"; "index.build";
     "env.make"; "chain.build"], plus the snapshot I/O points
    ["storage_write"; "storage_fsync"; "storage_rename";
     "storage_read_section"] that {!Storage} consults directly: the
    first three fire inside [save] (before the payload write, the
    fsync and the publishing rename respectively — each proves a crash
    at that stage leaves any pre-existing snapshot untouched), the
    last on every section read inside [load]/[verify].  The ingestion
    points ["wal_append"; "wal_fsync"] fire in {!Wal.append} before the
    record write and before its fsync (a crash at either point loses
    only the unacknowledged record), and ["merge_publish"] fires in
    {!Ingest.merge} between the durable snapshot rename and the WAL
    truncation — the window in which both the snapshot and the log
    describe the acked corpus, so replay must be (and is) idempotent.
    The server
    points ["server_accept"; "server_read"; "server_worker"] fire in
    the query server's accept loop, connection reader and request
    dispatcher respectively (see [Flexpath_server.Server]); the server
    converts each into its corresponding error path — rejected
    connection, dropped connection, [ERR]-framed response — instead of
    dying.  The supervision points ["worker_wedge"; "worker_die"]
    simulate the two worker-loss modes the server's supervisor must
    recover from — a worker that stops making progress mid-request,
    and one whose domain terminates on an uncaught exception — and
    ["client_send"] fails a {!Flexpath_server.Client} request send,
    exercising the retry path.  The sharding point ["shard_probe"]
    fires inside {!Corpus.query} at the start of each per-shard probe —
    counted arming loses exactly one {e replica} mid-query, which
    failover absorbs when the set holds another copy and the
    scatter-gather merge otherwise absorbs as a sound [PARTIAL] — and
    ["replica_ship"] fires before each WAL-shipping apply in
    {!Corpus.ingest}/[delete], marking the targeted follower
    out-of-sync while the ack stands on the surviving copies. *)

type flavor =
  | Inject  (** Raise {!Injected} — the classic transient fault. *)
  | Errno of Unix.error
      (** Raise [Unix.Unix_error (e, name, "")] — a simulated disk
          fault ([ENOSPC], [EIO]) that flows through the same
          [Unix_error] → [Error.Io_error] conversions a real syscall
          failure takes, and therefore trips the ingest store's
          read-only degrade where a plain injected fault (transient by
          contract) does not. *)

val activate : string -> (unit, string) result
(** Arms a point; fails on names outside {!catalog}. *)

val activate_n : ?flavor:flavor -> string -> int -> (unit, string) result
(** Arms a point for exactly [n] hits, after which it disarms itself.
    Counted arming is what makes the loss-injection points usable: a
    permanently armed [worker_wedge] would wedge every replacement
    worker too, whereas [activate_n "worker_wedge" 1] wedges exactly
    one request. *)

val activate_errno : string -> Unix.error -> int -> (unit, string) result
(** [activate_errno name e n] = [activate_n ~flavor:(Errno e) name n]:
    the next [n] passages through [name] raise
    [Unix.Unix_error (e, name, "")]. *)

val deactivate : string -> unit
val reset : unit -> unit  (** Disarms every point. *)

val is_active : string -> bool
val active : unit -> string list

val hit : string -> unit
(** The trigger: raises [Injected name] when [name] is active, returns
    otherwise.  Engine code calls this (directly or through an installed
    hook) at each registered point. *)

val install : unit -> unit
(** Plants {!hit} into the lower-layer hooks and arms the points named
    in [FLEXPATH_FAILPOINTS] (comma-separated; each item is [name] for
    unlimited hits, [name:N] for [N] hits, [name:once] for one, or the
    disk-fault flavors [name:enospc[:N]] / [name:eio[:N]] for errno
    injection).  Idempotent; runs at library initialization. *)
