(* A size-bounded LRU over two tiers of shape-keyed evaluation state:

   - the plan tier memoizes {!Common.plan} values (penalty environment,
     relaxation chain, lazily compiled join plans);
   - the answer tier memoizes complete {!Common.result} values.

   Both tiers share one byte budget and one recency list; keys are
   namespaced by a one-character prefix.  Sizes are deterministic
   estimates of the retained structures — never [Obj.reachable_words],
   which would charge a plan for the whole environment its penalty
   closures capture.  All operations take the cache's mutex, so one
   cache can serve every worker domain of a server. *)

type counters = { hits : int; misses : int; evictions : int; bytes : int; entries : int }

type ext = ..

type value = Plan of Common.plan | Answers of Common.result | Ext of ext

type node = {
  key : string;
  value : value;
  size : int;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  lock : Mutex.t;
  table : (string, node) Hashtbl.t;
  max_bytes : int;
  mutable head : node option;  (* most recently used *)
  mutable tail : node option;  (* least recently used *)
  mutable bytes : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let default_max_bytes = 64 * 1024 * 1024

let create ?(max_bytes = default_max_bytes) () =
  if max_bytes < 1 then invalid_arg "Qcache.create: max_bytes must be positive";
  {
    lock = Mutex.create ();
    table = Hashtbl.create 256;
    max_bytes;
    head = None;
    tail = None;
    bytes = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let max_bytes t = t.max_bytes

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* ------------------------------------------------------------------ *)
(* Intrusive recency list *)

let unlink t n =
  (match n.prev with None -> t.head <- n.next | Some p -> p.next <- n.next);
  (match n.next with None -> t.tail <- n.prev | Some s -> s.prev <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  (match t.head with None -> t.tail <- Some n | Some h -> h.prev <- Some n);
  t.head <- Some n

let drop t n =
  unlink t n;
  Hashtbl.remove t.table n.key;
  t.bytes <- t.bytes - n.size

let rec evict_to_fit t =
  if t.bytes > t.max_bytes then
    match t.tail with
    | None -> ()
    | Some n ->
      drop t n;
      t.evictions <- t.evictions + 1;
      evict_to_fit t

(* ------------------------------------------------------------------ *)
(* Size estimation: deterministic, in bytes, counting only what the
   cache itself keeps alive beyond the shared environment. *)

let query_cost q = 64 + (48 * List.length (Tpq.Query.vars q))

let entry_cost (e : Relax.Space.entry) =
  (* entry record + its query + its operator list + the join plan that
     will be compiled for it (one var_spec per variable), charged up
     front so lazy compilation cannot overrun the budget *)
  96 + query_cost e.Relax.Space.query + (32 * List.length e.Relax.Space.ops)
  + (112 * List.length (Tpq.Query.vars e.Relax.Space.query))

let plan_cost key (p : Common.plan) =
  String.length key + 256 + query_cost p.Common.pquery
  + Array.fold_left (fun acc e -> acc + entry_cost e) 0 p.Common.chain

let answers_cost key (r : Common.result) =
  String.length key + 192 + (64 * List.length r.Common.answers)

(* ------------------------------------------------------------------ *)
(* Lookup / insert *)

let find t key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table key with
      | None ->
        t.misses <- t.misses + 1;
        None
      | Some n ->
        t.hits <- t.hits + 1;
        unlink t n;
        push_front t n;
        Some n.value)

let store t key value size =
  with_lock t (fun () ->
      (match Hashtbl.find_opt t.table key with Some old -> drop t old | None -> ());
      (* An entry that alone exceeds the budget would evict everything
         and still not fit: refuse it rather than thrash. *)
      if size <= t.max_bytes then begin
        let n = { key; value; size; prev = None; next = None } in
        Hashtbl.replace t.table key n;
        push_front t n;
        t.bytes <- t.bytes + size;
        evict_to_fit t
      end)

let plan_ns key = "P:" ^ key
let answer_ns key = "A:" ^ key
let ext_ns key = "X:" ^ key

let find_plan t key =
  match find t (plan_ns key) with Some (Plan p) -> Some p | Some _ | None -> None

let store_plan t key p =
  let key = plan_ns key in
  store t key (Plan p) (plan_cost key p)

let cacheable (r : Common.result) =
  (match r.Common.completeness with Common.Complete -> true | Common.Truncated _ -> false)
  && not r.Common.degraded

let find_answer t key =
  match find t (answer_ns key) with Some (Answers r) -> Some r | Some _ | None -> None

let store_answer t key r =
  if cacheable r then begin
    let key = answer_ns key in
    store t key (Answers r) (answers_cost key r)
  end

(* The extension tier lets layers above (the sharded corpus) cache
   their own result types in the same byte budget and recency list;
   they bring their own deterministic size estimate. *)
let find_ext t key =
  match find t (ext_ns key) with Some (Ext e) -> Some e | Some _ | None -> None

let store_ext t key e ~size =
  let key = ext_ns key in
  store t key (Ext e) (String.length key + size)

let counters t =
  with_lock t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        bytes = t.bytes;
        entries = Hashtbl.length t.table;
      })
