(** Hybrid (§5.2.3, Algorithm 2).

    Same single-plan evaluation as SSO, but intermediate results are
    kept in buckets keyed by the set of satisfied predicates: all
    answers in a bucket share a score, buckets are ordered by score, and
    tuples inside a bucket stay in node-id order — so no re-sorting on
    score ever happens, while threshold / maxScoreGrowth pruning still
    applies per bucket. *)

val run :
  ?max_steps:int ->
  ?guard:Guard.t ->
  ?plan:Common.plan ->
  ?floor:(unit -> float) ->
  ?executor:Joins.Exec.executor ->
  Env.t ->
  scheme:Ranking.scheme ->
  k:int ->
  Tpq.Query.t ->
  Common.result
(** [floor] and [executor] as in {!Dpo.run}. *)
