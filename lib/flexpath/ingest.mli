(** Live ingestion: a writable corpus served as one environment.

    The corpus is a single synthetic document — an [fx-corpus] root
    whose children are [fx-doc id="..."] wrappers, one per ingested
    document — so there is exactly one index and one statistics table,
    and every score or penalty uses corpus-global counts.  Adding a
    document {e extends} the arena, index and statistics incrementally
    ({!Xmldom.Doc.append_trees}, {!Fulltext.Index.extend},
    {!Stats.extend}); each extension is value-identical to a fresh
    build over the union corpus, so an incrementally grown corpus
    answers queries byte-for-byte like an offline rebuild — the
    merge-equivalence property the test suite verifies across
    DPO/SSO/Hybrid.  Deletes and upserts of existing ids take the slow
    rebuild path (rare next to appends, as in any LSM).

    The {!store} adds durability: every acknowledged write is first
    appended to a CRC-per-record {!Wal}; {!merge} folds the corpus
    into a Storage v2 snapshot atomically and truncates the log only
    after the snapshot rename is durable; {!open_store} replays the
    log tail over the snapshot, so a crash at any byte recovers to
    exactly the acknowledged document set (WAL replay is idempotent:
    an [Add] of an existing id is an upsert).  See DESIGN.md §4h for
    the ack/durability contract and crash matrix.

    Corpora are immutable values; a store is single-writer mutable
    state (the server serializes writers and publishes each new corpus
    env through its generation counter). *)

val corpus_tag : string
(** ["fx-corpus"], the synthetic root tag. *)

val doc_tag : string
(** ["fx-doc"], the per-document wrapper tag; its [id] attribute is the
    document id. *)

val valid_id : string -> bool
(** Ids are 1-128 characters from [A-Za-z0-9._-]: safe on the wire
    verb line, in WAL payloads and as XML attribute values. *)

(** {2 Parse budget} *)

type limits = { max_bytes : int; max_elems : int }
(** Caps on one ingested document.  The element cap is enforced by a
    streaming SAX pre-pass, so an oversized document is rejected after
    one scan without materializing its tree. *)

val default_limits : limits
(** 8 MiB, 262144 elements. *)

val parse_doc : ?limits:limits -> string -> (Xmldom.Xml.t, Error.t) result
(** Budget-checked parse of one ingested document; rejects text-node
    roots.  [Capacity] when over budget, [Xml_error] when malformed. *)

(** {2 Corpus values} *)

type corpus

val empty :
  ?weights:Relax.Penalty.weights ->
  ?hierarchy:Tpq.Hierarchy.t ->
  ?scorer:Fulltext.Scorer.t ->
  unit ->
  (corpus, Error.t) result

val of_docs :
  ?weights:Relax.Penalty.weights ->
  ?hierarchy:Tpq.Hierarchy.t ->
  ?scorer:Fulltext.Scorer.t ->
  (string * Xmldom.Xml.t) list ->
  (corpus, Error.t) result
(** Offline build over a document list — the comparator the
    merge-equivalence tests rebuild against.  Ids must be distinct and
    valid (not re-checked here; [add] checks on the live path). *)

val of_env : Env.t -> (corpus, Error.t) result
(** Re-derive the registry from a snapshot-loaded corpus env; the
    corpus document is its own registry.  [Config_error] when the root
    is not [fx-corpus] or a wrapper id is missing, invalid or
    duplicated. *)

val env : corpus -> Env.t
val ids : corpus -> string list
(** Document ids in corpus order (ingestion order, upserts moving to
    the end). *)

val mem : corpus -> string -> bool
val docs : corpus -> (string * Xmldom.Xml.t) list
(** Extract every (id, document tree), in corpus order. *)

val add : corpus -> id:string -> Xmldom.Xml.t -> (corpus, Error.t) result
(** Upsert.  New ids append incrementally; existing ids rebuild with
    the replacement moved to the end (delete + re-ingest semantics, so
    WAL replay is idempotent). *)

val remove : corpus -> id:string -> (corpus, Error.t) result
(** [Config_error] for unknown ids. *)

(** {2 WAL-backed store} *)

type store

val default_probation_ms : float
(** 2000 ms — the read-only probation interval. *)

val open_store :
  ?weights:Relax.Penalty.weights ->
  ?hierarchy:Tpq.Hierarchy.t ->
  ?scorer:Fulltext.Scorer.t ->
  ?limits:limits ->
  ?probation_ms:float ->
  snapshot:string ->
  wal:string ->
  unit ->
  (store, Error.t) result
(** Load the snapshot if present (else start empty), open the WAL and
    replay its valid prefix.  [snapshot] is also where {!merge}
    publishes; [weights]/[hierarchy]/[scorer] apply when starting
    empty (a snapshot carries its own index and hierarchy).
    [probation_ms] scopes the read-only degrade (below). *)

val ingest : store -> ?id:string -> string -> (string, Error.t) result
(** Parse under the store's budget, apply, WAL-append, fsync, commit;
    returns the document id (auto-assigned [doc-N] when omitted).  An
    [Error] means the write is in neither the corpus nor the log. *)

val delete : store -> id:string -> (unit, Error.t) result

val apply_shipped : store -> Wal.record -> (unit, Error.t) result
(** Replication: apply one already-acked WAL record shipped from a
    primary, appending it to this store's own WAL (fsync included) so
    the follower is independently durable.  Unlike {!ingest} there is
    no parse budget (the primary enforced it at ack time) and a
    [Delete] of an unknown id is a no-op, so shipping the primary's
    acked sequence from any prefix converges the follower to the
    primary's acked set — the property follower catch-up relies on. *)

(** {2 Read-only degrade}

    A disk error ([Error.Io_error] — real or injected via the
    [enospc]/[eio] failpoint flavors) on the durability path arms a
    read-only flag: subsequent writes fail fast with [Error.Readonly]
    carrying a retry hint instead of risking a non-durable ack, while
    reads keep serving the acked in-memory corpus.  After
    [probation_ms] the next write attempt is the automatic re-probe —
    success clears the flag, another disk error refreshes it.
    Injected [Error.Fault]s never arm the flag; they model transient
    faults, not a failing disk. *)

val readonly : store -> bool
(** The store is currently degraded (flag armed; cleared only by a
    successful post-probation write or merge). *)

val readonly_retry_after_ms : store -> int
(** Remaining probation, in ms (0 when not degraded; ≥ 1 while
    degraded, even past probation — the hint for "retry now"). *)

val probation_ms : store -> float

val merge : store -> (unit, Error.t) result
(** Durable compaction: atomic {!Storage.save} of the corpus, then WAL
    truncation.  No-op when nothing is unmerged and a snapshot exists.
    The [merge_publish] failpoint fires between the two steps and its
    {!Failpoint.Injected} escapes deliberately — it simulates the
    merge domain dying in the one window where snapshot and log
    overlap, which replay handles idempotently. *)

val store_env : store -> Env.t
(** The current corpus env — what the server publishes after each
    acknowledged write. *)

val store_ids : store -> string list
val doc_count : store -> int

val unmerged_records : store -> int
(** The [delta_docs] STATS gauge. *)

val replayed_records : store -> int
(** WAL records replayed at open. *)

val wal_bytes : store -> int

val staleness_ms : store -> float
(** Age of the oldest acknowledged-but-unmerged write; 0 when fully
    merged.  Bounded by the merge interval when the merge domain is
    healthy — the operator-facing lag gauge. *)

val limits : store -> limits
val close : store -> unit
