let run ?max_steps ?guard ?plan ?floor env ~scheme ~k q =
  Sso.run_with ?max_steps ?guard ?plan ?floor ~sort_on_score:false ~bucketize:true env ~scheme ~k q
