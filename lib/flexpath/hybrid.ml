let run ?max_steps ?guard ?plan ?floor ?executor env ~scheme ~k q =
  Sso.run_with ?max_steps ?guard ?plan ?floor ?executor ~sort_on_score:false ~bucketize:true env
    ~scheme ~k q
