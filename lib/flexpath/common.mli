(** Shared machinery of the three top-K algorithms (§5.1).

    All algorithms walk the same penalty-ordered relaxation chain
    [Q = Q0 ⊂ Q1 ⊂ ...] ({!Relax.Space.sequence}) and differ in how
    much of it they evaluate and how.  Early termination is sound: any
    answer not yet produced by relaxation [Qi] must violate at least
    one closure predicate [Qi] still enforces, so its structural score
    is at most [base − min π(p)] over those predicates
    ({!unseen_bound}); once the current K-th answer reaches that bound
    no further relaxation can change the top-K. *)

val log_src : Logs.src
(** Log source ["flexpath"]: debug-level traces of chain construction,
    cut selection and pass counts. *)

module Log : Logs.LOG

type completeness =
  | Complete  (** The reported top-K is the true top-K. *)
  | Truncated of { reason : Guard.reason; score_bound : float }
      (** A budget tripped before the stopping bound was reached: the
          answers are the best found so far, correctly ordered, but an
          unreported answer could score up to [score_bound] on the
          scheme's primary key.  Sound by the same argument as early
          termination: any answer not produced by the last {e completed}
          relaxation violates a predicate it still enforces
          ({!unseen_bound}). *)

type result = {
  answers : Answer.t list;  (** Top-K, best first. *)
  metrics : Joins.Exec.metrics;
  relaxations_evaluated : int;
      (** Chain steps evaluated (DPO) or encoded in the plan (SSO /
          Hybrid). *)
  passes : int;  (** Full evaluation passes over the data. *)
  restarts : int;  (** SSO/Hybrid restarts after underestimation. *)
  completeness : completeness;
  degraded : bool;
      (** True when SSO/Hybrid gave up restarting (budget's
          [restart_cap]) and fell back to DPO's per-step evaluation. *)
}

val chain :
  Env.t -> ?max_steps:int -> Tpq.Query.t -> Relax.Penalty.t * Relax.Space.entry list
(** The penalty environment and greedy relaxation chain for a query
    (first entry is the original query itself). *)

val unseen_bound : Ranking.scheme -> Relax.Penalty.t -> Relax.Space.entry -> float
(** Upper bound on {!Ranking.total} of any answer not produced by the
    entry's query.  [neg_infinity] when every scored predicate is
    already dropped. *)

val kth_total : Ranking.scheme -> int -> Answer.t list -> float option
(** The K-th best primary score among collected answers; [None] when
    fewer than [k] are present. *)

val max_total : Ranking.scheme -> Relax.Penalty.t -> float
(** The best primary score any answer can reach under the scheme —
    the vacuous truncation bound when no pass completed. *)

val truncation_bound :
  Ranking.scheme -> Relax.Penalty.t -> Relax.Space.entry option -> float
(** The [score_bound] to report when a budget trips: {!unseen_bound} of
    the last fully completed chain entry, or {!max_total} when not even
    the original query's pass finished. *)

val evaluate :
  ?metrics:Joins.Exec.metrics ->
  ?cancel:(int -> bool) ->
  ?executor:Joins.Exec.executor ->
  Env.t ->
  Relax.Penalty.t ->
  Tpq.Query.t ->
  Relax.Op.t list ->
  Joins.Exec.strategy ->
  Answer.t list
(** Evaluate the query obtained by applying [ops] to the original,
    scored against the original's closure.  [cancel] and [executor]
    (physical operator selection, default [Auto]) are threaded to
    {!Joins.Exec.run}; when [cancel] aborts, {!Joins.Exec.Cancelled}
    escapes to the calling algorithm. *)

(** {2 Reusable evaluation plans}

    Everything about an evaluation that depends only on the query's
    shape, bundled for reuse: the penalty environment, the greedy
    relaxation chain, and (lazily compiled, atomically published) the
    relaxation-encoded join plan of each chain entry.  Answers carry no
    variable ids, so a plan built for one query is valid for any
    isomorphic query — the foundation of {!Qcache}'s plan tier.  A plan
    is bound to the environment it was built from and must not be used
    with another. *)

type plan = {
  pquery : Tpq.Query.t;  (** The representative query the plan was built for. *)
  penv : Relax.Penalty.t;
  chain : Relax.Space.entry array;  (** The greedy chain, original query first. *)
  encoded : Joins.Encoded.t option Atomic.t array;
      (** One slot per chain entry; filled by {!encoded_entry}. *)
}

val build_plan : Env.t -> ?max_steps:int -> Tpq.Query.t -> plan
(** {!chain} packaged as a plan (and subject to the same
    ["chain.build"] failpoint); no join plan is compiled yet. *)

val plan_entries : plan -> Relax.Space.entry list

val encoded_entry : plan -> int -> Joins.Encoded.t
(** The compiled join plan of chain entry [i], compiling and publishing
    it on first use. *)

val evaluate_entry :
  ?metrics:Joins.Exec.metrics ->
  ?cancel:(int -> bool) ->
  ?executor:Joins.Exec.executor ->
  Env.t ->
  plan ->
  int ->
  Joins.Exec.strategy ->
  Answer.t list
(** {!evaluate} through the plan's cached encodings: evaluate chain
    entry [i] against [env], scored on the plan's closure. *)
