(* Fault-isolated sharded corpus (DESIGN.md §4i).

   N independent WAL-backed stores — one failure domain each — served
   as one logical corpus.  Documents route to shards by a stable hash
   of their id; each shard keeps its own snapshot, WAL, generation
   counter and strike record, so corruption, a mid-query fault or a
   quarantine on one shard never touches the other N−1.

   Queries scatter over the live shards and gather per-shard top-K
   lists into a global top-K.  Scoring is corpus-global even though
   evaluation is per-shard: every probe runs against a scoring view
   whose statistics ({!Stats.merged}) and term frequencies
   ({!Fulltext.Index.overlay_of}) are merged across the live shards,
   so a score computed inside shard 3 equals the score the same node
   would get in one combined environment — which is what makes the
   per-shard top-K lists mergeable and the healthy N-shard answer
   byte-identical to a single-shard corpus.

   The gather is a threshold-algorithm cutoff: the running global
   K-th score is handed to each probe as its [floor], truncating that
   probe's relaxation-chain walk as soon as no unseen answer can beat
   it, and a shard is skipped outright (exactly — skipping is not a
   partial answer) once the gathered K-th answer reaches
   {!Common.max_total} and wins the node-id tie-break against
   anything the shard could hold.

   A shard that cannot answer — corrupt at load, lost mid-query,
   over budget, or quarantined after repeated losses — contributes a
   sound bound on what its unreported answers could have scored
   instead of an error: budget trips report the engine's own
   truncation bound; a lost or down shard reports [max_total], which
   depends only on the query's predicate weights and so needs no data
   from the lost shard.  The merged result is then [Partial] with
   [served]/[total] attribution.

   Replication (DESIGN.md §4l).  With [replicas = R] each shard is a
   replica *set*: R full stores, each with its own snapshot and WAL.
   The primary is the first in-sync live replica; acked records are
   shipped to the followers — applied through their own WAL+fsync
   before the ack in [Sync] mode, or queued and drained shortly after
   in [Async] mode (bounded-lag gauge).  A follower that misses a
   record (disk fault, probe loss) is marked out-of-sync and excluded
   from the queryable view until catch-up: copy the primary's snapshot
   and WAL files and reopen, i.e. genuine snapshot copy + WAL tail
   replay.  Queries fail over: a probe that dies on one replica
   retries the next in-sync replica under the same guard, so a
   single-replica loss yields a [Complete] answer byte-identical to
   the healthy run; [Partial] remains as the R-failures-out-of-R
   floor, with [served]/[total] counting replica sets. *)

type algorithm = DPO | SSO | Hybrid

let algorithm_to_string = function DPO -> "dpo" | SSO -> "sso" | Hybrid -> "hybrid"

type ack_mode = Sync | Async

let ack_mode_to_string = function Sync -> "sync" | Async -> "async"
let default_strike_threshold = 3

(* ------------------------------------------------------------------ *)
(* Routing: FNV-1a over the document id.  Stable across runs and
   builds, so a restarted corpus re-derives the same placement from
   ids alone — no routing table needs to be persisted. *)

let fnv1a id =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193 land 0xffffffff)
    id;
  !h

let route ~shards id = fnv1a id mod shards

(* ------------------------------------------------------------------ *)
(* State *)

(* One copy of a shard.  [rep_synced = false] means the replica missed
   an acked record (failed ship, disk fault, or it has not finished
   async drain/catch-up); it keeps serving nothing until it converges
   back to the primary's acked set, because an out-of-sync replica's
   node ids may not match the published spans. *)
type replica = {
  rep_idx : int;
  rep_snapshot_path : string;
  rep_wal_path : string;
  mutable rep_store : Ingest.store option;  (* [None] while the replica is down *)
  mutable rep_generation : int;
  mutable rep_strikes : int;
  mutable rep_quarantined : bool;
  mutable rep_synced : bool;
  mutable rep_pending : Wal.record list;  (* async ship queue, newest first; drained in reverse *)
  mutable rep_pending_since_ms : float option;  (* arrival of the oldest pending record *)
  mutable rep_last_error : string option;
}

type shard = {
  ord : int;
  replicas : replica array;  (* replica 0 carries the legacy single-copy paths *)
  wlock : Mutex.t;  (* serializes writers (ingest/delete/merge/ship/reload) *)
}

(* A replica that can serve right now: live, unquarantined, in sync
   and with no queued-but-unapplied ships — i.e. value-identical to
   the primary's acked corpus, so any of them can serve a probe
   against the published spans. *)
let replica_usable r =
  r.rep_store <> None && (not r.rep_quarantined) && r.rep_synced && r.rep_pending = []

(* The primary is the first usable replica — promotion is implicit in
   the ordering, and a recovered lower replica resumes the primary
   role after catch-up. *)
let primary_of s = Array.to_seq s.replicas |> Seq.find replica_usable

(* Query-usable replicas, primary first. *)
let usable_replicas s = Array.to_list s.replicas |> List.filter replica_usable

(* One ingested document inside a shard view: its wrapper element, its
   subtree span, and the pre-order id its wrapper would have in the
   single combined corpus ([d_base], assigned from the corpus-level
   arrival order).  [d_base] is what makes cross-shard tie-breaks —
   and therefore merged output — identical to the unsharded corpus. *)
type doc_span = {
  d_id : string;
  d_wrapper : int;
  d_end : int;  (* one past the last pre-order id of the wrapper subtree *)
  mutable d_base : int;
}

type shard_view = {
  sv_ord : int;
  sv_replicas : (int * Env.t) array;
      (* (replica index, scoring view) for every in-sync live replica,
         primary first — the probe's failover order.  Empty when the
         whole replica set is down. *)
  sv_spans : doc_span array;  (* ascending by wrapper id *)
  sv_error : string option;
}

type view = {
  v_shards : shard_view array;
  v_gen_vector : string;
      (* one component per shard, "<generation>" or "<generation>!"
         when down/quarantined — the full cache-key scope *)
  v_planner : Env.t option;  (* any live scoring env; plans built here serve every shard *)
}

type t = {
  shards : shard array;
  reg_lock : Mutex.t;
      (* protects [order], [next_auto], replica meta fields and view
         publication; never held while waiting on a [wlock] *)
  mutable order : string list;  (* global arrival order, oldest first *)
  mutable next_auto : int;
  strike_threshold : int;
  ack_mode : ack_mode;
  view : view Atomic.t;
  cache : Qcache.t;
  fallback_env : Env.t;  (* empty corpus env: bounds when every shard is down *)
  pool : Taskpool.t option;
      (* probe parallelism for the scatter; [None] keeps the original
         strictly sequential per-shard fold *)
  reopen : snapshot:string -> wal:string -> (Ingest.store, Error.t) Stdlib.result;
      (* opens a replica store with the corpus's own weights, hierarchy,
         scorer and limits — what [reload] must reuse, or a swapped
         replica would score under different parameters *)
}

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let shard_count t = Array.length t.shards
let replica_count t = Array.length t.shards.(0).replicas
let ack_mode t = t.ack_mode
let shard_of_id t id = route ~shards:(Array.length t.shards) id

(* ------------------------------------------------------------------ *)
(* View construction.  Called with [reg_lock] held; readers get the
   published view with one [Atomic.get] and never block. *)

let publish t =
  (* Corpus-global statistics merge one env per shard — the primary's.
     In-sync followers are value-identical copies; folding them in too
     would double-count every document. *)
  let live_envs =
    Array.to_list t.shards
    |> List.filter_map (fun s ->
           match primary_of s with
           | Some r -> Option.map Ingest.store_env r.rep_store
           | None -> None)
  in
  let scoring_of =
    match live_envs with
    | [] -> fun _ -> None
    | _ ->
      let merged =
        Stats.merged ~root_tag:Ingest.corpus_tag
          (List.map (fun (e : Env.t) -> e.Env.stats) live_envs)
      in
      let ov = Fulltext.Index.overlay_of (List.map (fun (e : Env.t) -> e.Env.index) live_envs) in
      fun (e : Env.t) ->
        Some { e with Env.index = Fulltext.Index.with_overlay e.Env.index ov; stats = merged }
  in
  let span_tbl : (string, doc_span) Hashtbl.t = Hashtbl.create 64 in
  let shard_views =
    Array.map
      (fun s ->
        match usable_replicas s with
        | [] ->
          let err =
            let any_quarantined = Array.exists (fun r -> r.rep_quarantined) s.replicas in
            match
              Array.to_list s.replicas |> List.find_map (fun r -> r.rep_last_error)
            with
            | Some e -> Some e
            | None -> Some (if any_quarantined then "quarantined" else "down")
          in
          { sv_ord = s.ord; sv_replicas = [||]; sv_spans = [||]; sv_error = err }
        | prim :: _ as usable ->
          (* Spans come from the primary's doc; every usable replica is
             value-identical, so the same spans map any of their node
             ids into the combined corpus. *)
          let env = Ingest.store_env (Option.get prim.rep_store) in
          let doc = env.Env.doc in
          let spans =
            Xmldom.Doc.children doc (Xmldom.Doc.root doc)
            |> List.filter_map (fun w ->
                   match Xmldom.Doc.attribute doc w "id" with
                   | Some id ->
                     let sp =
                       { d_id = id; d_wrapper = w; d_end = Xmldom.Doc.subtree_end doc w; d_base = 0 }
                     in
                     Hashtbl.replace span_tbl id sp;
                     Some sp
                   | None -> None)
            |> Array.of_list
          in
          let sv_replicas =
            usable
            |> List.filter_map (fun r ->
                   let e = Ingest.store_env (Option.get r.rep_store) in
                   Option.map (fun senv -> (r.rep_idx, senv)) (scoring_of e))
            |> Array.of_list
          in
          { sv_ord = s.ord; sv_replicas; sv_spans = spans; sv_error = None })
      t.shards
  in
  (* Global wrapper bases follow the corpus-level arrival order, so a
     node's mapped id equals its pre-order id in the single combined
     document; ids living on down shards are skipped (their absence is
     exactly what [Partial] reports). *)
  let base = ref 1 in
  List.iter
    (fun id ->
      match Hashtbl.find_opt span_tbl id with
      | Some sp ->
        sp.d_base <- !base;
        base := !base + (sp.d_end - sp.d_wrapper)
      | None -> ())
    t.order;
  let gen_vector =
    (* One ':'-joined component per replica — ["<gen>"] when usable,
       ["<gen>!"] when down, quarantined or out-of-sync — so any change
       to a replica's content or availability invalidates cached
       answers.  At R = 1 this is exactly the PR-7 per-shard format. *)
    t.shards
    |> Array.map (fun s ->
           Array.to_list s.replicas
           |> List.map (fun r ->
                  let g = string_of_int r.rep_generation in
                  if replica_usable r then g else g ^ "!")
           |> String.concat ":")
    |> Array.to_list |> String.concat "."
  in
  let planner =
    Array.fold_left
      (fun acc sv ->
        match acc with
        | Some _ -> acc
        | None -> if Array.length sv.sv_replicas > 0 then Some (snd sv.sv_replicas.(0)) else None)
      None shard_views
  in
  Atomic.set t.view { v_shards = shard_views; v_gen_vector = gen_vector; v_planner = planner }

let generation_vector t = (Atomic.get t.view).v_gen_vector

(* ------------------------------------------------------------------ *)
(* Open / close *)

let auto_seed ids =
  List.fold_left
    (fun acc id ->
      if String.length id > 4 && String.sub id 0 4 = "doc-" then
        match int_of_string_opt (String.sub id 4 (String.length id - 4)) with
        | Some n when n >= acc -> n + 1
        | _ -> acc
      else acc)
    1 ids

(* Replica 0 keeps the PR-7 single-copy layout, so an existing corpus
   opened with [--replicas R] finds its data as replica 0 and the
   followers bootstrap empty (catch-up or the first writes sync
   them). *)
let replica_paths ~prefix i j =
  if j = 0 then (Printf.sprintf "%s.shard%d" prefix i, Printf.sprintf "%s.shard%d.wal" prefix i)
  else
    ( Printf.sprintf "%s.shard%d.r%d" prefix i j,
      Printf.sprintf "%s.shard%d.r%d.wal" prefix i j )


(* In-sync here means "holds exactly the primary's acked set".  At open
   every replica recovered its own snapshot+WAL; a follower whose
   recovered ids differ from the primary's missed acked records while
   it was away (or tore its WAL) and must catch up before serving. *)
let synced_with_primary ~prim_ids st = List.equal String.equal prim_ids (Ingest.store_ids st)

let open_corpus ?weights ?hierarchy ?scorer ?limits
    ?(strike_threshold = default_strike_threshold) ?(probe_domains = 0) ?(replicas = 1)
    ?(ack_mode = Sync) ?probation_ms ~shards ~prefix () =
  if shards < 1 || shards > 1024 then
    Error
      (Error.Config_error
         { what = "shards"; message = Printf.sprintf "shard count %d outside 1..1024" shards })
  else if replicas < 1 || replicas > 8 then
    Error
      (Error.Config_error
         { what = "replicas"; message = Printf.sprintf "replica count %d outside 1..8" replicas })
  else
    match Result.map Ingest.env (Ingest.empty ?weights ?hierarchy ?scorer ()) with
    | Error e -> Error e
    | Ok fallback_env ->
      let reopen ~snapshot ~wal =
        Ingest.open_store ?weights ?hierarchy ?scorer ?limits ?probation_ms ~snapshot ~wal ()
      in
      let shard_arr =
        Array.init shards (fun i ->
            let reps =
              Array.init replicas (fun j ->
                  let snapshot_path, wal_path = replica_paths ~prefix i j in
                  let rep =
                    {
                      rep_idx = j;
                      rep_snapshot_path = snapshot_path;
                      rep_wal_path = wal_path;
                      rep_store = None;
                      rep_generation = 0;
                      rep_strikes = 0;
                      rep_quarantined = false;
                      rep_synced = true;
                      rep_pending = [];
                      rep_pending_since_ms = None;
                      rep_last_error = None;
                    }
                  in
                  (* Fault isolation starts at load: a replica whose
                     snapshot fails its integrity checks opens down with
                     the error recorded — the rest of the set still
                     serves. *)
                  (match reopen ~snapshot:snapshot_path ~wal:wal_path with
                  | Ok st -> rep.rep_store <- Some st
                  | Error e -> rep.rep_last_error <- Some (Error.to_string e));
                  rep)
            in
            (* Pick the recovery reference: the live replica with the
               largest recovered acked set (ties to the lowest index) —
               a replica that accepted writes while its peers were down
               must win, or its acked records would be clobbered by
               catch-up.  (Delete-only divergence can still pick the
               stale copy; term/epoch numbers are the named follow-up
               in DESIGN.md §4l.)  Everything that differs from the
               reference is out-of-sync until catch-up. *)
            (match
               Array.to_list reps
               |> List.filter_map (fun r -> Option.map (fun st -> (r, Ingest.store_ids st)) r.rep_store)
               |> List.fold_left
                    (fun acc (r, ids) ->
                      match acc with
                      | Some (_, best) when List.length best >= List.length ids -> acc
                      | _ -> Some (r, ids))
                    None
             with
            | None -> ()
            | Some (_, prim_ids) ->
              Array.iter
                (fun r ->
                  match r.rep_store with
                  | Some st when not (synced_with_primary ~prim_ids st) -> r.rep_synced <- false
                  | _ -> ())
                reps);
            { ord = i; replicas = reps; wlock = Mutex.create () })
      in
      let order =
        Array.to_list shard_arr
        |> List.concat_map (fun s ->
               match primary_of s with
               | Some r -> Ingest.store_ids (Option.get r.rep_store)
               | None -> [])
      in
      let t =
        {
          shards = shard_arr;
          reg_lock = Mutex.create ();
          order;
          next_auto = auto_seed order;
          strike_threshold;
          ack_mode;
          view = Atomic.make { v_shards = [||]; v_gen_vector = ""; v_planner = None };
          cache = Qcache.create ();
          fallback_env;
          pool =
            (* A pool only helps when more than one shard can be probed
               at once; below that the sequential fold is strictly
               cheaper.  The cap keeps a many-shard corpus from
               spawning more domains than probes it can overlap. *)
            (if probe_domains > 0 && shards > 1 then
               Some (Taskpool.create ~domains:(min probe_domains (shards - 1)))
             else None);
          reopen;
        }
      in
      with_lock t.reg_lock (fun () -> publish t);
      Ok t

let close t =
  (match t.pool with Some pool -> Taskpool.shutdown pool | None -> ());
  Array.iter
    (fun s ->
      with_lock s.wlock (fun () ->
          Array.iter
            (fun r ->
              match r.rep_store with
              | Some st ->
                Ingest.close st;
                r.rep_store <- None
              | None -> ())
            s.replicas))
    t.shards

let probe_parallelism t = match t.pool with Some p -> Taskpool.size p + 1 | None -> 1

(* ------------------------------------------------------------------ *)
(* Writes: route, apply to the primary under the shard's writer lock,
   ship to the followers, publish. *)

let unavailable s =
  let reason =
    if Array.exists (fun r -> r.rep_quarantined) s.replicas then "quarantined" else "down"
  in
  Error.Io_error
    {
      path = s.replicas.(0).rep_snapshot_path;
      message = Printf.sprintf "shard %d is %s" s.ord reason;
    }

let note_arrival t id =
  t.order <- List.filter (fun existing -> not (String.equal existing id)) t.order @ [ id ]

(* A follower that missed an acked record is out-of-sync: it stops
   serving (and receiving ships) until catch-up, but the ack stands on
   the surviving copies — losing one replica's durability is the
   failure replication exists to absorb. *)
let mark_out_of_sync t rep why =
  with_lock t.reg_lock (fun () ->
      rep.rep_synced <- false;
      rep.rep_pending <- [];
      rep.rep_pending_since_ms <- None;
      rep.rep_generation <- rep.rep_generation + 1;
      rep.rep_last_error <- Some why)

(* Apply one acked record to a follower through its own WAL (fsync
   included).  [replica_ship] is the fault-injection point for a
   follower that dies mid-ship. *)
let ship_record t rep record =
  match rep.rep_store with
  | None -> mark_out_of_sync t rep "ship: replica down"
  | Some st -> (
    match
      Failpoint.hit "replica_ship";
      Ingest.apply_shipped st record
    with
    | Ok () -> with_lock t.reg_lock (fun () -> rep.rep_generation <- rep.rep_generation + 1)
    | Error e -> mark_out_of_sync t rep ("ship: " ^ Error.to_string e)
    | exception Failpoint.Injected p -> mark_out_of_sync t rep ("ship: fault: " ^ p))

(* Drain a follower's async queue, oldest first.  The queue order is
   the primary's ack order, so a fully drained follower is
   value-identical to the primary again. *)
let drain_replica t rep =
  match List.rev rep.rep_pending with
  | [] -> ()
  | records ->
    with_lock t.reg_lock (fun () ->
        rep.rep_pending <- [];
        rep.rep_pending_since_ms <- None);
    List.iter (fun r -> if rep.rep_synced then ship_record t rep r) records

let drain_shard t s = Array.iter (fun rep -> drain_replica t rep) s.replicas

let enqueue_record t rep record =
  with_lock t.reg_lock (fun () ->
      rep.rep_pending <- record :: rep.rep_pending;
      if rep.rep_pending_since_ms = None then rep.rep_pending_since_ms <- Some (Monotime.now_ms ()))

(* Followers eligible for shipping: live, unquarantined, in sync and
   not the primary.  Out-of-sync replicas are skipped — they need
   catch-up, not a record from the middle of a sequence they hold a
   prefix of. *)
let ship_targets s prim =
  Array.to_list s.replicas
  |> List.filter (fun r ->
         r != prim && r.rep_store <> None && (not r.rep_quarantined) && r.rep_synced
         && r.rep_pending = [])

let ship t s prim record =
  match t.ack_mode with
  | Sync -> List.iter (fun rep -> ship_record t rep record) (ship_targets s prim)
  | Async ->
    List.iter
      (fun rep -> enqueue_record t rep record)
      (Array.to_list s.replicas
      |> List.filter (fun r ->
             r != prim && r.rep_store <> None && (not r.rep_quarantined) && r.rep_synced))

let ingest t ?id body =
  let id =
    match id with
    | Some id -> id
    | None ->
      with_lock t.reg_lock (fun () ->
          let n = t.next_auto in
          t.next_auto <- n + 1;
          Printf.sprintf "doc-%d" n)
  in
  let s = t.shards.(shard_of_id t id) in
  with_lock s.wlock (fun () ->
      drain_shard t s;
      match primary_of s with
      | None -> Error (unavailable s)
      | Some prim -> (
        match Ingest.ingest (Option.get prim.rep_store) ~id body with
        | Error e -> Error e
        | Ok id ->
          ship t s prim (Wal.Add { id; xml = body });
          with_lock t.reg_lock (fun () ->
              prim.rep_generation <- prim.rep_generation + 1;
              note_arrival t id;
              publish t);
          Ok id))

let delete t ~id =
  let s = t.shards.(shard_of_id t id) in
  with_lock s.wlock (fun () ->
      drain_shard t s;
      match primary_of s with
      | None -> Error (unavailable s)
      | Some prim -> (
        match Ingest.delete (Option.get prim.rep_store) ~id with
        | Error e -> Error e
        | Ok () ->
          ship t s prim (Wal.Delete { id });
          with_lock t.reg_lock (fun () ->
              prim.rep_generation <- prim.rep_generation + 1;
              t.order <- List.filter (fun existing -> not (String.equal existing id)) t.order;
              publish t);
          Ok ()))

let check_ord t ord =
  if ord < 0 || ord >= Array.length t.shards then
    Error
      (Error.Config_error
         { what = "shard"; message = Printf.sprintf "shard %d outside 0..%d" ord (Array.length t.shards - 1) })
  else Ok t.shards.(ord)

(* Drain one shard's async queues outside a write — the server's merge
   loop tick, and the lag-bounding knob the async mode's gauge is
   checked against. *)
let ship_pending t ord =
  match check_ord t ord with
  | Error _ -> ()
  | Ok s ->
    with_lock s.wlock (fun () ->
        if Array.exists (fun r -> r.rep_pending <> []) s.replicas then begin
          drain_shard t s;
          with_lock t.reg_lock (fun () -> publish t)
        end)

let merge t ord =
  match check_ord t ord with
  | Error e -> Error e
  | Ok s ->
    with_lock s.wlock (fun () ->
        drain_shard t s;
        match primary_of s with
        | None -> Error (unavailable s)
        | Some prim ->
          let res = Ingest.merge (Option.get prim.rep_store) in
          (match res with
          | Ok () -> ()
          | Error e ->
            (* A failed merge leaves snapshot+WAL intact and the
               replica serving; record it for SHARDS without
               striking.  (A disk error also armed the store's
               read-only probation — see {!Ingest}.) *)
            with_lock t.reg_lock (fun () -> prim.rep_last_error <- Some (Error.to_string e)));
          (* Compact the in-sync followers too: each replica's own
             snapshot must keep pace or its WAL — and every catch-up
             copy of it — grows without bound. *)
          Array.iter
            (fun r ->
              if r != prim && replica_usable r then
                match Ingest.merge (Option.get r.rep_store) with
                | Ok () -> ()
                | Error e ->
                  with_lock t.reg_lock (fun () -> r.rep_last_error <- Some (Error.to_string e)))
            s.replicas;
          res)

(* ------------------------------------------------------------------ *)
(* Catch-up and reload. *)

(* Plain byte copy via a temp file + rename, so a crash mid-copy never
   leaves a half-written snapshot or WAL in place. *)
let copy_file src dst =
  if not (Sys.file_exists src) then begin
    if Sys.file_exists dst then Sys.remove dst;
    Ok ()
  end
  else begin
    match
      let ic = open_in_bin src in
      let n = in_channel_length ic in
      let buf = really_input_string ic n in
      close_in ic;
      let tmp = dst ^ ".cp" in
      let oc = open_out_bin tmp in
      output_string oc buf;
      close_out oc;
      Sys.rename tmp dst
    with
    | () -> Ok ()
    | exception Sys_error m -> Error (Error.Io_error { path = dst; message = m })
    | exception Unix.Unix_error (e, fn, _) ->
      Error (Error.Io_error { path = dst; message = fn ^ ": " ^ Unix.error_message e })
  end

(* Reconcile the arrival order with what the shard actually recovered:
   surviving documents keep their global position — so tie-breaks, and
   therefore answers, are unchanged by a reload that recovers the same
   documents — ids the shard no longer holds drop out, and genuinely
   new (WAL-recovered) ids append.  [reg_lock] held. *)
let reconcile_order t ord recovered =
  let keep id = shard_of_id t id <> ord || List.exists (String.equal id) recovered in
  let fresh = List.filter (fun id -> not (List.exists (String.equal id) t.order)) recovered in
  t.order <- List.filter keep t.order @ fresh;
  t.next_auto <- max t.next_auto (auto_seed t.order)

let close_replica rep =
  match rep.rep_store with
  | Some st ->
    Ingest.close st;
    rep.rep_store <- None
  | None -> ()

(* Catch a follower up to the primary's acked set: copy the primary's
   snapshot and WAL files over the follower's and reopen — the
   ordinary {!Ingest.open_store} replay machinery then performs the
   snapshot load + WAL tail replay, so catch-up exercises exactly the
   recovery path.  [wlock] held; the lock keeps the primary's files
   quiescent for the duration. *)
let catchup_replica t prim rep =
  close_replica rep;
  let prim_st = Option.get prim.rep_store in
  let ( let* ) = Result.bind in
  let res =
    let* () = copy_file prim.rep_snapshot_path rep.rep_snapshot_path in
    let* () = copy_file prim.rep_wal_path rep.rep_wal_path in
    let* st = t.reopen ~snapshot:rep.rep_snapshot_path ~wal:rep.rep_wal_path in
    if synced_with_primary ~prim_ids:(Ingest.store_ids prim_st) st then Ok st
    else begin
      Ingest.close st;
      Error
        (Error.Io_error
           {
             path = rep.rep_snapshot_path;
             message = "catch-up copy diverged from the primary's acked set";
           })
    end
  in
  match res with
  | Ok st ->
    with_lock t.reg_lock (fun () ->
        rep.rep_store <- Some st;
        rep.rep_generation <- rep.rep_generation + 1;
        rep.rep_strikes <- 0;
        rep.rep_quarantined <- false;
        rep.rep_synced <- true;
        rep.rep_pending <- [];
        rep.rep_pending_since_ms <- None;
        rep.rep_last_error <- None);
    Ok ()
  | Error e ->
    with_lock t.reg_lock (fun () ->
        rep.rep_generation <- rep.rep_generation + 1;
        rep.rep_synced <- false;
        rep.rep_last_error <- Some (Error.to_string e));
    Error e

(* Reopen one replica from its own on-disk snapshot + WAL (no copy):
   the restart path.  Sync status is settled by the caller. *)
let reopen_replica t rep =
  close_replica rep;
  match t.reopen ~snapshot:rep.rep_snapshot_path ~wal:rep.rep_wal_path with
  | Ok st ->
    with_lock t.reg_lock (fun () ->
        rep.rep_store <- Some st;
        rep.rep_generation <- rep.rep_generation + 1;
        rep.rep_strikes <- 0;
        rep.rep_quarantined <- false;
        rep.rep_pending <- [];
        rep.rep_pending_since_ms <- None;
        rep.rep_last_error <- None);
    Ok ()
  | Error e ->
    with_lock t.reg_lock (fun () ->
        rep.rep_generation <- rep.rep_generation + 1;
        rep.rep_last_error <- Some (Error.to_string e);
        rep.rep_synced <- false);
    Error e

(* After reopening replicas from disk, re-derive who is in sync: the
   reference is the live replica with the largest recovered acked set
   (same rule as [open_corpus]); everything equal to it is in sync.
   [reg_lock] NOT held.  Returns the reference's ids. *)
let resync_shard t s =
  let live =
    Array.to_list s.replicas
    |> List.filter_map (fun r ->
           match r.rep_store with
           | Some st when not r.rep_quarantined -> Some (r, Ingest.store_ids st)
           | _ -> None)
  in
  let reference =
    List.fold_left
      (fun acc (r, ids) ->
        match acc with
        | Some (_, best) when List.length best >= List.length ids -> acc
        | _ -> Some (r, ids))
      None live
  in
  with_lock t.reg_lock (fun () ->
      match reference with
      | None -> []
      | Some (_, prim_ids) ->
        List.iter
          (fun (r, ids) -> r.rep_synced <- List.equal String.equal prim_ids ids)
          live;
        prim_ids)

let reload t ?replica ord =
  match check_ord t ord with
  | Error e -> Error e
  | Ok s -> (
    match replica with
    | Some j when j < 0 || j >= Array.length s.replicas ->
      Error
        (Error.Config_error
           {
             what = "replica";
             message =
               Printf.sprintf "replica %d outside 0..%d" j (Array.length s.replicas - 1);
           })
    | Some j ->
      (* One replica: catch up from the primary when a distinct one is
         live (snapshot copy + WAL tail replay to the primary's acked
         set — the quarantine-recovery path); otherwise a plain reopen
         from its own files. *)
      with_lock s.wlock (fun () ->
          drain_shard t s;
          let rep = s.replicas.(j) in
          let res =
            match primary_of s with
            | Some prim when prim != rep -> catchup_replica t prim rep
            | _ -> (
              match reopen_replica t rep with
              | Error e -> Error e
              | Ok () ->
                let recovered = resync_shard t s in
                with_lock t.reg_lock (fun () -> reconcile_order t ord recovered);
                Ok ())
          in
          with_lock t.reg_lock (fun () -> publish t);
          res)
    | None ->
      (* Whole replica set: reopen every replica from disk, settle the
         sync reference, reconcile the arrival order against it, then
         catch stragglers up from the new primary. *)
      with_lock s.wlock (fun () ->
          let errors =
            Array.to_list s.replicas
            |> List.filter_map (fun rep ->
                   match reopen_replica t rep with Ok () -> None | Error e -> Some e)
          in
          let recovered = resync_shard t s in
          with_lock t.reg_lock (fun () -> reconcile_order t ord recovered);
          (match primary_of s with
          | Some prim ->
            Array.iter
              (fun rep ->
                if rep != prim && rep.rep_store <> None && not rep.rep_synced then
                  ignore (catchup_replica t prim rep))
              s.replicas
          | None -> ());
          with_lock t.reg_lock (fun () -> publish t);
          match (primary_of s, errors) with
          | Some _, _ -> Ok ()
          | None, e :: _ -> Error e
          | None, [] -> Error (unavailable s)))

(* ------------------------------------------------------------------ *)
(* Health *)

type replica_role = Primary | Follower

let role_to_string = function Primary -> "primary" | Follower -> "follower"

type replica_health = {
  rh_idx : int;
  rh_role : replica_role;
  rh_live : bool;
  rh_quarantined : bool;
  rh_synced : bool;
  rh_generation : int;
  rh_docs : int;
  rh_strikes : int;
  rh_unmerged : int;
  rh_staleness_ms : float;
  rh_wal_bytes : int;
  rh_replayed : int;
  rh_lag : int;  (* queued-but-unapplied shipped records (async mode) *)
  rh_lag_ms : float;  (* age of the oldest queued record *)
  rh_readonly : bool;
  rh_readonly_retry_ms : int;
  rh_last_error : string option;
}

type shard_health = {
  h_ord : int;
  h_live : bool;
  h_quarantined : bool;
  h_generation : int;
  h_docs : int;
  h_strikes : int;
  h_unmerged : int;
  h_staleness_ms : float;
  h_wal_bytes : int;
  h_replayed : int;
  h_last_error : string option;
  h_replicas : replica_health array;
}

let health t =
  Array.map
    (fun s ->
      let prim = primary_of s in
      let reps =
        Array.map
          (fun r ->
            let docs, unmerged, staleness, wal_bytes, replayed, ro, ro_retry =
              match r.rep_store with
              | Some st ->
                ( Ingest.doc_count st,
                  Ingest.unmerged_records st,
                  Ingest.staleness_ms st,
                  Ingest.wal_bytes st,
                  Ingest.replayed_records st,
                  Ingest.readonly st,
                  Ingest.readonly_retry_after_ms st )
              | None -> (0, 0, 0., 0, 0, false, 0)
            in
            {
              rh_idx = r.rep_idx;
              rh_role = (match prim with Some p when p == r -> Primary | _ -> Follower);
              rh_live = r.rep_store <> None && not r.rep_quarantined;
              rh_quarantined = r.rep_quarantined;
              rh_synced = r.rep_synced && r.rep_pending = [];
              rh_generation = r.rep_generation;
              rh_docs = docs;
              rh_strikes = r.rep_strikes;
              rh_unmerged = unmerged;
              rh_staleness_ms = staleness;
              rh_wal_bytes = wal_bytes;
              rh_replayed = replayed;
              rh_lag = List.length r.rep_pending;
              rh_lag_ms =
                (match r.rep_pending_since_ms with
                | None -> 0.
                | Some ts -> Float.max 0.0 (Monotime.now_ms () -. ts));
              rh_readonly = ro;
              rh_readonly_retry_ms = ro_retry;
              rh_last_error = r.rep_last_error;
            })
          s.replicas
      in
      (* The shard-level line keeps the PR-7 shape, reported from the
         primary's perspective; a shard is live when any replica can
         serve. *)
      let p = prim in
      let docs, unmerged, staleness, wal_bytes, replayed =
        match p with
        | Some r -> (
          match r.rep_store with
          | Some st ->
            ( Ingest.doc_count st,
              Ingest.unmerged_records st,
              Ingest.staleness_ms st,
              Ingest.wal_bytes st,
              Ingest.replayed_records st )
          | None -> (0, 0, 0., 0, 0))
        | None -> (0, 0, 0., 0, 0)
      in
      {
        h_ord = s.ord;
        h_live = p <> None;
        h_quarantined = Array.for_all (fun r -> r.rep_quarantined) s.replicas;
        h_generation = (match p with Some r -> r.rep_generation | None -> s.replicas.(0).rep_generation);
        h_docs = docs;
        h_strikes = Array.fold_left (fun acc r -> acc + r.rep_strikes) 0 s.replicas;
        h_unmerged = unmerged;
        h_staleness_ms = staleness;
        h_wal_bytes = wal_bytes;
        h_replayed = replayed;
        h_last_error = Array.to_list s.replicas |> List.find_map (fun r -> r.rep_last_error);
        h_replicas = reps;
      })
    t.shards

let doc_count t =
  Array.fold_left
    (fun acc s ->
      match primary_of s with
      | Some r -> acc + Ingest.doc_count (Option.get r.rep_store)
      | None -> acc)
    0 t.shards

let ids t = t.order

(* The merged scoring view (any live shard's env: corpus-global stats
   and index), or the empty fallback when every shard is down.  RELAX
   on a sharded server introspects penalty chains against this. *)
let scoring_env t =
  match (Atomic.get t.view).v_planner with Some e -> e | None -> t.fallback_env

(* Write-lane backpressure: the worst backlog across the replica set —
   unmerged WAL records plus any async ship queue — because an acked
   write is not "clear" until every in-sync copy has applied and can
   compact it. *)
let merge_backlog t ord =
  match check_ord t ord with
  | Error _ -> 0
  | Ok s ->
    Array.fold_left
      (fun acc r ->
        let b =
          (match r.rep_store with Some st -> Ingest.unmerged_records st | None -> 0)
          + List.length r.rep_pending
        in
        max acc b)
      0 s.replicas

let staleness_ms t ord =
  match check_ord t ord with
  | Error _ -> 0.
  | Ok s -> (
    match primary_of s with
    | Some r -> Ingest.staleness_ms (Option.get r.rep_store)
    | None -> 0.)

(* True when some replica of the routed shard is inside its read-only
   probation — the server's write path surfaces the hint. *)
let readonly_hint t ord =
  match check_ord t ord with
  | Error _ -> None
  | Ok s -> (
    match primary_of s with
    | Some r ->
      let st = Option.get r.rep_store in
      if Ingest.readonly st then Some (Ingest.readonly_retry_after_ms st) else None
    | None -> None)

(* ------------------------------------------------------------------ *)
(* Scatter-gather query *)

type completeness = Complete | Partial of { reason : string; score_bound : float }

type answer = {
  a_doc : string;  (* document id; [""] only for the synthetic corpus root *)
  a_path : string;  (* doc-relative path, [""] when the answer is the wrapper itself *)
  a_node : int;  (* pre-order id in the combined corpus — the tie-break key *)
  a_sscore : float;
  a_kscore : float;
  a_dropped : int;
}

type shard_status =
  | Served  (** Full per-shard top-K gathered. *)
  | Skipped  (** Exact threshold-algorithm skip: nothing on this shard can enter the top-K. *)
  | Budget of Guard.reason  (** Probe truncated by the shared budget; bound is the engine's. *)
  | Lost of string  (** Probe failed mid-query; bound is [max_total]. *)
  | Down of string  (** Shard was unavailable before the query (load failure / quarantine). *)

type shard_report = {
  r_ord : int;
  r_replica : int;  (* replica that served (or -1: none did) *)
  r_status : shard_status;
  r_bound : float;
  r_found : int;
}

type result = {
  answers : answer list;
  served : int;
  total : int;
  completeness : completeness;
  degraded : bool;
  reports : shard_report list;
  failovers : int;  (* probes retried on another replica this query *)
  relaxations_evaluated : int;
  passes : int;
  restarts : int;
  tuples_produced : int;
}

type Qcache.ext += Cached_result of result

let answer_line a =
  let loc = if a.a_path = "" then a.a_doc else a.a_doc ^ "/" ^ a.a_path in
  let suffix =
    if a.a_dropped = 0 then "  exact"
    else Printf.sprintf "  (%d predicates relaxed)" a.a_dropped
  in
  Printf.sprintf "%s  ss=%.4f ks=%.4f%s" loc a.a_sscore a.a_kscore suffix

let result_cost r =
  256
  + List.fold_left
      (fun acc a -> acc + 96 + String.length a.a_doc + String.length a.a_path)
      0 r.answers
  + (64 * List.length r.reports)

let budget_class = function
  | None -> "-"
  | Some (b : Guard.budget) ->
    let f = function None -> "-" | Some x -> Printf.sprintf "%g" x in
    let i = function None -> "-" | Some x -> string_of_int x in
    Printf.sprintf "%s,%s,%s,%s" (f b.Guard.deadline_ms) (i b.Guard.tuple_budget)
      (i b.Guard.step_budget) (i b.Guard.restart_cap)

(* The answer key embeds the full per-shard generation vector: any
   write to, loss of, or recovery of {e any} shard changes the vector
   and therefore misses — a cached merged answer can never outlive a
   change to one of the shards it was gathered from. *)
let answer_key t ~algorithm ~scheme ~k ~budget ~executor q =
  Printf.sprintf "%s|%s|k=%d|b=%s|x=%s|g=%s" (algorithm_to_string algorithm)
    (Ranking.to_string scheme) k (budget_class budget)
    (Joins.Exec.executor_to_string executor)
    ((Atomic.get t.view).v_gen_vector)
  ^ "|" ^ Tpq.Query.canonical_key q

let plan_key t ~algorithm ~scheme q =
  Printf.sprintf "%s|%s|g=%s|%s" (algorithm_to_string algorithm) (Ranking.to_string scheme)
    ((Atomic.get t.view).v_gen_vector)
    (Tpq.Query.canonical_key q)

let cacheable r =
  (match r.completeness with Complete -> true | Partial _ -> false)
  && (not r.degraded) && r.served = r.total

let find_span spans node =
  let lo = ref 0 and hi = ref (Array.length spans - 1) in
  let found = ref None in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if spans.(mid).d_wrapper <= node then begin
      found := Some spans.(mid);
      lo := mid + 1
    end
    else hi := mid - 1
  done;
  match !found with Some sp when node < sp.d_end -> Some sp | _ -> None

(* "fx-corpus[1]/fx-doc[k]/section[2]/p[1]" -> "section[2]/p[1]" *)
let doc_relative full =
  match String.index_opt full '/' with
  | None -> ""
  | Some i -> (
    match String.index_from_opt full (i + 1) '/' with
    | None -> ""
    | Some j -> String.sub full (j + 1) (String.length full - j - 1))

let run_algo algorithm ~guard ~plan ~floor ~executor env ~scheme ~k q =
  match algorithm with
  | DPO -> Dpo.run ~guard ~plan ~floor ~executor env ~scheme ~k q
  | SSO -> Sso.run ~guard ~plan ~floor ~executor env ~scheme ~k q
  | Hybrid -> Hybrid.run ~guard ~plan ~floor ~executor env ~scheme ~k q

let strike t rep reason =
  with_lock t.reg_lock (fun () ->
      rep.rep_strikes <- rep.rep_strikes + 1;
      rep.rep_last_error <- Some reason;
      if rep.rep_strikes >= t.strike_threshold && not rep.rep_quarantined then begin
        rep.rep_quarantined <- true;
        rep.rep_generation <- rep.rep_generation + 1
      end)

let clear_strikes t rep =
  if rep.rep_strikes > 0 then with_lock t.reg_lock (fun () -> rep.rep_strikes <- 0)

let query t ?budget ?(algorithm = Hybrid) ?(scheme = Ranking.Structure_first) ?(use_cache = true)
    ?(executor = Joins.Exec.Auto) ~k q =
  let akey = lazy (answer_key t ~algorithm ~scheme ~k ~budget ~executor q) in
  match
    if use_cache then Qcache.find_ext t.cache (Lazy.force akey) else None
  with
  | Some (Cached_result r) -> Ok r
  | Some _ | None -> (
    let v = Atomic.get t.view in
    let total = Array.length v.v_shards in
    let guard = match budget with None -> Guard.none | Some b -> Guard.start b in
    match v.v_planner with
    | None ->
      (* Every shard is down: vacuously sound — no answers, and no
         answer anywhere could exceed the data-independent maximum. *)
      let penv = Env.penalty_env t.fallback_env q in
      let mt = Common.max_total scheme penv in
      Ok
        {
          answers = [];
          served = 0;
          total;
          completeness = Partial { reason = "shard-loss"; score_bound = mt };
          degraded = false;
          reports =
            Array.to_list v.v_shards
            |> List.map (fun sv ->
                   {
                     r_ord = sv.sv_ord;
                     r_replica = -1;
                     r_status = Down (Option.value sv.sv_error ~default:"down");
                     r_bound = mt;
                     r_found = 0;
                   });
          failovers = 0;
          relaxations_evaluated = 0;
          passes = 0;
          restarts = 0;
          tuples_produced = 0;
        }
    | Some planner -> (
      let eval () =
        let plan =
          let pk = plan_key t ~algorithm ~scheme q in
          match if use_cache then Qcache.find_plan t.cache pk else None with
          | Some p -> p
          | None ->
            let p = Common.build_plan planner q in
            if use_cache then Qcache.store_plan t.cache pk p;
            p
        in
        let mt = Common.max_total scheme plan.Common.penv in
        let locations : (int, string * string) Hashtbl.t = Hashtbl.create 32 in
        let best = ref [] in
        let degraded = ref false in
        let relax = ref 0 and passes = ref 0 and restarts = ref 0 and tuples = ref 0 in
        let failovers = ref 0 in
        let meta_dirty = ref false in
        (* The scatter runs the probes on the corpus's domain pool when
           one was opened (DESIGN.md §4j); every piece of gather state
           — [best], [locations], the counters — then lives under
           [glock], and the floor each probe reads is the running
           global K-th under that same lock.  The floor is a sound
           monotone cutoff, so a probe that reads a momentarily stale
           (lower) floor merely prunes less; the merged top-K stays
           byte-identical to the sequential gather on healthy runs.
           Without a pool [locked] is a direct call and the fold below
           is the original strictly sequential scatter. *)
        let glock = Mutex.create () in
        let locked : 'a. (unit -> 'a) -> 'a =
         fun f -> match t.pool with None -> f () | Some _ -> with_lock glock f
        in
        let floor_fn () =
          locked (fun () ->
              match Common.kth_total scheme k !best with Some x -> x | None -> neg_infinity)
        in
        let probe sv =
          if Array.length sv.sv_replicas = 0 then
            {
              r_ord = sv.sv_ord;
              r_replica = -1;
              r_status = Down (Option.value sv.sv_error ~default:"down");
              r_bound = mt;
              r_found = 0;
            }
          else begin
            (* Exact threshold-algorithm cutoff, tie-breaks
               included: an unprobed shard's best conceivable
               answer is (score = max_total, node = its smallest
               global id).  Once the K-th gathered answer
               reaches max_total AND out-ranks that node on the
               deterministic tie-break, nothing on this shard
               can displace the top-K — so skipping keeps the
               merge byte-identical to the unsharded corpus.
               (An empty shard is skipped outright.) *)
            let skip_exact () =
              Array.length sv.sv_spans = 0
              || locked (fun () ->
                     match List.nth_opt !best (k - 1) with
                     | Some kth ->
                       Ranking.total scheme (Answer.score kth) >= mt
                       && kth.Answer.node < sv.sv_spans.(0).d_base
                     | None -> false)
            in
            if skip_exact () then
              {
                r_ord = sv.sv_ord;
                r_replica = -1;
                r_status = Skipped;
                r_bound = neg_infinity;
                r_found = 0;
              }
            else begin
              (* Failover walk down the replica set: every usable
                 replica is value-identical, so retrying the probe on
                 the next one — under the same guard, against the same
                 spans — reproduces the answer the first would have
                 given.  Only when the last replica dies too does the
                 shard report [Lost]: the R-failures-out-of-R floor. *)
              let n_reps = Array.length sv.sv_replicas in
              let rec attempt i last_reason =
                if i >= n_reps then begin
                  locked (fun () -> meta_dirty := true);
                  {
                    r_ord = sv.sv_ord;
                    r_replica = -1;
                    r_status = Lost last_reason;
                    r_bound = mt;
                    r_found = 0;
                  }
                end
                else begin
                  let rep_idx, senv = sv.sv_replicas.(i) in
                  match
                    Failpoint.hit "shard_probe";
                    run_algo algorithm ~guard ~plan ~floor:floor_fn ~executor senv ~scheme ~k q
                  with
                  | r ->
                    let doc = senv.Env.doc in
                    locked (fun () ->
                        let mapped =
                          List.map
                            (fun (a : Answer.t) ->
                              match find_span sv.sv_spans a.Answer.node with
                              | Some sp ->
                                let g = sp.d_base + (a.Answer.node - sp.d_wrapper) in
                                Hashtbl.replace locations g
                                  ( sp.d_id,
                                    doc_relative (Xmldom.Doc.path_to_root doc a.Answer.node) );
                                { a with Answer.node = g }
                              | None ->
                                (* the synthetic corpus root; queries are not
                                   expected to target it, but map it stably *)
                                Hashtbl.replace locations 0 ("", Ingest.corpus_tag);
                                { a with Answer.node = 0 })
                            r.Common.answers
                        in
                        best := Answer.sort_and_truncate scheme k (mapped @ !best);
                        relax := !relax + r.Common.relaxations_evaluated;
                        passes := !passes + r.Common.passes;
                        restarts := !restarts + r.Common.restarts;
                        tuples := !tuples + r.Common.metrics.Joins.Exec.tuples_produced;
                        degraded := !degraded || r.Common.degraded);
                    let status, bound =
                      match r.Common.completeness with
                      | Common.Complete ->
                        clear_strikes t t.shards.(sv.sv_ord).replicas.(rep_idx);
                        (Served, neg_infinity)
                      | Common.Truncated { reason; score_bound } -> (Budget reason, score_bound)
                    in
                    {
                      r_ord = sv.sv_ord;
                      r_replica = rep_idx;
                      r_status = status;
                      r_bound = bound;
                      r_found = List.length r.Common.answers;
                    }
                  | exception (Joins.Exec.Capacity_exceeded _ as e) -> raise e
                  | exception e ->
                    let reason =
                      match e with
                      | Failpoint.Injected p -> "fault: " ^ p
                      | e -> Printexc.to_string e
                    in
                    strike t t.shards.(sv.sv_ord).replicas.(rep_idx) reason;
                    if i + 1 < n_reps then locked (fun () -> incr failovers);
                    attempt (i + 1) reason
                end
              in
              attempt 0 "down"
            end
          end
        in
        let n_shards = Array.length v.v_shards in
        let report_slots = Array.make n_shards None in
        let work i = report_slots.(i) <- Some (probe v.v_shards.(i)) in
        (match t.pool with
        | None -> for i = 0 to n_shards - 1 do work i done
        | Some pool ->
          (* A probe that raises (only [Capacity_exceeded] escapes the
             per-shard handler) is re-raised here after the full join,
             so no probe is still touching the gather state when the
             exception propagates. *)
          Taskpool.run pool (List.init n_shards (fun i () -> work i)));
        let reports = Array.to_list report_slots |> List.filter_map Fun.id in
        if !meta_dirty then with_lock t.reg_lock (fun () -> publish t);
        let served =
          List.length
            (List.filter
               (fun r -> match r.r_status with Served | Skipped | Budget _ -> true | _ -> false)
               reports)
        in
        let bound =
          List.fold_left
            (fun acc r ->
              match r.r_status with
              | Served | Skipped -> acc
              | Budget _ | Lost _ | Down _ -> Float.max acc r.r_bound)
            neg_infinity reports
        in
        let any_loss =
          List.exists (fun r -> match r.r_status with Lost _ | Down _ -> true | _ -> false) reports
        in
        let first_budget =
          List.find_map
            (fun r -> match r.r_status with Budget reason -> Some reason | _ -> None)
            reports
        in
        let completeness =
          if any_loss then Partial { reason = "shard-loss"; score_bound = bound }
          else
            match first_budget with
            | Some reason ->
              Partial { reason = Guard.reason_to_string reason; score_bound = bound }
            | None -> Complete
        in
        let answers =
          List.map
            (fun (a : Answer.t) ->
              let doc_id, path =
                match Hashtbl.find_opt locations a.Answer.node with
                | Some loc -> loc
                | None -> ("", "?")
              in
              {
                a_doc = doc_id;
                a_path = path;
                a_node = a.Answer.node;
                a_sscore = a.Answer.sscore;
                a_kscore = a.Answer.kscore;
                a_dropped = a.Answer.dropped_predicates;
              })
            !best
        in
        {
          answers;
          served;
          total;
          completeness;
          degraded = !degraded;
          reports;
          failovers = !failovers;
          relaxations_evaluated = !relax;
          passes = !passes;
          restarts = !restarts;
          tuples_produced = !tuples;
        }
      in
      match eval () with
      | r ->
        if use_cache && cacheable r then
          Qcache.store_ext t.cache (Lazy.force akey) (Cached_result r) ~size:(result_cost r);
        Ok r
      | exception Joins.Exec.Capacity_exceeded { what; limit; actual } ->
        Error (Error.Capacity { what; limit; actual })
      | exception Failpoint.Injected point -> Error (Error.Fault point)))

let cache_counters t = Qcache.counters t.cache
