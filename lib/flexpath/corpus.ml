(* Fault-isolated sharded corpus (DESIGN.md §4i).

   N independent WAL-backed stores — one failure domain each — served
   as one logical corpus.  Documents route to shards by a stable hash
   of their id; each shard keeps its own snapshot, WAL, generation
   counter and strike record, so corruption, a mid-query fault or a
   quarantine on one shard never touches the other N−1.

   Queries scatter over the live shards and gather per-shard top-K
   lists into a global top-K.  Scoring is corpus-global even though
   evaluation is per-shard: every probe runs against a scoring view
   whose statistics ({!Stats.merged}) and term frequencies
   ({!Fulltext.Index.overlay_of}) are merged across the live shards,
   so a score computed inside shard 3 equals the score the same node
   would get in one combined environment — which is what makes the
   per-shard top-K lists mergeable and the healthy N-shard answer
   byte-identical to a single-shard corpus.

   The gather is a threshold-algorithm cutoff: the running global
   K-th score is handed to each probe as its [floor], truncating that
   probe's relaxation-chain walk as soon as no unseen answer can beat
   it, and a shard is skipped outright (exactly — skipping is not a
   partial answer) once the gathered K-th answer reaches
   {!Common.max_total} and wins the node-id tie-break against
   anything the shard could hold.

   A shard that cannot answer — corrupt at load, lost mid-query,
   over budget, or quarantined after repeated losses — contributes a
   sound bound on what its unreported answers could have scored
   instead of an error: budget trips report the engine's own
   truncation bound; a lost or down shard reports [max_total], which
   depends only on the query's predicate weights and so needs no data
   from the lost shard.  The merged result is then [Partial] with
   [served]/[total] attribution. *)

type algorithm = DPO | SSO | Hybrid

let algorithm_to_string = function DPO -> "dpo" | SSO -> "sso" | Hybrid -> "hybrid"

let default_strike_threshold = 3

(* ------------------------------------------------------------------ *)
(* Routing: FNV-1a over the document id.  Stable across runs and
   builds, so a restarted corpus re-derives the same placement from
   ids alone — no routing table needs to be persisted. *)

let fnv1a id =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193 land 0xffffffff)
    id;
  !h

let route ~shards id = fnv1a id mod shards

(* ------------------------------------------------------------------ *)
(* State *)

type shard = {
  ord : int;
  snapshot_path : string;
  wal_path : string;
  wlock : Mutex.t;  (* serializes writers (ingest/delete/merge/reload) *)
  mutable store : Ingest.store option;  (* [None] while the shard is down *)
  mutable generation : int;
  mutable strikes : int;
  mutable quarantined : bool;
  mutable last_error : string option;
}

(* One ingested document inside a shard view: its wrapper element, its
   subtree span, and the pre-order id its wrapper would have in the
   single combined corpus ([d_base], assigned from the corpus-level
   arrival order).  [d_base] is what makes cross-shard tie-breaks —
   and therefore merged output — identical to the unsharded corpus. *)
type doc_span = {
  d_id : string;
  d_wrapper : int;
  d_end : int;  (* one past the last pre-order id of the wrapper subtree *)
  mutable d_base : int;
}

type shard_view = {
  sv_ord : int;
  sv_env : Env.t option;  (* scoring view (overlay + merged stats); [None] when down *)
  sv_spans : doc_span array;  (* ascending by wrapper id *)
  sv_error : string option;
}

type view = {
  v_shards : shard_view array;
  v_gen_vector : string;
      (* one component per shard, "<generation>" or "<generation>!"
         when down/quarantined — the full cache-key scope *)
  v_planner : Env.t option;  (* any live scoring env; plans built here serve every shard *)
}

type t = {
  shards : shard array;
  reg_lock : Mutex.t;
      (* protects [order], [next_auto], shard meta fields and view
         publication; never held while waiting on a [wlock] *)
  mutable order : string list;  (* global arrival order, oldest first *)
  mutable next_auto : int;
  strike_threshold : int;
  view : view Atomic.t;
  cache : Qcache.t;
  fallback_env : Env.t;  (* empty corpus env: bounds when every shard is down *)
  pool : Taskpool.t option;
      (* probe parallelism for the scatter; [None] keeps the original
         strictly sequential per-shard fold *)
  reopen : snapshot:string -> wal:string -> (Ingest.store, Error.t) Stdlib.result;
      (* opens a shard store with the corpus's own weights, hierarchy,
         scorer and limits — what [reload] must reuse, or a swapped
         shard would score under different parameters *)
}

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let shard_count t = Array.length t.shards
let shard_of_id t id = route ~shards:(Array.length t.shards) id

(* ------------------------------------------------------------------ *)
(* View construction.  Called with [reg_lock] held; readers get the
   published view with one [Atomic.get] and never block. *)

let publish t =
  let live_envs =
    Array.to_list t.shards
    |> List.filter_map (fun s ->
           match s.store with
           | Some st when not s.quarantined -> Some (Ingest.store_env st)
           | _ -> None)
  in
  let scoring_of =
    match live_envs with
    | [] -> fun _ -> None
    | _ ->
      let merged =
        Stats.merged ~root_tag:Ingest.corpus_tag
          (List.map (fun (e : Env.t) -> e.Env.stats) live_envs)
      in
      let ov = Fulltext.Index.overlay_of (List.map (fun (e : Env.t) -> e.Env.index) live_envs) in
      fun (e : Env.t) ->
        Some { e with Env.index = Fulltext.Index.with_overlay e.Env.index ov; stats = merged }
  in
  let span_tbl : (string, doc_span) Hashtbl.t = Hashtbl.create 64 in
  let shard_views =
    Array.map
      (fun s ->
        match s.store with
        | Some st when not s.quarantined ->
          let env = Ingest.store_env st in
          let doc = env.Env.doc in
          let spans =
            Xmldom.Doc.children doc (Xmldom.Doc.root doc)
            |> List.filter_map (fun w ->
                   match Xmldom.Doc.attribute doc w "id" with
                   | Some id ->
                     let sp =
                       { d_id = id; d_wrapper = w; d_end = Xmldom.Doc.subtree_end doc w; d_base = 0 }
                     in
                     Hashtbl.replace span_tbl id sp;
                     Some sp
                   | None -> None)
            |> Array.of_list
          in
          { sv_ord = s.ord; sv_env = scoring_of env; sv_spans = spans; sv_error = None }
        | _ ->
          let err =
            match s.last_error with
            | Some e -> Some e
            | None -> Some (if s.quarantined then "quarantined" else "down")
          in
          { sv_ord = s.ord; sv_env = None; sv_spans = [||]; sv_error = err })
      t.shards
  in
  (* Global wrapper bases follow the corpus-level arrival order, so a
     node's mapped id equals its pre-order id in the single combined
     document; ids living on down shards are skipped (their absence is
     exactly what [Partial] reports). *)
  let base = ref 1 in
  List.iter
    (fun id ->
      match Hashtbl.find_opt span_tbl id with
      | Some sp ->
        sp.d_base <- !base;
        base := !base + (sp.d_end - sp.d_wrapper)
      | None -> ())
    t.order;
  let gen_vector =
    t.shards
    |> Array.map (fun s ->
           let g = string_of_int s.generation in
           match s.store with Some _ when not s.quarantined -> g | _ -> g ^ "!")
    |> Array.to_list |> String.concat "."
  in
  let planner =
    Array.fold_left
      (fun acc sv -> match acc with Some _ -> acc | None -> sv.sv_env)
      None shard_views
  in
  Atomic.set t.view { v_shards = shard_views; v_gen_vector = gen_vector; v_planner = planner }

let generation_vector t = (Atomic.get t.view).v_gen_vector

(* ------------------------------------------------------------------ *)
(* Open / close *)

let auto_seed ids =
  List.fold_left
    (fun acc id ->
      if String.length id > 4 && String.sub id 0 4 = "doc-" then
        match int_of_string_opt (String.sub id 4 (String.length id - 4)) with
        | Some n when n >= acc -> n + 1
        | _ -> acc
      else acc)
    1 ids

let shard_paths ~prefix i =
  (Printf.sprintf "%s.shard%d" prefix i, Printf.sprintf "%s.shard%d.wal" prefix i)

let open_corpus ?weights ?hierarchy ?scorer ?limits
    ?(strike_threshold = default_strike_threshold) ?(probe_domains = 0) ~shards ~prefix () =
  if shards < 1 || shards > 1024 then
    Error
      (Error.Config_error
         { what = "shards"; message = Printf.sprintf "shard count %d outside 1..1024" shards })
  else
    match Result.map Ingest.env (Ingest.empty ?weights ?hierarchy ?scorer ()) with
    | Error e -> Error e
    | Ok fallback_env ->
      let reopen ~snapshot ~wal =
        Ingest.open_store ?weights ?hierarchy ?scorer ?limits ~snapshot ~wal ()
      in
      let shard_arr =
        Array.init shards (fun i ->
            let snapshot_path, wal_path = shard_paths ~prefix i in
            let shard =
              {
                ord = i;
                snapshot_path;
                wal_path;
                wlock = Mutex.create ();
                store = None;
                generation = 0;
                strikes = 0;
                quarantined = false;
                last_error = None;
              }
            in
            (* Fault isolation starts at load: a shard whose snapshot
               fails its integrity checks opens [Down] with the error
               recorded — the other shards still serve. *)
            (match reopen ~snapshot:snapshot_path ~wal:wal_path with
            | Ok st -> shard.store <- Some st
            | Error e -> shard.last_error <- Some (Error.to_string e));
            shard)
      in
      let order =
        Array.to_list shard_arr
        |> List.concat_map (fun s ->
               match s.store with Some st -> Ingest.store_ids st | None -> [])
      in
      let t =
        {
          shards = shard_arr;
          reg_lock = Mutex.create ();
          order;
          next_auto = auto_seed order;
          strike_threshold;
          view = Atomic.make { v_shards = [||]; v_gen_vector = ""; v_planner = None };
          cache = Qcache.create ();
          fallback_env;
          pool =
            (* A pool only helps when more than one shard can be probed
               at once; below that the sequential fold is strictly
               cheaper.  The cap keeps a many-shard corpus from
               spawning more domains than probes it can overlap. *)
            (if probe_domains > 0 && shards > 1 then
               Some (Taskpool.create ~domains:(min probe_domains (shards - 1)))
             else None);
          reopen;
        }
      in
      with_lock t.reg_lock (fun () -> publish t);
      Ok t

let close t =
  (match t.pool with Some pool -> Taskpool.shutdown pool | None -> ());
  Array.iter
    (fun s ->
      with_lock s.wlock (fun () ->
          match s.store with
          | Some st ->
            Ingest.close st;
            s.store <- None
          | None -> ()))
    t.shards

let probe_parallelism t = match t.pool with Some p -> Taskpool.size p + 1 | None -> 1

(* ------------------------------------------------------------------ *)
(* Writes: route, apply under the shard's writer lock, publish. *)

let unavailable s =
  let reason = if s.quarantined then "quarantined" else "down" in
  Error.Io_error
    { path = s.snapshot_path; message = Printf.sprintf "shard %d is %s" s.ord reason }

let note_arrival t id =
  t.order <- List.filter (fun existing -> not (String.equal existing id)) t.order @ [ id ]

let ingest t ?id body =
  let id =
    match id with
    | Some id -> id
    | None ->
      with_lock t.reg_lock (fun () ->
          let n = t.next_auto in
          t.next_auto <- n + 1;
          Printf.sprintf "doc-%d" n)
  in
  let s = t.shards.(shard_of_id t id) in
  with_lock s.wlock (fun () ->
      match s.store with
      | None -> Error (unavailable s)
      | Some _ when s.quarantined -> Error (unavailable s)
      | Some st -> (
        match Ingest.ingest st ~id body with
        | Error e -> Error e
        | Ok id ->
          with_lock t.reg_lock (fun () ->
              s.generation <- s.generation + 1;
              note_arrival t id;
              publish t);
          Ok id))

let delete t ~id =
  let s = t.shards.(shard_of_id t id) in
  with_lock s.wlock (fun () ->
      match s.store with
      | None -> Error (unavailable s)
      | Some _ when s.quarantined -> Error (unavailable s)
      | Some st -> (
        match Ingest.delete st ~id with
        | Error e -> Error e
        | Ok () ->
          with_lock t.reg_lock (fun () ->
              s.generation <- s.generation + 1;
              t.order <- List.filter (fun existing -> not (String.equal existing id)) t.order;
              publish t);
          Ok ()))

let check_ord t ord =
  if ord < 0 || ord >= Array.length t.shards then
    Error
      (Error.Config_error
         { what = "shard"; message = Printf.sprintf "shard %d outside 0..%d" ord (Array.length t.shards - 1) })
  else Ok t.shards.(ord)

let merge t ord =
  match check_ord t ord with
  | Error e -> Error e
  | Ok s ->
    with_lock s.wlock (fun () ->
        match s.store with
        | None -> Error (unavailable s)
        | Some st -> (
          match Ingest.merge st with
          | Ok () -> Ok ()
          | Error e ->
            (* A failed merge leaves snapshot+WAL intact and the shard
               serving; record it for SHARDS without striking. *)
            with_lock t.reg_lock (fun () -> s.last_error <- Some (Error.to_string e));
            Error e))

let reload t ord =
  match check_ord t ord with
  | Error e -> Error e
  | Ok s ->
    with_lock s.wlock (fun () ->
        (match s.store with
        | Some st ->
          Ingest.close st;
          s.store <- None
        | None -> ());
        match t.reopen ~snapshot:s.snapshot_path ~wal:s.wal_path with
        | Ok st ->
          with_lock t.reg_lock (fun () ->
              s.store <- Some st;
              s.generation <- s.generation + 1;
              s.strikes <- 0;
              s.quarantined <- false;
              s.last_error <- None;
              (* Reconcile the arrival order with what the shard
                 actually recovered: surviving documents keep their
                 global position — so tie-breaks, and therefore
                 answers, are unchanged by a reload that recovers the
                 same documents — ids the reopened shard no longer
                 holds drop out, and genuinely new (WAL-recovered) ids
                 append. *)
              let recovered = Ingest.store_ids st in
              let keep id =
                shard_of_id t id <> ord || List.exists (String.equal id) recovered
              in
              let fresh =
                List.filter
                  (fun id -> not (List.exists (String.equal id) t.order))
                  recovered
              in
              t.order <- List.filter keep t.order @ fresh;
              t.next_auto <- max t.next_auto (auto_seed t.order);
              publish t);
          Ok ()
        | Error e ->
          with_lock t.reg_lock (fun () ->
              s.generation <- s.generation + 1;
              s.last_error <- Some (Error.to_string e);
              publish t);
          Error e)

(* ------------------------------------------------------------------ *)
(* Health *)

type shard_health = {
  h_ord : int;
  h_live : bool;
  h_quarantined : bool;
  h_generation : int;
  h_docs : int;
  h_strikes : int;
  h_unmerged : int;
  h_staleness_ms : float;
  h_wal_bytes : int;
  h_replayed : int;
  h_last_error : string option;
}

let health t =
  Array.map
    (fun s ->
      let docs, unmerged, staleness, wal_bytes, replayed =
        match s.store with
        | Some st ->
          ( Ingest.doc_count st,
            Ingest.unmerged_records st,
            Ingest.staleness_ms st,
            Ingest.wal_bytes st,
            Ingest.replayed_records st )
        | None -> (0, 0, 0., 0, 0)
      in
      {
        h_ord = s.ord;
        h_live = (s.store <> None && not s.quarantined);
        h_quarantined = s.quarantined;
        h_generation = s.generation;
        h_docs = docs;
        h_strikes = s.strikes;
        h_unmerged = unmerged;
        h_staleness_ms = staleness;
        h_wal_bytes = wal_bytes;
        h_replayed = replayed;
        h_last_error = s.last_error;
      })
    t.shards

let doc_count t =
  Array.fold_left
    (fun acc s -> match s.store with Some st -> acc + Ingest.doc_count st | None -> acc)
    0 t.shards

let ids t = t.order

(* The merged scoring view (any live shard's env: corpus-global stats
   and index), or the empty fallback when every shard is down.  RELAX
   on a sharded server introspects penalty chains against this. *)
let scoring_env t =
  match (Atomic.get t.view).v_planner with Some e -> e | None -> t.fallback_env

let merge_backlog t ord =
  match check_ord t ord with
  | Error _ -> 0
  | Ok s -> ( match s.store with Some st -> Ingest.unmerged_records st | None -> 0)

let staleness_ms t ord =
  match check_ord t ord with
  | Error _ -> 0.
  | Ok s -> ( match s.store with Some st -> Ingest.staleness_ms st | None -> 0.)

(* ------------------------------------------------------------------ *)
(* Scatter-gather query *)

type completeness = Complete | Partial of { reason : string; score_bound : float }

type answer = {
  a_doc : string;  (* document id; [""] only for the synthetic corpus root *)
  a_path : string;  (* doc-relative path, [""] when the answer is the wrapper itself *)
  a_node : int;  (* pre-order id in the combined corpus — the tie-break key *)
  a_sscore : float;
  a_kscore : float;
  a_dropped : int;
}

type shard_status =
  | Served  (** Full per-shard top-K gathered. *)
  | Skipped  (** Exact threshold-algorithm skip: nothing on this shard can enter the top-K. *)
  | Budget of Guard.reason  (** Probe truncated by the shared budget; bound is the engine's. *)
  | Lost of string  (** Probe failed mid-query; bound is [max_total]. *)
  | Down of string  (** Shard was unavailable before the query (load failure / quarantine). *)

type shard_report = { r_ord : int; r_status : shard_status; r_bound : float; r_found : int }

type result = {
  answers : answer list;
  served : int;
  total : int;
  completeness : completeness;
  degraded : bool;
  reports : shard_report list;
  relaxations_evaluated : int;
  passes : int;
  restarts : int;
  tuples_produced : int;
}

type Qcache.ext += Cached_result of result

let answer_line a =
  let loc = if a.a_path = "" then a.a_doc else a.a_doc ^ "/" ^ a.a_path in
  let suffix =
    if a.a_dropped = 0 then "  exact"
    else Printf.sprintf "  (%d predicates relaxed)" a.a_dropped
  in
  Printf.sprintf "%s  ss=%.4f ks=%.4f%s" loc a.a_sscore a.a_kscore suffix

let result_cost r =
  256
  + List.fold_left
      (fun acc a -> acc + 96 + String.length a.a_doc + String.length a.a_path)
      0 r.answers
  + (64 * List.length r.reports)

let budget_class = function
  | None -> "-"
  | Some (b : Guard.budget) ->
    let f = function None -> "-" | Some x -> Printf.sprintf "%g" x in
    let i = function None -> "-" | Some x -> string_of_int x in
    Printf.sprintf "%s,%s,%s,%s" (f b.Guard.deadline_ms) (i b.Guard.tuple_budget)
      (i b.Guard.step_budget) (i b.Guard.restart_cap)

(* The answer key embeds the full per-shard generation vector: any
   write to, loss of, or recovery of {e any} shard changes the vector
   and therefore misses — a cached merged answer can never outlive a
   change to one of the shards it was gathered from. *)
let answer_key t ~algorithm ~scheme ~k ~budget ~executor q =
  Printf.sprintf "%s|%s|k=%d|b=%s|x=%s|g=%s" (algorithm_to_string algorithm)
    (Ranking.to_string scheme) k (budget_class budget)
    (Joins.Exec.executor_to_string executor)
    ((Atomic.get t.view).v_gen_vector)
  ^ "|" ^ Tpq.Query.canonical_key q

let plan_key t ~algorithm ~scheme q =
  Printf.sprintf "%s|%s|g=%s|%s" (algorithm_to_string algorithm) (Ranking.to_string scheme)
    ((Atomic.get t.view).v_gen_vector)
    (Tpq.Query.canonical_key q)

let cacheable r =
  (match r.completeness with Complete -> true | Partial _ -> false)
  && (not r.degraded) && r.served = r.total

let find_span spans node =
  let lo = ref 0 and hi = ref (Array.length spans - 1) in
  let found = ref None in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if spans.(mid).d_wrapper <= node then begin
      found := Some spans.(mid);
      lo := mid + 1
    end
    else hi := mid - 1
  done;
  match !found with Some sp when node < sp.d_end -> Some sp | _ -> None

(* "fx-corpus[1]/fx-doc[k]/section[2]/p[1]" -> "section[2]/p[1]" *)
let doc_relative full =
  match String.index_opt full '/' with
  | None -> ""
  | Some i -> (
    match String.index_from_opt full (i + 1) '/' with
    | None -> ""
    | Some j -> String.sub full (j + 1) (String.length full - j - 1))

let run_algo algorithm ~guard ~plan ~floor ~executor env ~scheme ~k q =
  match algorithm with
  | DPO -> Dpo.run ~guard ~plan ~floor ~executor env ~scheme ~k q
  | SSO -> Sso.run ~guard ~plan ~floor ~executor env ~scheme ~k q
  | Hybrid -> Hybrid.run ~guard ~plan ~floor ~executor env ~scheme ~k q

let strike t s reason =
  with_lock t.reg_lock (fun () ->
      s.strikes <- s.strikes + 1;
      s.last_error <- Some reason;
      if s.strikes >= t.strike_threshold && not s.quarantined then begin
        s.quarantined <- true;
        s.generation <- s.generation + 1
      end)

let clear_strikes t s =
  if s.strikes > 0 then with_lock t.reg_lock (fun () -> s.strikes <- 0)

let query t ?budget ?(algorithm = Hybrid) ?(scheme = Ranking.Structure_first) ?(use_cache = true)
    ?(executor = Joins.Exec.Auto) ~k q =
  let akey = lazy (answer_key t ~algorithm ~scheme ~k ~budget ~executor q) in
  match
    if use_cache then Qcache.find_ext t.cache (Lazy.force akey) else None
  with
  | Some (Cached_result r) -> Ok r
  | Some _ | None -> (
    let v = Atomic.get t.view in
    let total = Array.length v.v_shards in
    let guard = match budget with None -> Guard.none | Some b -> Guard.start b in
    match v.v_planner with
    | None ->
      (* Every shard is down: vacuously sound — no answers, and no
         answer anywhere could exceed the data-independent maximum. *)
      let penv = Env.penalty_env t.fallback_env q in
      let mt = Common.max_total scheme penv in
      Ok
        {
          answers = [];
          served = 0;
          total;
          completeness = Partial { reason = "shard-loss"; score_bound = mt };
          degraded = false;
          reports =
            Array.to_list v.v_shards
            |> List.map (fun sv ->
                   {
                     r_ord = sv.sv_ord;
                     r_status = Down (Option.value sv.sv_error ~default:"down");
                     r_bound = mt;
                     r_found = 0;
                   });
          relaxations_evaluated = 0;
          passes = 0;
          restarts = 0;
          tuples_produced = 0;
        }
    | Some planner -> (
      let eval () =
        let plan =
          let pk = plan_key t ~algorithm ~scheme q in
          match if use_cache then Qcache.find_plan t.cache pk else None with
          | Some p -> p
          | None ->
            let p = Common.build_plan planner q in
            if use_cache then Qcache.store_plan t.cache pk p;
            p
        in
        let mt = Common.max_total scheme plan.Common.penv in
        let locations : (int, string * string) Hashtbl.t = Hashtbl.create 32 in
        let best = ref [] in
        let degraded = ref false in
        let relax = ref 0 and passes = ref 0 and restarts = ref 0 and tuples = ref 0 in
        let meta_dirty = ref false in
        (* The scatter runs the probes on the corpus's domain pool when
           one was opened (DESIGN.md §4j); every piece of gather state
           — [best], [locations], the counters — then lives under
           [glock], and the floor each probe reads is the running
           global K-th under that same lock.  The floor is a sound
           monotone cutoff, so a probe that reads a momentarily stale
           (lower) floor merely prunes less; the merged top-K stays
           byte-identical to the sequential gather on healthy runs.
           Without a pool [locked] is a direct call and the fold below
           is the original strictly sequential scatter. *)
        let glock = Mutex.create () in
        let locked : 'a. (unit -> 'a) -> 'a =
         fun f -> match t.pool with None -> f () | Some _ -> with_lock glock f
        in
        let floor_fn () =
          locked (fun () ->
              match Common.kth_total scheme k !best with Some x -> x | None -> neg_infinity)
        in
        let probe sv =
          match sv.sv_env with
          | None ->
            {
              r_ord = sv.sv_ord;
              r_status = Down (Option.value sv.sv_error ~default:"down");
              r_bound = mt;
              r_found = 0;
            }
          | Some senv -> (
            (* Exact threshold-algorithm cutoff, tie-breaks
               included: an unprobed shard's best conceivable
               answer is (score = max_total, node = its smallest
               global id).  Once the K-th gathered answer
               reaches max_total AND out-ranks that node on the
               deterministic tie-break, nothing on this shard
               can displace the top-K — so skipping keeps the
               merge byte-identical to the unsharded corpus.
               (An empty shard is skipped outright.) *)
            let skip_exact () =
              Array.length sv.sv_spans = 0
              || locked (fun () ->
                     match List.nth_opt !best (k - 1) with
                     | Some kth ->
                       Ranking.total scheme (Answer.score kth) >= mt
                       && kth.Answer.node < sv.sv_spans.(0).d_base
                     | None -> false)
            in
            if skip_exact () then
              { r_ord = sv.sv_ord; r_status = Skipped; r_bound = neg_infinity; r_found = 0 }
            else
              match
                Failpoint.hit "shard_probe";
                run_algo algorithm ~guard ~plan ~floor:floor_fn ~executor senv ~scheme ~k q
              with
              | r ->
                let doc = senv.Env.doc in
                locked (fun () ->
                    let mapped =
                      List.map
                        (fun (a : Answer.t) ->
                          match find_span sv.sv_spans a.Answer.node with
                          | Some sp ->
                            let g = sp.d_base + (a.Answer.node - sp.d_wrapper) in
                            Hashtbl.replace locations g
                              (sp.d_id, doc_relative (Xmldom.Doc.path_to_root doc a.Answer.node));
                            { a with Answer.node = g }
                          | None ->
                            (* the synthetic corpus root; queries are not
                               expected to target it, but map it stably *)
                            Hashtbl.replace locations 0 ("", Ingest.corpus_tag);
                            { a with Answer.node = 0 })
                        r.Common.answers
                    in
                    best := Answer.sort_and_truncate scheme k (mapped @ !best);
                    relax := !relax + r.Common.relaxations_evaluated;
                    passes := !passes + r.Common.passes;
                    restarts := !restarts + r.Common.restarts;
                    tuples := !tuples + r.Common.metrics.Joins.Exec.tuples_produced;
                    degraded := !degraded || r.Common.degraded);
                let status, bound =
                  match r.Common.completeness with
                  | Common.Complete ->
                    clear_strikes t t.shards.(sv.sv_ord);
                    (Served, neg_infinity)
                  | Common.Truncated { reason; score_bound } -> (Budget reason, score_bound)
                in
                {
                  r_ord = sv.sv_ord;
                  r_status = status;
                  r_bound = bound;
                  r_found = List.length r.Common.answers;
                }
              | exception (Joins.Exec.Capacity_exceeded _ as e) -> raise e
              | exception e ->
                let reason =
                  match e with
                  | Failpoint.Injected p -> "fault: " ^ p
                  | e -> Printexc.to_string e
                in
                strike t t.shards.(sv.sv_ord) reason;
                locked (fun () -> meta_dirty := true);
                { r_ord = sv.sv_ord; r_status = Lost reason; r_bound = mt; r_found = 0 })
        in
        let n_shards = Array.length v.v_shards in
        let report_slots = Array.make n_shards None in
        let work i = report_slots.(i) <- Some (probe v.v_shards.(i)) in
        (match t.pool with
        | None -> for i = 0 to n_shards - 1 do work i done
        | Some pool ->
          (* A probe that raises (only [Capacity_exceeded] escapes the
             per-shard handler) is re-raised here after the full join,
             so no probe is still touching the gather state when the
             exception propagates. *)
          Taskpool.run pool (List.init n_shards (fun i () -> work i)));
        let reports = Array.to_list report_slots |> List.filter_map Fun.id in
        if !meta_dirty then with_lock t.reg_lock (fun () -> publish t);
        let served =
          List.length
            (List.filter
               (fun r -> match r.r_status with Served | Skipped | Budget _ -> true | _ -> false)
               reports)
        in
        let bound =
          List.fold_left
            (fun acc r ->
              match r.r_status with
              | Served | Skipped -> acc
              | Budget _ | Lost _ | Down _ -> Float.max acc r.r_bound)
            neg_infinity reports
        in
        let any_loss =
          List.exists (fun r -> match r.r_status with Lost _ | Down _ -> true | _ -> false) reports
        in
        let first_budget =
          List.find_map
            (fun r -> match r.r_status with Budget reason -> Some reason | _ -> None)
            reports
        in
        let completeness =
          if any_loss then Partial { reason = "shard-loss"; score_bound = bound }
          else
            match first_budget with
            | Some reason ->
              Partial { reason = Guard.reason_to_string reason; score_bound = bound }
            | None -> Complete
        in
        let answers =
          List.map
            (fun (a : Answer.t) ->
              let doc_id, path =
                match Hashtbl.find_opt locations a.Answer.node with
                | Some loc -> loc
                | None -> ("", "?")
              in
              {
                a_doc = doc_id;
                a_path = path;
                a_node = a.Answer.node;
                a_sscore = a.Answer.sscore;
                a_kscore = a.Answer.kscore;
                a_dropped = a.Answer.dropped_predicates;
              })
            !best
        in
        {
          answers;
          served;
          total;
          completeness;
          degraded = !degraded;
          reports;
          relaxations_evaluated = !relax;
          passes = !passes;
          restarts = !restarts;
          tuples_produced = !tuples;
        }
      in
      match eval () with
      | r ->
        if use_cache && cacheable r then
          Qcache.store_ext t.cache (Lazy.force akey) (Cached_result r) ~size:(result_cost r);
        Ok r
      | exception Joins.Exec.Capacity_exceeded { what; limit; actual } ->
        Error (Error.Capacity { what; limit; actual })
      | exception Failpoint.Injected point -> Error (Error.Fault point)))

let cache_counters t = Qcache.counters t.cache
