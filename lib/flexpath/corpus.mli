(** Fault-isolated sharded corpus (DESIGN.md §4i).

    [N] independent WAL-backed stores ({!Ingest.store}) — one failure
    domain each — served as one logical corpus.  Documents route to
    shards by a stable FNV-1a hash of their id, so a restarted corpus
    re-derives placement from ids alone and no routing table is
    persisted.

    Queries scatter over the live shards and gather the per-shard
    top-K lists into a global top-K.  Every probe runs against a
    {e scoring view} whose statistics and term frequencies are merged
    across the live shards ({!Stats.merged},
    {!Fulltext.Index.overlay_of}), so per-shard scores are
    corpus-global and the healthy N-shard answer is byte-identical to
    a single-shard corpus over the same documents (caveats: phrase and
    window matches never span document boundaries, and cross-shard
    arrival order is reconstructed — not replayed — after a restart).
    The gather is a threshold-algorithm cutoff: the running global
    K-th score floors each probe's relaxation-chain walk, and a shard
    is skipped exactly once the gathered K-th answer reaches
    {!Common.max_total} and wins the node-id tie-break against
    anything the shard could hold.

    A shard that cannot answer — corrupt at load, lost mid-query,
    over budget, or quarantined after {!open_corpus}'s strike
    threshold of repeated losses — contributes a {e sound} score
    bound instead of an error, and the merged result reports
    [Partial] with [served]/[total] attribution.  [max_total] depends
    only on the query's predicate weights, so the bound for a lost
    shard needs no data from it.

    {b Replication} (DESIGN.md §4l).  With [replicas = R] each shard
    is a replica {e set}: R full stores, each with its own snapshot
    and WAL, kept in sync by WAL shipping — the primary's acked
    records are applied through each follower's own WAL+fsync before
    the ack ([Sync]) or queued and drained shortly after ([Async],
    with a bounded-lag gauge).  Probes fail over: a replica that dies
    mid-query is struck and the next in-sync replica retried under
    the same guard, so single-replica loss yields [Complete] answers
    byte-identical to the healthy run; [Partial] remains as the
    R-failures-out-of-R floor and [served]/[total] counts replica
    sets.  A follower that misses a record is excluded from the view
    until catch-up (primary snapshot copy + WAL tail replay —
    {!reload} with [~replica]). *)

type t

type algorithm = DPO | SSO | Hybrid

val algorithm_to_string : algorithm -> string

type ack_mode =
  | Sync  (** Ship to every in-sync follower before the ack returns. *)
  | Async
      (** Queue per follower; drained on the next write, {!ship_pending}
          or {!merge} of the shard.  A lagging follower is excluded
          from the queryable view until drained (its lag is visible in
          {!replica_health}), so failover never serves a stale copy. *)

val ack_mode_to_string : ack_mode -> string

val route : shards:int -> string -> int
(** The routing function itself (FNV-1a mod [shards]); exposed for
    tests that must place a document on a known shard. *)

val open_corpus :
  ?weights:Relax.Penalty.weights ->
  ?hierarchy:Tpq.Hierarchy.t ->
  ?scorer:Fulltext.Scorer.t ->
  ?limits:Ingest.limits ->
  ?strike_threshold:int ->
  ?probe_domains:int ->
  ?replicas:int ->
  ?ack_mode:ack_mode ->
  ?probation_ms:float ->
  shards:int ->
  prefix:string ->
  unit ->
  (t, Error.t) result
(** Open [shards] replica sets of [replicas] (default 1, max 8) stores
    each.  Replica 0 of shard [i] keeps the PR-7 single-copy layout
    [<prefix>.shard<i>] / [<prefix>.shard<i>.wal]; follower [j > 0]
    lives at [<prefix>.shard<i>.r<j>](.wal), so an existing corpus
    reopened with [--replicas R] finds its data as replica 0 and the
    followers catch up.  A replica whose snapshot fails integrity
    checks opens {e down} with the error recorded in its health — the
    rest of the set still serves.  At open the replica with the
    largest recovered acked set is the sync reference; live replicas
    that differ are out-of-sync until caught up ({!reload}).
    [strike_threshold] (default 3) is the number of mid-query losses
    after which a {e replica} is quarantined until {!reload}.
    [probe_domains > 0] opens a {!Taskpool} of that many domains
    (capped at [shards - 1]) and {!query} scatters its shard probes
    across them plus the calling domain; the default [0] keeps the
    scatter strictly sequential.  Healthy merged answers are
    byte-identical either way — the threshold-algorithm floor is a
    sound monotone cutoff, so a concurrently-read stale floor only
    reduces pruning.  [probation_ms] scopes each store's read-only
    degrade ({!Ingest}). *)

val close : t -> unit

val shard_count : t -> int
val replica_count : t -> int
val ack_mode : t -> ack_mode
val shard_of_id : t -> string -> int
val doc_count : t -> int

val probe_parallelism : t -> int
(** How many shard probes one query can run at once ([pool domains +
    1] for the caller; [1] means the sequential scatter). *)

val ids : t -> string list
(** Document ids in global arrival order (upserts move to the end). *)

val generation_vector : t -> string
(** One ['.']-joined component per shard, each a [':']-joined component
    per replica — ["<generation>"], or ["<generation>!"] for a down,
    quarantined or out-of-sync replica.  At [R = 1] this is exactly the
    PR-7 per-shard format.  Scopes every cache key. *)

(** {2 Writes} *)

val ingest : t -> ?id:string -> string -> (string, Error.t) result
(** Route (auto-assigning [doc-N] when [id] is omitted), apply to the
    routed shard's primary under the shard's writer lock with the
    durability contract of {!Ingest.ingest}, ship the acked record to
    the in-sync followers (per {!ack_mode}), and publish a new view.
    A follower whose ship fails is marked out-of-sync — the ack
    stands on the surviving copies.  [Io_error] when the whole
    replica set is down or quarantined; [Error.Readonly] when the
    primary's store is inside its read-only probation. *)

val delete : t -> id:string -> (unit, Error.t) result

val ship_pending : t -> int -> unit
(** Drain one shard's async ship queues outside a write (the server's
    merge-loop tick calls this).  No-op in [Sync] mode or when nothing
    is queued. *)

val merge : t -> int -> (unit, Error.t) result
(** Durable compaction of one shard's replica set ({!Ingest.merge} on
    the primary, then each in-sync follower — every copy's own
    snapshot must keep pace or its WAL grows without bound); shards
    merge independently, so one shard's backlog never blocks
    another's.  Drains async queues first. *)

val reload : t -> ?replica:int -> int -> (unit, Error.t) result
(** [reload t ord] swaps shard [ord]'s whole replica set for its
    on-disk state: each replica closes and reopens from its own
    snapshot + WAL (with the corpus's own weights, hierarchy and
    limits), the largest recovered acked set becomes the sync
    reference, stragglers catch up from it, strikes and quarantine
    clear, and a new view publishes.  In-flight queries keep the
    previous immutable view and are never dropped.  Documents the
    reference recovers keep their place in the global arrival order —
    tie-breaks, and therefore answers, are unchanged by a reload that
    recovers the same documents; ids it no longer holds drop out and
    newly recovered ones append.

    [reload t ~replica:j ord] addresses one replica: if a distinct
    primary is live the replica {e catches up} — the primary's
    snapshot and WAL files are copied over and reopened, i.e. a real
    snapshot copy + WAL tail replay to the primary's acked set (the
    recovery path for a torn follower WAL or a quarantined replica);
    otherwise it reopens from its own files. *)

val merge_backlog : t -> int -> int
(** Worst backlog across one shard's replica set — unmerged WAL
    records plus queued async ships — the write-lane backpressure
    signal ([retry-after] hints reflect the {e routed} shard's replica
    set, not a global queue). *)

val staleness_ms : t -> int -> float

val readonly_hint : t -> int -> int option
(** [Some retry_after_ms] when the routed shard's primary store is
    inside its read-only probation ({!Ingest.readonly}) — what the
    server turns into a [READONLY] wire response. *)

(** {2 Health} *)

type replica_role = Primary | Follower

val role_to_string : replica_role -> string

type replica_health = {
  rh_idx : int;
  rh_role : replica_role;  (** [Primary] is the first usable replica. *)
  rh_live : bool;
  rh_quarantined : bool;
  rh_synced : bool;  (** Holds exactly the primary's acked set. *)
  rh_generation : int;
  rh_docs : int;
  rh_strikes : int;
  rh_unmerged : int;
  rh_staleness_ms : float;
  rh_wal_bytes : int;
  rh_replayed : int;
  rh_lag : int;  (** Queued-but-unapplied shipped records (async). *)
  rh_lag_ms : float;  (** Age of the oldest queued record. *)
  rh_readonly : bool;  (** Store inside (or awaiting re-probe of) its read-only degrade. *)
  rh_readonly_retry_ms : int;
  rh_last_error : string option;
}

type shard_health = {
  h_ord : int;
  h_live : bool;  (** Some replica can serve. *)
  h_quarantined : bool;  (** Every replica is quarantined. *)
  h_generation : int;
  h_docs : int;
  h_strikes : int;  (** Summed over the replica set. *)
  h_unmerged : int;
  h_staleness_ms : float;
  h_wal_bytes : int;
  h_replayed : int;  (** WAL records replayed when the primary last opened. *)
  h_last_error : string option;
  h_replicas : replica_health array;  (** Per-replica detail, index order. *)
}

val health : t -> shard_health array

val scoring_env : t -> Env.t
(** The merged scoring view — any live shard's environment, whose
    statistics and term frequencies span the whole live corpus — or
    the empty fallback when every shard is down.  Penalty chains
    introspected against it (server [RELAX]) match what {!query}
    scores with. *)

(** {2 Scatter-gather query} *)

type completeness =
  | Complete  (** Every shard fully accounted for: the true global top-K. *)
  | Partial of { reason : string; score_bound : float }
      (** Some shard contributed a bound instead of answers ([reason =
          "shard-loss"]) or a probe was budget-truncated ([reason] the
          guard's).  No unreported answer can score above
          [score_bound] on the scheme's primary key. *)

type answer = {
  a_doc : string;  (** Document id; [""] only for the synthetic corpus root. *)
  a_path : string;  (** Doc-relative path; [""] when the answer is the document itself. *)
  a_node : int;  (** Pre-order id in the combined corpus — the deterministic tie-break. *)
  a_sscore : float;
  a_kscore : float;
  a_dropped : int;
}

type shard_status =
  | Served
  | Skipped
      (** Exact threshold-algorithm skip: nothing on this shard could
          enter the top-K.  Counts as served. *)
  | Budget of Guard.reason
      (** The shared guard tripped.  Budget truncation does {e not}
          fail over: the guard spans the whole scatter, so a retry on
          a value-identical replica would truncate identically. *)
  | Lost of string
      (** Every replica of the set failed mid-query; each was struck.
          With [R > 1] a single replica loss is absorbed by failover
          and reports [Served] instead. *)
  | Down of string  (** No replica was available before the query began. *)

type shard_report = {
  r_ord : int;
  r_replica : int;  (** Replica that served ([-1] when none did). *)
  r_status : shard_status;
  r_bound : float;
  r_found : int;
}

type result = {
  answers : answer list;
  served : int;
      (** Replica {e sets} fully or partially accounted for
          ([Served]/[Skipped]/[Budget]); [total] counts sets, not
          copies. *)
  total : int;
  completeness : completeness;
  degraded : bool;
  reports : shard_report list;
  failovers : int;  (** Probes retried on another replica during this query. *)
  relaxations_evaluated : int;
  passes : int;
  restarts : int;
  tuples_produced : int;
}

type Qcache.ext += Cached_result of result

val query :
  t ->
  ?budget:Guard.budget ->
  ?algorithm:algorithm ->
  ?scheme:Ranking.scheme ->
  ?use_cache:bool ->
  ?executor:Joins.Exec.executor ->
  k:int ->
  Tpq.Query.t ->
  (result, Error.t) Stdlib.result
(** One guard governs the whole scatter (the deadline and tuple budget
    span all probes).  Answer- and plan-tier cache keys embed the full
    generation vector, so any write to, loss of, or recovery of any
    shard invalidates them; only [Complete], non-degraded, fully
    served results are cached.  [executor] selects the physical join
    operator used by every probe (default [Auto]); merged results are
    byte-identical across executors. *)

val answer_line : answer -> string
(** ["<doc-id>/<relpath>  ss=... ks=...  exact"] — the wire rendering,
    shared by server and tests so equivalence checks are byte-level. *)

val cache_counters : t -> Qcache.counters
