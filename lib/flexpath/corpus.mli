(** Fault-isolated sharded corpus (DESIGN.md §4i).

    [N] independent WAL-backed stores ({!Ingest.store}) — one failure
    domain each — served as one logical corpus.  Documents route to
    shards by a stable FNV-1a hash of their id, so a restarted corpus
    re-derives placement from ids alone and no routing table is
    persisted.

    Queries scatter over the live shards and gather the per-shard
    top-K lists into a global top-K.  Every probe runs against a
    {e scoring view} whose statistics and term frequencies are merged
    across the live shards ({!Stats.merged},
    {!Fulltext.Index.overlay_of}), so per-shard scores are
    corpus-global and the healthy N-shard answer is byte-identical to
    a single-shard corpus over the same documents (caveats: phrase and
    window matches never span document boundaries, and cross-shard
    arrival order is reconstructed — not replayed — after a restart).
    The gather is a threshold-algorithm cutoff: the running global
    K-th score floors each probe's relaxation-chain walk, and a shard
    is skipped exactly once the gathered K-th answer reaches
    {!Common.max_total} and wins the node-id tie-break against
    anything the shard could hold.

    A shard that cannot answer — corrupt at load, lost mid-query,
    over budget, or quarantined after {!open_corpus}'s strike
    threshold of repeated losses — contributes a {e sound} score
    bound instead of an error, and the merged result reports
    [Partial] with [served]/[total] attribution.  [max_total] depends
    only on the query's predicate weights, so the bound for a lost
    shard needs no data from it. *)

type t

type algorithm = DPO | SSO | Hybrid

val algorithm_to_string : algorithm -> string

val route : shards:int -> string -> int
(** The routing function itself (FNV-1a mod [shards]); exposed for
    tests that must place a document on a known shard. *)

val open_corpus :
  ?weights:Relax.Penalty.weights ->
  ?hierarchy:Tpq.Hierarchy.t ->
  ?scorer:Fulltext.Scorer.t ->
  ?limits:Ingest.limits ->
  ?strike_threshold:int ->
  ?probe_domains:int ->
  shards:int ->
  prefix:string ->
  unit ->
  (t, Error.t) result
(** Open [shards] stores at [<prefix>.shard<i>] / [<prefix>.shard<i>.wal].
    A shard whose snapshot fails integrity checks opens {e down} with
    the error recorded in its health — the corpus itself still opens
    and serves from the remaining shards.  [strike_threshold]
    (default 3) is the number of mid-query losses after which a shard
    is quarantined until {!reload}.  [probe_domains > 0] opens a
    {!Taskpool} of that many domains (capped at [shards - 1]) and
    {!query} scatters its shard probes across them plus the calling
    domain; the default [0] keeps the scatter strictly sequential.
    Healthy merged answers are byte-identical either way — the
    threshold-algorithm floor is a sound monotone cutoff, so a
    concurrently-read stale floor only reduces pruning. *)

val close : t -> unit

val shard_count : t -> int
val shard_of_id : t -> string -> int
val doc_count : t -> int

val probe_parallelism : t -> int
(** How many shard probes one query can run at once ([pool domains +
    1] for the caller; [1] means the sequential scatter). *)

val ids : t -> string list
(** Document ids in global arrival order (upserts move to the end). *)

val generation_vector : t -> string
(** One component per shard — ["<generation>"], or ["<generation>!"]
    for a down or quarantined shard.  Scopes every cache key. *)

(** {2 Writes} *)

val ingest : t -> ?id:string -> string -> (string, Error.t) result
(** Route (auto-assigning [doc-N] when [id] is omitted), apply under
    the shard's writer lock with the durability contract of
    {!Ingest.ingest}, and publish a new view.  [Io_error] when the
    target shard is down or quarantined — other shards' documents are
    unaffected. *)

val delete : t -> id:string -> (unit, Error.t) result

val merge : t -> int -> (unit, Error.t) result
(** Durable compaction of one shard ({!Ingest.merge}); shards merge
    independently, so one shard's backlog never blocks another's. *)

val reload : t -> int -> (unit, Error.t) result
(** Swap one shard's state for its on-disk snapshot + WAL (opened with
    the corpus's own weights, hierarchy and limits): close, reopen,
    clear strikes and quarantine, publish.  In-flight queries keep the
    previous immutable view and are never dropped.  Documents the
    reopened shard recovers keep their place in the global arrival
    order — tie-breaks, and therefore answers, are unchanged by a
    reload that recovers the same documents; ids it no longer holds
    drop out and newly recovered ones append.  On failure the shard is
    down with the error recorded. *)

val merge_backlog : t -> int -> int
(** Unmerged WAL records on one shard — the write-lane backpressure
    signal ([retry-after] hints reflect the {e routed} shard's
    backlog, not a global queue). *)

val staleness_ms : t -> int -> float

(** {2 Health} *)

type shard_health = {
  h_ord : int;
  h_live : bool;
  h_quarantined : bool;
  h_generation : int;
  h_docs : int;
  h_strikes : int;
  h_unmerged : int;
  h_staleness_ms : float;
  h_wal_bytes : int;
  h_replayed : int;  (** WAL records replayed when the shard last opened. *)
  h_last_error : string option;
}

val health : t -> shard_health array

val scoring_env : t -> Env.t
(** The merged scoring view — any live shard's environment, whose
    statistics and term frequencies span the whole live corpus — or
    the empty fallback when every shard is down.  Penalty chains
    introspected against it (server [RELAX]) match what {!query}
    scores with. *)

(** {2 Scatter-gather query} *)

type completeness =
  | Complete  (** Every shard fully accounted for: the true global top-K. *)
  | Partial of { reason : string; score_bound : float }
      (** Some shard contributed a bound instead of answers ([reason =
          "shard-loss"]) or a probe was budget-truncated ([reason] the
          guard's).  No unreported answer can score above
          [score_bound] on the scheme's primary key. *)

type answer = {
  a_doc : string;  (** Document id; [""] only for the synthetic corpus root. *)
  a_path : string;  (** Doc-relative path; [""] when the answer is the document itself. *)
  a_node : int;  (** Pre-order id in the combined corpus — the deterministic tie-break. *)
  a_sscore : float;
  a_kscore : float;
  a_dropped : int;
}

type shard_status =
  | Served
  | Skipped
      (** Exact threshold-algorithm skip: nothing on this shard could
          enter the top-K.  Counts as served. *)
  | Budget of Guard.reason
  | Lost of string  (** Probe failed mid-query (fault, wedge); the shard was struck. *)
  | Down of string  (** Unavailable before the query began. *)

type shard_report = { r_ord : int; r_status : shard_status; r_bound : float; r_found : int }

type result = {
  answers : answer list;
  served : int;  (** Shards fully or partially accounted for ([Served]/[Skipped]/[Budget]). *)
  total : int;
  completeness : completeness;
  degraded : bool;
  reports : shard_report list;
  relaxations_evaluated : int;
  passes : int;
  restarts : int;
  tuples_produced : int;
}

type Qcache.ext += Cached_result of result

val query :
  t ->
  ?budget:Guard.budget ->
  ?algorithm:algorithm ->
  ?scheme:Ranking.scheme ->
  ?use_cache:bool ->
  ?executor:Joins.Exec.executor ->
  k:int ->
  Tpq.Query.t ->
  (result, Error.t) Stdlib.result
(** One guard governs the whole scatter (the deadline and tuple budget
    span all probes).  Answer- and plan-tier cache keys embed the full
    generation vector, so any write to, loss of, or recovery of any
    shard invalidates them; only [Complete], non-degraded, fully
    served results are cached.  [executor] selects the physical join
    operator used by every probe (default [Auto]); merged results are
    byte-identical across executors. *)

val answer_line : answer -> string
(** ["<doc-id>/<relpath>  ss=... ks=...  exact"] — the wire rendering,
    shared by server and tests so equivalence checks are byte-level. *)

val cache_counters : t -> Qcache.counters
