type t = { mutable last_wall : float; mutable elapsed : float }

let create () = { last_wall = Unix.gettimeofday (); elapsed = 0.0 }

let elapsed_s c =
  let w = Unix.gettimeofday () in
  let d = w -. c.last_wall in
  c.last_wall <- w;
  (* A backward wall-clock jump (NTP step, clock slew) would make the
     delta negative; clamping it to zero is what keeps the reading
     monotone. *)
  if d > 0.0 then c.elapsed <- c.elapsed +. d;
  c.elapsed

let elapsed_ms c = elapsed_s c *. 1000.0

(* The process-wide clock serializes readings behind a mutex: unlike a
   per-activity clock it is read from many domains (worker heartbeats,
   the supervisor's staleness scan, admission enqueue stamps), and the
   monotonizing update is a read-modify-write. *)
let global_lock = Mutex.create ()
let global = create ()

let now_ms () =
  Mutex.lock global_lock;
  let v = elapsed_ms global in
  Mutex.unlock global_lock;
  v
