(** CRC-32 checksums (IEEE 802.3, as in zlib/PNG/gzip) for snapshot
    integrity.  Detects any single-bit flip and any burst error up to
    32 bits; not a cryptographic digest. *)

val string : ?pos:int -> ?len:int -> string -> int
(** Checksum of a substring (default: the whole string), in
    [0, 0xFFFFFFFF]. *)

val update : int -> string -> int -> int -> int
(** [update crc s pos len] extends a running checksum, so that
    [update (string a) b 0 (String.length b) = string (a ^ b)]. *)
