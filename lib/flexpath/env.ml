type t = {
  doc : Xmldom.Doc.t;
  index : Fulltext.Index.t;
  stats : Stats.t;
  weights : Relax.Penalty.weights;
  hierarchy : Tpq.Hierarchy.t;
}

let make ?(weights = Relax.Penalty.uniform) ?(hierarchy = Tpq.Hierarchy.empty) ?scorer doc =
  Failpoint.hit "env.make";
  let index = Fulltext.Index.build ?scorer doc in
  let stats = Stats.build doc in
  Stats.set_index stats index;
  { doc; index; stats; weights; hierarchy }

let build ?weights ?hierarchy ?scorer doc =
  match make ?weights ?hierarchy ?scorer doc with
  | env -> Ok env
  | exception Failpoint.Injected p -> Error (Error.Fault p)

let of_parts ?(weights = Relax.Penalty.uniform) ~doc ~index ~stats ~hierarchy () =
  Stats.set_index stats index;
  { doc; index; stats; weights; hierarchy }

let rebuild ?weights ?scorer ?index ?stats ?(hierarchy = Tpq.Hierarchy.empty) doc =
  let index = match index with Some i -> i | None -> Fulltext.Index.build ?scorer doc in
  let stats = match stats with Some s -> s | None -> Stats.build doc in
  of_parts ?weights ~doc ~index ~stats ~hierarchy ()

let of_tree ?weights ?hierarchy ?scorer tree =
  make ?weights ?hierarchy ?scorer (Xmldom.Doc.of_tree tree)

let xml_error ?path (e : Xmldom.Xml_parser.error) =
  if e.line = 0 then
    (* The parser reports I/O failures with a zeroed position; their
       message already names the path (it comes from [Sys_error]). *)
    Error.Io_error { path = ""; message = e.message }
  else Error.Xml_error { path; line = e.line; column = e.column; message = e.message }

let of_string ?weights ?hierarchy ?scorer s =
  match Xmldom.Doc.of_string s with
  | Ok doc -> build ?weights ?hierarchy ?scorer doc
  | Error e -> Error (xml_error e)

let of_file ?weights ?hierarchy ?scorer path =
  match Xmldom.Doc.of_file path with
  | Ok doc -> build ?weights ?hierarchy ?scorer doc
  | Error e -> Error (xml_error ~path e)

let penalty_env env q = Relax.Penalty.make ~hierarchy:env.hierarchy env.stats env.weights q

let exec_env env penalty = { Joins.Exec.doc = env.doc; index = env.index; penalty }
