module Pred = Tpq.Pred

let log_src = Logs.Src.create "flexpath" ~doc:"FleXPath top-K query evaluation"

module Log = (val Logs.src_log log_src : Logs.LOG)

type completeness = Complete | Truncated of { reason : Guard.reason; score_bound : float }

type result = {
  answers : Answer.t list;
  metrics : Joins.Exec.metrics;
  relaxations_evaluated : int;
  passes : int;
  restarts : int;
  completeness : completeness;
  degraded : bool;
}

let chain env ?(max_steps = 32) q =
  Failpoint.hit "chain.build";
  let penv = Env.penalty_env env q in
  let entries = Relax.Space.sequence ~max_steps penv in
  Log.debug (fun m ->
      m "relaxation chain: %d entries, scores %.3f .. %.3f" (List.length entries)
        (match entries with e :: _ -> e.Relax.Space.score | [] -> nan)
        (match List.rev entries with e :: _ -> e.Relax.Space.score | [] -> nan));
  (penv, entries)

(* An answer's satisfied-predicate set is always closed under the
   inference rules of Figure 3 (satisfaction on data respects them).
   The best structural score any answer OUTSIDE a relaxation can have is
   therefore the maximum of [base − Σ π(failed)] over inference-closed
   sets that violate at least one predicate the relaxation still
   enforces.  For the small closures of tree pattern queries we compute
   this exactly by bitmask enumeration. *)
let scored_preds penv = Relax.Penalty.scored_preds penv

let closure_rules preds =
  (* (premise_mask, conclusion_bit) pairs over the scored predicates *)
  let arr = Array.of_list preds in
  let m = Array.length arr in
  let index p =
    let rec go i = if i >= m then None else if Pred.equal arr.(i) p then Some i else go (i + 1) in
    go 0
  in
  let rules = ref [] in
  let add premises conclusion =
    match index conclusion with
    | None -> ()
    | Some c ->
      let mask =
        List.fold_left
          (fun acc p -> match index p with Some i -> acc lor (1 lsl i) | None -> acc)
          0 premises
      in
      (* all premises must be among the scored preds for the rule to bind *)
      if List.for_all (fun p -> index p <> None) premises then rules := (mask, c) :: !rules
  in
  Array.iter
    (fun p ->
      match p with
      | Pred.Pc (x, y) -> add [ p ] (Pred.Ad (x, y))
      | Pred.Ad (x, y) ->
        Array.iter
          (fun p' ->
            match p' with
            | Pred.Ad (y', z) when y' = y -> add [ p; p' ] (Pred.Ad (x, z))
            | Pred.Contains (y', f) when y' = y && Fulltext.Ftexp.is_positive f ->
              add [ p; p' ] (Pred.Contains (x, f))
            | _ -> ())
          arr
      | Pred.Tag_eq _ | Pred.Attr _ | Pred.Contains _ -> ())
    arr;
  !rules

let tight_structural_bound penv (entry : Relax.Space.entry) =
  let preds = scored_preds penv in
  let arr = Array.of_list preds in
  let m = Array.length arr in
  let base = Relax.Penalty.base_score penv in
  let pen = Array.map (Relax.Penalty.predicate_penalty penv) arr in
  let dropped = Pred.Set.of_list (Relax.Penalty.dropped_preds penv entry.query) in
  let required_mask = ref 0 in
  Array.iteri (fun i p -> if not (Pred.Set.mem p dropped) then required_mask := !required_mask lor (1 lsl i)) arr;
  if !required_mask = 0 then neg_infinity
  else if m > 18 then begin
    (* Closures too large to enumerate: lower-bound the loss of failing
       each enforced predicate by following the inference rules — when a
       derived predicate fails, every rule deriving it must have a
       failing premise, so at least the cheapest premise of the most
       expensive rule fails along with it.  Counting one chain per
       predicate avoids double counting, keeping the bound sound. *)
    let rules = closure_rules preds in
    (* The rule graph is acyclic (a conclusion is always a longer edge
       or a higher contains than its premises), so plain memoization is
       safe. *)
    let memo = Hashtbl.create 32 in
    let rec cost c =
      match Hashtbl.find_opt memo c with
      | Some v -> v
      | None ->
        Hashtbl.replace memo c pen.(c) (* guard against malformed cycles *);
        let chain =
          List.fold_left
            (fun acc (premise_mask, concl) ->
              if concl <> c then acc
              else begin
                let cheapest = ref infinity in
                for i = 0 to m - 1 do
                  if premise_mask land (1 lsl i) <> 0 then cheapest := Float.min !cheapest (cost i)
                done;
                if !cheapest = infinity then acc else Float.max acc !cheapest
              end)
            0.0 rules
        in
        let v = pen.(c) +. chain in
        Hashtbl.replace memo c v;
        v
    in
    let min_loss = ref infinity in
    for i = 0 to m - 1 do
      if !required_mask land (1 lsl i) <> 0 then min_loss := Float.min !min_loss (cost i)
    done;
    base -. !min_loss
  end
  else begin
    let rules = closure_rules preds in
    let best = ref neg_infinity in
    for s = 0 to (1 lsl m) - 1 do
      if s land !required_mask <> !required_mask then begin
        let closed =
          List.for_all
            (fun (premises, c) -> s land premises <> premises || s land (1 lsl c) <> 0)
            rules
        in
        if closed then begin
          let loss = ref 0.0 in
          for i = 0 to m - 1 do
            if s land (1 lsl i) = 0 then loss := !loss +. pen.(i)
          done;
          if base -. !loss > !best then best := base -. !loss
        end
      end
    done;
    !best
  end

let unseen_bound scheme penv (entry : Relax.Space.entry) =
  match scheme with
  | Ranking.Keyword_first ->
    (* keyword scores are independent of relaxation depth: no sound
       early cut on the keyword-first primary key *)
    infinity
  | Ranking.Structure_first -> tight_structural_bound penv entry
  | Ranking.Combined ->
    tight_structural_bound penv entry +. Relax.Penalty.max_keyword_score penv

let kth_total scheme k answers =
  if List.length answers < k then None
  else begin
    let totals =
      List.map (fun a -> Ranking.total scheme (Answer.score a)) answers
      |> List.sort (fun a b -> Float.compare b a)
    in
    Some (List.nth totals (k - 1))
  end

(* The best primary score any answer at all can reach under a scheme —
   the truncation bound when not even the original query finished. *)
let max_total scheme penv =
  match scheme with
  | Ranking.Structure_first -> Relax.Penalty.base_score penv
  | Ranking.Keyword_first -> Relax.Penalty.max_keyword_score penv
  | Ranking.Combined -> Relax.Penalty.base_score penv +. Relax.Penalty.max_keyword_score penv

let truncation_bound scheme penv last_completed =
  match last_completed with
  | Some entry -> Float.min (max_total scheme penv) (unseen_bound scheme penv entry)
  | None -> max_total scheme penv

let evaluate ?metrics ?cancel ?executor env penv orig ops strategy =
  let enc = Joins.Encoded.of_ops_exn ~hierarchy:(Relax.Penalty.hierarchy penv) orig ops in
  Joins.Exec.run ?metrics ?cancel ?executor (Env.exec_env env penv) enc strategy
  |> List.map Answer.of_exec

(* ------------------------------------------------------------------ *)
(* Reusable evaluation plans.

   A plan captures everything about an evaluation that depends only on
   the query's shape: the penalty environment (closure, weights,
   statistics-derived penalties), the greedy relaxation chain, and —
   lazily — the relaxation-encoded join plans of the entries actually
   evaluated.  Answers carry no variable ids, so a plan built for one
   query serves any isomorphic query (same {!Tpq.Query.canonical_key})
   verbatim; {!Qcache} relies on exactly that. *)

type plan = {
  pquery : Tpq.Query.t;  (* the representative query the plan was built for *)
  penv : Relax.Penalty.t;
  chain : Relax.Space.entry array;
  encoded : Joins.Encoded.t option Atomic.t array;
      (* one slot per chain entry, compiled on first evaluation; Atomic
         so a plan shared between worker domains publishes compiled
         entries safely (a racing recompute yields an equivalent value) *)
}

let build_plan env ?max_steps q =
  let penv, entries = chain env ?max_steps q in
  let arr = Array.of_list entries in
  { pquery = q; penv; chain = arr; encoded = Array.init (Array.length arr) (fun _ -> Atomic.make None) }

let plan_entries p = Array.to_list p.chain

let encoded_entry p i =
  match Atomic.get p.encoded.(i) with
  | Some enc -> enc
  | None ->
    let entry = p.chain.(i) in
    let enc =
      Joins.Encoded.of_ops_exn ~hierarchy:(Relax.Penalty.hierarchy p.penv) p.pquery
        entry.Relax.Space.ops
    in
    Atomic.set p.encoded.(i) (Some enc);
    enc

let evaluate_entry ?metrics ?cancel ?executor env p i strategy =
  let enc = encoded_entry p i in
  Joins.Exec.run ?metrics ?cancel ?executor (Env.exec_env env p.penv) enc strategy
  |> List.map Answer.of_exec
