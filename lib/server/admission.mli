(** Admission control: a bounded multi-producer multi-consumer queue.

    The accept loop pushes accepted connections; worker domains pop
    them.  [try_push] never blocks — a full queue is the signal to
    fast-reject the client with [OVERLOADED] instead of letting it
    queue invisibly (load shedding at the door, not in the room).

    {!close} begins a drain: pushes are refused from then on, but
    already-admitted items continue to be popped until the queue is
    empty, at which point every blocked and future {!pop} returns
    [None].  This is exactly graceful shutdown's contract — admitted
    work completes, new work is turned away. *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity] must be at least 1. *)

val try_push : 'a t -> 'a -> [ `Admitted | `Full | `Closed ]
val pop : 'a t -> 'a option
(** Blocks until an item is available; [None] once closed and drained. *)

val pop_until : 'a t -> fresh:('a -> bool) -> shed:('a -> unit) -> 'a option
(** {!pop}, skipping stale items: each popped item failing [fresh] is
    handed to [shed] and discarded, until a fresh item (returned) or
    the closed-and-drained end ([None]).  This is CoDel-style queue
    deadline shedding when items carry their enqueue time: a worker
    coming free sheds every entry whose queue sojourn already exceeds
    the bound — the client long since gave up or will be told
    [OVERLOADED retry-after-ms=…] cheaply — instead of wasting query
    execution on it. *)

val close : 'a t -> unit

val length : 'a t -> int
(** Current depth (items admitted, not yet popped). *)

val capacity : 'a t -> int
