module Guard = Flexpath.Guard
module Error = Flexpath.Error
module Failpoint = Flexpath.Failpoint
module Monotime = Flexpath.Monotime

type config = {
  host : string;
  port : int;
  workers : int;
  queue_depth : int;
  max_connections : int;
  read_timeout_s : float;
  write_timeout_s : float;
  default_k : int;
  default_budget : Guard.budget;
  snapshot : string option;
  cache_mb : int option;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    workers = 4;
    queue_depth = 64;
    max_connections = 256;
    read_timeout_s = 30.0;
    write_timeout_s = 30.0;
    default_k = 10;
    default_budget = Guard.unlimited;
    snapshot = None;
    cache_mb = Some 64;
  }

(* A slot binds an environment to the cache built for it: swapping the
   atomic replaces both at once, so a query dispatched against the old
   snapshot can never be answered from — or populate — the new
   snapshot's cache, and vice versa.  In-flight queries hold the slot
   they started with until they finish. *)
type slot = { env : Flexpath.Env.t; generation : int; cache : Flexpath.Qcache.t option }

let fresh_cache (cfg : config) =
  Option.map (fun mb -> Flexpath.Qcache.create ~max_bytes:(mb * 1024 * 1024) ()) cfg.cache_mb

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  bound_port : int;
  queue : Unix.file_descr Admission.t;
  current : slot Atomic.t;
  stopping : bool Atomic.t;
  active : int Atomic.t;  (* connections admitted and not yet closed *)
  metrics : Metrics.t;
  reload_lock : Mutex.t;
  started_wall : float;
}

let port t = t.bound_port
let generation t = (Atomic.get t.current).generation

let create cfg ~env =
  if cfg.workers < 1 then invalid_arg "Server.create: workers must be at least 1";
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  match
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    let addr = Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port) in
    Unix.bind fd addr;
    Unix.listen fd 128;
    Unix.set_nonblock fd;
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  with
  | bound_port ->
    Ok
      {
        cfg;
        listen_fd = fd;
        bound_port;
        queue = Admission.create ~capacity:cfg.queue_depth;
        current = Atomic.make { env; generation = 1; cache = fresh_cache cfg };
        stopping = Atomic.make false;
        active = Atomic.make 0;
        metrics = Metrics.create ();
        reload_lock = Mutex.create ();
        started_wall = Unix.gettimeofday ();
      }
  | exception Unix.Unix_error (err, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error
      (Error.Io_error
         {
           path = Printf.sprintf "%s:%d" cfg.host cfg.port;
           message = Printf.sprintf "cannot listen: %s" (Unix.error_message err);
         })
  | exception Failure msg ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error (Error.Io_error { path = cfg.host; message = msg })

let stop t =
  Atomic.set t.stopping true;
  Admission.close t.queue

(* ------------------------------------------------------------------ *)
(* Socket I/O.  Connection sockets stay blocking with short kernel
   receive timeouts, so reads wake every [poll_interval_s] to re-check
   the stop flag and the connection's idle deadline. *)

let poll_interval_s = 0.25
let max_line_bytes = 65536

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then begin
      let w = Unix.write_substring fd s off (n - off) in
      if w = 0 then raise (Unix.Unix_error (Unix.EPIPE, "write", ""));
      go (off + w)
    end
  in
  go 0

let send_response fd status body =
  let buf = Buffer.create (String.length body + 32) in
  Protocol.write_response buf status body;
  match write_all fd (Buffer.contents buf) with
  | () -> true
  | exception Unix.Unix_error (_, _, _) -> false

type read_outcome = Line of string | Eof | Dropped

(* Reads one '\n'-terminated line, polling cooperatively.  [Dropped]
   covers every abnormal end: idle timeout, oversized line, socket
   error, injected [server_read] fault.  During shutdown the idle
   allowance shrinks to one second: an admitted connection whose
   request bytes are already in flight still gets served (that is the
   drain), but an idle one cannot stall the shutdown. *)
let read_line t fd =
  let acc = Buffer.create 128 in
  let byte = Bytes.create 1 in
  let idle = Monotime.create () in
  let rec go () =
    let limit =
      if Atomic.get t.stopping then Float.min t.cfg.read_timeout_s 1.0
      else t.cfg.read_timeout_s
    in
    if Monotime.elapsed_s idle > limit then Dropped
    else if Buffer.length acc > max_line_bytes then Dropped
    else begin
      match Failpoint.hit "server_read" with
      | exception Failpoint.Injected _ -> Dropped
      | () -> (
        match Unix.read fd byte 0 1 with
        | 0 -> if Buffer.length acc = 0 then Eof else Line (Buffer.contents acc)
        | _ ->
          if Bytes.get byte 0 = '\n' then Line (Buffer.contents acc)
          else begin
            Buffer.add_char acc (Bytes.get byte 0);
            go ()
          end
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
          go ()
        | exception Unix.Unix_error (_, _, _) -> Dropped)
    end
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Request execution *)

let merge_budget (cfg : config) ~deadline_ms ~tuple_budget ~step_budget ~restart_cap =
  let d = cfg.default_budget in
  let pick req dflt = match req with Some _ -> req | None -> dflt in
  let b =
    {
      Guard.deadline_ms = pick deadline_ms d.Guard.deadline_ms;
      tuple_budget = pick tuple_budget d.Guard.tuple_budget;
      step_budget = pick step_budget d.Guard.step_budget;
      restart_cap = pick restart_cap d.Guard.restart_cap;
    }
  in
  if b = Guard.unlimited then None else Some b

let render_answers doc answers =
  List.mapi
    (fun i (a : Flexpath.Answer.t) ->
      Format.asprintf "%2d. %a" (i + 1) (Flexpath.Answer.pp doc) a)
    answers

let exec_query (slot : slot) ~xpath ~k ~algorithm ~scheme ~budget =
  match Tpq.Xpath.parse xpath with
  | Error { offset; message } ->
    (Protocol.Err, Error.to_string (Error.Query_error { offset; message }), `Error)
  | Ok q -> (
    match Flexpath.run ?algorithm ?scheme ?budget ?cache:slot.cache slot.env ~k q with
    | Error e -> (Protocol.Err, Error.to_string e, `Error)
    | Ok result -> (
      let doc = slot.env.Flexpath.Env.doc in
      let lines = render_answers doc result.Flexpath.Common.answers in
      match result.Flexpath.Common.completeness with
      | Flexpath.Common.Complete -> (Protocol.Ok_, String.concat "\n" lines, `Ok)
      | Flexpath.Common.Truncated { reason; score_bound } ->
        let hdr =
          Printf.sprintf "# truncated reason=%s score_bound=%.4f"
            (Guard.reason_to_string reason) score_bound
        in
        (Protocol.Partial, String.concat "\n" (hdr :: lines), `Truncated)))

let exec_relax (slot : slot) ~xpath ~steps =
  match Tpq.Xpath.parse xpath with
  | Error { offset; message } ->
    (Protocol.Err, Error.to_string (Error.Query_error { offset; message }), `Error)
  | Ok q -> (
    match
      let penv = Flexpath.Env.penalty_env slot.env q in
      Relax.Space.sequence ?max_steps:steps penv
    with
    | exception Failpoint.Injected p -> (Protocol.Err, Error.to_string (Error.Fault p), `Error)
    | chain ->
      let lines =
        List.mapi
          (fun i (entry : Relax.Space.entry) ->
            let ops =
              match entry.ops with
              | [] -> "(original)"
              | ops -> String.concat "; " (List.map Relax.Op.to_string ops)
            in
            Printf.sprintf "%2d. score=%.4f penalty=%.4f  %s\n    %s" i entry.score
              entry.penalty ops
              (Tpq.Xpath.to_string entry.query))
          chain
      in
      (Protocol.Ok_, String.concat "\n" lines, `Ok))

let exec_reload t path_opt =
  let path =
    match path_opt with Some p -> Some p | None -> t.cfg.snapshot
  in
  match path with
  | None ->
    ( Protocol.Err,
      "reload: no snapshot path given and the server was not started from one",
      `Error )
  | Some path -> (
    (* Serialized so concurrent RELOADs cannot interleave their
       generation bumps; queries never take this lock. *)
    Mutex.lock t.reload_lock;
    let weights = (Atomic.get t.current).env.Flexpath.Env.weights in
    let finish r =
      Mutex.unlock t.reload_lock;
      r
    in
    match Flexpath.Storage.load ~weights path with
    | exception e -> finish (Protocol.Err, Printexc.to_string e, `Error)
    | Error e -> finish (Protocol.Err, Error.to_string e, `Error)
    | Ok (env, outcome) ->
      let generation = (Atomic.get t.current).generation + 1 in
      (* A fresh cache per generation: the swap below invalidates every
         cached plan and answer atomically with the snapshot itself. *)
      Atomic.set t.current { env; generation; cache = fresh_cache t.cfg };
      Metrics.reloads t.metrics;
      finish
        ( Protocol.Ok_,
          Printf.sprintf "reloaded %s (%s); generation %d" path
            (Flexpath.Storage.outcome_to_string outcome)
            generation,
          `Ok ))

let uptime_s t = Float.max 0.0 (Unix.gettimeofday () -. t.started_wall)

(* Dispatch one parsed request; [`Close] ends the connection. *)
let dispatch t fd (req : Protocol.request) =
  match Failpoint.hit "server_worker" with
  | exception Failpoint.Injected p ->
    let ok = send_response fd Protocol.Err (Error.to_string (Error.Fault p)) in
    if ok then `Continue else `Close
  | () -> (
    match req with
    | Protocol.Shutdown ->
      ignore (send_response fd Protocol.Bye "");
      stop t;
      `Close
    | req ->
      let clock = Monotime.create () in
      let endpoint, (status, body, outcome) =
        match req with
        | Protocol.Ping -> (Metrics.Ping, (Protocol.Ok_, "pong", `Ok))
        | Protocol.Stats ->
          let slot = Atomic.get t.current in
          ( Metrics.Stats,
            ( Protocol.Ok_,
              Metrics.render t.metrics ~queue_depth:(Admission.length t.queue)
                ~queue_capacity:(Admission.capacity t.queue)
                ~generation:slot.generation ~uptime_s:(uptime_s t)
                ~cache:(Option.map Flexpath.Qcache.counters slot.cache),
              `Ok ) )
        | Protocol.Reload path -> (Metrics.Reload, exec_reload t path)
        | Protocol.Relax { xpath; steps } ->
          (Metrics.Relax, exec_relax (Atomic.get t.current) ~xpath ~steps)
        | Protocol.Query { xpath; k; algorithm; scheme; deadline_ms; tuple_budget; step_budget; restart_cap }
          ->
          let budget = merge_budget t.cfg ~deadline_ms ~tuple_budget ~step_budget ~restart_cap in
          let k = Option.value ~default:t.cfg.default_k k in
          (Metrics.Query, exec_query (Atomic.get t.current) ~xpath ~k ~algorithm ~scheme ~budget)
        | Protocol.Shutdown -> assert false
      in
      Metrics.record t.metrics endpoint ~latency_ms:(Monotime.elapsed_ms clock) ~outcome;
      if send_response fd status body then `Continue else `Close)

let serve_connection t fd =
  (try
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO poll_interval_s;
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.cfg.write_timeout_s
   with Unix.Unix_error _ -> ());
  let rec loop () =
    match read_line t fd with
    | Eof -> ()
    | Dropped -> Metrics.connection_dropped t.metrics
    | Line line -> (
      if String.trim line = "" then loop ()
      else
        match Protocol.parse_request line with
        | Error msg ->
          if send_response fd Protocol.Err ("protocol: " ^ msg) then loop ()
          else Metrics.connection_dropped t.metrics
        | Ok req -> (
          match dispatch t fd req with
          (* One request per connection once shutdown began: serve what
             was in flight, then close instead of waiting for more. *)
          | `Continue when not (Atomic.get t.stopping) -> loop ()
          | `Continue | `Close -> ()))
  in
  loop ();
  try Unix.close fd with Unix.Unix_error _ -> ()

let worker t () =
  let rec loop () =
    match Admission.pop t.queue with
    | None -> ()
    | Some fd ->
      serve_connection t fd;
      Atomic.decr t.active;
      loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Accept loop and admission *)

let overloaded_reject t fd =
  Metrics.connection_rejected t.metrics;
  (try
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO 1.0;
     let buf = Buffer.create 16 in
     Protocol.write_response buf Protocol.Overloaded "";
     write_all fd (Buffer.contents buf)
   with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let admit t fd =
  match Failpoint.hit "server_accept" with
  | exception Failpoint.Injected _ ->
    Metrics.connection_dropped t.metrics;
    (try Unix.close fd with Unix.Unix_error _ -> ())
  | () ->
    if Atomic.get t.active >= t.cfg.max_connections then overloaded_reject t fd
    else begin
      (* Count before pushing so a racing worker's decrement cannot be
         lost; undo on rejection. *)
      Atomic.incr t.active;
      match Admission.try_push t.queue fd with
      | `Admitted -> Metrics.connection_admitted t.metrics
      | `Full | `Closed ->
        Atomic.decr t.active;
        overloaded_reject t fd
    end

let accept_loop t =
  while not (Atomic.get t.stopping) do
    match Unix.select [ t.listen_fd ] [] [] 0.1 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
      match Unix.accept ~cloexec:true t.listen_fd with
      | fd, _ -> admit t fd
      | exception
          Unix.Unix_error
            ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ECONNABORTED), _, _) ->
        ())
  done

let serve t =
  (* A client closing mid-response must not kill the server. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let workers = Array.init t.cfg.workers (fun _ -> Domain.spawn (worker t)) in
  accept_loop t;
  (* Shutdown: no more accepts; refuse new admissions and let the
     workers drain what was already admitted. *)
  Admission.close t.queue;
  Array.iter Domain.join workers;
  try Unix.close t.listen_fd with Unix.Unix_error _ -> ()
