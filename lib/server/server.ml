module Guard = Flexpath.Guard
module Error = Flexpath.Error
module Failpoint = Flexpath.Failpoint
module Monotime = Flexpath.Monotime
module Corpus = Flexpath.Corpus

type ingest_config = {
  wal : string;
  merge_interval_ms : float;
  max_doc_bytes : int;
  max_doc_elems : int;
  write_lane : int;
  shards : int;
  replicas : int;
  ack_mode : Corpus.ack_mode;
  probation_ms : float;
}

let ingest_defaults ~wal =
  {
    wal;
    merge_interval_ms = 2000.0;
    max_doc_bytes = Flexpath.Ingest.default_limits.Flexpath.Ingest.max_bytes;
    max_doc_elems = Flexpath.Ingest.default_limits.Flexpath.Ingest.max_elems;
    write_lane = 4;
    shards = 1;
    replicas = 1;
    ack_mode = Corpus.Sync;
    probation_ms = Flexpath.Ingest.default_probation_ms;
  }

type config = {
  host : string;
  port : int;
  workers : int;
  queue_depth : int;
  max_connections : int;
  read_timeout_s : float;
  write_timeout_s : float;
  default_k : int;
  default_budget : Guard.budget;
  snapshot : string option;
  cache_mb : int option;
  supervise : bool;
  hard_wall_ms : float;
  quarantine_strikes : int;
  queue_deadline_ms : float option;
  ingest : ingest_config option;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    workers = 4;
    queue_depth = 64;
    max_connections = 256;
    read_timeout_s = 30.0;
    write_timeout_s = 30.0;
    default_k = 10;
    default_budget = Guard.unlimited;
    snapshot = None;
    cache_mb = Some 64;
    supervise = true;
    hard_wall_ms = 5000.0;
    quarantine_strikes = 2;
    queue_deadline_ms = None;
    ingest = None;
  }

(* A slot binds an environment to the cache built for it: swapping the
   atomic replaces both at once, so a query dispatched against the old
   snapshot can never be answered from — or populate — the new
   snapshot's cache, and vice versa.  In-flight queries hold the slot
   they started with until they finish. *)
type slot = { env : Flexpath.Env.t; generation : int; cache : Flexpath.Qcache.t option }

let fresh_cache (cfg : config) =
  Option.map (fun mb -> Flexpath.Qcache.create ~max_bytes:(mb * 1024 * 1024) ()) cfg.cache_mb

(* The live-ingestion runtime.  One writer at a time holds [wlock]
   ([Ingest] stores are single-writer); [writers] counts requests
   holding or waiting on it, so the write lane can fast-reject beyond
   its depth instead of queueing writes without bound behind a slow
   merge.  The background merge domain publishes its liveness through
   [merge_dead]: set when the domain body ends abnormally (the
   [merge_publish] failpoint escapes deliberately), read by the
   supervision loop to respawn it. *)
type ingest_rt = {
  store : Flexpath.Ingest.store;
  icfg : ingest_config;
  wlock : Mutex.t;
  writers : int Atomic.t;
  merge_dead : bool Atomic.t;
  merge_domain : unit Domain.t option Atomic.t;
}

(* The sharded-corpus runtime ([shards > 1], DESIGN.md §4i).  The
   corpus serializes writers per shard internally, so only the write
   lane (admission) lives here; the merge domain walks the shards
   independently — one shard's backlog never delays another's
   compaction. *)
type corpus_rt = {
  corpus : Flexpath.Corpus.t;
  ccfg : ingest_config;
  cwriters : int Atomic.t;
  cmerge_dead : bool Atomic.t;
  cmerge_domain : unit Domain.t option Atomic.t;
}

(* One parsed request in flight: the event loop hands it to the
   admission queue, a worker evaluates it and settles it back through
   {!Eventloop.respond}/{!Eventloop.drop}.  Workers never see the
   socket — [conn] is an opaque settlement handle.  The enqueue
   timestamp lets a worker coming free shed entries whose queue
   sojourn exceeded the bound. *)
type job = {
  conn : Eventloop.conn;
  req : Protocol.request;
  body : string option;
  enqueued_ms : float;
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  bound_port : int;
  loop : Eventloop.t;
  queue : job Admission.t;
  current : slot Atomic.t;
  stopping : bool Atomic.t;
  active : int Atomic.t;  (* connections admitted and not yet closed *)
  metrics : Metrics.t;
  sup : Supervisor.t;
  (* Written by [serve] at startup and by the supervision loop on
     respawn; read for the shutdown join only after the supervision
     domain itself is joined, which orders the accesses. *)
  domains : unit Domain.t option array;
  (* [inflight.(i)] is the job worker [i] is evaluating, set before its
     heartbeat goes Busy and cleared only after a successful retire.
     When the supervisor claims worker [i] as lost, it exchanges the
     slot to settle the orphaned job's connection exactly once —
     either the worker retired first (slot already cleared) or the
     supervisor's claim won (the worker sees the failed retire and
     exits without touching the slot). *)
  inflight : job option Atomic.t array;
  reload_lock : Mutex.t;
  started_wall : float;
  ingest : ingest_rt option;
  corpus : corpus_rt option;
}

let port t = t.bound_port
let generation t = (Atomic.get t.current).generation
let active_connections t = Atomic.get t.active
let metrics t = t.metrics
let ingest_store t = Option.map (fun rt -> rt.store) t.ingest
let corpus t = Option.map (fun (rt : corpus_rt) -> rt.corpus) t.corpus

(* With ingestion enabled the served environment is the store's —
   snapshot (if any) plus the replayed WAL tail — not the caller's;
   [env] then only donates weights and hierarchy for a store starting
   from nothing. *)
let open_ingest (cfg : config) ~env =
  (* Scatter parallelism for corpus queries: probe domains on top of
     the querying worker itself, capped so a probe pool never exceeds
     what the shard count or the worker pool can use. *)
  let probe_domains =
    match cfg.ingest with
    | Some icfg -> max 0 (min (icfg.shards - 1) (cfg.workers - 1))
    | None -> 0
  in
  match cfg.ingest with
  | None -> Ok (None, None)
  | Some icfg -> (
    match cfg.snapshot with
    | None ->
      Error
        (Error.Config_error
           {
             what = "ingest";
             message = "live ingestion needs a snapshot path (--env) as its merge target";
           })
    | Some snapshot ->
      let limits =
        {
          Flexpath.Ingest.max_bytes = icfg.max_doc_bytes;
          Flexpath.Ingest.max_elems = icfg.max_doc_elems;
        }
      in
      if icfg.shards > 1 || icfg.replicas > 1 then
        (* Sharded (or replicated): the snapshot path is the per-shard
           file prefix ([<prefix>.shard<i>] / [.wal], followers at
           [.r<j>]); [icfg.wal] is unused.  The corpus opens even when
           some replica is corrupt — that replica is down, the rest
           serve. *)
        Result.map
          (fun corpus ->
            ( None,
              Some
                {
                  corpus;
                  ccfg = icfg;
                  cwriters = Atomic.make 0;
                  cmerge_dead = Atomic.make false;
                  cmerge_domain = Atomic.make None;
                } ))
          (Flexpath.Corpus.open_corpus ~weights:env.Flexpath.Env.weights
             ~hierarchy:env.Flexpath.Env.hierarchy ~limits ~probe_domains
             ~replicas:icfg.replicas ~ack_mode:icfg.ack_mode ~probation_ms:icfg.probation_ms
             ~shards:icfg.shards ~prefix:snapshot ())
      else
        Result.map
          (fun store ->
            ( Some
                {
                  store;
                  icfg;
                  wlock = Mutex.create ();
                  writers = Atomic.make 0;
                  merge_dead = Atomic.make false;
                  merge_domain = Atomic.make None;
                },
              None ))
          (Flexpath.Ingest.open_store ~weights:env.Flexpath.Env.weights
             ~hierarchy:env.Flexpath.Env.hierarchy ~limits ~probation_ms:icfg.probation_ms
             ~snapshot ~wal:icfg.wal ()))

let create cfg ~env =
  if cfg.workers < 1 then invalid_arg "Server.create: workers must be at least 1";
  match open_ingest cfg ~env with
  | Error e -> Error e
  | Ok (ingest, corpus) -> (
    let env =
      match (ingest, corpus) with
      | Some rt, _ -> Flexpath.Ingest.store_env rt.store
      | None, Some crt ->
        (* The merged scoring view: queries scatter over the corpus,
           but RELAX and a query against an empty corpus still need a
           coherent env in the slot. *)
        Flexpath.Corpus.scoring_env crt.corpus
      | None, None -> env
    in
    let close_store () =
      (match ingest with Some rt -> Flexpath.Ingest.close rt.store | None -> ());
      match corpus with Some crt -> Flexpath.Corpus.close crt.corpus | None -> ()
    in
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    match
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      let addr = Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port) in
      Unix.bind fd addr;
      Unix.listen fd 128;
      Unix.set_nonblock fd;
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> p
      | Unix.ADDR_UNIX _ -> assert false
    with
    | bound_port ->
      Ok
        {
          cfg;
          listen_fd = fd;
          bound_port;
          loop =
            Eventloop.create ~listen_fd:fd ~max_connections:cfg.max_connections
              ~read_timeout_s:cfg.read_timeout_s ~write_timeout_s:cfg.write_timeout_s;
          queue = Admission.create ~capacity:cfg.queue_depth;
          current = Atomic.make { env; generation = 1; cache = fresh_cache cfg };
          stopping = Atomic.make false;
          active = Atomic.make 0;
          metrics = Metrics.create ();
          sup =
            Supervisor.create ~workers:cfg.workers ~hard_wall_ms:cfg.hard_wall_ms
              ~quarantine_threshold:cfg.quarantine_strikes;
          domains = Array.make cfg.workers None;
          inflight = Array.init cfg.workers (fun _ -> Atomic.make None);
          reload_lock = Mutex.create ();
          started_wall = Unix.gettimeofday ();
          ingest;
          corpus;
        }
    | exception Unix.Unix_error (err, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      close_store ();
      Error
        (Error.Io_error
           {
             path = Printf.sprintf "%s:%d" cfg.host cfg.port;
             message = Printf.sprintf "cannot listen: %s" (Unix.error_message err);
           })
    | exception Failure msg ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      close_store ();
      Error (Error.Io_error { path = cfg.host; message = msg }))

(* Stopping is observed in two places: the event loop (which drains
   connections and returns from [run]) and the background merge /
   supervision loops (which poll [t.stopping]).  The admission queue
   stays open until the loop has drained — a request already parsed
   and queued is served, not abandoned. *)
let stop t =
  Atomic.set t.stopping true;
  Eventloop.stop t.loop

(* ------------------------------------------------------------------ *)
(* Request execution *)

let merge_budget (cfg : config) ~deadline_ms ~tuple_budget ~step_budget ~restart_cap =
  let d = cfg.default_budget in
  let pick req dflt = match req with Some _ -> req | None -> dflt in
  let b =
    {
      Guard.deadline_ms = pick deadline_ms d.Guard.deadline_ms;
      tuple_budget = pick tuple_budget d.Guard.tuple_budget;
      step_budget = pick step_budget d.Guard.step_budget;
      restart_cap = pick restart_cap d.Guard.restart_cap;
    }
  in
  if b = Guard.unlimited then None else Some b

let render_answers doc answers =
  List.mapi
    (fun i (a : Flexpath.Answer.t) ->
      Format.asprintf "%2d. %a" (i + 1) (Flexpath.Answer.pp doc) a)
    answers

let parse_error_response { Tpq.Xpath.offset; message } =
  (Protocol.Err, Error.to_string (Error.Query_error { offset; message }), `Error)

let exec_query (slot : slot) ~q ~k ~algorithm ~scheme ~budget =
  match Flexpath.run ?algorithm ?scheme ?budget ?cache:slot.cache slot.env ~k q with
  | Error e -> (Protocol.Err, Error.to_string e, `Error)
  | Ok result -> (
    let doc = slot.env.Flexpath.Env.doc in
    let lines = render_answers doc result.Flexpath.Common.answers in
    match result.Flexpath.Common.completeness with
    | Flexpath.Common.Complete -> (Protocol.Ok_, String.concat "\n" lines, `Ok)
    | Flexpath.Common.Truncated { reason; score_bound } ->
      let hdr =
        Printf.sprintf "# truncated reason=%s score_bound=%.4f"
          (Guard.reason_to_string reason) score_bound
      in
      (Protocol.Partial, String.concat "\n" (hdr :: lines), `Truncated))

let exec_relax env ~q ~steps =
  match
    let penv = Flexpath.Env.penalty_env env q in
    Relax.Space.sequence ?max_steps:steps penv
  with
  | exception Failpoint.Injected p -> (Protocol.Err, Error.to_string (Error.Fault p), `Error)
  | chain ->
    let lines =
      List.mapi
        (fun i (entry : Relax.Space.entry) ->
          let ops =
            match entry.ops with
            | [] -> "(original)"
            | ops -> String.concat "; " (List.map Relax.Op.to_string ops)
          in
          Printf.sprintf "%2d. score=%.4f penalty=%.4f  %s\n    %s" i entry.score
            entry.penalty ops
            (Tpq.Xpath.to_string entry.query))
        chain
    in
    (Protocol.Ok_, String.concat "\n" lines, `Ok)

let exec_reload t path_opt =
  let path =
    match path_opt with Some p -> Some p | None -> t.cfg.snapshot
  in
  match path with
  | None ->
    ( Protocol.Err,
      "reload: no snapshot path given and the server was not started from one",
      `Error )
  | Some path -> (
    (* Serialized so concurrent RELOADs cannot interleave their
       generation bumps; queries never take this lock. *)
    Mutex.lock t.reload_lock;
    let weights = (Atomic.get t.current).env.Flexpath.Env.weights in
    let finish r =
      Mutex.unlock t.reload_lock;
      r
    in
    match Flexpath.Storage.load ~weights path with
    | exception e -> finish (Protocol.Err, Printexc.to_string e, `Error)
    | Error e -> finish (Protocol.Err, Error.to_string e, `Error)
    | Ok (env, outcome) ->
      let generation = (Atomic.get t.current).generation + 1 in
      (* A fresh cache per generation: the swap below invalidates every
         cached plan and answer atomically with the snapshot itself. *)
      Atomic.set t.current { env; generation; cache = fresh_cache t.cfg };
      Metrics.reloads t.metrics;
      finish
        ( Protocol.Ok_,
          Printf.sprintf "reloaded %s (%s); generation %d" path
            (Flexpath.Storage.outcome_to_string outcome)
            generation,
          `Ok ))

let uptime_s t = Float.max 0.0 (Unix.gettimeofday () -. t.started_wall)

(* The OVERLOADED backoff hint for {e connection} admission: deeper
   queues mean longer waits, so scale the hint with the current depth
   (a rough 50 ms nominal service time per queued entry), clamped to a
   sane range. *)
let retry_after_hint_ms t = min 5000 (50 * (1 + Admission.length t.queue))

(* The backoff hint for a {e write-lane} reject.  A refused write waits
   on the writer path clearing, not on the connection queue: the
   governing signal is the merge backlog of the shard the write routes
   to (the store itself, unsharded) — a deep backlog means the next
   merge pass holds that shard's writer lock longer.  The global
   connection-queue depth says nothing about that and used to produce
   flat hints under write-heavy load with an idle read queue. *)
let backlog_hint_ms backlog = min 5000 (50 * (1 + backlog))

(* ------------------------------------------------------------------ *)
(* Live ingestion: write execution, publication, merging *)

let ingest_gauges rt =
  {
    Metrics.corpus_docs = Flexpath.Ingest.doc_count rt.store;
    delta_docs = Flexpath.Ingest.unmerged_records rt.store;
    wal_bytes = Flexpath.Ingest.wal_bytes rt.store;
    staleness_ms = Flexpath.Ingest.staleness_ms rt.store;
    wal_replayed_records = Flexpath.Ingest.replayed_records rt.store;
    readonly_stores = (if Flexpath.Ingest.readonly rt.store then 1 else 0);
  }

(* The write-class error mapping: a read-only degrade (disk fault,
   DESIGN.md §4l) is its own wire status so clients can distinguish
   "the store protects durability, retry after probation" from a
   deterministic ERR; everything else stays ERR. *)
let write_error_response e =
  match e with
  | Error.Readonly { retry_after_ms; _ } ->
    ( Protocol.Readonly,
      Printf.sprintf "%s %s" (Protocol.retry_after_body retry_after_ms) (Error.to_string e),
      `Error )
  | e -> (Protocol.Err, Error.to_string e, `Error)

(* Publish the store's corpus env as a new generation.  Same contract
   as a RELOAD swap: the fresh cache is installed atomically with the
   env, so no query can mix a cached answer with a corpus it was not
   computed from, and in-flight queries keep the slot they started
   with.  [reload_lock] serializes generation bumps (writers are
   already serialized by [wlock]; this guards against a racing RELOAD
   on servers where both paths are live). *)
let publish t env =
  Mutex.lock t.reload_lock;
  let generation = (Atomic.get t.current).generation + 1 in
  Atomic.set t.current { env; generation; cache = fresh_cache t.cfg };
  Mutex.unlock t.reload_lock;
  generation

(* The write lane: admission control for the write class.  [writers]
   counts requests holding or waiting on [wlock]; past the lane depth
   a write is told OVERLOADED immediately — queries are admitted by
   the ordinary queue and never wait here, so a burst of writes (or a
   merge holding the lock) cannot starve reads of workers. *)
let with_write_lane t rt f =
  let pos = Atomic.fetch_and_add rt.writers 1 in
  Fun.protect
    ~finally:(fun () -> Atomic.decr rt.writers)
    (fun () ->
      if pos >= rt.icfg.write_lane then begin
        Metrics.write_rejected t.metrics;
        let hint = backlog_hint_ms (Flexpath.Ingest.unmerged_records rt.store) in
        (Protocol.Overloaded, Protocol.retry_after_body hint, `Error)
      end
      else begin
        Mutex.lock rt.wlock;
        Fun.protect ~finally:(fun () -> Mutex.unlock rt.wlock) f
      end)

let exec_ingest t rt ~id body =
  match Flexpath.Ingest.ingest rt.store ?id body with
  | Error e -> write_error_response e
  | Ok doc_id ->
    (* The WAL append and fsync succeeded: the write is durable.
       Publish, then ack with the id (the client needs it to address
       upserts and deletes) and the generation serving it. *)
    let generation = publish t (Flexpath.Ingest.store_env rt.store) in
    Metrics.ingested t.metrics;
    (Protocol.Ok_, Printf.sprintf "ingested %s; generation %d" doc_id generation, `Ok)

let exec_delete t rt ~id =
  match Flexpath.Ingest.delete rt.store ~id with
  | Error e -> write_error_response e
  | Ok () ->
    let generation = publish t (Flexpath.Ingest.store_env rt.store) in
    Metrics.deleted t.metrics;
    (Protocol.Ok_, Printf.sprintf "deleted %s; generation %d" id generation, `Ok)

(* A MERGE folds the acknowledged deltas into the snapshot and
   truncates the WAL.  It takes [wlock] directly (not the lane: it
   carries no document and should not consume write admission), and
   the [merge_publish] fault that {!Flexpath.Ingest.merge} lets escape
   is reified here — on this foreground path it costs the request, not
   the worker; the WAL still covers every acked write, so nothing is
   lost either way. *)
let exec_merge t rt =
  Mutex.lock rt.wlock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock rt.wlock)
    (fun () ->
      let deltas = Flexpath.Ingest.unmerged_records rt.store in
      match Flexpath.Ingest.merge rt.store with
      | Ok () ->
        Metrics.merged t.metrics;
        (Protocol.Ok_, Printf.sprintf "merged %d delta record(s); wal truncated" deltas, `Ok)
      | Error e ->
        Metrics.merge_failed t.metrics;
        write_error_response e
      | exception Failpoint.Injected p ->
        Metrics.merge_failed t.metrics;
        (Protocol.Err, Error.to_string (Error.Fault p), `Error))

(* ------------------------------------------------------------------ *)
(* Sharded-corpus serving (DESIGN.md §4i).  Queries scatter over the
   live shards and gather under one guard; a shard that cannot answer
   degrades the response to PARTIAL with [shards=served/total] and a
   sound bound instead of failing it.  Writes route by id; RELOAD
   swaps one shard. *)

let corpus_algorithm = function
  | Flexpath.DPO -> Corpus.DPO
  | Flexpath.SSO -> Corpus.SSO
  | Flexpath.Hybrid -> Corpus.Hybrid

(* Corpus-wide ingestion gauges: sums (docs, backlog, WAL bytes,
   replay) and the max staleness — the slowest shard bounds the
   corpus's merge freshness. *)
let corpus_ingest_gauges c =
  let h = Corpus.health c in
  {
    Metrics.corpus_docs = Corpus.doc_count c;
    delta_docs = Array.fold_left (fun a (s : Corpus.shard_health) -> a + s.h_unmerged) 0 h;
    wal_bytes = Array.fold_left (fun a (s : Corpus.shard_health) -> a + s.h_wal_bytes) 0 h;
    staleness_ms =
      Array.fold_left (fun a (s : Corpus.shard_health) -> Float.max a s.h_staleness_ms) 0.0 h;
    wal_replayed_records =
      Array.fold_left (fun a (s : Corpus.shard_health) -> a + s.h_replayed) 0 h;
    readonly_stores =
      Array.fold_left
        (fun a (s : Corpus.shard_health) ->
          a
          + Array.fold_left
              (fun a (r : Corpus.replica_health) -> if r.rh_readonly then a + 1 else a)
              0 s.h_replicas)
        0 h;
  }

let replica_gauges (r : Corpus.replica_health) =
  {
    Metrics.replica_idx = r.rh_idx;
    replica_role = Corpus.role_to_string r.rh_role;
    replica_live = r.rh_live;
    replica_quarantined = r.rh_quarantined;
    replica_synced = r.rh_synced;
    replica_generation = r.rh_generation;
    replica_docs = r.rh_docs;
    replica_lag = r.rh_lag;
    replica_lag_ms = r.rh_lag_ms;
    replica_readonly = r.rh_readonly;
    replica_readonly_retry_ms = r.rh_readonly_retry_ms;
  }

let corpus_shard_gauges c =
  Array.to_list
    (Array.map
       (fun (s : Corpus.shard_health) ->
         {
           Metrics.shard_live = s.h_live;
           shard_quarantined = s.h_quarantined;
           shard_generation = s.h_generation;
           shard_docs = s.h_docs;
           shard_strikes = s.h_strikes;
           shard_unmerged = s.h_unmerged;
           shard_staleness_ms = s.h_staleness_ms;
           shard_wal_bytes = s.h_wal_bytes;
           shard_replicas = Array.to_list (Array.map replica_gauges s.h_replicas);
         })
       (Corpus.health c))

let exec_shards (crt : corpus_rt) =
  (* One line per shard, exactly the PR-7 format at [R = 1]; past one
     replica each shard line is followed by one indented line per
     replica (role, sync/lag, read-only state — satellite of §4l). *)
  let replica_lines (s : Corpus.shard_health) =
    if Array.length s.h_replicas <= 1 then []
    else
      Array.to_list
        (Array.map
           (fun (r : Corpus.replica_health) ->
             let state =
               if r.rh_quarantined then "quarantined"
               else if not r.rh_live then "down"
               else if r.rh_synced then "synced"
               else "catching-up"
             in
             Printf.sprintf
               "  replica %d.%d: %s %s generation=%d docs=%d strikes=%d lag=%d lag_ms=%.0f \
                readonly=%s%s%s"
               s.h_ord r.rh_idx
               (Corpus.role_to_string r.rh_role)
               state r.rh_generation r.rh_docs r.rh_strikes r.rh_lag r.rh_lag_ms
               (if r.rh_readonly then "yes" else "no")
               (if r.rh_readonly then Printf.sprintf " retry_after_ms=%d" r.rh_readonly_retry_ms
                else "")
               (match r.rh_last_error with None -> "" | Some e -> "  error=" ^ e))
           s.h_replicas)
  in
  let lines =
    List.concat_map
      (fun (s : Corpus.shard_health) ->
        let state =
          if s.h_quarantined then "quarantined" else if s.h_live then "live" else "down"
        in
        Printf.sprintf
          "shard %d: %s generation=%d docs=%d strikes=%d unmerged=%d staleness_ms=%.0f \
           wal_bytes=%d replayed=%d%s"
          s.h_ord state s.h_generation s.h_docs s.h_strikes s.h_unmerged s.h_staleness_ms
          s.h_wal_bytes s.h_replayed
          (match s.h_last_error with None -> "" | Some e -> "  error=" ^ e)
        :: replica_lines s)
      (Array.to_list (Corpus.health crt.corpus))
  in
  (Protocol.Ok_, String.concat "\n" lines, `Ok)

(* The write lane over a sharded corpus: the same admission class as
   {!with_write_lane} (the corpus serializes actual writers per shard
   itself), but the reject hint reflects the backlog of the shard this
   write {e routes to} — other shards' queues are irrelevant to it. *)
let with_corpus_write_lane t (crt : corpus_rt) ~id f =
  let pos = Atomic.fetch_and_add crt.cwriters 1 in
  Fun.protect
    ~finally:(fun () -> Atomic.decr crt.cwriters)
    (fun () ->
      if pos >= crt.ccfg.write_lane then begin
        Metrics.write_rejected t.metrics;
        let backlog =
          match id with
          | Some id -> Corpus.merge_backlog crt.corpus (Corpus.shard_of_id crt.corpus id)
          | None ->
            (* An auto-id INGEST routes only once the id is minted:
               bound the wait by the deepest shard backlog. *)
            Array.fold_left
              (fun a (s : Corpus.shard_health) -> max a s.h_unmerged)
              0 (Corpus.health crt.corpus)
        in
        (Protocol.Overloaded, Protocol.retry_after_body (backlog_hint_ms backlog), `Error)
      end
      else f ())

let exec_corpus_ingest t (crt : corpus_rt) ~id body =
  match Corpus.ingest crt.corpus ?id body with
  | Error e -> write_error_response e
  | Ok doc_id ->
    Metrics.ingested t.metrics;
    ( Protocol.Ok_,
      Printf.sprintf "ingested %s; shard %d; generations %s" doc_id
        (Corpus.shard_of_id crt.corpus doc_id)
        (Corpus.generation_vector crt.corpus),
      `Ok )

let exec_corpus_delete t (crt : corpus_rt) ~id =
  match Corpus.delete crt.corpus ~id with
  | Error e -> write_error_response e
  | Ok () ->
    Metrics.deleted t.metrics;
    ( Protocol.Ok_,
      Printf.sprintf "deleted %s; generations %s" id (Corpus.generation_vector crt.corpus),
      `Ok )

(* A foreground MERGE compacts every live shard with a backlog; the
   first failure is reported but does not undo the shards already
   merged (their WALs are truncated durably). *)
let exec_corpus_merge t (crt : corpus_rt) =
  let c = crt.corpus in
  let shards_merged = ref 0 and records = ref 0 and failed = ref [] in
  Array.iter
    (fun (s : Corpus.shard_health) ->
      if s.h_live && s.h_unmerged > 0 then
        match Corpus.merge c s.h_ord with
        | Ok () ->
          incr shards_merged;
          records := !records + s.h_unmerged;
          Metrics.merged t.metrics
        | Error e ->
          failed := (s.h_ord, e) :: !failed;
          Metrics.merge_failed t.metrics
        | exception Failpoint.Injected p ->
          failed := (s.h_ord, Error.Fault p) :: !failed;
          Metrics.merge_failed t.metrics)
    (Corpus.health c);
  match List.rev !failed with
  | [] ->
    ( Protocol.Ok_,
      Printf.sprintf "merged %d delta record(s) across %d shard(s); wals truncated" !records
        !shards_merged,
      `Ok )
  | (ord, e) :: _ ->
    let status, body, outcome = write_error_response e in
    (status, Printf.sprintf "shard %d: %s" ord body, outcome)

(* RELOAD over a corpus: the argument is a shard ordinal (one replica
   set swaps; the others keep serving), [<ord>.<replica>] for a single
   replica (catch-up from the primary — the recovery path for a torn
   follower WAL or a quarantined copy), or absent — every shard
   reloads, stopping at the first failure. *)
let exec_corpus_reload t (crt : corpus_rt) arg =
  let c = crt.corpus in
  let n = Corpus.shard_count c in
  let r = Corpus.replica_count c in
  let parse_target s =
    let parse_ord tok =
      match int_of_string_opt tok with
      | Some ord when ord >= 0 && ord < n -> Ok ord
      | Some ord -> Error (Printf.sprintf "reload: shard %d out of range (0..%d)" ord (n - 1))
      | None ->
        Error
          (Printf.sprintf
             "reload: expected a shard ordinal 0..%d (or <shard>.<replica>) on a sharded \
              server, got %S"
             (n - 1) s)
    in
    match String.split_on_char '.' (String.trim s) with
    | [ tok ] -> Result.map (fun ord -> (ord, None)) (parse_ord tok)
    | [ tok; rep ] -> (
      Result.bind (parse_ord tok) (fun ord ->
          match int_of_string_opt rep with
          | Some j when j >= 0 && j < r -> Ok (ord, Some j)
          | Some j -> Error (Printf.sprintf "reload: replica %d out of range (0..%d)" j (r - 1))
          | None -> Error (Printf.sprintf "reload: bad replica ordinal %S" rep)))
    | _ -> Error (Printf.sprintf "reload: bad target %S (expected <shard> or <shard>.<replica>)" s)
  in
  let targets =
    match arg with
    | None -> Ok (List.init n (fun ord -> (ord, None)))
    | Some s -> Result.map (fun t -> [ t ]) (parse_target s)
  in
  match targets with
  | Error msg -> (Protocol.Err, msg, `Error)
  | Ok targets -> (
    let rec go = function
      | [] -> Ok ()
      | (ord, replica) :: rest -> (
        match Corpus.reload c ?replica ord with
        | Ok () -> go rest
        | Error e -> Error (ord, Error.to_string e))
    in
    match go targets with
    | Ok () ->
      Metrics.reloads t.metrics;
      ( Protocol.Ok_,
        (match targets with
        | [ (ord, Some j) ] ->
          Printf.sprintf "reloaded replica %d.%d; generations %s" ord j
            (Corpus.generation_vector c)
        | _ ->
          Printf.sprintf "reloaded shard(s) %s; generations %s"
            (String.concat "," (List.map (fun (ord, _) -> string_of_int ord) targets))
            (Corpus.generation_vector c)),
        `Ok )
    | Error (ord, e) -> (Protocol.Err, Printf.sprintf "shard %d: %s" ord e, `Error))

let exec_corpus_query (crt : corpus_rt) ~q ~k ~algorithm ~scheme ~budget =
  let algorithm = Option.map corpus_algorithm algorithm in
  match Corpus.query crt.corpus ?budget ?algorithm ?scheme ~k q with
  | Error e -> (Protocol.Err, Error.to_string e, `Error)
  | Ok r -> (
    let lines =
      List.mapi
        (fun i a -> Printf.sprintf "%2d. %s" (i + 1) (Corpus.answer_line a))
        r.Corpus.answers
    in
    match r.Corpus.completeness with
    | Corpus.Complete -> (Protocol.Ok_, String.concat "\n" lines, `Ok)
    | Corpus.Partial { reason; score_bound } ->
      (* The partial wire contract: what is missing ([shards=]), why
         ([reason=]), and how good it could have been ([score_bound=],
         sound on the scheme's primary key). *)
      let hdr =
        Printf.sprintf "# partial reason=%s score_bound=%.4f shards=%d/%d" reason score_bound
          r.Corpus.served r.Corpus.total
      in
      (Protocol.Partial, String.concat "\n" (hdr :: lines), `Truncated))

(* Per-shard background merges: each shard has its own cadence clock,
   so a shard with a deep backlog (or a failing disk) never delays the
   others' compaction.  Same liveness contract as {!merge_domain_body}:
   an escaping exception flags [cmerge_dead] for the supervisor. *)
let corpus_merge_loop t (crt : corpus_rt) () =
  let interval_ms = Float.max 50.0 crt.ccfg.merge_interval_ms in
  let n = Corpus.shard_count crt.corpus in
  let last = Array.make n (Monotime.now_ms ()) in
  while not (Atomic.get t.stopping) do
    Unix.sleepf 0.05;
    for ord = 0 to n - 1 do
      (* Async replication: drain queued ships every tick (not on the
         merge cadence) so follower lag stays bounded by the tick, not
         by the merge interval. *)
      Corpus.ship_pending crt.corpus ord;
      if
        Monotime.now_ms () -. last.(ord) >= interval_ms
        && Corpus.merge_backlog crt.corpus ord > 0
      then begin
        last.(ord) <- Monotime.now_ms ();
        (* A read-only shard (disk-fault probation) fails its merge
           with [Readonly] until the probation re-probe succeeds;
           that is the degrade working, not a merge-domain fault. *)
        match Corpus.merge crt.corpus ord with
        | Ok () -> Metrics.merged t.metrics
        | Error (Error.Readonly _) -> ()
        | Error _ -> Metrics.merge_failed t.metrics
      end
    done
  done

let corpus_merge_domain_body t (crt : corpus_rt) () =
  match corpus_merge_loop t crt () with
  | () -> ()
  | exception _ ->
    Metrics.merge_failed t.metrics;
    Atomic.set crt.cmerge_dead true

let spawn_corpus_merge_domain t (crt : corpus_rt) =
  if crt.ccfg.merge_interval_ms > 0.0 then
    Atomic.set crt.cmerge_domain (Some (Domain.spawn (corpus_merge_domain_body t crt)))

(* The background merge domain: wake every tick, merge once the
   interval has elapsed and there is something to fold.  An escaping
   exception (the [merge_publish] failpoint simulating a crash in the
   snapshot/WAL overlap window) ends the domain with [wlock] released
   ([Fun.protect]) and [merge_dead] raised; the supervision loop
   respawns it.  Replay idempotency makes the overlap window safe: the
   snapshot is durable and the WAL still holds the same records, so a
   restart — of the domain or the process — converges to the same
   corpus. *)
let merge_loop t rt () =
  let interval_ms = Float.max 50.0 rt.icfg.merge_interval_ms in
  let last = ref (Monotime.now_ms ()) in
  while not (Atomic.get t.stopping) do
    Unix.sleepf 0.05;
    if
      Monotime.now_ms () -. !last >= interval_ms
      && Flexpath.Ingest.unmerged_records rt.store > 0
    then begin
      last := Monotime.now_ms ();
      Mutex.lock rt.wlock;
      let result =
        Fun.protect
          ~finally:(fun () -> Mutex.unlock rt.wlock)
          (fun () -> Flexpath.Ingest.merge rt.store)
      in
      match result with
      | Ok () -> Metrics.merged t.metrics
      | Error _ -> Metrics.merge_failed t.metrics
    end
  done

let merge_domain_body t rt () =
  match merge_loop t rt () with
  | () -> ()
  | exception _ ->
    (* The domain dies (deliberately under the [merge_publish]
       failpoint); flag it for the supervision loop.  No lock is held
       here — [merge_loop] releases [wlock] before propagating. *)
    Metrics.merge_failed t.metrics;
    Atomic.set rt.merge_dead true

let spawn_merge_domain t rt =
  if rt.icfg.merge_interval_ms > 0.0 then
    Atomic.set rt.merge_domain (Some (Domain.spawn (merge_domain_body t rt)))

(* ------------------------------------------------------------------ *)
(* Supervised dispatch.

   A worker evaluates one job and settles it with a step: [Respond]
   (answer, connection keeps reading), [Respond_close] (answer, then
   close — BYE, frame desync), [Drop] (abnormal per-request failure —
   satellite of DESIGN.md §4g: contain it, close this connection, keep
   the worker), [Exit_superseded] (the supervisor claimed this worker
   as lost while it was busy; the replacement owns the pool position
   and the supervisor settles the orphaned job from the inflight
   slot), and [Exit_dead] (a [worker_die] crash: the domain body
   terminates and the supervisor recovers it — and the job — on the
   next scan).  Responses travel through {!Eventloop.respond}; a
   worker never writes to a socket. *)

type step =
  | Respond of Protocol.status * string
  | Respond_close of Protocol.status * string
  | Drop
  | Exit_superseded
  | Exit_dead of string option

let loop_gauges t =
  let s = Eventloop.stats t.loop in
  {
    Metrics.open_connections = s.Eventloop.open_connections;
    fds_in_use = s.Eventloop.fds_in_use;
    bytes_buffered = s.Eventloop.bytes_buffered;
    loop_lag_count = s.Eventloop.lag_count;
    loop_lag_p50_ms = s.Eventloop.lag_p50_ms;
    loop_lag_p99_ms = s.Eventloop.lag_p99_ms;
  }

(* Fingerprint a request before dispatch: the canonical key of the
   parsed XPath for QUERY/RELAX (what the heartbeat publishes and the
   quarantine table matches on), nothing for control verbs.  The parse
   result is reused by the executors below. *)
let pre_parse (req : Protocol.request) =
  match req with
  | Protocol.Query { xpath; _ } | Protocol.Relax { xpath; _ } -> (
    match Tpq.Xpath.parse xpath with
    | Ok q -> (Some (Tpq.Query.canonical_key q), Some (Ok q))
    | Error e -> (None, Some (Error e)))
  | Protocol.Ping | Protocol.Stats | Protocol.Shards | Protocol.Reload _ | Protocol.Shutdown
  | Protocol.Ingest _ | Protocol.Delete _ | Protocol.Merge ->
    (None, None)

(* A wedged worker spins here until the supervisor supersedes it, the
   server stops, or a last-resort cap expires (a real wedge would spin
   forever; the cap keeps tests and benches finite). *)
let wedge t handle =
  let clock = Monotime.create () in
  let rec go () =
    if not (Supervisor.alive t.sup handle) then `Superseded
    else if Atomic.get t.stopping then `Stopped
    else if Monotime.elapsed_s clock > 60.0 then `Stopped
    else begin
      Unix.sleepf 0.02;
      go ()
    end
  in
  go ()

(* Dispatch one parsed request into a settlement step.  [body] is
   [Some] exactly for [Ingest] (already reassembled by the loop). *)
let dispatch t handle (req : Protocol.request) parsed ~body =
  match Failpoint.hit "server_worker" with
  | exception Failpoint.Injected p -> Respond (Protocol.Err, Error.to_string (Error.Fault p))
  | () -> (
    match req with
    | Protocol.Shutdown ->
      stop t;
      Respond_close (Protocol.Bye, "")
    | req -> (
      match Failpoint.hit "worker_die" with
      | exception Failpoint.Injected _ ->
        Exit_dead (match parsed with Some (Ok q) -> Some (Tpq.Query.canonical_key q) | _ -> None)
      | () -> (
        match Failpoint.hit "worker_wedge" with
        | exception Failpoint.Injected _ -> (
          match wedge t handle with `Superseded -> Exit_superseded | `Stopped -> Drop)
        | () ->
          let clock = Monotime.create () in
          let endpoint, (status, body, outcome) =
            match req with
            | Protocol.Ping -> (Metrics.Ping, (Protocol.Ok_, "pong", `Ok))
            | Protocol.Stats ->
              let slot = Atomic.get t.current in
              let cache, ingest, shards =
                match t.corpus with
                | Some crt ->
                  ( Some (Corpus.cache_counters crt.corpus),
                    Some (corpus_ingest_gauges crt.corpus),
                    corpus_shard_gauges crt.corpus )
                | None ->
                  ( Option.map Flexpath.Qcache.counters slot.cache,
                    Option.map ingest_gauges t.ingest,
                    [] )
              in
              ( Metrics.Stats,
                ( Protocol.Ok_,
                  Metrics.render t.metrics ~loop:(loop_gauges t)
                    ~queue_depth:(Admission.length t.queue)
                    ~queue_capacity:(Admission.capacity t.queue)
                    ~generation:slot.generation ~uptime_s:(uptime_s t) ~cache ~ingest ~shards
                    (),
                  `Ok ) )
            | Protocol.Shards -> (
              ( Metrics.Shards,
                match t.corpus with
                | Some crt -> exec_shards crt
                | None ->
                  ( Protocol.Err,
                    "shards: the server is not sharded (start with --shards N)",
                    `Error ) ))
            | Protocol.Reload path -> (
              ( Metrics.Reload,
                match (t.corpus, t.ingest) with
                | Some crt, _ -> exec_corpus_reload t crt path
                | None, Some _ ->
                  (* The store owns the snapshot: swapping in another
                     env would fork the corpus away from the WAL. *)
                  ( Protocol.Err,
                    "reload: disabled while live ingestion owns the snapshot (use MERGE)",
                    `Error )
                | None, None -> exec_reload t path ))
            | Protocol.Ingest { id; _ } -> (
              ( Metrics.Ingest,
                match (t.corpus, t.ingest, body) with
                | None, None, _ ->
                  Metrics.write_rejected t.metrics;
                  ( Protocol.Err,
                    "ingest: not enabled (start the server with --ingest-wal)",
                    `Error )
                | Some crt, _, Some b ->
                  with_corpus_write_lane t crt ~id (fun () -> exec_corpus_ingest t crt ~id b)
                | None, Some rt, Some b -> with_write_lane t rt (fun () -> exec_ingest t rt ~id b)
                | _, _, None -> assert false ))
            | Protocol.Delete { id } -> (
              ( Metrics.Delete,
                match (t.corpus, t.ingest) with
                | None, None ->
                  Metrics.write_rejected t.metrics;
                  ( Protocol.Err,
                    "delete: not enabled (start the server with --ingest-wal)",
                    `Error )
                | Some crt, _ ->
                  with_corpus_write_lane t crt ~id:(Some id) (fun () ->
                      exec_corpus_delete t crt ~id)
                | None, Some rt -> with_write_lane t rt (fun () -> exec_delete t rt ~id) ))
            | Protocol.Merge -> (
              ( Metrics.Merge,
                match (t.corpus, t.ingest) with
                | None, None -> (Protocol.Err, "merge: live ingestion is not enabled", `Error)
                | Some crt, _ -> exec_corpus_merge t crt
                | None, Some rt -> exec_merge t rt ))
            | Protocol.Relax { steps; _ } ->
              ( Metrics.Relax,
                match parsed with
                | Some (Error e) -> parse_error_response e
                | Some (Ok q) ->
                  let env =
                    match t.corpus with
                    | Some crt -> Corpus.scoring_env crt.corpus
                    | None -> (Atomic.get t.current).env
                  in
                  exec_relax env ~q ~steps
                | None -> assert false )
            | Protocol.Query { k; algorithm; scheme; deadline_ms; tuple_budget; step_budget; restart_cap; _ }
              -> (
              ( Metrics.Query,
                match parsed with
                | Some (Error e) -> parse_error_response e
                | Some (Ok q) ->
                  let budget =
                    merge_budget t.cfg ~deadline_ms ~tuple_budget ~step_budget ~restart_cap
                  in
                  let k = Option.value ~default:t.cfg.default_k k in
                  (match t.corpus with
                  | Some crt -> exec_corpus_query crt ~q ~k ~algorithm ~scheme ~budget
                  | None -> exec_query (Atomic.get t.current) ~q ~k ~algorithm ~scheme ~budget)
                | None -> assert false ))
            | Protocol.Shutdown -> assert false
          in
          Metrics.record t.metrics endpoint ~latency_ms:(Monotime.elapsed_ms clock) ~outcome;
          Respond (status, body))))

(* One request under supervision: publish the heartbeat (fingerprint +
   timestamp), quarantine-check, dispatch with per-request
   containment, retire the heartbeat.  A failed retire means the
   supervisor claimed this worker while the request ran — the
   replacement owns the pool position now and the supervisor settles
   the job, so this worker must exit without touching the accounting
   again. *)
let dispatch_supervised t handle req ~body =
  let fingerprint, parsed = pre_parse req in
  match fingerprint with
  | Some key when Supervisor.quarantined t.sup key ->
    Metrics.quarantined t.metrics;
    Respond
      ( Protocol.Quarantined,
        Printf.sprintf "query quarantined after %d worker loss(es); not executed"
          (Supervisor.strikes t.sup key) )
  | _ -> (
    let token = Supervisor.busy handle ~fingerprint in
    let result =
      (* Satellite fix of §4g: an unexpected exception while serving
         one request must cost that request's connection, not the
         worker domain. *)
      match dispatch t handle req parsed ~body with
      | r -> r
      | exception _ -> Drop
    in
    match result with
    | Exit_superseded | Exit_dead _ -> result
    | Respond _ | Respond_close _ | Drop ->
      if Supervisor.retire handle token then result else Exit_superseded)

(* Shed one queued job whose sojourn exceeded the deadline: tell the
   client to back off and move on — a worker never spends query
   execution on it.  The loop flushes the reject and closes. *)
let shed_stale t (job : job) =
  Metrics.shed_queue_deadline t.metrics;
  Eventloop.respond t.loop job.conn ~status:Protocol.Overloaded
    ~body:(Protocol.retry_after_body (retry_after_hint_ms t))
    ~close:true

let pop_job t =
  match t.cfg.queue_deadline_ms with
  | None -> Admission.pop t.queue
  | Some bound ->
    Admission.pop_until t.queue
      ~fresh:(fun job -> Monotime.now_ms () -. job.enqueued_ms <= bound)
      ~shed:(shed_stale t)

(* Worker [i]: pop a job, publish it in the inflight slot, evaluate,
   settle through the loop.  The slot is populated before the
   heartbeat goes Busy and cleared only after a successful retire, so
   whichever of worker and supervisor wins the retire race finds
   exactly the settlement duty it owns. *)
let worker t i handle () =
  let slot = t.inflight.(i) in
  let rec loop () =
    match pop_job t with
    | None -> ()
    | Some job -> (
      Atomic.set slot (Some job);
      match dispatch_supervised t handle job.req ~body:job.body with
      | Respond (status, body) ->
        Atomic.set slot None;
        Eventloop.respond t.loop job.conn ~status ~body ~close:false;
        loop ()
      | Respond_close (status, body) ->
        Atomic.set slot None;
        Eventloop.respond t.loop job.conn ~status ~body ~close:true;
        loop ()
      | Drop ->
        Atomic.set slot None;
        Metrics.connection_dropped t.metrics;
        Eventloop.drop t.loop job.conn;
        loop ()
      | Exit_superseded ->
        (* The supervisor claimed this worker: it owns the slot's job
           now (or already settled it); the replacement is running. *)
        ()
      | Exit_dead fp ->
        (* Leave the slot populated — the supervisor's scan claims the
           dead worker and settles the job from it. *)
        Supervisor.mark_dead handle ~fingerprint:fp ~had_connection:true)
  in
  try loop ()
  with _ ->
    (* A crash outside any request (nothing in flight to settle): flag
       it so the supervisor restores pool capacity. *)
    Supervisor.mark_dead handle ~fingerprint:None ~had_connection:false

(* ------------------------------------------------------------------ *)
(* The supervision loop: scan heartbeats, replace casualties. *)

let supervision_loop t () =
  let interval_s = Float.max 0.01 (t.cfg.hard_wall_ms /. 4000.0) in
  while not (Atomic.get t.stopping) do
    Unix.sleepf interval_s;
    List.iter
      (fun (c : Supervisor.casualty) ->
        Metrics.worker_lost t.metrics;
        (* The lost domain is leaked — OCaml domains cannot be killed —
           but its in-flight job must not leak its connection: claim
           the job from the inflight slot (the lost worker's retire
           already failed, so it cannot settle it too) and drop it
           through the loop, which closes the fd and releases
           admission. *)
        (match Atomic.exchange t.inflight.(c.index) None with
        | Some job -> Eventloop.drop t.loop job.conn
        | None -> ());
        ignore c.had_connection;
        let h = Supervisor.replace t.sup c.index in
        t.domains.(c.index) <- Some (Domain.spawn (worker t c.index h));
        Metrics.worker_respawned t.metrics)
      (Supervisor.scan t.sup ~now_ms:(Monotime.now_ms ()));
    (* The merge domain is supervised too: a death in the
       snapshot/WAL overlap window (the [merge_publish] failpoint)
       leaves [wlock] released and the WAL intact, so a replacement
       picks the same deltas up and converges. *)
    (match t.ingest with
    | Some rt when Atomic.get rt.merge_dead ->
      Atomic.set rt.merge_dead false;
      (match Atomic.get rt.merge_domain with Some d -> Domain.join d | None -> ());
      Atomic.set rt.merge_domain (Some (Domain.spawn (merge_domain_body t rt)));
      Metrics.merge_respawned t.metrics
    | Some _ | None -> ());
    (* The per-shard merge domain is supervised the same way; the
       shards' WALs keep every acked write, so the replacement
       converges shard by shard. *)
    match t.corpus with
    | Some crt when Atomic.get crt.cmerge_dead ->
      Atomic.set crt.cmerge_dead false;
      (match Atomic.get crt.cmerge_domain with Some d -> Domain.join d | None -> ());
      Atomic.set crt.cmerge_domain (Some (Domain.spawn (corpus_merge_domain_body t crt)));
      Metrics.merge_respawned t.metrics
    | Some _ | None -> ()
  done

(* ------------------------------------------------------------------ *)
(* The event loop ↔ worker-pool seam *)

(* Request admission, on the loop domain: a parsed frame either enters
   the bounded queue or is told OVERLOADED immediately — the loop
   flushes the reject and closes, so an overloaded server still
   answers in microseconds instead of leaving clients to hang. *)
let on_request t conn req ~body =
  let job = { conn; req; body; enqueued_ms = Monotime.now_ms () } in
  match Admission.try_push t.queue job with
  | `Admitted -> ()
  | `Full | `Closed ->
    Metrics.connection_rejected t.metrics;
    Eventloop.respond t.loop conn ~status:Protocol.Overloaded
      ~body:(Protocol.retry_after_body (retry_after_hint_ms t))
      ~close:true

let callbacks t =
  {
    Eventloop.on_request = (fun conn req ~body -> on_request t conn req ~body);
    on_admitted =
      (fun () ->
        Atomic.incr t.active;
        Metrics.connection_admitted t.metrics);
    on_rejected =
      (fun () ->
        Metrics.connection_rejected t.metrics;
        Protocol.retry_after_body (retry_after_hint_ms t));
    on_dropped = (fun () -> Metrics.connection_dropped t.metrics);
    on_closed = (fun () -> Atomic.decr t.active);
  }

let serve t =
  (* A client closing mid-response must not kill the server. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  Array.iteri
    (fun i _ -> t.domains.(i) <- Some (Domain.spawn (worker t i (Supervisor.occupant t.sup i))))
    t.domains;
  Option.iter (fun rt -> spawn_merge_domain t rt) t.ingest;
  Option.iter (fun crt -> spawn_corpus_merge_domain t crt) t.corpus;
  let supervisor =
    if t.cfg.supervise then Some (Domain.spawn (supervision_loop t)) else None
  in
  Eventloop.run t.loop (callbacks t);
  (* The loop returned: every admitted connection is settled, so no
     job remains queued or in flight.  Close the queue so the workers'
     blocking pops return, then join.  The supervision domain is
     joined first so no respawn races the worker join; workers lost
     before shutdown were superseded (their domains are leaked, their
     replacements are in [t.domains]) and exit on their own once their
     wedge notices the stop flag.  The merge domain is joined after
     the supervisor (its last respawn, if any, is then in
     [merge_domain]); the store closes last — the WAL it leaves behind
     replays on the next start. *)
  Atomic.set t.stopping true;
  Admission.close t.queue;
  Option.iter Domain.join supervisor;
  Array.iter (Option.iter Domain.join) t.domains;
  (match t.ingest with
  | Some rt ->
    (match Atomic.get rt.merge_domain with Some d -> Domain.join d | None -> ());
    Flexpath.Ingest.close rt.store
  | None -> ());
  (match t.corpus with
  | Some crt ->
    (match Atomic.get crt.cmerge_domain with Some d -> Domain.join d | None -> ());
    Corpus.close crt.corpus
  | None -> ());
  Eventloop.dispose t.loop;
  try Unix.close t.listen_fd with Unix.Unix_error _ -> ()
