(** Fixed-size reservoir sampling of a latency stream.

    Percentiles over an unbounded stream in bounded memory: the classic
    Algorithm R keeps a uniform sample of everything seen so far in a
    fixed array, so a server that has handled millions of requests
    reports p50/p90/p99 from a few hundred floats.  Randomness comes
    from an internal LCG seeded per instance from a creation counter
    (no dependence on [Random]'s global state, no seeding side effects,
    and no cross-reservoir correlation); replacement indices are drawn
    by rejection sampling, so they are exactly uniform.

    Not thread-safe: the owner ({!Metrics}) serializes access. *)

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 512 samples. *)

val add : t -> float -> unit
val count : t -> int  (** Values offered so far (not the sample size). *)

val filled : t -> int  (** Samples currently held, [<= capacity]. *)

val percentile : t -> float -> float
(** [percentile t p] for [p] in [0..100], interpolated over the sample;
    [nan] when empty. *)
