module Failpoint = Flexpath.Failpoint
module Monotime = Flexpath.Monotime

type conn = { fd : Unix.file_descr; ic : in_channel }

let connect ?(host = "127.0.0.1") ~port () =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port)) with
  | () -> Ok { fd; ic = Unix.in_channel_of_descr fd }
  | exception Unix.Unix_error (err, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error (Printf.sprintf "cannot connect to %s:%d: %s" host port (Unix.error_message err))
  | exception Failure msg ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error (Printf.sprintf "cannot connect to %s:%d: %s" host port msg)

(* [in_channel_of_descr] owns the descriptor: closing the channel
   closes the socket. *)
let close c = try close_in c.ic with Sys_error _ -> ()

type req = { line : string; body : string option }

let ingest_request ?id xml =
  let id_tok = match id with None -> "" | Some i -> " id=" ^ i in
  { line = Printf.sprintf "INGEST %d%s" (String.length xml) id_tok; body = Some xml }

let write_all c s =
  let n = String.length s in
  let rec go off = if off < n then go (off + Unix.write_substring c.fd s off (n - off)) in
  go 0

let send_req c r =
  Failpoint.hit "client_send";
  match r.body with
  | None -> write_all c (r.line ^ "\n")
  | Some b -> write_all c (String.concat "" [ r.line; "\n"; b; "\n" ])

(* A receive timeout surfaces from the buffered channel as
   [Sys_blocked_io] (the EAGAIN that SO_RCVTIMEO produces), a reset as
   [Sys_error] — both mean "no response on this connection", which is
   all retry needs. *)
let recv c =
  let read_line () =
    match input_line c.ic with
    | l -> Some l
    | exception (End_of_file | Sys_error _ | Sys_blocked_io) -> None
  in
  let read_bytes n =
    let b = Bytes.create n in
    match really_input c.ic b 0 n with
    | () -> Some (Bytes.to_string b)
    | exception (End_of_file | Sys_error _ | Sys_blocked_io) -> None
  in
  Protocol.read_response ~read_line ~read_bytes

let request_framed c r =
  match send_req c r with
  | () -> recv c
  | exception Failpoint.Injected _ -> None
  | exception Unix.Unix_error (_, _, _) -> None

let request c line = request_framed c { line; body = None }

(* ------------------------------------------------------------------ *)
(* The retrying driver *)

type retry = {
  retries : int;
  budget_ms : float option;
  base_backoff_ms : float;
  max_backoff_ms : float;
}

let default_retry =
  { retries = 0; budget_ms = None; base_backoff_ms = 50.0; max_backoff_ms = 2000.0 }

type failure =
  | Connect_failed of string
  | No_response
  | Overloaded
  | Budget_exhausted
  | Store_readonly

let failure_to_string = function
  | Connect_failed msg -> msg
  | No_response -> "connection closed before a response (retries exhausted)"
  | Overloaded -> "server overloaded (retries exhausted)"
  | Budget_exhausted -> "retry budget exhausted"
  | Store_readonly -> "store is read-only after a disk fault (see the retry-after-ms hint)"

(* Deadline propagation: a QUERY carries the client's remaining
   end-to-end budget as its [timeout_ms] option, so however many
   retries happen, no server-side evaluation ever outlives the
   client's own deadline.  A request's explicit [timeout_ms] is
   tightened to the remaining budget, never loosened. *)

let split_token s =
  let n = String.length s in
  let rec skip i = if i < n && s.[i] = ' ' then skip (i + 1) else i in
  let start = skip 0 in
  let rec scan i = if i < n && s.[i] <> ' ' then scan (i + 1) else i in
  let stop = scan start in
  if start = stop then None
  else Some (String.sub s start (stop - start), String.sub s (skip stop) (n - skip stop))

let query_option_keys = [ "k"; "algo"; "scheme"; "timeout_ms"; "tuples"; "steps"; "restarts" ]

let with_deadline line remaining_ms =
  match split_token line with
  | Some (verb, rest) when String.uppercase_ascii verb = "QUERY" ->
    let timeout_token ms = Printf.sprintf "timeout_ms=%.3f" (Float.max ms 0.0) in
    (* Walk the leading [key=value] option tokens exactly as the server
       will: the first unrecognized token starts the XPath, which keeps
       its internal spacing verbatim. *)
    let rec go rest acc seen =
      match split_token rest with
      | Some (tok, after) -> (
        match String.index_opt tok '=' with
        | Some i when List.mem (String.lowercase_ascii (String.sub tok 0 i)) query_option_keys ->
          if String.lowercase_ascii (String.sub tok 0 i) = "timeout_ms" then
            let v = float_of_string_opt (String.sub tok (i + 1) (String.length tok - i - 1)) in
            let ms =
              match v with Some v when v >= 0.0 -> Float.min v remaining_ms | _ -> remaining_ms
            in
            go after (timeout_token ms :: acc) true
          else go after (tok :: acc) seen
        | _ -> (List.rev acc, seen, rest))
      | None -> (List.rev acc, seen, rest)
    in
    let opts, seen, xpath = go rest [] false in
    let opts = if seen then opts else timeout_token remaining_ms :: opts in
    String.concat " " ((verb :: opts) @ [ xpath ])
  | _ -> line

(* An [INGEST] without an explicit [id=] is the one request whose
   retry is unsafe after an ambiguous outcome: the server fsyncs the
   WAL record {e before} acking, so a connection that dies between the
   two may or may not have committed the write — a blind resend could
   ingest the document twice under two auto-assigned ids.  With [id=]
   the write is an upsert and a replay converges to the same state. *)
let ambiguous_on_retry line =
  match split_token line with
  | Some (verb, rest) when String.uppercase_ascii verb = "INGEST" ->
    let rec has_id rest =
      match split_token rest with
      | Some (tok, after) ->
        (String.length tok > 3 && String.lowercase_ascii (String.sub tok 0 3) = "id=")
        || has_id after
      | None -> false
    in
    not (has_id rest)
  | _ -> false

let run_requests ?metrics ?rng ?(host = "127.0.0.1") ~port ~retry requests =
  let rng =
    match rng with Some r -> r | None -> Random.State.make_self_init ()
  in
  let clock = Monotime.create () in
  let remaining () =
    match retry.budget_ms with
    | None -> Float.infinity
    | Some b -> b -. Monotime.elapsed_ms clock
  in
  let conn = ref None in
  let drop_conn () =
    Option.iter close !conn;
    conn := None
  in
  (* Each attempt bounds its wait for a response by an equal share of
     the remaining budget across the attempts still allowed, so one
     wedged attempt cannot eat the whole budget and starve the
     retries. *)
  let arm_timeout c ~attempts_left =
    match retry.budget_ms with
    | None -> ()
    | Some _ ->
      let share = Float.max 0.01 (remaining () /. 1000.0 /. float_of_int (max 1 attempts_left)) in
      (try Unix.setsockopt_float c.fd Unix.SO_RCVTIMEO share with Unix.Unix_error _ -> ())
  in
  (* Full-jitter exponential backoff, floored by the server's
     retry-after hint and capped by the remaining budget. *)
  let backoff ~attempt ~hint_ms =
    Option.iter Metrics.client_retry metrics;
    let ceiling =
      Float.min retry.max_backoff_ms (retry.base_backoff_ms *. (2.0 ** float_of_int attempt))
    in
    let jittered = Random.State.float rng (Float.max ceiling 1.0) in
    let floor_ms = match hint_ms with Some h -> float_of_int h | None -> 0.0 in
    let sleep_ms = Float.max jittered floor_ms in
    let sleep_ms = Float.min sleep_ms (Float.max 0.0 (remaining ())) in
    if sleep_ms > 0.0 then Unix.sleepf (sleep_ms /. 1000.0)
  in
  let rec attempt_request (r : req) ~attempt ~last =
    if remaining () <= 0.0 then Error Budget_exhausted
    else if attempt > retry.retries then Error last
    else begin
      let r =
        match retry.budget_ms with
        | None -> r
        | Some _ -> { r with line = with_deadline r.line (remaining ()) }
      in
      let outcome =
        match !conn with
        | Some c -> Ok c
        | None -> (
          match connect ~host ~port () with
          | Ok c ->
            conn := Some c;
            Ok c
          | Error msg -> Error (Connect_failed msg))
      in
      match outcome with
      | Error fail ->
        backoff ~attempt ~hint_ms:None;
        attempt_request r ~attempt:(attempt + 1) ~last:fail
      | Ok c -> (
        arm_timeout c ~attempts_left:(retry.retries - attempt + 1);
        match request_framed c r with
        | None when ambiguous_on_retry r.line ->
          (* The write may already be durable server-side; resending
             it is not idempotent without an id, so fail fast and let
             the caller decide (see the mli's retry contract). *)
          drop_conn ();
          Error No_response
        | None ->
          (* EOF, reset, receive timeout or injected send fault: this
             connection is unusable; retry on a fresh one. *)
          drop_conn ();
          backoff ~attempt ~hint_ms:None;
          attempt_request r ~attempt:(attempt + 1) ~last:No_response
        | Some (Protocol.Overloaded, body) ->
          (* The server closes the connection after an admission-level
             reject; a queue-deadline shed closed it too. *)
          drop_conn ();
          backoff ~attempt ~hint_ms:(Protocol.parse_retry_after body);
          attempt_request r ~attempt:(attempt + 1) ~last:Overloaded
        | Some (Protocol.Readonly, _) when ambiguous_on_retry r.line ->
          (* An anonymous INGEST is never auto-resent (same policy as
             the ambiguous-outcome rule above): a resend that dies
             mid-flight once the store recovers could double-ingest. *)
          Error Store_readonly
        | Some (Protocol.Readonly, body) ->
          (* Disk-fault degrade: deterministic until the probation
             re-probe, so the hint floors the backoff.  Idempotent
             writes (id= upserts, DELETE) converge on a replay; the
             connection stays usable — the server only refused the
             write class. *)
          backoff ~attempt ~hint_ms:(Protocol.parse_retry_after body);
          attempt_request r ~attempt:(attempt + 1) ~last:Store_readonly
        | Some response ->
          (* OK, PARTIAL, ERR, QUARANTINED, BYE: a definitive answer.
             ERR and QUARANTINED are deterministic — retrying them
             would waste the budget for the same verdict. *)
          Ok response)
    end
  in
  let rec drive acc = function
    | [] -> Ok (List.rev acc)
    | r :: rest -> (
      match attempt_request r ~attempt:0 ~last:No_response with
      | Ok response -> drive (response :: acc) rest
      | Error fail -> Error (fail, List.rev acc))
  in
  let result = drive [] requests in
  drop_conn ();
  result

let run ?metrics ?rng ?host ~port ~retry lines =
  run_requests ?metrics ?rng ?host ~port ~retry
    (List.map (fun line -> { line; body = None }) lines)
