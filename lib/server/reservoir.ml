type t = {
  sample : float array;
  mutable filled : int;  (* occupied prefix of [sample] *)
  mutable count : int;  (* values offered *)
  mutable rng : int64;
}

(* Each reservoir gets its own stream: a global creation counter is run
   through a splitmix64-style finalizer so that two reservoirs created
   back-to-back (the per-endpoint latency samplers) still draw
   uncorrelated replacement indices. *)
let instances = Atomic.make 0

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ?(capacity = 512) () =
  if capacity < 1 then invalid_arg "Reservoir.create: capacity must be at least 1";
  let n = Atomic.fetch_and_add instances 1 in
  let seed = mix (Int64.add 0x9E3779B97F4A7C15L (Int64.mul (Int64.of_int (n + 1)) 0x9E3779B97F4A7C15L)) in
  { sample = Array.make capacity 0.0; filled = 0; count = 0; rng = seed }

(* Donald Knuth's MMIX LCG; the low bits cycle quickly, so indices are
   drawn from the high 32. *)
let step t =
  t.rng <- Int64.add (Int64.mul t.rng 6364136223846793005L) 1442695040888963407L;
  Int64.to_int (Int64.shift_right_logical t.rng 32)

(* Rejection sampling over the 32-bit draw: [high mod n] alone would
   favor small residues whenever [2^32 mod n <> 0]. *)
let rand_below t n =
  let range = 1 lsl 32 in
  let lim = range - (range mod n) in
  let rec go () =
    let high = step t in
    if high < lim then high mod n else go ()
  in
  go ()

let add t x =
  t.count <- t.count + 1;
  let cap = Array.length t.sample in
  if t.filled < cap then begin
    t.sample.(t.filled) <- x;
    t.filled <- t.filled + 1
  end
  else begin
    (* Algorithm R: the i-th value replaces a random slot with
       probability cap/i, which keeps the sample uniform. *)
    let j = rand_below t t.count in
    if j < cap then t.sample.(j) <- x
  end

let count t = t.count
let filled t = t.filled

let percentile t p =
  if t.filled = 0 then Float.nan
  else begin
    let sorted = Array.sub t.sample 0 t.filled in
    Array.sort Float.compare sorted;
    let p = Float.max 0.0 (Float.min 100.0 p) in
    let rank = p /. 100.0 *. float_of_int (t.filled - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then sorted.(lo)
    else begin
      let frac = rank -. float_of_int lo in
      (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
    end
  end
