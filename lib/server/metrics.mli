(** The server-side stats surface backing the [STATS] verb.

    One value per server, shared by every worker domain; a single lock
    serializes the counter bumps and reservoir inserts (all
    sub-microsecond, far off the query hot path).  Latency is sampled
    per endpoint into a fixed-size {!Reservoir}, so percentiles stay
    exact-memory-bounded however long the server runs. *)

type endpoint = Ping | Query | Relax | Stats | Shards | Reload | Ingest | Delete | Merge

val endpoint_to_string : endpoint -> string

type t

val create : unit -> t

val connection_admitted : t -> unit

val connection_rejected : t -> unit
(** [OVERLOADED] fast-rejects. *)

val connection_dropped : t -> unit
(** Read timeouts, oversized or unterminated request lines, injected
    [server_read] faults — anything that ends a connection abnormally. *)

val record : t -> endpoint -> latency_ms:float -> outcome:[ `Ok | `Truncated | `Error ] -> unit
(** One served request: bumps the endpoint's counter, the global
    served/truncated/failed counters and the latency reservoir. *)

val reloads : t -> unit

val worker_lost : t -> unit
(** The supervisor claimed a worker (stale heartbeat or dead domain);
    its domain is leaked. *)

val worker_respawned : t -> unit
(** A replacement worker took the lost worker's pool position. *)

val quarantined : t -> unit
(** A request was fast-rejected [QUARANTINED] before evaluation. *)

val shed_queue_deadline : t -> unit
(** A queued connection exceeded the sojourn bound and was shed with
    [OVERLOADED retry-after-ms=…] instead of being served. *)

val client_retry : t -> unit
(** One retry attempt by a {!Client} that was handed this metrics
    value (test harnesses co-located with the server); the server
    itself never bumps this. *)

val ingested : t -> unit
(** One acknowledged [INGEST] (the document is durably in the WAL). *)

val deleted : t -> unit
(** One acknowledged [DELETE]. *)

val write_rejected : t -> unit
(** A write refused before any evaluation: the write lane was full
    ([OVERLOADED]), or ingestion is not enabled. *)

val merged : t -> unit
(** One durable delta merge (snapshot renamed, WAL truncated). *)

val merge_failed : t -> unit
(** A merge attempt returned an error (or tripped a failpoint); the
    WAL keeps the deltas, so no write is lost. *)

val merge_respawned : t -> unit
(** The supervision loop replaced a dead merge domain. *)

type snapshot = {
  admitted : int;
  rejected : int;
  dropped : int;
  served : int;
  truncated : int;
  failed : int;
  lost : int;
  respawned : int;
  quarantine_rejects : int;
  shed : int;
  retries : int;
  ingests : int;
  deletes : int;
  writes_rejected : int;
  merges : int;
  merge_failures : int;
  merge_respawns : int;
}

val snapshot : t -> snapshot
(** A consistent copy of every counter, for invariant checks
    (chaos-soak asserts [lost = respawned] and the connection
    conservation identity without parsing the [STATS] rendering). *)

type ingest_gauges = {
  corpus_docs : int;  (** Documents in the served corpus. *)
  delta_docs : int;  (** Acknowledged writes not yet merged (WAL records). *)
  wal_bytes : int;
  staleness_ms : float;
      (** Age of the oldest unmerged write — bounded by the merge
          interval while the merge domain is healthy. *)
  wal_replayed_records : int;  (** WAL records replayed at startup. *)
  readonly_stores : int;
      (** Stores currently inside their read-only degrade (disk-fault
          probation, DESIGN.md §4l); renders the [readonly: yes/no]
          flag. *)
}
(** Point-in-time ingestion gauges the server samples from its
    {!Flexpath.Ingest} store when rendering [STATS]. *)

type loop_gauges = {
  open_connections : int;  (** Connections the event loop currently owns. *)
  fds_in_use : int;  (** Those plus the loop's own descriptors. *)
  bytes_buffered : int;
      (** Unparsed input plus unflushed output across all connections —
          the loop's memory exposure to slow or flooding peers. *)
  loop_lag_count : int;
  loop_lag_p50_ms : float;
  loop_lag_p99_ms : float;
      (** Loop iteration processing time: how long readiness waits on
          the I/O domain before being acted on. *)
}
(** Point-in-time event-loop gauges, sampled from {!Eventloop.stats}
    when rendering [STATS]. *)

type replica_gauges = {
  replica_idx : int;
  replica_role : string;  (** ["primary"] / ["follower"]. *)
  replica_live : bool;
  replica_quarantined : bool;
  replica_synced : bool;  (** Holds exactly the primary's acked set. *)
  replica_generation : int;
  replica_docs : int;
  replica_lag : int;  (** Shipped records queued but not yet applied. *)
  replica_lag_ms : float;  (** Age of the oldest queued record. *)
  replica_readonly : bool;
  replica_readonly_retry_ms : int;
}
(** Per-replica gauges of one shard's replica set (DESIGN.md §4l),
    sampled from {!Flexpath.Corpus.health}. *)

type shard_gauges = {
  shard_live : bool;
  shard_quarantined : bool;
  shard_generation : int;
  shard_docs : int;
  shard_strikes : int;
  shard_unmerged : int;  (** This shard's own merge backlog (WAL records). *)
  shard_staleness_ms : float;
  shard_wal_bytes : int;
  shard_replicas : replica_gauges list;
      (** Rendered as [shard <i> replica <j>: …] lines only past one
          replica — the [R = 1] STATS format is byte-identical to the
          pre-replication one. *)
}
(** Point-in-time per-shard gauges, sampled from
    {!Flexpath.Corpus.health} when the server runs a sharded corpus. *)

val render :
  t ->
  ?loop:loop_gauges ->
  queue_depth:int ->
  queue_capacity:int ->
  generation:int ->
  uptime_s:float ->
  cache:Flexpath.Qcache.counters option ->
  ingest:ingest_gauges option ->
  shards:shard_gauges list ->
  unit ->
  string
(** The [STATS] response body: [key: value] lines (counters, queue
    occupancy, snapshot generation, the event-loop gauges when [loop]
    is given — [open_connections], [fds_in_use], [bytes_buffered] and
    [loop_lag_ms count=N p50=… p99=…] — the current generation's
    query-cache counters — or [cache: off] — and, with ingestion
    enabled, the write counters and {!ingest_gauges} lines — or
    [ingest: off]) followed by one latency line per endpoint:
    [latency_ms <endpoint> count=N p50=… p90=… p99=…], or just
    [latency_ms <endpoint> count=0] while the endpoint has no samples
    (never [nan]).  A non-empty [shards] (the sharded-corpus mode)
    adds [shards: live/total], [generation_vector: …] (the corpus
    cache-key scope, [!] marking unservable shards) and one
    [shard <i>: …] gauge line per shard. *)
