type phase =
  | Idle
  | Busy of { fingerprint : string option; since_ms : float }
  | Dead of { fingerprint : string option; had_connection : bool }
  | Lost

type handle = { index : int; cell : phase Atomic.t }

type t = {
  hard_wall_ms : float;
  quarantine_threshold : int;
  slots : handle Atomic.t array;
  qlock : Mutex.t;
  strikes : (string, int) Hashtbl.t;
}

let fresh_handle index = { index; cell = Atomic.make Idle }

let create ~workers ~hard_wall_ms ~quarantine_threshold =
  if workers < 1 then invalid_arg "Supervisor.create: workers must be at least 1";
  if hard_wall_ms <= 0.0 then invalid_arg "Supervisor.create: hard wall must be positive";
  {
    hard_wall_ms;
    quarantine_threshold;
    slots = Array.init workers (fun i -> Atomic.make (fresh_handle i));
    qlock = Mutex.create ();
    strikes = Hashtbl.create 8;
  }

let hard_wall_ms t = t.hard_wall_ms
let workers t = Array.length t.slots
let occupant t index = Atomic.get t.slots.(index)
let alive t h = Atomic.get t.slots.(h.index) == h

let replace t index =
  let h = fresh_handle index in
  Atomic.set t.slots.(index) h;
  h

(* The worker publishes a fresh [Busy] value per request and keeps it
   as a token: ownership of the busy→idle transition is decided by a
   CAS on that exact value, so the worker and a concurrently scanning
   supervisor can never both claim (and account for) the same
   request's connection. *)
let busy h ~fingerprint =
  let b = Busy { fingerprint; since_ms = Flexpath.Monotime.now_ms () } in
  Atomic.set h.cell b;
  b

let retire h token = Atomic.compare_and_set h.cell token Idle

let mark_dead h ~fingerprint ~had_connection =
  Atomic.set h.cell (Dead { fingerprint; had_connection })

(* ------------------------------------------------------------------ *)
(* Quarantine *)

let with_qlock t f =
  Mutex.lock t.qlock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.qlock) f

let strike t fingerprint =
  with_qlock t (fun () ->
      let n = 1 + Option.value ~default:0 (Hashtbl.find_opt t.strikes fingerprint) in
      Hashtbl.replace t.strikes fingerprint n;
      n)

let strikes t fingerprint =
  with_qlock t (fun () -> Option.value ~default:0 (Hashtbl.find_opt t.strikes fingerprint))

let quarantined t fingerprint =
  t.quarantine_threshold > 0 && strikes t fingerprint >= t.quarantine_threshold

(* ------------------------------------------------------------------ *)
(* The staleness scan *)

type casualty = { index : int; fingerprint : string option; had_connection : bool }

let scan t ~now_ms =
  let casualties = ref [] in
  Array.iter
    (fun slot ->
      let h = Atomic.get slot in
      let phase = Atomic.get h.cell in
      let claim token fingerprint had_connection =
        (* CAS: if the worker retired (or re-published) in between, it
           is making progress and is not lost after all. *)
        if Atomic.compare_and_set h.cell token Lost then begin
          (match fingerprint with Some fp -> ignore (strike t fp) | None -> ());
          casualties := { index = h.index; fingerprint; had_connection } :: !casualties
        end
      in
      match phase with
      | Idle | Lost -> ()
      | Busy { fingerprint; since_ms } ->
        if now_ms -. since_ms > t.hard_wall_ms then claim phase fingerprint true
      | Dead { fingerprint; had_connection } -> claim phase fingerprint had_connection)
    t.slots;
  List.rev !casualties
