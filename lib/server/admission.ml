type 'a t = {
  cap : int;
  items : 'a Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Admission.create: capacity must be at least 1";
  {
    cap = capacity;
    items = Queue.create ();
    lock = Mutex.create ();
    nonempty = Condition.create ();
    closed = false;
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let try_push t x =
  with_lock t (fun () ->
      if t.closed then `Closed
      else if Queue.length t.items >= t.cap then `Full
      else begin
        Queue.add x t.items;
        Condition.signal t.nonempty;
        `Admitted
      end)

let pop t =
  with_lock t (fun () ->
      let rec wait () =
        if not (Queue.is_empty t.items) then Some (Queue.pop t.items)
        else if t.closed then None
        else begin
          Condition.wait t.nonempty t.lock;
          wait ()
        end
      in
      wait ())

let rec pop_until t ~fresh ~shed =
  match pop t with
  | None -> None
  | Some x -> if fresh x then Some x else (shed x; pop_until t ~fresh ~shed)

let close t =
  with_lock t (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let length t = with_lock t (fun () -> Queue.length t.items)
let capacity t = t.cap
