/* Readiness polling for the event-loop serving core (DESIGN.md §4j).

   The OCaml stdlib only exposes select(2), whose fd_set caps out at
   FD_SETSIZE (1024) descriptors — useless for a loop that must own
   ten thousand idle connections.  These stubs wrap epoll(7) on Linux
   and fall back to poll(2) elsewhere, behind one small interface:

     create  : unit -> poller
     ctl     : poller -> fd -> interest-bits -> unit   (0 = remove)
     wait    : poller -> timeout_ms -> (fd * ready-bits) array
     close   : poller -> unit

   Interest and readiness share the same bit encoding (kept in sync
   with Poller.read_flag/write_flag/error_flag on the OCaml side):
   1 = readable, 2 = writable, 4 = error/hangup.  EPOLLHUP/EPOLLERR
   are reported with the readable bit also set, so the loop learns
   about a dead peer by reading it (0 / ECONNRESET) on its normal
   read path instead of needing a separate teardown path.

   wait releases the OCaml runtime lock around the kernel call: the
   worker domains keep evaluating queries while the I/O domain sleeps
   on readiness. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/fail.h>
#include <caml/custom.h>
#include <caml/threads.h>
#include <caml/unixsupport.h>

#include <errno.h>
#include <stdlib.h>
#include <string.h>
#include <unistd.h>
#include <sys/resource.h>

#define FLEXPATH_READ 1
#define FLEXPATH_WRITE 2
#define FLEXPATH_ERROR 4

#define MAX_EVENTS 1024

#ifdef __linux__
#include <sys/epoll.h>

struct poller {
  int epfd;
  struct epoll_event events[MAX_EVENTS];
};

#else
#include <poll.h>

struct poller {
  struct pollfd *fds;
  int n;
  int cap;
};

#endif

#define Poller_val(v) (*((struct poller **) Data_custom_val(v)))

static void poller_finalize(value v)
{
  struct poller *p = Poller_val(v);
  if (p == NULL) return;
#ifdef __linux__
  if (p->epfd >= 0) close(p->epfd);
#else
  free(p->fds);
#endif
  free(p);
  Poller_val(v) = NULL;
}

static struct custom_operations poller_ops = {
  "flexpath.poller",
  poller_finalize,
  custom_compare_default,
  custom_hash_default,
  custom_serialize_default,
  custom_deserialize_default,
  custom_compare_ext_default,
  custom_fixed_length_default
};

CAMLprim value flexpath_poller_create(value unit)
{
  CAMLparam1(unit);
  CAMLlocal1(res);
  struct poller *p = malloc(sizeof(struct poller));
  if (p == NULL) caml_raise_out_of_memory();
#ifdef __linux__
  p->epfd = epoll_create1(EPOLL_CLOEXEC);
  if (p->epfd < 0) {
    int err = errno;
    free(p);
    caml_unix_error(err, "epoll_create1", Nothing);
  }
#else
  p->cap = 64;
  p->n = 0;
  p->fds = malloc(p->cap * sizeof(struct pollfd));
  if (p->fds == NULL) {
    free(p);
    caml_raise_out_of_memory();
  }
#endif
  res = caml_alloc_custom(&poller_ops, sizeof(struct poller *), 0, 1);
  Poller_val(res) = p;
  CAMLreturn(res);
}

static struct poller *poller_of_value(value v)
{
  struct poller *p = Poller_val(v);
  if (p == NULL) caml_failwith("poller: used after close");
  return p;
}

CAMLprim value flexpath_poller_close(value v)
{
  CAMLparam1(v);
  poller_finalize(v);
  CAMLreturn(Val_unit);
}

#ifdef __linux__

CAMLprim value flexpath_poller_ctl(value v, value vfd, value vbits)
{
  CAMLparam3(v, vfd, vbits);
  struct poller *p = poller_of_value(v);
  int fd = Int_val(vfd);
  int bits = Int_val(vbits);
  if (bits == 0) {
    /* Removing an fd the kernel already dropped (close(2) purges it
       from the epoll set) is not an error worth surfacing. */
    if (epoll_ctl(p->epfd, EPOLL_CTL_DEL, fd, NULL) < 0
        && errno != ENOENT && errno != EBADF)
      caml_uerror("epoll_ctl(DEL)", Nothing);
  } else {
    struct epoll_event ev;
    memset(&ev, 0, sizeof(ev));
    ev.data.fd = fd;
    if (bits & FLEXPATH_READ) ev.events |= EPOLLIN;
    if (bits & FLEXPATH_WRITE) ev.events |= EPOLLOUT;
    if (epoll_ctl(p->epfd, EPOLL_CTL_MOD, fd, &ev) < 0) {
      if (errno != ENOENT || epoll_ctl(p->epfd, EPOLL_CTL_ADD, fd, &ev) < 0)
        caml_uerror("epoll_ctl", Nothing);
    }
  }
  CAMLreturn(Val_unit);
}

CAMLprim value flexpath_poller_wait(value v, value vtimeout)
{
  CAMLparam2(v, vtimeout);
  CAMLlocal2(arr, pair);
  struct poller *p = poller_of_value(v);
  int timeout = Int_val(vtimeout);
  int n;
  caml_release_runtime_system();
  n = epoll_wait(p->epfd, p->events, MAX_EVENTS, timeout);
  caml_acquire_runtime_system();
  if (n < 0) {
    if (errno == EINTR) n = 0;
    else caml_uerror("epoll_wait", Nothing);
  }
  arr = caml_alloc(n == 0 ? 0 : n, 0);
  for (int i = 0; i < n; i++) {
    uint32_t e = p->events[i].events;
    int bits = 0;
    if (e & (EPOLLIN | EPOLLPRI | EPOLLRDHUP | EPOLLHUP | EPOLLERR))
      bits |= FLEXPATH_READ;
    if (e & EPOLLOUT) bits |= FLEXPATH_WRITE;
    if (e & (EPOLLHUP | EPOLLERR)) bits |= FLEXPATH_ERROR;
    pair = caml_alloc_tuple(2);
    Field(pair, 0) = Val_int(p->events[i].data.fd);
    Field(pair, 1) = Val_int(bits);
    Store_field(arr, i, pair);
  }
  CAMLreturn(arr);
}

#else /* poll(2) fallback */

static int poller_find(struct poller *p, int fd)
{
  for (int i = 0; i < p->n; i++)
    if (p->fds[i].fd == fd) return i;
  return -1;
}

CAMLprim value flexpath_poller_ctl(value v, value vfd, value vbits)
{
  CAMLparam3(v, vfd, vbits);
  struct poller *p = poller_of_value(v);
  int fd = Int_val(vfd);
  int bits = Int_val(vbits);
  int i = poller_find(p, fd);
  if (bits == 0) {
    if (i >= 0) {
      p->fds[i] = p->fds[p->n - 1];
      p->n--;
    }
  } else {
    short events = 0;
    if (bits & FLEXPATH_READ) events |= POLLIN;
    if (bits & FLEXPATH_WRITE) events |= POLLOUT;
    if (i < 0) {
      if (p->n == p->cap) {
        int cap = p->cap * 2;
        struct pollfd *fds = realloc(p->fds, cap * sizeof(struct pollfd));
        if (fds == NULL) caml_raise_out_of_memory();
        p->fds = fds;
        p->cap = cap;
      }
      i = p->n++;
      p->fds[i].fd = fd;
    }
    p->fds[i].events = events;
    p->fds[i].revents = 0;
  }
  CAMLreturn(Val_unit);
}

CAMLprim value flexpath_poller_wait(value v, value vtimeout)
{
  CAMLparam2(v, vtimeout);
  CAMLlocal2(arr, pair);
  struct poller *p = poller_of_value(v);
  int timeout = Int_val(vtimeout);
  int n, ready = 0, emitted = 0;
  caml_release_runtime_system();
  n = poll(p->fds, p->n, timeout);
  caml_acquire_runtime_system();
  if (n < 0) {
    if (errno == EINTR) n = 0;
    else caml_uerror("poll", Nothing);
  }
  if (n > MAX_EVENTS) n = MAX_EVENTS;
  for (int i = 0; i < p->n && ready < n; i++)
    if (p->fds[i].revents != 0) ready++;
  arr = caml_alloc(ready == 0 ? 0 : ready, 0);
  for (int i = 0; i < p->n && emitted < ready; i++) {
    short e = p->fds[i].revents;
    if (e == 0) continue;
    int bits = 0;
    if (e & (POLLIN | POLLPRI | POLLHUP | POLLERR | POLLNVAL))
      bits |= FLEXPATH_READ;
    if (e & POLLOUT) bits |= FLEXPATH_WRITE;
    if (e & (POLLHUP | POLLERR | POLLNVAL)) bits |= FLEXPATH_ERROR;
    pair = caml_alloc_tuple(2);
    Field(pair, 0) = Val_int(p->fds[i].fd);
    Field(pair, 1) = Val_int(bits);
    Store_field(arr, emitted, pair);
    emitted++;
    p->fds[i].revents = 0;
  }
  CAMLreturn(arr);
}

#endif

/* Best-effort RLIMIT_NOFILE raise toward [target]; returns the
   effective soft limit.  Run as root the hard limit rises too, so a
   10k-connection bench works out of the box; otherwise the soft
   limit climbs to the existing hard ceiling and the caller scales
   its connection count to what it was granted. */
CAMLprim value flexpath_raise_nofile(value vtarget)
{
  CAMLparam1(vtarget);
  rlim_t target = (rlim_t) Long_val(vtarget);
  struct rlimit rl;
  if (getrlimit(RLIMIT_NOFILE, &rl) < 0)
    caml_uerror("getrlimit", Nothing);
  if (rl.rlim_cur < target) {
    struct rlimit want = rl;
    want.rlim_cur = target;
    if (rl.rlim_max != RLIM_INFINITY && rl.rlim_max < target)
      want.rlim_max = target;
    if (setrlimit(RLIMIT_NOFILE, &want) < 0) {
      /* Could not raise the hard limit: settle for the soft one. */
      want.rlim_max = rl.rlim_max;
      want.rlim_cur = (rl.rlim_max == RLIM_INFINITY || target < rl.rlim_max)
                          ? target
                          : rl.rlim_max;
      if (setrlimit(RLIMIT_NOFILE, &want) == 0) rl = want;
    } else
      rl = want;
    if (getrlimit(RLIMIT_NOFILE, &rl) < 0)
      caml_uerror("getrlimit", Nothing);
  }
  CAMLreturn(Val_long((long) rl.rlim_cur));
}
