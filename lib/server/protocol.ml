type request =
  | Ping
  | Query of {
      xpath : string;
      k : int option;
      algorithm : Flexpath.algorithm option;
      scheme : Flexpath.Ranking.scheme option;
      deadline_ms : float option;
      tuple_budget : int option;
      step_budget : int option;
      restart_cap : int option;
    }
  | Relax of { xpath : string; steps : int option }
  | Ingest of { len : int; id : string option }
  | Delete of { id : string }
  | Merge
  | Stats
  | Shards
  | Reload of string option
  | Shutdown

let strip_cr s =
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s

(* Split [s] into its first whitespace-delimited token and the rest of
   the line (with the separating blanks removed).  The rest keeps its
   internal spacing: it may be an XPath fragment with significant
   spaces. *)
let split_token s =
  let n = String.length s in
  let rec skip i = if i < n && s.[i] = ' ' then skip (i + 1) else i in
  let start = skip 0 in
  let rec scan i = if i < n && s.[i] <> ' ' then scan (i + 1) else i in
  let stop = scan start in
  if start = stop then None
  else Some (String.sub s start (stop - start), String.sub s (skip stop) (n - skip stop))

let pos_int key v =
  match int_of_string_opt v with
  | Some n when n >= 0 -> Ok n
  | _ -> Error (Printf.sprintf "%s expects a non-negative integer, got %S" key v)

let pos_float key v =
  match float_of_string_opt v with
  | Some f when f >= 0.0 -> Ok f
  | _ -> Error (Printf.sprintf "%s expects a non-negative number, got %S" key v)

(* Consume leading [key=value] option tokens.  The first token that is
   not a recognized option ends the option list; the untouched
   remainder of the line is returned (it is the XPath fragment, which
   may itself contain [=]). *)
let parse_options spec rest =
  let ( let* ) = Result.bind in
  let rec loop rest =
    match split_token rest with
    | None -> Ok rest
    | Some (tok, after) -> (
      match String.index_opt tok '=' with
      | None -> Ok rest
      | Some i -> (
        let key = String.lowercase_ascii (String.sub tok 0 i) in
        let value = String.sub tok (i + 1) (String.length tok - i - 1) in
        match List.assoc_opt key spec with
        | None -> Ok rest
        | Some set ->
          let* () = set value in
          loop after))
  in
  loop rest

let parse_query rest =
  let k = ref None
  and algorithm = ref None
  and scheme = ref None
  and deadline_ms = ref None
  and tuple_budget = ref None
  and step_budget = ref None
  and restart_cap = ref None in
  let int_opt key cell v = Result.map (fun n -> cell := Some n) (pos_int key v) in
  let spec =
    [
      ("k", int_opt "k" k);
      ( "algo",
        fun v -> Result.map (fun a -> algorithm := Some a) (Flexpath.algorithm_of_string v) );
      ("scheme", fun v -> Result.map (fun s -> scheme := Some s) (Flexpath.Ranking.of_string v));
      ("timeout_ms", fun v -> Result.map (fun f -> deadline_ms := Some f) (pos_float "timeout_ms" v));
      ("tuples", int_opt "tuples" tuple_budget);
      ("steps", int_opt "steps" step_budget);
      ("restarts", int_opt "restarts" restart_cap);
    ]
  in
  match parse_options spec rest with
  | Error _ as e -> e
  | Ok "" -> Error "QUERY expects an XPath fragment"
  | Ok xpath ->
    Ok
      (Query
         {
           xpath;
           k = !k;
           algorithm = !algorithm;
           scheme = !scheme;
           deadline_ms = !deadline_ms;
           tuple_budget = !tuple_budget;
           step_budget = !step_budget;
           restart_cap = !restart_cap;
         })

let parse_relax rest =
  let steps = ref None in
  let spec = [ ("steps", fun v -> Result.map (fun n -> steps := Some n) (pos_int "steps" v)) ] in
  match parse_options spec rest with
  | Error _ as e -> e
  | Ok "" -> Error "RELAX expects an XPath fragment"
  | Ok xpath -> Ok (Relax { xpath; steps = !steps })

(* [INGEST <len> [id=<id>]]: the length is mandatory and leads, so a
   server can commit to reading the framed body before it looks at any
   option; the id is syntax-checked here (cheaply, before the body
   arrives) but semantic validation stays with the store. *)
let parse_ingest rest =
  match split_token rest with
  | None -> Error "INGEST expects a body length"
  | Some (len_tok, after) -> (
    match int_of_string_opt len_tok with
    | None ->
      Error (Printf.sprintf "INGEST expects a non-negative body length, got %S" len_tok)
    | Some len when len < 0 ->
      Error (Printf.sprintf "INGEST expects a non-negative body length, got %S" len_tok)
    | Some len -> (
      let id = ref None in
      let spec =
        [
          ( "id",
            fun v ->
              if Flexpath.Ingest.valid_id v then begin
                id := Some v;
                Ok ()
              end
              else Error (Printf.sprintf "invalid document id %S (1-128 of [A-Za-z0-9._-])" v) );
        ]
      in
      match parse_options spec after with
      | Error _ as e -> e
      | Ok "" -> Ok (Ingest { len; id = !id })
      | Ok extra -> Error (Printf.sprintf "INGEST: unexpected trailing %S" extra)))

let parse_delete rest =
  match split_token rest with
  | None -> Error "DELETE expects a document id"
  | Some (id, "") ->
    if Flexpath.Ingest.valid_id id then Ok (Delete { id })
    else Error (Printf.sprintf "invalid document id %S (1-128 of [A-Za-z0-9._-])" id)
  | Some (_, extra) -> Error (Printf.sprintf "DELETE: unexpected trailing %S" extra)

let parse_request line =
  let line = strip_cr line in
  match split_token line with
  | None -> Error "empty request"
  | Some (verb, rest) -> (
    match (String.uppercase_ascii verb, rest) with
    | "PING", "" -> Ok Ping
    | "PING", _ -> Error "PING takes no arguments"
    | "STATS", "" -> Ok Stats
    | "STATS", _ -> Error "STATS takes no arguments"
    | "SHARDS", "" -> Ok Shards
    | "SHARDS", _ -> Error "SHARDS takes no arguments"
    | "SHUTDOWN", "" -> Ok Shutdown
    | "SHUTDOWN", _ -> Error "SHUTDOWN takes no arguments"
    | "RELOAD", "" -> Ok (Reload None)
    | "RELOAD", path -> Ok (Reload (Some path))
    | "QUERY", rest -> parse_query rest
    | "RELAX", rest -> parse_relax rest
    | "INGEST", rest -> parse_ingest rest
    | "DELETE", rest -> parse_delete rest
    | "MERGE", "" -> Ok Merge
    | "MERGE", _ -> Error "MERGE takes no arguments"
    | verb, _ ->
      Error
        (Printf.sprintf
           "unknown verb %S (expected PING, QUERY, RELAX, INGEST, DELETE, MERGE, STATS, SHARDS, \
            RELOAD or SHUTDOWN)"
           verb))

type status = Ok_ | Partial | Err | Overloaded | Quarantined | Readonly | Bye

let status_to_string = function
  | Ok_ -> "OK"
  | Partial -> "PARTIAL"
  | Err -> "ERR"
  | Overloaded -> "OVERLOADED"
  | Quarantined -> "QUARANTINED"
  | Readonly -> "READONLY"
  | Bye -> "BYE"

let status_of_string = function
  | "OK" -> Ok Ok_
  | "PARTIAL" -> Ok Partial
  | "ERR" -> Ok Err
  | "OVERLOADED" -> Ok Overloaded
  | "QUARANTINED" -> Ok Quarantined
  | "READONLY" -> Ok Readonly
  | "BYE" -> Ok Bye
  | other -> Error (Printf.sprintf "unknown response status %S" other)

(* The OVERLOADED body: a machine-readable backoff hint.  Kept to one
   [key=value] token so shedding stays allocation-light. *)
let retry_after_body ms = Printf.sprintf "retry-after-ms=%d" ms

let parse_retry_after body =
  let prefix = "retry-after-ms=" in
  let n = String.length prefix in
  let parse_from tok =
    if String.length tok > n && String.sub tok 0 n = prefix then
      match int_of_string_opt (String.sub tok n (String.length tok - n)) with
      | Some ms when ms >= 0 -> Some ms
      | _ -> None
    else None
  in
  (* Tolerate the hint anywhere among whitespace-separated tokens, so
     the body can grow other fields without breaking old clients. *)
  String.split_on_char ' ' (String.map (function '\n' -> ' ' | c -> c) body)
  |> List.find_map parse_from

let write_response buf status body =
  Buffer.add_string buf (status_to_string status);
  Buffer.add_char buf ' ';
  Buffer.add_string buf (string_of_int (String.length body));
  Buffer.add_char buf '\n';
  Buffer.add_string buf body;
  Buffer.add_char buf '\n'

let read_response ~read_line ~read_bytes =
  match read_line () with
  | None -> None
  | Some line -> (
    match split_token (strip_cr line) with
    | Some (status, len) -> (
      match (status_of_string status, int_of_string_opt (String.trim len)) with
      | Ok status, Some len when len >= 0 -> (
        match read_bytes (len + 1) with
        | Some bytes when String.length bytes = len + 1 && bytes.[len] = '\n' ->
          Some (status, String.sub bytes 0 len)
        | _ -> None)
      | _ -> None)
    | None -> None)
