(** The wire protocol of [flexpath serve] (DESIGN.md §4e).

    {2 Requests}

    One request per line, terminated by ['\n'] (a trailing ['\r'] is
    tolerated for telnet-style clients).  The verb is case-insensitive;
    everything after it is verb-specific:

    {v
    PING
    QUERY [k=N] [algo=A] [scheme=S] [timeout_ms=F] [tuples=N]
          [steps=N] [restarts=N] <xpath>
    RELAX [steps=N] <xpath>
    INGEST <len> [id=<id>]
    DELETE <id>
    MERGE
    STATS
    RELOAD [<path>]
    SHUTDOWN
    v}

    [QUERY]/[RELAX] options are [key=value] tokens recognized {e only}
    before the first token that is not one — the remainder of the line,
    verbatim, is the XPath fragment (which may itself contain [=]).
    Options missing from the request fall back to the server's
    defaults; a [QUERY] budget option overrides the corresponding
    server default budget axis.

    [INGEST] is the one framed request: its line announces the length
    in bytes of the XML document body that follows — exactly [len]
    bytes, then one framing newline (not counted), mirroring response
    framing.  The parser here handles the line only; the server reads
    the body.  Without [id=] the server assigns a fresh [doc-N] id;
    with it, the write is an {e upsert} of that id — the idempotent
    form clients must use when they intend to retry (see {!Client}).
    Ids are 1-128 characters of [A-Za-z0-9._-].  [DELETE] removes one
    document by id; [MERGE] forces a durable delta merge (snapshot
    write + WAL truncation) instead of waiting for the merge
    interval.

    {2 Responses}

    Every request gets exactly one response, framed so clients can
    stream bodies without sniffing for terminators:

    {v
    <STATUS> <body-length>\n
    <body-length bytes of body>\n
    v}

    The status line carries the byte length of the body (which may be
    0); the newline after the body is framing, not part of the length.
    Statuses: [OK]; [PARTIAL] (a budget tripped — the body opens with a
    [# truncated ...] line, then the best answers found); [ERR] (the
    body opens with [<error-kind>: ] naming the {!Flexpath.Error.t}
    constructor class); [OVERLOADED] (admission control rejected the
    connection, or its queue sojourn exceeded the deadline — the body
    carries a [retry-after-ms=N] backoff hint; after a
    connection-level reject the connection closes); [QUARANTINED] (the
    query's fingerprint has cost the server too many workers and is
    fast-rejected before any evaluation — deterministic, so clients
    must {e not} retry it); [BYE] (acknowledges [SHUTDOWN], then the
    connection closes). *)

type request =
  | Ping
  | Query of {
      xpath : string;
      k : int option;
      algorithm : Flexpath.algorithm option;
      scheme : Flexpath.Ranking.scheme option;
      deadline_ms : float option;
      tuple_budget : int option;
      step_budget : int option;
      restart_cap : int option;
    }
  | Relax of { xpath : string; steps : int option }
  | Ingest of { len : int; id : string option }
      (** The body ([len] bytes + framing newline) follows the line;
          the server reads it before dispatch. *)
  | Delete of { id : string }
  | Merge
  | Stats
  | Shards
      (** Per-shard health of a sharded corpus: one line per shard
          (state, generation, docs, strikes, backlog).  An error on an
          unsharded server. *)
  | Reload of string option
      (** [None]: re-load the snapshot the server started from (every
          shard, on a sharded server).  [Some arg]: a snapshot path —
          or, sharded, the shard to swap: [<ord>] for the whole replica
          set, [<ord>.<replica>] for one replica (catch-up from the
          primary when a distinct primary is live). *)
  | Shutdown

val parse_request : string -> (request, string) result
(** Parses one request line (without its terminating newline). *)

type status = Ok_ | Partial | Err | Overloaded | Quarantined | Readonly | Bye
(** [Readonly] is the disk-fault degrade (DESIGN.md §4l): the write
    routed to a store whose durability path failed; the body carries a
    [retry-after-ms=N] probation hint.  Reads keep being served — only
    the write class degrades. *)

val status_to_string : status -> string
val status_of_string : string -> (status, string) result

val retry_after_body : int -> string
(** The [OVERLOADED] response body: [retry-after-ms=N]. *)

val parse_retry_after : string -> int option
(** Extracts the [retry-after-ms=N] hint from a response body, if
    present among its whitespace-separated tokens. *)

val write_response : Buffer.t -> status -> string -> unit
(** [write_response buf status body] appends one framed response. *)

val read_response :
  read_line:(unit -> string option) ->
  read_bytes:(int -> string option) ->
  (status * string) option
(** Client-side deframing: [read_line] supplies the status line
    (without its newline), [read_bytes n] supplies exactly [n] bytes or
    [None] on EOF.  Consumes the framing newline after the body.
    [None] on EOF or a malformed frame. *)
