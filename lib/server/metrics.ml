type endpoint = Ping | Query | Relax | Stats | Shards | Reload | Ingest | Delete | Merge

let endpoint_to_string = function
  | Ping -> "ping"
  | Query -> "query"
  | Relax -> "relax"
  | Stats -> "stats"
  | Shards -> "shards"
  | Reload -> "reload"
  | Ingest -> "ingest"
  | Delete -> "delete"
  | Merge -> "merge"

let all_endpoints = [ Ping; Query; Relax; Stats; Shards; Reload; Ingest; Delete; Merge ]

type t = {
  lock : Mutex.t;
  mutable connections_admitted : int;
  mutable connections_rejected : int;
  mutable connections_dropped : int;
  mutable requests_served : int;
  mutable requests_truncated : int;
  mutable requests_failed : int;
  mutable reloads : int;
  mutable workers_lost : int;
  mutable workers_respawned : int;
  mutable quarantined : int;
  mutable shed_queue_deadline : int;
  mutable client_retries : int;
  mutable ingests : int;
  mutable deletes : int;
  mutable writes_rejected : int;
  mutable merges : int;
  mutable merge_failures : int;
  mutable merge_respawns : int;
  latency : (endpoint * Reservoir.t) list;
}

let create () =
  {
    lock = Mutex.create ();
    connections_admitted = 0;
    connections_rejected = 0;
    connections_dropped = 0;
    requests_served = 0;
    requests_truncated = 0;
    requests_failed = 0;
    reloads = 0;
    workers_lost = 0;
    workers_respawned = 0;
    quarantined = 0;
    shed_queue_deadline = 0;
    client_retries = 0;
    ingests = 0;
    deletes = 0;
    writes_rejected = 0;
    merges = 0;
    merge_failures = 0;
    merge_respawns = 0;
    latency = List.map (fun e -> (e, Reservoir.create ())) all_endpoints;
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let connection_admitted t =
  with_lock t (fun () -> t.connections_admitted <- t.connections_admitted + 1)

let connection_rejected t =
  with_lock t (fun () -> t.connections_rejected <- t.connections_rejected + 1)

let connection_dropped t =
  with_lock t (fun () -> t.connections_dropped <- t.connections_dropped + 1)

let record t endpoint ~latency_ms ~outcome =
  with_lock t (fun () ->
      t.requests_served <- t.requests_served + 1;
      (match outcome with
      | `Ok -> ()
      | `Truncated -> t.requests_truncated <- t.requests_truncated + 1
      | `Error -> t.requests_failed <- t.requests_failed + 1);
      Reservoir.add (List.assq endpoint t.latency) latency_ms)

let reloads t = with_lock t (fun () -> t.reloads <- t.reloads + 1)
let worker_lost t = with_lock t (fun () -> t.workers_lost <- t.workers_lost + 1)
let worker_respawned t = with_lock t (fun () -> t.workers_respawned <- t.workers_respawned + 1)
let quarantined t = with_lock t (fun () -> t.quarantined <- t.quarantined + 1)

let shed_queue_deadline t =
  with_lock t (fun () -> t.shed_queue_deadline <- t.shed_queue_deadline + 1)

let client_retry t = with_lock t (fun () -> t.client_retries <- t.client_retries + 1)
let ingested t = with_lock t (fun () -> t.ingests <- t.ingests + 1)
let deleted t = with_lock t (fun () -> t.deletes <- t.deletes + 1)
let write_rejected t = with_lock t (fun () -> t.writes_rejected <- t.writes_rejected + 1)
let merged t = with_lock t (fun () -> t.merges <- t.merges + 1)
let merge_failed t = with_lock t (fun () -> t.merge_failures <- t.merge_failures + 1)
let merge_respawned t = with_lock t (fun () -> t.merge_respawns <- t.merge_respawns + 1)

type snapshot = {
  admitted : int;
  rejected : int;
  dropped : int;
  served : int;
  truncated : int;
  failed : int;
  lost : int;
  respawned : int;
  quarantine_rejects : int;
  shed : int;
  retries : int;
  ingests : int;
  deletes : int;
  writes_rejected : int;
  merges : int;
  merge_failures : int;
  merge_respawns : int;
}

let snapshot t =
  with_lock t (fun () ->
      {
        admitted = t.connections_admitted;
        rejected = t.connections_rejected;
        dropped = t.connections_dropped;
        served = t.requests_served;
        truncated = t.requests_truncated;
        failed = t.requests_failed;
        lost = t.workers_lost;
        respawned = t.workers_respawned;
        quarantine_rejects = t.quarantined;
        shed = t.shed_queue_deadline;
        retries = t.client_retries;
        ingests = t.ingests;
        deletes = t.deletes;
        writes_rejected = t.writes_rejected;
        merges = t.merges;
        merge_failures = t.merge_failures;
        merge_respawns = t.merge_respawns;
      })

type ingest_gauges = {
  corpus_docs : int;
  delta_docs : int;
  wal_bytes : int;
  staleness_ms : float;
  wal_replayed_records : int;
  readonly_stores : int;
}

type loop_gauges = {
  open_connections : int;
  fds_in_use : int;
  bytes_buffered : int;
  loop_lag_count : int;
  loop_lag_p50_ms : float;
  loop_lag_p99_ms : float;
}

type replica_gauges = {
  replica_idx : int;
  replica_role : string;  (** ["primary"] / ["follower"]. *)
  replica_live : bool;
  replica_quarantined : bool;
  replica_synced : bool;
  replica_generation : int;
  replica_docs : int;
  replica_lag : int;
  replica_lag_ms : float;
  replica_readonly : bool;
  replica_readonly_retry_ms : int;
}

type shard_gauges = {
  shard_live : bool;
  shard_quarantined : bool;
  shard_generation : int;
  shard_docs : int;
  shard_strikes : int;
  shard_unmerged : int;
  shard_staleness_ms : float;
  shard_wal_bytes : int;
  shard_replicas : replica_gauges list;
      (** Per-replica detail; rendered only past one replica, so the
          single-copy STATS format is unchanged at [R = 1]. *)
}

(* The corpus cache-key convention: one component per shard, [!]
   marking a shard that cannot serve. *)
let generation_vector shards =
  String.concat "."
    (List.map
       (fun g ->
         if g.shard_live then string_of_int g.shard_generation
         else string_of_int g.shard_generation ^ "!")
       shards)

let render t ?loop ~queue_depth ~queue_capacity ~generation ~uptime_s ~cache ~ingest ~shards () =
  with_lock t (fun () ->
      let b = Buffer.create 512 in
      let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
      line "uptime_s: %.1f" uptime_s;
      line "generation: %d" generation;
      line "snapshot_generation: %d" generation;
      line "queue_depth: %d/%d" queue_depth queue_capacity;
      line "connections_admitted: %d" t.connections_admitted;
      line "connections_rejected: %d" t.connections_rejected;
      line "connections_dropped: %d" t.connections_dropped;
      line "requests_served: %d" t.requests_served;
      line "requests_truncated: %d" t.requests_truncated;
      line "requests_failed: %d" t.requests_failed;
      line "reloads: %d" t.reloads;
      line "workers_lost: %d" t.workers_lost;
      line "workers_respawned: %d" t.workers_respawned;
      line "quarantined: %d" t.quarantined;
      line "shed_queue_deadline: %d" t.shed_queue_deadline;
      line "client_retries: %d" t.client_retries;
      (match (loop : loop_gauges option) with
      | None -> ()
      | Some g ->
        line "open_connections: %d" g.open_connections;
        line "fds_in_use: %d" g.fds_in_use;
        line "bytes_buffered: %d" g.bytes_buffered;
        (* Same empty-reservoir rule as the latency lines: never [nan]. *)
        if g.loop_lag_count = 0 then line "loop_lag_ms count=0"
        else
          line "loop_lag_ms count=%d p50=%.3f p99=%.3f" g.loop_lag_count g.loop_lag_p50_ms
            g.loop_lag_p99_ms);
      (match ingest with
      | None -> line "ingest: off"
      | Some g ->
        line "ingests: %d" t.ingests;
        line "deletes: %d" t.deletes;
        line "writes_rejected: %d" t.writes_rejected;
        line "merges: %d" t.merges;
        line "merge_failures: %d" t.merge_failures;
        line "merge_respawns: %d" t.merge_respawns;
        line "corpus_docs: %d" g.corpus_docs;
        line "delta_docs: %d" g.delta_docs;
        line "wal_bytes: %d" g.wal_bytes;
        line "staleness_ms: %.0f" g.staleness_ms;
        line "wal_replayed_records: %d" g.wal_replayed_records;
        line "readonly: %s" (if g.readonly_stores > 0 then "yes" else "no");
        if g.readonly_stores > 0 then line "readonly_stores: %d" g.readonly_stores);
      (match (shards : shard_gauges list) with
      | [] -> ()
      | gs ->
        let live = List.length (List.filter (fun g -> g.shard_live) gs) in
        line "shards: %d/%d" live (List.length gs);
        line "generation_vector: %s" (generation_vector gs);
        List.iteri
          (fun i g ->
            line "shard %d: %s generation=%d docs=%d strikes=%d unmerged=%d staleness_ms=%.0f wal_bytes=%d"
              i
              (if g.shard_quarantined then "quarantined"
               else if g.shard_live then "live"
               else "down")
              g.shard_generation g.shard_docs g.shard_strikes g.shard_unmerged
              g.shard_staleness_ms g.shard_wal_bytes;
            if List.length g.shard_replicas > 1 then
              List.iter
                (fun r ->
                  line
                    "shard %d replica %d: %s %s generation=%d docs=%d lag=%d lag_ms=%.0f \
                     readonly=%s%s"
                    i r.replica_idx r.replica_role
                    (if r.replica_quarantined then "quarantined"
                     else if not r.replica_live then "down"
                     else if r.replica_synced then "synced"
                     else "catching-up")
                    r.replica_generation r.replica_docs r.replica_lag r.replica_lag_ms
                    (if r.replica_readonly then "yes" else "no")
                    (if r.replica_readonly then
                       Printf.sprintf " retry_after_ms=%d" r.replica_readonly_retry_ms
                     else ""))
                g.shard_replicas)
          gs);
      (match (cache : Flexpath.Qcache.counters option) with
      | None -> line "cache: off"
      | Some c ->
        line "cache_hits: %d" c.Flexpath.Qcache.hits;
        line "cache_misses: %d" c.Flexpath.Qcache.misses;
        line "cache_evictions: %d" c.Flexpath.Qcache.evictions;
        line "cache_bytes: %d" c.Flexpath.Qcache.bytes;
        line "cache_entries: %d" c.Flexpath.Qcache.entries);
      List.iter
        (fun (e, r) ->
          (* An empty reservoir has no percentiles: never render [nan]
             (it breaks numeric parsing on clients), but keep the line so
             every endpoint is always enumerable. *)
          if Reservoir.filled r = 0 then line "latency_ms %s count=0" (endpoint_to_string e)
          else
            line "latency_ms %s count=%d p50=%.3f p90=%.3f p99=%.3f" (endpoint_to_string e)
              (Reservoir.count r) (Reservoir.percentile r 50.0) (Reservoir.percentile r 90.0)
              (Reservoir.percentile r 99.0))
        t.latency;
      Buffer.contents b)
