(* The event-loop connection core (DESIGN.md §4j).

   One domain owns every connection: accept, line/frame reassembly,
   write flushing, idle/read/write deadlines.  Parsed requests are
   handed to the owner's [on_request] callback (the server pushes them
   at its admission queue); evaluation happens on worker domains that
   never touch a socket — they settle each request by pushing a
   {!respond}/{!drop} completion that the loop applies.  An idle
   connection therefore costs one fd and one buffer, not a domain, and
   there is no 250 ms [SO_RCVTIMEO] wake-up tax anywhere: all timing
   comes from the loop's timer heap feeding the poll timeout.

   Ownership rules, which is what makes the core race-free:
   - connection records are touched ONLY by the loop domain;
   - workers reach a connection exclusively through the completion
     queue ({!respond}/{!drop} enqueue under a mutex and wake the loop
     through a self-pipe);
   - at most one request per connection is in flight, and an inflight
     connection has read interest disarmed and no deadlines — the loop
     will not close it under the worker; every settlement path
     (worker retire, supervisor casualty claim) produces exactly one
     completion, so [open_] guards are belt-and-braces, not load-
     bearing.

   Backpressure: a client that floods bytes while its request is in
   flight fills the connection's input buffer to a high-water mark,
   after which read interest is dropped and TCP pushes back.  Frame
   caps ([max_line_bytes], [max_body_bytes]) bound what a single
   request may buffer. *)

module Failpoint = Flexpath.Failpoint
module Monotime = Flexpath.Monotime

let max_line_bytes = 65536

(* Hard cap on an [INGEST] frame, over and above the store's own
   document budget: a length the server would not even consider is
   answered with [ERR] and the connection closed rather than being
   read-and-discarded. *)
let max_body_bytes = 64 * 1024 * 1024

(* Stop reading (let TCP backpressure the peer) once this many
   unparsed bytes are buffered on one connection; request frames
   themselves may exceed it (an INGEST body is read through it). *)
let inbuf_highwater = 256 * 1024

let read_chunk = 16384

(* ------------------------------------------------------------------ *)
(* A growable input byte window: append at the tail, consume from the
   head.  [scanned] memoizes how far newline scanning got, so line
   reassembly over many small reads stays linear. *)

module Inbuf = struct
  type t = {
    mutable buf : Bytes.t;
    mutable start : int;
    mutable len : int;
    mutable scanned : int;  (* offsets < scanned (relative to start) hold no '\n' *)
  }

  let create () = { buf = Bytes.create 4096; start = 0; len = 0; scanned = 0 }
  let length b = b.len

  let compact b =
    if b.start > 0 then begin
      Bytes.blit b.buf b.start b.buf 0 b.len;
      b.start <- 0
    end

  let ensure b n =
    if b.start + b.len + n > Bytes.length b.buf then begin
      compact b;
      if b.len + n > Bytes.length b.buf then begin
        let cap = ref (max 4096 (Bytes.length b.buf)) in
        while b.len + n > !cap do
          cap := !cap * 2
        done;
        let nb = Bytes.create !cap in
        Bytes.blit b.buf 0 nb 0 b.len;
        b.buf <- nb
      end
    end

  (* One read(2) into the tail; returns the count (0 = EOF). *)
  let read_into b fd n =
    ensure b n;
    let r = Unix.read fd b.buf (b.start + b.len) n in
    if r > 0 then b.len <- b.len + r;
    r

  let find_newline b =
    let rec go i =
      if i >= b.len then begin
        b.scanned <- b.len;
        None
      end
      else if Bytes.get b.buf (b.start + i) = '\n' then Some i
      else go (i + 1)
    in
    go b.scanned

  let take b n =
    let s = Bytes.sub_string b.buf b.start n in
    b.start <- b.start + n;
    b.len <- b.len - n;
    b.scanned <- 0;
    if b.len = 0 then b.start <- 0;
    s
end

(* ------------------------------------------------------------------ *)

type parse_state =
  | Lines
  | Body of Protocol.request * int  (* an INGEST awaiting [len + 1] framed bytes *)

type conn = {
  fd : Unix.file_descr;
  inbuf : Inbuf.t;
  mutable pstate : parse_state;
  mutable inflight : bool;  (* a request is with the worker pool *)
  mutable wbuf : Bytes.t;
  mutable wpos : int;
  mutable wlen : int;
  mutable open_ : bool;
  mutable eof : bool;
  mutable close_after_flush : bool;
  mutable want_read : bool;
  mutable want_write : bool;
  mutable read_deadline : float;  (* ms; [infinity] = none armed *)
  mutable write_deadline : float;
  mutable buffered_acct : int;  (* this conn's contribution to the gauge *)
}

(* Lazy-deletion timer heap: deadlines are pushed freely (every
   activity re-arms), and an entry is honored only if it still equals
   the connection's current deadline when it fires.  Entries hold the
   connection record itself, so a recycled fd number can never match a
   stale timer. *)
module Theap = struct
  type kind = Kread | Kwrite
  type entry = { time : float; conn : conn; kind : kind }
  type t = { mutable a : entry option array; mutable n : int }

  let create () = { a = Array.make 256 None; n = 0 }
  let get h i = match h.a.(i) with Some e -> e | None -> assert false

  let push h e =
    if h.n = Array.length h.a then begin
      let na = Array.make (2 * h.n) None in
      Array.blit h.a 0 na 0 h.n;
      h.a <- na
    end;
    h.a.(h.n) <- Some e;
    let i = ref h.n in
    h.n <- h.n + 1;
    while
      !i > 0
      &&
      let p = (!i - 1) / 2 in
      if (get h p).time > (get h !i).time then begin
        let tmp = h.a.(p) in
        h.a.(p) <- h.a.(!i);
        h.a.(!i) <- tmp;
        i := p;
        true
      end
      else false
    do
      ()
    done

  let peek_time h = if h.n = 0 then None else Some (get h 0).time

  let pop h =
    if h.n = 0 then None
    else begin
      let top = get h 0 in
      h.n <- h.n - 1;
      h.a.(0) <- h.a.(h.n);
      h.a.(h.n) <- None;
      let i = ref 0 in
      let continue = ref (h.n > 1) in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.n && (get h l).time < (get h !smallest).time then smallest := l;
        if r < h.n && (get h r).time < (get h !smallest).time then smallest := r;
        if !smallest <> !i then begin
          let tmp = h.a.(!smallest) in
          h.a.(!smallest) <- h.a.(!i);
          h.a.(!i) <- tmp;
          i := !smallest
        end
        else continue := false
      done;
      Some top
    end
end

type completion =
  | Respond of { conn : conn; status : Protocol.status; body : string; close : bool }
  | Dropped of conn

type callbacks = {
  on_request : conn -> Protocol.request -> body:string option -> unit;
      (** A fully-reassembled frame, delivered on the loop domain.  The
          connection is already marked inflight; the callee must
          guarantee exactly one eventual {!respond}/{!drop}. *)
  on_admitted : unit -> unit;
  on_rejected : unit -> string;
      (** Accept-level overload; returns the [OVERLOADED] body to send. *)
  on_dropped : unit -> unit;  (** abnormal end: timeout, bad frame, fault, I/O error *)
  on_closed : unit -> unit;  (** every admitted connection's close, normal or not *)
}

type t = {
  poller : Poller.t;
  listen_fd : Unix.file_descr;
  pipe_r : Unix.file_descr;
  pipe_w : Unix.file_descr;
  max_connections : int;
  read_timeout_s : float;
  write_timeout_s : float;
  conns : (int, conn) Hashtbl.t;
  timers : Theap.t;
  comp_lock : Mutex.t;
  completions : completion Queue.t;
  stopping : bool Atomic.t;
  mutable draining : bool;  (* loop-local: the stop flag has been acted on *)
  (* gauges, readable from any domain *)
  g_open : int Atomic.t;
  g_buffered : int Atomic.t;
  lag_lock : Mutex.t;
  lag : Reservoir.t;
}

let fd_int : Unix.file_descr -> int = Obj.magic

let create ~listen_fd ~max_connections ~read_timeout_s ~write_timeout_s =
  let pipe_r, pipe_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock pipe_r;
  Unix.set_nonblock pipe_w;
  {
    poller = Poller.create ();
    listen_fd;
    pipe_r;
    pipe_w;
    max_connections;
    read_timeout_s;
    write_timeout_s;
    conns = Hashtbl.create 1024;
    timers = Theap.create ();
    comp_lock = Mutex.create ();
    completions = Queue.create ();
    stopping = Atomic.make false;
    draining = false;
    g_open = Atomic.make 0;
    g_buffered = Atomic.make 0;
    lag_lock = Mutex.create ();
    lag = Reservoir.create ();
  }

let wake t =
  match Unix.write_substring t.pipe_w "!" 0 1 with
  | _ -> ()
  | exception Unix.Unix_error _ -> ()

let stop t =
  Atomic.set t.stopping true;
  wake t

let stopping t = Atomic.get t.stopping

let push_completion t c =
  Mutex.lock t.comp_lock;
  Queue.push c t.completions;
  Mutex.unlock t.comp_lock;
  wake t

let respond t conn ~status ~body ~close =
  push_completion t (Respond { conn; status; body; close })

let drop t conn = push_completion t (Dropped conn)

type stats = {
  open_connections : int;
  fds_in_use : int;
  bytes_buffered : int;
  lag_count : int;
  lag_p50_ms : float;
  lag_p99_ms : float;
}

let stats t =
  let open_connections = Atomic.get t.g_open in
  Mutex.lock t.lag_lock;
  let lag_count = Reservoir.filled t.lag in
  let lag_p50_ms = if lag_count = 0 then 0.0 else Reservoir.percentile t.lag 50.0 in
  let lag_p99_ms = if lag_count = 0 then 0.0 else Reservoir.percentile t.lag 99.0 in
  Mutex.unlock t.lag_lock;
  {
    open_connections;
    (* listen + poller + both self-pipe ends, alongside the conns *)
    fds_in_use = open_connections + 4;
    bytes_buffered = Atomic.get t.g_buffered;
    lag_count;
    lag_p50_ms;
    lag_p99_ms;
  }

(* ------------------------------------------------------------------ *)
(* Loop internals.  Everything below runs on the loop domain only. *)

let sync_acct t c =
  let now_acct = if c.open_ then Inbuf.length c.inbuf + c.wlen else 0 in
  if now_acct <> c.buffered_acct then begin
    ignore (Atomic.fetch_and_add t.g_buffered (now_acct - c.buffered_acct));
    c.buffered_acct <- now_acct
  end

let set_interest t c =
  if c.open_ then Poller.set t.poller c.fd ~read:c.want_read ~write:c.want_write

let arm_read_deadline t c ~now =
  let limit =
    if t.draining then Float.min t.read_timeout_s 1.0 else t.read_timeout_s
  in
  let dl = now +. (limit *. 1000.0) in
  if dl <> c.read_deadline then begin
    c.read_deadline <- dl;
    Theap.push t.timers { Theap.time = dl; conn = c; kind = Theap.Kread }
  end

let close_conn t cbs c =
  if c.open_ then begin
    c.open_ <- false;
    Poller.remove t.poller c.fd;
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    Hashtbl.remove t.conns (fd_int c.fd);
    Atomic.decr t.g_open;
    sync_acct t c;
    cbs.on_closed ()
  end

let abandon t cbs c =
  if c.open_ then begin
    cbs.on_dropped ();
    close_conn t cbs c
  end

let render status body =
  let buf = Buffer.create (String.length body + 32) in
  Protocol.write_response buf status body;
  Buffer.contents buf

let queue_output c s =
  let n = String.length s in
  if n > 0 then
    if c.wlen = 0 then begin
      if Bytes.length c.wbuf < n then c.wbuf <- Bytes.create (max n 4096);
      Bytes.blit_string s 0 c.wbuf 0 n;
      c.wpos <- 0;
      c.wlen <- n
    end
    else begin
      let need = c.wlen + n in
      if c.wpos + need > Bytes.length c.wbuf then begin
        let nb = Bytes.create (max need (2 * Bytes.length c.wbuf)) in
        Bytes.blit c.wbuf c.wpos nb 0 c.wlen;
        c.wbuf <- nb;
        c.wpos <- 0
      end;
      Bytes.blit_string s 0 c.wbuf (c.wpos + c.wlen) n;
      c.wlen <- c.wlen + n
    end

(* [flush] and [parse_progress] are mutually recursive through the
   post-flush re-arm: a drained write buffer turns the connection back
   to reading and immediately parses whatever the client pipelined. *)
let rec flush t cbs c ~now =
  if c.open_ && c.wlen > 0 then begin
    match Unix.write c.fd c.wbuf c.wpos c.wlen with
    | n ->
      c.wpos <- c.wpos + n;
      c.wlen <- c.wlen - n;
      if c.wlen > 0 then flush t cbs c ~now else after_flush t cbs c ~now
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      if not c.want_write then begin
        c.want_write <- true;
        set_interest t c
      end;
      let dl = now +. (t.write_timeout_s *. 1000.0) in
      c.write_deadline <- dl;
      Theap.push t.timers { Theap.time = dl; conn = c; kind = Theap.Kwrite };
      sync_acct t c
    | exception Unix.Unix_error (_, _, _) -> close_conn t cbs c
  end
  else if c.open_ && c.wlen = 0 then after_flush t cbs c ~now

and after_flush t cbs c ~now =
  c.write_deadline <- infinity;
  if c.want_write then begin
    c.want_write <- false;
    set_interest t c
  end;
  sync_acct t c;
  if c.close_after_flush then close_conn t cbs c
  else if not c.inflight then begin
    if not c.want_read then begin
      c.want_read <- true;
      set_interest t c
    end;
    arm_read_deadline t c ~now;
    parse_progress t cbs c ~now
  end

(* Reassemble and hand over as much as the one-request-in-flight rule
   allows.  Runs only when the connection is quiet: nothing in flight
   and nothing pending to write. *)
and parse_progress t cbs c ~now =
  if c.open_ && (not c.inflight) && c.wlen = 0 then begin
    match c.pstate with
    | Lines -> (
      match Inbuf.find_newline c.inbuf with
      | Some i ->
        let raw = Inbuf.take c.inbuf (i + 1) in
        process_line t cbs c ~now (String.sub raw 0 i)
      | None ->
        if Inbuf.length c.inbuf > max_line_bytes then abandon t cbs c
        else if c.eof then
          if Inbuf.length c.inbuf = 0 then close_conn t cbs c
          else
            (* A final unterminated line: served, as the blocking core
               always did. *)
            process_line t cbs c ~now (Inbuf.take c.inbuf (Inbuf.length c.inbuf))
        else sync_acct t c)
    | Body (req, want) ->
      if Inbuf.length c.inbuf >= want then begin
        let raw = Inbuf.take c.inbuf want in
        if raw.[want - 1] = '\n' then begin
          c.pstate <- Lines;
          deliver t cbs c req ~body:(Some (String.sub raw 0 (want - 1)))
        end
        else abandon t cbs c
      end
      else if c.eof then abandon t cbs c
      else sync_acct t c
  end

and process_line t cbs c ~now line =
  if String.trim line = "" then parse_progress t cbs c ~now
  else
    match Protocol.parse_request line with
    | Error msg ->
      queue_output c (render Protocol.Err ("protocol: " ^ msg));
      flush t cbs c ~now
    | Ok (Protocol.Ingest { len; _ }) when len > max_body_bytes ->
      (* Too large to even read through; the only way to resynchronize
         the stream is to end the connection. *)
      c.close_after_flush <- true;
      queue_output c
        (render Protocol.Err
           (Printf.sprintf "ingest: %d-byte body exceeds the %d-byte frame cap" len
              max_body_bytes));
      flush t cbs c ~now
    | Ok (Protocol.Ingest { len; _ } as req) ->
      c.pstate <- Body (req, len + 1);
      parse_progress t cbs c ~now
    | Ok req -> deliver t cbs c req ~body:None

and deliver t cbs c req ~body =
  c.inflight <- true;
  c.read_deadline <- infinity;
  if c.want_read then begin
    c.want_read <- false;
    set_interest t c
  end;
  sync_acct t c;
  cbs.on_request c req ~body

let handle_accept t cbs fd =
  match Failpoint.hit "server_accept" with
  | exception Failpoint.Injected _ ->
    cbs.on_dropped ();
    (try Unix.close fd with Unix.Unix_error _ -> ())
  | () ->
    if Hashtbl.length t.conns >= t.max_connections then begin
      let body = cbs.on_rejected () in
      (* Best-effort synchronous reject: the response is a few dozen
         bytes, which a fresh socket's send buffer always takes; if
         not, the close alone carries the message. *)
      (try ignore (Unix.write_substring fd (render Protocol.Overloaded body) 0
                     (String.length (render Protocol.Overloaded body)))
       with Unix.Unix_error _ -> ());
      try Unix.close fd with Unix.Unix_error _ -> ()
    end
    else begin
      Unix.set_nonblock fd;
      let c =
        {
          fd;
          inbuf = Inbuf.create ();
          pstate = Lines;
          inflight = false;
          wbuf = Bytes.create 0;
          wpos = 0;
          wlen = 0;
          open_ = true;
          eof = false;
          close_after_flush = false;
          want_read = true;
          want_write = false;
          read_deadline = infinity;
          write_deadline = infinity;
          buffered_acct = 0;
        }
      in
      Hashtbl.replace t.conns (fd_int fd) c;
      Atomic.incr t.g_open;
      Poller.set t.poller fd ~read:true ~write:false;
      arm_read_deadline t c ~now:(Monotime.now_ms ());
      cbs.on_admitted ()
    end

let accept_burst t cbs =
  let budget = ref 128 in
  let continue = ref true in
  while !continue && !budget > 0 do
    decr budget;
    match Unix.accept ~cloexec:true t.listen_fd with
    | fd, _ -> handle_accept t cbs fd
    | exception
        Unix.Unix_error
          ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ECONNABORTED), _, _) ->
      continue := false
    | exception Unix.Unix_error ((Unix.EMFILE | Unix.ENFILE), _, _) ->
      (* Out of descriptors: stop accepting this round; pending
         connections stay in the kernel backlog. *)
      continue := false
  done

let handle_read t cbs c ~now =
  match Failpoint.hit "server_read" with
  | exception Failpoint.Injected _ -> abandon t cbs c
  | () -> (
    match Inbuf.read_into c.inbuf c.fd read_chunk with
    | 0 ->
      c.eof <- true;
      (* No more read interest to arm; whatever is buffered decides. *)
      if c.want_read then begin
        c.want_read <- false;
        set_interest t c
      end;
      parse_progress t cbs c ~now
    | _ ->
      if (not c.inflight) && c.read_deadline < infinity then arm_read_deadline t c ~now;
      if Inbuf.length c.inbuf >= inbuf_highwater && c.want_read then begin
        c.want_read <- false;
        set_interest t c
      end;
      sync_acct t c;
      parse_progress t cbs c ~now
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> abandon t cbs c)

let drain_pipe t =
  let buf = Bytes.create 256 in
  let rec go () =
    match Unix.read t.pipe_r buf 0 256 with
    | 256 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  in
  go ()

let apply_completion t cbs ~now = function
  | Respond { conn = c; status; body; close } ->
    if c.open_ then begin
      c.inflight <- false;
      (* During the stopping drain a connection gets one response and
         then closes — admitted work completes, nothing more starts. *)
      if close || t.draining then c.close_after_flush <- true;
      queue_output c (render status body);
      flush t cbs c ~now
    end
  | Dropped c ->
    if c.open_ then begin
      c.inflight <- false;
      close_conn t cbs c
    end

let fire_timers t cbs ~now =
  let continue = ref true in
  while !continue do
    match Theap.peek_time t.timers with
    | Some time when time <= now -> (
      match Theap.pop t.timers with
      | None -> continue := false
      | Some { Theap.time; conn = c; kind } ->
        if c.open_ then (
          match kind with
          | Theap.Kread ->
            if c.read_deadline = time && not c.inflight then abandon t cbs c
          | Theap.Kwrite -> if c.write_deadline = time && c.wlen > 0 then abandon t cbs c))
    | _ -> continue := false
  done

let begin_drain t cbs =
  if not t.draining then begin
    t.draining <- true;
    Poller.remove t.poller t.listen_fd;
    let now = Monotime.now_ms () in
    (* Clamp the idle allowance: a connection whose request bytes are
       in flight still gets served (that is the drain), but an idle
       one cannot stall the shutdown beyond a second. *)
    Hashtbl.iter
      (fun _ c ->
        if (not c.inflight) && c.open_ then begin
          let dl = now +. (Float.min t.read_timeout_s 1.0 *. 1000.0) in
          if dl < c.read_deadline then begin
            c.read_deadline <- dl;
            Theap.push t.timers { Theap.time = dl; conn = c; kind = Theap.Kread }
          end
        end)
      t.conns;
    ignore cbs
  end

let run t cbs =
  Poller.set t.poller t.listen_fd ~read:true ~write:false;
  Poller.set t.poller t.pipe_r ~read:true ~write:false;
  let listen_i = fd_int t.listen_fd and pipe_i = fd_int t.pipe_r in
  let finished = ref false in
  while not !finished do
    if Atomic.get t.stopping then begin_drain t cbs;
    if t.draining && Hashtbl.length t.conns = 0 then finished := true
    else begin
      let now = Monotime.now_ms () in
      let timeout_ms =
        match Theap.peek_time t.timers with
        | None -> 1000
        | Some time ->
          let d = time -. now in
          if d <= 0.0 then 0 else min 1000 (int_of_float d + 1)
      in
      let events = Poller.wait t.poller ~timeout_ms in
      let t0 = Monotime.now_ms () in
      Array.iter
        (fun (e : Poller.event) ->
          let fdi = fd_int e.fd in
          if fdi = listen_i then (if not t.draining then accept_burst t cbs)
          else if fdi = pipe_i then drain_pipe t
          else
            match Hashtbl.find_opt t.conns fdi with
            | None -> ()
            | Some c ->
              if e.writable && c.open_ && c.wlen > 0 then flush t cbs c ~now:t0;
              if e.readable && c.open_ then handle_read t cbs c ~now:t0
              else if e.error && c.open_ && not c.inflight then abandon t cbs c)
        events;
      (* Completions next: they can both close connections and re-arm
         reads, so they run before timers judge staleness. *)
      let pending =
        Mutex.lock t.comp_lock;
        let q = Queue.create () in
        Queue.transfer t.completions q;
        Mutex.unlock t.comp_lock;
        q
      in
      let tnow = Monotime.now_ms () in
      Queue.iter (fun comp -> apply_completion t cbs ~now:tnow comp) pending;
      if Atomic.get t.stopping then begin_drain t cbs;
      fire_timers t cbs ~now:(Monotime.now_ms ());
      (* Loop lag: how long this iteration spent processing — the time
         readiness waited on this domain, the precursor to shedding. *)
      let lag = Monotime.now_ms () -. t0 in
      Mutex.lock t.lag_lock;
      Reservoir.add t.lag lag;
      Mutex.unlock t.lag_lock
    end
  done

(* Called once the worker pool is joined: nothing can push completions
   or wakes anymore, so the pipe and poller can go. *)
let dispose t =
  (try Unix.close t.pipe_r with Unix.Unix_error _ -> ());
  (try Unix.close t.pipe_w with Unix.Unix_error _ -> ());
  try Poller.close t.poller with _ -> ()
