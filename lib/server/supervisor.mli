(** Worker supervision and poison-query quarantine (DESIGN.md §4g).

    OCaml domains cannot be killed, so a worker that wedges inside a
    pathological query — or whose domain dies on an uncaught exception
    — would silently shrink the pool forever.  This module is the
    bookkeeping that lets the server detect and replace such workers:

    - Each pool position holds a {!handle} whose single atomic cell is
      the worker's {e heartbeat}: [Busy] (with the request's
      fingerprint and a {!Flexpath.Monotime.now_ms} timestamp) while a
      request executes, [Idle] between requests, [Dead] if the domain
      body crashed.
    - A periodic {!scan} claims cells that are [Busy] past the
      configured hard wall, or [Dead], by CAS-ing them to [Lost]; each
      successful claim is a {!casualty} the server answers by spawning
      a replacement worker into the same position ({!replace}) — the
      lost domain itself is leaked (it may never return) but pool
      capacity is preserved.
    - Every casualty's query fingerprint
      ({!Tpq.Query.canonical_key}) receives a {e strike}; at the
      quarantine threshold (default 2) matching queries are
      fast-rejected with [QUARANTINED] before any evaluation work, so
      a poison query cannot eat the pool one replacement at a time.

    Ownership of the busy→idle transition is race-free by
    construction: the worker retires its busy token with a CAS, the
    scan claims staleness with a CAS on the same value — exactly one
    side wins, so the connection held by a lost worker is accounted
    (closed slot, [active] decrement) exactly once. *)

type handle
(** One worker's heartbeat cell plus its pool position.  A handle is
    written by its worker and read by the supervisor; replacements get
    a fresh handle, so a superseded worker's late writes land in a
    cell nobody reads. *)

type t

val create : workers:int -> hard_wall_ms:float -> quarantine_threshold:int -> t
(** [workers] pool positions, all initially [Idle].  A worker [Busy]
    on one request for longer than [hard_wall_ms] is considered lost
    (set it well above the largest legitimate request budget).
    [quarantine_threshold <= 0] disables quarantining. *)

val hard_wall_ms : t -> float
val workers : t -> int

val occupant : t -> int -> handle
(** The current handle at a pool position (the initial one until
    {!replace} installs a successor). *)

val alive : t -> handle -> bool
(** Is [h] still the occupant of its position?  A wedged worker that
    eventually resumes checks this to learn it was superseded and must
    exit instead of competing with its replacement. *)

val replace : t -> int -> handle
(** Installs and returns a fresh handle at a position, superseding the
    current occupant.  Called by the server when respawning after a
    casualty. *)

type phase
(** A busy token: the value published by {!busy}, consumed by
    {!retire}. *)

val busy : handle -> fingerprint:string option -> phase
(** Publishes [Busy] with the current {!Flexpath.Monotime.now_ms} and
    the request's fingerprint ([Query.canonical_key] for QUERY/RELAX,
    [None] for control verbs).  Returns the token for {!retire}. *)

val retire : handle -> phase -> bool
(** CAS the busy token back to [Idle].  [false] means the scan claimed
    this worker as lost in the meantime: the caller no longer owns the
    request's accounting (the supervisor has done it) and must exit. *)

val mark_dead : handle -> fingerprint:string option -> had_connection:bool -> unit
(** The worker domain's body is terminating on a crash ([worker_die]
    or a genuinely uncaught exception): the next {!scan} turns this
    into a casualty without waiting out the hard wall. *)

val strike : t -> string -> int
(** Records one strike against a fingerprint; returns the new count. *)

val strikes : t -> string -> int

val quarantined : t -> string -> bool
(** [true] once a fingerprint has reached the quarantine threshold:
    the server fast-rejects matching queries with [QUARANTINED]. *)

type casualty = { index : int; fingerprint : string option; had_connection : bool }

val scan : t -> now_ms:float -> casualty list
(** One supervision pass: claims stale-[Busy] and [Dead] cells as
    [Lost], strikes their fingerprints, and returns the casualties in
    position order.  The caller replaces each casualty's handle and
    respawns a worker; [had_connection] says whether the lost worker
    held an admitted connection whose accounting the caller must
    settle. *)
