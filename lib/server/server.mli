(** The [flexpath serve] engine: a long-lived multi-domain TCP query
    server over one shared, immutable {!Flexpath.Env}.

    Architecture (DESIGN.md §4e, §4j): the calling domain runs the
    {!Eventloop} — a single poll/epoll-driven I/O domain owning
    accept, request reassembly, response flushing and every
    idle/read/write deadline, so an idle connection costs an fd and a
    buffer rather than a domain.  Fully parsed requests pass through
    admission control (an {!Admission} bounded queue, plus a
    total-connections cap at accept — over either limit the client is
    told [OVERLOADED] immediately and disconnected, never left to
    hang) and are evaluated by a pool of worker domains speaking
    {!Protocol}; workers never touch a socket, they settle each
    request back through the loop.  All workers read the same
    environment snapshot through an [Atomic.t]; a
    [RELOAD] verifies the new snapshot's checksums {e before} swapping
    the atomic, so in-flight queries keep the environment they started
    with (the old value stays live until its last request drains, then
    the GC collects it) and a corrupt snapshot never replaces a good
    one.

    Every query runs under a {!Flexpath.Guard} budget: the server's
    default budget, with any axis overridden by the request's own
    [timeout_ms=]/[tuples=]/[steps=]/[restarts=] options.  Budget
    exhaustion is not a failure — the client gets [PARTIAL] with the
    best answers found and the sound [score_bound] of
    {!Flexpath.Common.completeness}.

    Graceful shutdown ([SHUTDOWN], or {!stop} — which the CLI wires to
    SIGTERM/SIGINT): the listener stops accepting, already-admitted
    connections drain (one final response each; idle ones get at most
    a second), workers join, {!serve} returns.  The
    [server_accept]/[server_read]/[server_worker] failpoints
    deterministically exercise the accept, connection-read and
    dispatcher error paths. *)

type ingest_config = {
  wal : string;  (** Write-ahead log path (created if absent). *)
  merge_interval_ms : float;
      (** Cadence of the background merge domain, which folds
          acknowledged deltas into the snapshot and truncates the WAL;
          it bounds the [staleness_ms] gauge while the domain is
          healthy.  [<= 0] disables the domain — deltas then
          accumulate until a [MERGE] request. *)
  max_doc_bytes : int;  (** Per-document byte budget for [INGEST]. *)
  max_doc_elems : int;
      (** Per-document element budget, enforced by a streaming SAX
          pre-pass before any tree is built. *)
  write_lane : int;
      (** Write admission class: [INGEST]/[DELETE] requests holding or
          waiting on the writer lock beyond this depth are answered
          [OVERLOADED] immediately, so a write burst (or a merge
          holding the lock) cannot starve queries of workers.  [0]
          rejects every write.  The reject's [retry-after-ms] hint
          scales with the merge backlog of the shard the write routes
          to (the store itself, unsharded) — the signal that actually
          governs how soon the writer path clears. *)
  shards : int;
      (** [> 1] serves a fault-isolated sharded corpus
          ({!Flexpath.Corpus}, DESIGN.md §4i) instead of a single
          store: [snapshot] becomes the per-shard file prefix
          ([<prefix>.shard<i>] / [<prefix>.shard<i>.wal]; [wal] is
          unused), documents route to shards by a stable hash of their
          id, queries scatter-gather over the live shards, and a shard
          that cannot answer degrades the response to [PARTIAL] with
          [shards=served/total] and a sound [score_bound] instead of
          failing it.  [SHARDS] reports per-shard health;
          [RELOAD <ord>] swaps one shard; background merges are
          scheduled per shard.  [1] (the default) is the unsharded
          store. *)
  replicas : int;
      (** [> 1] keeps that many copies of each shard (DESIGN.md §4l):
          a primary plus followers, each a full WAL-backed store
          (follower [j] at [<prefix>.shard<i>.r<j>]), kept in sync by
          WAL shipping.  Probes fail over to the next in-sync replica,
          so a single replica loss still yields [Complete] answers;
          [SHARDS]/[STATS] gain per-replica lines and
          [RELOAD <ord>.<replica>] catches one replica up from its
          primary.  Implies the corpus path even at [shards = 1].  [1]
          (the default) is the unreplicated layout. *)
  ack_mode : Flexpath.Corpus.ack_mode;
      (** [Sync] (default): acked records reach every in-sync follower
          (through its own WAL + fsync) before the ack returns.
          [Async]: ships are queued per follower and drained on the
          merge loop's tick, bounding follower lag by the tick rather
          than adding it to write latency; a lagging follower is
          excluded from the queryable view until drained. *)
  probation_ms : float;
      (** Read-only degrade window after a disk fault
          ({!Flexpath.Ingest}): writes are answered [READONLY] with a
          [retry-after-ms] hint until a post-probation write re-probes
          the disk successfully. *)
}

val ingest_defaults : wal:string -> ingest_config
(** 2 s merge interval, {!Flexpath.Ingest.default_limits} document
    budgets, write lane 4, unsharded, unreplicated ([Sync] ack,
    {!Flexpath.Ingest.default_probation_ms} probation). *)

type config = {
  host : string;  (** Listen address, default ["127.0.0.1"]. *)
  port : int;  (** 0 picks an ephemeral port; see {!port}. *)
  workers : int;  (** Worker-domain pool size. *)
  queue_depth : int;  (** Admission queue capacity. *)
  max_connections : int;
      (** Cap on connections admitted and not yet closed (queued plus
          in service); beyond it clients are fast-rejected. *)
  read_timeout_s : float;
      (** Idle limit per request read; an expired connection is
          dropped. *)
  write_timeout_s : float;  (** Send-buffer stall limit per response write. *)
  default_k : int;  (** [k] when a [QUERY] does not pass [k=]. *)
  default_budget : Flexpath.Guard.budget;
      (** Per-request governance defaults; request options override
          per axis. *)
  snapshot : string option;
      (** The snapshot the environment came from; the target of a bare
          [RELOAD]. *)
  cache_mb : int option;
      (** Query-cache budget in MiB; [None] disables caching.  The
          cache ({!Flexpath.Qcache}) lives inside the snapshot slot: a
          successful [RELOAD] swaps in a fresh one atomically with the
          new environment, so no request can ever mix a cached entry
          with a snapshot it was not computed from.  [STATS] reports
          the current generation's counters. *)
  supervise : bool;
      (** Run the supervision loop ({!Supervisor}, DESIGN.md §4g):
          workers whose heartbeat goes stale past [hard_wall_ms] — or
          whose domain died — are declared lost (the domain is leaked;
          OCaml domains cannot be killed) and replaced by a freshly
          spawned worker, preserving pool capacity.  Off, a wedged
          worker shrinks the pool permanently. *)
  hard_wall_ms : float;
      (** How long a worker may stay busy on one request before the
          supervisor declares it lost.  Set well above the largest
          legitimate request budget: a slow-but-governed query should
          always finish (or truncate) before the wall. *)
  quarantine_strikes : int;
      (** Worker losses a query fingerprint may cause before matching
          queries are fast-rejected with [QUARANTINED] (never reaching
          evaluation).  [<= 0] disables quarantining. *)
  queue_deadline_ms : float option;
      (** Bound on a connection's sojourn in the admission queue: a
          worker coming free sheds older entries with
          [OVERLOADED retry-after-ms=…] instead of serving them
          (CoDel-style — under sustained overload, work the client has
          likely given up on is not worth starting).  [None] disables
          shedding. *)
  ingest : ingest_config option;
      (** Live ingestion (DESIGN.md §4h).  Requires [snapshot] (the
          merge target).  The served environment is then the
          {!Flexpath.Ingest} store's — the snapshot plus the replayed
          WAL tail — and [INGEST]/[DELETE]/[MERGE] become live; each
          acknowledged write is WAL-durable {e before} its ack and is
          published as a new generation through the same atomic slot
          swap as a reload, so queries never block on writes and never
          mix cache entries across corpora.  [RELOAD] is refused while
          ingestion is enabled (the store owns the snapshot). *)
}

val default_config : config
(** [127.0.0.1:0], 4 workers, queue 64, 256 connections, 30s/30s
    timeouts, [k]=10, unlimited budget, no snapshot, 64 MiB cache,
    supervision on with a 5 s hard wall and 2 quarantine strikes, no
    queue deadline, no ingestion. *)

type t

val create : config -> env:Flexpath.Env.t -> (t, Flexpath.Error.t) result
(** Binds and listens (so {!port} is known before {!serve} runs);
    failures surface as [Error.Io_error].  With [cfg.ingest] set, the
    store is opened here — snapshot loaded if present, WAL replayed —
    and {e its} environment is served; [env] then only donates weights
    and hierarchy for a store starting from nothing. *)

val port : t -> int
(** The actually bound port — the ephemeral choice when [cfg.port] was 0. *)

val serve : t -> unit
(** Runs the event loop in the calling domain and the worker pool in
    spawned domains; returns after a graceful shutdown completes (all
    admitted connections settled, workers joined, listener closed).
    Call at most once per {!t}. *)

val stop : t -> unit
(** Initiates graceful shutdown from any domain (or a signal handler);
    idempotent.  {!serve} returns once the drain completes. *)

val generation : t -> int
(** The environment's generation: 1 at start, bumped by each
    successful [RELOAD]. *)

val active_connections : t -> int
(** Connections admitted and not yet settled (served, shed, or
    charged to a lost worker).  Zero once traffic has drained — the
    chaos-soak test asserts admission capacity cannot leak. *)

val metrics : t -> Metrics.t
(** The server's live counters (what [STATS] renders).  Exposed for
    invariant checks in tests and for co-located {!Client}s to count
    their retries into. *)

val ingest_store : t -> Flexpath.Ingest.store option
(** The live-ingestion store, when enabled — exposed so tests can
    compare the served corpus against an offline rebuild of the acked
    document set after a quiesce. *)

val corpus : t -> Flexpath.Corpus.t option
(** The sharded corpus, when [ingest.shards > 1] — exposed so tests
    can arm shard-level chaos (failpoints, snapshot corruption) and
    assert per-shard health without going through the wire. *)
