(** A client for the [flexpath serve] wire protocol, with bounded,
    jittered retries and end-to-end deadline propagation (DESIGN.md
    §4g).  Backs [flexpath client]; tests drive it in-process.

    {2 Retry semantics}

    A {!run} sends request lines in order on one connection,
    transparently reconnecting and retrying an attempt that ends
    without a definitive response:

    - {e retried}: connect failures, send failures (including the
      [client_send] failpoint), connections that die or time out
      before a response, [OVERLOADED] — honoring the server's
      [retry-after-ms] hint as a floor under full-jitter exponential
      backoff (bounded retries plus jitter, not bigger queues, is what
      keeps retry storms from amplifying an overload) — and
      [READONLY] for idempotent writes only (see {!failure}).
    - {e not retried}: [OK], [PARTIAL], [ERR], [BYE] — and
      [QUARANTINED], which is the server saying this exact query
      deterministically costs it workers; retrying it would spend the
      whole budget for the same verdict.

    {2 Write idempotency}

    [INGEST] acks only after the WAL record is fsynced, so a
    connection that dies mid-request is {e ambiguous}: the write may
    or may not be durable.  An [INGEST] carrying an explicit [id=] is
    an upsert — replaying it converges, so the ambiguous outcome is
    retried like any other.  An [INGEST] {e without} an id is not
    idempotent (each resend could mint a fresh [doc-N]), so the first
    ambiguous outcome fails the run immediately with {!No_response} —
    only connect failures (no bytes sent) and [OVERLOADED] (a
    definitive reject) are retried for it.  [flexpath client
    --ingest-file] therefore requires [--ingest-id] whenever retries
    are enabled.

    With a [budget_ms], the whole run shares one end-to-end deadline:
    backoff sleeps never overshoot it, each attempt's response wait is
    an equal share of what remains, and — deadline propagation — every
    [QUERY] is sent with [timeout_ms=<remaining>] (an explicit
    [timeout_ms] in the request is tightened, never loosened), so no
    server-side evaluation outlives the client that asked for it. *)

type conn

val connect : ?host:string -> port:int -> unit -> (conn, string) result
val close : conn -> unit

val request : conn -> string -> (Protocol.status * string) option
(** One request, one framed response; [None] on any send or receive
    failure (the connection should then be closed). *)

type req = { line : string; body : string option }
(** One wire request: the line, plus — for [INGEST] — the framed
    document body (sent as [body] bytes and a framing newline after
    the line; [line] must announce [String.length body]). *)

val ingest_request : ?id:string -> string -> req
(** [ingest_request ?id xml] is the well-framed
    [INGEST <len> [id=<id>]] request for [xml]. *)

val request_framed : conn -> req -> (Protocol.status * string) option
(** {!request}, but sending the framed body when present. *)

type retry = {
  retries : int;  (** Additional attempts after the first (0 = try once). *)
  budget_ms : float option;
      (** End-to-end deadline over the whole {!run}, attempts and
          backoff included; [None] retries without a clock (and without
          receive timeouts — a wedged server can then hold an attempt
          until the connection dies). *)
  base_backoff_ms : float;  (** First backoff ceiling; doubles per attempt. *)
  max_backoff_ms : float;  (** Backoff ceiling cap. *)
}

val default_retry : retry
(** No retries, no budget, 50 ms base / 2 s max backoff. *)

type failure =
  | Connect_failed of string
  | No_response
  | Overloaded  (** Still [OVERLOADED] after every allowed attempt. *)
  | Budget_exhausted  (** [budget_ms] ran out before a definitive response. *)
  | Store_readonly
      (** [READONLY] — the disk-fault degrade (DESIGN.md §4l).
          Idempotent writes ([id=] upserts, [DELETE]) are retried with
          the server's [retry-after-ms] probation hint as the backoff
          floor before this failure is reported; an anonymous [INGEST]
          fails fast with it (never auto-resent, same policy as the
          ambiguous-outcome rule — a resend dying mid-flight after
          recovery could double-ingest). *)

val failure_to_string : failure -> string

val with_deadline : string -> float -> string
(** [with_deadline line remaining_ms] is the deadline-propagation
    rewrite {!run} applies to each [QUERY] before sending: its
    [timeout_ms] option set to [remaining_ms] (an existing tighter
    value is kept, a looser one tightened), every other line returned
    verbatim.  Exposed so tests can pin the rewrite down without a
    server. *)

val run_requests :
  ?metrics:Metrics.t ->
  ?rng:Random.State.t ->
  ?host:string ->
  port:int ->
  retry:retry ->
  req list ->
  ((Protocol.status * string) list, failure * (Protocol.status * string) list) result
(** Sends each request in order, retrying per the policy above
    (including the write-idempotency rule).  [Ok responses] pairs one
    response per request; [Error (f, done_)] reports the failure that
    exhausted the policy plus the responses completed before it.
    [?metrics] counts each retry into {!Metrics.client_retry} (for
    harnesses co-located with the server); [?rng] makes the jitter
    deterministic in tests. *)

val run :
  ?metrics:Metrics.t ->
  ?rng:Random.State.t ->
  ?host:string ->
  port:int ->
  retry:retry ->
  string list ->
  ((Protocol.status * string) list, failure * (Protocol.status * string) list) result
(** {!run_requests} over bare request lines (no bodies). *)
