(** Readiness polling beyond select(2)'s 1024-fd ceiling.

    A thin wrapper over the C stubs in [poller_stubs.c]: epoll(7) on
    Linux, poll(2) elsewhere — level-triggered in both cases, so the
    event loop may leave bytes unread or unwritten and simply be told
    again.  One poller instance is owned by exactly one domain (the
    I/O loop); only {!wait} releases the OCaml runtime lock.

    Closed fds must be {!remove}d by their owner before [close(2)]
    where the fallback is in play (the kernel purges epoll
    registrations on close, poll(2)'s user-space fd list knows
    nothing). *)

type t

val create : unit -> t

val set : t -> Unix.file_descr -> read:bool -> write:bool -> unit
(** Register or update interest.  [read:false write:false] keeps the
    fd registered with no interest armed (cheaper than remove+add
    around an in-flight request). *)

val remove : t -> Unix.file_descr -> unit

type event = { fd : Unix.file_descr; readable : bool; writable : bool; error : bool }
(** [error] flags HUP/ERR conditions; [readable] is also set for them
    so the consumer discovers the condition on its ordinary read
    path. *)

val wait : t -> timeout_ms:int -> event array
(** Block up to [timeout_ms] (-1 = indefinitely) for readiness; [[||]]
    on timeout or EINTR.  At most 1024 events per call — further
    ready fds surface on the next call (level-triggered). *)

val close : t -> unit

val raise_nofile : int -> int
(** Best-effort [RLIMIT_NOFILE] raise toward the target; returns the
    effective soft limit (which is the fd budget a bench must fit). *)
