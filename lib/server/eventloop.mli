(** Event-loop connection core (DESIGN.md §4j).

    One I/O domain owns every connection: accept, line/frame
    reassembly into requests, write flushing, and all idle/read/write
    deadlines via a timer heap feeding the poll timeout — no
    [SO_RCVTIMEO] cooperative polling anywhere.  Parsed requests are
    handed to [on_request] (the server enqueues them for its worker
    pool); workers never touch a socket, they settle each request with
    exactly one {!respond} or {!drop}, which the loop applies on its
    own domain (completion queue + self-pipe wake-up).

    At most one request per connection is in flight; while it is, read
    interest is disarmed and no deadline can fire, so the loop never
    closes a connection out from under a worker.  An idle connection
    costs an fd and a buffer, not a domain. *)

type t
type conn

val max_line_bytes : int
(** Longest accepted request line; longer input drops the connection. *)

val max_body_bytes : int
(** Largest [INGEST] frame the loop will read; a larger declared
    length is answered with [ERR] and the connection closed. *)

type callbacks = {
  on_request : conn -> Protocol.request -> body:string option -> unit;
      (** Runs on the loop domain — must not block; hand off and return. *)
  on_admitted : unit -> unit;
  on_rejected : unit -> string;
      (** Accept-level overload (connection table full); the returned
          string is sent as the [OVERLOADED] body before closing. *)
  on_dropped : unit -> unit;
      (** Abnormal end the loop decided on: timeout, oversized or
          malformed frame, injected fault, I/O error.  {!drop}
          completions do not come through here — the worker side
          accounts for those. *)
  on_closed : unit -> unit;
      (** Every admitted connection's close, normal or abnormal. *)
}

val create :
  listen_fd:Unix.file_descr ->
  max_connections:int ->
  read_timeout_s:float ->
  write_timeout_s:float ->
  t

val run : t -> callbacks -> unit
(** Run the loop on the calling domain until {!stop} plus drain: the
    listener is deregistered, idle connections get at most one second,
    in-flight requests are answered (one final response per
    connection) and the loop returns once the table is empty. *)

val stop : t -> unit
(** Signal shutdown from any domain; returns immediately. *)

val stopping : t -> bool

val respond :
  t -> conn -> status:Protocol.status -> body:string -> close:bool -> unit
(** Settle an in-flight request from any domain.  [close:false] turns
    the connection back to reading (unless draining, which allows one
    response and then closes). *)

val drop : t -> conn -> unit
(** Settle an in-flight request by closing its connection without a
    response (supervisor casualty claims, worker [Drop] steps). *)

type stats = {
  open_connections : int;
  fds_in_use : int;
  bytes_buffered : int;  (** unparsed input + unflushed output, all conns *)
  lag_count : int;
  lag_p50_ms : float;
  lag_p99_ms : float;  (** loop iteration processing time — readiness delay *)
}

val stats : t -> stats
(** Safe from any domain (gauges are atomics, the lag reservoir is
    behind its own mutex). *)

val dispose : t -> unit
(** Close the self-pipe and poller.  Only after every domain that
    could call {!respond}/{!drop}/{!stop} has been joined. *)
