type t

external create : unit -> t = "flexpath_poller_create"
external ctl : t -> int -> int -> unit = "flexpath_poller_ctl"
external wait_raw : t -> int -> (int * int) array = "flexpath_poller_wait"
external close : t -> unit = "flexpath_poller_close"
external raise_nofile : int -> int = "flexpath_raise_nofile"

let read_flag = 1
let write_flag = 2
let error_flag = 4

(* On every Unix OCaml targets, [Unix.file_descr] is the raw int. *)
let int_of_fd : Unix.file_descr -> int = Obj.magic
let fd_of_int : int -> Unix.file_descr = Obj.magic

let set t fd ~read ~write =
  let bits = (if read then read_flag else 0) lor if write then write_flag else 0 in
  ctl t (int_of_fd fd) bits

let remove t fd = ctl t (int_of_fd fd) 0

type event = { fd : Unix.file_descr; readable : bool; writable : bool; error : bool }

let wait t ~timeout_ms =
  Array.map
    (fun (fdi, bits) ->
      {
        fd = fd_of_int fdi;
        readable = bits land read_flag <> 0;
        writable = bits land write_flag <> 0;
        error = bits land error_flag <> 0;
      })
    (wait_raw t timeout_ms)
