(** Document statistics and selectivity estimation.

    The penalty formulas of §4.3.1 need the counts [#(t)], [#pc(t1,t2)],
    [#ad(t1,t2)] and [#contains($i, FTExp)]; the SSO algorithm (§5.1.2)
    additionally needs a selectivity estimator for tree pattern queries.
    Following §6, the estimator pre-processes the document to count
    nodes and edges, then assumes a uniform, location-independent
    distribution of elements: if 60% of A elements have a B child, that
    fraction is assumed wherever A occurs. *)

type t

val build : Xmldom.Doc.t -> t
(** One pass over the document (plus one ancestor-stack pass for the
    [#ad] table). *)

val merged : root_tag:string -> t list -> t
(** [merged ~root_tag shards]: a read-only view summing every count
    across the shards' statistics by tag {e name}, as if one combined
    document held all their content.  Each shard must be rooted at
    [root_tag] (the synthetic corpus root); the view subtracts the
    [n-1] surplus roots from tag counts and element totals, so the
    numbers match a single document whose root adopts all shards'
    children.  Sources must each have an index attached (for
    [#contains]).  Merged views are query-time values: {!extend},
    {!set_index} and {!to_portable} reject them.
    @raise Invalid_argument on an empty list, a merged source, or a
    source whose root tag differs from [root_tag]. *)

val total_elems : t -> int
(** Total element count (across all shards for a merged view, counting
    the synthetic root once). *)

val doc : t -> Xmldom.Doc.t
(** The underlying document; for a merged view, the first shard's
    (sizes should come from {!total_elems}). *)

val extend : t -> Xmldom.Doc.t -> first_new:int -> t
(** [extend st doc ~first_new] re-covers the statistics after the
    document grew by {!Xmldom.Doc.append_trees}: one pass over the
    {e new} elements only, yielding tables numerically identical to
    [build doc].  The result has no index attached and a fresh
    [count_contains] cache; call {!set_index} with the matching
    extended index.
    @raise Invalid_argument when [first_new] is not the size of [st]'s
    document. *)

(** {2 Persistence} *)

type portable
(** The count tables without the document, attached index or
    memoization cache — a closure-free value safe to [Marshal] next to
    a separately persisted document. *)

val to_portable : t -> portable

val of_portable : Xmldom.Doc.t -> portable -> t
(** Re-attaches a document and starts a fresh [count_contains] cache;
    call {!set_index} afterwards to restore [#contains] counting.
    @raise Invalid_argument when the tables do not cover exactly the
    document's tag set (they were built from a different document). *)

(** {2 Counts (§4.3.1 notation)} *)

val count_tag : t -> string -> int
(** [#(t)]: number of elements with tag [t]. *)

val count_pc : t -> string -> string -> int
(** [#pc(t1,t2)]: parent-child pairs with those tags. *)

val count_ad : t -> string -> string -> int
(** [#ad(t1,t2)]: ancestor-descendant pairs (strict) with those tags. *)

val count_contains : t -> string -> Fulltext.Ftexp.t -> int
(** [#contains]: elements with the given tag satisfying the expression.
    Needs an index: computed on first use via {!set_index} and cached
    per (tag, expression). *)

val set_index : t -> Fulltext.Index.t -> unit
(** Attach the full-text index used by {!count_contains} and
    {!contains_fraction}.  (The index is built separately because many
    benchmarks share one index across statistics objects.) *)

(** {2 Fractions used by penalties and the estimator} *)

val pc_fraction : t -> string -> string -> float
(** [#pc(t1,t2) / #ad(t1,t2)], the §4.3.1 factor for relaxing a
    pc-predicate to ad; 0 when no ad pairs exist. *)

val ad_density : t -> string -> string -> float
(** [#ad(t1,t2) / (#(t1) · #(t2))], the factor for dropping an
    ad-predicate; 0 when either tag is absent. *)

val contains_fraction : t -> child:string -> parent:string -> Fulltext.Ftexp.t -> float
(** [#contains(child_tag, F) / #contains(parent_tag, F)], the factor for
    promoting a contains predicate from a child to its parent; 1 when
    the denominator is 0. *)

(** {2 Selectivity estimation (§6)} *)

val estimate_answers : t -> Tpq.Query.t -> float
(** Expected number of distinct bindings of the distinguished variable
    under the uniform-distribution assumption.  A lower-is-safer
    estimate: SSO restarts when the real count falls short (§5.1.2). *)

val estimate_matches : t -> Tpq.Query.t -> float
(** Expected number of full matches (can exceed [estimate_answers]). *)

val pp : Format.formatter -> t -> unit
(** Summary: distinct tags, pc/ad table sizes. *)
