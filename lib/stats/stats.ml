module Doc = Xmldom.Doc
module Tag = Xmldom.Tag
module Ftexp = Fulltext.Ftexp
module Index = Fulltext.Index
module Query = Tpq.Query

type pair_key = int * int

module Pair_tbl = Hashtbl.Make (struct
  type t = pair_key

  let equal (a, b) (c, d) = a = c && b = d
  let hash (a, b) = (a * 92821) lxor b
end)

(* One document's statistics — what [build] produces and snapshots
   persist.  The public [t] below is either one of these or a merged
   view over several (one per corpus shard); merged views exist only at
   query time and are never extended or persisted. *)
type single = {
  doc : Doc.t;
  n_by_tag : int array;
  pc : int Pair_tbl.t;
  ad : int Pair_tbl.t;
  children_total : int array; (* #pc(t, any) *)
  desc_total : int array; (* #ad(t, any) *)
  depth_total : int array; (* #ad(any, t) *)
  total_ad : int;
  mutable index : Index.t option;
  contains_cache : (string * string, int) Hashtbl.t;
}

(* A merged view sums counts across sources by tag NAME (tag ids are
   per-document).  [root_tag] names the synthetic per-shard root: each
   source contributes one such element where the equivalent combined
   document has exactly one, so tag counts and element totals subtract
   the [n-1] surplus roots.  Every other count is purely additive —
   levels, subtree extents and parent/ancestor pairs of non-root
   elements are identical in the sharded and combined layouts. *)
type t =
  | Single of single
  | Merged of { sources : single array; root_tag : string }

let build_single doc =
  let n = Doc.size doc in
  let n_tags = Tag.count (Doc.tags doc) in
  let n_by_tag = Array.make n_tags 0 in
  let pc = Pair_tbl.create 256 in
  let ad = Pair_tbl.create 1024 in
  let children_total = Array.make n_tags 0 in
  let desc_total = Array.make n_tags 0 in
  let depth_total = Array.make n_tags 0 in
  let total_ad = ref 0 in
  let bump tbl key = Pair_tbl.replace tbl key (1 + Option.value ~default:0 (Pair_tbl.find_opt tbl key)) in
  for e = 0 to n - 1 do
    let te = Doc.tag doc e in
    n_by_tag.(te) <- n_by_tag.(te) + 1;
    (match Doc.parent doc e with
    | None -> ()
    | Some p ->
      let tp = Doc.tag doc p in
      bump pc (tp, te);
      children_total.(tp) <- children_total.(tp) + 1);
    desc_total.(te) <- desc_total.(te) + (Doc.subtree_end doc e - e - 1);
    let d = Doc.level doc e in
    depth_total.(te) <- depth_total.(te) + d;
    total_ad := !total_ad + d;
    List.iter (fun a -> bump ad (Doc.tag doc a, te)) (Doc.ancestors doc e)
  done;
  {
    doc;
    n_by_tag;
    pc;
    ad;
    children_total;
    desc_total;
    depth_total;
    total_ad = !total_ad;
    index = None;
    contains_cache = Hashtbl.create 64;
  }

let build doc = Single (build_single doc)

let single_of = function
  | Single s -> s
  | Merged _ -> invalid_arg "Stats: operation not supported on a merged view"

let sources = function Single s -> [| s |] | Merged m -> m.sources

let merged ~root_tag ts =
  match ts with
  | [] -> invalid_arg "Stats.merged: at least one source required"
  | _ ->
    let srcs =
      List.map
        (fun t ->
          let s = single_of t in
          let rt = Doc.tag_name s.doc (Doc.root s.doc) in
          if rt <> root_tag then
            invalid_arg
              (Printf.sprintf "Stats.merged: source rooted at <%s>, expected <%s>" rt root_tag);
          s)
        ts
    in
    Merged { sources = Array.of_list srcs; root_tag }

(* Extend statistics over a document that grew by [Doc.append_trees].
   [build]'s loop body is purely additive per element, so running it
   over just the new elements — against the widened document, whose old
   elements kept their ids, levels and subtree extents — reproduces a
   fresh build's tables exactly, up to one correction: the root's own
   descendant count, charged at build time from its subtree extent,
   grew by the number of appended elements.  (The root is the only old
   element whose extent changes, and ancestor walks from new elements
   land on it, so its [ad] rows are already bumped by the loop.) *)
let extend t doc ~first_new =
  let st = single_of t in
  let n = Doc.size doc in
  if first_new <> Doc.size st.doc then
    invalid_arg
      (Printf.sprintf "Stats.extend: statistics cover %d elements, extension starts at %d"
         (Doc.size st.doc) first_new);
  let n_tags = Tag.count (Doc.tags doc) in
  let grow src =
    let g = Array.make n_tags 0 in
    Array.blit src 0 g 0 (Array.length src);
    g
  in
  let n_by_tag = grow st.n_by_tag in
  let pc = Pair_tbl.copy st.pc in
  let ad = Pair_tbl.copy st.ad in
  let children_total = grow st.children_total in
  let desc_total = grow st.desc_total in
  let depth_total = grow st.depth_total in
  let total_ad = ref st.total_ad in
  let bump tbl key = Pair_tbl.replace tbl key (1 + Option.value ~default:0 (Pair_tbl.find_opt tbl key)) in
  for e = first_new to n - 1 do
    let te = Doc.tag doc e in
    n_by_tag.(te) <- n_by_tag.(te) + 1;
    (match Doc.parent doc e with
    | None -> ()
    | Some p ->
      let tp = Doc.tag doc p in
      bump pc (tp, te);
      children_total.(tp) <- children_total.(tp) + 1);
    desc_total.(te) <- desc_total.(te) + (Doc.subtree_end doc e - e - 1);
    let d = Doc.level doc e in
    depth_total.(te) <- depth_total.(te) + d;
    total_ad := !total_ad + d;
    List.iter (fun a -> bump ad (Doc.tag doc a, te)) (Doc.ancestors doc e)
  done;
  if n > first_new then begin
    let rt = Doc.tag doc (Doc.root doc) in
    desc_total.(rt) <- desc_total.(rt) + (n - first_new)
  end;
  Single
    {
      doc;
      n_by_tag;
      pc;
      ad;
      children_total;
      desc_total;
      depth_total;
      total_ad = !total_ad;
      index = None;
      contains_cache = Hashtbl.create 64;
    }

(* The statistics minus the document, the attached index and the
   memoization cache: the count tables snapshot storage persists.
   [of_portable] re-attaches a document and starts a fresh cache; the
   index is re-attached separately via [set_index]. *)
type portable = {
  p_n_by_tag : int array;
  p_pc : int Pair_tbl.t;
  p_ad : int Pair_tbl.t;
  p_children_total : int array;
  p_desc_total : int array;
  p_depth_total : int array;
  p_total_ad : int;
}

let to_portable t =
  let st = single_of t in
  {
    p_n_by_tag = st.n_by_tag;
    p_pc = st.pc;
    p_ad = st.ad;
    p_children_total = st.children_total;
    p_desc_total = st.desc_total;
    p_depth_total = st.depth_total;
    p_total_ad = st.total_ad;
  }

let of_portable doc p =
  if Array.length p.p_n_by_tag <> Tag.count (Doc.tags doc) then
    invalid_arg
      (Printf.sprintf "Stats.of_portable: statistics cover %d tags, document has %d"
         (Array.length p.p_n_by_tag)
         (Tag.count (Doc.tags doc)));
  Single
    {
      doc;
      n_by_tag = p.p_n_by_tag;
      pc = p.p_pc;
      ad = p.p_ad;
      children_total = p.p_children_total;
      desc_total = p.p_desc_total;
      depth_total = p.p_depth_total;
      total_ad = p.p_total_ad;
      index = None;
      contains_cache = Hashtbl.create 64;
    }

(* For a merged view, "the document" is the first source's — callers
   wanting sizes should use [total_elems], which dedups the synthetic
   roots. *)
let doc t = (sources t).(0).doc

let tag_id s name = Tag.find (Doc.tags s.doc) name

(* ------------------------------------------------------------------ *)
(* Per-source count primitives, then name-keyed summation. *)

let pair_count tbl k = Option.value ~default:0 (Pair_tbl.find_opt tbl k)

let s_count_tag s name = match tag_id s name with None -> 0 | Some t -> s.n_by_tag.(t)

let s_count_pc s t1 t2 =
  match (tag_id s t1, tag_id s t2) with
  | Some a, Some b -> pair_count s.pc (a, b)
  | _ -> 0

let s_count_ad s t1 t2 =
  match (tag_id s t1, tag_id s t2) with
  | Some a, Some b -> pair_count s.ad (a, b)
  | _ -> 0

let s_total_elems s = Array.fold_left ( + ) 0 s.n_by_tag

let sum f t = Array.fold_left (fun acc s -> acc + f s) 0 (sources t)

(* Surplus synthetic roots relative to the combined single document. *)
let extra_roots = function Single _ -> 0 | Merged m -> Array.length m.sources - 1

let count_tag t name =
  let c = sum (fun s -> s_count_tag s name) t in
  match t with Merged m when name = m.root_tag -> c - extra_roots t | _ -> c

let count_pc t t1 t2 = sum (fun s -> s_count_pc s t1 t2) t
let count_ad t t1 t2 = sum (fun s -> s_count_ad s t1 t2) t

let set_index t idx = (single_of t).index <- Some idx

(* The memoization cache is the only mutable state on the query path;
   the server evaluates queries against one shared statistics value from
   several domains at once, so lookups and inserts are serialized.  One
   module-level lock (rather than a per-value field) keeps the tables
   marshalable for the v1 snapshot format; contention is negligible —
   penalty construction consults the cache a handful of times per
   query. *)
let cache_lock = Mutex.create ()

let s_count_contains s tag f =
  let key = (tag, Ftexp.to_string f) in
  Mutex.lock cache_lock;
  match Hashtbl.find_opt s.contains_cache key with
  | Some n ->
    Mutex.unlock cache_lock;
    n
  | None ->
    Mutex.unlock cache_lock;
    let n =
      match (s.index, tag_id s tag) with
      | Some idx, Some t -> Index.count_satisfying_with_tag idx f t
      | _, None -> 0
      | None, _ -> invalid_arg "Stats.count_contains: no index attached (use set_index)"
    in
    Mutex.lock cache_lock;
    (* A racing domain may have inserted the same key meanwhile; both
       computed the same pure count, so [replace] is idempotent. *)
    Hashtbl.replace s.contains_cache key n;
    Mutex.unlock cache_lock;
    n

let count_contains t tag f = sum (fun s -> s_count_contains s tag f) t

let pc_fraction t t1 t2 =
  let a = count_ad t t1 t2 in
  if a = 0 then 0.0 else float_of_int (count_pc t t1 t2) /. float_of_int a

let ad_density t t1 t2 =
  let n1 = count_tag t t1 and n2 = count_tag t t2 in
  if n1 = 0 || n2 = 0 then 0.0
  else float_of_int (count_ad t t1 t2) /. (float_of_int n1 *. float_of_int n2)

let contains_fraction t ~child ~parent f =
  let denom = count_contains t parent f in
  if denom = 0 then 1.0
  else Float.min 1.0 (float_of_int (count_contains t child f) /. float_of_int denom)

(* ------------------------------------------------------------------ *)
(* Selectivity estimation.

   Wildcard-aware counts: [None] stands for any tag. *)

let total_elems t = sum s_total_elems t - extra_roots t

let count_tag_opt t = function None -> total_elems t | Some name -> count_tag t name

let count_pc_opt t t1 t2 =
  match (t1, t2) with
  | Some _, Some _ -> count_pc t (Option.get t1) (Option.get t2)
  | Some a, None ->
    sum (fun s -> match tag_id s a with None -> 0 | Some tg -> s.children_total.(tg)) t
  | None, Some b ->
    (* every non-root element has one parent *)
    sum
      (fun s ->
        match tag_id s b with
        | None -> 0
        | Some tg -> s.n_by_tag.(tg) - (if Doc.tag s.doc (Doc.root s.doc) = tg then 1 else 0))
      t
  | None, None -> sum (fun s -> s_total_elems s - 1) t

let count_ad_opt t t1 t2 =
  match (t1, t2) with
  | Some a, Some b -> count_ad t a b
  | Some a, None -> sum (fun s -> match tag_id s a with None -> 0 | Some tg -> s.desc_total.(tg)) t
  | None, Some b -> sum (fun s -> match tag_id s b with None -> 0 | Some tg -> s.depth_total.(tg)) t
  | None, None -> sum (fun s -> s.total_ad) t

(* Fraction of [parent_tag] elements expected to have at least one
   qualifying child/descendant of [child_tag]. *)
let edge_fraction t parent_tag axis child_tag =
  let np = count_tag_opt t parent_tag in
  if np = 0 then 0.0
  else begin
    let pairs =
      match axis with
      | Query.Child -> count_pc_opt t parent_tag child_tag
      | Query.Descendant -> count_ad_opt t parent_tag child_tag
    in
    Float.min 1.0 (float_of_int pairs /. float_of_int np)
  end

let self_fraction t (n : Query.node) =
  (* Probability that an element of this node's tag satisfies the node's
     own contains predicates. *)
  match n.tag with
  | None -> 1.0
  | Some tag ->
    let nt = count_tag t tag in
    if nt = 0 then 0.0
    else
      List.fold_left
        (fun acc f ->
          acc *. Float.min 1.0 (float_of_int (count_contains t tag f) /. float_of_int nt))
        1.0 n.contains

(* P(a fixed element matching node v's tag has a full embedding of v's
   subtree below it), under independence. *)
let rec subtree_prob t q v =
  let n = Query.node q v in
  let own = self_fraction t n in
  List.fold_left
    (fun acc (c, axis) ->
      let cn = Query.node q c in
      acc *. edge_fraction t n.tag axis cn.tag *. subtree_prob t q c)
    own (Query.children q v)

(* P(a fixed element matching the distinguished node extends upward to
   the root, with all side branches matching). *)
let upward_prob t q =
  let rec go v =
    match Query.parent q v with
    | None -> 1.0
    | Some (p, axis) ->
      let pn = Query.node q p in
      let vn = Query.node q v in
      let nv = count_tag_opt t vn.tag in
      if nv = 0 then 0.0
      else begin
        let pairs =
          match axis with
          | Query.Child -> count_pc_opt t pn.tag vn.tag
          | Query.Descendant -> count_ad_opt t pn.tag vn.tag
        in
        let has_anc = Float.min 1.0 (float_of_int pairs /. float_of_int nv) in
        let siblings =
          List.fold_left
            (fun acc (c, ax) ->
              if c = v then acc
              else
                let cn = Query.node q c in
                acc *. edge_fraction t pn.tag ax cn.tag *. subtree_prob t q c)
            1.0 (Query.children q p)
        in
        has_anc *. siblings *. self_fraction t pn *. go p
      end
  in
  go (Query.distinguished q)

let estimate_answers t q =
  let d = Query.distinguished q in
  let dn = Query.node q d in
  float_of_int (count_tag_opt t dn.tag) *. subtree_prob t q d *. upward_prob t q

let estimate_matches t q =
  let rec expected v =
    let n = Query.node q v in
    List.fold_left
      (fun acc (c, axis) ->
        let cn = Query.node q c in
        let np = count_tag_opt t n.tag in
        let per_parent =
          if np = 0 then 0.0
          else begin
            let pairs =
              match axis with
              | Query.Child -> count_pc_opt t n.tag cn.tag
              | Query.Descendant -> count_ad_opt t n.tag cn.tag
            in
            float_of_int pairs /. float_of_int np
          end
        in
        acc *. per_parent *. self_fraction t cn *. expected c)
      1.0 (Query.children q v)
  in
  let r = Query.root q in
  float_of_int (count_tag_opt t (Query.node q r).tag)
  *. self_fraction t (Query.node q r)
  *. expected r

let pp fmt t =
  match t with
  | Single s ->
    Format.fprintf fmt "stats: %d elements, %d tags, %d pc pairs, %d ad entries" (s_total_elems s)
      (Array.length s.n_by_tag) (Pair_tbl.length s.pc) (Pair_tbl.length s.ad)
  | Merged m ->
    Format.fprintf fmt "stats: merged over %d shards, %d elements" (Array.length m.sources)
      (total_elems t)
