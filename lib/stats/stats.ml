module Doc = Xmldom.Doc
module Tag = Xmldom.Tag
module Ftexp = Fulltext.Ftexp
module Index = Fulltext.Index
module Query = Tpq.Query

type pair_key = int * int

module Pair_tbl = Hashtbl.Make (struct
  type t = pair_key

  let equal (a, b) (c, d) = a = c && b = d
  let hash (a, b) = (a * 92821) lxor b
end)

type t = {
  doc : Doc.t;
  n_by_tag : int array;
  pc : int Pair_tbl.t;
  ad : int Pair_tbl.t;
  children_total : int array; (* #pc(t, any) *)
  desc_total : int array; (* #ad(t, any) *)
  depth_total : int array; (* #ad(any, t) *)
  total_ad : int;
  mutable index : Index.t option;
  contains_cache : (string * string, int) Hashtbl.t;
}

let build doc =
  let n = Doc.size doc in
  let n_tags = Tag.count (Doc.tags doc) in
  let n_by_tag = Array.make n_tags 0 in
  let pc = Pair_tbl.create 256 in
  let ad = Pair_tbl.create 1024 in
  let children_total = Array.make n_tags 0 in
  let desc_total = Array.make n_tags 0 in
  let depth_total = Array.make n_tags 0 in
  let total_ad = ref 0 in
  let bump tbl key = Pair_tbl.replace tbl key (1 + Option.value ~default:0 (Pair_tbl.find_opt tbl key)) in
  for e = 0 to n - 1 do
    let te = Doc.tag doc e in
    n_by_tag.(te) <- n_by_tag.(te) + 1;
    (match Doc.parent doc e with
    | None -> ()
    | Some p ->
      let tp = Doc.tag doc p in
      bump pc (tp, te);
      children_total.(tp) <- children_total.(tp) + 1);
    desc_total.(te) <- desc_total.(te) + (Doc.subtree_end doc e - e - 1);
    let d = Doc.level doc e in
    depth_total.(te) <- depth_total.(te) + d;
    total_ad := !total_ad + d;
    List.iter (fun a -> bump ad (Doc.tag doc a, te)) (Doc.ancestors doc e)
  done;
  {
    doc;
    n_by_tag;
    pc;
    ad;
    children_total;
    desc_total;
    depth_total;
    total_ad = !total_ad;
    index = None;
    contains_cache = Hashtbl.create 64;
  }

(* Extend statistics over a document that grew by [Doc.append_trees].
   [build]'s loop body is purely additive per element, so running it
   over just the new elements — against the widened document, whose old
   elements kept their ids, levels and subtree extents — reproduces a
   fresh build's tables exactly, up to one correction: the root's own
   descendant count, charged at build time from its subtree extent,
   grew by the number of appended elements.  (The root is the only old
   element whose extent changes, and ancestor walks from new elements
   land on it, so its [ad] rows are already bumped by the loop.) *)
let extend st doc ~first_new =
  let n = Doc.size doc in
  if first_new <> Doc.size st.doc then
    invalid_arg
      (Printf.sprintf "Stats.extend: statistics cover %d elements, extension starts at %d"
         (Doc.size st.doc) first_new);
  let n_tags = Tag.count (Doc.tags doc) in
  let grow src =
    let g = Array.make n_tags 0 in
    Array.blit src 0 g 0 (Array.length src);
    g
  in
  let n_by_tag = grow st.n_by_tag in
  let pc = Pair_tbl.copy st.pc in
  let ad = Pair_tbl.copy st.ad in
  let children_total = grow st.children_total in
  let desc_total = grow st.desc_total in
  let depth_total = grow st.depth_total in
  let total_ad = ref st.total_ad in
  let bump tbl key = Pair_tbl.replace tbl key (1 + Option.value ~default:0 (Pair_tbl.find_opt tbl key)) in
  for e = first_new to n - 1 do
    let te = Doc.tag doc e in
    n_by_tag.(te) <- n_by_tag.(te) + 1;
    (match Doc.parent doc e with
    | None -> ()
    | Some p ->
      let tp = Doc.tag doc p in
      bump pc (tp, te);
      children_total.(tp) <- children_total.(tp) + 1);
    desc_total.(te) <- desc_total.(te) + (Doc.subtree_end doc e - e - 1);
    let d = Doc.level doc e in
    depth_total.(te) <- depth_total.(te) + d;
    total_ad := !total_ad + d;
    List.iter (fun a -> bump ad (Doc.tag doc a, te)) (Doc.ancestors doc e)
  done;
  if n > first_new then begin
    let rt = Doc.tag doc (Doc.root doc) in
    desc_total.(rt) <- desc_total.(rt) + (n - first_new)
  end;
  {
    doc;
    n_by_tag;
    pc;
    ad;
    children_total;
    desc_total;
    depth_total;
    total_ad = !total_ad;
    index = None;
    contains_cache = Hashtbl.create 64;
  }

(* The statistics minus the document, the attached index and the
   memoization cache: the count tables snapshot storage persists.
   [of_portable] re-attaches a document and starts a fresh cache; the
   index is re-attached separately via [set_index]. *)
type portable = {
  p_n_by_tag : int array;
  p_pc : int Pair_tbl.t;
  p_ad : int Pair_tbl.t;
  p_children_total : int array;
  p_desc_total : int array;
  p_depth_total : int array;
  p_total_ad : int;
}

let to_portable st =
  {
    p_n_by_tag = st.n_by_tag;
    p_pc = st.pc;
    p_ad = st.ad;
    p_children_total = st.children_total;
    p_desc_total = st.desc_total;
    p_depth_total = st.depth_total;
    p_total_ad = st.total_ad;
  }

let of_portable doc p =
  if Array.length p.p_n_by_tag <> Tag.count (Doc.tags doc) then
    invalid_arg
      (Printf.sprintf "Stats.of_portable: statistics cover %d tags, document has %d"
         (Array.length p.p_n_by_tag)
         (Tag.count (Doc.tags doc)));
  {
    doc;
    n_by_tag = p.p_n_by_tag;
    pc = p.p_pc;
    ad = p.p_ad;
    children_total = p.p_children_total;
    desc_total = p.p_desc_total;
    depth_total = p.p_depth_total;
    total_ad = p.p_total_ad;
    index = None;
    contains_cache = Hashtbl.create 64;
  }

let doc st = st.doc
let tag_id st name = Tag.find (Doc.tags st.doc) name

let count_tag st name =
  match tag_id st name with None -> 0 | Some t -> st.n_by_tag.(t)

let pair_count tbl k = Option.value ~default:0 (Pair_tbl.find_opt tbl k)

let count_pc st t1 t2 =
  match (tag_id st t1, tag_id st t2) with
  | Some a, Some b -> pair_count st.pc (a, b)
  | _ -> 0

let count_ad st t1 t2 =
  match (tag_id st t1, tag_id st t2) with
  | Some a, Some b -> pair_count st.ad (a, b)
  | _ -> 0

let set_index st idx = st.index <- Some idx

(* The memoization cache is the only mutable state on the query path;
   the server evaluates queries against one shared statistics value from
   several domains at once, so lookups and inserts are serialized.  One
   module-level lock (rather than a per-value field) keeps [t]
   marshalable for the v1 snapshot format; contention is negligible —
   penalty construction consults the cache a handful of times per
   query. *)
let cache_lock = Mutex.create ()

let count_contains st tag f =
  let key = (tag, Ftexp.to_string f) in
  Mutex.lock cache_lock;
  match Hashtbl.find_opt st.contains_cache key with
  | Some n ->
    Mutex.unlock cache_lock;
    n
  | None ->
    Mutex.unlock cache_lock;
    let n =
      match (st.index, tag_id st tag) with
      | Some idx, Some t -> Index.count_satisfying_with_tag idx f t
      | _, None -> 0
      | None, _ -> invalid_arg "Stats.count_contains: no index attached (use set_index)"
    in
    Mutex.lock cache_lock;
    (* A racing domain may have inserted the same key meanwhile; both
       computed the same pure count, so [replace] is idempotent. *)
    Hashtbl.replace st.contains_cache key n;
    Mutex.unlock cache_lock;
    n

let pc_fraction st t1 t2 =
  let a = count_ad st t1 t2 in
  if a = 0 then 0.0 else float_of_int (count_pc st t1 t2) /. float_of_int a

let ad_density st t1 t2 =
  let n1 = count_tag st t1 and n2 = count_tag st t2 in
  if n1 = 0 || n2 = 0 then 0.0
  else float_of_int (count_ad st t1 t2) /. (float_of_int n1 *. float_of_int n2)

let contains_fraction st ~child ~parent f =
  let denom = count_contains st parent f in
  if denom = 0 then 1.0
  else Float.min 1.0 (float_of_int (count_contains st child f) /. float_of_int denom)

(* ------------------------------------------------------------------ *)
(* Selectivity estimation.

   Wildcard-aware counts: [None] stands for any tag. *)

let total_elems st = Array.fold_left ( + ) 0 st.n_by_tag

let count_tag_opt st = function
  | None -> total_elems st
  | Some name -> count_tag st name

let count_pc_opt st t1 t2 =
  match (t1, t2) with
  | Some a, Some b -> count_pc st a b
  | Some a, None -> ( match tag_id st a with None -> 0 | Some t -> st.children_total.(t))
  | None, Some b -> (
    (* every non-root element has one parent *)
    match tag_id st b with
    | None -> 0
    | Some t -> st.n_by_tag.(t) - (if Doc.tag st.doc (Doc.root st.doc) = t then 1 else 0))
  | None, None -> total_elems st - 1

let count_ad_opt st t1 t2 =
  match (t1, t2) with
  | Some a, Some b -> count_ad st a b
  | Some a, None -> ( match tag_id st a with None -> 0 | Some t -> st.desc_total.(t))
  | None, Some b -> ( match tag_id st b with None -> 0 | Some t -> st.depth_total.(t))
  | None, None -> st.total_ad

(* Fraction of [parent_tag] elements expected to have at least one
   qualifying child/descendant of [child_tag]. *)
let edge_fraction st parent_tag axis child_tag =
  let np = count_tag_opt st parent_tag in
  if np = 0 then 0.0
  else begin
    let pairs =
      match axis with
      | Query.Child -> count_pc_opt st parent_tag child_tag
      | Query.Descendant -> count_ad_opt st parent_tag child_tag
    in
    Float.min 1.0 (float_of_int pairs /. float_of_int np)
  end

let self_fraction st (n : Query.node) =
  (* Probability that an element of this node's tag satisfies the node's
     own contains predicates. *)
  match n.tag with
  | None -> 1.0
  | Some tag ->
    let nt = count_tag st tag in
    if nt = 0 then 0.0
    else
      List.fold_left
        (fun acc f ->
          acc *. Float.min 1.0 (float_of_int (count_contains st tag f) /. float_of_int nt))
        1.0 n.contains

(* P(a fixed element matching node v's tag has a full embedding of v's
   subtree below it), under independence. *)
let rec subtree_prob st q v =
  let n = Query.node q v in
  let own = self_fraction st n in
  List.fold_left
    (fun acc (c, axis) ->
      let cn = Query.node q c in
      acc *. edge_fraction st n.tag axis cn.tag *. subtree_prob st q c)
    own (Query.children q v)

(* P(a fixed element matching the distinguished node extends upward to
   the root, with all side branches matching). *)
let upward_prob st q =
  let rec go v =
    match Query.parent q v with
    | None -> 1.0
    | Some (p, axis) ->
      let pn = Query.node q p in
      let vn = Query.node q v in
      let nv = count_tag_opt st vn.tag in
      if nv = 0 then 0.0
      else begin
        let pairs =
          match axis with
          | Query.Child -> count_pc_opt st pn.tag vn.tag
          | Query.Descendant -> count_ad_opt st pn.tag vn.tag
        in
        let has_anc = Float.min 1.0 (float_of_int pairs /. float_of_int nv) in
        let siblings =
          List.fold_left
            (fun acc (c, ax) ->
              if c = v then acc
              else
                let cn = Query.node q c in
                acc *. edge_fraction st pn.tag ax cn.tag *. subtree_prob st q c)
            1.0 (Query.children q p)
        in
        has_anc *. siblings *. self_fraction st pn *. go p
      end
  in
  go (Query.distinguished q)

let estimate_answers st q =
  let d = Query.distinguished q in
  let dn = Query.node q d in
  float_of_int (count_tag_opt st dn.tag) *. subtree_prob st q d *. upward_prob st q

let estimate_matches st q =
  let rec expected v =
    let n = Query.node q v in
    List.fold_left
      (fun acc (c, axis) ->
        let cn = Query.node q c in
        let np = count_tag_opt st n.tag in
        let per_parent =
          if np = 0 then 0.0
          else begin
            let pairs =
              match axis with
              | Query.Child -> count_pc_opt st n.tag cn.tag
              | Query.Descendant -> count_ad_opt st n.tag cn.tag
            in
            float_of_int pairs /. float_of_int np
          end
        in
        acc *. per_parent *. self_fraction st cn *. expected c)
      1.0 (Query.children q v)
  in
  let r = Query.root q in
  float_of_int (count_tag_opt st (Query.node q r).tag)
  *. self_fraction st (Query.node q r)
  *. expected r

let pp fmt st =
  Format.fprintf fmt "stats: %d elements, %d tags, %d pc pairs, %d ad entries" (total_elems st)
    (Array.length st.n_by_tag) (Pair_tbl.length st.pc) (Pair_tbl.length st.ad)
