(** A query with relaxations encoded as evaluation options (§5.2.1).

    SSO and Hybrid evaluate one plan that encodes several relaxations at
    once, as in tree-pattern-relaxation plans [3]: a generalized axis
    accepts descendants where the original asked for children, a
    promoted subtree hangs off an ancestor variable, a deleted leaf
    becomes an {e optional} match ("predicate dropping makes predicates
    optional, not lost"), and a promoted contains predicate is required
    of an ancestor instead of the original variable.

    [of_ops] replays an operator sequence over the original query and
    produces one variable spec per original variable, in an order where
    every spec's anchor precedes it. *)

type var_spec = {
  var : int;  (** Original variable id. *)
  tag : string option;
  attrs : Tpq.Pred.attr_pred list;
  required_contains : Fulltext.Ftexp.t list;
      (** Contains predicates that must hold at this variable under the
          encoded query (after promotions). *)
  anchor : (int * Tpq.Query.axis) option;
      (** Effective attachment after the operators; [None] for the
          root. *)
  optional : bool;
      (** True when some operator deleted this variable: a match may
          leave it unbound. *)
}

type t

val of_ops :
  ?hierarchy:Tpq.Hierarchy.t -> Tpq.Query.t -> Relax.Op.t list -> (t, string) result
(** Fails when an operator in the sequence is inapplicable at its
    position. *)

val of_ops_exn : ?hierarchy:Tpq.Hierarchy.t -> Tpq.Query.t -> Relax.Op.t list -> t

val original : t -> Tpq.Query.t
val specs : t -> var_spec list
(** Anchor-before-spec order; the first spec is the root. *)

val spec : t -> int -> var_spec
val distinguished : t -> int
val var_count : t -> int

val exact : t -> bool
(** True when the encoding was built from the empty operator sequence —
    the specs are the original query verbatim. *)

val conjunctive : t -> bool
(** True when no spec is optional (no leaf deletion was encoded): every
    variable of a match must bind.  The twig-shape condition the
    planner tests before selecting the holistic executor. *)

val slot_of_var : t -> int -> int
(** Dense slot index used by the tuple executor. *)

val var_of_slot : t -> int -> int

val pp : Format.formatter -> t -> unit
