(** Holistic twig filtering over per-spec sorted posting streams — the
    stream phase of the holistic physical operator (ROADMAP item 2;
    TwigStack family, "A Survey of XML Tree Patterns").

    Given one pre-order-sorted candidate array per variable spec (the
    elements that can bind that spec in isolation), {!filter} returns
    the sub-streams of elements that participate in at least one
    complete match of the whole conjunctive pattern.  Two linear passes
    over the packed document columns — bottom-up subtree satisfaction,
    then top-down anchor connectivity — give the TwigStack output
    guarantee (no element survives that is in no solution) with one
    bool array per slot as the only intermediate state, i.e. bounded
    intermediate results instead of the binary pipeline's per-edge
    tuple blowup. *)

val applicable : Encoded.t -> bool
(** The planner's selection rule: the holistic operator evaluates
    conjunctive encodings only.  An optional spec (encoded leaf
    deletion) may stay unbound, so solution participation is not a
    sound stream filter for it — those plans take the binary
    pipeline. *)

val has_child_in : Xmldom.Doc.t -> Xmldom.Doc.elem array -> Xmldom.Doc.elem -> bool
(** [has_child_in doc stream e]: does [e] have a child in the sorted
    [stream]?  Level-column skip scan, O(hits · log slice). *)

val filter :
  Xmldom.Doc.t ->
  anchors:(int * Tpq.Query.axis) option array ->
  candidates:Xmldom.Doc.elem array array ->
  tick:(int -> unit) ->
  Xmldom.Doc.elem array array
(** [filter doc ~anchors ~candidates ~tick] — [anchors.(s)] is slot
    [s]'s anchor as [(parent_slot, axis)] ([None] exactly for slot 0,
    the root), and [candidates.(s)] the sorted candidate array.  Slots
    must be in anchor-before-spec order (the {!Encoded.specs} order).
    Returns the per-slot solution streams, each a sorted subset of its
    candidate array.  [tick] is the cooperative-cancellation hook,
    called with per-slot element counts as the passes progress.

    @raise Invalid_argument if a non-root slot has no anchor. *)
