(** Scored evaluation of an encoded query — the common machinery behind
    the three top-K algorithms (§5).

    The executor processes the variable specs of an {!Encoded.t} as a
    left-deep pipeline: a scan for the root, then one join stage per
    further variable.  Each intermediate tuple carries the set of
    original-closure predicates already known (un)satisfied and the
    corresponding running structural score (base − penalties of
    predicates found unsatisfied, Definition 3 / §4.3.2).

    Strategy knobs reproduce the algorithmic differences the paper
    measures:
    - [sort_on_score] re-sorts the intermediate tuple list on score at
      every stage — SSO's behaviour, whose cost §5.2.2 calls the
      "fundamental tension" between node-id order and score order;
    - [bucketize] groups tuples by satisfied-predicate set instead, so
      only bucket {e keys} are ordered and tuples stay in node-id order —
      Hybrid's bucketization (§5.2.3);
    - [prune_k] enables threshold + maxScoreGrowth pruning: a tuple is
      discarded when even its best achievable final score cannot reach
      the current K-th answer's guaranteed score. *)

type env = { doc : Xmldom.Doc.t; index : Fulltext.Index.t; penalty : Relax.Penalty.t }

exception Cancelled
(** Raised from {!run} when the [cancel] callback asks to stop.  Never
    escapes the top-K algorithms: they catch it and return the
    best-effort answers collected from completed passes. *)

exception Capacity_exceeded of { what : string; limit : int; actual : int }
(** Raised by {!run} when the query's closure does not fit the
    executor's fixed capacities (the satisfied-predicate bitmask holds
    at most {!max_scored_preds} scored predicates).  A typed condition
    the façade converts to an error value — never an abort. *)

val max_scored_preds : int
(** Scored closure predicates the tuple bitmask can track (62). *)

val failpoint : (string -> unit) ref
(** Fault-injection hook: called with a point name ("exec.compile",
    "exec.run", "exec.stage") at the corresponding code path.  A no-op
    until {!Flexpath.Failpoint} installs itself here; an installed hook
    raises to simulate the failure. *)

type answer = {
  target : Xmldom.Doc.elem;  (** Binding of the distinguished variable. *)
  sscore : float;
  kscore : float;
  satisfied : Tpq.Pred.t list;
      (** Predicates of the original closure this answer satisfies. *)
  failed : Tpq.Pred.t list;
      (** Scored closure predicates it does not satisfy; empty for
          exact matches. *)
  bindings : (int * Xmldom.Doc.elem) list;
      (** Variable bindings; unbound optional variables are absent. *)
}

type strategy = {
  sort_on_score : bool;
  bucketize : bool;
  prune_k : int option;
  prune_slack : float;
      (** Admissible non-structural gain a pruned tuple could still
          collect — the [m] of the §5.1 rule for the Combined scheme
          (0 for structure-first; keyword-first must not prune at
          all). *)
}

val exact_strategy : strategy
(** No sorting, no buckets, no pruning — plain evaluation (DPO uses
    this per relaxation). *)

type executor = Auto | Binary | Holistic
(** Physical operator selection.  [Auto] is the planner rule: the
    holistic twig operator ({!Twig}) when the encoded pattern is
    conjunctive (twig-shaped, no optional spec), the binary pipeline
    otherwise.  [Binary] forces the pipeline; [Holistic] requests the
    twig operator but still falls back to the pipeline on
    non-conjunctive plans — forcing an executor never changes what a
    plan means.  Results are byte-identical across executors (same
    answers, scores, and tie-breaks); only metrics and — under tuple
    budgets or deadlines — truncation points differ. *)

val executor_to_string : executor -> string
val executor_of_string : string -> (executor, string) result

type metrics = {
  mutable tuples_produced : int;
  mutable tuples_pruned : int;
  mutable score_sorted_tuples : int;
      (** Total tuples passed through score re-sorts (SSO's overhead). *)
  mutable buckets_touched : int;
  mutable stages : int;
  mutable cancel_polls : int;
      (** Times the cooperative cancellation callback was consulted. *)
  mutable holistic_runs : int;
      (** Runs that took the holistic twig operator. *)
  mutable holistic_fast_paths : int;
      (** Holistic runs whose answers came straight off the solution
          streams with no tuple enumeration at all (exact conjunctive
          encoding, empty hierarchy, plain strategy). *)
  mutable stream_elements : int;
      (** Total elements across all solution streams after twig
          filtering. *)
}

val fresh_metrics : unit -> metrics

val run :
  ?metrics:metrics ->
  ?cancel:(int -> bool) ->
  ?executor:executor ->
  env ->
  Encoded.t ->
  strategy ->
  answer list
(** All answers of the encoded query, one per distinct distinguished
    binding (the best-scoring embedding is kept), unordered.  With
    [prune_k = Some k], answers outside any possible top-k may be
    missing — by design.

    [executor] (default [Auto]) selects the physical operator; see
    {!executor}.  Answer contents are executor-independent, with one
    caveat: answers produced by the holistic fast path list only the
    distinguished variable in [bindings] (no embedding witness is
    enumerated).  [target], scores, [satisfied] and [failed] are always
    identical.

    [cancel] is the cooperative cancellation check: it is polled from
    the join loop roughly every 4096 tuples (and at every stage
    boundary) with the number of tuples produced since the previous
    poll; returning [true] aborts the evaluation by raising
    {!Cancelled}.  Without [cancel] the hot path is unchanged.  The
    holistic operator ticks the same counter per stream element while
    filtering, so budgets still bound its work — tuple-budget
    truncation points therefore legitimately differ between
    executors. *)
