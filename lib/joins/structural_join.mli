(** The stack-based structural join of Al-Khalifa et al. (ICDE 2002) —
    the evaluation primitive the paper's join plans are built from
    (§5.2.1).

    Both inputs are element arrays sorted by pre-order id; the output
    enumerates qualifying (ancestor, descendant) or (parent, child)
    pairs.  The merge runs in O(|anc| + |desc| + |output|) using a stack
    of nested ancestor candidates. *)

val ad_pairs :
  Xmldom.Doc.t -> anc:Xmldom.Doc.elem array -> desc:Xmldom.Doc.elem array ->
  (Xmldom.Doc.elem * Xmldom.Doc.elem) list
(** Strict ancestor-descendant pairs, sorted by (descendant, ancestor)
    pre-order id. *)

val pc_pairs :
  Xmldom.Doc.t -> anc:Xmldom.Doc.elem array -> desc:Xmldom.Doc.elem array ->
  (Xmldom.Doc.elem * Xmldom.Doc.elem) list
(** Parent-child pairs, same order.  Runs the same stack sweep with the
    parent test applied per descendant — O(|anc| + |desc| + |output|),
    never materializing the ancestor-descendant pairs (which can be
    quadratically larger on recursive documents). *)

val lower_bound_in : Xmldom.Doc.elem array -> int -> int -> Xmldom.Doc.elem -> int
(** [lower_bound_in a lo hi x]: first index in [lo, hi) whose element is
    [>= x], or [hi].  The range-bounded binary search behind
    {!subtree_slice}, exposed for the twig operator's skip scans. *)

val subtree_slice :
  Xmldom.Doc.t -> Xmldom.Doc.elem array -> Xmldom.Doc.elem -> int * int
(** [subtree_slice d sorted e] is the index range [(lo, hi)] of [sorted]
    whose elements lie strictly inside the subtree of [e] — the
    skip-join primitive used by the tuple pipeline. *)

val children_with_tag :
  Xmldom.Doc.t -> Xmldom.Doc.elem array -> Xmldom.Doc.elem -> Xmldom.Doc.elem list
(** Elements of the sorted array that are children of [e], ascending.
    Uses the level column to identify children and jumps each visited
    element's whole subtree, so nested same-tag elements cost
    O(log slice) instead of a full-slice scan. *)
