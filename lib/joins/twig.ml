module Doc = Xmldom.Doc
module Query = Tpq.Query

(* The planner selects the holistic operator for conjunctive patterns
   only: an optional spec (encoded leaf deletion) may legitimately stay
   unbound, so "participates in a full match" is not a sound filter for
   it. *)
let applicable enc = Encoded.conjunctive enc

(* Does [e] have a child in the sorted stream?  Same skip scan as
   [Structural_join.children_with_tag], stopping at the first hit. *)
let has_child_in doc stream e =
  let lo, hi = Structural_join.subtree_slice doc stream e in
  let child_level = Doc.level doc e + 1 in
  let rec go i =
    if i >= hi then false
    else begin
      let x = stream.(i) in
      Doc.level doc x = child_level
      || go (Structural_join.lower_bound_in stream (i + 1) hi (Doc.subtree_end doc x))
    end
  in
  go lo

(* Per-domain scratch for parent stamping: a generation-stamped column
   over element ids, grown to the largest document seen by this domain
   and reused across filter calls — re-allocating megabytes per query
   makes every call pay major-GC marking work proportional to the
   resident heap.  Bumping the generation invalidates every previous
   mark (from any earlier call, even on another document) at once, so
   the column is never cleared.  Safe per-domain: a filter run never
   yields, so two queries on one domain cannot interleave mid-call. *)
type scratch = { mutable col : int array; mutable gen : int }

let scratch_key = Domain.DLS.new_key (fun () -> { col = [||]; gen = 0 })

let keep_marked src keep kept =
  let out = Array.make kept 0 in
  let j = ref 0 in
  Array.iteri
    (fun i x ->
      if keep.(i) then begin
        out.(!j) <- x;
        incr j
      end)
    src;
  out

(* Holistic twig filtering in the TwigStack tradition: instead of
   enumerating root-to-leaf paths through chained stacks and
   merge-joining path solutions, two linear passes over the per-spec
   sorted streams compute, for every stream element, whether it
   participates in at least one complete match of the whole pattern —
   the same output guarantee (only solution-participating elements
   survive), obtained with plain column arithmetic on the packed
   pre/subtree_end/level/parent columns.

   Pass 1 (bottom-up, leaves first): keep [e] in slot [v]'s stream when
   every child edge of [v] has a match strictly below [e].  Child edges
   are resolved by {e parent stamping}: one sweep over the child stream
   marks each survivor's parent in a generation-stamped scratch column,
   then one sweep over [v]'s stream reads the marks — O(1) per element,
   no searching.  Descendant edges use a galloping-cursor sweep ([first
   element > e] vs [subtree_end e]); seek targets ascend with [e], so
   the cursor never retreats and a whole edge costs O(n + m).  By
   induction [e] then roots a complete match of [v]'s subtree pattern.

   Pass 2 (top-down, root first): keep [e] when its anchor edge is
   satisfied by an already-kept anchor element — the same generation
   stamps mark kept anchors for child edges ([e] survives iff
   [parent e] is stamped); for descendant edges a merge sweep maintains
   the maximum [subtree_end] of kept anchors before [e] ([e] has a kept
   strict ancestor iff that maximum exceeds [e]).  By induction [e]
   then extends upward to the root, so combined with pass 1 it
   participates in a full solution.

   Both passes are O(Σ |stream|) per edge with branch-light inner loops
   and no per-tuple allocation — the intermediate state is one bool
   array per slot plus the shared stamp column, which is how the
   TwigStack family's bounded-intermediate-results property shows up
   here. *)
let filter doc ~anchors ~candidates ~tick =
  let n = Array.length candidates in
  let kids = Array.make n [] in
  let any_child_edge = ref false in
  for s = n - 1 downto 1 do
    match anchors.(s) with
    | Some (p, axis) ->
      kids.(p) <- (s, axis) :: kids.(p);
      if axis = Query.Child then any_child_edge := true
    | None -> invalid_arg "Twig.filter: non-root slot without anchor"
  done;
  let scr = Domain.DLS.get scratch_key in
  if !any_child_edge && Array.length scr.col < Doc.size doc then
    scr.col <- Array.make (Doc.size doc) 0;
  let stamp = scr.col in
  let next_gen () =
    scr.gen <- scr.gen + 1;
    scr.gen
  in
  let parent_col = Doc.parents doc in
  (* Pass 1: bottom-up subtree satisfaction.  Specs are in
     anchor-before-spec order, so a reverse walk sees children before
     parents. *)
  let sat = Array.make n [||] in
  for s = n - 1 downto 0 do
    let c = candidates.(s) in
    (match kids.(s) with
    | [] -> sat.(s) <- c
    | edges ->
      let keep = Array.make (Array.length c) true in
      let kept = ref (Array.length c) in
      List.iter
        (fun (child_slot, axis) ->
          let stream = sat.(child_slot) in
          match axis with
          | Query.Child ->
            let g = next_gen () in
            Array.iter
              (fun x ->
                let px = parent_col.(x) in
                if px >= 0 then stamp.(px) <- g)
              stream;
            Array.iteri
              (fun i e ->
                if keep.(i) && stamp.(e) <> g then begin
                  keep.(i) <- false;
                  decr kept
                end)
              c
          | Query.Descendant ->
            let cur = Doc.Postings.of_array stream in
            Array.iteri
              (fun i e ->
                if keep.(i) then begin
                  Doc.Postings.seek_geq cur (e + 1);
                  if
                    Doc.Postings.at_end cur
                    || Doc.Postings.peek cur >= Doc.subtree_end doc e
                  then begin
                    keep.(i) <- false;
                    decr kept
                  end
                end)
              c)
        edges;
      sat.(s) <- keep_marked c keep !kept);
    tick (Array.length c)
  done;
  (* Pass 2: top-down anchor connectivity over the pass-1 survivors. *)
  let out = Array.make n [||] in
  for s = 0 to n - 1 do
    (match anchors.(s) with
    | None -> out.(s) <- sat.(s)
    | Some (p, axis) ->
      let anc = out.(p) in
      let src = sat.(s) in
      let keep = Array.make (Array.length src) false in
      let kept = ref 0 in
      (match axis with
      | Query.Child ->
        let g = next_gen () in
        Array.iter (fun a -> stamp.(a) <- g) anc;
        Array.iteri
          (fun i x ->
            let px = parent_col.(x) in
            if px >= 0 && stamp.(px) = g then begin
              keep.(i) <- true;
              incr kept
            end)
          src
      | Query.Descendant ->
        let cur = Doc.Postings.of_array anc in
        let max_end = ref (-1) in
        Array.iteri
          (fun i x ->
            while (not (Doc.Postings.at_end cur)) && Doc.Postings.peek cur < x do
              let a = Doc.Postings.peek cur in
              if Doc.subtree_end doc a > !max_end then max_end := Doc.subtree_end doc a;
              Doc.Postings.advance cur
            done;
            if !max_end > x then begin
              keep.(i) <- true;
              incr kept
            end)
          src);
      out.(s) <- keep_marked src keep !kept);
    tick (Array.length sat.(s))
  done;
  out
