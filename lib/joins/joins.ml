(** The structural-join evaluation engine: {!Joins.Structural_join} is
    the Al-Khalifa et al. merge primitive, {!Joins.Encoded} expresses a
    query with relaxations encoded as evaluation options (§5.2.1), and
    {!Joins.Exec} runs the scored left-deep pipeline with the SSO /
    Hybrid strategy knobs (§5.2.2-5.2.3). *)

module Structural_join = Structural_join
module Encoded = Encoded
module Twig = Twig
module Exec = Exec
