module Doc = Xmldom.Doc
module Index = Fulltext.Index
module Ftexp = Fulltext.Ftexp
module Pred = Tpq.Pred
module Query = Tpq.Query

type env = { doc : Doc.t; index : Index.t; penalty : Relax.Penalty.t }

exception Cancelled
exception Capacity_exceeded of { what : string; limit : int; actual : int }

let max_scored_preds = 62
let failpoint : (string -> unit) ref = ref (fun _ -> ())

type answer = {
  target : Doc.elem;
  sscore : float;
  kscore : float;
  satisfied : Pred.t list;
  failed : Pred.t list;
  bindings : (int * Doc.elem) list;
}

type strategy = {
  sort_on_score : bool;
  bucketize : bool;
  prune_k : int option;
  prune_slack : float;
}

let exact_strategy =
  { sort_on_score = false; bucketize = false; prune_k = None; prune_slack = 0.0 }

type executor = Auto | Binary | Holistic

let executor_to_string = function Auto -> "auto" | Binary -> "binary" | Holistic -> "holistic"

let executor_of_string s =
  match String.lowercase_ascii s with
  | "auto" -> Ok Auto
  | "binary" -> Ok Binary
  | "holistic" -> Ok Holistic
  | other -> Error (Printf.sprintf "unknown executor %S (expected auto, binary or holistic)" other)

type metrics = {
  mutable tuples_produced : int;
  mutable tuples_pruned : int;
  mutable score_sorted_tuples : int;
  mutable buckets_touched : int;
  mutable stages : int;
  mutable cancel_polls : int;
  mutable holistic_runs : int;
  mutable holistic_fast_paths : int;
  mutable stream_elements : int;
}

let fresh_metrics () =
  {
    tuples_produced = 0;
    tuples_pruned = 0;
    score_sorted_tuples = 0;
    buckets_touched = 0;
    stages = 0;
    cancel_polls = 0;
    holistic_runs = 0;
    holistic_fast_paths = 0;
    stream_elements = 0;
  }

(* A tuple in flight: bindings per slot (-1 unbound / not yet reached),
   the mask of scored predicates already found satisfied, and the
   running score. *)
type tuple = { bindings : int array; mask : int; score : float }

(* Compiled pipeline: for each stage (slot), the scored closure
   predicates that become fully determined once that slot is bound. *)
type check = { pred_ix : int; pred : Pred.t; pen : float }

type compiled = {
  enc : Encoded.t;
  scored_preds : Pred.t array; (* structural + contains preds of the closure *)
  penalties : float array;
  checks : check list array; (* per stage *)
  remaining : float array; (* Σ penalties of checks at stages > s — maxScoreGrowth *)
  live : int array array;
      (* live.(s): slots still needed after stage s — anchors of later
         specs, variables of later checks, and the distinguished slot.
         Dead slots are projected away and tuples deduplicated, which
         keeps branchy queries from exploding combinatorially. *)
  base : float;
  dist_slot : int;
  n_slots : int;
}

let compile env enc =
  !failpoint "exec.compile";
  let penv = env.penalty in
  let scored_preds = Array.of_list (Relax.Penalty.scored_preds penv) in
  let n_preds = Array.length scored_preds in
  if n_preds > max_scored_preds then
    raise
      (Capacity_exceeded
         { what = "scored predicates in the query closure"; limit = max_scored_preds; actual = n_preds });
  let penalties = Array.map (Relax.Penalty.predicate_penalty penv) scored_preds in
  let n_slots = Encoded.var_count enc in
  let slot_of v = Encoded.slot_of_var enc v in
  let checks = Array.make n_slots [] in
  Array.iteri
    (fun ix p ->
      let stage = List.fold_left (fun acc v -> max acc (slot_of v)) 0 (Pred.vars p) in
      checks.(stage) <- { pred_ix = ix; pred = p; pen = penalties.(ix) } :: checks.(stage))
    scored_preds;
  let remaining = Array.make n_slots 0.0 in
  for s = n_slots - 2 downto 0 do
    remaining.(s) <-
      remaining.(s + 1) +. List.fold_left (fun acc c -> acc +. c.pen) 0.0 checks.(s + 1)
  done;
  let dist_slot = slot_of (Encoded.distinguished enc) in
  let specs = Array.of_list (Encoded.specs enc) in
  let live =
    Array.init n_slots (fun s ->
        let needed = Hashtbl.create 8 in
        Hashtbl.replace needed dist_slot ();
        for s' = s + 1 to n_slots - 1 do
          (match specs.(s').Encoded.anchor with
          | Some (p, _) -> Hashtbl.replace needed (slot_of p) ()
          | None -> ());
          List.iter
            (fun c ->
              List.iter (fun v -> Hashtbl.replace needed (slot_of v) ()) (Pred.vars c.pred))
            checks.(s')
        done;
        Hashtbl.fold (fun slot () acc -> slot :: acc) needed []
        |> List.filter (fun slot -> slot <= s)
        |> List.sort Int.compare |> Array.of_list)
  in
  {
    enc;
    scored_preds;
    penalties;
    checks;
    remaining;
    live;
    base = Relax.Penalty.base_score penv;
    dist_slot;
    n_slots;
  }

(* Does predicate [p] hold for the (partial) bindings?  All variables of
   [p] are guaranteed bound-or-unbound-final when this is called. *)
let pred_holds env cp bindings p =
  let b v = bindings.(Encoded.slot_of_var cp.enc v) in
  match p with
  | Pred.Pc (x, y) ->
    let ex = b x and ey = b y in
    ex >= 0 && ey >= 0 && Doc.is_parent env.doc ex ey
  | Pred.Ad (x, y) ->
    let ex = b x and ey = b y in
    ex >= 0 && ey >= 0 && Doc.is_ancestor env.doc ex ey
  | Pred.Contains (x, f) ->
    let ex = b x in
    ex >= 0 && Index.satisfies env.index f ex
  | Pred.Tag_eq (x, t) ->
    let ex = b x in
    ex >= 0 && String.equal (Doc.tag_name env.doc ex) t
  | Pred.Attr (x, _) -> b x >= 0

(* Apply the checks of stage [s] to a tuple whose slot [s] was just
   decided, updating mask and score. *)
let settle env cp s t =
  List.fold_left
    (fun t c ->
      if pred_holds env cp t.bindings c.pred then { t with mask = t.mask lor (1 lsl c.pred_ix) }
      else { t with score = t.score -. c.pen })
    t cp.checks.(s)

let hierarchy env = Relax.Penalty.hierarchy env.penalty

let node_satisfies env (spec : Encoded.var_spec) e =
  (match spec.tag with
  | None -> true
  | Some t ->
    Tpq.Hierarchy.matches (hierarchy env) ~query_tag:t ~element_tag:(Doc.tag_name env.doc e))
  && List.for_all (fun p -> Pred.eval_attr p (Doc.attribute env.doc e)) spec.attrs
  && List.for_all (fun f -> Index.satisfies env.index f e) spec.required_contains

let candidate_pool env (spec : Encoded.var_spec) =
  Tpq.Semantics.candidates ~hierarchy:(hierarchy env) env.doc
    (Query.node_spec ?tag:spec.tag ())

(* Candidates for binding [spec] below anchor element [anchor]. *)
let candidates_below env spec axis anchor =
  let pool = candidate_pool env spec in
  match axis with
  | Query.Child ->
    List.filter (node_satisfies env spec) (Structural_join.children_with_tag env.doc pool anchor)
  | Query.Descendant ->
    let lo, hi = Structural_join.subtree_slice env.doc pool anchor in
    let out = ref [] in
    for i = hi - 1 downto lo do
      if node_satisfies env spec pool.(i) then out := pool.(i) :: !out
    done;
    !out

(* Keyword score: each contains predicate of the original query
   contributes the normalized IR score of the answer element itself —
   the widest scope a relaxation could promote the predicate to within
   this answer.  Evaluating at the answer node (rather than at some
   embedding's binding) makes the keyword score a function of the
   answer alone, so all algorithms assign identical scores regardless
   of which embedding they discovered first. *)
let keyword_score env target contains_preds =
  List.fold_left
    (fun acc (_, f) ->
      if Index.satisfies env.index f target then
        acc +. Index.normalized_score env.index f target
      else acc)
    0.0 contains_preds

let prune_threshold cp metrics k s tuples =
  (* Guaranteed final score of the current k-th best distinct target:
     every tuple's score can still drop by at most remaining(s). *)
  let best = Hashtbl.create 64 in
  List.iter
    (fun t ->
      let target = t.bindings.(cp.dist_slot) in
      if target >= 0 then begin
        let lower = t.score -. cp.remaining.(s) in
        match Hashtbl.find_opt best target with
        | Some l when l >= lower -> ()
        | _ -> Hashtbl.replace best target lower
      end)
    tuples;
  let lowers = Hashtbl.fold (fun _ l acc -> l :: acc) best [] in
  if List.length lowers < k then None
  else begin
    ignore metrics;
    let sorted = List.sort (fun a b -> Float.compare b a) lowers in
    Some (List.nth sorted (k - 1))
  end

let poll_interval = 4096

(* The per-spec candidate stream of the holistic operator: the sorted
   posting pool with the spec's local conditions (tag under hierarchy,
   attributes, required contains) evaluated once per element — the
   binary pipeline re-evaluates them per (tuple, candidate). *)
let filtered_candidates env (spec : Encoded.var_spec) =
  let pool = candidate_pool env spec in
  (* [candidate_pool] already resolves the tag under the hierarchy, so
     a spec with no attribute or contains conditions is satisfied by
     the whole pool — hand the shared posting array to the operator
     as-is (it only reads), no per-element check, no copy. *)
  if spec.attrs = [] && spec.required_contains = [] then pool
  else begin
    let len = Array.length pool in
    let buf = Array.make (max 1 len) 0 in
    let j = ref 0 in
    for i = 0 to len - 1 do
      if node_satisfies env spec pool.(i) then begin
        buf.(!j) <- pool.(i);
        incr j
      end
    done;
    Array.sub buf 0 !j
  end

let run ?(metrics = fresh_metrics ()) ?cancel ?(executor = Auto) env enc strategy =
  !failpoint "exec.run";
  let cp = compile env enc in
  let specs = Array.of_list (Encoded.specs enc) in
  let n = cp.n_slots in
  (* Cooperative cancellation: count tuples locally and consult the
     callback only every [poll_interval], so the governed fast path
     stays a counter increment and a comparison.  [flush_tick] reports
     the leftover count at stage boundaries, keeping the caller's
     cumulative tuple accounting exact between stages. *)
  let unpolled = ref 0 in
  let consult f =
    metrics.cancel_polls <- metrics.cancel_polls + 1;
    let d = !unpolled in
    unpolled := 0;
    if f d then raise Cancelled
  in
  let tick, flush_tick =
    match cancel with
    | None -> ((fun _ -> ()), fun () -> ())
    | Some f ->
      ( (fun produced ->
          unpolled := !unpolled + produced;
          if !unpolled >= poll_interval then consult f),
        fun () -> if !unpolled > 0 then consult f )
  in
  (* Planner rule: the holistic operator handles conjunctive (twig-
     shaped, no optional spec) patterns; anything else falls back to
     the binary pipeline, including under [Holistic] — forcing the
     executor must not change what a plan means. *)
  let use_holistic =
    (match executor with Binary -> false | Auto | Holistic -> true) && Twig.applicable enc
  in
  let streams =
    if not use_holistic then None
    else begin
      metrics.holistic_runs <- metrics.holistic_runs + 1;
      let anchors =
        Array.map
          (fun (s : Encoded.var_spec) ->
            Option.map (fun (p, ax) -> (Encoded.slot_of_var enc p, ax)) s.anchor)
          specs
      in
      let candidates = Array.map (filtered_candidates env) specs in
      let st = Twig.filter env.doc ~anchors ~candidates ~tick in
      Array.iter
        (fun s -> metrics.stream_elements <- metrics.stream_elements + Array.length s)
        st;
      flush_tick ();
      Some st
    end
  in
  let fast_path =
    match streams with
    | Some st
      when Encoded.exact enc
           && Tpq.Hierarchy.is_empty (hierarchy env)
           && (not strategy.sort_on_score)
           && (not strategy.bucketize)
           && strategy.prune_k = None -> Some st
    | _ -> None
  in
  match fast_path with
  | Some st ->
    (* Exact conjunctive encoding, no hierarchy, plain strategy: a full
       embedding satisfies every original predicate by construction,
       every closure-derived predicate by soundness of the inference
       rules on data, and no tag predicate is scored without a
       hierarchy — so each answer's mask is full and its structural
       score is exactly [base].  The distinguished solution stream IS
       the answer set; no tuple is ever enumerated.  The stage
       failpoints still fire once per join stage so fault-injection
       schedules are executor-independent. *)
    for _s = 1 to n - 1 do
      !failpoint "exec.stage";
      metrics.stages <- metrics.stages + 1
    done;
    metrics.holistic_fast_paths <- metrics.holistic_fast_paths + 1;
    let dist_stream = st.(cp.dist_slot) in
    metrics.tuples_produced <- metrics.tuples_produced + Array.length dist_stream;
    tick (Array.length dist_stream);
    flush_tick ();
    let contains_preds = Query.contains_preds (Relax.Penalty.original env.penalty) in
    let satisfied = Array.to_list cp.scored_preds in
    let dist_var = Encoded.distinguished enc in
    Array.fold_right
      (fun e acc ->
        {
          target = e;
          sscore = cp.base;
          kscore = keyword_score env e contains_preds;
          satisfied;
          failed = [];
          bindings = [ (dist_var, e) ];
        }
        :: acc)
      dist_stream []
  | None ->
  (* stage 0: scan for the root spec *)
  let root_spec = specs.(0) in
  let root_list =
    match streams with
    | Some st -> Array.to_list st.(0)
    | None ->
      Array.fold_right
        (fun e acc -> if node_satisfies env root_spec e then e :: acc else acc)
        (candidate_pool env root_spec)
        []
  in
  (* Candidate source for join stages: under the holistic operator,
     slices of the filtered solution streams (local spec conditions
     already evaluated, non-solution elements already gone); otherwise
     the binary pipeline's per-anchor pool filtering.  Both produce
     candidates in ascending pre-order, so enumeration order — and
     therefore every downstream tie-break — is executor-independent. *)
  let cands_below_at =
    match streams with
    | None -> fun _s spec axis anchor -> candidates_below env spec axis anchor
    | Some st ->
      fun s _spec axis anchor ->
        (match axis with
        | Query.Child -> Structural_join.children_with_tag env.doc st.(s) anchor
        | Query.Descendant ->
          let stream = st.(s) in
          let lo, hi = Structural_join.subtree_slice env.doc stream anchor in
          let out = ref [] in
          for i = hi - 1 downto lo do
            out := stream.(i) :: !out
          done;
          !out)
  in
  let init =
    List.map
      (fun e ->
        let bindings = Array.make n (-1) in
        bindings.(0) <- e;
        settle env cp 0 { bindings; mask = 0; score = cp.base })
      root_list
  in
  metrics.tuples_produced <- metrics.tuples_produced + List.length init;
  (* Dead-column projection: tuples that agree on the satisfied-set and
     on every binding still referenced by later stages are
     interchangeable (the score is a function of the mask), so keep one
     representative.  This is what keeps cross-products of sibling
     branches from exploding. *)
  let project s tuples =
    let live = cp.live.(s) in
    let seen = Hashtbl.create 256 in
    List.filter
      (fun t ->
        let key = (t.mask, Array.map (fun slot -> t.bindings.(slot)) live) in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.add seen key ();
          true
        end)
      tuples
  in
  let apply_strategy s tuples =
    let tuples =
      match strategy.prune_k with
      | Some k when s >= cp.dist_slot -> (
        match prune_threshold cp metrics k s tuples with
        | None -> tuples
        | Some threshold ->
          let kept =
            List.filter (fun t -> t.score +. strategy.prune_slack >= threshold -. 1e-9) tuples
          in
          metrics.tuples_pruned <- metrics.tuples_pruned + (List.length tuples - List.length kept);
          kept)
      | _ -> tuples
    in
    if strategy.sort_on_score then begin
      metrics.score_sorted_tuples <- metrics.score_sorted_tuples + List.length tuples;
      List.stable_sort (fun a b -> Float.compare b.score a.score) tuples
    end
    else if strategy.bucketize then begin
      (* Hybrid's bucketization (§5.2.3): a bucket per satisfied-
         predicate set, identified by the tuple's mask.  Maintaining the
         buckets costs one hash upsert per tuple; ordering them on score
         costs a sort of the (few) bucket keys only — never of the
         tuples, which stay in node-id order. *)
      let buckets = Hashtbl.create 64 in
      List.iter
        (fun t -> if not (Hashtbl.mem buckets t.mask) then Hashtbl.replace buckets t.mask t.score)
        tuples;
      metrics.buckets_touched <- metrics.buckets_touched + Hashtbl.length buckets;
      let keys = Hashtbl.fold (fun mask score acc -> (mask, score) :: acc) buckets [] in
      ignore (List.sort (fun (_, s1) (_, s2) -> Float.compare s2 s1) keys);
      tuples
    end
    else tuples
  in
  let step tuples s =
    !failpoint "exec.stage";
    metrics.stages <- metrics.stages + 1;
    let spec = specs.(s) in
    let anchor_slot, axis =
      match spec.anchor with
      | Some (p, a) -> (Encoded.slot_of_var enc p, a)
      | None -> invalid_arg "Exec.run: non-root spec without anchor"
    in
    let extend t e =
      let bindings = Array.copy t.bindings in
      bindings.(s) <- e;
      settle env cp s { t with bindings }
    in
    let out =
      List.concat_map
        (fun t ->
          let anchor = t.bindings.(anchor_slot) in
          if anchor < 0 then begin
            tick 1;
            [ settle env cp s t ]
          end
          else begin
            match cands_below_at s spec axis anchor with
            | [] ->
              if spec.optional then begin
                tick 1;
                [ settle env cp s t ]
              end
              else []
            | cands ->
              tick (List.length cands);
              List.map (extend t) cands
          end)
        tuples
    in
    metrics.tuples_produced <- metrics.tuples_produced + List.length out;
    flush_tick ();
    apply_strategy s (project s out)
  in
  tick (List.length init);
  flush_tick ();
  let final = ref (apply_strategy 0 (project 0 init)) in
  for s = 1 to n - 1 do
    final := step !final s
  done;
  (* One answer per distinct distinguished binding: keep the embedding
     with the best structural score (the keyword score depends only on
     the answer node). *)
  let contains_preds = Query.contains_preds (Relax.Penalty.original env.penalty) in
  let best = Hashtbl.create 64 in
  List.iter
    (fun t ->
      let target = t.bindings.(cp.dist_slot) in
      if target >= 0 then begin
        let better =
          match Hashtbl.find_opt best target with
          | None -> true
          | Some t' -> t.score > t'.score +. 1e-12
        in
        if better then Hashtbl.replace best target t
      end)
    !final;
  Hashtbl.fold
    (fun target t acc ->
      let ks = keyword_score env target contains_preds in
      let satisfied, failed =
        Array.to_list cp.scored_preds
        |> List.mapi (fun ix p -> (t.mask land (1 lsl ix) <> 0, p))
        |> List.partition_map (fun (sat, p) -> if sat then Either.Left p else Either.Right p)
      in
      let bindings =
        Array.to_list t.bindings
        |> List.mapi (fun slot e -> (Encoded.var_of_slot enc slot, e))
        |> List.filter (fun (_, e) -> e >= 0)
      in
      { target; sscore = t.score; kscore = ks; satisfied; failed; bindings } :: acc)
    best []
