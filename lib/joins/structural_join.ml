module Doc = Xmldom.Doc

(* Stack-tree-desc of Al-Khalifa et al.: sweep both sorted lists in
   document order, keeping the stack of ancestor candidates whose
   subtrees are still open.  Every stack member containing the current
   descendant produces a pair. *)
let ad_pairs doc ~anc ~desc =
  let out = ref [] in
  let stack = ref [] in
  let na = Array.length anc and nd = Array.length desc in
  let ai = ref 0 and di = ref 0 in
  let pop_closed e =
    (* drop stack entries whose subtree ended before [e] *)
    let rec go = function
      | s :: rest when e >= Doc.subtree_end doc s -> go rest
      | stack -> stack
    in
    stack := go !stack
  in
  while !di < nd do
    let d = desc.(!di) in
    (* push all ancestors starting before d *)
    while !ai < na && anc.(!ai) <= d do
      pop_closed anc.(!ai);
      stack := anc.(!ai) :: !stack;
      incr ai
    done;
    pop_closed d;
    List.iter (fun a -> if a <> d then out := (a, d) :: !out) !stack;
    incr di
  done;
  List.rev !out

(* Same sweep as [ad_pairs], but the parent check happens as each
   descendant is visited instead of filtering a materialized a-d pair
   list: on a deep recursive document the a-d output is quadratic while
   the p-c answer is linear, so building the former first is a blowup.
   After [pop_closed d] every stack member contains [d]; the innermost
   one (skipping [d] itself when the element sits in both inputs) is
   the only member that can be [d]'s parent, because anything nested
   strictly between a parent and its child would have to be both a
   descendant of the parent and an ancestor of the child. *)
let pc_pairs doc ~anc ~desc =
  let out = ref [] in
  let stack = ref [] in
  let na = Array.length anc and nd = Array.length desc in
  let ai = ref 0 and di = ref 0 in
  let pop_closed e =
    let rec go = function
      | s :: rest when e >= Doc.subtree_end doc s -> go rest
      | stack -> stack
    in
    stack := go !stack
  in
  while !di < nd do
    let d = desc.(!di) in
    while !ai < na && anc.(!ai) <= d do
      pop_closed anc.(!ai);
      stack := anc.(!ai) :: !stack;
      incr ai
    done;
    pop_closed d;
    (match !stack with
    | a :: _ when a <> d && Doc.is_parent doc a d -> out := (a, d) :: !out
    | d' :: a :: _ when d' = d && Doc.is_parent doc a d -> out := (a, d) :: !out
    | _ -> ());
    incr di
  done;
  List.rev !out

let lower_bound_in a lo hi x =
  let lo = ref lo and hi = ref hi in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) < x then lo := mid + 1 else hi := mid
  done;
  !lo

let lower_bound a x = lower_bound_in a 0 (Array.length a) x

let subtree_slice doc sorted e =
  let lo = lower_bound sorted (e + 1) in
  let hi = lower_bound sorted (Doc.subtree_end doc e) in
  (lo, hi)

(* Every element of the slice is a proper descendant of [e], so its
   level is at least [level e + 1], with equality exactly for children.
   Whatever the level of the element under scan, no other element at
   child level can start before that element's subtree ends (deeper
   elements live inside some child's subtree), so the scan can jump to
   [subtree_end] wholesale instead of testing [is_parent] node by node
   — on nested same-tag elements that turns an O(slice) scan into
   O(children · log slice). *)
let children_with_tag doc sorted e =
  let lo, hi = subtree_slice doc sorted e in
  let child_level = Doc.level doc e + 1 in
  let out = ref [] in
  let i = ref lo in
  while !i < hi do
    let x = sorted.(!i) in
    if Doc.level doc x = child_level then out := x :: !out;
    i := lower_bound_in sorted (!i + 1) hi (Doc.subtree_end doc x)
  done;
  List.rev !out
