module Query = Tpq.Query
module Op = Relax.Op

type var_spec = {
  var : int;
  tag : string option;
  attrs : Tpq.Pred.attr_pred list;
  required_contains : Fulltext.Ftexp.t list;
  anchor : (int * Query.axis) option;
  optional : bool;
}

type t = {
  original : Query.t;
  specs : var_spec list; (* anchor-before-spec order, root first *)
  distinguished : int;
  slots : (int, int) Hashtbl.t;
  vars : int array;
  exact : bool; (* built from an empty operator sequence *)
  conjunctive : bool; (* no optional specs: every variable must bind *)
}

(* Information retained for a deleted variable: what it looked like and
   where it was attached at deletion time. *)
type tombstone = { t_tag : string option; t_attrs : Tpq.Pred.attr_pred list; t_anchor : int * Query.axis }

let of_ops ?(hierarchy = Tpq.Hierarchy.empty) orig ops =
  let rec replay q tombstones = function
    | [] -> Ok (q, tombstones)
    | op :: rest -> (
      match op with
      | Op.Leaf_deletion v -> (
        match Query.parent q v with
        | None -> Error (Printf.sprintf "cannot delete $%d: no parent" v)
        | Some anchor -> (
          match Op.apply ~hierarchy q op with
          | Error msg -> Error (Op.to_string op ^ ": " ^ msg)
          | Ok q' ->
            let n = Query.node q v in
            let tomb = { t_tag = n.tag; t_attrs = n.attrs; t_anchor = anchor } in
            replay q' ((v, tomb) :: tombstones) rest))
      | _ -> (
        match Op.apply ~hierarchy q op with
        | Error msg -> Error (Op.to_string op ^ ": " ^ msg)
        | Ok q' -> replay q' tombstones rest))
  in
  match replay orig [] ops with
  | Error _ as e -> e
  | Ok (final, tombstones) ->
    (* children map across live and deleted variables *)
    let kids = Hashtbl.create 16 in
    let add_kid p c = Hashtbl.replace kids p (c :: Option.value ~default:[] (Hashtbl.find_opt kids p)) in
    List.iter
      (fun v ->
        match Query.parent final v with
        | None -> ()
        | Some (p, _) -> add_kid p v)
      (Query.vars final);
    List.iter (fun (v, tomb) -> add_kid (fst tomb.t_anchor) v) tombstones;
    let spec_of v =
      match List.assoc_opt v tombstones with
      | Some tomb ->
        {
          var = v;
          tag = tomb.t_tag;
          attrs = tomb.t_attrs;
          required_contains = [];
          anchor = Some tomb.t_anchor;
          optional = true;
        }
      | None ->
        let n = Query.node final v in
        {
          var = v;
          tag = n.tag;
          attrs = n.attrs;
          required_contains = n.contains;
          anchor = Query.parent final v;
          optional = false;
        }
    in
    let rec dfs v acc =
      let children = List.sort Int.compare (Option.value ~default:[] (Hashtbl.find_opt kids v)) in
      List.fold_left (fun acc c -> dfs c acc) (spec_of v :: acc) children
    in
    let specs = List.rev (dfs (Query.root final) []) in
    let vars = Array.of_list (List.map (fun s -> s.var) specs) in
    let slots = Hashtbl.create 16 in
    Array.iteri (fun i v -> Hashtbl.replace slots v i) vars;
    Ok
      {
        original = orig;
        specs;
        distinguished = Query.distinguished final;
        slots;
        vars;
        exact = ops = [];
        conjunctive = not (List.exists (fun s -> s.optional) specs);
      }

let of_ops_exn ?hierarchy orig ops =
  match of_ops ?hierarchy orig ops with
  | Ok t -> t
  | Error msg -> invalid_arg ("Encoded.of_ops_exn: " ^ msg)

let original t = t.original
let specs t = t.specs
let exact t = t.exact
let conjunctive t = t.conjunctive
let spec t v = List.find (fun s -> s.var = v) t.specs
let distinguished t = t.distinguished
let var_count t = Array.length t.vars

let slot_of_var t v =
  match Hashtbl.find_opt t.slots v with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Encoded.slot_of_var: unknown variable $%d" v)

let var_of_slot t i = t.vars.(i)

let pp fmt t =
  List.iter
    (fun s ->
      Format.fprintf fmt "$%d:%s%s%s%s@."
        s.var
        (match s.tag with Some tg -> tg | None -> "*")
        (match s.anchor with
        | None -> " (root)"
        | Some (p, Query.Child) -> Printf.sprintf " child-of $%d" p
        | Some (p, Query.Descendant) -> Printf.sprintf " desc-of $%d" p)
        (if s.optional then " optional" else "")
        (if s.required_contains = [] then ""
         else
           " contains:"
           ^ String.concat ","
               (List.map Fulltext.Ftexp.to_string s.required_contains)))
    t.specs
