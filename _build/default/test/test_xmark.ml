(* Tests for the synthetic data generators. *)

module Xml = Xmldom.Xml
module Doc = Xmldom.Doc
module Ftexp = Fulltext.Ftexp
module Index = Fulltext.Index
module Xpath = Tpq.Xpath
module Semantics = Tpq.Semantics
module Prng = Xmark.Prng
module Auction = Xmark.Auction
module Articles = Xmark.Articles

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* PRNG *)

let test_prng_deterministic () =
  let a = Prng.create 1 and b = Prng.create 1 in
  for _ = 1 to 100 do
    check_bool "same stream" true (Prng.next a = Prng.next b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  check_bool "different seeds differ" true (Prng.next a <> Prng.next b)

let test_prng_int_range () =
  let r = Prng.create 5 in
  for _ = 1 to 1000 do
    let v = Prng.int r 7 in
    check_bool "in range" true (v >= 0 && v < 7)
  done

let test_prng_float_range () =
  let r = Prng.create 5 in
  for _ = 1 to 1000 do
    let v = Prng.float r 2.5 in
    check_bool "in range" true (v >= 0.0 && v < 2.5)
  done

let test_prng_bool_bias () =
  let r = Prng.create 5 in
  let n = 10_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Prng.bool r 0.25 then incr hits
  done;
  let ratio = float_of_int !hits /. float_of_int n in
  check_bool "roughly 25%" true (ratio > 0.2 && ratio < 0.3)

(* ------------------------------------------------------------------ *)
(* Auction generator *)

let auction_doc = lazy (Auction.doc ~seed:11 ~items:120 ())

let test_auction_deterministic () =
  let a = Auction.site ~seed:3 ~items:20 () in
  let b = Auction.site ~seed:3 ~items:20 () in
  check_bool "same seed same doc" true (Xml.equal a b);
  let c = Auction.site ~seed:4 ~items:20 () in
  check_bool "different seed differs" false (Xml.equal a c)

let test_auction_item_count () =
  let d = Lazy.force auction_doc in
  check_int "items" 120 (Array.length (Doc.by_tag_name d "item"))

let test_auction_schema_features () =
  let d = Lazy.force auction_doc in
  let idx = Index.build d in
  let count s = List.length (Semantics.answers d idx (Xpath.parse_exn s)) in
  (* recursive parlist: nested listitem/parlist pairs exist *)
  check_bool "recursive parlist" true (count "//parlist//parlist" > 0);
  (* annotation interposition: // strictly beats / on description-parlist *)
  let direct = count "//item[./description/parlist]" in
  let trans = count "//item[./description//parlist]" in
  check_bool "axis generalization adds answers" true (trans > direct && direct > 0);
  (* optional incategory *)
  let all = count "//item" in
  let with_cat = count "//item[./incategory]" in
  check_bool "incategory optional" true (with_cat > 0 && with_cat < all);
  (* shared text element under both mail and listitem *)
  check_bool "text under mail" true (count "//mail/text" > 0);
  check_bool "text under listitem" true (count "//listitem/text" > 0);
  (* full markup sometimes *)
  let full = count "//text[./bold and ./keyword and ./emph]" in
  let any = count "//text" in
  check_bool "full markup is a strict subset" true (full > 0 && full < any)

let test_auction_paper_queries_progression () =
  let d = Lazy.force auction_doc in
  let idx = Index.build d in
  let count s = List.length (Semantics.answers d idx (Xpath.parse_exn s)) in
  let q1 = count "//item[./description/parlist]" in
  let q2 = count "//item[./description/parlist and ./mailbox/mail/text]" in
  let q3 =
    count
      "//item[./description/parlist/listitem and ./mailbox/mail/text[./bold and ./keyword and \
       ./emph] and ./name and ./incategory]"
  in
  check_bool "Q3 most selective" true (q3 < q2 && q2 <= q1);
  check_bool "Q3 nonempty" true (q3 > 0)

let test_auction_size_scaling () =
  let small = Doc.serialized_size (Auction.doc ~seed:1 ~items:40 ()) in
  let big = Doc.serialized_size (Auction.doc ~seed:1 ~items:160 ()) in
  let ratio = float_of_int big /. float_of_int small in
  check_bool "roughly linear in items" true (ratio > 2.5 && ratio < 6.0)

let test_auction_open_auctions () =
  let d = Lazy.force auction_doc in
  let idx = Index.build d in
  let count s = List.length (Semantics.answers d idx (Xpath.parse_exn s)) in
  check_int "open auctions" 60 (count "//open_auction");
  check_int "closed auctions" 30 (count "//closed_auction");
  check_bool "bidders exist" true (count "//open_auction[./bidder]" > 0);
  (* numeric attribute predicates over generated prices *)
  let cheap = count "//open_auction[@currentprice < 50]" in
  let total = count "//open_auction" in
  check_bool "price filter selective" true (cheap > 0 && cheap < total);
  check_bool "closed price filter" true (count "//closed_auction[@price >= 100]" > 0)

let test_auction_keywords_present () =
  let d = Lazy.force auction_doc in
  let idx = Index.build d in
  let gold = Index.count_satisfying_with_tag idx (Ftexp.Term "gold")
      (Option.get (Xmldom.Tag.find (Doc.tags d) "item"))
  in
  let items = Array.length (Doc.by_tag_name d "item") in
  check_bool "keyword selective" true (gold > 0 && gold < items)

(* ------------------------------------------------------------------ *)
(* Articles generator *)

let articles_doc = lazy (Articles.doc ~seed:5 ~count:150 ())

let figure1 =
  [
    ( "q1",
      "//article[./section[./algorithm and ./paragraph[.contains(\"XML\" and \"streaming\")]]]" );
    ( "q2",
      "//article[./section[./algorithm and .contains(\"XML\" and \"streaming\")]]" );
    ( "q3",
      "//article[.//algorithm and ./section[./paragraph[.contains(\"XML\" and \"streaming\")]]]" );
    ( "q4", "//article[.//algorithm and ./section[./paragraph and .contains(\"XML\" and \"streaming\")]]" );
    ( "q5", "//article[./section[./paragraph and .contains(\"XML\" and \"streaming\")]]" );
    ( "q6", "//article[.contains(\"XML\" and \"streaming\")]" );
  ]

let answers_of name =
  let d = Lazy.force articles_doc in
  let idx = Index.build d in
  Semantics.answers d idx (Xpath.parse_exn (List.assoc name figure1))

let subset a b = List.for_all (fun x -> List.mem x b) a

let test_articles_figure1_containments () =
  let a1 = answers_of "q1" and a2 = answers_of "q2" and a3 = answers_of "q3" in
  let a4 = answers_of "q4" and a5 = answers_of "q5" and a6 = answers_of "q6" in
  check_bool "Q1 in Q2" true (subset a1 a2);
  check_bool "Q1 in Q3" true (subset a1 a3);
  check_bool "Q2 in Q4" true (subset a2 a4);
  check_bool "Q3 in Q4" true (subset a3 a4);
  check_bool "Q4 in Q5" true (subset a4 a5);
  check_bool "Q5 in Q6" true (subset a5 a6)

let test_articles_figure1_strictness () =
  (* The archetype mix guarantees each relaxation step surfaces new
     answers. *)
  let n name = List.length (answers_of name) in
  check_bool "Q1 nonempty" true (n "q1" > 0);
  check_bool "Q2 adds" true (n "q2" > n "q1");
  check_bool "Q3 adds" true (n "q3" > n "q1");
  check_bool "Q5 adds over Q4" true (n "q5" > n "q4");
  check_bool "Q6 adds over Q5" true (n "q6" > n "q5")

let test_articles_deterministic () =
  let a = Articles.collection ~seed:9 ~count:10 () in
  let b = Articles.collection ~seed:9 ~count:10 () in
  check_bool "deterministic" true (Xml.equal a b)

let test_articles_no_algorithm_archetype () =
  let rng = Prng.create 1 in
  let art = Articles.article rng Articles.No_algorithm 0 in
  let d = Doc.of_tree art in
  check_int "no algorithm anywhere" 0 (Array.length (Doc.by_tag_name d "algorithm"))

let test_articles_exact_archetype () =
  let rng = Prng.create 1 in
  let art = Articles.article rng Articles.Exact 0 in
  let d = Doc.of_tree (Xml.element "collection" [ art ]) in
  let idx = Index.build d in
  let q = Xpath.parse_exn (List.assoc "q1" figure1) in
  check_int "exact matches Q1" 1 (List.length (Semantics.answers d idx q))

let () =
  Alcotest.run "xmark"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "int range" `Quick test_prng_int_range;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "bool bias" `Quick test_prng_bool_bias;
        ] );
      ( "auction",
        [
          Alcotest.test_case "deterministic" `Quick test_auction_deterministic;
          Alcotest.test_case "item count" `Quick test_auction_item_count;
          Alcotest.test_case "schema features" `Quick test_auction_schema_features;
          Alcotest.test_case "paper query progression" `Quick test_auction_paper_queries_progression;
          Alcotest.test_case "size scaling" `Quick test_auction_size_scaling;
          Alcotest.test_case "open auctions" `Quick test_auction_open_auctions;
          Alcotest.test_case "keywords present" `Quick test_auction_keywords_present;
        ] );
      ( "articles",
        [
          Alcotest.test_case "figure 1 containments" `Quick test_articles_figure1_containments;
          Alcotest.test_case "figure 1 strictness" `Quick test_articles_figure1_strictness;
          Alcotest.test_case "deterministic" `Quick test_articles_deterministic;
          Alcotest.test_case "no-algorithm archetype" `Quick test_articles_no_algorithm_archetype;
          Alcotest.test_case "exact archetype" `Quick test_articles_exact_archetype;
        ] );
    ]
