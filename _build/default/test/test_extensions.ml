(* Tests for the §3.4 extension relaxations: type-hierarchy tag
   generalization and thesaurus-based keyword expansion. *)

module Xml = Xmldom.Xml
module Doc = Xmldom.Doc
module Ftexp = Fulltext.Ftexp
module Index = Fulltext.Index
module Thesaurus = Fulltext.Thesaurus
module Pred = Tpq.Pred
module Query = Tpq.Query
module Xpath = Tpq.Xpath
module Hierarchy = Tpq.Hierarchy
module Semantics = Tpq.Semantics
module Op = Relax.Op
module Penalty = Relax.Penalty

let el = Xml.element
let txt = Xml.text
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_slist = Alcotest.(check (list string))
let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Hierarchy structure *)

let pub_hierarchy () =
  Hierarchy.of_list_exn
    [ ("article", "publication"); ("book", "publication"); ("thesis", "book") ]

let test_hierarchy_basics () =
  let h = pub_hierarchy () in
  check_bool "supertype" true (Hierarchy.supertype h "article" = Some "publication");
  check_bool "no supertype" true (Hierarchy.supertype h "publication" = None);
  check_slist "chain" [ "book"; "publication" ] (Hierarchy.supertypes h "thesis");
  check_slist "subtypes sorted" [ "article"; "book"; "thesis" ]
    (List.sort compare (Hierarchy.subtypes h "publication"));
  check_bool "matches self" true (Hierarchy.matches h ~query_tag:"book" ~element_tag:"book");
  check_bool "matches transitive subtype" true
    (Hierarchy.matches h ~query_tag:"publication" ~element_tag:"thesis");
  check_bool "no upward match" false
    (Hierarchy.matches h ~query_tag:"thesis" ~element_tag:"book");
  check_bool "empty hierarchy exact only" false
    (Hierarchy.matches Hierarchy.empty ~query_tag:"publication" ~element_tag:"article")

let test_hierarchy_validation () =
  let bad pairs =
    match Hierarchy.of_list pairs with
    | Ok _ -> Alcotest.fail "expected rejection"
    | Error _ -> ()
  in
  bad [ ("a", "a") ];
  bad [ ("a", "b"); ("a", "c") ];
  (* two supertypes *)
  bad [ ("a", "b"); ("b", "c"); ("c", "a") ] (* cycle *)

(* ------------------------------------------------------------------ *)
(* Hierarchy-aware matching *)

let library_doc () =
  Doc.of_tree
    (el "library"
       [
         el "article" [ el "title" [ txt "xml streams" ] ];
         el "book" [ el "title" [ txt "xml databases" ] ];
         el "thesis" [ el "title" [ txt "query relaxation" ] ];
         el "report" [ el "title" [ txt "unrelated" ] ];
       ])

let test_semantics_with_hierarchy () =
  let d = library_doc () in
  let idx = Index.build d in
  let h = pub_hierarchy () in
  let q = Xpath.parse_exn "//publication" in
  check_int "no hierarchy: nothing" 0 (List.length (Semantics.answers d idx q));
  check_int "hierarchy: article+book+thesis" 3
    (List.length (Semantics.answers ~hierarchy:h d idx q));
  let qb = Xpath.parse_exn "//book" in
  check_int "book covers thesis" 2 (List.length (Semantics.answers ~hierarchy:h d idx qb))

let test_candidates_merged_sorted () =
  let d = library_doc () in
  let h = pub_hierarchy () in
  let pool = Semantics.candidates ~hierarchy:h d (Query.node_spec ~tag:"publication" ()) in
  check_int "three candidates" 3 (Array.length pool);
  check_bool "sorted" true (pool.(0) < pool.(1) && pool.(1) < pool.(2))

(* ------------------------------------------------------------------ *)
(* Tag generalization operator *)

let test_tag_generalization_op () =
  let h = pub_hierarchy () in
  let q = Xpath.parse_exn "//article[./title]" in
  let root = Query.root q in
  match Op.apply ~hierarchy:h q (Op.Tag_generalization (root, "publication")) with
  | Error e -> Alcotest.fail e
  | Ok q' ->
    check_bool "tag generalized" true ((Query.node q' root).tag = Some "publication");
    check_bool "skipping a level fails" true
      (Result.is_error (Op.apply ~hierarchy:h (Xpath.parse_exn "//thesis") (Op.Tag_generalization (1, "publication"))));
    check_bool "without hierarchy fails" true
      (Result.is_error (Op.apply q (Op.Tag_generalization (root, "publication"))))

let test_tag_generalization_applicable () =
  let h = pub_hierarchy () in
  let q = Xpath.parse_exn "//article[./title]" in
  let ops = Op.applicable ~hierarchy:h q in
  check_bool "offered" true (List.mem (Op.Tag_generalization (1, "publication")) ops);
  let ops_no_h = Op.applicable q in
  check_bool "not offered without hierarchy" false
    (List.exists (function Op.Tag_generalization _ -> true | _ -> false) ops_no_h)

let test_tag_generalization_sound () =
  let d = library_doc () in
  let idx = Index.build d in
  let h = pub_hierarchy () in
  let q = Xpath.parse_exn "//book" in
  let q' = Op.apply_exn ~hierarchy:h q (Op.Tag_generalization (1, "publication")) in
  let before = Semantics.answers ~hierarchy:h d idx q in
  let after = Semantics.answers ~hierarchy:h d idx q' in
  check_bool "answers only grow" true (List.for_all (fun x -> List.mem x after) before);
  check_bool "strictly more" true (List.length after > List.length before)

let test_tag_penalty () =
  let d = library_doc () in
  let idx = Index.build d in
  let st = Stats.build d in
  Stats.set_index st idx;
  let h = pub_hierarchy () in
  let q = Xpath.parse_exn "//article[./title]" in
  let penv = Penalty.make ~hierarchy:h st Penalty.uniform q in
  (* #(article) = 1, extension(publication) = article+book+thesis = 3 *)
  check_float "tag penalty" (1.0 /. 3.0) (Penalty.predicate_penalty penv (Pred.Tag_eq (1, "article")));
  check_bool "tag pred is scored" true
    (List.exists (Pred.equal (Pred.Tag_eq (1, "article"))) (Penalty.scored_preds penv));
  (* without hierarchy the tag predicate is unscored *)
  let penv0 = Penalty.make st Penalty.uniform q in
  check_float "unscored without hierarchy" 0.0
    (Penalty.predicate_penalty penv0 (Pred.Tag_eq (1, "article")));
  check_bool "not in scored set" false
    (List.exists (Pred.equal (Pred.Tag_eq (1, "article"))) (Penalty.scored_preds penv0))

(* End-to-end: top-K with hierarchy surfaces subtype-tag answers after
   relaxation, ranked below exact-tag answers. *)
let test_topk_with_hierarchy () =
  let tree =
    el "library"
      [
        el "article" [ el "title" [ txt "xml streaming" ] ];
        el "book" [ el "title" [ txt "xml streaming" ] ];
        el "report" [ el "title" [ txt "xml streaming" ] ];
      ]
  in
  let h = pub_hierarchy () in
  let env = Flexpath.Env.of_tree ~hierarchy:h tree in
  let q = Xpath.parse_exn "//article[./title[.contains(\"xml\")]]" in
  let answers = Flexpath.top_k env ~k:10 q in
  (* the article matches exactly; the book becomes reachable through
     article -> publication generalization; the report never does *)
  check_int "two answers" 2 (List.length answers);
  let first = List.hd answers and second = List.nth answers 1 in
  check_bool "article first" true (Doc.tag_name env.doc first.Flexpath.Answer.node = "article");
  check_bool "book second" true (Doc.tag_name env.doc second.Flexpath.Answer.node = "book");
  check_bool "book scored lower" true
    (second.Flexpath.Answer.sscore < first.Flexpath.Answer.sscore -. 1e-9)

let test_topk_hierarchy_algorithms_agree () =
  let h = pub_hierarchy () in
  let rng_doc =
    el "library"
      (List.init 30 (fun i ->
           let tag = match i mod 4 with 0 -> "article" | 1 -> "book" | 2 -> "thesis" | _ -> "report" in
           el tag [ el "title" [ txt (if i mod 3 = 0 then "xml streaming" else "other words") ] ]))
  in
  let env = Flexpath.Env.of_tree ~hierarchy:h rng_doc in
  let q = Xpath.parse_exn "//article[./title[.contains(\"xml\")]]" in
  let key (a : Flexpath.Answer.t) = (a.node, Float.round (a.sscore *. 1e6)) in
  let run algorithm = List.map key (Flexpath.top_k ~algorithm env ~k:12 q) in
  let d = run Flexpath.DPO and s = run Flexpath.SSO and hy = run Flexpath.Hybrid in
  check_bool "all agree" true (d = s && s = hy)

let test_hierarchy_parse_file () =
  let path = Filename.temp_file "hier" ".txt" in
  let oc = open_out path in
  output_string oc "# bibliography types\narticle < publication\n\nbook < publication\n";
  close_out oc;
  (match Hierarchy.parse_file path with
  | Error e -> Alcotest.fail e
  | Ok h ->
    check_bool "parsed" true (Hierarchy.supertype h "article" = Some "publication"));
  Sys.remove path;
  let bad = Filename.temp_file "hier" ".txt" in
  let oc = open_out bad in
  output_string oc "article publication\n";
  close_out oc;
  check_bool "missing < rejected" true (Result.is_error (Hierarchy.parse_file bad));
  Sys.remove bad;
  check_bool "missing file" true (Result.is_error (Hierarchy.parse_file "/nonexistent"))

let test_thesaurus_parse_file () =
  let path = Filename.temp_file "thes" ".txt" in
  let oc = open_out path in
  output_string oc "# synonyms\ncar, automobile, auto\n\nxml, markup\n";
  close_out oc;
  (match Thesaurus.parse_file path with
  | Error e -> Alcotest.fail e
  | Ok t ->
    check_slist "ring parsed" [ "auto"; "automobile" ] (Thesaurus.synonyms t "car");
    check_slist "second ring" [ "markup" ] (Thesaurus.synonyms t "xml"));
  Sys.remove path;
  check_bool "missing file" true (Result.is_error (Thesaurus.parse_file "/nonexistent"))

(* ------------------------------------------------------------------ *)
(* Thesaurus *)

let test_thesaurus_basics () =
  let t = Thesaurus.of_list [ [ "car"; "automobile" ]; [ "xml"; "markup" ] ] in
  check_slist "synonyms" [ "automobile" ] (Thesaurus.synonyms t "car");
  check_slist "case folded" [ "automobile" ] (Thesaurus.synonyms t "CAR");
  check_slist "none" [] (Thesaurus.synonyms t "bicycle");
  check_bool "empty" true (Thesaurus.is_empty Thesaurus.empty)

let test_thesaurus_ring_merge () =
  let t = Thesaurus.of_list [ [ "a"; "b" ]; [ "b"; "c" ] ] in
  check_slist "transitive ring" [ "b"; "c" ] (Thesaurus.synonyms t "a")

let test_thesaurus_expand () =
  let t = Thesaurus.of_list [ [ "car"; "automobile" ] ] in
  let e = Ftexp.(Term "car" &&& Term "cheap") in
  let e' = Thesaurus.expand t e in
  check_bool "expanded" true
    (Ftexp.equal e' Ftexp.(And (Or (Term "car", Term "automobile"), Term "cheap")))

let test_thesaurus_expand_not_untouched () =
  let t = Thesaurus.of_list [ [ "car"; "automobile" ] ] in
  let e = Ftexp.(Not (Term "car")) in
  check_bool "negation untouched" true (Ftexp.equal (Thesaurus.expand t e) e)

let test_thesaurus_broadens_matches () =
  let d =
    Doc.of_tree
      (el "ads"
         [ el "ad" [ txt "automobile for sale" ]; el "ad" [ txt "car for sale" ];
           el "ad" [ txt "bicycle for sale" ] ])
  in
  let idx = Index.build d in
  let t = Thesaurus.of_list [ [ "car"; "automobile" ] ] in
  let plain = Ftexp.Term "car" in
  let wide = Thesaurus.expand t plain in
  let count f =
    Array.fold_left
      (fun acc e -> if Index.satisfies idx f e then acc + 1 else acc)
      0
      (Doc.by_tag_name d "ad")
  in
  check_int "plain" 1 (count plain);
  check_int "expanded" 2 (count wide)

let () =
  Alcotest.run "extensions"
    [
      ( "hierarchy",
        [
          Alcotest.test_case "basics" `Quick test_hierarchy_basics;
          Alcotest.test_case "validation" `Quick test_hierarchy_validation;
          Alcotest.test_case "semantics" `Quick test_semantics_with_hierarchy;
          Alcotest.test_case "merged candidates" `Quick test_candidates_merged_sorted;
          Alcotest.test_case "parse file" `Quick test_hierarchy_parse_file;
        ] );
      ( "tag-generalization",
        [
          Alcotest.test_case "operator" `Quick test_tag_generalization_op;
          Alcotest.test_case "applicability" `Quick test_tag_generalization_applicable;
          Alcotest.test_case "soundness" `Quick test_tag_generalization_sound;
          Alcotest.test_case "penalty" `Quick test_tag_penalty;
          Alcotest.test_case "top-k end to end" `Quick test_topk_with_hierarchy;
          Alcotest.test_case "algorithms agree" `Quick test_topk_hierarchy_algorithms_agree;
        ] );
      ( "thesaurus",
        [
          Alcotest.test_case "basics" `Quick test_thesaurus_basics;
          Alcotest.test_case "ring merge" `Quick test_thesaurus_ring_merge;
          Alcotest.test_case "expand" `Quick test_thesaurus_expand;
          Alcotest.test_case "negation untouched" `Quick test_thesaurus_expand_not_untouched;
          Alcotest.test_case "broadens matches" `Quick test_thesaurus_broadens_matches;
          Alcotest.test_case "parse file" `Quick test_thesaurus_parse_file;
        ] );
    ]
