(* Tests for the APPROXML data-relaxation baseline. *)

module Xml = Xmldom.Xml
module Doc = Xmldom.Doc
module Index = Fulltext.Index
module Xpath = Tpq.Xpath
module Semantics = Tpq.Semantics

let el = Xml.element
let txt = Xml.text
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* <r><a><b><c/></b></a><a><c/></a></r>
   r=0 a=1 b=2 c=3 a=4 c=5 *)
let sample () =
  Doc.of_tree (el "r" [ el "a" [ el "b" [ el "c" [] ] ]; el "a" [ el "c" [] ] ])

let test_edge_count () =
  let t = Approxml.build_exn (sample ()) in
  (* Σ depth: a=1 b=2 c=3 a=1 c=2 -> 9 *)
  check_int "closure edges" 9 (Approxml.edge_count t);
  check_bool "memory accounted" true (Approxml.memory_words t >= 9 * 2)

let test_edges_from () =
  let t = Approxml.build_exn (sample ()) in
  check_bool "root reaches everything" true
    (List.length (Approxml.edges_from t 0) = 5);
  check_bool "distances recorded" true
    (List.mem (3, 2) (Approxml.edges_from t 1) && List.mem (2, 1) (Approxml.edges_from t 1))

let test_build_cap () =
  match Approxml.build ~max_edges:3 (sample ()) with
  | Ok _ -> Alcotest.fail "expected the cap to trip"
  | Error msg -> check_bool "explains failure" true (String.length msg > 10)

let test_exact_answers_score_one () =
  let d = sample () in
  let idx = Index.build d in
  let t = Approxml.build_exn d in
  let q = Xpath.parse_exn "//a[./c]" in
  let results = Approxml.answers t idx q in
  (* a=4 has c as a direct child (score 1); a=1 reaches c only via b
     (score 1/2) *)
  check_int "both as returned" 2 (List.length results);
  let top_e, top_s = List.hd results in
  check_int "exact first" 4 top_e;
  check_bool "exact scores 1" true (Float.abs (top_s -. 1.0) < 1e-9);
  let rel_e, rel_s = List.nth results 1 in
  check_int "relaxed second" 1 rel_e;
  check_bool "relaxed scores 1/2" true (Float.abs (rel_s -. 0.5) < 1e-9)

let test_agrees_with_flexpath_on_relevance () =
  (* Every element FleXPath's relaxed semantics returns for a pure
     structural query is also found by data relaxation. *)
  let d = Xmark.Articles.doc ~seed:3 ~count:20 () in
  let idx = Index.build d in
  let t = Approxml.build_exn d in
  let q = Xpath.parse_exn "//article[./section/algorithm]" in
  let approx = List.map fst (Approxml.answers t idx q) in
  let exact = Semantics.answers d idx q in
  check_bool "superset of exact answers" true (List.for_all (fun e -> List.mem e approx) exact);
  let relaxed = Semantics.answers d idx (Xpath.parse_exn "//article[.//algorithm]") in
  check_bool "covers axis relaxation" true
    (List.for_all (fun e -> List.mem e approx) relaxed)

let test_keywords_respected () =
  let d =
    Doc.of_tree
      (el "r"
         [ el "a" [ el "p" [ txt "xml here" ] ]; el "a" [ el "p" [ txt "nothing" ] ] ])
  in
  let idx = Index.build d in
  let t = Approxml.build_exn d in
  let q = Xpath.parse_exn "//a[./p[.contains(\"xml\")]]" in
  check_int "contains still strict" 1 (List.length (Approxml.answers t idx q))

let () =
  Alcotest.run "approxml"
    [
      ( "baseline",
        [
          Alcotest.test_case "edge count" `Quick test_edge_count;
          Alcotest.test_case "edges from" `Quick test_edges_from;
          Alcotest.test_case "build cap" `Quick test_build_cap;
          Alcotest.test_case "exact answers score 1" `Quick test_exact_answers_score_one;
          Alcotest.test_case "covers query relaxation" `Quick test_agrees_with_flexpath_on_relevance;
          Alcotest.test_case "keywords respected" `Quick test_keywords_respected;
        ] );
    ]
