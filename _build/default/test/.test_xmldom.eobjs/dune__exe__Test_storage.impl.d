test/test_storage.ml: Alcotest Array Bytes Char Filename Flexpath Float Fun Lazy List Printexc Printf String Sys Tpq Unix Xmark
