test/test_relax.ml: Alcotest Fulltext List QCheck2 QCheck_alcotest Relax Result Stats String Tpq Xmldom
