test/test_approxml.mli:
