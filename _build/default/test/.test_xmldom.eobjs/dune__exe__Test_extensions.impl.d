test/test_extensions.ml: Alcotest Array Filename Flexpath Float Fulltext List Relax Result Stats Sys Tpq Xmldom
