test/test_xmldom.ml: Alcotest Array Format List Option QCheck2 QCheck_alcotest Result String Xmark Xmldom
