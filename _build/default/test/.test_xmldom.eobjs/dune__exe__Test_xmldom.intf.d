test/test_xmldom.mli:
