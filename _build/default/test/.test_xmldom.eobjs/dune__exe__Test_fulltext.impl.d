test/test_fulltext.ml: Alcotest Float Fulltext List Option QCheck2 QCheck_alcotest Result String Xmldom
