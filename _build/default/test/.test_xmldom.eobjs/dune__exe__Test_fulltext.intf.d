test/test_fulltext.mli:
