test/test_relax.mli:
