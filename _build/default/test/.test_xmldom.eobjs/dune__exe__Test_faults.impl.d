test/test_faults.ml: Alcotest Flexpath Float Fun Joins Lazy List Result Tpq Xmark
