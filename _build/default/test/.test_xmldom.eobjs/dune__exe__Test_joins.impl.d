test/test_joins.ml: Alcotest Array Float Fulltext Int Joins List Relax Result Stats String Tpq Xmark Xmldom
