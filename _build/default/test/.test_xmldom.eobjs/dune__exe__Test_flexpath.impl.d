test/test_flexpath.ml: Alcotest Filename Flexpath Float Fulltext Int Joins Lazy List Printf QCheck2 QCheck_alcotest Result Sys Tpq Xmark Xmldom
