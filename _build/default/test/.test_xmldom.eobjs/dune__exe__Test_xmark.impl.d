test/test_xmark.ml: Alcotest Array Fulltext Lazy List Option Tpq Xmark Xmldom
