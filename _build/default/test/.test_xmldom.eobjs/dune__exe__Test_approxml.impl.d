test/test_approxml.ml: Alcotest Approxml Float Fulltext List String Tpq Xmark Xmldom
