test/test_tpq.ml: Alcotest Array Fulltext List QCheck2 QCheck_alcotest Result String Tpq Xmldom
