test/test_tpq.mli:
