test/test_stats.ml: Alcotest Format Fulltext List Printf Stats String Tpq Xmark Xmldom
