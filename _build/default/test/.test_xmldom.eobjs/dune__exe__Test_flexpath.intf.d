test/test_flexpath.mli:
